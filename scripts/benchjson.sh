#!/usr/bin/env sh
# benchjson.sh converts `go test -bench` output on stdin into the JSON
# document CI uploads as the per-commit bench artifact, so perf
# regressions stay visible across PRs:
#
#   go test -run '^$' -bench . -benchtime 1x ./... \
#     | scripts/benchjson.sh "$GITHUB_SHA" > "BENCH_${GITHUB_SHA}.json"
set -eu

sha="${1:-unknown}"

awk -v sha="$sha" '
BEGIN { printf "{\n  \"commit\": \"%s\",\n  \"results\": [", sha; n = 0 }
$1 ~ /^Benchmark/ && $2 ~ /^[0-9]+$/ {
  name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""; extra = ""
  for (i = 3; i < NF; i++) {
    unit = $(i + 1)
    if (unit == "ns/op")          ns = $i
    else if (unit == "B/op")      bytes = $i
    else if (unit == "allocs/op") allocs = $i
    else if (unit ~ /^[A-Za-z][A-Za-z0-9_.%\/-]*$/ && $i ~ /^[0-9.eE+-]+$/) {
      # Custom b.ReportMetric units (flows, peak-flows, ...): JSONify the
      # unit name so figures of merit land in the artifact too.
      key = unit
      gsub(/[^A-Za-z0-9_]/, "_", key)
      extra = extra sprintf(", \"%s\": %s", key, $i)
    }
  }
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
  if (ns != "")     printf ", \"ns_per_op\": %s", ns
  if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  printf "%s}", extra
}
END { printf "\n  ]\n}\n" }
'
