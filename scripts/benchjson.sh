#!/usr/bin/env sh
# benchjson.sh converts `go test -bench` output on stdin into the JSON
# document CI uploads as the per-commit bench artifact, so perf
# regressions stay visible across PRs:
#
#   go test -run '^$' -bench . -benchtime 1x ./... \
#     | scripts/benchjson.sh "$GITHUB_SHA" > "BENCH_${GITHUB_SHA}.json"
set -eu

sha="${1:-unknown}"

awk -v sha="$sha" '
BEGIN { printf "{\n  \"commit\": \"%s\",\n  \"results\": [", sha; n = 0 }
$1 ~ /^Benchmark/ && $2 ~ /^[0-9]+$/ {
  name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
  for (i = 3; i < NF; i++) {
    if ($(i + 1) == "ns/op")     ns = $i
    if ($(i + 1) == "B/op")      bytes = $i
    if ($(i + 1) == "allocs/op") allocs = $i
  }
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
  if (ns != "")     printf ", \"ns_per_op\": %s", ns
  if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  printf "}"
}
END { printf "\n  ]\n}\n" }
'
