#!/usr/bin/env sh
# benchdelta.sh prints a compact ns/op delta table between two bench
# artifacts produced by benchjson.sh:
#
#   scripts/benchdelta.sh bench-prev.json BENCH_<sha>.json
#
# Rows present only in the new artifact are marked "new", rows that
# disappeared are marked "gone". A missing previous artifact is not an
# error — the first run of a branch has no baseline.
set -eu

prev="${1:?usage: benchdelta.sh PREV.json NEW.json}"
new="${2:?usage: benchdelta.sh PREV.json NEW.json}"

if [ ! -f "$prev" ]; then
  echo "benchdelta: no previous artifact at $prev — baseline run, nothing to compare"
  exit 0
fi

# benchjson.sh emits one result object per line; pull "name ns_per_op"
# pairs out of each artifact.
extract() {
  sed -n 's/.*"name": "\([^"]*\)".*"ns_per_op": \([0-9.eE+-]*\).*/\1 \2/p' "$1"
}

prev_pairs=$(extract "$prev")
new_pairs=$(extract "$new")

prev_sha=$(sed -n 's/.*"commit": "\([^"]*\)".*/\1/p' "$prev" | head -1)
echo "benchdelta: vs previous run ${prev_sha:-unknown} (1x smoke runs; treat small deltas as noise)"

printf '%s\n' "$prev_pairs" | awk -v newlist="$new_pairs" '
{ prev[$1] = $2 }
END {
  n = split(newlist, lines, "\n")
  printf "%-58s %14s %14s %9s\n", "benchmark", "prev ns/op", "new ns/op", "delta"
  for (i = 1; i <= n; i++) {
    split(lines[i], f, " ")
    name = f[1]; val = f[2]
    if (name == "") continue
    seen[name] = 1
    if (name in prev && prev[name] + 0 > 0) {
      d = (val - prev[name]) / prev[name] * 100
      printf "%-58s %14.0f %14.0f %+8.1f%%\n", name, prev[name], val, d
    } else {
      printf "%-58s %14s %14.0f %9s\n", name, "-", val, "new"
    }
  }
  for (name in prev)
    if (!(name in seen))
      printf "%-58s %14.0f %14s %9s\n", name, prev[name], "-", "gone"
}'
