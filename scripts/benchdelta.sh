#!/usr/bin/env sh
# benchdelta.sh prints a compact ns/op delta table between two bench
# artifacts produced by benchjson.sh, and acts as a perf tripwire:
#
#   scripts/benchdelta.sh bench-prev.json BENCH_<sha>.json
#
# Rows present only in the new artifact are marked "new", rows that
# disappeared are marked "gone". A missing previous artifact is not an
# error — the first run of a branch has no baseline.
#
# Tripwire knobs (environment):
#   BENCHDELTA_WARN_PCT   emit a GitHub ::warning annotation for every
#                         benchmark whose ns/op regressed by more than
#                         this percentage (default 15).
#   BENCHDELTA_FAIL_PCT   exit non-zero when any non-allowlisted
#                         benchmark regressed by more than this
#                         percentage (unset/empty disables failing —
#                         warnings only).
#   BENCHDELTA_ALLOWLIST  file of benchmark names exempt from the fail
#                         threshold, one per line, '#' comments allowed
#                         (default scripts/bench-allowlist.txt next to
#                         this script; a missing file is an empty list).
set -eu

prev="${1:?usage: benchdelta.sh PREV.json NEW.json}"
new="${2:?usage: benchdelta.sh PREV.json NEW.json}"
warn_pct="${BENCHDELTA_WARN_PCT:-15}"
fail_pct="${BENCHDELTA_FAIL_PCT:-}"
allowfile="${BENCHDELTA_ALLOWLIST:-$(dirname "$0")/bench-allowlist.txt}"

if [ ! -f "$prev" ]; then
  echo "benchdelta: no previous artifact at $prev — baseline run, nothing to compare"
  exit 0
fi

allow=""
if [ -f "$allowfile" ]; then
  # Strip comments and blank lines; what remains is one name per line.
  allow=$(sed 's/#.*//; s/[[:space:]]*$//; /^$/d' "$allowfile")
fi

# benchjson.sh emits one result object per line; pull "name ns_per_op"
# pairs out of each artifact.
extract() {
  sed -n 's/.*"name": "\([^"]*\)".*"ns_per_op": \([0-9.eE+-]*\).*/\1 \2/p' "$1"
}

prev_pairs=$(extract "$prev")
new_pairs=$(extract "$new")

prev_sha=$(sed -n 's/.*"commit": "\([^"]*\)".*/\1/p' "$prev" | head -1)
echo "benchdelta: vs previous run ${prev_sha:-unknown} (1x smoke runs; treat small deltas as noise)"

printf '%s\n' "$prev_pairs" | awk \
  -v newlist="$new_pairs" -v warn="$warn_pct" -v fail="$fail_pct" -v allowlist="$allow" '
{ prev[$1] = $2 }
END {
  na = split(allowlist, al, "\n")
  for (i = 1; i <= na; i++)
    if (al[i] != "") allowed[al[i]] = 1
  n = split(newlist, lines, "\n")
  printf "%-58s %14s %14s %9s\n", "benchmark", "prev ns/op", "new ns/op", "delta"
  bad = 0
  for (i = 1; i <= n; i++) {
    split(lines[i], f, " ")
    name = f[1]; val = f[2]
    if (name == "") continue
    seen[name] = 1
    if (name in prev && prev[name] + 0 > 0) {
      d = (val - prev[name]) / prev[name] * 100
      printf "%-58s %14.0f %14.0f %+8.1f%%\n", name, prev[name], val, d
      if (d > warn + 0)
        printf "::warning title=benchmark regression::%s ns/op +%.1f%% (%.0f -> %.0f) exceeds %s%%\n", \
          name, d, prev[name], val, warn
      if (fail != "" && d > fail + 0) {
        if (name in allowed)
          printf "::notice title=allowlisted regression::%s ns/op +%.1f%% exceeds fail threshold %s%% but is allowlisted\n", \
            name, d, fail
        else
          failures[++bad] = sprintf("%s +%.1f%%", name, d)
      }
    } else {
      printf "%-58s %14s %14.0f %9s\n", name, "-", val, "new"
    }
  }
  for (name in prev)
    if (!(name in seen))
      printf "%-58s %14.0f %14s %9s\n", name, prev[name], "-", "gone"
  if (bad > 0) {
    for (i = 1; i <= bad; i++)
      printf "::error title=benchmark regression over fail threshold::%s (threshold %s%%)\n", failures[i], fail
    printf "benchdelta: %d benchmark(s) regressed beyond %s%% — failing\n", bad, fail
    exit 1
  }
}'
