package iris

// This file regenerates the paper's evaluation as Go benchmarks: one
// benchmark per table/figure (see DESIGN.md's per-experiment index), plus
// micro-benchmarks for the planner's hot algorithms. Benchmarks report
// the headline metric of their figure via b.ReportMetric so `go test
// -bench` output doubles as a results table.

import (
	"math/rand"
	"testing"

	"iris/internal/core"
	"iris/internal/experiments"
	"iris/internal/fibermap"
	"iris/internal/flowsim"
	"iris/internal/graph"
	"iris/internal/hose"
	"iris/internal/optics"
	"iris/internal/plan"
	"iris/internal/stats"
	"iris/internal/traffic"
)

func BenchmarkFig3LatencyInflation(b *testing.B) {
	cfg := experiments.DefaultFig3()
	cfg.Regions = 10
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracOver2x*100, "%pairs>2x")
	}
}

func BenchmarkFig6SitingArea(b *testing.B) {
	cfg := experiments.DefaultFig6()
	cfg.Regions = 6
	cfg.GridCellKM = 3
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Median(res.Ratios), "x-fold-median")
	}
}

func BenchmarkFig7PortCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7()
		b.ReportMetric(rows[len(rows)-1].Electrical, "mesh/central")
	}
}

func BenchmarkToyExampleSection34(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Toy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio, "eps/iris")
	}
}

func BenchmarkFig9OSNRPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9()
		b.ReportMetric(rows[2].PenaltyDB, "dB@3amps")
	}
}

// BenchmarkSweep times the Fig. 12 quick grid fully serial
// (Parallelism 1): it isolates the single-thread wins — the hoisted map
// generation, the reused 0-failure plan, and the memoised shortest-path
// trees — from worker-pool scaling.
func BenchmarkSweep(b *testing.B) {
	cfg := experiments.QuickSweep()
	cfg.Parallelism = 1
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

// BenchmarkSweepParallel times the same grid with the worker pool at
// GOMAXPROCS; rows are identical to BenchmarkSweep's by construction.
func BenchmarkSweepParallel(b *testing.B) {
	cfg := experiments.QuickSweep() // Parallelism 0 = GOMAXPROCS
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

func BenchmarkFig12aCostCDF(b *testing.B) {
	cfg := experiments.QuickSweep()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.ExtractRatios(rows)
		b.ReportMetric(stats.Median(r.EPSOverIris), "eps/iris-median")
	}
}

func BenchmarkFig12bSRCostCDF(b *testing.B) {
	cfg := experiments.QuickSweep()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.ExtractRatios(rows)
		b.ReportMetric(stats.Median(r.SROverIris), "sr-eps/iris-median")
	}
}

func BenchmarkFig12cPortRatio(b *testing.B) {
	cfg := experiments.QuickSweep()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.ExtractRatios(rows)
		b.ReportMetric(stats.Median(r.PortRatioEPS), "eps-inet/dc-median")
	}
}

func BenchmarkFig12dFailureCost(b *testing.B) {
	cfg := experiments.QuickSweep()
	cfg.MaxFailures = 2
	cfg.MapSeeds = cfg.MapSeeds[:2]
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.ExtractRatios(rows)
		b.ReportMetric(stats.Median(r.EPS0OverIris), "eps0/iris2-median")
	}
}

func BenchmarkFig14BERTimeline(b *testing.B) {
	cfg := experiments.DefaultFig14()
	cfg.DurationS = 300
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxBER, "maxBER")
	}
}

func BenchmarkFig17Slowdown(b *testing.B) {
	cfg := experiments.Fig17Config{
		Seed:      1,
		Utils:     []float64{0.4},
		Bounds:    []float64{0.5},
		Intervals: []float64{10},
		DurationS: 30,
		Dist:      traffic.WebSearch(),
	}
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig17(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].All, "p99-slowdown")
	}
}

func BenchmarkFig18Workloads(b *testing.B) {
	cfg := experiments.DefaultFig18()
	cfg.DurationS = 20
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig18(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].All, "web1-p99-slowdown")
	}
}

func BenchmarkAppendixAOverhead(b *testing.B) {
	cfg := experiments.QuickSweep()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.ExtractRatios(rows)
		b.ReportMetric(stats.Mean(r.Overheads)*100, "%overhead-mean")
	}
}

func BenchmarkAppendixBHybrid(b *testing.B) {
	cfg := experiments.QuickSweep()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := experiments.AppendixB(rows)
		b.ReportMetric(stats.Median(res.FiberSavedFrac)*100, "%residual-saved")
	}
}

// --- micro-benchmarks for the planner's hot algorithms ---

func benchRegion(b *testing.B, n int) (*fibermap.Map, []int) {
	b.Helper()
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = 1
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = 2, n
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		b.Fatal(err)
	}
	return m, dcs
}

func BenchmarkDijkstraRegion(b *testing.B) {
	m, dcs := benchRegion(b, 10)
	g := m.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(dcs[i%len(dcs)])
	}
}

func BenchmarkMaxFlow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := graph.NewFlowNetwork(40)
		for j := 0; j < 200; j++ {
			u, v := rng.Intn(40), rng.Intn(40)
			if u != v {
				f.AddArc(u, v, float64(1+rng.Intn(16)))
			}
		}
		f.MaxFlow(0, 39)
	}
}

func BenchmarkHoseWorstCaseLoad(b *testing.B) {
	caps := make(map[int]float64)
	var pairs []hose.Pair
	for i := 0; i < 20; i++ {
		caps[i] = 16
		for j := i + 1; j < 20; j++ {
			pairs = append(pairs, hose.Pair{A: i, B: j})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hose.WorstCaseLoad(caps, pairs)
	}
}

func BenchmarkPlanNoFailures(b *testing.B) {
	m, dcs := benchRegion(b, 10)
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.New(plan.Input{Map: m, Capacity: caps, Lambda: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanTwoFailures(b *testing.B) {
	m, dcs := benchRegion(b, 10)
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := plan.New(plan.Input{Map: m, Capacity: caps, Lambda: 40, MaxFailures: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pl.NScena), "scenarios")
	}
}

// BenchmarkFullSolve measures the redesigned entry point: a warmed
// core.Solver re-solving the 10-DC bench region (plan plus all three
// priced breakdowns) on its retained arena. The acceptance gate for the
// Solver API is ≥3× faster than the fresh-workspace path per solve;
// BenchmarkFullSolveCold measures that path (one throwaway Solver per
// iteration, the old core.Plan cost shape) on the same region.
func BenchmarkFullSolve(b *testing.B) {
	m, dcs := benchRegion(b, 10)
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 16
	}
	region := core.Region{Map: m, Capacity: caps, Lambda: 40}
	opts := core.DefaultOptions()
	opts.MaxFailures = 1
	s := core.NewSolver(opts)
	if _, err := s.Solve(region); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(region); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSolveCold(b *testing.B) {
	m, dcs := benchRegion(b, 10)
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 16
	}
	region := core.Region{Map: m, Capacity: caps, Lambda: 40}
	opts := core.DefaultOptions()
	opts.MaxFailures = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Plan(region, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpticsEvaluate(b *testing.B) {
	pathA, _ := optics.TestbedPaths()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optics.Evaluate(pathA)
	}
}

func BenchmarkFlowsimPipe(b *testing.B) {
	cfg := flowsim.Config{
		Seed: 1, DurationS: 10, Dist: traffic.WebSearch(),
		Pipes: []flowsim.Pipe{{CapacityGbps: 10, UtilFrac: 0.5}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := flowsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Flows)), "flows")
	}
}

// BenchmarkFlowsimLoad drives the bucketed load engine through a
// user-scale event: a single fat pipe whose full 2.5s outage accumulates
// a backlog of over a million concurrent flows, then drains it. The
// peak-flows metric is the acceptance gate for "millions of flows
// through a reconfiguring region"; flows is the total simulated.
func BenchmarkFlowsimLoad(b *testing.B) {
	dist := traffic.FBWeb()
	// Size the pipe so the outage backlog passes 1.2M flows:
	// lambda = util*capacity/mean, backlog ≈ lambda*outage.
	const (
		util          = 0.5
		outageS       = 2.5
		targetBacklog = 1.3e6
	)
	lambda := targetBacklog / outageS
	capGbps := lambda * dist.Mean() * 8 / util / 1e9
	cfg := flowsim.LoadConfig{
		Seed: 1, DurationS: 8, Dist: dist,
		Pipes:        []flowsim.Pipe{{CapacityGbps: capGbps, UtilFrac: util}},
		Dips:         map[int][]flowsim.Dip{0: {{TimeS: 2, DurationS: outageS, FracLost: 1}}},
		BucketCredit: dist.Max() / 4096,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := flowsim.RunLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if st.PeakConcurrent < 1_000_000 {
			b.Fatalf("peak concurrency %d under 1M", st.PeakConcurrent)
		}
		b.ReportMetric(float64(st.PeakConcurrent), "peak-flows")
		b.ReportMetric(float64(st.Flows), "flows")
	}
}
