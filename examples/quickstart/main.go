// Quickstart: plan the paper's Fig. 10 toy region and print the §3.4 cost
// comparison. This is the smallest end-to-end use of the library:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iris/internal/core"
	"iris/internal/fibermap"
)

func main() {
	log.SetFlags(0)

	// The Fig. 10 example: 4 DCs of 160 Tbps each (10 fiber-pairs at 400G
	// × 40 wavelengths), two hubs, five ducts.
	toy := fibermap.Toy()
	capacity := make(map[int]int)
	for _, dc := range toy.Map.DCs() {
		capacity[dc] = 10
	}

	dep, err := core.Plan(core.Region{
		Map:      toy.Map,
		Capacity: capacity,
		Lambda:   40,
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Iris quickstart — §3.4 toy example")
	fmt.Printf("fiber-pairs: %d base + %d extra for fiber switching\n",
		dep.Plan.BaseFiberPairs(), dep.Plan.TotalFiberPairs()-dep.Plan.BaseFiberPairs())
	fmt.Printf("electrical design: %5d transceivers, $%.1fM/yr\n",
		dep.EPS.TransceiverCount(), dep.EPS.Total()/1e6)
	fmt.Printf("Iris design:       %5d transceivers, $%.1fM/yr\n",
		dep.Iris.TransceiverCount(), dep.Iris.Total()/1e6)
	fmt.Printf("Iris is %.1fx cheaper (paper: 2.7x)\n", dep.EPS.Total()/dep.Iris.Total())
}
