// Servicearea: renders the Fig. 5-style siting map for a synthetic region
// — which sites could host the next DC under the centralized model (needs
// to be within 60 km of fiber from both hubs) versus the distributed model
// (within 120 km of fiber from every existing DC) — and prints the Fig. 6
// area-increase ratio.
//
//	go run ./examples/servicearea
package main

import (
	"fmt"
	"log"

	"iris/internal/fibermap"
	"iris/internal/siting"
)

func main() {
	log.SetFlags(0)

	const seed = 2
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed+50, 4
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	h1, h2 := fibermap.ChooseHubs(m, 6)

	a := siting.DefaultAnalysis(m)
	a.GridCellKM = 4

	fmt.Printf("region: %d huts, %d DCs placed; hubs %s and %s\n\n",
		len(m.Huts()), len(dcs), m.Nodes[h1].Name, m.Nodes[h2].Name)
	fmt.Print(a.Render(h1, h2, dcs, 72))

	ca, err := a.CentralizedArea(h1, h2)
	if err != nil {
		log.Fatal(err)
	}
	da, err := a.DistributedArea(dcs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncentralized service area: %6.0f km²\n", ca)
	fmt.Printf("distributed service area: %6.0f km²\n", da)
	fmt.Printf("area increase: %.1fx (the paper reports 2-5x across Azure regions)\n", da/ca)
}
