// Failover: demonstrates the OC4 guarantee — a plan with 2-cut tolerance
// keeps every DC pair connected on an SLA-compliant, fully provisioned
// path through any two simultaneous duct cuts, while a 0-tolerance plan
// loses capacity.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"math"

	"iris/internal/fibermap"
	"iris/internal/graph"
	"iris/internal/plan"
)

func main() {
	log.SetFlags(0)

	const seed = 3
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed, 6
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	caps := make(map[int]int, len(dcs))
	for _, dc := range dcs {
		caps[dc] = 8
	}

	tolerant, err := plan.New(plan.Input{Map: m, Capacity: caps, Lambda: 40, MaxFailures: 2})
	if err != nil {
		log.Fatal(err)
	}
	fragile, err := plan.New(plan.Input{Map: m, Capacity: caps, Lambda: 40, MaxFailures: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6-DC region: 2-cut-tolerant plan leases %d fiber-pairs, fragile plan %d\n",
		tolerant.TotalFiberPairs(), fragile.TotalFiberPairs())

	// Exhaustively re-check the tolerant plan: under every 2-cut scenario,
	// every still-connected DC pair must find a path whose every duct the
	// plan provisioned.
	g := m.Graph()
	var ductIDs []int
	for _, d := range m.Ducts {
		ductIDs = append(ductIDs, d.ID)
	}
	scenarios, covered, uncovReroutes := 0, 0, 0
	graph.FailureScenarios(ductIDs, 2, func(cut map[int]bool) {
		scenarios++
		sub := g.WithoutEdges(cut)
		for i, a := range dcs {
			tree := sub.Dijkstra(a)
			for _, b := range dcs[i+1:] {
				if math.IsInf(tree.Dist[b], 1) {
					continue // physically disconnected: no guarantee owed
				}
				_, edges, _ := tree.PathTo(b)
				ok := true
				for _, e := range edges {
					duT := tolerant.Ducts[e.ID]
					if duT == nil || duT.TotalPairs() == 0 {
						ok = false
					}
				}
				if ok {
					covered++
				} else {
					uncovReroutes++
				}
			}
		}
	})
	fmt.Printf("checked %d failure scenarios: %d surviving pair-paths fully provisioned, %d not\n",
		scenarios, covered, uncovReroutes)
	if uncovReroutes > 0 {
		log.Fatal("FAIL: the tolerant plan left reroutes unprovisioned")
	}

	// Show a concrete double cut: kill the two ducts carrying the most
	// fiber and confirm the tolerant plan still routes everything.
	var worst1, worst2, best1, best2 = -1, -1, 0, 0
	for id, du := range tolerant.Ducts {
		if du.TotalPairs() > best1 {
			worst2, best2 = worst1, best1
			worst1, best1 = id, du.TotalPairs()
		} else if du.TotalPairs() > best2 {
			worst2, best2 = id, du.TotalPairs()
		}
	}
	cut := map[int]bool{worst1: true, worst2: true}
	sub := g.WithoutEdges(cut)
	fmt.Printf("\ncutting the two busiest ducts (%d and %d, %d+%d fiber-pairs):\n",
		worst1, worst2, best1, best2)
	for i, a := range dcs {
		tree := sub.Dijkstra(a)
		for _, b := range dcs[i+1:] {
			if math.IsInf(tree.Dist[b], 1) {
				fmt.Printf("  %s-%s physically disconnected by the cuts\n",
					m.Nodes[a].Name, m.Nodes[b].Name)
				continue
			}
			fmt.Printf("  %s-%s re-routes over %.1f km (SLA 120 km: %v)\n",
				m.Nodes[a].Name, m.Nodes[b].Name, tree.Dist[b], tree.Dist[b] <= 120)
		}
	}
}
