// Regionplan: the full planning workflow on a realistic synthetic region —
// generate a metro fiber map, place DCs the way the paper's §6.1
// methodology does, plan with a 2-cut failure tolerance, then allocate
// circuits for a concrete traffic matrix and show what a traffic shift
// would reconfigure.
//
//	go run ./examples/regionplan
package main

import (
	"fmt"
	"log"
	"math/rand"

	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/traffic"
)

func main() {
	log.SetFlags(0)

	// A region: 24-hut metro fiber map, 8 DCs of 16 fiber-pairs each.
	const seed = 7
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed, 8
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	capacity := make(map[int]int, len(dcs))
	for _, dc := range dcs {
		capacity[dc] = 16
	}

	dep, err := core.Plan(core.Region{Map: m, Capacity: capacity, Lambda: 40},
		core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	pl := dep.Plan
	fmt.Printf("planned %d-DC region under %d failure scenarios:\n", len(dcs), pl.NScena)
	fmt.Printf("  %d fiber-pairs (%d base), %d amplifiers, %d cut-throughs, %d/%d huts used\n",
		pl.TotalFiberPairs(), pl.BaseFiberPairs(), pl.TotalAmps(), len(pl.Cuts),
		len(pl.UsedHuts()), len(m.Huts()))
	fmt.Printf("  EPS $%.1fM/yr vs Iris $%.1fM/yr (%.1fx)\n",
		dep.EPS.Total()/1e6, dep.Iris.Total()/1e6, dep.EPS.Total()/dep.Iris.Total())

	// Circuit allocation for a heavy-tailed matrix at 50% utilization.
	rng := rand.New(rand.NewSource(seed))
	caps := make(map[int]float64, len(dcs))
	for _, dc := range dcs {
		caps[dc] = float64(capacity[dc] * 40) // wavelengths
	}
	matrix := traffic.HeavyTailed(rng, dcs, caps, 0.5)
	integerize(matrix)
	alloc, err := dep.Allocate(matrix)
	if err != nil {
		log.Fatal(err)
	}
	full, residual := 0, 0
	for _, f := range alloc.Fibers {
		full += f
	}
	for _, r := range alloc.Residual {
		if r > 0 {
			residual++
		}
	}
	fmt.Printf("\ncircuit allocation at 50%% utilization:\n")
	fmt.Printf("  %d full fiber circuits, %d pairs using their residual fiber\n", full, residual)

	// Evolve the traffic and show the reconfiguration a controller would
	// execute.
	cp := traffic.ChangeProcess{Bound: 0.5, Caps: caps, Util: 0.5}
	cp.Step(rng, matrix)
	integerize(matrix)
	newAlloc, err := dep.Allocate(matrix)
	if err != nil {
		log.Fatal(err)
	}
	moves := core.Diff(alloc, newAlloc)
	fmt.Printf("\nafter a 50%%-bounded traffic change: %d circuits need fiber moves\n", len(moves))
	for i, mv := range moves {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(moves)-5)
			break
		}
		fmt.Printf("  %s ↔ %s: %+d fibers (%.0f%% of the circuit dims for 70 ms)\n",
			m.Nodes[mv.Pair.A].Name, m.Nodes[mv.Pair.B].Name,
			mv.FibersDelta, mv.FracAffected*100)
	}
	if len(moves) == 0 {
		fmt.Println("  (the change fit within residual wavelengths — no fiber switching at all)")
	}
}

func integerize(m *traffic.Matrix) {
	for _, p := range m.Pairs() {
		m.Set(p, float64(int(m.Get(p))))
	}
}
