// Reconfig: drives the Iris control plane (§5) end to end — emulated OSS,
// amplifier, transceiver and channel-emulator agents on loopback TCP, a
// controller that establishes circuits and then executes a drained
// reconfiguration, and a state audit — followed by the physical-layer view
// of the same event: the Fig. 14 BER timeline around the switch.
//
//	go run ./examples/reconfig
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"iris/internal/control"
	"iris/internal/optics"
)

func main() {
	log.SetFlags(0)

	tb, err := control.StartTestbed(map[string]control.Device{
		"dc1-oss":  control.NewOSS(16, 20*time.Millisecond),
		"dc2-oss":  control.NewOSS(16, 20*time.Millisecond),
		"hut-oss":  control.NewOSS(32, 20*time.Millisecond),
		"hut-amp":  control.NewAmplifier(optics.AmpGainDB, -3),
		"dc1-xcvr": control.NewTransceiverBank(2, 40),
		"dc2-xcvr": control.NewTransceiverBank(2, 40),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	ctx := context.Background()
	fmt.Println("setting up the Fig. 13 circuit (60+60 km via the hut amplifier)...")
	_, err = tb.Controller.Reconfigure(ctx, control.Change{
		Switches: []control.OSSOp{
			{Device: "dc1-oss", In: 0, Out: 4},
			{Device: "hut-oss", In: 0, Out: 1},
			{Device: "dc2-oss", In: 0, Out: 4},
		},
		Retunes: []control.TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0, Wavelength: 10},
			{Device: "dc2-xcvr", Idx: 0, Wavelength: 10},
		},
		Undrain: []control.TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0},
			{Device: "dc2-xcvr", Idx: 0},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("swapping to the 20+10 km path (drain → switch → retune → undrain)...")
	rep, err := tb.Controller.Reconfigure(ctx, control.Change{
		Drain: []control.TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0},
			{Device: "dc2-xcvr", Idx: 0},
		},
		Switches: []control.OSSOp{
			{Device: "hut-oss", In: 0, Disconnect: true},
			{Device: "hut-oss", In: 0, Out: 2},
		},
		Retunes: []control.TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0, Wavelength: 12},
			{Device: "dc2-xcvr", Idx: 0, Wavelength: 12},
		},
		Undrain: []control.TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0},
			{Device: "dc2-xcvr", Idx: 0},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range rep.Phases {
		fmt.Printf("  %-8s %v\n", p.Name, p.Duration.Round(time.Microsecond))
	}
	fmt.Printf("  total %v — no live traffic was on the path while it switched\n",
		rep.Total.Round(time.Microsecond))

	if err := tb.Controller.Audit(control.Expected{
		Cross: map[string]map[int]int{"hut-oss": {0: 2}},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("audit OK")

	// The same event at the physical layer: BER across a minute-spaced
	// reconfiguration cycle between the two testbed paths.
	fmt.Println("\nphysical layer (Fig. 14): BER across reconfigurations")
	pathA, pathB := optics.TestbedPaths()
	samples, err := optics.ReconfigExperiment{
		Seed: 1, DurationS: 180, IntervalS: 60, SampleMS: 10,
		PathA: pathA, PathB: pathB,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  max pre-FEC BER %.2e (soft-FEC threshold %.0e)\n",
		optics.MaxBER(samples), optics.SoftFECBERThreshold)
	fmt.Printf("  signal loss %.0f ms total across 2 switches (paper: ~50 ms each)\n",
		optics.OutageMS(samples))
}
