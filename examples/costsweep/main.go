// Costsweep: a miniature of the paper's §6.1 cost analysis — sweep region
// size and DC capacity over synthetic fiber maps and print how the
// EPS-to-Iris cost ratio moves with scale, reproducing the Fig. 12 trend
// that Iris's advantage grows with larger, more distributed regions.
//
//	go run ./examples/costsweep
package main

import (
	"fmt"
	"log"

	"iris/internal/experiments"
	"iris/internal/stats"
)

func main() {
	log.SetFlags(0)

	cfg := experiments.SweepConfig{
		MapSeeds:    []int64{0, 1, 2, 3},
		Ns:          []int{5, 10, 15},
		Fs:          []int{8, 16},
		Lambdas:     []int{40},
		MaxFailures: 1,
	}
	rows, err := experiments.Sweep(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-4s %-4s %-12s %-12s %-10s %s\n",
		"map", "n", "f", "EPS $M/yr", "Iris $M/yr", "EPS/Iris", "in-network ports EPS:Iris")
	byN := make(map[int][]float64)
	for _, r := range rows {
		ratio := r.EPS.Total() / r.Iris.Total()
		byN[r.N] = append(byN[r.N], ratio)
		fmt.Printf("%-6d %-4d %-4d %-12.1f %-12.1f %-10.2f %d:%d\n",
			r.MapSeed, r.N, r.F, r.EPS.Total()/1e6, r.Iris.Total()/1e6, ratio,
			r.EPS.InNetworkPortCount(), r.Iris.InNetworkPortCount())
	}

	fmt.Println("\nIris's advantage grows with region size (Fig. 12 trend):")
	for _, n := range cfg.Ns {
		fmt.Printf("  n=%-3d median EPS/Iris = %.2fx\n", n, stats.Median(byN[n]))
	}
}
