module iris

go 1.22
