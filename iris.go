// Package iris is a from-scratch reproduction of "Beyond the mega-data
// center: networking multi-data center regions" (Dukic et al., SIGCOMM
// 2020): the design-space analysis of regional data-center interconnects
// and the Iris all-optical, fiber-switched DCI architecture.
//
// This top-level package is the public face of the library for downstream
// importers: it re-exports the planning, costing, allocation, chaos,
// experiment and control-plane types from the implementation packages
// under internal/. The typical flow is:
//
//	gcfg := iris.DefaultGen()
//	gcfg.Seed = seed
//	m := iris.GenerateMap(gcfg)
//	pcfg := iris.DefaultPlace()
//	pcfg.Seed = seed
//	dcs, err := iris.PlaceDCs(m, pcfg)
//	dep, err := iris.Plan(iris.Region{Map: m, Capacity: caps, Lambda: 40},
//	    iris.DefaultOptions())
//	alloc, err := dep.Allocate(matrix)          // circuits for a demand matrix
//	moves := iris.Diff(oldAlloc, newAlloc)      // what a reconfiguration touches
//
// A control loop that applies many successive demand shifts allocates
// incrementally instead of re-solving per shift:
//
//	st, err := dep.AllocateState(matrix)        // full solve, books retained
//	delta := iris.DiffMatrices(matrix, next)    // the pairs that moved
//	undo, stats, err := dep.AllocateDelta(st, delta)
//
// and the irisd daemon (DaemonConfig, NewDaemon) wraps that loop with
// drained reconfigurations, health supervision and an HTTP metrics/status
// surface. Survivability audits (Survivability) and live fault injection
// (chaos Scenario / AuditResult) ride on the same planned deployments.
// One call assembles a whole region (DefaultRegionConfig, BuildRegion),
// and a fleet supervisor (DefaultFleetConfig, NewFleet) scales that to N
// regions converging concurrently with an inter-region demand bus,
// correlated chaos storms (StormConfig) and an aggregated HTTP plane.
//
// Every config type follows one construction idiom: call its Default*
// helper and mutate the returned struct (for example DefaultGen, then set
// Seed). The cmd/ tools (irisplan, irisbench, irisctl, irisd) and
// examples/ programs exercise the same API end to end; DESIGN.md
// catalogues the system inventory and EXPERIMENTS.md the paper-vs-measured
// outcomes.
package iris

import (
	"iris/internal/chaos"
	"iris/internal/core"
	"iris/internal/cost"
	"iris/internal/daemon"
	"iris/internal/experiments"
	"iris/internal/fibermap"
	"iris/internal/fleet"
	"iris/internal/flowsim"
	"iris/internal/history"
	"iris/internal/hose"
	"iris/internal/robust"
	"iris/internal/topoapi"
	"iris/internal/traffic"
)

// Fiber-map types (internal/fibermap).
type (
	// Map is a region's fiber map: DC and hut nodes joined by fiber ducts.
	Map = fibermap.Map
	// GenConfig parameterises the synthetic metro fiber-map generator.
	GenConfig = fibermap.GenConfig
	// PlaceConfig parameterises the paper's randomized DC placement (§6.1).
	PlaceConfig = fibermap.PlaceConfig
	// ToyRegion is the paper's Fig. 10 worked example.
	ToyRegion = fibermap.ToyRegion
)

// Planning types (internal/core, internal/cost).
type (
	// Region is the planning input: fiber map, per-DC capacities in
	// fiber-pairs, and wavelengths per fiber.
	Region = core.Region
	// Options tunes planning (failure tolerance, price catalog).
	Options = core.Options
	// Deployment is a planned region with its cost breakdowns.
	Deployment = core.Deployment
	// Allocation assigns fiber circuits and residual wavelengths per DC pair.
	Allocation = core.Allocation
	// Move is one pair's circuit change between two allocations.
	Move = core.Move
	// Solver is a reusable planning engine: it owns an arena-backed
	// workspace and re-solves a region allocation-free once warm. Its
	// result is overwritten by the next Solve; Plan wraps a throwaway
	// Solver when the result must live forever.
	Solver = core.Solver
	// Catalog holds annual amortized component prices (§3.3).
	Catalog = cost.Catalog
	// Breakdown is a priced bill of materials for one design.
	Breakdown = cost.Breakdown
)

// Incremental-allocation types (internal/core, internal/traffic). An
// AllocState retains the occupancy books of an allocation so successive
// demand shifts re-solve only the changed DC pairs.
type (
	// AllocState is an Allocation plus the bookkeeping it was derived
	// from; produce with Deployment.AllocateState, advance with
	// Deployment.AllocateDelta.
	AllocState = core.AllocState
	// DeltaStats reports how one AllocateDelta was solved (incremental or
	// fallback, pairs re-solved and re-audited).
	DeltaStats = core.DeltaStats
	// Undo reverts one AllocateDelta after a downstream failure.
	Undo = core.Undo
	// Delta is a sparse demand update: changed DC pairs mapped to their
	// new absolute demand.
	Delta = traffic.Delta
)

// Traffic types (internal/traffic, internal/hose).
type (
	// Matrix is a symmetric DC-pair demand matrix.
	Matrix = traffic.Matrix
	// Pair is an unordered DC pair.
	Pair = hose.Pair
	// ChangeProcess evolves a matrix per §6.3 (bounded or unbounded).
	ChangeProcess = traffic.ChangeProcess
)

// Failure-scenario and survivability types (internal/chaos,
// internal/experiments).
type (
	// Scenario is one failure event: simultaneously severed ducts tagged
	// with their cause (duct cut, hut loss, amp failure, geo event).
	Scenario = chaos.Scenario
	// AuditResult is the survivability audit outcome for one scenario.
	AuditResult = chaos.Result
	// SurvivabilityConfig parameterises the region-wide survivability
	// experiment.
	SurvivabilityConfig = experiments.SurvivabilityConfig
	// SurvivabilityResult aggregates audit outcomes per failure class.
	SurvivabilityResult = experiments.SurvivabilityResult
)

// User-scale flow load engine types (internal/flowsim,
// internal/traffic). RunLoad simulates millions of concurrent flows
// through reconfiguring pipes; a Monitor attaches the same engine to a
// running daemon so every drained reconfiguration reports its flow
// impact.
type (
	// FlowPipe is one simulated DC-pair pipe (capacity and offered load).
	FlowPipe = flowsim.Pipe
	// FlowDip is one capacity reduction (a drained reconfiguration).
	FlowDip = flowsim.Dip
	// LoadConfig parameterises the bucketed user-scale load engine.
	LoadConfig = flowsim.LoadConfig
	// LoadStats aggregates a load run: flow counts, stranded bytes, peak
	// concurrency, and FCT quantile sketches.
	LoadStats = flowsim.LoadStats
	// Sketch is the mergeable log-bucketed FCT quantile sketch.
	Sketch = flowsim.Sketch
	// FlowMonitorConfig parameterises the live flow-impact monitor.
	FlowMonitorConfig = flowsim.MonitorConfig
	// FlowMonitor replays committed reconfigurations through the load
	// engine; wire into DaemonConfig.FlowMonitor.
	FlowMonitor = flowsim.Monitor
	// FlowImpact is one reconfiguration's simulated user impact (the
	// /status flow_impact block).
	FlowImpact = flowsim.Impact
	// LoadProfile declares diurnal + flash-crowd arrival shaping.
	LoadProfile = traffic.LoadProfile
	// Shape is one seeded realisation of a LoadProfile; its Mult(t) is
	// pure and thread-safe.
	Shape = traffic.Shape
	// SizeDist is an empirical flow-size distribution (web1, web2,
	// hadoop, cache).
	SizeDist = traffic.SizeDist
)

// Control-plane types (internal/daemon).
type (
	// DaemonConfig parameterises the irisd regional control loop.
	DaemonConfig = daemon.Config
	// Daemon is the long-running control loop: construct with NewDaemon,
	// drive with Run, observe via Handler/Status.
	Daemon = daemon.Daemon
	// RegionConfig describes one full region to assemble — fabric, feed,
	// injector, flow monitor, daemon — through BuildRegion, the single
	// assembly path shared by irisd and the fleet.
	RegionConfig = daemon.RegionConfig
	// BuiltRegion is one assembled region; Close tears its testbed down.
	BuiltRegion = daemon.BuiltRegion
	// DemandSummary is a region's hose-aggregate demand view, as
	// published on the fleet's inter-region demand bus.
	DemandSummary = daemon.DemandSummary
)

// Robust topology-engineering types (internal/robust, internal/daemon,
// internal/traffic, internal/experiments) — METTEOR mode: one envelope
// allocation solved over a set of traffic matrices and verified
// admissible for every one, so the control plane reconfigures only when
// live demand escapes the committed envelope.
type (
	// RobustConfig tunes the envelope solver (headroom, tighten factor,
	// iteration budget).
	RobustConfig = robust.Config
	// RobustEnvelope is a committed per-pair demand envelope; Contains,
	// Escapes and Utilization classify a live matrix against it.
	RobustEnvelope = robust.Envelope
	// RobustResult is one solved envelope: the allocation, per-matrix
	// admissibility verdicts, and the overprovisioning it cost.
	RobustResult = robust.Result
	// RobustVerdict is one matrix's admissibility audit against the
	// envelope allocation.
	RobustVerdict = robust.Verdict
	// RobustPolicy arms METTEOR mode on a daemon via
	// DaemonConfig.Robust.
	RobustPolicy = daemon.RobustPolicy
	// RobustStatus is /status's robust block.
	RobustStatus = daemon.RobustStatus
	// TrafficWindow is a bounded FIFO of recent demand matrices, the
	// envelope's solve set.
	TrafficWindow = traffic.Window
	// RobustAblationConfig parameterises the robust-vs-delta churn
	// experiment; RobustAblationRow is one (window, volatility) cell.
	RobustAblationConfig = experiments.RobustAblationConfig
	RobustAblationRow    = experiments.RobustAblationRow
)

// Reconfiguration-history and topology-intelligence types
// (internal/history, internal/topoapi). The lake is an append-only
// bounded record of every committed reconfiguration; the topology API
// serves path, criticality, what-if and history queries over a live
// region (irisd's /api/* endpoints).
type (
	// HistoryLake stores the last N reconfiguration records; wire into
	// DaemonConfig.History and query via Records/Summaries/Get.
	HistoryLake = history.Lake
	// HistoryConfig parameterises the lake (capacity, JSONL journal).
	HistoryConfig = history.Config
	// HistoryRecord is one committed reconfiguration: trigger, health
	// and hose brackets, allocation diff, span tree.
	HistoryRecord = history.Record
	// HistorySummary is the listing row for one record.
	HistorySummary = history.Summary
	// PairDelta is one DC pair's absolute old→new allocation change;
	// compose windows of them with core.ApplyDeltas.
	PairDelta = core.PairDelta
	// TopoAPIConfig wires the topology API to a region's snapshot,
	// graph and history lake.
	TopoAPIConfig = topoapi.Config
	// TopoAPI serves /api/paths, /api/critical, /api/whatif and
	// /api/history*; construct with NewTopoAPI, mount with Register.
	TopoAPI = topoapi.Server
)

// Multi-region fleet types (internal/fleet).
type (
	// FleetConfig parameterises the multi-region fleet supervisor.
	FleetConfig = fleet.Config
	// Fleet supervises N regions: construct with NewFleet, drive with
	// Run/Round, observe via Handler/Status, stress with Storm.
	Fleet = fleet.Fleet
	// FleetStatus is the fleet-wide /status summary.
	FleetStatus = fleet.Status
	// FleetSkew is the cross-region demand-skew report derived from the
	// inter-region demand bus.
	FleetSkew = fleet.SkewReport
	// StormConfig describes a correlated multi-region failure event.
	StormConfig = fleet.StormConfig
)

// Toy returns the paper's Fig. 10 example region (§3.4).
func Toy() *ToyRegion { return fibermap.Toy() }

// DefaultGen returns the evaluation's fiber-map generator settings; set
// Seed on the returned struct.
func DefaultGen() GenConfig { return fibermap.DefaultGen() }

// DefaultGenConfig returns DefaultGen with the seed filled in.
//
// Deprecated: use DefaultGen and set Seed on the returned struct.
func DefaultGenConfig(seed int64) GenConfig { return fibermap.DefaultGenConfig(seed) }

// GenerateMap builds a synthetic metro fiber map of huts and ducts.
func GenerateMap(cfg GenConfig) *Map { return fibermap.Generate(cfg) }

// DefaultPlace returns the paper's DC-placement settings (120 km SLA,
// 8-DC regions); set Seed (and N) on the returned struct.
func DefaultPlace() PlaceConfig { return fibermap.DefaultPlace() }

// DefaultPlaceConfig returns DefaultPlace with the seed and DC count
// filled in.
//
// Deprecated: use DefaultPlace and set Seed/N on the returned struct.
func DefaultPlaceConfig(seed int64, n int) PlaceConfig {
	return fibermap.DefaultPlaceConfig(seed, n)
}

// PlaceDCs adds cfg.N data centers to a map using the §6.1 procedure.
func PlaceDCs(m *Map, cfg PlaceConfig) ([]int, error) { return fibermap.PlaceDCs(m, cfg) }

// DefaultOptions returns the paper's operational planning defaults (duct-
// cut tolerance 2, §3.3 prices); mutate the returned struct to deviate.
func DefaultOptions() Options { return core.DefaultOptions() }

// Plan plans a region end to end: Algorithm 1 topology and capacity under
// failures, residual fibers, Algorithm 2 amplifiers, cut-throughs, and the
// EPS/Iris/hybrid cost breakdowns.
func Plan(region Region, opts Options) (*Deployment, error) { return core.Plan(region, opts) }

// NewSolver returns a reusable planning engine for loops that re-plan the
// same region — a warmed Solver.Solve is several times faster than Plan
// and allocation-free. A zero Prices catalog selects the §3.3 defaults.
func NewSolver(opts Options) *Solver { return core.NewSolver(opts) }

// Diff returns the circuit moves between two allocations.
func Diff(oldA, newA Allocation) []Move { return core.Diff(oldA, newA) }

// NewHistory opens a reconfiguration history lake.
func NewHistory(cfg HistoryConfig) (*HistoryLake, error) { return history.New(cfg) }

// NewTopoAPI builds the topology-intelligence query server; mount it on
// a mux with Register.
func NewTopoAPI(cfg TopoAPIConfig) *TopoAPI { return topoapi.New(cfg) }

// DefaultCatalog returns the paper's §3.3 component prices.
func DefaultCatalog() Catalog { return cost.Default() }

// NewMatrix returns a zero demand matrix over the given DC node IDs.
func NewMatrix(dcs []int) *Matrix { return traffic.NewMatrix(dcs) }

// NewDelta returns an empty sparse demand update.
func NewDelta() Delta { return traffic.NewDelta() }

// DiffMatrices returns the Delta that turns the old demand matrix into
// the new one — the input Deployment.AllocateDelta re-solves
// incrementally.
func DiffMatrices(old, new *Matrix) Delta { return traffic.DiffMatrices(old, new) }

// DefaultSurvivability returns the survivability experiment's default
// configuration; set Seed or the failure-class toggles on the returned
// struct.
func DefaultSurvivability() SurvivabilityConfig { return experiments.DefaultSurvivability() }

// Survivability plans a region and audits it against enumerated failure
// scenarios (duct cuts, hut losses, amp failures, geo events), reporting
// survival rates per class.
func Survivability(cfg SurvivabilityConfig) (*SurvivabilityResult, error) {
	return experiments.Survivability(cfg)
}

// NewDaemon validates the configuration and prepares an irisd control
// loop; the first convergence happens on the first Run tick.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) { return daemon.New(cfg) }

// DefaultRegionConfig returns irisd's region defaults (toy map, 2 s
// control loop, tracing on); set Seed and toggles on the returned
// struct.
func DefaultRegionConfig() RegionConfig { return daemon.DefaultRegionConfig() }

// BuildRegion assembles one region end to end — fabric, traffic feed,
// optional chaos injector and flow monitor, supervising daemon — the
// same path irisd and the fleet share.
func BuildRegion(cfg RegionConfig) (*BuiltRegion, error) { return daemon.BuildRegion(cfg) }

// DefaultFleetConfig returns a small deterministic fleet configuration;
// set Regions, Seed and the Region template on the returned struct.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// NewFleet builds and wires N regions under one supervisor with a
// sharded convergence scheduler, an inter-region demand bus and an
// aggregated HTTP plane.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// RunLoad runs the user-scale flow load engine: processor-sharing fluid
// flows on a credit-bucket calendar, exact departures, millions of
// concurrent flows.
func RunLoad(cfg LoadConfig) (LoadStats, error) { return flowsim.RunLoad(cfg) }

// DefaultLoadProfile returns a plausible diurnal + flash-crowd arrival
// profile; mutate the returned struct to deviate (the zero LoadProfile
// is flat).
func DefaultLoadProfile() LoadProfile { return traffic.DefaultLoadProfile() }

// NewShape freezes one seeded realisation of a LoadProfile over the
// given horizon.
func NewShape(seed int64, p LoadProfile, horizonS float64) (*Shape, error) {
	return traffic.NewShape(seed, p, horizonS)
}

// WorkloadByName returns the published flow-size distribution with the
// given name: web1, web2, hadoop or cache.
func WorkloadByName(name string) (SizeDist, bool) { return traffic.WorkloadByName(name) }

// NewFlowMonitor validates the configuration and returns a live
// flow-impact monitor; pass it as DaemonConfig.FlowMonitor and register
// its metrics by sharing the daemon's telemetry registry.
func NewFlowMonitor(cfg FlowMonitorConfig) (*FlowMonitor, error) { return flowsim.NewMonitor(cfg) }

// DefaultRobustConfig returns the envelope solver's defaults (15%
// headroom, halve-toward-1 tightening, 8 iterations).
func DefaultRobustConfig() RobustConfig { return robust.DefaultConfig() }

// SolveRobust plans one allocation admissible for every matrix in the
// set: element-wise max envelope, headroom inflation, hose clamping, and
// a per-matrix admissibility audit of the result.
func SolveRobust(dep *Deployment, ms []*Matrix, cfg RobustConfig) (*RobustResult, error) {
	return robust.Solve(dep, ms, cfg)
}

// MaxEnvelope returns the element-wise maximum demand per DC pair over
// the matrix set — the raw (pre-headroom) envelope.
func MaxEnvelope(ms []*Matrix) map[Pair]float64 { return robust.MaxEnvelope(ms) }

// NewTrafficWindow returns an empty bounded window of the last n demand
// matrices (n < 1 is treated as 1).
func NewTrafficWindow(n int) *TrafficWindow { return traffic.NewWindow(n) }

// DefaultRobustAblation returns the robust-vs-delta experiment's CI-sized
// grid; set Seed, Windows and Bounds on the returned struct.
func DefaultRobustAblation() RobustAblationConfig { return experiments.DefaultRobustAblation() }

// RobustAblation replays seeded change processes through the per-shift
// delta policy and the METTEOR envelope policy and reports the
// churn/overprovisioning trade per cell.
func RobustAblation(cfg RobustAblationConfig) ([]RobustAblationRow, error) {
	return experiments.RobustAblation(cfg)
}
