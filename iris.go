// Package iris is a from-scratch reproduction of "Beyond the mega-data
// center: networking multi-data center regions" (Dukic et al., SIGCOMM
// 2020): the design-space analysis of regional data-center interconnects
// and the Iris all-optical, fiber-switched DCI architecture.
//
// This top-level package is the public face of the library for downstream
// importers: it re-exports the planning, costing, allocation and
// fiber-map types from the implementation packages under internal/. The
// typical flow is:
//
//	m := iris.GenerateMap(iris.DefaultGenConfig(seed))
//	dcs, err := iris.PlaceDCs(m, iris.DefaultPlaceConfig(seed, 8))
//	dep, err := iris.Plan(iris.Region{Map: m, Capacity: caps, Lambda: 40},
//	    iris.Options{MaxFailures: 2})
//	alloc, err := dep.Allocate(matrix)          // circuits for a demand matrix
//	moves := iris.Diff(oldAlloc, newAlloc)      // what a reconfiguration touches
//
// The cmd/ tools (irisplan, irisbench, irisctl) and examples/ programs
// exercise the same API end to end; DESIGN.md catalogues the system
// inventory and EXPERIMENTS.md the paper-vs-measured outcomes.
package iris

import (
	"iris/internal/core"
	"iris/internal/cost"
	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/traffic"
)

// Fiber-map types (internal/fibermap).
type (
	// Map is a region's fiber map: DC and hut nodes joined by fiber ducts.
	Map = fibermap.Map
	// GenConfig parameterises the synthetic metro fiber-map generator.
	GenConfig = fibermap.GenConfig
	// PlaceConfig parameterises the paper's randomized DC placement (§6.1).
	PlaceConfig = fibermap.PlaceConfig
	// ToyRegion is the paper's Fig. 10 worked example.
	ToyRegion = fibermap.ToyRegion
)

// Planning types (internal/core, internal/cost).
type (
	// Region is the planning input: fiber map, per-DC capacities in
	// fiber-pairs, and wavelengths per fiber.
	Region = core.Region
	// Options tunes planning (failure tolerance, price catalog).
	Options = core.Options
	// Deployment is a planned region with its cost breakdowns.
	Deployment = core.Deployment
	// Allocation assigns fiber circuits and residual wavelengths per DC pair.
	Allocation = core.Allocation
	// Move is one pair's circuit change between two allocations.
	Move = core.Move
	// Catalog holds annual amortized component prices (§3.3).
	Catalog = cost.Catalog
	// Breakdown is a priced bill of materials for one design.
	Breakdown = cost.Breakdown
)

// Traffic types (internal/traffic, internal/hose).
type (
	// Matrix is a symmetric DC-pair demand matrix.
	Matrix = traffic.Matrix
	// Pair is an unordered DC pair.
	Pair = hose.Pair
	// ChangeProcess evolves a matrix per §6.3 (bounded or unbounded).
	ChangeProcess = traffic.ChangeProcess
)

// Toy returns the paper's Fig. 10 example region (§3.4).
func Toy() *ToyRegion { return fibermap.Toy() }

// DefaultGenConfig returns the evaluation's fiber-map generator settings
// for the given seed.
func DefaultGenConfig(seed int64) GenConfig { return fibermap.DefaultGenConfig(seed) }

// GenerateMap builds a synthetic metro fiber map of huts and ducts.
func GenerateMap(cfg GenConfig) *Map { return fibermap.Generate(cfg) }

// DefaultPlaceConfig returns the paper's DC-placement settings (120 km SLA).
func DefaultPlaceConfig(seed int64, n int) PlaceConfig {
	return fibermap.DefaultPlaceConfig(seed, n)
}

// PlaceDCs adds n data centers to a map using the §6.1 procedure.
func PlaceDCs(m *Map, cfg PlaceConfig) ([]int, error) { return fibermap.PlaceDCs(m, cfg) }

// Plan plans a region end to end: Algorithm 1 topology and capacity under
// failures, residual fibers, Algorithm 2 amplifiers, cut-throughs, and the
// EPS/Iris/hybrid cost breakdowns.
func Plan(region Region, opts Options) (*Deployment, error) { return core.Plan(region, opts) }

// Diff returns the circuit moves between two allocations.
func Diff(oldA, newA Allocation) []Move { return core.Diff(oldA, newA) }

// DefaultCatalog returns the paper's §3.3 component prices.
func DefaultCatalog() Catalog { return cost.Default() }

// NewMatrix returns a zero demand matrix over the given DC node IDs.
func NewMatrix(dcs []int) *Matrix { return traffic.NewMatrix(dcs) }
