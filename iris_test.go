package iris_test

import (
	"fmt"
	"log"
	"testing"

	"iris"
)

// TestPublicAPIRoundTrip exercises the top-level surface the way a
// downstream importer would.
func TestPublicAPIRoundTrip(t *testing.T) {
	m := iris.GenerateMap(iris.DefaultGenConfig(3))
	dcs, err := iris.PlaceDCs(m, iris.DefaultPlaceConfig(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int, len(dcs))
	for _, dc := range dcs {
		caps[dc] = 8
	}
	dep, err := iris.Plan(iris.Region{Map: m, Capacity: caps, Lambda: 40},
		iris.Options{MaxFailures: 1, Prices: iris.DefaultCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := dep.EPS.Total() / dep.Iris.Total(); ratio < 1.5 {
		t.Errorf("EPS/Iris = %.2f, expected a clear Iris advantage", ratio)
	}

	tm := iris.NewMatrix(dcs)
	tm.Set(iris.Pair{A: dcs[0], B: dcs[1]}, 60)
	alloc, err := dep.Allocate(tm)
	if err != nil {
		t.Fatal(err)
	}
	tm.Set(iris.Pair{A: dcs[0], B: dcs[1]}, 10)
	alloc2, err := dep.Allocate(tm)
	if err != nil {
		t.Fatal(err)
	}
	moves := iris.Diff(alloc, alloc2)
	if len(moves) != 1 || moves[0].FibersDelta != -1 {
		t.Errorf("moves = %+v, want one single-fiber shrink", moves)
	}
}

// Example plans the paper's toy region through the public API.
func Example() {
	toy := iris.Toy()
	caps := make(map[int]int)
	for _, dc := range toy.Map.DCs() {
		caps[dc] = 10
	}
	dep, err := iris.Plan(iris.Region{Map: toy.Map, Capacity: caps, Lambda: 40}, iris.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the electrical design costs %.1fx the Iris design\n",
		dep.EPS.Total()/dep.Iris.Total())
	// Output:
	// the electrical design costs 2.7x the Iris design
}
