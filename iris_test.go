package iris_test

import (
	"fmt"
	"log"
	"testing"

	"iris"
)

// TestPublicAPIRoundTrip exercises the top-level surface the way a
// downstream importer would.
func TestPublicAPIRoundTrip(t *testing.T) {
	gcfg := iris.DefaultGen()
	gcfg.Seed = 3
	m := iris.GenerateMap(gcfg)
	pcfg := iris.DefaultPlace()
	pcfg.Seed, pcfg.N = 3, 5
	dcs, err := iris.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int, len(dcs))
	for _, dc := range dcs {
		caps[dc] = 8
	}
	dep, err := iris.Plan(iris.Region{Map: m, Capacity: caps, Lambda: 40},
		iris.Options{MaxFailures: 1, Prices: iris.DefaultCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := dep.EPS.Total() / dep.Iris.Total(); ratio < 1.5 {
		t.Errorf("EPS/Iris = %.2f, expected a clear Iris advantage", ratio)
	}

	tm := iris.NewMatrix(dcs)
	tm.Set(iris.Pair{A: dcs[0], B: dcs[1]}, 60)
	alloc, err := dep.Allocate(tm)
	if err != nil {
		t.Fatal(err)
	}
	tm.Set(iris.Pair{A: dcs[0], B: dcs[1]}, 10)
	alloc2, err := dep.Allocate(tm)
	if err != nil {
		t.Fatal(err)
	}
	moves := iris.Diff(alloc, alloc2)
	if len(moves) != 1 || moves[0].FibersDelta != -1 {
		t.Errorf("moves = %+v, want one single-fiber shrink", moves)
	}
}

// TestIncrementalAPIRoundTrip exercises the incremental-allocation surface
// (AllocateState, DiffMatrices, AllocateDelta, Undo) through the facade.
func TestIncrementalAPIRoundTrip(t *testing.T) {
	gcfg := iris.DefaultGen()
	gcfg.Seed = 3
	m := iris.GenerateMap(gcfg)
	pcfg := iris.DefaultPlace()
	pcfg.Seed, pcfg.N = 3, 5
	dcs, err := iris.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int, len(dcs))
	for _, dc := range dcs {
		caps[dc] = 8
	}
	opts := iris.DefaultOptions()
	opts.MaxFailures = 1
	dep, err := iris.Plan(iris.Region{Map: m, Capacity: caps, Lambda: 40}, opts)
	if err != nil {
		t.Fatal(err)
	}

	tm := iris.NewMatrix(dcs)
	tm.Set(iris.Pair{A: dcs[0], B: dcs[1]}, 60)
	var st *iris.AllocState
	if st, err = dep.AllocateState(tm); err != nil {
		t.Fatal(err)
	}

	next := iris.NewMatrix(dcs)
	next.Set(iris.Pair{A: dcs[0], B: dcs[1]}, 10)
	next.Set(iris.Pair{A: dcs[1], B: dcs[2]}, 35)
	undo, stats, err := dep.AllocateDelta(st, iris.DiffMatrices(tm, next))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Incremental || stats.PairsResolved != 2 {
		t.Fatalf("stats = %+v, want incremental 2-pair solve", stats)
	}
	want, err := dep.Allocate(next)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Allocation().Equal(want) {
		t.Fatal("incremental allocation diverged from full solve")
	}
	undo.Rollback()
	if back, err := dep.Allocate(tm); err != nil || !st.Allocation().Equal(back) {
		t.Fatalf("rollback did not restore the previous allocation (err %v)", err)
	}
}

// Example plans the paper's toy region through the public API.
func Example() {
	toy := iris.Toy()
	caps := make(map[int]int)
	for _, dc := range toy.Map.DCs() {
		caps[dc] = 10
	}
	dep, err := iris.Plan(iris.Region{Map: toy.Map, Capacity: caps, Lambda: 40}, iris.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the electrical design costs %.1fx the Iris design\n",
		dep.EPS.Total()/dep.Iris.Total())
	// Output:
	// the electrical design costs 2.7x the Iris design
}
