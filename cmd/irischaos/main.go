// Command irischaos audits a planned region's survivability against
// generated failure scenarios: exhaustive or sampled duct-cut sets,
// correlated hut/DC/amplifier-site losses, and geo-radius events.
//
// Usage:
//
//	irischaos [-toy] [-seed N] [-dcs N] [-capacity F] [-lambda L] [-failures K]
//	          [-mode exhaustive|sample|huts|dcs|amps|geo]
//	          [-cuts D] [-samples N] [-k K] [-radius KM] [-events N]
//	          [-format text|csv|json] [-parallel W] [-assert]
//
// The default run exhaustively audits every cut set up to -cuts ducts. With
// -assert the exit status is non-zero unless every audited scenario is hose
// admissible — the planner's k-failure guarantee, checked end to end — which
// makes the command usable as a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"iris/internal/chaos"
	"iris/internal/core"
	"iris/internal/fibermap"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irischaos:", err)
	os.Exit(2)
}

func main() {
	var (
		toy      = flag.Bool("toy", false, "audit the paper's Fig. 10 example region")
		seed     = flag.Int64("seed", 1, "map generation seed (ignored with -toy)")
		dcs      = flag.Int("dcs", 4, "data centers to place (ignored with -toy)")
		capacity = flag.Int("capacity", 10, "per-DC hose capacity in fiber-pairs")
		lambda   = flag.Int("lambda", 40, "wavelengths per fiber")
		failures = flag.Int("failures", 2, "plan's duct-cut tolerance (MaxFailures)")
		mode     = flag.String("mode", "exhaustive", "scenario generator: exhaustive, sample, huts, dcs, amps or geo")
		cuts     = flag.Int("cuts", 2, "exhaustive audit depth (max simultaneous cuts)")
		samples  = flag.Int("samples", 100, "scenarios to draw in sample mode")
		k        = flag.Int("k", 2, "cuts per sampled scenario")
		radius   = flag.Float64("radius", 6, "geo event radius in km")
		events   = flag.Int("events", 20, "geo events to draw")
		format   = flag.String("format", "text", "output format: text, csv or json")
		parallel = flag.Int("parallel", 0, "audit workers: 0 = GOMAXPROCS, 1 = serial")
		assert   = flag.Bool("assert", false, "exit non-zero unless every scenario is hose admissible")
	)
	flag.Parse()

	m, err := buildMap(*toy, *seed, *dcs)
	if err != nil {
		fatal(err)
	}
	caps := make(map[int]int)
	for _, dc := range m.DCs() {
		caps[dc] = *capacity
	}
	dep, err := core.Plan(
		core.Region{Map: m, Capacity: caps, Lambda: *lambda},
		core.Options{MaxFailures: *failures},
	)
	if err != nil {
		fatal(err)
	}

	var scenarios []chaos.Scenario
	switch *mode {
	case "exhaustive":
		scenarios = chaos.EnumerateCuts(m, *cuts)
	case "sample":
		scenarios = chaos.SampleCuts(*seed, m, *k, *samples)
	case "huts":
		scenarios = chaos.HutLossScenarios(m)
	case "dcs":
		scenarios = chaos.DCLossScenarios(m)
	case "amps":
		scenarios = chaos.AmpFailureScenarios(dep.Plan)
	case "geo":
		scenarios = chaos.GeoEvents(*seed, m, *radius, *events)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if len(scenarios) == 0 {
		fatal(fmt.Errorf("mode %q generated no scenarios for this region", *mode))
	}

	auditor := chaos.NewAuditor(dep.Plan)
	results := auditor.Run(scenarios, *parallel)

	switch *format {
	case "text":
		writeText(results, *failures)
	case "csv":
		writeCSV(results)
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}

	if *assert {
		for _, r := range results {
			if !r.Admissible {
				fmt.Fprintf(os.Stderr, "irischaos: scenario %q is not hose admissible\n", r.Scenario.Name)
				os.Exit(1)
			}
		}
	}
}

func buildMap(toy bool, seed int64, dcs int) (*fibermap.Map, error) {
	if toy {
		return fibermap.Toy().Map, nil
	}
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed, dcs
	if _, err := fibermap.PlaceDCs(m, pcfg); err != nil {
		return nil, fmt.Errorf("place DCs: %w", err)
	}
	return m, nil
}

func writeText(results []chaos.Result, failures int) {
	fmt.Printf("%-24s %-5s %-5s %-5s %-7s %-10s %-8s %s\n",
		"scenario", "cuts", "adm", "surv", "disc", "worst-pair", "stretch", "overloads")
	for _, r := range results {
		over := ""
		if n := len(r.Overloads) + len(r.ResidualOverloads); n > 0 {
			parts := make([]string, 0, n)
			for _, o := range r.Overloads {
				parts = append(parts, fmt.Sprintf("duct%d:%d>%d", o.DuctID, o.NeedPairs, o.HavePairs))
			}
			for _, o := range r.ResidualOverloads {
				parts = append(parts, fmt.Sprintf("duct%d:resid%d>%d", o.DuctID, o.NeedPairs, o.HavePairs))
			}
			over = strings.Join(parts, " ")
		}
		fmt.Printf("%-24s %-5d %-5v %-5v %-7d %10.1f %8.2f %s\n",
			r.Scenario.Name, r.Cuts, r.Admissible, r.Survives,
			r.DisconnectedPairs, r.WorstPairFibers, r.MaxStretch, over)
	}
	fmt.Println()
	fmt.Println(chaos.Summary(results))
	for _, p := range chaos.Curve(results) {
		marker := ""
		if p.Cuts > failures {
			marker = "  (past tolerance)"
		}
		fmt.Printf("  %d cuts: %d scenarios, %.1f%% admissible, %.1f%% surviving%s\n",
			p.Cuts, p.Scenarios, 100*p.FracAdmissible(), 100*p.FracSurviving(), marker)
	}
}

func writeCSV(results []chaos.Result) {
	fmt.Println("scenario,kind,cuts,admissible,survives,disconnected_pairs,worst_pair_fibers,max_stretch,sla_violations,overloads")
	for _, r := range results {
		fmt.Printf("%q,%s,%d,%v,%v,%d,%.3f,%.4f,%d,%d\n",
			r.Scenario.Name, r.Scenario.Kind, r.Cuts, r.Admissible, r.Survives,
			r.DisconnectedPairs, r.WorstPairFibers, r.MaxStretch, r.SLAViolations,
			len(r.Overloads)+len(r.ResidualOverloads))
	}
}
