// Command irisctl demonstrates the full Iris operational loop (§5): it
// plans a region, materialises the deployment into emulated optical
// devices served over TCP (one OSS per site, transceiver banks at DCs,
// amplifiers where the planner placed them), then acts as the centralized
// controller — allocating circuits for a traffic matrix, executing the
// drained reconfiguration a traffic shift requires, and auditing device
// state against intent.
//
// Usage:
//
//	irisctl [-toy] [-seed N] [-dcs N] [-oss-delay 20ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"iris/internal/control"
	"iris/internal/core"
	"iris/internal/fabric"
	"iris/internal/hose"
	"iris/internal/logging"
	"iris/internal/optics"
	"iris/internal/traffic"
)

// logger carries irisctl's structured logs; program output stays on
// stdout via fmt.
var logger *slog.Logger

func fatal(msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

func main() {
	var (
		toy      = flag.Bool("toy", true, "use the paper's Fig. 10 toy region")
		seed     = flag.Int64("seed", 1, "generator seed when not using the toy")
		dcs      = flag.Int("dcs", 5, "DCs to place when not using the toy")
		ossDelay = flag.Duration("oss-delay", time.Duration(optics.OSSSwitchTimeMS)*time.Millisecond,
			"emulated OSS switching time")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	var err error
	logger, err = logging.New(os.Stderr, *logLevel, *logJSON, "irisctl")
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisctl:", err)
		os.Exit(2)
	}

	rig, err := fabric.BringUp(fabric.BringUpConfig{
		Toy: *toy, Seed: *seed, DCs: *dcs, OSSDelay: *ossDelay,
	})
	if err != nil {
		fatal("bring-up failed", err)
	}
	defer rig.Close()
	dep, fab, tb := rig.Dep, rig.Fab, rig.Testbed

	m := dep.Region.Map
	fmt.Printf("planned region: %d DCs, %d huts used, %d fiber-pairs\n",
		len(m.DCs()), len(dep.Plan.UsedHuts()), dep.Plan.TotalFiberPairs())
	fmt.Printf("fabric up: %d devices on loopback TCP\n", len(tb.Controller.Devices()))
	for _, name := range tb.Controller.Devices() {
		res, err := tb.Controller.Call(name, "ping", nil)
		if err != nil {
			fatal("device ping failed", err)
		}
		fmt.Printf("  %-14s %v\n", name, res["kind"])
	}

	// Initial traffic matrix and circuit setup.
	dcIDs := m.DCs()
	tm := traffic.NewMatrix(dcIDs)
	tm.Set(hose.Pair{A: dcIDs[0], B: dcIDs[1]}, 60)
	if len(dcIDs) > 2 {
		tm.Set(hose.Pair{A: dcIDs[0], B: dcIDs[2]}, 45)
	}
	alloc, err := dep.Allocate(tm)
	if err != nil {
		fatal("allocation failed", err)
	}
	fmt.Println("\nestablishing circuits for the initial matrix...")
	executeTarget(tb, fab, alloc)

	// Traffic shift: the first pair cools, the second heats up.
	tm.Set(hose.Pair{A: dcIDs[0], B: dcIDs[1]}, 20)
	if len(dcIDs) > 2 {
		tm.Set(hose.Pair{A: dcIDs[0], B: dcIDs[2]}, 95)
	}
	alloc2, err := dep.Allocate(tm)
	if err != nil {
		fatal("allocation failed", err)
	}
	moves := core.Diff(alloc, alloc2)
	fmt.Printf("\ntraffic shift: %d circuit move(s); reconfiguring...\n", len(moves))
	executeTarget(tb, fab, alloc2)

	fmt.Println("\nauditing device state against controller intent...")
	if err := tb.Controller.Audit(fab.Expected()); err != nil {
		fatal("audit FAILED", err)
	}
	fmt.Printf("audit OK: %d active circuits match intent\n", fab.CircuitCount())
}

func executeTarget(tb *control.Testbed, fab *fabric.Fabric, alloc core.Allocation) {
	ch, err := fab.CompileTarget(alloc)
	if err != nil {
		fatal("compile failed", err)
	}
	rep, err := tb.Controller.Reconfigure(context.Background(), ch)
	if err != nil {
		fatal("reconfigure failed", err)
	}
	for _, p := range rep.Phases {
		fmt.Printf("  %-8s %4d ops in %8v\n", p.Name, p.Ops, p.Duration.Round(time.Microsecond))
	}
	fmt.Printf("  total: %v (paper budget: 70 ms per fiber switch)\n", rep.Total.Round(time.Microsecond))
}
