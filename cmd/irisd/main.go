// Command irisd is the long-running Iris regional control-plane daemon
// (§5 run continuously): it plans a region, materialises it into emulated
// optical devices, then keeps the region converged as demand shifts —
// executing drained reconfigurations, probing device health, quarantining
// flapping devices behind a circuit breaker, and reconciling partially
// applied changes once devices heal. Observability is served over HTTP:
// /metrics (Prometheus text format), /status (JSON), /healthz, plus the
// flight recorder on /debug/events and /debug/trace; pprof is available
// behind -pprof. With -chaos, a live fault injector wraps every emulated
// device and is served on /debug/chaos for inject/restore experiments.
//
// Usage:
//
//	irisd [-toy] [-seed N] [-dcs N] [-oss-delay 20ms]
//	      [-listen 127.0.0.1:9090] [-interval 2s] [-probe-interval 1s]
//	      [-steps N] [-shift-bound 0.4] [-util 0.7]
//	      [-flow-load] [-flow-dist web2] [-flow-util 0.6] [-flow-window 4s]
//	      [-flow-gbps-per-wl 0.25]
//	      [-robust] [-robust-window 4] [-robust-headroom 1.15]
//	      [-robust-forecast 2] [-robust-budget 8]
//	      [-diurnal-amp 0.3] [-diurnal-period 5m]
//	      [-flash-every 60s] [-flash-dur 5s] [-flash-mult 3]
//	      [-log-level info] [-log-json] [-trace-events 4096] [-pprof] [-chaos]
//
// With -flow-load, every drained reconfiguration (and chaos/repair
// cycle) is replayed through the flow-level load engine: the daemon
// reports p50/p99/p999 flow slowdown and bytes stranded during the drain
// as iris_flowsim_* metrics and the flow_impact field of /status. The
// -diurnal-* and -flash-* flags shape both the demand matrices and the
// simulated flow arrivals.
//
// With -robust, the daemon runs METTEOR mode: it plans one envelope
// allocation over the last -robust-window matrices (plus
// -robust-forecast change-process forecasts) inflated by
// -robust-headroom, then skips device reconfiguration while live demand
// stays inside the committed envelope, re-planning only on escape
// (iris_robust_* metrics, /status robust block, /api/whatif?audit=envelope).
//
// The whole region — fabric, feed, injector, flow monitor, daemon — is
// assembled by daemon.BuildRegion, the same path the irisfleet supervisor
// uses for each of its N regions, so the single-region and fleet binaries
// cannot drift.
//
// SIGINT/SIGTERM shut the daemon down gracefully: an in-flight
// reconfiguration finishes its drained sequence, the HTTP server closes,
// then the testbed is torn down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iris/internal/control"
	"iris/internal/daemon"
	"iris/internal/logging"
	"iris/internal/optics"
	"iris/internal/traffic"
)

func main() {
	var (
		toy      = flag.Bool("toy", true, "use the paper's Fig. 10 toy region")
		seed     = flag.Int64("seed", 1, "generator seed when not using the toy, and traffic seed")
		dcs      = flag.Int("dcs", 5, "DCs to place when not using the toy")
		ossDelay = flag.Duration("oss-delay", time.Duration(optics.OSSSwitchTimeMS)*time.Millisecond,
			"emulated OSS switching time")
		listen        = flag.String("listen", "127.0.0.1:9090", "metrics/status HTTP listen address")
		interval      = flag.Duration("interval", 2*time.Second, "traffic-step cadence")
		maxBatch      = flag.Int("max-batch", 1, "max queued traffic shifts coalesced into one convergence per step")
		probeInterval = flag.Duration("probe-interval", time.Second, "device health-probe cadence")
		steps         = flag.Int("steps", 0, "exit after this many traffic steps (0 = run forever)")
		shiftBound    = flag.Float64("shift-bound", 0.4, "max fractional per-pair demand change per step (≤0 = pair swaps)")
		util          = flag.Float64("util", 0.7, "target hose utilisation of the traffic process")
		rpcTimeout    = flag.Duration("rpc-timeout", control.DefaultRPCTimeout, "per-device RPC deadline")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON       = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		traceEvents   = flag.Int("trace-events", 4096, "flight-recorder capacity in events (0 disables tracing)")
		historyRecs   = flag.Int("history-records", 512, "reconfiguration history lake capacity (0 = default 512, negative disables)")
		historyPath   = flag.String("history-path", "", "persist history records to this JSONL file and replay its tail on start")
		pprofEnabled  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default)")
		chaosEnabled  = flag.Bool("chaos", false, "wrap devices in fault shims and serve the injector on /debug/chaos")

		flowLoad   = flag.Bool("flow-load", false, "simulate the flow-level cost of every reconfiguration (iris_flowsim_* metrics, /status flow_impact)")
		flowDist   = flag.String("flow-dist", "web2", "flow-size workload for -flow-load: web1, web2, hadoop or cache")
		flowUtil   = flag.Float64("flow-util", 0.6, "offered load per pipe for -flow-load, fraction of allocated capacity")
		flowWindow = flag.Duration("flow-window", 4*time.Second, "simulated window around each reconfiguration for -flow-load")
		flowGbps   = flag.Float64("flow-gbps-per-wl", 0.25, "simulated Gbps per wavelength for -flow-load (slowdown is scale-free)")

		robustMode     = flag.Bool("robust", false, "METTEOR mode: plan one envelope over recent matrices, reconfigure only on envelope escape")
		robustWindow   = flag.Int("robust-window", 4, "recent matrices the robust envelope is solved over")
		robustHeadroom = flag.Float64("robust-headroom", 1.15, "robust envelope inflation factor (≥ 1)")
		robustForecast = flag.Int("robust-forecast", 2, "change-process forecast steps added to the robust envelope set (0 disables)")
		robustBudget   = flag.Int("robust-budget", 8, "max solve/tighten iterations per robust envelope")

		diurnalAmp    = flag.Float64("diurnal-amp", 0, "diurnal swing amplitude in [0,1) applied to traffic and -flow-load arrivals (0 disables)")
		diurnalPeriod = flag.Duration("diurnal-period", 5*time.Minute, "diurnal period for -diurnal-amp")
		flashEvery    = flag.Duration("flash-every", 0, "mean interval between flash-crowd onsets (0 disables)")
		flashDur      = flag.Duration("flash-dur", 5*time.Second, "flash-crowd duration for -flash-every")
		flashMult     = flag.Float64("flash-mult", 3, "flash-crowd demand multiplier for -flash-every")
	)
	flag.Parse()

	log, err := logging.New(os.Stderr, *logLevel, *logJSON, "irisd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisd:", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		log.Error(msg, "err", err)
		os.Exit(1)
	}

	cfg := daemon.DefaultRegionConfig()
	cfg.Toy = *toy
	cfg.Seed = *seed
	cfg.DCs = *dcs
	cfg.OSSDelay = *ossDelay
	cfg.RPCTimeout = *rpcTimeout
	cfg.Interval = *interval
	cfg.MaxBatch = *maxBatch
	cfg.ProbeInterval = *probeInterval
	cfg.Steps = *steps
	cfg.ShiftBound = *shiftBound
	cfg.Util = *util
	cfg.TraceEvents = *traceEvents
	cfg.HistoryRecords = *historyRecs
	cfg.HistoryPath = *historyPath
	cfg.Chaos = *chaosEnabled
	cfg.FlowLoad = *flowLoad
	cfg.FlowDist = *flowDist
	cfg.FlowUtil = *flowUtil
	cfg.FlowWindow = *flowWindow
	cfg.FlowGbps = *flowGbps
	cfg.Robust = *robustMode
	cfg.RobustWindow = *robustWindow
	cfg.RobustHeadroom = *robustHeadroom
	cfg.RobustForecast = *robustForecast
	cfg.RobustBudget = *robustBudget
	cfg.Logger = log
	cfg.Profile = traffic.LoadProfile{
		DiurnalAmp: *diurnalAmp, DiurnalPeriodS: diurnalPeriod.Seconds(),
		FlashDurationS: flashDur.Seconds(), FlashMult: *flashMult,
	}
	if *flashEvery > 0 {
		cfg.Profile.FlashEveryS = flashEvery.Seconds()
	}

	b, err := daemon.BuildRegion(cfg)
	if err != nil {
		fatal("bring-up failed", err)
	}
	defer b.Close()
	m := b.Rig.Dep.Region.Map
	log.Info("region up",
		"dcs", len(m.DCs()),
		"devices", len(b.Rig.Testbed.Controller.Devices()),
		"fiber_pairs", b.Rig.Dep.Plan.TotalFiberPairs())
	if b.Shape != nil {
		log.Info("load shape armed",
			"diurnal_amp", *diurnalAmp, "flash_windows", b.Shape.Flashes())
	}
	if b.Injector != nil {
		log.Info("chaos injector armed", "endpoint", "/debug/chaos")
	}
	if b.Monitor != nil {
		log.Info("flow-load monitor armed", "dist", *flowDist, "util", *flowUtil)
	}
	if *robustMode {
		log.Info("robust mode armed",
			"window", *robustWindow, "headroom", *robustHeadroom, "forecast", *robustForecast)
	}
	d := b.Daemon

	mux := http.NewServeMux()
	mux.Handle("/", d.Handler())
	if *pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		log.Info("http surface up",
			"addr", *listen,
			"endpoints", "/metrics /status /healthz /debug/events /debug/trace /api/paths /api/critical /api/whatif /api/history")
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("http serve failed", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := d.Run(ctx); err != nil {
		log.Error("run failed", "err", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	log.Info("bye", "steps", d.Status().Steps)
}
