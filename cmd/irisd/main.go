// Command irisd is the long-running Iris regional control-plane daemon
// (§5 run continuously): it plans a region, materialises it into emulated
// optical devices, then keeps the region converged as demand shifts —
// executing drained reconfigurations, probing device health, quarantining
// flapping devices behind a circuit breaker, and reconciling partially
// applied changes once devices heal. Observability is served over HTTP:
// /metrics (Prometheus text format), /status (JSON), /healthz, plus the
// flight recorder on /debug/events and /debug/trace; pprof is available
// behind -pprof. With -chaos, a live fault injector wraps every emulated
// device and is served on /debug/chaos for inject/restore experiments.
//
// Usage:
//
//	irisd [-toy] [-seed N] [-dcs N] [-oss-delay 20ms]
//	      [-listen 127.0.0.1:9090] [-interval 2s] [-probe-interval 1s]
//	      [-steps N] [-shift-bound 0.4] [-util 0.7]
//	      [-flow-load] [-flow-dist web2] [-flow-util 0.6] [-flow-window 4s]
//	      [-flow-gbps-per-wl 0.25] [-diurnal-amp 0.3] [-diurnal-period 5m]
//	      [-flash-every 60s] [-flash-dur 5s] [-flash-mult 3]
//	      [-log-level info] [-log-json] [-trace-events 4096] [-pprof] [-chaos]
//
// With -flow-load, every drained reconfiguration (and chaos/repair
// cycle) is replayed through the flow-level load engine: the daemon
// reports p50/p99/p999 flow slowdown and bytes stranded during the drain
// as iris_flowsim_* metrics and the flow_impact field of /status. The
// -diurnal-* and -flash-* flags shape both the demand matrices and the
// simulated flow arrivals.
//
// SIGINT/SIGTERM shut the daemon down gracefully: an in-flight
// reconfiguration finishes its drained sequence, the HTTP server closes,
// then the testbed is torn down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iris/internal/chaos"
	"iris/internal/control"
	"iris/internal/daemon"
	"iris/internal/fabric"
	"iris/internal/flowsim"
	"iris/internal/logging"
	"iris/internal/optics"
	"iris/internal/telemetry"
	"iris/internal/trace"
	"iris/internal/traffic"
)

func main() {
	var (
		toy      = flag.Bool("toy", true, "use the paper's Fig. 10 toy region")
		seed     = flag.Int64("seed", 1, "generator seed when not using the toy, and traffic seed")
		dcs      = flag.Int("dcs", 5, "DCs to place when not using the toy")
		ossDelay = flag.Duration("oss-delay", time.Duration(optics.OSSSwitchTimeMS)*time.Millisecond,
			"emulated OSS switching time")
		listen        = flag.String("listen", "127.0.0.1:9090", "metrics/status HTTP listen address")
		interval      = flag.Duration("interval", 2*time.Second, "traffic-step cadence")
		maxBatch      = flag.Int("max-batch", 1, "max queued traffic shifts coalesced into one convergence per step")
		probeInterval = flag.Duration("probe-interval", time.Second, "device health-probe cadence")
		steps         = flag.Int("steps", 0, "exit after this many traffic steps (0 = run forever)")
		shiftBound    = flag.Float64("shift-bound", 0.4, "max fractional per-pair demand change per step (≤0 = pair swaps)")
		util          = flag.Float64("util", 0.7, "target hose utilisation of the traffic process")
		rpcTimeout    = flag.Duration("rpc-timeout", control.DefaultRPCTimeout, "per-device RPC deadline")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON       = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		traceEvents   = flag.Int("trace-events", 4096, "flight-recorder capacity in events (0 disables tracing)")
		pprofEnabled  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default)")
		chaosEnabled  = flag.Bool("chaos", false, "wrap devices in fault shims and serve the injector on /debug/chaos")

		flowLoad   = flag.Bool("flow-load", false, "simulate the flow-level cost of every reconfiguration (iris_flowsim_* metrics, /status flow_impact)")
		flowDist   = flag.String("flow-dist", "web2", "flow-size workload for -flow-load: web1, web2, hadoop or cache")
		flowUtil   = flag.Float64("flow-util", 0.6, "offered load per pipe for -flow-load, fraction of allocated capacity")
		flowWindow = flag.Duration("flow-window", 4*time.Second, "simulated window around each reconfiguration for -flow-load")
		flowGbps   = flag.Float64("flow-gbps-per-wl", 0.25, "simulated Gbps per wavelength for -flow-load (slowdown is scale-free)")

		diurnalAmp    = flag.Float64("diurnal-amp", 0, "diurnal swing amplitude in [0,1) applied to traffic and -flow-load arrivals (0 disables)")
		diurnalPeriod = flag.Duration("diurnal-period", 5*time.Minute, "diurnal period for -diurnal-amp")
		flashEvery    = flag.Duration("flash-every", 0, "mean interval between flash-crowd onsets (0 disables)")
		flashDur      = flag.Duration("flash-dur", 5*time.Second, "flash-crowd duration for -flash-every")
		flashMult     = flag.Float64("flash-mult", 3, "flash-crowd demand multiplier for -flash-every")
	)
	flag.Parse()

	log, err := logging.New(os.Stderr, *logLevel, *logJSON, "irisd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisd:", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		log.Error(msg, "err", err)
		os.Exit(1)
	}

	var tracer *trace.Tracer
	if *traceEvents > 0 {
		tracer = trace.New(*traceEvents)
	}

	var devs *chaos.DeviceSet
	bringUp := fabric.BringUpConfig{
		Toy: *toy, Seed: *seed, DCs: *dcs,
		OSSDelay: *ossDelay,
		Dial:     control.DialOptions{RPCTimeout: *rpcTimeout},
		Tracer:   tracer,
	}
	if *chaosEnabled {
		devs = chaos.NewDeviceSet()
		bringUp.WrapDevice = devs.Wrap
	}
	rig, err := fabric.BringUp(bringUp)
	if err != nil {
		fatal("bring-up failed", err)
	}
	defer rig.Close()
	m := rig.Dep.Region.Map
	log.Info("region up",
		"dcs", len(m.DCs()),
		"devices", len(rig.Testbed.Controller.Devices()),
		"fiber_pairs", rig.Dep.Plan.TotalFiberPairs())

	// Traffic: a heavy-tailed base matrix evolved by the §6.3 change
	// process, in wavelength units against each DC's hose capacity.
	caps := make(map[int]float64)
	for dc, c := range rig.Dep.Region.Capacity {
		caps[dc] = float64(c * rig.Dep.Region.Lambda)
	}
	rng := rand.New(rand.NewSource(*seed))
	base := traffic.HeavyTailed(rng, m.DCs(), caps, *util)
	var feed traffic.Source = traffic.NewEvolver(*seed+1, base,
		traffic.ChangeProcess{Bound: *shiftBound, Caps: caps, Util: *util})

	// User-scale demand modulation: diurnal swing plus flash crowds,
	// layered on the change process and (below) on the flow monitor's
	// arrivals. A day of shape is drawn up front; the deterministic
	// windows repeat nothing and survive restarts with the same seed.
	profile := traffic.LoadProfile{
		DiurnalAmp: *diurnalAmp, DiurnalPeriodS: diurnalPeriod.Seconds(),
		FlashDurationS: flashDur.Seconds(), FlashMult: *flashMult,
	}
	if *flashEvery > 0 {
		profile.FlashEveryS = flashEvery.Seconds()
	}
	var shape *traffic.Shape
	if !profile.Flat() {
		shape, err = traffic.NewShape(*seed+2, profile, (24 * time.Hour).Seconds())
		if err != nil {
			fatal("bad load shape", err)
		}
		log.Info("load shape armed",
			"diurnal_amp", *diurnalAmp, "flash_windows", shape.Flashes())
		feed = traffic.Shaped(feed, shape, interval.Seconds(), caps)
	}
	if *steps > 0 {
		feed = traffic.Limit(feed, *steps)
	}
	feed = traffic.Traced(feed, tracer)

	// The injector shares the daemon's registry so iris_chaos_* metrics
	// land on the same /metrics scrape as the control-loop metrics.
	reg := telemetry.NewRegistry()
	var inj *chaos.Injector
	if *chaosEnabled {
		inj, err = chaos.NewInjector(chaos.InjectorConfig{
			Devices:  devs,
			Fab:      rig.Fab,
			Tracer:   tracer,
			Registry: reg,
		})
		if err != nil {
			fatal("chaos injector init failed", err)
		}
		log.Info("chaos injector armed", "endpoint", "/debug/chaos")
	}

	// The flow monitor shares the registry too, so iris_flowsim_* rides
	// the same scrape, and the arrival shape, so the simulated users see
	// the same diurnal/flash swings the demand matrices do.
	var mon *flowsim.Monitor
	if *flowLoad {
		dist, ok := traffic.WorkloadByName(*flowDist)
		if !ok {
			fatal("unknown -flow-dist", fmt.Errorf("%q (want web1, web2, hadoop or cache)", *flowDist))
		}
		mon, err = flowsim.NewMonitor(flowsim.MonitorConfig{
			Seed: *seed + 3, Dist: dist, Util: *flowUtil,
			GbpsPerWavelength: *flowGbps,
			WindowS:           flowWindow.Seconds(),
			Shape:             shape,
			Registry:          reg,
		})
		if err != nil {
			fatal("flow monitor init failed", err)
		}
		log.Info("flow-load monitor armed", "dist", *flowDist, "util", *flowUtil)
	}

	d, err := daemon.New(daemon.Config{
		Fab:           rig.Fab,
		Controller:    rig.Testbed.Controller,
		Feed:          feed,
		Interval:      *interval,
		MaxBatch:      *maxBatch,
		ProbeInterval: *probeInterval,
		Seed:          *seed,
		Registry:      reg,
		Logger:        log,
		Tracer:        tracer,
		Chaos:         inj,
		FlowMonitor:   mon,
	})
	if err != nil {
		fatal("daemon init failed", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", d.Handler())
	if *pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		log.Info("http surface up",
			"addr", *listen,
			"endpoints", "/metrics /status /healthz /debug/events /debug/trace")
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("http serve failed", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := d.Run(ctx); err != nil {
		log.Error("run failed", "err", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	log.Info("bye", "steps", d.Status().Steps)
}
