// Command irisplan plans a regional DCI network end to end: it generates
// (or loads the paper's toy) region, runs the Iris planning pipeline of §4,
// and prints the resulting topology, optical equipment, and the cost of
// implementing it under each switching architecture.
//
// Usage:
//
//	irisplan [-toy] [-seed N] [-seeds N,M,...] [-dcs N] [-capacity F] [-lambda L] [-failures K] [-parallel W] [-v]
//
// With -seeds, one region per listed seed is planned — concurrently,
// bounded by -parallel — and each deployment is printed in seed order.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"

	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/logging"
)

// logger carries irisplan's structured logs; the plan report stays on
// stdout via fmt.
var logger *slog.Logger

func fatal(msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

func main() {
	var (
		toy      = flag.Bool("toy", false, "plan the paper's Fig. 10 toy region instead of a generated one")
		seed     = flag.Int64("seed", 1, "region generator seed")
		seeds    = flag.String("seeds", "", "comma-separated generator seeds: plan one region per seed (overrides -seed; incompatible with -toy/-load/-save)")
		dcs      = flag.Int("dcs", 8, "number of data centers to place")
		capacity = flag.Int("capacity", 16, "per-DC capacity in fiber-pairs")
		lambda   = flag.Int("lambda", 40, "wavelengths per fiber")
		failures = flag.Int("failures", 2, "fiber-cut tolerance")
		parallel = flag.Int("parallel", 0, "worker count for -seeds planning: 0 = GOMAXPROCS, 1 = serial")
		load     = flag.String("load", "", "plan a region loaded from a JSON file instead of generating one")
		save     = flag.String("save", "", "write the region (generated or loaded) to a JSON file")
		verbose  = flag.Bool("v", false, "print per-duct and per-path detail")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	var lerr error
	logger, lerr = logging.New(os.Stderr, *logLevel, *logJSON, "irisplan")
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "irisplan:", lerr)
		os.Exit(2)
	}

	if *seeds != "" {
		if *toy || *load != "" || *save != "" {
			fatal("bad flags", errors.New("-seeds cannot be combined with -toy, -load, or -save"))
		}
		if err := planSeeds(*seeds, *dcs, *capacity, *lambda, *failures, *parallel, *verbose); err != nil {
			fatal("multi-seed planning failed", err)
		}
		return
	}

	var region core.Region
	var err error
	if *load != "" {
		region, err = loadRegion(*load, *capacity, *lambda)
	} else {
		region, err = buildRegion(*toy, *seed, *dcs, *capacity, *lambda)
	}
	if err != nil {
		fatal("region build failed", err)
	}
	if *save != "" {
		if err := saveRegion(region, *save); err != nil {
			fatal("region save failed", err)
		}
	}
	dep, err := core.Plan(region, core.Options{MaxFailures: *failures})
	if err != nil {
		fatal("planning failed", err)
	}
	printDeployment(dep, *verbose)
}

// planSeeds builds one region per listed seed and plans them all through
// core.PlanMany, printing each deployment in seed order.
func planSeeds(list string, dcs, capacity, lambda, failures, parallel int, verbose bool) error {
	var regions []core.Region
	var seedVals []int64
	for _, field := range strings.Split(list, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %v", field, err)
		}
		region, err := buildRegion(false, s, dcs, capacity, lambda)
		if err != nil {
			return fmt.Errorf("seed %d: %v", s, err)
		}
		seedVals = append(seedVals, s)
		regions = append(regions, region)
	}
	deps, err := core.PlanMany(regions, core.Options{MaxFailures: failures, Parallelism: parallel})
	if err != nil {
		return err
	}
	for i, dep := range deps {
		fmt.Printf("=== seed %d ===\n", seedVals[i])
		printDeployment(dep, verbose)
		fmt.Println()
	}
	return nil
}

func loadRegion(path string, capacity, lambda int) (core.Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.Region{}, err
	}
	defer f.Close()
	m, err := fibermap.ReadJSON(f)
	if err != nil {
		return core.Region{}, err
	}
	caps := make(map[int]int)
	for _, dc := range m.DCs() {
		caps[dc] = capacity
	}
	return core.Region{Map: m, Capacity: caps, Lambda: lambda}, nil
}

func saveRegion(region core.Region, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return region.Map.WriteJSON(f)
}

func buildRegion(toy bool, seed int64, dcs, capacity, lambda int) (core.Region, error) {
	if toy {
		t := fibermap.Toy()
		caps := make(map[int]int)
		for _, dc := range t.Map.DCs() {
			caps[dc] = 10
		}
		return core.Region{Map: t.Map, Capacity: caps, Lambda: lambda}, nil
	}
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed+1, dcs
	placed, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		return core.Region{}, err
	}
	caps := make(map[int]int, len(placed))
	for _, dc := range placed {
		caps[dc] = capacity
	}
	return core.Region{Map: m, Capacity: caps, Lambda: lambda}, nil
}

func printDeployment(dep *core.Deployment, verbose bool) {
	pl := dep.Plan
	m := dep.Region.Map
	fmt.Printf("region: %d DCs, %d huts, %d ducts; λ=%d, failure tolerance %d (%d scenarios)\n",
		len(m.DCs()), len(m.Huts()), len(m.Ducts), dep.Region.Lambda,
		pl.Input.MaxFailures, pl.NScena)

	fmt.Printf("\ntopology & capacity (Algorithm 1 + §4.3):\n")
	fmt.Printf("  fiber-pairs: %d base + %d residual/cut-through = %d total\n",
		pl.BaseFiberPairs(), pl.TotalFiberPairs()-pl.BaseFiberPairs(), pl.TotalFiberPairs())
	fmt.Printf("  used huts:   %d of %d\n", len(pl.UsedHuts()), len(m.Huts()))
	fmt.Printf("  amplifiers:  %d across %d sites\n", pl.TotalAmps(), len(pl.Amps))
	fmt.Printf("  cut-throughs: %d links\n", len(pl.Cuts))
	if len(pl.SLA) > 0 {
		fmt.Printf("  WARNING: %d DC pairs exceed the SLA distance in some failure scenario\n", len(pl.SLA))
	}
	if len(pl.Viol) > 0 {
		fmt.Printf("  WARNING: %d optical-constraint violations:\n", len(pl.Viol))
		for _, v := range pl.Viol {
			fmt.Printf("    %s\n", v)
		}
	}

	fmt.Printf("\nannual cost (paper §3.3 prices):\n")
	fmt.Printf("  %-10s $%12.0f  (%d transceivers, %d fiber-pairs)\n",
		"EPS", dep.EPS.Total(), dep.EPS.TransceiverCount(), dep.EPS.FiberPairs)
	fmt.Printf("  %-10s $%12.0f  (%d transceivers, %d fiber-pairs, %d OSS ports, %d amps)\n",
		"Iris", dep.Iris.Total(), dep.Iris.TransceiverCount(), dep.Iris.FiberPairs,
		dep.Iris.OSSPorts, dep.Iris.Amplifiers)
	fmt.Printf("  %-10s $%12.0f  (%d OXC ports)\n", "Hybrid", dep.Hybrid.Total(), dep.Hybrid.OXCPorts)
	fmt.Printf("  EPS / Iris = %.2fx\n", dep.EPS.Total()/dep.Iris.Total())

	if !verbose {
		return
	}

	fmt.Printf("\nper-duct provisioning:\n")
	ductIDs := make([]int, 0, len(pl.Ducts))
	for id := range pl.Ducts {
		ductIDs = append(ductIDs, id)
	}
	sort.Ints(ductIDs)
	fmt.Printf("  %-6s %-18s %-8s %-6s %-10s %s\n", "duct", "endpoints", "km", "base", "residual", "cut-through")
	for _, id := range ductIDs {
		du := pl.Ducts[id]
		d := m.Ducts[id]
		fmt.Printf("  %-6d %-18s %-8.1f %-6d %-10d %d\n", id,
			fmt.Sprintf("%s-%s", m.Nodes[d.A].Name, m.Nodes[d.B].Name),
			d.FiberKM, du.BasePairs, du.ResidualPairs, du.CutThroughPairs)
	}

	fmt.Printf("\nshortest paths (failure-free):\n")
	var pairs []hose.Pair
	for p := range pl.Paths {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, p := range pairs {
		info := pl.Paths[p]
		fmt.Printf("  %s → %s: %.1f km, %d hops", m.Nodes[p.A].Name, m.Nodes[p.B].Name,
			info.TotalKM, len(info.Ducts))
		if len(info.AmpNodes) > 0 {
			fmt.Printf(", amp at %s", m.Nodes[info.AmpNodes[0]].Name)
		}
		if len(info.Bypassed) > 0 {
			fmt.Printf(", bypasses %d switches", len(info.Bypassed))
		}
		fmt.Println()
	}
	_ = os.Stdout
}
