// Command irisfleet is the planet-scale control plane above irisd: one
// supervisor owning N regional control planes, each a full region —
// fabric, evolving traffic feed, allocation state, health probes,
// optional chaos injector and flow monitor — assembled through the same
// daemon.BuildRegion path irisd uses. A sharded scheduler steps every
// idle region concurrently under a bounded worker pool; a region pinned
// by a chaos cycle or slow to converge is skipped, never awaited, so
// regions stay isolated from each other.
//
// Regions publish their hose-model demand aggregates on an inter-region
// bus; the fleet distils cross-region demand skew into the
// iris_fleet_demand_skew / iris_fleet_demand_cv gauges and the /status
// skew report.
//
// The HTTP plane aggregates the whole fleet:
//
//	GET  /metrics        — iris_fleet_* plus every region's iris_*
//	                       metrics, region-labelled
//	GET  /status         — per-region rows + demand skew as JSON
//	GET  /healthz        — 200 while every region is healthy
//	GET  /demand         — raw bus samples + skew report
//	POST /chaos          — correlated multi-region storm
//	*    /regions/{id}/… — each region's own debug surface
//
// Usage:
//
//	irisfleet [-regions 16] [-seed 1] [-workers 0] [-interval 2s]
//	          [-steps N] [-listen 127.0.0.1:9190] [-chaos] [-flow-load]
//	          [-toy] [-dcs 5] [-oss-delay 0] [-util 0.7]
//	          [-shift-bound 0.4] [-trace-events 1024]
//	          [-log-level info] [-log-json]
//
// SIGINT/SIGTERM shut the fleet down gracefully: in-flight region steps
// finish, the HTTP server closes, then every emulated testbed is torn
// down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iris/internal/daemon"
	"iris/internal/fleet"
	"iris/internal/logging"
	"iris/internal/trace"
)

func main() {
	var (
		regions  = flag.Int("regions", 16, "number of regions to build and supervise")
		seed     = flag.Int64("seed", 1, "fleet seed; region i uses seed+i*stride for its map, traffic and jitter")
		workers  = flag.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
		interval = flag.Duration("interval", 2*time.Second, "scheduler round cadence")
		steps    = flag.Int("steps", 0, "per-region traffic steps before the feed exhausts (0 = run forever)")
		listen   = flag.String("listen", "127.0.0.1:9190", "fleet HTTP listen address")

		toy      = flag.Bool("toy", true, "use the paper's Fig. 10 toy region in every region")
		dcs      = flag.Int("dcs", 5, "DCs per region when not using the toy")
		ossDelay = flag.Duration("oss-delay", 0, "emulated OSS switching time (0 keeps 100-region fleets snappy)")
		util     = flag.Float64("util", 0.7, "target hose utilisation of each region's traffic process")
		shift    = flag.Float64("shift-bound", 0.4, "max fractional per-pair demand change per step (≤0 = pair swaps)")

		chaosOn  = flag.Bool("chaos", false, "arm a chaos injector in every region (enables /chaos storms and /regions/{id}/debug/chaos)")
		flowLoad = flag.Bool("flow-load", false, "arm the flow-impact monitor in every region")

		historyRecs = flag.Int("history-records", 256, "per-region reconfiguration history lake capacity (0 = default 512, negative disables)")

		traceEvents = flag.Int("trace-events", 1024, "per-region flight-recorder capacity (0 disables region tracing)")
		fleetTrace  = flag.Int("fleet-trace-events", 4096, "fleet flight-recorder capacity for fleet-round/fleet-chaos spans (0 disables)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	log, err := logging.New(os.Stderr, *logLevel, *logJSON, "irisfleet")
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisfleet:", err)
		os.Exit(2)
	}

	cfg := fleet.DefaultConfig()
	cfg.Regions = *regions
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Interval = *interval
	cfg.Logger = log
	if *fleetTrace > 0 {
		cfg.Tracer = trace.New(*fleetTrace)
	}

	rc := daemon.DefaultRegionConfig()
	rc.Toy = *toy
	rc.DCs = *dcs
	rc.OSSDelay = *ossDelay
	rc.Interval = *interval
	rc.Steps = *steps
	rc.Util = *util
	rc.ShiftBound = *shift
	rc.Chaos = *chaosOn
	rc.FlowLoad = *flowLoad
	rc.TraceEvents = *traceEvents
	rc.HistoryRecords = *historyRecs
	cfg.Region = rc

	f, err := fleet.New(cfg)
	if err != nil {
		log.Error("fleet bring-up failed", "err", err)
		os.Exit(1)
	}
	defer f.Close()

	srv := &http.Server{Addr: *listen, Handler: f.Handler()}
	go func() {
		log.Info("fleet http surface up",
			"addr", *listen,
			"endpoints", "/metrics /status /healthz /demand /api/history /chaos /regions/{id}/")
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("http serve failed", "err", err)
			os.Exit(1)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := f.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Error("run failed", "err", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	st := f.Status()
	log.Info("bye", "regions", st.Regions, "converged", st.Converged, "rounds", st.Rounds)
}
