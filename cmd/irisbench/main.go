// Command irisbench regenerates the paper's evaluation: every figure and
// table has a corresponding experiment whose output prints the same
// rows/series the paper reports. DESIGN.md maps experiments to modules and
// EXPERIMENTS.md records paper-vs-measured outcomes.
//
// Usage:
//
//	irisbench [-exp all|fig3|fig6|fig7|toy|fig9|fig12|fig14|fig17|fig18|appa|appb|chaos] [-full]
//
// The -full flag runs the Fig. 12 sweep at the paper's scale (240
// scenarios, 2-failure tolerance; several minutes). Without it a reduced
// 24-scenario grid with 1-failure tolerance is used.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"iris/internal/experiments"
	"iris/internal/logging"
)

// logger carries irisbench's structured logs; experiment output stays on
// stdout via fmt.
var logger *slog.Logger

func fatal(msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (all, fig2, fig3, fig5, fig6, fig7, toy, fig9, fig12, fig14, fig17, fig17r, fig18, appa, appb, central, clos, wss, load, chaos)")
		full     = flag.Bool("full", false, "run the Fig. 12 sweep at full paper scale (240 scenarios)")
		parallel = flag.Int("parallel", 0, "sweep worker count: 0 = GOMAXPROCS, 1 = serial; rows are identical at every setting")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	var err error
	logger, err = logging.New(os.Stderr, *logLevel, *logJSON, "irisbench")
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisbench:", err)
		os.Exit(2)
	}

	wants := func(name string) bool {
		if *exp == "all" || *exp == name {
			return true
		}
		// "sweep" selects the three experiments that share the Fig. 12
		// cost sweep, running it once.
		if *exp == "sweep" && (name == "fig12" || name == "appa" || name == "appb") {
			return true
		}
		return false
	}
	ran := 0
	run := func(name string, fn func() (string, error)) {
		if !wants(name) {
			return
		}
		ran++
		t0 := time.Now()
		out, err := fn()
		if err != nil {
			fatal(name+" failed", err)
		}
		fmt.Println(strings.TrimRight(out, "\n"))
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("fig2", func() (string, error) {
		return experiments.FormatFig2(experiments.Fig2()), nil
	})
	run("fig3", func() (string, error) {
		res, err := experiments.Fig3(experiments.DefaultFig3())
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	run("fig6", func() (string, error) {
		res, err := experiments.Fig6(experiments.DefaultFig6())
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	run("fig5", func() (string, error) {
		near, far, err := experiments.Fig5(experiments.DefaultFig5())
		if err != nil {
			return "", err
		}
		return experiments.FormatFig5(near, far), nil
	})
	run("fig7", func() (string, error) {
		return experiments.FormatFig7(experiments.Fig7()), nil
	})
	run("toy", func() (string, error) {
		res, err := experiments.Toy()
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	run("fig9", func() (string, error) {
		return experiments.FormatFig9(experiments.Fig9()), nil
	})

	// The three sweep-based experiments share one sweep.
	if wants("fig12") || wants("appa") || wants("appb") {
		cfg := experiments.QuickSweep()
		label := "quick 24-scenario grid, 1-failure tolerance"
		if *full {
			cfg = experiments.PaperSweep()
			label = "full 240-scenario grid, 2-failure tolerance"
		}
		cfg.Parallelism = *parallel
		t0 := time.Now()
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			fatal("sweep failed", err)
		}
		fmt.Printf("[cost sweep: %s, %d scenarios in %v]\n\n",
			label, len(rows), time.Since(t0).Round(time.Millisecond))
		ratios := experiments.ExtractRatios(rows)
		if wants("fig12") {
			ran++
			fmt.Println(strings.TrimRight(experiments.FormatFig12(ratios), "\n"))
			fmt.Println()
		}
		if wants("appa") {
			ran++
			fmt.Println(strings.TrimRight(experiments.FormatAppendixA(ratios), "\n"))
			fmt.Println()
		}
		if wants("appb") {
			ran++
			fmt.Println(strings.TrimRight(experiments.AppendixB(rows).Format(), "\n"))
			fmt.Println()
		}
	}

	run("fig14", func() (string, error) {
		res, err := experiments.Fig14(experiments.DefaultFig14())
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})
	run("fig17", func() (string, error) {
		points, err := experiments.Fig17(experiments.DefaultFig17())
		if err != nil {
			return "", err
		}
		return experiments.FormatFig17(points), nil
	})
	run("fig17r", func() (string, error) {
		points, err := experiments.Fig17Region(experiments.DefaultFig17Region())
		if err != nil {
			return "", err
		}
		return experiments.FormatFig17Region(points), nil
	})
	run("fig18", func() (string, error) {
		points, err := experiments.Fig18(experiments.DefaultFig18())
		if err != nil {
			return "", err
		}
		return experiments.FormatFig18(points), nil
	})
	run("central", func() (string, error) {
		rows, err := experiments.CentralVsDistributed(experiments.DefaultCentral())
		if err != nil {
			return "", err
		}
		return experiments.FormatCentral(rows), nil
	})
	run("clos", func() (string, error) {
		rows, err := experiments.ClosAblation(experiments.DefaultClos())
		if err != nil {
			return "", err
		}
		return experiments.FormatClos(rows), nil
	})
	run("wss", func() (string, error) {
		rows, err := experiments.WSSAblation(experiments.DefaultWSS())
		if err != nil {
			return "", err
		}
		return experiments.FormatWSS(rows), nil
	})
	run("load", func() (string, error) {
		rows, err := experiments.LoadSweep(experiments.DefaultLoadSweep())
		if err != nil {
			return "", err
		}
		return experiments.FormatLoadSweep(rows), nil
	})
	run("chaos", func() (string, error) {
		cfg := experiments.DefaultSurvivability()
		cfg.Parallelism = *parallel
		res, err := experiments.Survivability(cfg)
		if err != nil {
			return "", err
		}
		return res.Format(), nil
	})

	if ran == 0 {
		logger.Error("unknown experiment", "exp", *exp)
		os.Exit(1)
	}
}
