// Command irisbench regenerates the paper's evaluation: every figure and
// table has a corresponding experiment whose output prints the same
// rows/series the paper reports. DESIGN.md maps experiments to modules and
// EXPERIMENTS.md records paper-vs-measured outcomes.
//
// Usage:
//
//	irisbench [-exp all|<name>|sweep] [-full]
//
// Run irisbench -exp list (or any unknown name) to see every registered
// experiment; the set is derived from the experiment table, not a
// hand-maintained string, so a new experiment registers itself into the
// usage text.
//
// The -full flag runs the Fig. 12 sweep at the paper's scale (240
// scenarios, 2-failure tolerance; several minutes). Without it a reduced
// 24-scenario grid with 1-failure tolerance is used.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"iris/internal/experiments"
	"iris/internal/logging"
)

// logger carries irisbench's structured logs; experiment output stays on
// stdout via fmt.
var logger *slog.Logger

func fatal(msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

// experiment is one runnable entry of the table; the -exp usage text and
// the unknown-name error are both derived from the table, so registering
// an experiment here is the single step that exposes it everywhere.
type experiment struct {
	name string
	run  func() (string, error)
}

func main() {
	var (
		full     = flag.Bool("full", false, "run the Fig. 12 sweep at full paper scale (240 scenarios)")
		parallel = flag.Int("parallel", 0, "sweep worker count: 0 = GOMAXPROCS, 1 = serial; rows are identical at every setting")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)

	// The Fig. 12 cost sweep feeds three experiments; memoize it so
	// "-exp all" (and the "sweep" alias) plans the grid once.
	var (
		sweepRows []experiments.SweepRow
		sweepDone bool
	)
	sweep := func() ([]experiments.SweepRow, error) {
		if sweepDone {
			return sweepRows, nil
		}
		cfg := experiments.QuickSweep()
		label := "quick 24-scenario grid, 1-failure tolerance"
		if *full {
			cfg = experiments.PaperSweep()
			label = "full 240-scenario grid, 2-failure tolerance"
		}
		cfg.Parallelism = *parallel
		t0 := time.Now()
		rows, err := experiments.Sweep(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Printf("[cost sweep: %s, %d scenarios in %v]\n\n",
			label, len(rows), time.Since(t0).Round(time.Millisecond))
		sweepRows, sweepDone = rows, true
		return rows, nil
	}

	table := []experiment{
		{"fig2", func() (string, error) {
			return experiments.FormatFig2(experiments.Fig2()), nil
		}},
		{"fig3", func() (string, error) {
			res, err := experiments.Fig3(experiments.DefaultFig3())
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig6", func() (string, error) {
			res, err := experiments.Fig6(experiments.DefaultFig6())
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig5", func() (string, error) {
			near, far, err := experiments.Fig5(experiments.DefaultFig5())
			if err != nil {
				return "", err
			}
			return experiments.FormatFig5(near, far), nil
		}},
		{"fig7", func() (string, error) {
			return experiments.FormatFig7(experiments.Fig7()), nil
		}},
		{"toy", func() (string, error) {
			res, err := experiments.Toy()
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig9", func() (string, error) {
			return experiments.FormatFig9(experiments.Fig9()), nil
		}},
		{"fig12", func() (string, error) {
			rows, err := sweep()
			if err != nil {
				return "", err
			}
			return experiments.FormatFig12(experiments.ExtractRatios(rows)), nil
		}},
		{"appa", func() (string, error) {
			rows, err := sweep()
			if err != nil {
				return "", err
			}
			return experiments.FormatAppendixA(experiments.ExtractRatios(rows)), nil
		}},
		{"appb", func() (string, error) {
			rows, err := sweep()
			if err != nil {
				return "", err
			}
			return experiments.AppendixB(rows).Format(), nil
		}},
		{"fig14", func() (string, error) {
			res, err := experiments.Fig14(experiments.DefaultFig14())
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig17", func() (string, error) {
			points, err := experiments.Fig17(experiments.DefaultFig17())
			if err != nil {
				return "", err
			}
			return experiments.FormatFig17(points), nil
		}},
		{"fig17r", func() (string, error) {
			points, err := experiments.Fig17Region(experiments.DefaultFig17Region())
			if err != nil {
				return "", err
			}
			return experiments.FormatFig17Region(points), nil
		}},
		{"fig18", func() (string, error) {
			points, err := experiments.Fig18(experiments.DefaultFig18())
			if err != nil {
				return "", err
			}
			return experiments.FormatFig18(points), nil
		}},
		{"central", func() (string, error) {
			rows, err := experiments.CentralVsDistributed(experiments.DefaultCentral())
			if err != nil {
				return "", err
			}
			return experiments.FormatCentral(rows), nil
		}},
		{"clos", func() (string, error) {
			rows, err := experiments.ClosAblation(experiments.DefaultClos())
			if err != nil {
				return "", err
			}
			return experiments.FormatClos(rows), nil
		}},
		{"wss", func() (string, error) {
			rows, err := experiments.WSSAblation(experiments.DefaultWSS())
			if err != nil {
				return "", err
			}
			return experiments.FormatWSS(rows), nil
		}},
		{"load", func() (string, error) {
			rows, err := experiments.LoadSweep(experiments.DefaultLoadSweep())
			if err != nil {
				return "", err
			}
			return experiments.FormatLoadSweep(rows), nil
		}},
		{"robust", func() (string, error) {
			rows, err := experiments.RobustAblation(experiments.DefaultRobustAblation())
			if err != nil {
				return "", err
			}
			return experiments.FormatRobustAblation(rows), nil
		}},
		{"chaos", func() (string, error) {
			cfg := experiments.DefaultSurvivability()
			cfg.Parallelism = *parallel
			res, err := experiments.Survivability(cfg)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
	}

	names := make([]string, len(table))
	for i, e := range table {
		names[i] = e.name
	}
	// The usage line is assembled from the table so it cannot go stale.
	exp := flag.String("exp", "all",
		"experiment to run (all, sweep = fig12+appa+appb, or one of: "+strings.Join(names, ", ")+")")
	flag.Parse()

	var err error
	logger, err = logging.New(os.Stderr, *logLevel, *logJSON, "irisbench")
	if err != nil {
		fmt.Fprintln(os.Stderr, "irisbench:", err)
		os.Exit(2)
	}

	wants := func(name string) bool {
		if *exp == "all" || *exp == name {
			return true
		}
		// "sweep" selects the three experiments that share the Fig. 12
		// cost sweep, running it once.
		if *exp == "sweep" && (name == "fig12" || name == "appa" || name == "appb") {
			return true
		}
		return false
	}
	ran := 0
	for _, e := range table {
		if !wants(e.name) {
			continue
		}
		ran++
		t0 := time.Now()
		out, err := e.run()
		if err != nil {
			fatal(e.name+" failed", err)
		}
		fmt.Println(strings.TrimRight(out, "\n"))
		fmt.Printf("[%s completed in %v]\n\n", e.name, time.Since(t0).Round(time.Millisecond))
	}

	if ran == 0 {
		logger.Error("unknown experiment", "exp", *exp,
			"known", "all, sweep, "+strings.Join(names, ", "))
		os.Exit(1)
	}
}
