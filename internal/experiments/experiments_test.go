package experiments

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"iris/internal/optics"
	"iris/internal/stats"
)

func TestFig3(t *testing.T) {
	cfg := DefaultFig3()
	cfg.Regions = 8 // smaller pool for test time; shape is stable
	res, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inflations) < 8*20 {
		t.Fatalf("only %d pairs pooled", len(res.Inflations))
	}
	if res.FracImproved < 0.6 {
		t.Errorf("FracImproved = %.2f, paper reports ≥0.6", res.FracImproved)
	}
	if res.FracOver2x < 0.05 {
		t.Errorf("FracOver2x = %.2f, expected a meaningful tail", res.FracOver2x)
	}
	out := res.Format()
	for _, want := range []string{"Fig. 3", "1           x", "32"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestFig6(t *testing.T) {
	cfg := DefaultFig6()
	cfg.Regions = 5
	cfg.GridCellKM = 3 // coarser grid for test time
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) != 5 {
		t.Fatalf("ratios = %v", res.Ratios)
	}
	for i, r := range res.Ratios {
		if r < 1 {
			t.Errorf("region %d ratio %.2f below 1", i, r)
		}
	}
	if med := stats.Median(res.Ratios); med < 1.3 {
		t.Errorf("median ratio %.2f; paper reports 2-5x", med)
	}
	if !strings.Contains(res.Format(), "Fig. 6") {
		t.Error("Format missing header")
	}
}

func TestFig7(t *testing.T) {
	rows := Fig7()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Groups != 1 || math.Abs(rows[0].Electrical-1) > 1e-9 {
		t.Errorf("centralized row not normalised: %+v", rows[0])
	}
	last := rows[len(rows)-1]
	if last.Groups != 16 {
		t.Fatalf("last row = %+v", last)
	}
	if last.Electrical < 6 || last.Electrical > 9 {
		t.Errorf("distributed electrical = %.1fx, paper ≈7x", last.Electrical)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Electrical <= rows[i-1].Electrical {
			t.Errorf("electrical cost not increasing at G=%d", rows[i].Groups)
		}
		if rows[i].Optical >= rows[i].Electrical {
			t.Errorf("optical should undercut electrical at G=%d", rows[i].Groups)
		}
	}
	if !strings.Contains(FormatFig7(rows), "Fig. 7") {
		t.Error("Format missing header")
	}
}

func TestFig9(t *testing.T) {
	rows := Fig9()
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].PenaltyDB != 4.5 || rows[7].PenaltyDB != 13.5 {
		t.Errorf("endpoints = %.1f, %.1f; want 4.5, 13.5", rows[0].PenaltyDB, rows[7].PenaltyDB)
	}
	if !strings.Contains(FormatFig9(rows), "3") {
		t.Error("Format should state the 3-amp budget")
	}
}

func TestToy(t *testing.T) {
	res, err := Toy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 2.5 || res.Ratio > 2.9 {
		t.Errorf("ratio = %.2f, paper: 2.7", res.Ratio)
	}
	out := res.Format()
	if !strings.Contains(out, "4800") || !strings.Contains(out, "1600") {
		t.Errorf("Format missing transceiver counts:\n%s", out)
	}
}

func TestSweepQuick(t *testing.T) {
	rows, err := Sweep(QuickSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2*2*2 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	r := ExtractRatios(rows)

	// Fig. 12(a) shape: Iris is always cheaper than EPS, usually much
	// cheaper; in-network ratios are larger still.
	for i, x := range r.EPSOverIris {
		if x < 1 {
			t.Errorf("scenario %d: EPS cheaper than Iris (%.2f)", i, x)
		}
	}
	if med := stats.Median(r.EPSOverIris); med < 2 {
		t.Errorf("median EPS/Iris = %.2f; paper reports ≥5x in 80%% of scenarios", med)
	}
	for i := range r.EPSOverIrisInNet {
		if r.EPSOverIrisInNet[i] < r.EPSOverIris[i] {
			t.Errorf("scenario %d: in-network ratio %.2f below total ratio %.2f",
				i, r.EPSOverIrisInNet[i], r.EPSOverIris[i])
		}
	}
	// Fig. 12(b): Iris keeps an advantage even at SR transceiver prices.
	if med := stats.Median(r.SROverIris); med < 1 {
		t.Errorf("median SR-priced EPS/Iris = %.2f, want ≥1", med)
	}
	// Fig. 12(c): EPS needs far more in-network ports per DC port.
	for i := range r.PortRatioEPS {
		if r.PortRatioEPS[i] <= r.PortRatioIris[i] {
			t.Errorf("scenario %d: EPS port ratio %.2f not above Iris %.2f",
				i, r.PortRatioEPS[i], r.PortRatioIris[i])
		}
	}
	// Hybrid ≈ Iris (slightly cheaper).
	for i := range r.EPSOverHybrid {
		lo, hi := r.EPSOverIris[i]*0.95, r.EPSOverIris[i]*1.3
		if r.EPSOverHybrid[i] < lo || r.EPSOverHybrid[i] > hi {
			t.Errorf("scenario %d: EPS/hybrid %.2f far from EPS/Iris %.2f",
				i, r.EPSOverHybrid[i], r.EPSOverIris[i])
		}
	}
	// Appendix A: overheads are a small share of cost.
	if mean := stats.Mean(r.Overheads); mean > 0.15 {
		t.Errorf("mean amplifier/cut-through overhead %.0f%%, paper: ≈3%%", mean*100)
	}

	out := FormatFig12(r)
	for _, want := range []string{"Fig. 12(a)", "Fig. 12(b)", "Fig. 12(c)", "Fig. 12(d)"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig12 missing %q", want)
		}
	}
	if !strings.Contains(FormatAppendixA(r), "Appendix A") {
		t.Error("FormatAppendixA missing header")
	}
}

func TestSweepDeterministic(t *testing.T) {
	cfg := SweepConfig{MapSeeds: []int64{1}, Ns: []int{5}, Fs: []int{8}, Lambdas: []int{40}, MaxFailures: 0}
	a, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Iris.Total() != b[0].Iris.Total() || a[0].EPS.Total() != b[0].EPS.Total() {
		t.Error("sweep not deterministic")
	}
}

func TestFig14(t *testing.T) {
	cfg := DefaultFig14()
	cfg.DurationS = 180
	res, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxBER >= optics.SoftFECBERThreshold {
		t.Errorf("max BER %v at or above FEC threshold", res.MaxBER)
	}
	if res.OutageMS <= 0 {
		t.Error("expected reconfiguration outages")
	}
	if !strings.Contains(res.Format(), "Fig. 14") {
		t.Error("Format missing header")
	}
}

func TestFig17Quick(t *testing.T) {
	cfg := Fig17Config{
		Seed:      1,
		Utils:     []float64{0.4},
		Bounds:    []float64{0.5},
		Intervals: []float64{5, 30},
		DurationS: 30,
		Dist:      DefaultFig17().Dist,
	}
	points, err := Fig17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if math.IsNaN(p.All) || p.All < 0.9 || p.All > 1.5 {
			t.Errorf("slowdown %v at interval %v outside sane band", p.All, p.IntervalS)
		}
	}
	if !strings.Contains(FormatFig17(points), "Fig. 17") {
		t.Error("Format missing header")
	}
}

func TestFig18Quick(t *testing.T) {
	cfg := DefaultFig18()
	cfg.DurationS = 20
	points, err := Fig18(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	names := map[string]bool{}
	for _, p := range points {
		names[p.Workload] = true
		if math.IsNaN(p.All) {
			t.Errorf("%s: NaN slowdown", p.Workload)
		}
		// Paper: <2% slowdown; allow simulation noise headroom.
		if p.All > 1.2 {
			t.Errorf("%s: slowdown %.3f far above the paper's <1.02", p.Workload, p.All)
		}
	}
	for _, want := range []string{"web1", "web2", "hadoop", "cache"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
	if !strings.Contains(FormatFig18(points), "Fig. 18") {
		t.Error("Format missing header")
	}
}

func TestResidualMergeObservation2(t *testing.T) {
	// Property (Appendix B, Observation 2): with an exact base split, any
	// n residual fibers from one source compress into at most ⌈n/4⌉
	// fibers; inexact splits cost at most one extra.
	rng := rand.New(rand.NewSource(3))
	const lambda = 40
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(19)
		demands := make([]int, n)
		for i := range demands {
			demands[i] = rng.Intn(lambda + 1)
		}
		_, residual, merged := ResidualMerge(demands, lambda)
		bound := (n + 3) / 4
		total := 0
		for _, d := range demands {
			total += d
		}
		if total%lambda == 0 {
			if merged > bound {
				t.Fatalf("trial %d: n=%d demands=%v merged=%d > ⌈n/4⌉=%d",
					trial, n, demands, merged, bound)
			}
		} else if merged > bound+1 {
			t.Fatalf("trial %d: n=%d merged=%d > ⌈n/4⌉+1=%d", trial, n, merged, bound+1)
		}
		if residual > lambda*n/4+lambda {
			t.Fatalf("trial %d: residual %d exceeds λn/4+λ", trial, residual)
		}
	}
}

func TestResidualMergeValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad lambda":     func() { ResidualMerge([]int{1}, 0) },
		"demand too big": func() { ResidualMerge([]int{41}, 40) },
		"negative":       func() { ResidualMerge([]int{-1}, 40) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestAppendixBFromSweep(t *testing.T) {
	rows, err := Sweep(SweepConfig{MapSeeds: []int64{0, 1}, Ns: []int{5, 10}, Fs: []int{8}, Lambdas: []int{40}, MaxFailures: 0})
	if err != nil {
		t.Fatal(err)
	}
	res := AppendixB(rows)
	if len(res.FiberSavedFrac) == 0 || len(res.CostSavedFrac) == 0 {
		t.Fatal("empty results")
	}
	for i, f := range res.FiberSavedFrac {
		if f < 0 || f > 1 {
			t.Errorf("scenario %d: fiber saving %v outside [0,1]", i, f)
		}
	}
	for i, c := range res.CostSavedFrac {
		if c < 0 || c > 0.2 {
			t.Errorf("scenario %d: cost saving %v; paper says small", i, c)
		}
	}
	if !strings.Contains(res.Format(), "Appendix B") {
		t.Error("Format missing header")
	}
}

func TestFig17Region(t *testing.T) {
	cfg := DefaultFig17Region()
	cfg.Utils = []float64{0.4}
	cfg.Intervals = []float64{5}
	cfg.DurationS = 25
	points, err := Fig17Region(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	if math.IsNaN(points[0].All) || points[0].All < 0.9 || points[0].All > 1.5 {
		t.Errorf("region slowdown %v outside sane band", points[0].All)
	}
	if !strings.Contains(FormatFig17Region(points), "region-grounded") {
		t.Error("Format missing header")
	}
}
