package experiments

import (
	"fmt"
	"strings"

	"iris/internal/fibermap"
	"iris/internal/siting"
)

// Fig5Config parameterises the service-area maps.
type Fig5Config struct {
	Seed  int64
	DCs   int
	Width int // characters across
}

// DefaultFig5 matches the paper's visual comparison.
func DefaultFig5() Fig5Config { return Fig5Config{Seed: 2, DCs: 4, Width: 72} }

// Fig5 renders the paper's Fig. 5 comparison on one synthetic region: the
// same region with hubs placed near each other (top row of the paper's
// figure, 4–7 km) and far apart (bottom row, 20–24 km). The distributed
// area ('+' plus '#') is identical in both; the centralized area ('#')
// shrinks when the hubs spread out.
func Fig5(cfg Fig5Config) (nearMap, farMap string, err error) {
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = cfg.Seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = cfg.Seed+50, cfg.DCs
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		return "", "", err
	}
	a := siting.DefaultAnalysis(m)
	a.GridCellKM = 4

	near1, near2 := fibermap.ChooseHubs(m, 5)
	far1, far2 := fibermap.ChooseHubs(m, 22)
	return a.Render(near1, near2, dcs, cfg.Width),
		a.Render(far1, far2, dcs, cfg.Width), nil
}

// FormatFig5 lays out the two maps with captions.
func FormatFig5(nearMap, farMap string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — siting flexibility maps (same region, same DCs)\n\n")
	fmt.Fprintf(&b, "hubs close together (4-7 km):\n%s\n", nearMap)
	fmt.Fprintf(&b, "hubs far apart (20-24 km):\n%s", farMap)
	fmt.Fprintf(&b, "\nthe '+' region is reachable only under the distributed model;\n")
	fmt.Fprintf(&b, "spreading the hubs shrinks the centralized '#' region (§2.2's trade-off)\n")
	return b.String()
}
