package experiments

import (
	"strings"
	"testing"
)

func TestSurvivabilityToy(t *testing.T) {
	res, err := Survivability(DefaultSurvivability())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 4 { // cuts 0..3
		t.Fatalf("curve has %d points, want 4", len(res.Curve))
	}
	// The guarantee: 100% admissible up to the plan's tolerance.
	for _, p := range res.Curve {
		if p.Cuts <= res.MaxFailures && p.FracAdmissible() != 1 {
			t.Fatalf("admissibility at %d cuts = %v, want 1 (within tolerance)", p.Cuts, p.FracAdmissible())
		}
	}
	if res.WorstPairFibers[0] <= 0 {
		t.Fatalf("failure-free worst-pair throughput = %v, want > 0", res.WorstPairFibers[0])
	}
	// The toy region has hut, DC and geo classes (no amplified sites).
	if len(res.Classes) < 3 {
		t.Fatalf("classes = %+v, want hut, dc and geo", res.Classes)
	}

	out := res.Format()
	for _, want := range []string{"Survivability audit", "past tolerance", "correlated classes"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestSurvivabilitySyntheticDeterministic(t *testing.T) {
	cfg := SurvivabilityConfig{
		Seed: 5, DCs: 3, Capacity: 6, Lambda: 40,
		MaxFailures: 1, MaxCuts: 1, GeoEvents: 5, GeoRadiusKM: 5,
	}
	a, err := Survivability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	b, err := Survivability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Fatal("survivability output differs across parallelism settings")
	}
	for _, p := range a.Curve {
		if p.FracAdmissible() != 1 {
			t.Fatalf("synthetic 1-failure plan inadmissible at %d cuts", p.Cuts)
		}
	}
}
