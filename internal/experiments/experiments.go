// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a pure function from a configuration to a
// structured result plus a formatter that prints the same rows/series the
// paper reports; cmd/irisbench drives them from the command line and
// the repository-root benchmarks time them.
//
// The per-experiment mapping to the paper is catalogued in DESIGN.md and
// the measured outcomes in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"iris/internal/cost"
	"iris/internal/fibermap"
	"iris/internal/geo"
	"iris/internal/latency"
	"iris/internal/optics"
	"iris/internal/siting"
	"iris/internal/stats"
)

// ---------------------------------------------------------------------------
// Fig. 2: the Tokyo latency example.

// Fig2 returns the paper's worked Tokyo-region example: hub placement
// south of two nearby DCs makes the hub path ≈6× longer than a direct
// fiber run.
func Fig2() latency.TokyoExample { return latency.Tokyo() }

// FormatFig2 renders the example the way §2.1 walks through it.
func FormatFig2(e latency.TokyoExample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — Tokyo example: DC-hub-DC vs. direct DC-DC\n")
	fmt.Fprintf(&b, "direct:  %.0f km fiber, %.1f ms RTT\n", e.DirectKM, e.DirectRTTms())
	fmt.Fprintf(&b, "via hub: %.0f km fiber, %.1f ms RTT\n", e.ViaHubKM, e.ViaHubRTTms())
	fmt.Fprintf(&b, "direct connectivity is a %.0fx latency reduction (paper: 6x)\n", e.Reduction())
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 3: latency inflation of DC-hub-DC paths vs. direct DC-DC paths.

// Fig3Config parameterises the latency-inflation study.
type Fig3Config struct {
	Regions      int // the paper pools 22 regions
	DCsPerRegion int
	HubSpreadKM  float64
}

// DefaultFig3 matches the paper's scale.
func DefaultFig3() Fig3Config { return Fig3Config{Regions: 22, DCsPerRegion: 8, HubSpreadKM: 6} }

// Fig3Result holds the pooled inflation distribution.
type Fig3Result struct {
	Inflations   []float64
	FracImproved float64 // fraction of pairs with any latency benefit
	FracOver2x   float64 // fraction with >2× benefit (the paper: >20%)
}

// Fig3 runs the study over synthetic regions.
func Fig3(cfg Fig3Config) (Fig3Result, error) {
	var pool []float64
	for seed := int64(0); seed < int64(cfg.Regions); seed++ {
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = seed
		m := fibermap.Generate(gcfg)
		pcfg := fibermap.DefaultPlace()
		pcfg.Seed, pcfg.N = seed*7+1, cfg.DCsPerRegion
		dcs, err := fibermap.PlaceDCs(m, pcfg)
		if err != nil {
			return Fig3Result{}, fmt.Errorf("region %d: %w", seed, err)
		}
		h1, h2 := fibermap.ChooseHubs(m, cfg.HubSpreadKM)
		var dcPts []geo.Point
		for _, dc := range dcs {
			dcPts = append(dcPts, m.Nodes[dc].Pos)
		}
		hubs := []geo.Point{m.Nodes[h1].Pos, m.Nodes[h2].Pos}
		pool = append(pool, latency.Inflations(dcPts, hubs)...)
	}
	return Fig3Result{
		Inflations:   pool,
		FracImproved: stats.FractionAbove(pool, 1.001),
		FracOver2x:   stats.FractionAbove(pool, 2),
	}, nil
}

// Format renders the CDF at the paper's x-axis points.
func (r Fig3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — Latency inflation CDF (DC-hub-DC / DC-DC), %d pairs pooled\n", len(r.Inflations))
	fmt.Fprintf(&b, "%-12s %s\n", "inflation", "CDF")
	for _, x := range []float64{1, 2, 4, 8, 16, 32} {
		fmt.Fprintf(&b, "%-12.0fx %.3f\n", x, stats.CDFAt(r.Inflations, x))
	}
	fmt.Fprintf(&b, "pairs with any benefit: %.0f%% (paper: ≥60%%)\n", r.FracImproved*100)
	fmt.Fprintf(&b, "pairs with >2x benefit: %.0f%% (paper: >20%%)\n", r.FracOver2x*100)
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 6: siting-area increase of the distributed model.

// Fig6Config parameterises the siting study.
type Fig6Config struct {
	Regions     int // the paper covers 33 regions
	MinDCs      int // region sizes span 5–15 existing DCs
	MaxDCs      int
	HubSpreadKM float64
	GridCellKM  float64
}

// DefaultFig6 matches the paper's scale.
func DefaultFig6() Fig6Config {
	return Fig6Config{Regions: 33, MinDCs: 5, MaxDCs: 15, HubSpreadKM: 6, GridCellKM: 2}
}

// Fig6Result holds the per-region area-increase ratios.
type Fig6Result struct {
	Ratios []float64
}

// Fig6 runs the study.
func Fig6(cfg Fig6Config) (Fig6Result, error) {
	var ratios []float64
	span := cfg.MaxDCs - cfg.MinDCs + 1
	for seed := int64(0); seed < int64(cfg.Regions); seed++ {
		n := cfg.MinDCs + int(seed)%span
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = seed
		m := fibermap.Generate(gcfg)
		pcfg := fibermap.DefaultPlace()
		pcfg.Seed, pcfg.N = seed+50, n
		dcs, err := fibermap.PlaceDCs(m, pcfg)
		if err != nil {
			return Fig6Result{}, fmt.Errorf("region %d: %w", seed, err)
		}
		a := siting.DefaultAnalysis(m)
		a.GridCellKM = cfg.GridCellKM
		h1, h2 := fibermap.ChooseHubs(m, cfg.HubSpreadKM)
		r, err := a.AreaIncrease(h1, h2, dcs)
		if err != nil {
			return Fig6Result{}, fmt.Errorf("region %d: %w", seed, err)
		}
		ratios = append(ratios, r)
	}
	return Fig6Result{Ratios: ratios}, nil
}

// Format renders one bar per region as in the paper's figure.
func (r Fig6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — X-fold siting-area increase, distributed vs. centralized\n")
	fmt.Fprintf(&b, "%-8s %s\n", "region", "increase")
	for i, ratio := range r.Ratios {
		fmt.Fprintf(&b, "%-8d %.2fx\n", i+1, ratio)
	}
	fmt.Fprintf(&b, "median %.2fx  min %.2fx  max %.2fx (paper: 2-5x)\n",
		stats.Median(r.Ratios), -stats.Max(negate(r.Ratios)), stats.Max(r.Ratios))
	return b.String()
}

func negate(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = -x
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig. 7: §2.4 group-model port cost as topologies become distributed.

// Fig7Row is one group count's relative costs, normalised to the
// centralized electrical design.
type Fig7Row struct {
	Groups       int
	Electrical   float64
	ElectricalSR float64
	Optical      float64
	TotalPorts   int
}

// Fig7 evaluates the model for the paper's 16-DC example region.
func Fig7() []Fig7Row {
	const n, p = 16, 32
	c := cost.Default()
	base := (cost.PortModel{N: n, P: p, G: 1}).ElectricalCost(c, false)
	var rows []Fig7Row
	for _, g := range []int{1, 2, 4, 8, 16} {
		pm := cost.PortModel{N: n, P: p, G: g}
		rows = append(rows, Fig7Row{
			Groups:       g,
			Electrical:   pm.ElectricalCost(c, false) / base,
			ElectricalSR: pm.ElectricalCost(c, true) / base,
			Optical:      pm.OpticalCost(c) / base,
			TotalPorts:   pm.TotalPorts(),
		})
	}
	return rows
}

// FormatFig7 renders the rows.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — Relative port cost, 16 DCs (1 = centralized electrical)\n")
	fmt.Fprintf(&b, "%-8s %-12s %-16s %-12s %s\n", "groups", "electrical", "electrical+SR", "optical", "ports")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-12.2f %-16.2f %-12.2f %d\n",
			r.Groups, r.Electrical, r.ElectricalSR, r.Optical, r.TotalPorts)
	}
	last := rows[len(rows)-1]
	fmt.Fprintf(&b, "fully distributed electrical: %.1fx centralized (paper: ≈7x)\n", last.Electrical)
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 9: OSNR penalty vs. amplifier count.

// Fig9Row is one cascade length's penalty.
type Fig9Row struct {
	Amps      int
	PenaltyDB float64
}

// Fig9 evaluates the measured-model penalty for 1..8 amplifiers.
func Fig9() []Fig9Row {
	var rows []Fig9Row
	for n := 1; n <= 8; n++ {
		rows = append(rows, Fig9Row{Amps: n, PenaltyDB: optics.OSNRPenaltyDB(n)})
	}
	return rows
}

// FormatFig9 renders the series.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — OSNR penalty vs. on-path amplifiers\n")
	fmt.Fprintf(&b, "%-8s %s\n", "amps", "penalty (dB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %.2f\n", r.Amps, r.PenaltyDB)
	}
	fmt.Fprintf(&b, "max amps within the %.0f dB budget: %d (paper: 3)\n",
		optics.OSNRPenaltyBudgetDB, optics.MaxAmpsWithinPenalty(optics.OSNRPenaltyBudgetDB))
	return b.String()
}
