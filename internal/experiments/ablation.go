package experiments

import (
	"fmt"
	"strings"

	"iris/internal/clos"
	"iris/internal/cost"
	"iris/internal/fibermap"
	"iris/internal/plan"
	"iris/internal/stats"
	"iris/internal/wave"
)

// ---------------------------------------------------------------------------
// Ablation: the Clos internal-port tax of EPS hubs.
//
// The Fig. 12 cost model prices one electrical port per transceiver. A
// non-blocking hub "big switch" (§2.3) additionally needs fabric-internal
// ports once its port count exceeds one switch's radix (§4.2). This
// ablation quantifies how much that understates EPS cost.

// ClosConfig parameterises the ablation.
type ClosConfig struct {
	MapSeeds []int64
	Ns       []int
	F        int
	Lambda   int
	Radix    int // switch radix, e.g. 32 ports
}

// DefaultClos returns the ablation configuration.
func DefaultClos() ClosConfig {
	return ClosConfig{MapSeeds: []int64{0, 1, 2}, Ns: []int{5, 10, 15}, F: 16, Lambda: 40, Radix: 32}
}

// ClosRow is one scenario's fabric-aware EPS accounting.
type ClosRow struct {
	Scenario
	// HutPorts is the transceiver-facing port count summed over huts.
	HutPorts int
	// InternalPorts is the Clos fabric-internal ports those huts need.
	InternalPorts int
	// CostIncreaseFrac is the EPS cost growth when internal ports are
	// priced at the electrical port price.
	CostIncreaseFrac float64
}

// ClosAblation sizes a non-blocking Clos fabric for every hut of every
// planned region and reports the internal-port overhead the flat port
// model omits.
func ClosAblation(cfg ClosConfig) ([]ClosRow, error) {
	prices := cost.Default()
	var rows []ClosRow
	planner := plan.NewPlanner() // reused arena; rows only read pl within the iteration
	for _, seed := range cfg.MapSeeds {
		for _, n := range cfg.Ns {
			gcfg := fibermap.DefaultGen()
			gcfg.Seed = seed
			m := fibermap.Generate(gcfg)
			pcfg := fibermap.DefaultPlace()
			pcfg.Seed, pcfg.N = seed*31+int64(n), n
			dcs, err := fibermap.PlaceDCs(m, pcfg)
			if err != nil {
				return nil, fmt.Errorf("map %d n=%d: %w", seed, n, err)
			}
			caps := make(map[int]int, len(dcs))
			for _, dc := range dcs {
				caps[dc] = cfg.F
			}
			pl, err := planner.Plan(plan.Input{Map: m, Capacity: caps, Lambda: cfg.Lambda})
			if err != nil {
				return nil, err
			}

			// Transceiver-facing ports per hut: base fiber ends × λ.
			hutPorts := make(map[int]int)
			for id, du := range pl.Ducts {
				d := m.Ducts[id]
				for _, end := range []int{d.A, d.B} {
					if m.Nodes[end].Kind == fibermap.Hut {
						hutPorts[end] += du.BasePairs * cfg.Lambda
					}
				}
			}
			row := ClosRow{Scenario: Scenario{MapSeed: seed, N: n, F: cfg.F, Lambda: cfg.Lambda}}
			for _, ports := range hutPorts {
				if ports == 0 {
					continue
				}
				d, err := clos.Size(ports, cfg.Radix, 1)
				if err != nil {
					return nil, fmt.Errorf("map %d n=%d: hut with %d ports: %w", seed, n, ports, err)
				}
				row.HutPorts += ports
				row.InternalPorts += d.InternalPorts
			}
			eps := cost.EPS(pl, prices)
			extra := float64(row.InternalPorts) * prices.ElectricalPort
			row.CostIncreaseFrac = extra / eps.Total()
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatClos renders the ablation.
func FormatClos(rows []ClosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — Clos internal-port tax of EPS hut fabrics (non-blocking, radix 32)\n")
	fmt.Fprintf(&b, "%-6s %-4s %-12s %-16s %s\n", "map", "n", "hut ports", "internal ports", "EPS cost increase")
	var fracs []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-4d %-12d %-16d +%.1f%%\n",
			r.MapSeed, r.N, r.HutPorts, r.InternalPorts, r.CostIncreaseFrac*100)
		fracs = append(fracs, r.CostIncreaseFrac)
	}
	fmt.Fprintf(&b, "median EPS cost increase +%.1f%% — the flat port model of Fig. 12 understates EPS;\n",
		stats.Median(fracs)*100)
	fmt.Fprintf(&b, "Iris needs no hub fabric at all, so its advantage only grows\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation: pure wavelength switching (Appendix B).
//
// A design that switches at wavelength granularity needs an OXC at every
// switching point, but TC4 admits at most one OXC per path; and it must
// solve a wavelength-assignment coloring problem. This ablation measures
// both on planned regions.

// WSSConfig parameterises the pure-wavelength-switching analysis.
type WSSConfig struct {
	MapSeeds []int64
	Ns       []int
	F        int
	Lambda   int
}

// DefaultWSS returns the analysis configuration.
func DefaultWSS() WSSConfig {
	return WSSConfig{MapSeeds: []int64{0, 1, 2}, Ns: []int{5, 10, 15}, F: 16, Lambda: 40}
}

// WSSRow is one region's feasibility picture.
type WSSRow struct {
	Scenario
	// FracNeedsMultiOXC is the fraction of DC-pair paths with more than
	// one intermediate switching point — infeasible with OXCs under TC4.
	FracNeedsMultiOXC float64
	// Colors is the wavelength count a greedy assignment needs for one
	// lightpath per DC pair; Lambda bounds what a fiber offers.
	Colors int
}

// WSSAblation evaluates the pure wavelength-switched design's obstacles.
func WSSAblation(cfg WSSConfig) ([]WSSRow, error) {
	var rows []WSSRow
	planner := plan.NewPlanner() // reused arena; rows only read pl within the iteration
	for _, seed := range cfg.MapSeeds {
		for _, n := range cfg.Ns {
			gcfg := fibermap.DefaultGen()
			gcfg.Seed = seed
			m := fibermap.Generate(gcfg)
			pcfg := fibermap.DefaultPlace()
			pcfg.Seed, pcfg.N = seed*31+int64(n), n
			dcs, err := fibermap.PlaceDCs(m, pcfg)
			if err != nil {
				return nil, fmt.Errorf("map %d n=%d: %w", seed, n, err)
			}
			caps := make(map[int]int, len(dcs))
			for _, dc := range dcs {
				caps[dc] = cfg.F
			}
			pl, err := planner.Plan(plan.Input{Map: m, Capacity: caps, Lambda: cfg.Lambda})
			if err != nil {
				return nil, err
			}

			multi, total := 0, 0
			var paths []wave.Lightpath
			for _, info := range pl.Paths {
				total++
				if len(info.Nodes) > 3 { // more than one intermediate node
					multi++
				}
				paths = append(paths, wave.Lightpath{ID: total, Links: info.Ducts})
			}
			colors, used := wave.ColorLightpaths(paths)
			if !wave.ValidColoring(paths, colors) {
				return nil, fmt.Errorf("map %d n=%d: invalid coloring", seed, n)
			}
			rows = append(rows, WSSRow{
				Scenario:          Scenario{MapSeed: seed, N: n, F: cfg.F, Lambda: cfg.Lambda},
				FracNeedsMultiOXC: float64(multi) / float64(total),
				Colors:            used,
			})
		}
	}
	return rows, nil
}

// FormatWSS renders the analysis.
func FormatWSS(rows []WSSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — pure wavelength switching (Appendix B)\n")
	fmt.Fprintf(&b, "%-6s %-4s %-22s %s\n", "map", "n", "paths needing >1 OXC", "wavelengths (greedy coloring)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-4d %-22.0f%% %d of λ=%d\n",
			r.MapSeed, r.N, r.FracNeedsMultiOXC*100, r.Colors, r.Lambda)
	}
	fmt.Fprintf(&b, "TC4 admits one OXC per path, so multi-hop paths cannot be wavelength-switched\n")
	fmt.Fprintf(&b, "at all — the paper's conclusion that fiber switching is the viable architecture\n")
	return b.String()
}
