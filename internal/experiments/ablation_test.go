package experiments

import (
	"strings"
	"testing"
)

func TestClosAblation(t *testing.T) {
	cfg := ClosConfig{MapSeeds: []int64{0, 1}, Ns: []int{5, 10}, F: 16, Lambda: 40, Radix: 32}
	rows, err := ClosAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.HutPorts <= 0 {
			t.Errorf("map %d n=%d: no hut ports", r.MapSeed, r.N)
		}
		if r.InternalPorts <= 0 {
			t.Errorf("map %d n=%d: no internal ports despite DCI-scale hubs", r.MapSeed, r.N)
		}
		if r.CostIncreaseFrac <= 0 || r.CostIncreaseFrac > 0.5 {
			t.Errorf("map %d n=%d: cost increase %.2f out of band", r.MapSeed, r.N, r.CostIncreaseFrac)
		}
	}
	out := FormatClos(rows)
	if !strings.Contains(out, "Clos internal-port tax") {
		t.Error("Format missing header")
	}
}

func TestWSSAblation(t *testing.T) {
	cfg := WSSConfig{MapSeeds: []int64{0, 1}, Ns: []int{5, 10}, F: 16, Lambda: 40}
	rows, err := WSSAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	anyMulti := false
	for _, r := range rows {
		if r.FracNeedsMultiOXC < 0 || r.FracNeedsMultiOXC > 1 {
			t.Errorf("fraction %v out of range", r.FracNeedsMultiOXC)
		}
		if r.FracNeedsMultiOXC > 0 {
			anyMulti = true
		}
		if r.Colors <= 0 {
			t.Errorf("map %d n=%d: no wavelengths assigned", r.MapSeed, r.N)
		}
	}
	if !anyMulti {
		t.Error("expected at least one region with multi-OXC paths (the Appendix B obstacle)")
	}
	out := FormatWSS(rows)
	if !strings.Contains(out, "wavelength switching") {
		t.Error("Format missing header")
	}
}
