package experiments

import "testing"

// TestRobustAblationChurnTrade is the headline acceptance property: on
// the same seeded feed, the robust envelope policy must commit strictly
// fewer reconfigurations than the per-shift delta policy, with its worst
// p99 flow slowdown staying within 2× delta mode's (the envelope re-plans
// are full solves, so each one moves more — the bound says they don't
// move pathologically more).
func TestRobustAblationChurnTrade(t *testing.T) {
	cfg := DefaultRobustAblation()
	cfg.Steps = 12 // trimmed grid: keep the unit test fast
	cfg.Windows = []int{4}
	rows, err := RobustAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Windows)*len(cfg.Bounds) {
		t.Fatalf("got %d rows, want %d", len(rows), len(cfg.Windows)*len(cfg.Bounds))
	}
	for _, r := range rows {
		if r.RobustReconfigs >= r.DeltaReconfigs {
			t.Errorf("window %d bound %.2f: robust reconfigs %d ≥ delta %d",
				r.Window, r.Bound, r.RobustReconfigs, r.DeltaReconfigs)
		}
		if r.Absorbed == 0 {
			t.Errorf("window %d bound %.2f: envelope absorbed no shifts", r.Window, r.Bound)
		}
		if r.Overprovision < 1 {
			t.Errorf("window %d bound %.2f: overprovision %.2f < 1", r.Window, r.Bound, r.Overprovision)
		}
		if !r.AllAdmissible {
			t.Errorf("window %d bound %.2f: committed envelope not admissible for its set", r.Window, r.Bound)
		}
		if bound := 2 * maxf(r.DeltaP99, 1); r.RobustP99 > bound {
			t.Errorf("window %d bound %.2f: robust p99 %.4f above %.4f (2× delta, floor 1)",
				r.Window, r.Bound, r.RobustP99, bound)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestRobustAblationRejectsInvalidConfig(t *testing.T) {
	for _, cfg := range []RobustAblationConfig{
		{Steps: 1, Windows: []int{4}, Bounds: []float64{0.2}},
		{Steps: 10, Bounds: []float64{0.2}},
		{Steps: 10, Windows: []int{4}},
	} {
		if _, err := RobustAblation(cfg); err == nil {
			t.Errorf("RobustAblation accepted invalid config %+v", cfg)
		}
	}
}
