package experiments

import (
	"strings"
	"testing"
)

func TestFig2(t *testing.T) {
	e := Fig2()
	if r := e.Reduction(); r < 5 || r > 7 {
		t.Errorf("reduction = %.1f, want ≈6", r)
	}
	out := FormatFig2(e)
	for _, want := range []string{"Fig. 2", "direct", "via hub", "6x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
