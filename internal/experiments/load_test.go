package experiments

import (
	"strings"
	"testing"
)

func TestLoadSweep(t *testing.T) {
	cfg := DefaultLoadSweep()
	cfg.Pipes = 4
	cfg.DurationS = 10
	cfg.IntervalsS = []float64{2, 0.5}
	rows, err := LoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Flows == 0 || r.Reconfigs == 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.P99 < 1 {
			t.Errorf("interval %vs: dips made flows faster (p99 %v)", r.IntervalS, r.P99)
		}
		if r.BytesStranded <= 0 {
			t.Errorf("interval %vs: no bytes stranded", r.IntervalS)
		}
	}
	// Faster reconfigurations must strand at least as many bytes.
	if rows[1].BytesStranded < rows[0].BytesStranded {
		t.Errorf("4x the drains stranded fewer bytes: %v vs %v",
			rows[1].BytesStranded, rows[0].BytesStranded)
	}
	out := FormatLoadSweep(rows)
	if !strings.Contains(out, "p999") || !strings.Contains(out, "0.5s") {
		t.Errorf("format output missing columns:\n%s", out)
	}
}

func TestLoadSweepValidation(t *testing.T) {
	if _, err := LoadSweep(LoadSweepConfig{}); err == nil {
		t.Error("expected error for zero config")
	}
	cfg := DefaultLoadSweep()
	cfg.IntervalsS = []float64{0}
	cfg.DurationS = 5
	if _, err := LoadSweep(cfg); err == nil {
		t.Error("expected error for zero interval")
	}
}
