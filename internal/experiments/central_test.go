package experiments

import (
	"strings"
	"testing"
)

func TestCentralVsDistributed(t *testing.T) {
	cfg := CentralConfig{MapSeeds: []int64{0, 1}, N: 6, F: 8, Lambda: 40, HubSpreadKM: 6}
	rows, err := CentralVsDistributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Hub routing can only lengthen paths.
		if r.MedianInflation < 1 {
			t.Errorf("map %d: median inflation %.2f below 1", r.MapSeed, r.MedianInflation)
		}
		// Iris beats EPS under either routing.
		if r.IrisDistributed >= r.EPSDistributed {
			t.Errorf("map %d: distributed Iris %.0f not below EPS %.0f",
				r.MapSeed, r.IrisDistributed, r.EPSDistributed)
		}
		if r.IrisCentral >= r.EPSCentral {
			t.Errorf("map %d: centralized Iris %.0f not below EPS %.0f",
				r.MapSeed, r.IrisCentral, r.EPSCentral)
		}
		// The paper's headline: once optical, the distributed design's
		// cost lands in the neighbourhood of hub-and-spoke (within ~1.1x;
		// on our maps it is typically cheaper, since hub detours also
		// cost fiber).
		if ratio := r.IrisDistributed / r.IrisCentral; ratio > 1.2 {
			t.Errorf("map %d: distributed Iris %.2fx centralized; paper says ≈1.1x", r.MapSeed, ratio)
		}
	}
	out := FormatCentral(rows)
	if !strings.Contains(out, "Centralized vs. distributed") {
		t.Error("Format missing header")
	}
}
