package experiments

import (
	"fmt"
	"strings"

	"iris/internal/cost"
	"iris/internal/fibermap"
	"iris/internal/plan"
	"iris/internal/stats"
)

// CentralConfig parameterises the centralized-vs-distributed comparison on
// real fiber maps (the map-level version of the paper's §2 analysis and
// its abstract summary: distributed designs win latency and siting but a
// packet-switched implementation of them costs ~7× hub-and-spoke, while
// Iris brings them to around hub-and-spoke cost).
type CentralConfig struct {
	MapSeeds    []int64
	N           int
	F           int
	Lambda      int
	HubSpreadKM float64
}

// DefaultCentral returns the comparison configuration.
func DefaultCentral() CentralConfig {
	return CentralConfig{MapSeeds: []int64{0, 1, 2, 3}, N: 8, F: 16, Lambda: 40, HubSpreadKM: 6}
}

// CentralRow is one region's comparison.
type CentralRow struct {
	MapSeed int64
	// MedianInflation is the median over DC pairs of (hub-routed fiber
	// path / shortest fiber path) — Fig. 3's metric measured on real
	// fiber routes instead of the geographic rule of thumb.
	MedianInflation float64
	// FracOver2x is the fraction of pairs whose hub path is >2× longer.
	FracOver2x float64
	// Annual costs of the four (routing × switching) combinations.
	EPSCentral, EPSDistributed   float64
	IrisCentral, IrisDistributed float64
}

// CentralVsDistributed plans every region twice (hub-and-spoke and
// shortest-path) and prices both under EPS and Iris.
func CentralVsDistributed(cfg CentralConfig) ([]CentralRow, error) {
	prices := cost.Default()
	var rows []CentralRow
	// Both plans are read while pricing a row, so each routing mode keeps
	// its own reusable arena.
	distPlanner := plan.NewPlanner()
	centPlanner := plan.NewPlanner()
	for _, seed := range cfg.MapSeeds {
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = seed
		m := fibermap.Generate(gcfg)
		pcfg := fibermap.DefaultPlace()
		pcfg.Seed, pcfg.N = seed+9, cfg.N
		dcs, err := fibermap.PlaceDCs(m, pcfg)
		if err != nil {
			return nil, fmt.Errorf("map %d: %w", seed, err)
		}
		caps := make(map[int]int, len(dcs))
		for _, dc := range dcs {
			caps[dc] = cfg.F
		}
		h1, h2 := fibermap.ChooseHubs(m, cfg.HubSpreadKM)

		dist, err := distPlanner.Plan(plan.Input{Map: m, Capacity: caps, Lambda: cfg.Lambda})
		if err != nil {
			return nil, fmt.Errorf("map %d distributed: %w", seed, err)
		}
		cent, err := centPlanner.Plan(plan.Input{
			Map: m, Capacity: caps, Lambda: cfg.Lambda, ViaHubs: []int{h1, h2},
		})
		if err != nil {
			return nil, fmt.Errorf("map %d centralized: %w", seed, err)
		}

		var inflations []float64
		for pair, di := range dist.Paths {
			if ci, ok := cent.Paths[pair]; ok && di.TotalKM > 0 {
				inflations = append(inflations, ci.TotalKM/di.TotalKM)
			}
		}
		rows = append(rows, CentralRow{
			MapSeed:         seed,
			MedianInflation: stats.Median(inflations),
			FracOver2x:      stats.FractionAbove(inflations, 2),
			EPSCentral:      cost.EPS(cent, prices).Total(),
			EPSDistributed:  cost.EPS(dist, prices).Total(),
			IrisCentral:     cost.Iris(cent, prices).Total(),
			IrisDistributed: cost.Iris(dist, prices).Total(),
		})
	}
	return rows, nil
}

// FormatCentral renders the comparison.
func FormatCentral(rows []CentralRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Centralized vs. distributed on the same fiber maps (§2, map-level)\n")
	fmt.Fprintf(&b, "%-6s %-12s %-10s %-12s %-12s %-12s %s\n",
		"map", "latency med", ">2x pairs", "EPS-central", "EPS-dist", "Iris-central", "Iris-dist ($M/yr)")
	var distOverCentral []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-12.2f %-10.0f%% %-12.1f %-12.1f %-12.1f %.1f\n",
			r.MapSeed, r.MedianInflation, r.FracOver2x*100,
			r.EPSCentral/1e6, r.EPSDistributed/1e6, r.IrisCentral/1e6, r.IrisDistributed/1e6)
		distOverCentral = append(distOverCentral, r.IrisDistributed/r.IrisCentral)
	}
	fmt.Fprintf(&b, "hub routing inflates the median DC-pair fiber path, and distributed Iris costs\n")
	fmt.Fprintf(&b, "%.2fx centralized Iris in the median (paper headline: distributed within 1.1x of\n",
		stats.Median(distOverCentral))
	fmt.Fprintf(&b, "hub-and-spoke once implemented optically)\n")
	return b.String()
}
