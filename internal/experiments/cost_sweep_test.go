package experiments

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"iris/internal/plan"
)

// TestSweepParallelMatchesSerial is the determinism contract of the sweep
// engine: a parallel run must return rows identical — same order, same
// values — to a serial one. Run under -race in CI, it also exercises the
// shared read-only region cache and the memoised shortest-path trees.
func TestSweepParallelMatchesSerial(t *testing.T) {
	cfg := QuickSweep()
	cfg.Parallelism = 1
	serial, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	par, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("serial %d rows, parallel %d rows", len(serial), len(par))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], par[i]) {
			t.Fatalf("row %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], par[i])
		}
	}
}

// TestSweepPlanInvocations is the regression test for the double-planning
// bug: with MaxFailures == 0 the 0-failure baseline is the very plan just
// computed, so Sweep must invoke the planner exactly once per scenario
// (and exactly twice when a separate 0-failure baseline is really needed).
func TestSweepPlanInvocations(t *testing.T) {
	defer func() { planNew = (*plan.Planner).Plan }()
	var calls atomic.Int64
	planNew = func(p *plan.Planner, in plan.Input) (*plan.Plan, error) {
		calls.Add(1)
		return p.Plan(in)
	}

	cfg := SweepConfig{
		MapSeeds: []int64{0}, Ns: []int{5}, Fs: []int{8, 16}, Lambdas: []int{40},
		MaxFailures: 0, Parallelism: 1,
	}
	rows, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := calls.Load(), int64(len(rows)); got != want {
		t.Errorf("MaxFailures=0: planner invoked %d times for %d scenarios, want %d", got, len(rows), want)
	}
	for i, r := range rows {
		if r.EPS != r.EPSNoFailures {
			t.Errorf("row %d: EPSNoFailures differs from EPS on a 0-failure sweep", i)
		}
	}

	calls.Store(0)
	cfg.MaxFailures = 1
	rows, err = Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := calls.Load(), int64(2*len(rows)); got != want {
		t.Errorf("MaxFailures=1: planner invoked %d times for %d scenarios, want %d", got, len(rows), want)
	}
}

// TestSweepFirstErrorWins checks errgroup-style cancellation: the error
// reported is the serial-order first failing scenario, wrapped with its
// grid coordinates, at any parallelism.
func TestSweepFirstErrorWins(t *testing.T) {
	defer func() { planNew = (*plan.Planner).Plan }()
	sentinel := errors.New("injected planner failure")
	planNew = func(p *plan.Planner, in plan.Input) (*plan.Plan, error) {
		if in.Lambda == 64 {
			return nil, sentinel
		}
		return p.Plan(in)
	}

	for _, par := range []int{1, 4} {
		cfg := QuickSweep()
		cfg.Parallelism = par
		rows, err := Sweep(cfg)
		if rows != nil {
			t.Errorf("parallelism %d: rows returned alongside error", par)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("parallelism %d: err = %v, want wrapped sentinel", par, err)
		}
		// QuickSweep's serial-order first λ=64 scenario.
		want := "map 0 n=5 f=8 λ=64"
		if !strings.Contains(err.Error(), want) {
			t.Errorf("parallelism %d: err = %q, want it to name %q", par, err, want)
		}
	}
}
