package experiments

import (
	"strings"
	"testing"
)

func TestFig5(t *testing.T) {
	cfg := DefaultFig5()
	cfg.Width = 40
	near, far, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	countChar := func(s string, ch byte) int {
		n := 0
		for i := 0; i < len(s); i++ {
			if s[i] == ch {
				n++
			}
		}
		return n
	}
	// The centralized ('#') area must shrink when the hubs spread out;
	// the total distributed area ('#'+'+') stays the same.
	if countChar(far, '#') > countChar(near, '#') {
		t.Errorf("far-hub centralized area (%d) exceeds near-hub (%d)",
			countChar(far, '#'), countChar(near, '#'))
	}
	nearTotal := countChar(near, '#') + countChar(near, '+')
	farTotal := countChar(far, '#') + countChar(far, '+')
	if diff := nearTotal - farTotal; diff > 4 || diff < -4 {
		t.Errorf("distributed area differs across hub placements: %d vs %d", nearTotal, farTotal)
	}
	out := FormatFig5(near, far)
	if !strings.Contains(out, "Fig. 5") || !strings.Contains(out, "hubs far apart") {
		t.Error("Format missing captions")
	}
}
