package experiments

import (
	"fmt"
	"strings"

	"iris/internal/flowsim"
	"iris/internal/traffic"
)

// The load sweep is the user-scale companion to Fig. 17: instead of a
// handful of exactly simulated pipes, the bucketed load engine pushes
// hundreds of thousands of flows through a region while reconfigurations
// dim the pipes at a swept rate, with diurnal and flash-crowd arrival
// shaping layered on. Each row reports how the slowdown tail grows as
// reconfigurations come faster.

// LoadSweepConfig drives LoadSweep.
type LoadSweepConfig struct {
	Seed int64
	Dist traffic.SizeDist
	// Pipes and CapacityGbps shape the synthetic region; Util is the
	// offered load per pipe.
	Pipes        int
	CapacityGbps float64
	Util         float64
	// IntervalsS are the reconfiguration intervals swept (seconds between
	// drains; every pipe dips FracLost for ReconfigS at each).
	IntervalsS []float64
	ReconfigS  float64
	FracLost   float64
	DurationS  float64
	// Profile modulates arrivals; the zero profile is flat.
	Profile traffic.LoadProfile
}

// LoadSweepRow is one reconfiguration rate's outcome.
type LoadSweepRow struct {
	IntervalS      float64
	Reconfigs      int
	Flows          uint64
	P50            float64
	P99            float64
	P999           float64
	PeakConcurrent uint64
	BytesStranded  float64
}

// DefaultLoadSweep returns the §6.3 operating point scaled up: a
// 12-pipe region under diurnal + flash-crowd load, drains from every 2s
// down to every 250ms.
func DefaultLoadSweep() LoadSweepConfig {
	return LoadSweepConfig{
		Seed: 1, Dist: traffic.FBWeb(),
		Pipes: 12, CapacityGbps: 0.5, Util: 0.7,
		IntervalsS: []float64{2, 1, 0.5, 0.25},
		ReconfigS:  0.070, FracLost: 0.5, DurationS: 30,
		Profile: traffic.LoadProfile{
			DiurnalAmp: 0.3, DiurnalPeriodS: 20,
			FlashEveryS: 10, FlashDurationS: 2, FlashMult: 2,
		},
	}
}

// LoadSweep runs the dipped and clean load simulations at each
// reconfiguration interval and reports the slowdown quantiles.
func LoadSweep(cfg LoadSweepConfig) ([]LoadSweepRow, error) {
	if cfg.Pipes <= 0 || cfg.DurationS <= 0 || len(cfg.IntervalsS) == 0 {
		return nil, fmt.Errorf("experiments: invalid load sweep %+v", cfg)
	}
	shape, err := traffic.NewShape(cfg.Seed, cfg.Profile, cfg.DurationS)
	if err != nil {
		return nil, err
	}
	pipes := make([]flowsim.Pipe, cfg.Pipes)
	for i := range pipes {
		pipes[i] = flowsim.Pipe{CapacityGbps: cfg.CapacityGbps, UtilFrac: cfg.Util}
	}
	base := flowsim.LoadConfig{
		Seed: cfg.Seed, DurationS: cfg.DurationS, WarmupS: cfg.DurationS / 10,
		Dist: cfg.Dist, Pipes: pipes, Shape: shape,
	}
	clean, err := flowsim.RunLoad(base)
	if err != nil {
		return nil, err
	}

	var rows []LoadSweepRow
	for _, interval := range cfg.IntervalsS {
		if interval <= 0 {
			return nil, fmt.Errorf("experiments: non-positive reconfig interval %v", interval)
		}
		dips := make(map[int][]flowsim.Dip)
		n := 0
		for t := interval; t < cfg.DurationS; t += interval {
			for i := range pipes {
				dips[i] = append(dips[i], flowsim.Dip{
					TimeS: t, DurationS: cfg.ReconfigS, FracLost: cfg.FracLost,
				})
			}
			n++
		}
		dipped := base
		dipped.Dips = dips
		st, err := flowsim.RunLoad(dipped)
		if err != nil {
			return nil, fmt.Errorf("interval %vs: %w", interval, err)
		}
		rows = append(rows, LoadSweepRow{
			IntervalS: interval, Reconfigs: n,
			Flows:          st.Flows,
			P50:            ratioAt(st, clean, 0.50),
			P99:            ratioAt(st, clean, 0.99),
			P999:           ratioAt(st, clean, 0.999),
			PeakConcurrent: st.PeakConcurrent,
			BytesStranded:  st.BytesStranded,
		})
	}
	return rows, nil
}

func ratioAt(dipped, clean flowsim.LoadStats, q float64) float64 {
	c := clean.FCT.Quantile(q)
	if c <= 0 {
		return 1
	}
	return dipped.FCT.Quantile(q) / c
}

// FormatLoadSweep renders the slowdown-vs-reconfiguration-rate table.
func FormatLoadSweep(rows []LoadSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Load sweep — FCT slowdown vs reconfiguration rate (bucketed engine)\n")
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-8s %-8s %-8s %-10s %s\n",
		"interval", "reconfigs", "flows", "p50", "p99", "p999", "peak", "strandedMB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10d %-10d %-8.3f %-8.3f %-8.3f %-10d %.1f\n",
			fmt.Sprintf("%.3gs", r.IntervalS), r.Reconfigs, r.Flows,
			r.P50, r.P99, r.P999, r.PeakConcurrent, r.BytesStranded/1e6)
	}
	return b.String()
}
