package experiments

import (
	"fmt"
	"sort"
	"strings"

	"iris/internal/stats"
)

// ResidualMerge applies the Appendix B construction to one DC's demands:
// given per-destination demands in wavelengths (each at most λ — anything
// larger rides base capacity by definition), the largest ⌊D/λ⌋ demands are
// served by base-capacity fibers and the rest become residual traffic,
// which wavelength switching can compress into ⌈residual/λ⌉ fibers.
//
// Observation 2 of the paper: the residual of n destinations never exceeds
// λ·n/4 when the base split is exact, so the merged fiber count is at most
// ⌈n/4⌉ (one extra fiber of slack appears when D is not a multiple of λ).
func ResidualMerge(demands []int, lambda int) (baseFibers, residualWavelengths, mergedFibers int) {
	if lambda <= 0 {
		panic("experiments: lambda must be positive")
	}
	sorted := append([]int(nil), demands...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	total := 0
	for _, d := range sorted {
		if d < 0 || d > lambda {
			panic(fmt.Sprintf("experiments: demand %d outside [0,λ=%d]", d, lambda))
		}
		total += d
	}
	baseFibers = total / lambda
	if baseFibers > len(sorted) {
		baseFibers = len(sorted)
	}
	for _, d := range sorted[baseFibers:] {
		residualWavelengths += d
	}
	mergedFibers = (residualWavelengths + lambda - 1) / lambda
	return baseFibers, residualWavelengths, mergedFibers
}

// AppendixBResult summarises the hybrid design's savings over the sweep.
type AppendixBResult struct {
	// FiberSavedFrac is the fraction of Iris residual fiber the hybrid
	// design eliminates, per scenario.
	FiberSavedFrac []float64
	// CostSavedFrac is the total-cost saving of hybrid over Iris.
	CostSavedFrac []float64
}

// AppendixB extracts the hybrid-design savings from sweep rows.
func AppendixB(rows []SweepRow) AppendixBResult {
	var res AppendixBResult
	for _, row := range rows {
		saved := row.Iris.FiberPairs - row.Hybrid.FiberPairs
		residual := row.Iris.FiberPairs - row.EPS.FiberPairs // residual + cut-through pairs
		if residual > 0 {
			res.FiberSavedFrac = append(res.FiberSavedFrac, float64(saved)/float64(residual))
		}
		res.CostSavedFrac = append(res.CostSavedFrac,
			1-row.Hybrid.Total()/row.Iris.Total())
	}
	return res
}

// Format renders the Appendix B summary.
func (r AppendixBResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Appendix B — hybrid (fiber + wavelength switching) vs. pure fiber switching\n")
	fmt.Fprintf(&b, "residual fiber eliminated: median %.0f%% (paper: ≈50%%)\n",
		stats.Median(r.FiberSavedFrac)*100)
	fmt.Fprintf(&b, "total cost saving:         median %.1f%% (paper: small, not worth the complexity)\n",
		stats.Median(r.CostSavedFrac)*100)
	return b.String()
}
