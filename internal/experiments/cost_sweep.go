package experiments

import (
	"fmt"
	"strings"
	"sync"

	"iris/internal/cost"
	"iris/internal/fibermap"
	"iris/internal/graph"
	"iris/internal/parallel"
	"iris/internal/plan"
	"iris/internal/stats"
	"iris/internal/telemetry"
	"iris/internal/trace"
)

// SweepConfig is the Fig. 12 scenario grid: fiber maps × region sizes ×
// DC capacities × wavelengths per fiber.
type SweepConfig struct {
	MapSeeds    []int64
	Ns          []int // DCs per region
	Fs          []int // DC capacity in fiber-pairs
	Lambdas     []int // wavelengths per fiber
	MaxFailures int   // failure tolerance for the Iris plan
	// Parallelism bounds how many scenarios are planned concurrently:
	// 0 means GOMAXPROCS, 1 is fully serial. Row order and values are
	// identical at every setting.
	Parallelism int
	// Tracer, when non-nil, journals the sweep as one "sweep" trace with
	// a "row" child per scenario, each carrying its grid coordinates and
	// the failure-tolerant plan's per-stage children.
	Tracer *trace.Tracer
	// Registry, when non-nil, receives iris_plan_stage_seconds
	// observations from every scenario's failure-tolerant plan.
	Registry *telemetry.Registry
}

// stageBuckets match the daemon's latency buckets so plan-stage
// histograms from a sweep and from irisd line up scrape-for-scrape.
var stageBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// PaperSweep is the full grid of §6.1: 10 maps × n∈{5,10,15,20} ×
// f∈{8,16,32} × λ∈{40,64} = 240 scenarios with 2-failure tolerance.
func PaperSweep() SweepConfig {
	seeds := make([]int64, 10)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return SweepConfig{
		MapSeeds:    seeds,
		Ns:          []int{5, 10, 15, 20},
		Fs:          []int{8, 16, 32},
		Lambdas:     []int{40, 64},
		MaxFailures: 2,
	}
}

// QuickSweep is a reduced grid for tests and benchmarks: same structure,
// single-failure tolerance, 24 scenarios.
func QuickSweep() SweepConfig {
	return SweepConfig{
		MapSeeds:    []int64{0, 1, 2},
		Ns:          []int{5, 10},
		Fs:          []int{8, 16},
		Lambdas:     []int{40, 64},
		MaxFailures: 1,
	}
}

// Scenario identifies one sweep point.
type Scenario struct {
	MapSeed int64
	N       int
	F       int
	Lambda  int
}

// SweepRow is the evaluation of one scenario.
type SweepRow struct {
	Scenario

	EPS    cost.Breakdown // EPS on the same failure-tolerant plan
	Iris   cost.Breakdown
	Hybrid cost.Breakdown

	// EPSNoFailures prices EPS on a 0-failure plan (Fig. 12d's baseline).
	EPSNoFailures cost.Breakdown

	// OverheadFrac is the Appendix A metric: the share of the Iris cost
	// attributable to amplifiers and cut-through fiber.
	OverheadFrac float64

	// SLAViolations and PlanViolations report pairs whose surviving paths
	// exceeded the SLA or optical constraints in some failure scenario.
	SLAViolations  int
	PlanViolations int
}

// planNew is the planner entry point behind an indirection so tests can
// count or fail invocations. It must be swapped only before Sweep runs.
var planNew = (*plan.Planner).Plan

// sweepWorkspace is one worker's pair of reusable planner arenas: the
// failure-tolerant plan and its 0-failure baseline are alive at the same
// time while a row is priced, so each needs its own Planner (a Planner's
// result is overwritten by its next Plan call). Consecutive λ rows of the
// same (seed, n, f) region hit the planners' fingerprint and re-solve
// allocation-free.
type sweepWorkspace struct {
	kf, zf *plan.Planner
}

var sweepPool = sync.Pool{New: func() any {
	return &sweepWorkspace{kf: plan.NewPlanner(), zf: plan.NewPlanner()}
}}

// sweepRegion is one entry of the per-seed scenario cache: the generated
// map with its DCs placed, and the planner's base graph whose memoised
// shortest-path trees every (f, λ) scenario of the region shares. All
// fields are read-only once prepared.
type sweepRegion struct {
	m    *fibermap.Map
	dcs  []int
	base *graph.Graph
}

type regionKey struct {
	seed int64
	n    int
}

// prepareRegions generates each fiber map once per seed — Generate
// depends only on the seed — and places DCs on a clone per region size
// (PlaceDCs mutates the map it is given). Seeds are prepared
// concurrently under the sweep's parallelism bound.
func prepareRegions(cfg SweepConfig) (map[regionKey]*sweepRegion, error) {
	perSeed := make([]map[regionKey]*sweepRegion, len(cfg.MapSeeds))
	err := parallel.ForEach(len(cfg.MapSeeds), cfg.Parallelism, func(i int) error {
		seed := cfg.MapSeeds[i]
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = seed
		base := fibermap.Generate(gcfg)
		out := make(map[regionKey]*sweepRegion, len(cfg.Ns))
		for _, n := range cfg.Ns {
			m := base.Clone()
			pcfg := fibermap.DefaultPlace()
			pcfg.Seed, pcfg.N = seed*31+int64(n), n
			dcs, err := fibermap.PlaceDCs(m, pcfg)
			if err != nil {
				return fmt.Errorf("map %d n=%d: %w", seed, n, err)
			}
			out[regionKey{seed, n}] = &sweepRegion{m: m, dcs: dcs, base: plan.BaseGraph(m)}
		}
		perSeed[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	regions := make(map[regionKey]*sweepRegion, len(cfg.MapSeeds)*len(cfg.Ns))
	for _, out := range perSeed {
		for k, v := range out {
			regions[k] = v
		}
	}
	return regions, nil
}

// Sweep evaluates the grid, fanning scenarios out across
// SweepConfig.Parallelism workers. Scenario construction is deterministic
// in the config and every result lands in its index-addressed row, so two
// runs — at any parallelism — produce identical rows.
func Sweep(cfg SweepConfig) ([]SweepRow, error) {
	prices := cost.Default()

	scens := make([]Scenario, 0, len(cfg.MapSeeds)*len(cfg.Ns)*len(cfg.Fs)*len(cfg.Lambdas))
	for _, seed := range cfg.MapSeeds {
		for _, n := range cfg.Ns {
			for _, f := range cfg.Fs {
				for _, lambda := range cfg.Lambdas {
					scens = append(scens, Scenario{MapSeed: seed, N: n, F: f, Lambda: lambda})
				}
			}
		}
	}

	regions, err := prepareRegions(cfg)
	if err != nil {
		return nil, err
	}

	var stageHist *telemetry.HistogramVec
	if cfg.Registry != nil {
		stageHist = cfg.Registry.HistogramVec("iris_plan_stage_seconds",
			"Per-stage planner latency (route, amps, cutthrough, provision, total) from Algorithm 1.",
			"stage", stageBuckets)
	}
	root := cfg.Tracer.Start(cfg.Tracer.NextID(), "sweep")
	defer root.Finish()

	rows := make([]SweepRow, len(scens))
	err = parallel.ForEach(len(scens), cfg.Parallelism, func(i int) error {
		sc := scens[i]
		reg := regions[regionKey{sc.MapSeed, sc.N}]
		caps := make(map[int]int, len(reg.dcs))
		for _, dc := range reg.dcs {
			caps[dc] = sc.F
		}
		rsp := root.Child("row")
		rsp.SetAttr(fmt.Sprintf("seed=%d n=%d f=%d lambda=%d", sc.MapSeed, sc.N, sc.F, sc.Lambda))
		defer rsp.Finish()
		ws := sweepPool.Get().(*sweepWorkspace)
		defer sweepPool.Put(ws)
		in := plan.Input{Map: reg.m, Base: reg.base, Capacity: caps, Lambda: sc.Lambda, MaxFailures: cfg.MaxFailures, Span: rsp}
		pl, err := planNew(ws.kf, in)
		if err != nil {
			rsp.Fail(err)
			return fmt.Errorf("map %d n=%d f=%d λ=%d: %w", sc.MapSeed, sc.N, sc.F, sc.Lambda, err)
		}
		if stageHist != nil {
			for _, st := range pl.Stages {
				stageHist.With(st.Stage).Observe(st.Duration.Seconds())
			}
		}
		// Fig. 12d prices EPS on a 0-failure plan; when the sweep itself
		// runs at 0 failures that plan is identical, so reuse it instead
		// of planning the same input twice.
		pl0 := pl
		if cfg.MaxFailures != 0 {
			in0 := in
			in0.MaxFailures = 0
			in0.Span = nil // the baseline's stages would shadow the main plan's
			pl0, err = planNew(ws.zf, in0)
			if err != nil {
				rsp.Fail(err)
				return fmt.Errorf("map %d n=%d f=%d λ=%d (0 failures): %w", sc.MapSeed, sc.N, sc.F, sc.Lambda, err)
			}
		}
		row := SweepRow{
			Scenario:       sc,
			EPS:            cost.EPS(pl, prices),
			Iris:           cost.Iris(pl, prices),
			Hybrid:         cost.Hybrid(pl, prices),
			EPSNoFailures:  cost.EPS(pl0, prices),
			SLAViolations:  len(pl.SLA),
			PlanViolations: len(pl.Viol),
		}
		row.OverheadFrac = overheadFrac(pl, prices, row.Iris)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// overheadFrac computes the Appendix A cost share of amplifiers and
// cut-through fiber relative to the total Iris network cost.
func overheadFrac(pl *plan.Plan, prices cost.Catalog, iris cost.Breakdown) float64 {
	ctPairs := 0
	for _, du := range pl.Ducts {
		ctPairs += du.CutThroughPairs
	}
	overhead := float64(pl.TotalAmps())*prices.Amplifier + float64(ctPairs)*prices.FiberPair
	total := iris.Total()
	if total == 0 {
		return 0
	}
	return overhead / total
}

// Ratios extracts the Fig. 12(a) cost-ratio distributions from the rows.
type Ratios struct {
	EPSOverIris      []float64
	EPSOverHybrid    []float64
	EPSOverIrisInNet []float64
	// PortRatioEPS and PortRatioIris are Fig. 12(c)'s in-network-to-DC
	// port ratios.
	PortRatioEPS  []float64
	PortRatioIris []float64
	// EPS0OverIris is Fig. 12(d): zero-failure EPS over 2-failure Iris.
	EPS0OverIris []float64
	// SROverIris recomputes EPS/Iris with SR-priced DCI transceivers
	// (Fig. 12b).
	SROverIris []float64
	// Overheads is the Appendix A distribution.
	Overheads []float64
}

// ExtractRatios computes every distribution the Fig. 12 panels plot.
func ExtractRatios(rows []SweepRow) Ratios {
	var r Ratios
	sr := cost.Default().WithSRPricedDCI()
	for _, row := range rows {
		r.EPSOverIris = append(r.EPSOverIris, row.EPS.Total()/row.Iris.Total())
		r.EPSOverHybrid = append(r.EPSOverHybrid, row.EPS.Total()/row.Hybrid.Total())
		r.EPSOverIrisInNet = append(r.EPSOverIrisInNet, row.EPS.InNetworkCost()/row.Iris.InNetworkCost())
		r.PortRatioEPS = append(r.PortRatioEPS,
			float64(row.EPS.InNetworkPortCount())/float64(row.EPS.DCPortCount()))
		r.PortRatioIris = append(r.PortRatioIris,
			float64(row.Iris.InNetworkPortCount())/float64(row.Iris.DCPortCount()))
		r.EPS0OverIris = append(r.EPS0OverIris, row.EPSNoFailures.Total()/row.Iris.Total())
		r.Overheads = append(r.Overheads, row.OverheadFrac)

		eps := row.EPS
		eps.Prices = sr
		iris := row.Iris
		iris.Prices = sr
		r.SROverIris = append(r.SROverIris, eps.Total()/iris.Total())
	}
	return r
}

// FormatFig12 renders the four panels' headline statistics plus CDF rows.
func FormatFig12(r Ratios) string {
	var b strings.Builder
	cdfLine := func(name string, xs []float64, marks []float64) {
		fmt.Fprintf(&b, "%-24s", name)
		for _, m := range marks {
			fmt.Fprintf(&b, " P(x≤%.0f)=%.2f", m, stats.CDFAt(xs, m))
		}
		fmt.Fprintf(&b, "  median=%.2f\n", stats.Median(xs))
	}
	fmt.Fprintf(&b, "Fig. 12(a) — cost ratios over %d scenarios\n", len(r.EPSOverIris))
	cdfLine("EPS / Iris", r.EPSOverIris, []float64{1, 5, 10, 15})
	cdfLine("EPS / Hybrid", r.EPSOverHybrid, []float64{1, 5, 10, 15})
	cdfLine("EPS / Iris (in-network)", r.EPSOverIrisInNet, []float64{1, 5, 10, 15})
	fmt.Fprintf(&b, "EPS ≥5x Iris in %.0f%% of scenarios (paper: 80%%)\n\n",
		(1-stats.CDFAt(r.EPSOverIris, 5))*100)

	fmt.Fprintf(&b, "Fig. 12(b) — with DCI transceivers priced as short-reach\n")
	cdfLine("EPS / Iris (SR prices)", r.SROverIris, []float64{1, 2, 4})
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "Fig. 12(c) — in-network ports per DC port\n")
	cdfLine("EPS", r.PortRatioEPS, []float64{1, 5, 10, 20})
	cdfLine("Iris", r.PortRatioIris, []float64{1, 5, 10, 20})
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "Fig. 12(d) — EPS with no failure guarantees vs. Iris surviving %d cuts\n", 2)
	cdfLine("EPS(0) / Iris(2)", r.EPS0OverIris, []float64{1, 2, 4})
	fmt.Fprintf(&b, "EPS(0) ≥2x Iris(2) in %.0f%% of scenarios (paper: all)\n",
		(1-stats.CDFAt(r.EPS0OverIris, 2))*100)
	return b.String()
}

// FormatAppendixA renders the amplifier/cut-through overhead distribution.
func FormatAppendixA(r Ratios) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Appendix A — amplifier + cut-through cost overhead\n")
	fmt.Fprintf(&b, "mean %.1f%%  worst %.1f%% (paper: 3%% mean, 8%% worst)\n",
		stats.Mean(r.Overheads)*100, stats.Max(r.Overheads)*100)
	return b.String()
}

// ToyResult is the §3.4 worked example.
type ToyResult struct {
	EPS, Iris cost.Breakdown
	Ratio     float64
}

// Toy reproduces the §3.4 cost comparison on the Fig. 10 region.
func Toy() (ToyResult, error) {
	r := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range r.Map.DCs() {
		caps[dc] = 10
	}
	pl, err := plan.New(plan.Input{Map: r.Map, Capacity: caps, Lambda: 40})
	if err != nil {
		return ToyResult{}, err
	}
	prices := cost.Default()
	res := ToyResult{EPS: cost.EPS(pl, prices), Iris: cost.Iris(pl, prices)}
	res.Ratio = res.EPS.Total() / res.Iris.Total()
	return res, nil
}

// Format renders the toy example the way §3.4 walks through it.
func (t ToyResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.4 — toy example (Fig. 10, 4 DCs × 160 Tbps, λ=40)\n")
	fmt.Fprintf(&b, "%-12s %-14s %-12s %-10s %s\n", "design", "transceivers", "fiber-pairs", "OSS ports", "annual cost")
	fmt.Fprintf(&b, "%-12s %-14d %-12d %-10d $%.0f\n", "electrical",
		t.EPS.TransceiverCount(), t.EPS.FiberPairs, t.EPS.OSSPorts, t.EPS.Total())
	fmt.Fprintf(&b, "%-12s %-14d %-12d %-10d $%.0f\n", "iris",
		t.Iris.TransceiverCount(), t.Iris.FiberPairs, t.Iris.OSSPorts, t.Iris.Total())
	fmt.Fprintf(&b, "electrical / iris = %.2fx (paper: 2.7x)\n", t.Ratio)
	return b.String()
}
