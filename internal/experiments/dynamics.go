package experiments

import (
	"fmt"
	"strings"

	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/flowsim"
	"iris/internal/optics"
	"iris/internal/traffic"
)

// ---------------------------------------------------------------------------
// Fig. 14: BER over time across reconfigurations.

// Fig14Config parameterises the physical-layer reconfiguration experiment.
type Fig14Config struct {
	Seed       int64
	DurationS  float64
	IntervalS  float64
	RecoveryMS float64 // 50 (one hut) or 70 (two huts)
}

// DefaultFig14 matches the testbed run: minute-spaced reconfigurations.
func DefaultFig14() Fig14Config {
	return Fig14Config{Seed: 1, DurationS: 600, IntervalS: 60, RecoveryMS: optics.ReconfigRecoveryMS}
}

// Fig14Result summarises the BER timeline.
type Fig14Result struct {
	Samples   []optics.BERSample
	MaxBER    float64
	OutageMS  float64
	Reconfigs int
}

// Fig14 runs the experiment on the simulated testbed paths.
func Fig14(cfg Fig14Config) (Fig14Result, error) {
	pathA, pathB := optics.TestbedPaths()
	exp := optics.ReconfigExperiment{
		Seed:       cfg.Seed,
		DurationS:  cfg.DurationS,
		IntervalS:  cfg.IntervalS,
		SampleMS:   10,
		PathA:      pathA,
		PathB:      pathB,
		RecoveryMS: cfg.RecoveryMS,
	}
	samples, err := exp.Run()
	if err != nil {
		return Fig14Result{}, err
	}
	return Fig14Result{
		Samples:   samples,
		MaxBER:    optics.MaxBER(samples),
		OutageMS:  optics.OutageMS(samples),
		Reconfigs: int(cfg.DurationS/cfg.IntervalS) - 1 + 1, // switches at every interval boundary after t=0
	}, nil
}

// Format renders the Fig. 14 summary and a downsampled timeline.
func (r Fig14Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — pre-FEC BER across reconfigurations\n")
	fmt.Fprintf(&b, "max BER %.2e (FEC threshold %.0e)\n", r.MaxBER, optics.SoftFECBERThreshold)
	fmt.Fprintf(&b, "total signal loss %.0f ms over %d switches (≈%.0f ms each; paper: 50-70 ms)\n",
		r.OutageMS, r.Reconfigs, r.OutageMS/float64(max(r.Reconfigs, 1)))
	// One line per 30 s of timeline.
	step := len(r.Samples) / 20
	if step == 0 {
		step = 1
	}
	fmt.Fprintf(&b, "%-10s %-12s %s\n", "t (s)", "BER", "signal")
	for i := 0; i < len(r.Samples); i += step {
		s := r.Samples[i]
		if s.Signal {
			fmt.Fprintf(&b, "%-10.1f %-12.2e up\n", s.TimeS, s.BER)
		} else {
			fmt.Fprintf(&b, "%-10.1f %-12s DOWN (recovering)\n", s.TimeS, "-")
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Fig. 17: FCT slowdown vs. reconfiguration interval.

// Fig17Config parameterises the slowdown sweep.
type Fig17Config struct {
	Seed      int64
	Utils     []float64 // {0.4, 0.7} in the paper's figure
	Bounds    []float64 // 0.5 (bounded) and 0 (unbounded)
	Intervals []float64 // seconds between traffic changes
	DurationS float64
	Dist      traffic.SizeDist
}

// DefaultFig17 matches the paper's figure axes at a tractable duration.
func DefaultFig17() Fig17Config {
	return Fig17Config{
		Seed:      42,
		Utils:     []float64{0.4, 0.7},
		Bounds:    []float64{0.5, 0},
		Intervals: []float64{1, 5, 10, 20, 30},
		DurationS: 60,
		Dist:      traffic.WebSearch(),
	}
}

// Fig17Point is one operating point's slowdown.
type Fig17Point struct {
	Util      float64
	Bound     float64 // 0 = unbounded
	IntervalS float64
	All       float64
	Short     float64
	Reconfigs int
}

// Fig17 runs the sweep.
func Fig17(cfg Fig17Config) ([]Fig17Point, error) {
	var points []Fig17Point
	for _, util := range cfg.Utils {
		for _, bound := range cfg.Bounds {
			for _, interval := range cfg.Intervals {
				e := flowsim.DefaultExperiment(cfg.Seed, util, interval, bound, cfg.Dist)
				e.DurationS = cfg.DurationS
				rep, err := e.Run()
				if err != nil {
					return nil, fmt.Errorf("util=%v bound=%v interval=%v: %w", util, bound, interval, err)
				}
				points = append(points, Fig17Point{
					Util: util, Bound: bound, IntervalS: interval,
					All: rep.All, Short: rep.Short, Reconfigs: rep.Reconfigs,
				})
			}
		}
	}
	return points, nil
}

// FormatFig17 renders the four panels.
func FormatFig17(points []Fig17Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 17 — 99th-percentile FCT slowdown (Iris / EPS)\n")
	fmt.Fprintf(&b, "%-6s %-10s %-10s %-10s %-10s %s\n",
		"util", "changes", "interval", "all", "short", "reconfigs")
	for _, p := range points {
		changes := fmt.Sprintf("%.0f%%", p.Bound*100)
		if p.Bound <= 0 {
			changes = "unbounded"
		}
		fmt.Fprintf(&b, "%-6.0f%% %-10s %-9.0fs %-10.3f %-10.3f %d\n",
			p.Util*100, changes, p.IntervalS, p.All, p.Short, p.Reconfigs)
	}
	fmt.Fprintf(&b, "(paper: ≤2%% slowdown for intervals ≥10 s except unbounded changes)\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 17 on a planned region: the same reconfiguration-impact study with
// pipes, capacities and dips taken from an actual deployment and its
// circuit allocator, rather than the abstract pipe model.

// Fig17RegionConfig parameterises the region-grounded dynamics study.
type Fig17RegionConfig struct {
	Seed      int64
	MapSeed   int64
	NDCs      int
	F         int // fiber-pairs per DC
	Lambda    int
	Utils     []float64
	Intervals []float64
	Bound     float64
	DurationS float64
	Dist      traffic.SizeDist
}

// DefaultFig17Region returns the region-grounded configuration.
func DefaultFig17Region() Fig17RegionConfig {
	return Fig17RegionConfig{
		Seed: 42, MapSeed: 1, NDCs: 8, F: 16, Lambda: 40,
		Utils:     []float64{0.4, 0.7},
		Intervals: []float64{1, 5, 10, 30},
		Bound:     0.5,
		DurationS: 40,
		Dist:      traffic.WebSearch(),
	}
}

// Fig17Region runs the study on one planned deployment.
func Fig17Region(cfg Fig17RegionConfig) ([]Fig17Point, error) {
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = cfg.MapSeed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = cfg.MapSeed, cfg.NDCs
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		return nil, err
	}
	caps := make(map[int]int, len(dcs))
	for _, dc := range dcs {
		caps[dc] = cfg.F
	}
	dep, err := core.Plan(core.Region{Map: m, Capacity: caps, Lambda: cfg.Lambda}, core.Options{})
	if err != nil {
		return nil, err
	}
	var points []Fig17Point
	for _, util := range cfg.Utils {
		for _, interval := range cfg.Intervals {
			e := flowsim.DefaultRegionExperiment(dep, cfg.Seed, util, interval, cfg.Bound, cfg.Dist)
			e.DurationS = cfg.DurationS
			rep, err := e.Run()
			if err != nil {
				return nil, fmt.Errorf("util=%v interval=%v: %w", util, interval, err)
			}
			points = append(points, Fig17Point{
				Util: util, Bound: cfg.Bound, IntervalS: interval,
				All: rep.All, Short: rep.Short, Reconfigs: rep.Reconfigs,
			})
		}
	}
	return points, nil
}

// FormatFig17Region renders the region-grounded results.
func FormatFig17Region(points []Fig17Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 17 (region-grounded) — slowdown on a planned 8-DC deployment\n")
	fmt.Fprintf(&b, "%-6s %-10s %-10s %-10s %s\n", "util", "interval", "all", "short", "reconfigs")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6.0f%% %-9.0fs %-10.3f %-10.3f %d\n",
			p.Util*100, p.IntervalS, p.All, p.Short, p.Reconfigs)
	}
	fmt.Fprintf(&b, "(circuit capacities and dips come from the deployment's allocator)\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig. 18: slowdown across workloads.

// Fig18Config parameterises the workload comparison.
type Fig18Config struct {
	Seed      int64
	Util      float64
	Bound     float64
	IntervalS float64
	DurationS float64
}

// DefaultFig18 matches the paper: 40% utilization, 50% changes, 5 s
// reconfiguration interval.
func DefaultFig18() Fig18Config {
	return Fig18Config{Seed: 42, Util: 0.4, Bound: 0.5, IntervalS: 5, DurationS: 60}
}

// Fig18Point is one workload's slowdown.
type Fig18Point struct {
	Workload string
	All      float64
	Short    float64
}

// Fig18 runs all four workloads.
func Fig18(cfg Fig18Config) ([]Fig18Point, error) {
	var points []Fig18Point
	for _, dist := range traffic.Workloads() {
		e := flowsim.DefaultExperiment(cfg.Seed, cfg.Util, cfg.IntervalS, cfg.Bound, dist)
		e.DurationS = cfg.DurationS
		rep, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dist.Name(), err)
		}
		points = append(points, Fig18Point{Workload: dist.Name(), All: rep.All, Short: rep.Short})
	}
	return points, nil
}

// FormatFig18 renders the bar values.
func FormatFig18(points []Fig18Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 18 — 99th-percentile FCT slowdown by workload (40%% util, 50%% changes, 5 s)\n")
	fmt.Fprintf(&b, "%-10s %-10s %s\n", "workload", "all", "short")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %-10.3f %.3f\n", p.Workload, p.All, p.Short)
	}
	fmt.Fprintf(&b, "(paper: <2%% slowdown across all workloads)\n")
	return b.String()
}
