package experiments

import (
	"fmt"
	"math"
	"strings"

	"iris/internal/chaos"
	"iris/internal/core"
	"iris/internal/fibermap"
)

// ---------------------------------------------------------------------------
// Survivability audit: replaying failure scenarios against a finished plan.
//
// The paper plans for up to MaxFailures simultaneous duct cuts (§4.1); this
// experiment closes the loop by independently re-routing every DC pair under
// each failure scenario and checking the provisioned fiber still admits the
// worst-case hose load. The exhaustive sweep up to the plan's tolerance must
// come back 100% admissible; deeper cuts and correlated site/geo events show
// where the guarantee ends.

// SurvivabilityConfig parameterises the audit.
type SurvivabilityConfig struct {
	// Toy selects the paper's Fig. 10 example region; otherwise a synthetic
	// region is generated from Seed with DCs data centers.
	Toy  bool
	Seed int64
	DCs  int
	// Capacity is each DC's hose capacity in fiber-pairs; Lambda the
	// wavelengths per fiber.
	Capacity int
	Lambda   int
	// MaxFailures is the plan's duct-cut tolerance (the paper's default 2).
	MaxFailures int
	// MaxCuts is the audit depth: every cut set up to this size is
	// enumerated. Auditing one past the tolerance shows the cliff.
	MaxCuts int
	// GeoEvents correlated geo-radius scenarios of GeoRadiusKM are drawn
	// on top of the exhaustive sweep (0 disables them).
	GeoEvents   int
	GeoRadiusKM float64
	// Parallelism bounds the audit workers (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
}

// DefaultSurvivability audits the toy region's 2-failure plan one cut past
// its tolerance, plus twenty correlated events.
func DefaultSurvivability() SurvivabilityConfig {
	return SurvivabilityConfig{
		Toy:         true,
		Seed:        1,
		DCs:         4,
		Capacity:    10,
		Lambda:      40,
		MaxFailures: 2,
		MaxCuts:     3,
		GeoEvents:   20,
		GeoRadiusKM: 6,
	}
}

// ClassPoint aggregates the audits of one scenario class (hut loss, DC
// loss, amplifier failure, geo event).
type ClassPoint struct {
	Kind       chaos.Kind `json:"kind"`
	Scenarios  int        `json:"scenarios"`
	Admissible int        `json:"admissible"`
	Surviving  int        `json:"surviving"`
}

// SurvivabilityResult is the experiment outcome.
type SurvivabilityResult struct {
	Region      string `json:"region"`
	MaxFailures int    `json:"max_failures"`
	// Curve is one point per cut count of the exhaustive duct-cut sweep.
	Curve []chaos.CurvePoint `json:"curve"`
	// WorstPairFibers is, per cut count, the minimum residual worst-pair
	// throughput seen across that count's scenarios.
	WorstPairFibers []float64 `json:"worst_pair_fibers"`
	// Classes aggregates the site-correlated scenario classes.
	Classes []ClassPoint `json:"classes"`
	// Cuts holds every duct-cut audit, for CSV/JSON consumers.
	Cuts []chaos.Result `json:"-"`
}

// Survivability plans the configured region and audits it.
func Survivability(cfg SurvivabilityConfig) (*SurvivabilityResult, error) {
	var (
		m    *fibermap.Map
		name string
	)
	if cfg.Toy {
		m = fibermap.Toy().Map
		name = "toy (Fig. 10)"
	} else {
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = cfg.Seed
		m = fibermap.Generate(gcfg)
		pcfg := fibermap.DefaultPlace()
		pcfg.Seed, pcfg.N = cfg.Seed, cfg.DCs
		sites, err := fibermap.PlaceDCs(m, pcfg)
		if err != nil {
			return nil, fmt.Errorf("place DCs: %w", err)
		}
		name = fmt.Sprintf("synthetic seed=%d dcs=%d", cfg.Seed, len(sites))
	}
	caps := make(map[int]int)
	for _, dc := range m.DCs() {
		caps[dc] = cfg.Capacity
	}
	dep, err := core.Plan(
		core.Region{Map: m, Capacity: caps, Lambda: cfg.Lambda},
		core.Options{MaxFailures: cfg.MaxFailures},
	)
	if err != nil {
		return nil, err
	}

	a := chaos.NewAuditor(dep.Plan)
	res := &SurvivabilityResult{Region: name, MaxFailures: cfg.MaxFailures}
	res.Cuts = a.Run(chaos.EnumerateCuts(m, cfg.MaxCuts), cfg.Parallelism)
	res.Curve = chaos.Curve(res.Cuts)

	worst := make(map[int]float64)
	for _, r := range res.Cuts {
		w, ok := worst[r.Cuts]
		if !ok {
			w = math.Inf(1)
		}
		worst[r.Cuts] = math.Min(w, r.WorstPairFibers)
	}
	for _, p := range res.Curve {
		res.WorstPairFibers = append(res.WorstPairFibers, worst[p.Cuts])
	}

	classes := [][]chaos.Scenario{
		chaos.HutLossScenarios(m),
		chaos.DCLossScenarios(m),
		chaos.AmpFailureScenarios(dep.Plan),
	}
	if cfg.GeoEvents > 0 {
		classes = append(classes, chaos.GeoEvents(cfg.Seed, m, cfg.GeoRadiusKM, cfg.GeoEvents))
	}
	for _, scs := range classes {
		if len(scs) == 0 {
			continue
		}
		cp := ClassPoint{Kind: scs[0].Kind}
		for _, r := range a.Run(scs, cfg.Parallelism) {
			cp.Scenarios++
			if r.Admissible {
				cp.Admissible++
			}
			if r.Survives {
				cp.Surviving++
			}
		}
		res.Classes = append(res.Classes, cp)
	}
	return res, nil
}

// Format renders the survivability curve and class table.
func (r *SurvivabilityResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Survivability audit: %s region, MaxFailures=%d plan\n", r.Region, r.MaxFailures)
	fmt.Fprintf(&b, "%-5s %-10s %-11s %-10s %s\n", "cuts", "scenarios", "admissible", "surviving", "worst-pair fibers")
	for i, p := range r.Curve {
		marker := ""
		if p.Cuts == r.MaxFailures+1 {
			marker = "  <- past tolerance"
		}
		fmt.Fprintf(&b, "%-5d %-10d %9.1f%% %9.1f%% %8.1f%s\n",
			p.Cuts, p.Scenarios, 100*p.FracAdmissible(), 100*p.FracSurviving(),
			r.WorstPairFibers[i], marker)
	}
	if len(r.Classes) > 0 {
		fmt.Fprintf(&b, "correlated classes:\n")
		fmt.Fprintf(&b, "%-5s %-10s %-11s %s\n", "kind", "scenarios", "admissible", "surviving")
		for _, c := range r.Classes {
			adm, surv := 0.0, 0.0
			if c.Scenarios > 0 {
				adm = 100 * float64(c.Admissible) / float64(c.Scenarios)
				surv = 100 * float64(c.Surviving) / float64(c.Scenarios)
			}
			fmt.Fprintf(&b, "%-5s %-10d %9.1f%% %9.1f%%\n", c.Kind, c.Scenarios, adm, surv)
		}
	}
	return b.String()
}
