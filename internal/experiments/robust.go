package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/flowsim"
	"iris/internal/robust"
	"iris/internal/traffic"
)

// The robust ablation is the METTEOR question asked of this region
// design: how much reconfiguration churn does a single envelope
// allocation buy off, and what does that cost in overprovisioned
// capacity? Each cell replays one seeded §6.3 change process through two
// control policies over the SAME matrix sequence — per-shift incremental
// deltas (the daemon's default) versus a robust envelope that only
// re-plans on escape — and charges every committed change with the
// flow-level impact monitor (p99 FCT slowdown, stranded bytes).

// RobustAblationConfig drives RobustAblation.
type RobustAblationConfig struct {
	Seed int64
	// Steps is the number of traffic shifts replayed per cell.
	Steps int
	// Windows are the envelope window sizes swept (matrices per solve).
	Windows []int
	// Bounds are the change-process volatilities swept (per-step drift
	// bound of §6.3).
	Bounds []float64
	// Util is the per-DC utilization of the base matrix.
	Util float64
	// Headroom and Budget mirror robust.Config (zero selects defaults).
	Headroom float64
	Budget   int
	// DrainS is the charged drain duration per committed change.
	DrainS float64
}

// DefaultRobustAblation is a toy-region grid small enough for CI: three
// window sizes against calm and volatile drift.
func DefaultRobustAblation() RobustAblationConfig {
	return RobustAblationConfig{
		Seed: 1, Steps: 30,
		Windows: []int{2, 4, 8},
		Bounds:  []float64{0.2, 0.6},
		Util:    0.5, Headroom: 1.15, Budget: 8,
		DrainS: 0.070,
	}
}

// RobustAblationRow is one (window, bound) cell's outcome.
type RobustAblationRow struct {
	Window int     `json:"window"`
	Bound  float64 `json:"bound"`
	// Reconfiguration counts over the identical Steps-shift sequence.
	DeltaReconfigs  int `json:"delta_reconfigs"`
	RobustReconfigs int `json:"robust_reconfigs"`
	// Absorbed is how many shifts the envelope contained outright.
	Absorbed int `json:"absorbed"`
	// Worst p99 FCT slowdown and total stranded bytes across each mode's
	// committed changes.
	DeltaP99       float64 `json:"delta_p99"`
	RobustP99      float64 `json:"robust_p99"`
	DeltaStranded  float64 `json:"delta_stranded_bytes"`
	RobustStranded float64 `json:"robust_stranded_bytes"`
	// Overprovision is the mean provisioned-over-mean-demand ratio of the
	// robust envelopes committed in this cell (the METTEOR capacity tax);
	// AllAdmissible reports whether every committed envelope verified
	// against its full matrix set.
	Overprovision float64 `json:"overprovision"`
	AllAdmissible bool    `json:"all_admissible"`
}

// RobustAblation replays each cell's seeded change process through both
// policies and reports the churn/overprovisioning trade.
func RobustAblation(cfg RobustAblationConfig) ([]RobustAblationRow, error) {
	if cfg.Steps <= 1 || len(cfg.Windows) == 0 || len(cfg.Bounds) == 0 {
		return nil, fmt.Errorf("experiments: invalid robust ablation %+v", cfg)
	}
	if cfg.DrainS <= 0 {
		cfg.DrainS = 0.070
	}
	r := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range r.Map.DCs() {
		caps[dc] = 10
	}
	dep, err := core.Plan(core.Region{Map: r.Map, Capacity: caps, Lambda: 40}, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	capsW := make(map[int]float64)
	for dc, c := range dep.Region.Capacity {
		capsW[dc] = float64(c * dep.Region.Lambda)
	}

	var rows []RobustAblationRow
	for _, bound := range cfg.Bounds {
		// One matrix sequence per bound, shared verbatim by every window
		// size and both modes: the comparison is of policies, not draws.
		ms, err := matrixSequence(dep, capsW, cfg, bound)
		if err != nil {
			return nil, err
		}
		delta, err := replayDelta(dep, ms, cfg)
		if err != nil {
			return nil, fmt.Errorf("bound %v delta mode: %w", bound, err)
		}
		for _, w := range cfg.Windows {
			rob, err := replayRobust(dep, ms, w, cfg)
			if err != nil {
				return nil, fmt.Errorf("bound %v window %d robust mode: %w", bound, w, err)
			}
			rows = append(rows, RobustAblationRow{
				Window: w, Bound: bound,
				DeltaReconfigs: delta.reconfigs, RobustReconfigs: rob.reconfigs,
				Absorbed: rob.absorbed,
				DeltaP99: delta.p99, RobustP99: rob.p99,
				DeltaStranded: delta.stranded, RobustStranded: rob.stranded,
				Overprovision: rob.overprovision, AllAdmissible: rob.allAdmissible,
			})
		}
	}
	return rows, nil
}

// matrixSequence rolls the cell's full shift sequence up front.
func matrixSequence(dep *core.Deployment, capsW map[int]float64, cfg RobustAblationConfig, bound float64) ([]*traffic.Matrix, error) {
	dcs := dep.Region.Map.DCs()
	cp := traffic.ChangeProcess{Bound: bound, Caps: capsW, Util: cfg.Util}
	base := traffic.HeavyTailed(rand.New(rand.NewSource(cfg.Seed)), dcs, capsW, cfg.Util)
	ev := traffic.NewEvolver(cfg.Seed+1, base, cp)
	ms := make([]*traffic.Matrix, 0, cfg.Steps)
	for i := 0; i < cfg.Steps; i++ {
		m, ok := ev.Next()
		if !ok {
			return nil, fmt.Errorf("evolver exhausted at step %d", i)
		}
		ms = append(ms, m)
	}
	return ms, nil
}

type modeOutcome struct {
	reconfigs     int
	absorbed      int
	p99           float64
	stranded      float64
	overprovision float64
	allAdmissible bool
}

// charge runs the flow-impact simulation for one committed change and
// folds it into the outcome.
func charge(out *modeOutcome, mon *flowsim.Monitor, id uint64, dep *core.Deployment, prev, next core.Allocation, drainS float64) error {
	imp, err := mon.ObserveReconfig(id, next, dep.Region.Lambda, core.Diff(prev, next), drainS)
	if err != nil {
		return err
	}
	if imp.P99 > out.p99 {
		out.p99 = imp.P99
	}
	out.stranded += imp.BytesStranded
	return nil
}

// replayDelta is the daemon's default policy: incremental delta per
// shift, committing whenever the allocation changes.
func replayDelta(dep *core.Deployment, ms []*traffic.Matrix, cfg RobustAblationConfig) (modeOutcome, error) {
	var out modeOutcome
	mon, err := flowsim.NewMonitor(flowsim.MonitorConfig{Seed: cfg.Seed})
	if err != nil {
		return out, err
	}
	st, err := dep.AllocateState(ms[0])
	if err != nil {
		return out, err
	}
	prev := st.Snapshot()
	out.reconfigs = 1 // the initial convergence
	last := ms[0]
	for i, tm := range ms[1:] {
		if _, _, err := dep.AllocateDelta(st, traffic.DiffMatrices(last, tm)); err != nil {
			return out, fmt.Errorf("step %d: %w", i+1, err)
		}
		last = tm
		next := st.Snapshot()
		if next.Equal(prev) {
			continue
		}
		out.reconfigs++
		if err := charge(&out, mon, uint64(out.reconfigs), dep, prev, next, cfg.DrainS); err != nil {
			return out, err
		}
		prev = next
	}
	out.allAdmissible = true
	return out, nil
}

// replayRobust is the METTEOR policy: solve an envelope over the recent
// window, skip shifts it contains, re-plan on escape.
func replayRobust(dep *core.Deployment, ms []*traffic.Matrix, window int, cfg RobustAblationConfig) (modeOutcome, error) {
	var out modeOutcome
	mon, err := flowsim.NewMonitor(flowsim.MonitorConfig{Seed: cfg.Seed})
	if err != nil {
		return out, err
	}
	win := traffic.NewWindow(window)
	var (
		res     *robust.Result
		prev    core.Allocation
		havePre bool
		opSum   float64
		commits int
	)
	out.allAdmissible = true
	for i, tm := range ms {
		win.Push(tm)
		if res != nil && res.Envelope.Contains(tm) {
			out.absorbed++
			continue
		}
		sol, err := robust.Solve(dep, win.Matrices(), robust.Config{
			Headroom: cfg.Headroom, Budget: cfg.Budget,
		})
		if err != nil {
			return out, fmt.Errorf("step %d: %w", i, err)
		}
		res = sol
		opSum += sol.Overprovision
		commits++
		if !sol.AllAdmissible {
			out.allAdmissible = false
		}
		if havePre && sol.Alloc.Equal(prev) {
			continue // fresher envelope, same circuits: nothing moves
		}
		out.reconfigs++
		if havePre {
			if err := charge(&out, mon, uint64(out.reconfigs), dep, prev, sol.Alloc, cfg.DrainS); err != nil {
				return out, err
			}
		}
		prev, havePre = sol.Alloc, true
	}
	if commits > 0 {
		out.overprovision = opSum / float64(commits)
	}
	return out, nil
}

// FormatRobustAblation renders the ablation grid.
func FormatRobustAblation(rows []RobustAblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robust ablation — envelope (METTEOR) vs per-shift deltas on identical seeded feeds\n")
	fmt.Fprintf(&b, "%-7s %-6s %-9s %-9s %-9s %-10s %-10s %-9s %s\n",
		"window", "bound", "Δreconf", "Rreconf", "absorbed", "Δp99", "Rp99", "overprov", "admissible")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7d %-6.2f %-9d %-9d %-9d %-10.4f %-10.4f %-9.2f %v\n",
			r.Window, r.Bound, r.DeltaReconfigs, r.RobustReconfigs, r.Absorbed,
			r.DeltaP99, r.RobustP99, r.Overprovision, r.AllAdmissible)
	}
	fmt.Fprintf(&b, "robust re-plans only on envelope escape: fewer touches, bounded flow impact,\n")
	fmt.Fprintf(&b, "paid for in the overprovision column (provisioned over mean demand)\n")
	return b.String()
}
