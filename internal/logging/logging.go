// Package logging builds the structured slog loggers shared by the Iris
// binaries: a text or JSON handler at a flag-selected level, tagged with
// the owning component. It exists so irisd, irisctl, irisplan and
// irisbench parse -log-level/-log-json identically.
package logging

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// New returns a logger writing to w at the named level ("debug", "info",
// "warn", "error"; case-insensitive), as JSON when jsonFormat is set and
// as logfmt-style text otherwise. Every record carries component.
func New(w io.Writer, level string, jsonFormat bool, component string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("logging: unknown level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h).With("component", component), nil
}

// Silent returns a logger that discards everything — the default for
// library consumers that pass no logger.
func Silent() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
