package logging

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLevelsAndComponent(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "warn", false, "testd")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %q", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "component=testd") {
		t.Errorf("warn line missing message or component: %q", out)
	}
}

func TestJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "", true, "irisd") // "" defaults to info
	if err != nil {
		t.Fatal(err)
	}
	log.Info("converged", "reconfig_id", 7)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "converged" || rec["component"] != "irisd" || rec["reconfig_id"] != float64(7) {
		t.Errorf("unexpected record: %v", rec)
	}
}

func TestBadLevel(t *testing.T) {
	if _, err := New(&bytes.Buffer{}, "loud", false, "x"); err == nil {
		t.Fatal("bad level accepted")
	}
	for _, lv := range []string{"debug", "Info", "WARN", "warning", "error"} {
		if _, err := New(&bytes.Buffer{}, lv, false, "x"); err != nil {
			t.Errorf("level %q rejected: %v", lv, err)
		}
	}
}

func TestSilentDiscards(t *testing.T) {
	Silent().Error("nothing should happen") // must not panic or write
}
