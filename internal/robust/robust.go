// Package robust implements METTEOR-style robust topology engineering:
// instead of re-running the allocator on every traffic shift, it solves
// ONE allocation that is admissible for a whole *set* of traffic matrices
// — a recent window of the live feed, change-process forecasts, or any
// explicit collection — trading a bounded amount of capacity
// overprovisioning for reconfiguration churn.
//
// The construction is the per-matrix hose envelope: the element-wise
// maximum of the set's pair demands, inflated by a configurable headroom
// factor, allocated through the existing core planner. Because circuits
// are dedicated per DC pair, an allocation provisioned for the envelope
// covers every matrix the envelope dominates; Solve then verifies each
// matrix independently — per-pair coverage against the provisioned
// wavelengths and per-duct worst-case hose load (hose.WorstCaseLoad)
// against the leased fiber — and iterates, tightening the headroom toward
// 1 and finally clamping the envelope into the hose polytope, until all k
// matrices pass or the iteration budget is exhausted.
//
// At high utilisation no single allocation can dominate a volatile set
// (the element-wise max may itself exceed the hose caps); Solve then
// returns the best allocatable envelope with AllAdmissible=false and
// per-matrix Verdicts, so callers degrade explicitly instead of flapping.
package robust

import (
	"fmt"
	"math"
	"sort"

	"iris/internal/core"
	"iris/internal/hose"
	"iris/internal/traffic"
)

// Config tunes the envelope iteration. The zero value of each field
// selects the default; construct with DefaultConfig and mutate.
type Config struct {
	// Headroom inflates the element-wise max envelope before allocation
	// (default 1.15). Must be ≥ 1: headroom below the max could not cover
	// the very matrices the envelope was built from.
	Headroom float64
	// Shrink is the per-iteration tightening factor: on an infeasible
	// envelope the excess headroom h-1 is multiplied by Shrink (default
	// 0.5), walking h toward 1.
	Shrink float64
	// Budget bounds solve-verify iterations (default 8).
	Budget int
}

// DefaultConfig returns the robust planner's defaults: 15% headroom,
// halving tightening, 8 iterations.
func DefaultConfig() Config {
	return Config{Headroom: 1.15, Shrink: 0.5, Budget: 8}
}

func (c Config) withDefaults() (Config, error) {
	d := DefaultConfig()
	if c.Headroom == 0 {
		c.Headroom = d.Headroom
	}
	if c.Shrink == 0 {
		c.Shrink = d.Shrink
	}
	if c.Budget == 0 {
		c.Budget = d.Budget
	}
	if c.Headroom < 1 {
		return c, fmt.Errorf("robust: headroom %.3f < 1", c.Headroom)
	}
	if c.Shrink <= 0 || c.Shrink >= 1 {
		return c, fmt.Errorf("robust: shrink %.3f outside (0,1)", c.Shrink)
	}
	if c.Budget < 1 {
		return c, fmt.Errorf("robust: budget %d < 1", c.Budget)
	}
	return c, nil
}

// Envelope is the demand the committed allocation was provisioned for:
// the inflated (and possibly hose-clamped) element-wise maximum over the
// matrix set. A live matrix inside the envelope needs no reconfiguration.
type Envelope struct {
	// Headroom is the inflation factor the envelope was allocated at.
	Headroom float64
	// Matrices is the size of the set the envelope was built from.
	Matrices int
	// Clamped records that the inflated max exceeded the hose caps and
	// was scaled back into the polytope before allocation.
	Clamped bool
	// Demand is the envelope's per-pair demand in wavelengths (canonical
	// pairs, zero entries omitted) — exactly the matrix that was
	// allocated.
	Demand map[hose.Pair]float64
	// Total is the envelope's total demand in wavelengths.
	Total float64
}

// Escape is one pair whose live demand left the envelope.
type Escape struct {
	Pair   hose.Pair `json:"pair"`
	Demand float64   `json:"demand"`
	Limit  float64   `json:"limit"`
}

// containsEps absorbs float noise from the change process's clamping;
// an escape below a millionth of a wavelength is not worth a drain.
const containsEps = 1e-6

// Contains reports whether every pair demand of m fits the envelope — the
// daemon's skip condition.
func (e *Envelope) Contains(m *traffic.Matrix) bool {
	for p, dm := range m.Demand {
		if dm > e.Demand[p.Canonical()]+containsEps {
			return false
		}
	}
	return true
}

// Escapes lists the pairs of m outside the envelope, worst excess first.
func (e *Envelope) Escapes(m *traffic.Matrix) []Escape {
	var out []Escape
	for p, dm := range m.Demand {
		if limit := e.Demand[p.Canonical()]; dm > limit+containsEps {
			out = append(out, Escape{Pair: p.Canonical(), Demand: dm, Limit: limit})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Demand-out[i].Limit, out[j].Demand-out[j].Limit
		if di != dj {
			return di > dj
		}
		return lessPair(out[i].Pair, out[j].Pair)
	})
	return out
}

// Utilization is the worst per-pair ratio of m's demand to the envelope
// (1 at the boundary, >1 once escaped, 0 for an empty matrix). A pair
// with demand but no envelope capacity yields +Inf.
func (e *Envelope) Utilization(m *traffic.Matrix) float64 {
	worst := 0.0
	for p, dm := range m.Demand {
		if dm <= 0 {
			continue
		}
		limit := e.Demand[p.Canonical()]
		if limit <= 0 {
			return math.Inf(1)
		}
		if r := dm / limit; r > worst {
			worst = r
		}
	}
	return worst
}

// MaxEnvelope returns the element-wise maximum of the matrices' pair
// demands (canonical pairs) — the raw, uninflated envelope.
func MaxEnvelope(ms []*traffic.Matrix) map[hose.Pair]float64 {
	raw := make(map[hose.Pair]float64)
	for _, m := range ms {
		for p, dm := range m.Demand {
			if c := p.Canonical(); dm > raw[c] {
				raw[c] = dm
			}
		}
	}
	return raw
}

// Overload is one duct whose leased fiber cannot carry a matrix's
// worst-case hose load (mirrors the chaos auditor's capacity check).
type Overload struct {
	Duct int `json:"duct"`
	// Need is the fiber-pairs the matrix's hose worst case requires.
	Need int `json:"need"`
	// Have is the fiber-pairs the plan leased there.
	Have int `json:"have"`
}

// Verdict is one matrix's admissibility under a fixed allocation.
type Verdict struct {
	// Index is the matrix's position in the solved set.
	Index int `json:"index"`
	// Admissible: every pair's demand fits its provisioned wavelengths
	// and every duct's worst-case hose load fits the leased fiber.
	Admissible bool `json:"admissible"`
	// Uncovered lists pairs whose demand exceeds the provisioned
	// wavelengths (the dominance check the envelope construction makes
	// automatic unless clamping cut below the matrix).
	Uncovered []hose.Pair `json:"uncovered,omitempty"`
	// Overloads are ducts failing the hose.WorstCaseLoad capacity check;
	// ResidualOverloads are ducts crossed by more pairs than residual
	// fibers provisioned.
	Overloads         []Overload `json:"overloads,omitempty"`
	ResidualOverloads []Overload `json:"residual_overloads,omitempty"`
}

// Result is one robust solve: the envelope, the allocation provisioned
// for it, and the per-matrix admissibility evidence.
type Result struct {
	Envelope *Envelope
	// State is the allocator's books for the envelope; Alloc is the
	// immutable committed snapshot of the same allocation.
	State *core.AllocState
	Alloc core.Allocation
	// Headroom is the factor the final iteration allocated at;
	// Iterations counts solve-verify rounds consumed.
	Headroom   float64
	Iterations int
	// Verdicts holds one admissibility verdict per input matrix;
	// AllAdmissible is their conjunction.
	Verdicts      []Verdict
	AllAdmissible bool
	// ProvisionedWavelengths totals the allocation's capacity
	// (fibers·λ + residual summed over pairs); Overprovision is that
	// capacity over the matrices' mean total demand — the METTEOR cost
	// of robustness.
	ProvisionedWavelengths float64
	Overprovision          float64
}

// Solve computes one allocation admissible for all matrices in ms: build
// the headroom-inflated element-wise max envelope, allocate it through
// the core planner, verify every matrix, and iterate — tightening the
// headroom toward 1 while the envelope exceeds the region's hose caps,
// then clamping it into the polytope — until all matrices pass or the
// budget is exhausted. When domination is infeasible at the region's
// utilisation the best allocatable envelope is returned with
// AllAdmissible=false; the error path is reserved for envelopes the
// planner rejects outright even clamped.
func Solve(dep *core.Deployment, ms []*traffic.Matrix, cfg Config) (*Result, error) {
	if dep == nil {
		return nil, fmt.Errorf("robust: nil deployment")
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("robust: empty matrix set")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	raw := MaxEnvelope(ms)
	dcs := dep.Region.Map.DCs()
	capsW := make(map[int]float64, len(dcs))
	for _, dc := range dcs {
		capsW[dc] = float64(dep.Region.Capacity[dc] * dep.Region.Lambda)
	}
	meanTotal := 0.0
	for _, m := range ms {
		meanTotal += m.Total()
	}
	meanTotal /= float64(len(ms))

	// Hose feasibility is linear in the headroom (aggregate·h ≤ cap per
	// DC), so the largest allocatable inflation is known up front: start
	// at min(Headroom, hFeas) instead of burning budget shrinking toward
	// it, and when even the raw max exceeds some hose cap (hFeas < 1) no
	// dominating envelope exists — clamp into the polytope from the start
	// and let the verdicts report what the clamp cut.
	hFeas := math.Inf(1)
	for dc, agg := range pairAggregates(raw) {
		if agg > 0 && capsW[dc] > 0 {
			if f := capsW[dc] / agg; f < hFeas {
				hFeas = f
			}
		}
	}
	h := cfg.Headroom
	clamped := false
	if hFeas < 1 {
		clamped = true
	} else if h > hFeas {
		h = hFeas
	}
	// tighten walks the remaining knobs: shrink the headroom toward 1,
	// then clamp the envelope into the hose polytope. False means both
	// are spent.
	tighten := func() bool {
		if h > 1+1e-9 {
			h = 1 + (h-1)*cfg.Shrink
			if h <= 1+1e-6 {
				h = 1
			}
			return true
		}
		if !clamped {
			clamped = true
			return true
		}
		return false
	}

	var best *Result
	var lastErr error
	for iter := 1; iter <= cfg.Budget; iter++ {
		em := traffic.NewMatrix(dcs)
		for p, dm := range raw {
			em.Set(p, dm*h)
		}
		if clamped {
			em.ClampToHose(capsW)
		}
		st, err := dep.AllocateState(em)
		if err != nil {
			lastErr = err
			if tighten() {
				continue
			}
			return nil, fmt.Errorf("robust: envelope unallocatable even clamped at headroom %.3f: %w", h, err)
		}
		alloc := st.Snapshot()
		res := &Result{
			Envelope:   newEnvelope(em, h, len(ms), clamped),
			State:      st,
			Alloc:      alloc,
			Headroom:   h,
			Iterations: iter,
			Verdicts:   Verify(dep, alloc, ms),
		}
		res.AllAdmissible = true
		for _, v := range res.Verdicts {
			res.AllAdmissible = res.AllAdmissible && v.Admissible
		}
		res.ProvisionedWavelengths = Provisioned(alloc, dep.Region.Lambda)
		if meanTotal > 0 {
			res.Overprovision = res.ProvisionedWavelengths / meanTotal
		}
		if res.AllAdmissible {
			return res, nil
		}
		best = res
		// A failed verdict means the clamp (or a too-small envelope) cut
		// below some matrix; a tighter headroom leaves the clamp less
		// inflation to scale away, so keep walking the knobs.
		if !tighten() {
			break
		}
	}
	if best != nil {
		return best, nil
	}
	return nil, fmt.Errorf("robust: no allocatable envelope within budget %d: %w", cfg.Budget, lastErr)
}

func newEnvelope(em *traffic.Matrix, h float64, k int, clamped bool) *Envelope {
	e := &Envelope{
		Headroom: h,
		Matrices: k,
		Clamped:  clamped,
		Demand:   make(map[hose.Pair]float64, len(em.Demand)),
	}
	for p, dm := range em.Demand {
		if dm > 0 {
			e.Demand[p.Canonical()] = dm
			e.Total += dm
		}
	}
	return e
}

// Provisioned totals an allocation's capacity in wavelengths:
// fibers·λ + residual summed over pairs.
func Provisioned(alloc core.Allocation, lambda int) float64 {
	total := 0.0
	for p, f := range alloc.Fibers {
		total += float64(f*lambda + alloc.Residual[p])
	}
	for p, r := range alloc.Residual {
		if alloc.Fibers[p] == 0 {
			total += float64(r)
		}
	}
	return total
}

// Verify checks each matrix's admissibility under a fixed allocation,
// mirroring the chaos auditor's provisioning rule. Two independent
// checks per matrix:
//
//   - coverage: every pair's demand fits the wavelengths the allocation
//     provisions for it (circuits are dedicated per pair, so coverage is
//     exactly per-pair dominance up to the allocator's ceiling);
//   - capacity: per crossed duct, the worst-case hose-model load of the
//     crossing pairs — hose.WorstCaseLoad with the matrix's own per-DC
//     aggregates as hose caps, plus the multi-crossing surcharge for hub
//     walks — must fit the base plus cut-through fiber leased there, and
//     the crossing-pair count must fit the residual fibers.
func Verify(dep *core.Deployment, alloc core.Allocation, ms []*traffic.Matrix) []Verdict {
	lambda := dep.Region.Lambda
	out := make([]Verdict, len(ms))
	for i, m := range ms {
		v := Verdict{Index: i, Admissible: true}

		// Per-DC aggregates in fiber units: the hose caps this matrix
		// induces for the worst-case load bound.
		capsF := make(map[int]float64)
		for dc, agg := range m.PerDC() {
			capsF[dc] = agg / float64(lambda)
		}

		crossings := make(map[int]map[hose.Pair]int)
		for p, dm := range m.Demand {
			if dm <= 0 {
				continue
			}
			c := p.Canonical()
			prov := float64(alloc.FibersFor(c)*lambda + alloc.ResidualFor(c))
			if dm > prov+containsEps {
				v.Uncovered = append(v.Uncovered, c)
				v.Admissible = false
			}
			info, ok := dep.Plan.Paths[c]
			if !ok {
				v.Uncovered = append(v.Uncovered, c)
				v.Admissible = false
				continue
			}
			for _, duct := range info.Ducts {
				byPair := crossings[duct]
				if byPair == nil {
					byPair = make(map[hose.Pair]int)
					crossings[duct] = byPair
				}
				byPair[c]++
			}
		}
		sort.Slice(v.Uncovered, func(a, b int) bool { return lessPair(v.Uncovered[a], v.Uncovered[b]) })

		ductIDs := make([]int, 0, len(crossings))
		for id := range crossings {
			ductIDs = append(ductIDs, id)
		}
		sort.Ints(ductIDs)
		for _, id := range ductIDs {
			du := dep.Plan.Ducts[id]
			if du == nil {
				continue
			}
			byPair := crossings[id]
			pairs := make([]hose.Pair, 0, len(byPair))
			extra := 0.0
			for pair, k := range byPair {
				pairs = append(pairs, pair)
				if k > 1 {
					extra += float64(k-1) * math.Min(capsF[pair.A], capsF[pair.B])
				}
			}
			need := int(math.Ceil(hose.WorstCaseLoad(capsF, pairs) + extra - 1e-9))
			if have := du.BasePairs + du.CutThroughPairs; need > have {
				v.Overloads = append(v.Overloads, Overload{Duct: id, Need: need, Have: have})
				v.Admissible = false
			}
			if n, have := len(byPair), du.ResidualPairs; n > have {
				v.ResidualOverloads = append(v.ResidualOverloads, Overload{Duct: id, Need: n, Have: have})
				v.Admissible = false
			}
		}
		out[i] = v
	}
	return out
}

// pairAggregates sums a pair-demand map into per-DC hose aggregates.
func pairAggregates(demand map[hose.Pair]float64) map[int]float64 {
	agg := make(map[int]float64)
	for p, dm := range demand {
		agg[p.A] += dm
		agg[p.B] += dm
	}
	return agg
}

func lessPair(a, b hose.Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}
