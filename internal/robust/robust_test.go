package robust

import (
	"math"
	"math/rand"
	"testing"

	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/traffic"
)

func toyDep(t *testing.T) *core.Deployment {
	t.Helper()
	r := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range r.Map.DCs() {
		caps[dc] = 10
	}
	dep, err := core.Plan(core.Region{Map: r.Map, Capacity: caps, Lambda: 40}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// evolve yields k successive matrices of the seeded §6.3 change process at
// the given utilisation and drift bound.
func evolve(dep *core.Deployment, seed int64, k int, util, bound float64) []*traffic.Matrix {
	capsW := make(map[int]float64)
	for dc, c := range dep.Region.Capacity {
		capsW[dc] = float64(c * dep.Region.Lambda)
	}
	dcs := dep.Region.Map.DCs()
	base := traffic.HeavyTailed(rand.New(rand.NewSource(seed)), dcs, capsW, util)
	ev := traffic.NewEvolver(seed+1, base, traffic.ChangeProcess{Bound: bound, Caps: capsW, Util: util})
	ms := make([]*traffic.Matrix, 0, k)
	for i := 0; i < k; i++ {
		m, _ := ev.Next()
		ms = append(ms, m)
	}
	return ms
}

// TestSolveAdmissibleForAllMatrices is the robust-mode property test: an
// envelope solved over k seeded matrices must be verified admissible —
// per-pair demand within the provisioned wavelengths AND per-duct
// hose.WorstCaseLoad within the leased fiber — for EVERY matrix in the
// set. The check here is recomputed from scratch against the solved
// allocation, independently of Solve's own Verify call.
func TestSolveAdmissibleForAllMatrices(t *testing.T) {
	dep := toyDep(t)
	lambda := dep.Region.Lambda
	for _, seed := range []int64{1, 7, 42} {
		ms := evolve(dep, seed, 6, 0.5, 0.2)
		res, err := Solve(dep, ms, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AllAdmissible {
			t.Fatalf("seed %d: envelope not admissible for all %d matrices: %+v", seed, len(ms), res.Verdicts)
		}
		if len(res.Verdicts) != len(ms) {
			t.Fatalf("seed %d: %d verdicts for %d matrices", seed, len(res.Verdicts), len(ms))
		}

		for i, m := range ms {
			// Per-pair coverage against the provisioned wavelengths.
			for p, dm := range m.Demand {
				prov := float64(res.Alloc.FibersFor(p)*lambda + res.Alloc.ResidualFor(p))
				if dm > prov+1e-6 {
					t.Errorf("seed %d matrix %d: pair %d-%d demand %.2f > provisioned %.2f",
						seed, i, p.A, p.B, dm, prov)
				}
			}
			// Per-duct worst-case hose load (matrix aggregates as hose
			// caps, in fiber units) against the leased base + cut-through
			// fiber.
			capsF := make(map[int]float64)
			for dc, agg := range m.PerDC() {
				capsF[dc] = agg / float64(lambda)
			}
			crossings := make(map[int][]hose.Pair)
			for p, dm := range m.Demand {
				if dm <= 0 {
					continue
				}
				info := dep.Plan.Paths[p.Canonical()]
				if info == nil {
					t.Fatalf("no planned path for pair %d-%d", p.A, p.B)
				}
				for _, duct := range info.Ducts {
					crossings[duct] = append(crossings[duct], p.Canonical())
				}
			}
			for duct, pairs := range crossings {
				du := dep.Plan.Ducts[duct]
				need := hose.WorstCaseLoad(capsF, pairs)
				if have := float64(du.BasePairs + du.CutThroughPairs); need > have+1e-9 {
					t.Errorf("seed %d matrix %d: duct %d worst-case load %.3f > provisioned %.0f",
						seed, i, duct, need, have)
				}
			}
		}

		if res.ProvisionedWavelengths <= 0 || res.Overprovision < 1 {
			t.Errorf("seed %d: provisioned=%.1f overprovision=%.2f, want positive capacity at ratio ≥ 1",
				seed, res.ProvisionedWavelengths, res.Overprovision)
		}
	}
}

// TestSolveTightensInfeasibleHeadroom starts from an absurd headroom that
// cannot fit the hose caps and checks the solver lands on a feasible
// inflation (hose feasibility is linear in the headroom, so the bound is
// computed analytically rather than burning budget) instead of erroring.
func TestSolveTightensInfeasibleHeadroom(t *testing.T) {
	dep := toyDep(t)
	ms := evolve(dep, 3, 4, 0.6, 0.2)
	res, err := Solve(dep, ms, Config{Headroom: 5.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Headroom >= 5.0 {
		t.Fatalf("headroom %.3f was not tightened (5.0 cannot be hose-feasible at util 0.6)", res.Headroom)
	}
	if res.Headroom < 1 {
		t.Fatalf("headroom %.3f fell below 1", res.Headroom)
	}
	if !res.AllAdmissible {
		t.Fatalf("tightened envelope not admissible: %+v", res.Verdicts)
	}
}

// TestSolveBestEffortWhenDominationInfeasible pins the degraded path: two
// individually feasible matrices whose element-wise max exceeds the hose
// caps force clamping, and the clamped envelope cannot cover both — Solve
// must return the best allocatable envelope with AllAdmissible=false, not
// an error.
func TestSolveBestEffortWhenDominationInfeasible(t *testing.T) {
	dep := toyDep(t)
	dcs := dep.Region.Map.DCs()
	m1 := traffic.NewMatrix(dcs)
	m1.Set(hose.Pair{A: dcs[0], B: dcs[1]}, 390)
	m2 := traffic.NewMatrix(dcs)
	m2.Set(hose.Pair{A: dcs[0], B: dcs[2]}, 390)
	res, err := Solve(dep, []*traffic.Matrix{m1, m2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllAdmissible {
		t.Fatal("domination of 780 wavelengths at one DC cannot be admissible under a 400-wavelength hose cap")
	}
	if !res.Envelope.Clamped {
		t.Error("envelope should have been clamped into the hose polytope")
	}
	bad := 0
	for _, v := range res.Verdicts {
		if !v.Admissible {
			bad++
			if len(v.Uncovered) == 0 {
				t.Errorf("matrix %d inadmissible without uncovered pairs", v.Index)
			}
		}
	}
	if bad == 0 {
		t.Error("no inadmissible verdicts despite AllAdmissible=false")
	}
}

func TestEnvelopeContainsEscapesUtilization(t *testing.T) {
	dep := toyDep(t)
	ms := evolve(dep, 5, 4, 0.5, 0.2)
	res, err := Solve(dep, ms, Config{})
	if err != nil {
		t.Fatal(err)
	}
	env := res.Envelope

	for i, m := range ms {
		if !env.Contains(m) {
			t.Errorf("matrix %d of the solved set escapes its own envelope", i)
		}
		if u := env.Utilization(m); u <= 0 || u > 1+1e-9 {
			t.Errorf("matrix %d utilization %.3f outside (0, 1]", i, u)
		}
	}

	// Inflate one pair past its envelope: must escape, with the pair
	// reported and utilization above 1.
	esc := ms[0].Clone()
	var worst hose.Pair
	var worstD float64
	for p, dm := range esc.Demand {
		if dm > worstD {
			worst, worstD = p, dm
		}
	}
	esc.Set(worst, env.Demand[worst.Canonical()]*1.5)
	if env.Contains(esc) {
		t.Fatal("inflated matrix still contained")
	}
	escapes := env.Escapes(esc)
	if len(escapes) == 0 || escapes[0].Pair != worst.Canonical() {
		t.Fatalf("escapes = %+v, want pair %v first", escapes, worst)
	}
	if u := env.Utilization(esc); u < 1.5-1e-9 {
		t.Errorf("escaped utilization %.3f, want ≥ 1.5", u)
	}

	// Demand on a pair with no envelope capacity is an infinite fill.
	off := traffic.NewMatrix(dep.Region.Map.DCs())
	zero := &Envelope{Demand: map[hose.Pair]float64{}}
	off.Set(hose.Pair{A: dep.Region.Map.DCs()[0], B: dep.Region.Map.DCs()[1]}, 1)
	if u := zero.Utilization(off); !math.IsInf(u, 1) {
		t.Errorf("zero-capacity utilization = %v, want +Inf", u)
	}
}

func TestMaxEnvelope(t *testing.T) {
	dcs := []int{2, 3, 4}
	a := traffic.NewMatrix(dcs)
	a.Set(hose.Pair{A: 2, B: 3}, 10)
	a.Set(hose.Pair{A: 3, B: 4}, 5)
	b := traffic.NewMatrix(dcs)
	b.Set(hose.Pair{A: 3, B: 2}, 7) // non-canonical order on purpose
	b.Set(hose.Pair{A: 2, B: 4}, 3)
	raw := MaxEnvelope([]*traffic.Matrix{a, b})
	want := map[hose.Pair]float64{
		{A: 2, B: 3}: 10,
		{A: 3, B: 4}: 5,
		{A: 2, B: 4}: 3,
	}
	if len(raw) != len(want) {
		t.Fatalf("raw = %v, want %v", raw, want)
	}
	for p, v := range want {
		if raw[p] != v {
			t.Errorf("raw[%v] = %v, want %v", p, raw[p], v)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	dep := toyDep(t)
	ms := evolve(dep, 1, 2, 0.5, 0.2)
	for _, cfg := range []Config{
		{Headroom: 0.5},
		{Shrink: 1.5},
		{Budget: -1},
	} {
		if _, err := Solve(dep, ms, cfg); err == nil {
			t.Errorf("Solve accepted invalid config %+v", cfg)
		}
	}
	if _, err := Solve(dep, nil, Config{}); err == nil {
		t.Error("Solve accepted an empty matrix set")
	}
	if _, err := Solve(nil, ms, Config{}); err == nil {
		t.Error("Solve accepted a nil deployment")
	}
}

func TestProvisioned(t *testing.T) {
	alloc := core.Allocation{
		Fibers:   map[hose.Pair]int{{A: 0, B: 1}: 2},
		Residual: map[hose.Pair]int{{A: 0, B: 1}: 13, {A: 0, B: 2}: 5},
	}
	if got := Provisioned(alloc, 40); got != 2*40+13+5 {
		t.Errorf("Provisioned = %v, want %v", got, 2*40+13+5)
	}
}
