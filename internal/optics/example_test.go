package optics_test

import (
	"fmt"

	"iris/internal/optics"
)

// ExampleEvaluate checks the paper's worst-case path — 120 km split 60+60
// with one inline amplifier — against the TC1–TC4 constraints.
func ExampleEvaluate() {
	ev := optics.Evaluate([]optics.Element{
		{Kind: optics.Amp}, {Kind: optics.OSS},
		{Kind: optics.Span, LengthKM: 60},
		{Kind: optics.OSS}, {Kind: optics.Amp}, // loopback amp at a hut
		{Kind: optics.Span, LengthKM: 60},
		{Kind: optics.OSS}, {Kind: optics.Amp},
	})
	fmt.Printf("feasible: %v\n", ev.Feasible())
	fmt.Printf("amps: %d (penalty %.2f dB)\n", ev.Amps, ev.OSNRPenaltyDB)
	fmt.Printf("pre-FEC BER below threshold: %v\n", ev.PreFECBER < optics.SoftFECBERThreshold)
	// Output:
	// feasible: true
	// amps: 3 (penalty 9.25 dB)
	// pre-FEC BER below threshold: true
}

// ExampleOSNRPenaltyDB reproduces the Fig. 9 measurement points.
func ExampleOSNRPenaltyDB() {
	for _, n := range []int{1, 2, 4, 8} {
		fmt.Printf("%d amps: %.1f dB\n", n, optics.OSNRPenaltyDB(n))
	}
	// Output:
	// 1 amps: 4.5 dB
	// 2 amps: 7.5 dB
	// 4 amps: 10.5 dB
	// 8 amps: 13.5 dB
}
