// Package optics models the physical layer of a regional DCI: fiber spans,
// erbium-doped fiber amplifiers, optical space switches (OSS), optical
// cross-connects (OXC), and 400ZR-class coherent transceivers. It encodes
// the technology constraints TC1–TC4 of §3.2 of the paper and the measured
// component behaviour of §6.2 (Figs. 8, 9 and 14), and is the authority the
// planner consults when validating end-to-end optical paths.
//
// The paper validated these models on a hardware testbed; this package is
// the simulator substitute. Every constant below is taken from the paper's
// published numbers, so constraint checks exercise the same decision logic
// as the testbed did.
package optics

import (
	"fmt"
	"math"
)

// Published physical-layer constants (Fig. 8, §3.2).
const (
	// FiberLossDBPerKM is the typical regional fiber attenuation.
	FiberLossDBPerKM = 0.25
	// AmpGainDB is the fixed gain of every amplifier. Iris operates all
	// amplifiers at fixed gain with input power limiters (§5.1), so gain
	// never needs online adjustment.
	AmpGainDB = 20.0
	// AmpNoiseFigureDB is the OSNR penalty added by the first amplifier on
	// a path (measured in Fig. 9).
	AmpNoiseFigureDB = 4.5
	// OSSLossDB is the insertion loss of one optical space switch traversal.
	OSSLossDB = 1.5
	// OXCLossDB is the insertion loss of an optical cross-connect
	// (wavelength-granularity switching element).
	OXCLossDB = 9.0
	// MaxSpanKM is the longest unamplified point-to-point fiber run (TC1):
	// the 20 dB receive-amplifier gain divided by the fiber loss.
	MaxSpanKM = AmpGainDB / FiberLossDBPerKM // 80 km
	// MaxPathKM is the SLA-derived maximum DC-DC fiber distance (OC1).
	MaxPathKM = 120.0
	// MaxAmpsPerPath is the end-to-end amplifier budget (TC2): a 9 dB OSNR
	// penalty budget permits at most 3 cascaded amplifiers.
	MaxAmpsPerPath = 3
	// MaxInlineAmpsPerPath limits amplifiers between the terminal sites to
	// one (TC2): with two terminal amplifiers, only one more fits in the
	// 3-amplifier budget.
	MaxInlineAmpsPerPath = 1
	// OSNRPenaltyBudgetDB is the tolerable cascaded-amplifier OSNR penalty
	// after reserving margin for transmission impairments (§3.2).
	OSNRPenaltyBudgetDB = 9.0
	// ReconfigLossBudgetDB is the optical power budget available for
	// reconfiguration elements on a max-distance path (TC4): at most one
	// OXC or six OSS traversals.
	ReconfigLossBudgetDB = 10.0
	// MaxOSSPerPath is ReconfigLossBudgetDB / OSSLossDB rounded down.
	MaxOSSPerPath = 6
)

// 400ZR transceiver characteristics (Fig. 8, §3.2, §6.2).
const (
	// TransceiverGbps is the line rate of one 400ZR transceiver.
	TransceiverGbps = 400
	// SoftFECBERThreshold is the pre-FEC bit error rate above which the
	// soft-decision FEC can no longer deliver error-free output.
	SoftFECBERThreshold = 2e-2
	// RequiredOSNRDB is the receiver OSNR at the FEC threshold.
	RequiredOSNRDB = 26.0
	// BackToBackOSNRDB is the OSNR of an unamplified, loss-compensated
	// link; cascaded amplifiers subtract OSNRPenaltyDB from it.
	BackToBackOSNRDB = 37.0
	// ReconfigRecoveryMS is the measured time for a receiver to recover
	// the signal after a fiber switch (§6.2: 50 ms on one hut, up to
	// 70 ms across two huts).
	ReconfigRecoveryMS = 50.0
	// OSSSwitchTimeMS is the switching time of the optical space switch,
	// the slowest element in a reconfiguration (§5.2).
	OSSSwitchTimeMS = 20.0
)

// OSNRPenaltyDB returns the OSNR penalty of n cascaded amplifiers: the
// first adds the amplifier noise figure and each doubling thereafter adds
// 3 dB, matching the Fig. 9 measurement and the cascaded-EDFA theory the
// paper cites.
func OSNRPenaltyDB(n int) float64 {
	if n <= 0 {
		return 0
	}
	return AmpNoiseFigureDB + 3*math.Log2(float64(n))
}

// MaxAmpsWithinPenalty returns the largest amplifier cascade whose OSNR
// penalty fits the given budget. With the paper's 9 dB budget this is 3.
//
// The paper reads the count off the measured Fig. 9 curve, where the
// 3-amplifier penalty sits at ≈9 dB; the analytic doubling model gives
// 9.26 dB, so a 0.5 dB reading tolerance is applied to match the published
// constraint (§3.2: "a maximum amplifier-count of 3 end-to-end").
func MaxAmpsWithinPenalty(budgetDB float64) int {
	const readingToleranceDB = 0.5
	n := 0
	for OSNRPenaltyDB(n+1) <= budgetDB+readingToleranceDB {
		n++
	}
	return n
}

// PreFECBER maps received OSNR to the pre-FEC bit error rate of a
// dual-polarization 16-QAM coherent receiver. The mapping is anchored at
// the FEC threshold (RequiredOSNRDB → SoftFECBERThreshold) and follows the
// steep waterfall slope characteristic of coherent 16-QAM: roughly one
// decade of BER per 3.5 dB of OSNR. It saturates at 0.5 for hopeless links.
func PreFECBER(osnrDB float64) float64 {
	margin := osnrDB - RequiredOSNRDB
	ber := SoftFECBERThreshold * math.Pow(10, -margin/3.5)
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// ElementKind identifies a component on an optical path.
type ElementKind int

const (
	// Span is a run of fiber of a given length.
	Span ElementKind = iota
	// Amp is an EDFA operated at fixed gain behind a power limiter.
	Amp
	// OSS is one traversal of an optical space switch.
	OSS
	// OXC is one traversal of a wavelength-granularity cross-connect.
	OXC
	// Mux is a WSS multiplexer or demultiplexer traversal.
	Mux
)

// String implements fmt.Stringer.
func (k ElementKind) String() string {
	switch k {
	case Span:
		return "span"
	case Amp:
		return "amp"
	case OSS:
		return "oss"
	case OXC:
		return "oxc"
	case Mux:
		return "mux"
	}
	return fmt.Sprintf("ElementKind(%d)", int(k))
}

// MuxLossDB is the insertion loss of one WSS mux or demux traversal.
const MuxLossDB = 6.0

// Element is one component on an end-to-end optical path, in order from
// the sending DC to the receiving DC.
type Element struct {
	Kind ElementKind
	// LengthKM is the fiber length; meaningful only for Span elements.
	LengthKM float64
}

// LossDB returns the optical power loss of the element. Amplifiers have
// zero loss here; their gain is accounted for in segment evaluation.
func (e Element) LossDB() float64 {
	switch e.Kind {
	case Span:
		return e.LengthKM * FiberLossDBPerKM
	case Amp:
		return 0
	case OSS:
		return OSSLossDB
	case OXC:
		return OXCLossDB
	case Mux:
		return MuxLossDB
	}
	panic(fmt.Sprintf("optics: unknown element kind %d", int(e.Kind)))
}

// ViolationKind classifies a constraint violation found on a path.
type ViolationKind int

const (
	// TooLong: the path exceeds the SLA fiber distance (OC1).
	TooLong ViolationKind = iota
	// SegmentLoss: an amplifier-to-amplifier segment loses more power than
	// one amplifier can restore (TC1).
	SegmentLoss
	// TooManyAmps: the amplifier cascade exceeds the OSNR budget (TC2).
	TooManyAmps
	// ReconfigLoss: switching elements exceed the reconfiguration power
	// budget (TC4).
	ReconfigLoss
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case TooLong:
		return "path too long (OC1)"
	case SegmentLoss:
		return "segment loss exceeds amplifier gain (TC1)"
	case TooManyAmps:
		return "amplifier cascade exceeds OSNR budget (TC2)"
	case ReconfigLoss:
		return "reconfiguration elements exceed power budget (TC4)"
	}
	return fmt.Sprintf("ViolationKind(%d)", int(k))
}

// Violation is one constraint breach found by Evaluate.
type Violation struct {
	Kind   ViolationKind
	Detail string
}

// Error renders the violation as text. Violation intentionally does not
// implement the error interface: a path with violations is an analysis
// result, not a failure of the evaluation itself.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
}

// PathEval is the result of evaluating an end-to-end optical path.
type PathEval struct {
	TotalKM       float64
	Amps          int
	InlineAmps    int
	OSSCount      int
	OXCCount      int
	OSNRPenaltyDB float64 // cascaded-amplifier penalty
	ReconfigDB    float64 // loss attributable to OSS/OXC elements
	WorstSegDB    float64 // highest single-segment loss
	RxOSNRDB      float64 // OSNR at the receiver
	PreFECBER     float64 // implied pre-FEC bit error rate
	Violations    []Violation
}

// Feasible reports whether the path satisfies all constraints.
func (p PathEval) Feasible() bool { return len(p.Violations) == 0 }

// Evaluate checks an ordered element chain against the DCI constraints.
// The chain runs sender to receiver; terminal amplifiers at the sending and
// receiving DC must be included as Amp elements (the Iris implementation
// always deploys them, see Fig. 11).
//
// Segments are the stretches between consecutive amplifiers (or a path end
// and the nearest amplifier); following the paper's budget arithmetic, a
// segment's fiber loss must not exceed one amplifier's gain (TC1: 80 km at
// 0.25 dB/km against 20 dB), while switching-element losses are covered by
// the separate 10 dB reconfiguration budget (TC4: at most six OSS or one
// OXC) and mux losses by the link margins of Fig. 8.
func Evaluate(elems []Element) PathEval {
	var ev PathEval
	segLoss := 0.0
	flushSeg := func() {
		if segLoss > ev.WorstSegDB {
			ev.WorstSegDB = segLoss
		}
		segLoss = 0
	}
	for _, e := range elems {
		switch e.Kind {
		case Amp:
			flushSeg()
			ev.Amps++
		case OSS:
			ev.OSSCount++
			ev.ReconfigDB += OSSLossDB
		case OXC:
			ev.OXCCount++
			ev.ReconfigDB += OXCLossDB
		case Span:
			ev.TotalKM += e.LengthKM
			segLoss += e.LossDB()
		}
	}
	flushSeg()

	// Inline amplifiers are those with spans on both sides; with terminal
	// amps included, that is every amp beyond the first and last.
	if ev.Amps > 2 {
		ev.InlineAmps = ev.Amps - 2
	}

	ev.OSNRPenaltyDB = OSNRPenaltyDB(ev.Amps)
	ev.RxOSNRDB = BackToBackOSNRDB - ev.OSNRPenaltyDB
	ev.PreFECBER = PreFECBER(ev.RxOSNRDB)

	if ev.TotalKM > MaxPathKM+1e-9 {
		ev.Violations = append(ev.Violations, Violation{TooLong,
			fmt.Sprintf("%.1f km > %.0f km", ev.TotalKM, MaxPathKM)})
	}
	if ev.WorstSegDB > AmpGainDB+1e-9 {
		ev.Violations = append(ev.Violations, Violation{SegmentLoss,
			fmt.Sprintf("%.2f dB > %.0f dB gain", ev.WorstSegDB, AmpGainDB)})
	}
	if ev.Amps > MaxAmpsPerPath {
		ev.Violations = append(ev.Violations, Violation{TooManyAmps,
			fmt.Sprintf("%d amps > %d (penalty %.1f dB > %.0f dB)",
				ev.Amps, MaxAmpsPerPath, ev.OSNRPenaltyDB, OSNRPenaltyBudgetDB)})
	}
	if ev.ReconfigDB > ReconfigLossBudgetDB+1e-9 {
		ev.Violations = append(ev.Violations, Violation{ReconfigLoss,
			fmt.Sprintf("%.1f dB > %.0f dB", ev.ReconfigDB, ReconfigLossBudgetDB)})
	}
	return ev
}
