package optics

import (
	"fmt"
	"math/rand"
)

// BERSample is one pre-FEC BER measurement, taken every 10 ms as in the
// paper's testbed (§6.2, Appendix C).
type BERSample struct {
	TimeS  float64 // measurement time, seconds from experiment start
	BER    float64 // pre-FEC bit error rate; meaningful only when Signal
	Signal bool    // false while the receiver is recovering from a switch
}

// ReconfigExperiment reproduces the Fig. 13(b)/Fig. 14 testbed experiment
// in simulation: a sender alternates between two optical path
// configurations (the paper's span combinations A(60-60, 20-10) and
// B(20-60, 60-10)), reconfiguring every IntervalS seconds. Each switch
// blinds the receiver for the measured recovery time; in between, BER
// follows the path OSNR with small measurement noise.
type ReconfigExperiment struct {
	Seed      int64
	DurationS float64   // total experiment duration
	IntervalS float64   // time between reconfigurations (paper: 60 s)
	SampleMS  float64   // BER sampling period (paper: 10 ms)
	PathA     []Element // configuration before each odd switch
	PathB     []Element // configuration after each odd switch
	// RecoveryMS overrides the post-switch signal recovery time;
	// zero means the measured default (ReconfigRecoveryMS).
	RecoveryMS float64
}

// TestbedPaths returns the two path configurations of the paper's
// experiment: four spans of 20, 60, 60 and 10 km across one intermediate
// hut, with the hut amplifier serving whichever path currently has the
// long span combination. Terminal amplifiers at both DCs are included.
func TestbedPaths() (pathA, pathB []Element) {
	// Configuration A: 60 km + 60 km via the hut (amplified at the hut).
	pathA = []Element{
		{Kind: Mux}, {Kind: OSS}, {Kind: Amp},
		{Kind: Span, LengthKM: 60},
		{Kind: OSS}, {Kind: Amp}, // hut: loopback amplifier through the OSS
		{Kind: Span, LengthKM: 60},
		{Kind: OSS}, {Kind: Amp}, {Kind: Mux},
	}
	// Configuration B: 20 km + 10 km via the hut (no inline amplification).
	pathB = []Element{
		{Kind: Mux}, {Kind: OSS}, {Kind: Amp},
		{Kind: Span, LengthKM: 20},
		{Kind: OSS},
		{Kind: Span, LengthKM: 10},
		{Kind: OSS}, {Kind: Amp}, {Kind: Mux},
	}
	return pathA, pathB
}

// Run simulates the experiment and returns the BER samples in time order.
// It returns an error if either path configuration violates the optical
// constraints, since the testbed could not have carried traffic on such a
// path at all.
func (e ReconfigExperiment) Run() ([]BERSample, error) {
	evalA := Evaluate(e.PathA)
	if !evalA.Feasible() {
		return nil, fmt.Errorf("optics: path A infeasible: %v", evalA.Violations)
	}
	evalB := Evaluate(e.PathB)
	if !evalB.Feasible() {
		return nil, fmt.Errorf("optics: path B infeasible: %v", evalB.Violations)
	}
	if e.DurationS <= 0 || e.IntervalS <= 0 || e.SampleMS <= 0 {
		return nil, fmt.Errorf("optics: experiment durations must be positive: %+v", e)
	}
	recovery := e.RecoveryMS
	if recovery == 0 {
		recovery = ReconfigRecoveryMS
	}

	rng := rand.New(rand.NewSource(e.Seed))
	n := int(e.DurationS * 1000 / e.SampleMS)
	samples := make([]BERSample, 0, n)
	step := e.SampleMS / 1000
	for i := 0; i < n; i++ {
		t := float64(i) * step
		// Which configuration is active, and how long since the switch?
		epoch := int(t / e.IntervalS)
		sinceSwitch := t - float64(epoch)*e.IntervalS
		active := evalA
		if epoch%2 == 1 {
			active = evalB
		}
		if epoch > 0 && sinceSwitch*1000 < recovery {
			samples = append(samples, BERSample{TimeS: t, Signal: false})
			continue
		}
		// Small multiplicative measurement noise (±20%), as seen in the
		// testbed traces, around the OSNR-implied BER.
		noise := 1 + 0.2*(2*rng.Float64()-1)
		samples = append(samples, BERSample{
			TimeS:  t,
			BER:    active.PreFECBER * noise,
			Signal: true,
		})
	}
	return samples, nil
}

// MaxBER returns the highest BER across samples that carried signal.
func MaxBER(samples []BERSample) float64 {
	var maxBER float64
	for _, s := range samples {
		if s.Signal && s.BER > maxBER {
			maxBER = s.BER
		}
	}
	return maxBER
}

// OutageMS returns the total signal-loss time across the samples, in
// milliseconds, computed from the sampling period implied by consecutive
// samples.
func OutageMS(samples []BERSample) float64 {
	if len(samples) < 2 {
		return 0
	}
	stepMS := (samples[1].TimeS - samples[0].TimeS) * 1000
	var total float64
	for _, s := range samples {
		if !s.Signal {
			total += stepMS
		}
	}
	return total
}
