package optics

import (
	"math"
	"testing"
)

func TestOSNRPenaltyMatchesFig9(t *testing.T) {
	// Fig. 9: first amplifier adds the noise figure (~4.5 dB), each
	// doubling of the cascade adds ~3 dB.
	tests := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{1, 4.5},
		{2, 7.5},
		{4, 10.5},
		{8, 13.5},
	}
	for _, tt := range tests {
		if got := OSNRPenaltyDB(tt.n); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("OSNRPenaltyDB(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
	// Monotone in between.
	if OSNRPenaltyDB(3) <= OSNRPenaltyDB(2) || OSNRPenaltyDB(3) >= OSNRPenaltyDB(4) {
		t.Error("penalty not monotone at n=3")
	}
}

func TestMaxAmpsWithinPenalty(t *testing.T) {
	// §3.2: a 9 dB budget admits at most 3 amplifiers end-to-end.
	if got := MaxAmpsWithinPenalty(OSNRPenaltyBudgetDB); got != 3 {
		t.Errorf("MaxAmpsWithinPenalty(9) = %d, want 3", got)
	}
	if got := MaxAmpsWithinPenalty(3.9); got != 0 {
		t.Errorf("MaxAmpsWithinPenalty(3.9) = %d, want 0", got)
	}
	if got := MaxAmpsWithinPenalty(4.5); got != 1 {
		t.Errorf("MaxAmpsWithinPenalty(4.5) = %d, want 1", got)
	}
}

func TestDerivedConstants(t *testing.T) {
	if MaxSpanKM != 80 {
		t.Errorf("MaxSpanKM = %v, want 80 (TC1)", MaxSpanKM)
	}
	if MaxOSSPerPath != 6 {
		t.Errorf("MaxOSSPerPath = %v, want 6 (TC4)", MaxOSSPerPath)
	}
	if got := math.Floor(ReconfigLossBudgetDB / OSSLossDB); got != MaxOSSPerPath {
		t.Errorf("OSS budget inconsistency: floor(%v/%v) = %v", ReconfigLossBudgetDB, OSSLossDB, got)
	}
	// Exactly one OXC fits the reconfiguration budget, two do not.
	if OXCLossDB > ReconfigLossBudgetDB || 2*OXCLossDB <= ReconfigLossBudgetDB {
		t.Error("OXC budget should admit exactly one traversal")
	}
}

func TestPreFECBER(t *testing.T) {
	if got := PreFECBER(RequiredOSNRDB); math.Abs(got-SoftFECBERThreshold) > 1e-12 {
		t.Errorf("BER at required OSNR = %v, want threshold %v", got, SoftFECBERThreshold)
	}
	if PreFECBER(RequiredOSNRDB+5) >= PreFECBER(RequiredOSNRDB) {
		t.Error("BER should fall as OSNR rises")
	}
	if got := PreFECBER(0); got != 0.5 {
		t.Errorf("hopeless link BER = %v, want saturation at 0.5", got)
	}
}

func TestElementLoss(t *testing.T) {
	tests := []struct {
		e    Element
		want float64
	}{
		{Element{Kind: Span, LengthKM: 80}, 20},
		{Element{Kind: OSS}, OSSLossDB},
		{Element{Kind: OXC}, OXCLossDB},
		{Element{Kind: Mux}, MuxLossDB},
		{Element{Kind: Amp}, 0},
	}
	for _, tt := range tests {
		if got := tt.e.LossDB(); got != tt.want {
			t.Errorf("LossDB(%v) = %v, want %v", tt.e.Kind, got, tt.want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[ElementKind]string{Span: "span", Amp: "amp", OSS: "oss", OXC: "oxc", Mux: "mux"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if ElementKind(42).String() != "ElementKind(42)" {
		t.Error("unknown ElementKind string")
	}
	for _, v := range []ViolationKind{TooLong, SegmentLoss, TooManyAmps, ReconfigLoss} {
		if v.String() == "" {
			t.Errorf("empty string for ViolationKind %d", int(v))
		}
	}
	if ViolationKind(42).String() != "ViolationKind(42)" {
		t.Error("unknown ViolationKind string")
	}
}

func TestEvaluateCleanShortPath(t *testing.T) {
	// 40 km single span with terminal amps: comfortably feasible.
	ev := Evaluate([]Element{
		{Kind: Amp}, {Kind: OSS}, {Kind: Span, LengthKM: 40}, {Kind: OSS}, {Kind: Amp},
	})
	if !ev.Feasible() {
		t.Fatalf("unexpected violations: %v", ev.Violations)
	}
	if ev.TotalKM != 40 || ev.Amps != 2 || ev.OSSCount != 2 {
		t.Errorf("eval = %+v", ev)
	}
	if ev.InlineAmps != 0 {
		t.Errorf("InlineAmps = %d, want 0", ev.InlineAmps)
	}
	if ev.PreFECBER > SoftFECBERThreshold {
		t.Errorf("BER %v above FEC threshold on a clean path", ev.PreFECBER)
	}
}

func TestEvaluateMaxDistanceWithInlineAmp(t *testing.T) {
	// 120 km split 60+60 with one inline amp: the paper's worst case.
	ev := Evaluate([]Element{
		{Kind: Amp}, {Kind: OSS},
		{Kind: Span, LengthKM: 60},
		{Kind: OSS}, {Kind: Amp},
		{Kind: Span, LengthKM: 60},
		{Kind: OSS}, {Kind: Amp},
	})
	if !ev.Feasible() {
		t.Fatalf("unexpected violations: %v", ev.Violations)
	}
	if ev.Amps != 3 || ev.InlineAmps != 1 {
		t.Errorf("amps = %d inline = %d", ev.Amps, ev.InlineAmps)
	}
}

func TestEvaluateViolations(t *testing.T) {
	hasViolation := func(ev PathEval, k ViolationKind) bool {
		for _, v := range ev.Violations {
			if v.Kind == k {
				return true
			}
		}
		return false
	}

	t.Run("too long", func(t *testing.T) {
		ev := Evaluate([]Element{
			{Kind: Amp}, {Kind: Span, LengthKM: 70}, {Kind: Amp},
			{Kind: Span, LengthKM: 70}, {Kind: Amp},
		})
		if !hasViolation(ev, TooLong) {
			t.Errorf("expected TooLong, got %v", ev.Violations)
		}
	})

	t.Run("segment loss", func(t *testing.T) {
		// A 90 km unamplified span exceeds the 20 dB amplifier gain.
		ev := Evaluate([]Element{
			{Kind: Amp}, {Kind: Span, LengthKM: 90}, {Kind: Amp},
		})
		if !hasViolation(ev, SegmentLoss) {
			t.Errorf("expected SegmentLoss, got %v", ev.Violations)
		}
	})

	t.Run("switch losses do not count against segments", func(t *testing.T) {
		// TC1 is a fiber-loss constraint; OSS losses live in the TC4
		// budget. 78 km of fiber plus an OSS remains TC1-clean.
		ev := Evaluate([]Element{
			{Kind: Amp}, {Kind: Span, LengthKM: 78}, {Kind: OSS}, {Kind: Amp},
		})
		if hasViolation(ev, SegmentLoss) {
			t.Errorf("unexpected SegmentLoss: %v", ev.Violations)
		}
	})

	t.Run("bypassed switch merges spans into one segment", func(t *testing.T) {
		// Without an amplifier between them, two 60 km spans form one
		// 120 km segment and violate TC1 even though each span fits.
		ev := Evaluate([]Element{
			{Kind: Amp}, {Kind: Span, LengthKM: 60}, {Kind: OSS},
			{Kind: Span, LengthKM: 60}, {Kind: Amp},
		})
		if !hasViolation(ev, SegmentLoss) {
			t.Errorf("expected SegmentLoss, got %v", ev.Violations)
		}
	})

	t.Run("too many amps", func(t *testing.T) {
		elems := []Element{{Kind: Amp}}
		for i := 0; i < 3; i++ {
			elems = append(elems, Element{Kind: Span, LengthKM: 20}, Element{Kind: Amp})
		}
		ev := Evaluate(elems)
		if !hasViolation(ev, TooManyAmps) {
			t.Errorf("expected TooManyAmps with 4 amps, got %v", ev.Violations)
		}
	})

	t.Run("reconfig budget", func(t *testing.T) {
		elems := []Element{{Kind: Amp}}
		for i := 0; i < 7; i++ {
			elems = append(elems, Element{Kind: OSS})
		}
		elems = append(elems, Element{Kind: Span, LengthKM: 10}, Element{Kind: Amp})
		ev := Evaluate(elems)
		if !hasViolation(ev, ReconfigLoss) {
			t.Errorf("expected ReconfigLoss with 7 OSS, got %v", ev.Violations)
		}
	})

	t.Run("six OSS are fine", func(t *testing.T) {
		elems := []Element{{Kind: Amp}}
		for i := 0; i < 6; i++ {
			elems = append(elems, Element{Kind: OSS})
		}
		elems = append(elems, Element{Kind: Span, LengthKM: 10}, Element{Kind: Amp})
		ev := Evaluate(elems)
		if !ev.Feasible() {
			t.Errorf("6 OSS should fit the budget: %v", ev.Violations)
		}
	})

	t.Run("one OXC fine two not", func(t *testing.T) {
		one := Evaluate([]Element{{Kind: Amp}, {Kind: OXC}, {Kind: Span, LengthKM: 10}, {Kind: Amp}})
		if !one.Feasible() {
			t.Errorf("one OXC should be feasible: %v", one.Violations)
		}
		two := Evaluate([]Element{{Kind: Amp}, {Kind: OXC}, {Kind: OXC}, {Kind: Span, LengthKM: 10}, {Kind: Amp}})
		if !hasViolation(two, ReconfigLoss) {
			t.Errorf("two OXC should violate TC4: %v", two.Violations)
		}
	})
}

func TestEvaluateWorstSegment(t *testing.T) {
	ev := Evaluate([]Element{
		{Kind: Amp}, {Kind: Span, LengthKM: 40}, {Kind: Amp}, {Kind: Span, LengthKM: 60}, {Kind: Amp},
	})
	if want := 60 * FiberLossDBPerKM; math.Abs(ev.WorstSegDB-want) > 1e-9 {
		t.Errorf("WorstSegDB = %v, want %v", ev.WorstSegDB, want)
	}
}
