package optics

import (
	"testing"
)

func TestTestbedPathsFeasible(t *testing.T) {
	a, b := TestbedPaths()
	if ev := Evaluate(a); !ev.Feasible() {
		t.Errorf("path A infeasible: %v", ev.Violations)
	}
	if ev := Evaluate(b); !ev.Feasible() {
		t.Errorf("path B infeasible: %v", ev.Violations)
	}
	// Path A carries the 120 km combination and uses the hut amplifier.
	evA := Evaluate(a)
	if evA.TotalKM != 120 || evA.Amps != 3 {
		t.Errorf("path A: %.0f km, %d amps; want 120 km, 3 amps", evA.TotalKM, evA.Amps)
	}
	evB := Evaluate(b)
	if evB.TotalKM != 30 || evB.Amps != 2 {
		t.Errorf("path B: %.0f km, %d amps; want 30 km, 2 amps", evB.TotalKM, evB.Amps)
	}
}

func TestReconfigExperimentFig14(t *testing.T) {
	a, b := TestbedPaths()
	exp := ReconfigExperiment{
		Seed:      1,
		DurationS: 300, // five minutes, reconfiguring every minute
		IntervalS: 60,
		SampleMS:  10,
		PathA:     a,
		PathB:     b,
	}
	samples, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 30000 {
		t.Fatalf("got %d samples, want 30000", len(samples))
	}
	// Fig. 14's headline: pre-FEC BER stays below the soft-FEC threshold
	// throughout, including right after reconfigurations.
	if maxBER := MaxBER(samples); maxBER >= SoftFECBERThreshold {
		t.Errorf("max BER %v not below FEC threshold %v", maxBER, SoftFECBERThreshold)
	}
	// Four reconfigurations, each blinding the receiver for 50 ms.
	outage := OutageMS(samples)
	if outage < 150 || outage > 250 {
		t.Errorf("total outage = %v ms, want ≈ 4×50 ms", outage)
	}
	// Signal recovers within the measured recovery time of each switch.
	for i := 1; i < len(samples); i++ {
		if !samples[i].Signal && samples[i-1].Signal {
			// A switch began; it must end within recovery+1 sample.
			deadline := samples[i].TimeS + (ReconfigRecoveryMS+10)/1000
			recovered := false
			for j := i; j < len(samples) && samples[j].TimeS <= deadline; j++ {
				if samples[j].Signal {
					recovered = true
					break
				}
			}
			if !recovered {
				t.Fatalf("signal not recovered within %v ms after t=%v",
					ReconfigRecoveryMS, samples[i].TimeS)
			}
		}
	}
}

func TestReconfigExperimentCustomRecovery(t *testing.T) {
	a, b := TestbedPaths()
	exp := ReconfigExperiment{
		Seed: 2, DurationS: 10, IntervalS: 2, SampleMS: 10,
		PathA: a, PathB: b, RecoveryMS: 70, // the two-hut measurement
	}
	samples, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	outage := OutageMS(samples)
	if outage < 4*70-40 || outage > 4*70+40 {
		t.Errorf("outage = %v ms, want ≈ 4×70 ms", outage)
	}
}

func TestReconfigExperimentRejectsInfeasiblePath(t *testing.T) {
	bad := []Element{{Kind: Amp}, {Kind: Span, LengthKM: 200}, {Kind: Amp}}
	_, good := TestbedPaths()
	if _, err := (ReconfigExperiment{Seed: 1, DurationS: 1, IntervalS: 1, SampleMS: 10, PathA: bad, PathB: good}).Run(); err == nil {
		t.Error("expected error for infeasible path A")
	}
	if _, err := (ReconfigExperiment{Seed: 1, DurationS: 1, IntervalS: 1, SampleMS: 10, PathA: good, PathB: bad}).Run(); err == nil {
		t.Error("expected error for infeasible path B")
	}
}

func TestReconfigExperimentRejectsBadDurations(t *testing.T) {
	a, b := TestbedPaths()
	if _, err := (ReconfigExperiment{Seed: 1, IntervalS: 1, SampleMS: 10, PathA: a, PathB: b}).Run(); err == nil {
		t.Error("expected error for zero duration")
	}
}

func TestReconfigDeterministic(t *testing.T) {
	a, b := TestbedPaths()
	exp := ReconfigExperiment{Seed: 9, DurationS: 5, IntervalS: 1, SampleMS: 10, PathA: a, PathB: b}
	s1, err1 := exp.Run()
	s2, err2 := exp.Run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sample %d differs across identical runs", i)
		}
	}
}

func TestOutageHelpers(t *testing.T) {
	if OutageMS(nil) != 0 || OutageMS([]BERSample{{}}) != 0 {
		t.Error("OutageMS of short series should be 0")
	}
	if MaxBER(nil) != 0 {
		t.Error("MaxBER(nil) should be 0")
	}
}
