package topoapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iris/internal/core"
	"iris/internal/history"
	"iris/internal/hose"
	"iris/internal/plan"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.State == nil {
		cfg.State = func() Snapshot { return Snapshot{} } // region not ready
	}
	mux := http.NewServeMux()
	New(cfg).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// checkJSONError asserts the response carries the given status and a
// JSON {"error": ...} body, returning the message.
func checkJSONError(t *testing.T, res *http.Response, wantCode int) string {
	t.Helper()
	defer res.Body.Close()
	if res.StatusCode != wantCode {
		t.Fatalf("status = %d, want %d", res.StatusCode, wantCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content-type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatalf("body is not JSON: %v", err)
	}
	if body.Error == "" {
		t.Fatal("empty error field")
	}
	return body.Error
}

// TestNotReady: every topology query answers 503 with a JSON error until
// the region commits a first allocation.
func TestNotReady(t *testing.T) {
	srv := newTestServer(t, Config{})
	for _, path := range []string{
		"/api/paths?from=0&to=1",
		"/api/critical",
		"/api/whatif?scenario=cut:0",
	} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, res, http.StatusServiceUnavailable)
	}
}

// TestMethodNotAllowed: the API is read-only.
func TestMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t, Config{})
	for _, path := range []string{"/api/paths", "/api/critical", "/api/whatif", "/api/history", "/api/history/1"} {
		res, err := srv.Client().Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		checkJSONError(t, res, http.StatusMethodNotAllowed)
	}
}

// TestHistoryDisabled: without a lake the history endpoints are 404, not
// a crash or an empty listing.
func TestHistoryDisabled(t *testing.T) {
	srv := newTestServer(t, Config{Lake: nil})
	for _, path := range []string{"/api/history", "/api/history/7", "/api/history/diff?from=1&to=2"} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		msg := checkJSONError(t, res, http.StatusNotFound)
		if !strings.Contains(msg, "disabled") {
			t.Fatalf("%s: error %q does not say history is disabled", path, msg)
		}
	}
}

// seedLake appends n records with simple one-pair diffs, reconfig IDs
// 101, 102, ...
func seedLake(t *testing.T, n int) *history.Lake {
	t.Helper()
	lake, err := history.New(history.Config{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		lake.Append(history.Record{
			ReconfigID: uint64(101 + i),
			Trigger:    history.TriggerConverge,
			At:         time.Date(2026, 1, 1, 0, i, 0, 0, time.UTC),
			Pairs: []core.PairDelta{{
				A: 2, B: 3,
				OldFibers: i, NewFibers: i + 1,
			}},
		})
	}
	return lake
}

// TestHistoryEndpoints exercises the lake-backed listing, item and diff
// endpoints without a deployment (the ducts projection needs one; the
// pair diffs do not).
func TestHistoryEndpoints(t *testing.T) {
	srv := newTestServer(t, Config{Lake: seedLake(t, 3)})

	var listing struct {
		Total   int               `json:"total"`
		Evicted int               `json:"evicted"`
		Records []history.Summary `json:"records"`
	}
	res, err := srv.Client().Get(srv.URL + "/api/history")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if listing.Total != 3 || len(listing.Records) != 3 {
		t.Fatalf("listing total=%d len=%d, want 3", listing.Total, len(listing.Records))
	}
	if listing.Records[0].ReconfigID != 101 || listing.Records[2].ReconfigID != 103 {
		t.Fatalf("listing not in Seq order: %+v", listing.Records)
	}

	// ?n= limits to the most recent rows.
	res, err = srv.Client().Get(srv.URL + "/api/history?n=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(listing.Records) != 1 || listing.Records[0].ReconfigID != 103 {
		t.Fatalf("n=1 listing wrong: %+v", listing.Records)
	}

	// Item fetch round-trips the record.
	var item struct {
		Record history.Record `json:"record"`
	}
	res, err = srv.Client().Get(srv.URL + "/api/history/102")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&item); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if item.Record.ReconfigID != 102 || len(item.Record.Pairs) != 1 {
		t.Fatalf("item fetch wrong: %+v", item.Record)
	}

	// Unknown ID and malformed ID.
	res, _ = srv.Client().Get(srv.URL + "/api/history/999")
	checkJSONError(t, res, http.StatusNotFound)
	res, _ = srv.Client().Get(srv.URL + "/api/history/xyz")
	checkJSONError(t, res, http.StatusBadRequest)

	// Diff composes the net change over (from, to]: 101→103 nets the
	// pair's earliest Old (1) against its latest New (3).
	var diff struct {
		Reconfigs []uint64         `json:"reconfigs"`
		Pairs     []core.PairDelta `json:"pairs"`
	}
	res, err = srv.Client().Get(srv.URL + "/api/history/diff?from=101&to=103")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&diff); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(diff.Reconfigs) != 2 || diff.Reconfigs[0] != 102 || diff.Reconfigs[1] != 103 {
		t.Fatalf("diff reconfigs = %v, want [102 103]", diff.Reconfigs)
	}
	if len(diff.Pairs) != 1 {
		t.Fatalf("diff pairs = %+v, want one net delta", diff.Pairs)
	}
	if pd := diff.Pairs[0]; pd.OldFibers != 1 || pd.NewFibers != 3 {
		t.Fatalf("net delta %+v, want old=1 new=3", pd)
	}

	// Reversed order is a 400, missing endpoint a 404.
	res, _ = srv.Client().Get(srv.URL + "/api/history/diff?from=103&to=101")
	checkJSONError(t, res, http.StatusBadRequest)
	res, _ = srv.Client().Get(srv.URL + "/api/history/diff?from=101&to=999")
	checkJSONError(t, res, http.StatusNotFound)
	res, _ = srv.Client().Get(srv.URL + "/api/history/diff?from=101")
	checkJSONError(t, res, http.StatusBadRequest)
}

// TestDiffIdentity: from == to spans no records and nets no change.
func TestDiffIdentity(t *testing.T) {
	srv := newTestServer(t, Config{Lake: seedLake(t, 2)})
	var diff struct {
		Reconfigs []uint64         `json:"reconfigs"`
		Pairs     []core.PairDelta `json:"pairs"`
	}
	res, err := srv.Client().Get(srv.URL + "/api/history/diff?from=101&to=101")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("identity diff = %d, want 200", res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(&diff); err != nil {
		t.Fatal(err)
	}
	if len(diff.Reconfigs) != 0 || len(diff.Pairs) != 0 {
		t.Fatalf("identity diff not empty: %+v", diff)
	}
}

// TestOccupancyAccounting pins the duct-occupancy projection against the
// books' accounting rules: full fibers skip cut-through ducts, residual
// counts users not wavelengths.
func TestOccupancyAccounting(t *testing.T) {
	dep := &core.Deployment{
		Plan: &plan.Plan{
			Paths: map[hose.Pair]*plan.PathInfo{
				{A: 2, B: 3}: {Ducts: []int{0, 4, 1}, CutDucts: []int{4}},
				{A: 2, B: 4}: {Ducts: []int{0, 2}},
			},
		},
	}
	alloc := core.Allocation{
		Fibers: map[hose.Pair]int{
			{A: 2, B: 3}: 2,
			{A: 2, B: 4}: 1,
		},
		Residual: map[hose.Pair]int{
			{A: 2, B: 3}: 5, // 5 wavelengths = 1 user per duct
		},
	}
	fibers, residual := occupancy(dep, alloc)
	if fibers[0] != 3 || fibers[1] != 2 || fibers[2] != 1 {
		t.Fatalf("fiber occupancy wrong: %v", fibers)
	}
	if fibers[4] != 0 {
		t.Fatalf("cut-through duct 4 counted full fibers: %v", fibers)
	}
	if residual[0] != 1 || residual[4] != 1 || residual[1] != 1 || residual[2] != 0 {
		t.Fatalf("residual occupancy wrong: %v", residual)
	}
}
