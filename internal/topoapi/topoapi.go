// Package topoapi is the region's topology intelligence API: the
// operator-facing query surface mounted on irisd (and proxied per region
// by irisfleet) that answers, against the live fabric,
//
//	GET /api/paths?from=&to=&k=     k-shortest duct paths with per-hop fiber occupancy
//	GET /api/critical?k=            ducts ranked by the hose demand their loss strands
//	GET /api/whatif?scenario=       survivability audit of a hypothetical failure
//	GET /api/whatif?audit=envelope  live demand vs the committed robust envelope
//	GET /api/history                reconfiguration history (the history lake)
//	GET /api/history/{reconfig_id}  one record with span tree and alloc diff
//	GET /api/history/diff?from=&to= net topology change between two reconfigs
//
// The server owns no state: a Config.State callback snapshots the
// daemon's committed deployment, allocation and demand on every request,
// and Config.Lake is the history store the daemon and chaos cycles
// append to. Derived machinery (base graph, survivability auditor) is
// cached per deployment pointer, so steady-state queries never re-plan.
package topoapi

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"iris/internal/chaos"
	"iris/internal/core"
	"iris/internal/graph"
	"iris/internal/history"
	"iris/internal/hose"
	"iris/internal/plan"
	"iris/internal/robust"
	"iris/internal/trace"
	"iris/internal/traffic"
)

// Snapshot is the daemon state one request is answered against. Alloc
// and Demand must be safe for the server to read (committed immutable
// snapshots or copies); Dep is the deployment they belong to.
type Snapshot struct {
	Dep    *core.Deployment
	Alloc  core.Allocation
	Demand map[hose.Pair]float64
	// Robust is the committed robust envelope (nil outside robust mode);
	// /api/whatif?audit=envelope audits the live demand against it.
	Robust *robust.Envelope
	// Ready is false until the daemon has committed a first allocation;
	// topology queries answer 503 until then.
	Ready bool
}

// Config wires a Server to its region.
type Config struct {
	// State snapshots the live region; required.
	State func() Snapshot
	// Lake is the reconfiguration history store; nil serves the history
	// endpoints as 404 "history disabled".
	Lake *history.Lake
}

// Server answers topology intelligence queries. Safe for concurrent use.
type Server struct {
	cfg Config

	mu      sync.Mutex
	dep     *core.Deployment // deployment the cached tools were built for
	base    *graph.Graph
	auditor *chaos.Auditor
}

// New returns a server for the given region wiring.
func New(cfg Config) *Server {
	return &Server{cfg: cfg}
}

// Register mounts the API endpoints on a mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/api/paths", s.handlePaths)
	mux.HandleFunc("/api/critical", s.handleCritical)
	mux.HandleFunc("/api/whatif", s.handleWhatIf)
	mux.HandleFunc("/api/history", s.handleHistory)
	mux.HandleFunc("/api/history/", s.handleHistoryItem)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// jsonError writes a JSON error body, so API consumers never have to
// sniff between payloads and plain-text errors.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// snapshot fetches the live state, handling not-ready and non-GET.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) (Snapshot, bool) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return Snapshot{}, false
	}
	snap := s.cfg.State()
	if !snap.Ready || snap.Dep == nil {
		jsonError(w, http.StatusServiceUnavailable, "region has not committed an allocation yet")
		return Snapshot{}, false
	}
	return snap, true
}

// tools returns the base graph and auditor for a deployment, rebuilding
// the cache when the deployment pointer changes (a replan swaps it).
func (s *Server) tools(dep *core.Deployment) (*graph.Graph, *chaos.Auditor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dep != dep {
		base := dep.Plan.Input.Base
		if base == nil {
			base = plan.BaseGraph(dep.Region.Map)
		}
		s.base = base
		s.auditor = chaos.NewAuditor(dep.Plan)
		s.dep = dep
	}
	return s.base, s.auditor
}

func intQuery(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// inSorted reports membership in a small ascending slice (cut-duct lists
// hold a handful of entries).
func inSorted(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
		if x > v {
			return false
		}
	}
	return false
}

// occupancy derives per-duct fiber usage from an allocation, mirroring
// the live books' accounting: full fibers skip ducts covered by the
// pair's cut-through, residual counts duct users.
func occupancy(dep *core.Deployment, alloc core.Allocation) (fibers, residual map[int]int) {
	fibers = make(map[int]int)
	residual = make(map[int]int)
	pairs := make(map[hose.Pair]bool, len(alloc.Fibers))
	for p := range alloc.Fibers {
		pairs[p] = true
	}
	for p := range alloc.Residual {
		pairs[p] = true
	}
	for p := range pairs {
		info, ok := dep.Plan.Paths[p]
		if !ok {
			continue
		}
		full, rem := alloc.Fibers[p], alloc.Residual[p]
		for _, duct := range info.Ducts {
			if full != 0 && !inSorted(info.CutDucts, duct) {
				fibers[duct] += full
			}
			if rem > 0 {
				residual[duct]++
			}
		}
	}
	return fibers, residual
}

// Hop is one duct of a reported path, with its live fiber occupancy.
type Hop struct {
	Duct             int     `json:"duct"`
	From             int     `json:"from"`
	To               int     `json:"to"`
	KM               float64 `json:"km"`
	ProvisionedPairs int     `json:"provisioned_pairs"`
	UsedFibers       int     `json:"used_fibers"`
	ResidualUsers    int     `json:"residual_users"`
	FreePairs        int     `json:"free_pairs"`
}

// PathOut is one k-shortest path.
type PathOut struct {
	Nodes []int    `json:"nodes"`
	Names []string `json:"names"`
	KM    float64  `json:"km"`
	Hops  []Hop    `json:"hops"`
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	m := snap.Dep.Region.Map
	q := r.URL.Query()
	from, errF := intQuery(q, "from", -1)
	to, errT := intQuery(q, "to", -1)
	if errF != nil || errT != nil || from < 0 || from >= len(m.Nodes) || to < 0 || to >= len(m.Nodes) {
		jsonError(w, http.StatusBadRequest, "paths needs from= and to= node IDs in [0,%d)", len(m.Nodes))
		return
	}
	k, err := intQuery(q, "k", 3)
	if err != nil || k <= 0 {
		jsonError(w, http.StatusBadRequest, "bad k")
		return
	}
	if k > 16 {
		k = 16
	}
	base, _ := s.tools(snap.Dep)
	fibers, residual := occupancy(snap.Dep, snap.Alloc)
	paths := base.KShortestPaths(from, to, k)
	out := make([]PathOut, 0, len(paths))
	for _, p := range paths {
		po := PathOut{Nodes: p.Nodes, KM: p.Dist, Hops: make([]Hop, 0, len(p.Edges))}
		for _, n := range p.Nodes {
			po.Names = append(po.Names, m.Nodes[n].Name)
		}
		for i, e := range p.Edges {
			prov := 0
			if du := snap.Dep.Plan.Ducts[e.ID]; du != nil {
				prov = du.TotalPairs()
			}
			base := 0
			if du := snap.Dep.Plan.Ducts[e.ID]; du != nil {
				base = du.BasePairs
			}
			po.Hops = append(po.Hops, Hop{
				Duct:             e.ID,
				From:             p.Nodes[i],
				To:               p.Nodes[i+1],
				KM:               e.W,
				ProvisionedPairs: prov,
				UsedFibers:       fibers[e.ID],
				ResidualUsers:    residual[e.ID],
				FreePairs:        base - fibers[e.ID],
			})
		}
		out = append(out, po)
	}
	writeJSON(w, map[string]any{"from": from, "to": to, "k": k, "paths": out})
}

// CriticalDuct is one duct of the criticality ranking.
type CriticalDuct struct {
	Duct int     `json:"duct"`
	From int     `json:"from"`
	To   int     `json:"to"`
	KM   float64 `json:"km"`
	// Bridge: removing this duct alone disconnects the base graph.
	Bridge bool `json:"bridge"`
	// StrandedDemand is the worst hose demand (wavelengths) stranded by
	// any examined ≤k cut set containing this duct.
	StrandedDemand float64 `json:"stranded_demand"`
	// SoloStranded is the demand stranded when only this duct is cut.
	SoloStranded float64 `json:"solo_stranded"`
	// MinCutPairs counts live DC pairs whose max-flow min cut crosses
	// this duct — pairs this duct bottlenecks.
	MinCutPairs int `json:"min_cut_pairs"`
}

// strandedDemand sums the demand of pairs split across components of the
// degraded graph.
func strandedDemand(base *graph.Graph, cut map[int]bool, demand map[hose.Pair]float64) float64 {
	comps := base.WithoutEdges(cut).Components()
	total := 0.0
	for p, d := range demand {
		if comps[p.A] != comps[p.B] {
			total += d
		}
	}
	return total
}

func (s *Server) handleCritical(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	k, err := intQuery(r.URL.Query(), "k", 2)
	if err != nil || k <= 0 {
		jsonError(w, http.StatusBadRequest, "bad k")
		return
	}
	if k > 3 {
		k = 3 // exhaustive enumeration; deeper cuts explode combinatorially
	}
	base, _ := s.tools(snap.Dep)
	m := snap.Dep.Region.Map

	ids := make([]int, 0, base.NumEdges())
	rows := make(map[int]*CriticalDuct, base.NumEdges())
	for _, e := range base.Edges() {
		ids = append(ids, e.ID)
		rows[e.ID] = &CriticalDuct{Duct: e.ID, From: e.U, To: e.V, KM: e.W}
	}
	for _, id := range base.Bridges() {
		rows[id].Bridge = true
	}

	// Exhaustive ≤k cut audit: attribute each cut set's stranded demand
	// to every member duct (worst case per duct).
	graph.FailureScenarios(ids, k, func(cut map[int]bool) {
		if len(cut) == 0 {
			return
		}
		stranded := strandedDemand(base, cut, snap.Demand)
		if stranded == 0 {
			return
		}
		for id := range cut {
			row := rows[id]
			if stranded > row.StrandedDemand {
				row.StrandedDemand = stranded
			}
			if len(cut) == 1 {
				row.SoloStranded = stranded
			}
		}
	})

	// Min-cut membership per live DC pair, over the provisioned fiber
	// (base + cut-through + residual, the same capacities the
	// survivability auditor flows over).
	capByDuct := make(map[int]int, len(snap.Dep.Plan.Ducts))
	for id, du := range snap.Dep.Plan.Ducts {
		capByDuct[id] = du.TotalPairs()
	}
	pairs := make([]hose.Pair, 0, len(snap.Demand))
	for p, d := range snap.Demand {
		if d > 0 {
			pairs = append(pairs, p)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	if len(pairs) > 0 {
		f := graph.NewFlowNetwork(len(m.Nodes))
		for _, id := range ids {
			total := capByDuct[id]
			if total == 0 {
				continue
			}
			d := m.Ducts[id]
			f.AddArc(d.A, d.B, float64(total))
			f.AddArc(d.B, d.A, float64(total))
		}
		for i, p := range pairs {
			if i > 0 {
				f.Reset()
			}
			f.MaxFlow(p.A, p.B)
			seen := f.MinCutReachable(p.A)
			for _, id := range ids {
				if capByDuct[id] == 0 {
					continue
				}
				d := m.Ducts[id]
				if seen[d.A] != seen[d.B] {
					rows[id].MinCutPairs++
				}
			}
		}
	}

	out := make([]CriticalDuct, 0, len(rows))
	for _, row := range rows {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StrandedDemand != b.StrandedDemand {
			return a.StrandedDemand > b.StrandedDemand
		}
		if a.SoloStranded != b.SoloStranded {
			return a.SoloStranded > b.SoloStranded
		}
		if a.MinCutPairs != b.MinCutPairs {
			return a.MinCutPairs > b.MinCutPairs
		}
		return a.Duct < b.Duct
	})
	writeJSON(w, map[string]any{"k": k, "ducts": out})
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	m := snap.Dep.Region.Map
	q := r.URL.Query()
	if q.Get("audit") == "envelope" || q.Get("envelope") != "" {
		s.handleEnvelopeAudit(w, snap)
		return
	}
	var sc chaos.Scenario
	var err error
	if spec := q.Get("scenario"); spec != "" {
		sc, err = chaos.ParseScenario(m, spec)
	} else if q.Get("kind") != "" {
		sc, err = chaos.ScenarioFromQuery(m, q)
	} else {
		jsonError(w, http.StatusBadRequest, "whatif needs scenario= (e.g. cut:3,7), kind= parameters, or audit=envelope")
		return
	}
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	base, auditor := s.tools(snap.Dep)
	res := auditor.Audit(sc)
	writeJSON(w, map[string]any{
		"scenario":        sc,
		"result":          res,
		"stranded_demand": strandedDemand(base, sc.CutSet(), snap.Demand),
	})
}

// handleEnvelopeAudit answers /api/whatif?audit=envelope: where the live
// demand sits relative to the committed robust envelope — contained or
// escaped, the worst per-pair utilisation, and the escaping pairs.
func (s *Server) handleEnvelopeAudit(w http.ResponseWriter, snap Snapshot) {
	env := snap.Robust
	if env == nil {
		jsonError(w, http.StatusNotFound, "no robust envelope committed (run with -robust)")
		return
	}
	live := traffic.NewMatrix(snap.Dep.Region.Map.DCs())
	for p, dm := range snap.Demand {
		live.Set(p, dm)
	}
	escapes := env.Escapes(live)
	if escapes == nil {
		escapes = []robust.Escape{}
	}
	util := env.Utilization(live)
	if math.IsInf(util, 0) {
		// JSON has no Inf; -1 marks demand on a pair the envelope holds
		// zero capacity for.
		util = -1
	}
	writeJSON(w, map[string]any{
		"envelope": map[string]any{
			"matrices": env.Matrices,
			"headroom": env.Headroom,
			"clamped":  env.Clamped,
			"pairs":    len(env.Demand),
			"total":    env.Total,
		},
		"contained":   env.Contains(live),
		"utilization": util,
		"escapes":     escapes,
	})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.Lake == nil {
		jsonError(w, http.StatusNotFound, "history disabled")
		return
	}
	n, err := intQuery(r.URL.Query(), "n", 0)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad n")
		return
	}
	writeJSON(w, map[string]any{
		"total":   s.cfg.Lake.Len(),
		"evicted": s.cfg.Lake.Evicted(),
		"records": s.cfg.Lake.Summaries(n),
	})
}

func (s *Server) handleHistoryItem(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.Lake == nil {
		jsonError(w, http.StatusNotFound, "history disabled")
		return
	}
	suffix := strings.TrimPrefix(r.URL.Path, "/api/history/")
	if suffix == "diff" {
		s.handleHistoryDiff(w, r)
		return
	}
	id, err := strconv.ParseUint(suffix, 10, 64)
	if err != nil || id == 0 {
		jsonError(w, http.StatusBadRequest, "bad reconfig id %q", suffix)
		return
	}
	rec, ok := s.cfg.Lake.Get(id)
	if !ok {
		jsonError(w, http.StatusNotFound, "no history record for reconfig %d", id)
		return
	}
	writeJSON(w, map[string]any{"record": rec, "tree": trace.Tree(rec.Spans)})
}

func (s *Server) handleHistoryDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fromID, errF := strconv.ParseUint(q.Get("from"), 10, 64)
	toID, errT := strconv.ParseUint(q.Get("to"), 10, 64)
	if errF != nil || errT != nil {
		jsonError(w, http.StatusBadRequest, "diff needs from= and to= reconfig IDs")
		return
	}
	fromRec, okF := s.cfg.Lake.Get(fromID)
	toRec, okT := s.cfg.Lake.Get(toID)
	if !okF || !okT {
		missing := fromID
		if okF {
			missing = toID
		}
		jsonError(w, http.StatusNotFound, "no history record for reconfig %d", missing)
		return
	}
	if fromRec.Seq > toRec.Seq {
		jsonError(w, http.StatusBadRequest, "reconfig %d (seq %d) is later than %d (seq %d)",
			fromID, fromRec.Seq, toID, toRec.Seq)
		return
	}

	// Net change across (from, to]: compose each pair's earliest Old with
	// its latest New, in Seq order.
	type bounds struct{ old, new core.PairDelta }
	net := make(map[hose.Pair]*bounds)
	var reconfigs []uint64
	for _, rec := range s.cfg.Lake.Records() {
		if rec.Seq <= fromRec.Seq || rec.Seq > toRec.Seq {
			continue
		}
		reconfigs = append(reconfigs, rec.ReconfigID)
		for _, pd := range rec.Pairs {
			b := net[pd.Pair()]
			if b == nil {
				net[pd.Pair()] = &bounds{old: pd, new: pd}
				continue
			}
			b.new = pd
		}
	}
	pairs := make([]core.PairDelta, 0, len(net))
	for _, b := range net {
		pd := core.PairDelta{
			A: b.old.A, B: b.old.B,
			OldFibers: b.old.OldFibers, OldResidual: b.old.OldResidual,
			NewFibers: b.new.NewFibers, NewResidual: b.new.NewResidual,
		}
		if pd.OldFibers == pd.NewFibers && pd.OldResidual == pd.NewResidual {
			continue
		}
		pairs = append(pairs, pd)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	resp := map[string]any{
		"from":      fromID,
		"to":        toID,
		"reconfigs": reconfigs,
		"pairs":     pairs,
	}
	if snap := s.cfg.State(); snap.Ready && snap.Dep != nil {
		resp["ducts"] = snap.Dep.DuctDeltas(pairs)
	}
	writeJSON(w, resp)
}
