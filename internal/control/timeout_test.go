package control

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// stallableDevice wraps a real device and, while stalled, blocks every
// operation long enough to blow any short RPC deadline.
type stallableDevice struct {
	Device
	mu      sync.Mutex
	stall   time.Duration
	stalled bool
}

func (d *stallableDevice) setStalled(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stalled = on
}

func (d *stallableDevice) Handle(op string, args map[string]any) (map[string]any, error) {
	d.mu.Lock()
	stalled := d.stalled
	d.mu.Unlock()
	if stalled {
		time.Sleep(d.stall)
	}
	return d.Device.Handle(op, args)
}

// TestCallTimesOutOnHungDevice: a device that stops answering must fail
// the call by the RPC deadline instead of wedging the controller forever
// — and once it answers again, the client must transparently reconnect.
func TestCallTimesOutOnHungDevice(t *testing.T) {
	dev := &stallableDevice{Device: NewOSS(4, 0), stall: 2 * time.Second}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, l, dev)
	}()
	defer func() { cancel(); l.Close(); <-done }()

	cl, err := DialDeviceTimeout(l.Addr().String(), time.Second, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Call("state", nil); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}

	dev.setStalled(true)
	start := time.Now()
	if _, err := cl.Call("state", nil); err == nil {
		t.Fatal("call to hung device succeeded")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("hung call took %v, want ~50ms deadline", d)
	}

	// Heal the device: the next call redials and succeeds.
	dev.setStalled(false)
	if _, err := cl.Call("state", nil); err != nil {
		t.Errorf("call after heal failed (no reconnect?): %v", err)
	}
}

// TestClosedClientDoesNotRedial: Close is permanent.
func TestClosedClientDoesNotRedial(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, l, NewOSS(4, 0))
	}()
	defer func() { cancel(); l.Close(); <-done }()

	cl, err := DialDevice(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.Call("state", nil); err == nil {
		t.Error("call on closed client succeeded")
	}
}

// TestDeviceErrorAttribution: controller call failures carry the device
// name in a DeviceError so supervisors can attribute them.
func TestDeviceErrorAttribution(t *testing.T) {
	tb, err := StartTestbed(map[string]Device{"oss-a": NewOSS(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	_, err = tb.Controller.Call("oss-a", "connect", map[string]any{"in": 99, "out": 0})
	if err == nil {
		t.Fatal("out-of-range connect succeeded")
	}
	var de *DeviceError
	if !errors.As(err, &de) || de.Device != "oss-a" {
		t.Errorf("err = %v, want DeviceError for oss-a", err)
	}

	// Phase errors from Reconfigure preserve the attribution through
	// wrapping.
	_, err = tb.Controller.Reconfigure(context.Background(), Change{
		Switches: []OSSOp{{Device: "oss-a", In: 99, Out: 0}},
	})
	if !errors.As(err, &de) || de.Device != "oss-a" {
		t.Errorf("reconfigure err = %v, want wrapped DeviceError for oss-a", err)
	}
}
