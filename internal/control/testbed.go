package control

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
)

// Testbed hosts a set of device agents on loopback TCP listeners and a
// controller connected to all of them — the in-process equivalent of the
// paper's hardware testbed (Fig. 13a). It exists for tests, examples and
// the irisctl demo.
type Testbed struct {
	Controller *Controller
	// Devices gives direct access to the device implementations, e.g. to
	// read their operation logs.
	Devices map[string]Device

	cancel    context.CancelFunc
	listeners []net.Listener
	wg        sync.WaitGroup
}

// StartTestbed serves each named device on its own ephemeral loopback
// listener and dials a controller to all of them, with default transport
// deadlines.
func StartTestbed(devices map[string]Device) (*Testbed, error) {
	return StartTestbedWithOptions(devices, DialOptions{})
}

// StartTestbedWithOptions is StartTestbed with explicit controller
// transport deadlines (tests use short RPC timeouts to exercise hung
// devices quickly).
func StartTestbedWithOptions(devices map[string]Device, opts DialOptions) (*Testbed, error) {
	ctx, cancel := context.WithCancel(context.Background())
	tb := &Testbed{Devices: devices, cancel: cancel}

	names := make([]string, 0, len(devices))
	for name := range devices {
		names = append(names, name)
	}
	sort.Strings(names)

	var specs []DeviceSpec
	for _, name := range names {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Close()
			return nil, fmt.Errorf("control: testbed listen: %w", err)
		}
		tb.listeners = append(tb.listeners, l)
		specs = append(specs, DeviceSpec{Name: name, Addr: l.Addr().String()})
		dev := devices[name]
		tb.wg.Add(1)
		go func(l net.Listener, dev Device) {
			defer tb.wg.Done()
			// Serve returns nil on listener close; other errors surface
			// through failed controller calls in tests.
			_ = Serve(ctx, l, dev)
		}(l, dev)
	}

	ctl, err := DialWithOptions(specs, opts)
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.Controller = ctl
	return tb, nil
}

// Close shuts down the controller, the listeners, and the serving
// goroutines.
func (tb *Testbed) Close() {
	if tb.Controller != nil {
		tb.Controller.Close()
	}
	tb.cancel()
	for _, l := range tb.listeners {
		l.Close()
	}
	tb.wg.Wait()
}
