package control

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sort"
	"sync"
	"time"

	"iris/internal/trace"
)

// DeviceSpec names one device agent and where to reach it.
type DeviceSpec struct {
	Name string
	Addr string
}

// Controller is the centralized Iris controller (§5.2). It holds one
// connection per device and executes reconfigurations as strictly ordered
// phases: drain traffic, switch fibers, retune wavelengths and refill
// spectrum, then undrain.
type Controller struct {
	mu      sync.Mutex
	devices map[string]*Client
}

// DialOptions configures the controller's per-device transports. Zero
// values select the package defaults.
type DialOptions struct {
	DialTimeout time.Duration // connection establishment bound
	RPCTimeout  time.Duration // end-to-end bound per device call
}

// Dial connects to all device agents with default transport deadlines. On
// any failure it closes the connections already made and returns the error.
func Dial(specs []DeviceSpec) (*Controller, error) {
	return DialWithOptions(specs, DialOptions{})
}

// DialWithOptions connects to all device agents with explicit transport
// deadlines.
func DialWithOptions(specs []DeviceSpec, opts DialOptions) (*Controller, error) {
	c := &Controller{devices: make(map[string]*Client, len(specs))}
	for _, s := range specs {
		if _, dup := c.devices[s.Name]; dup {
			c.Close()
			return nil, fmt.Errorf("control: duplicate device name %q", s.Name)
		}
		cl, err := DialDeviceTimeout(s.Addr, opts.DialTimeout, opts.RPCTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.devices[s.Name] = cl
	}
	return c, nil
}

// DeviceError tags an error with the device whose call produced it, so a
// supervisor (the irisd breaker) can attribute failures to the right
// device. Use errors.As to recover it from wrapped phase errors.
type DeviceError struct {
	Device string
	Err    error
}

func (e *DeviceError) Error() string { return fmt.Sprintf("device %s: %v", e.Device, e.Err) }

// Unwrap exposes the underlying transport or device error.
func (e *DeviceError) Unwrap() error { return e.Err }

// Close tears down all device connections.
func (c *Controller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.devices {
		cl.Close()
	}
	c.devices = nil
}

// Call forwards one operation to a named device.
func (c *Controller) Call(device, op string, args map[string]any) (map[string]any, error) {
	c.mu.Lock()
	cl, ok := c.devices[device]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("control: unknown device %q", device)
	}
	res, err := cl.Call(op, args)
	if err != nil {
		return nil, &DeviceError{Device: device, Err: err}
	}
	return res, nil
}

// tracedCall runs one device RPC under a child span of parent, carrying
// the device attribution and the deadline outcome. A nil parent (no
// tracer, or an untraced caller) records nothing and adds no overhead
// beyond the nil checks.
func (c *Controller) tracedCall(parent *trace.Span, device, op string, args map[string]any) (map[string]any, error) {
	sp := parent.Child(op)
	sp.SetDevice(device)
	res, err := c.Call(device, op, args)
	if err != nil {
		sp.Fail(err)
		if isDeadline(err) {
			sp.SetAttr("deadline_exceeded")
		}
	}
	sp.Finish()
	return res, err
}

// isDeadline reports whether an RPC error is a transport or context
// deadline expiry — the outcome the per-RPC spans single out, since a
// deadline means the device wedged rather than refused.
func isDeadline(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Devices returns the connected device names in sorted order.
func (c *Controller) Devices() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.devices))
	for n := range c.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OSSOp is one space-switch operation.
type OSSOp struct {
	Device     string
	In, Out    int
	Disconnect bool // tear down the circuit from In instead of creating one
}

// TransceiverOp addresses one transceiver in a bank.
type TransceiverOp struct {
	Device     string
	Idx        int
	Wavelength int // used by retune operations
}

// FillOp sets a channel emulator's ASE-filled channel set.
type FillOp struct {
	Device   string
	Channels []int
}

// AmpOp enables or disables an amplifier group at a site.
type AmpOp struct {
	Device string
	Enable bool
}

// Change is one reconfiguration: the controller first drains the listed
// transceivers (no live traffic during switching, §5.2), then executes the
// OSS operations network-wide, then the per-DC wavelength retunes and
// spectrum fills, and finally re-enables the undrain set.
type Change struct {
	Drain    []TransceiverOp
	Switches []OSSOp
	// Amps run after the switches and before traffic returns: an
	// amplifier must be providing gain before its path goes live, and
	// unused amplifiers are parked to keep ASE out of dark fibers.
	Amps    []AmpOp
	Retunes []TransceiverOp
	Fills   []FillOp
	Undrain []TransceiverOp
}

// PhaseTiming reports how long one phase of a reconfiguration took.
type PhaseTiming struct {
	Name     string
	Duration time.Duration
	Ops      int
}

// Report summarises an executed reconfiguration.
type Report struct {
	Phases []PhaseTiming
	Total  time.Duration
}

// Reconfigure executes the change. Phases run strictly in order;
// operations within a phase run concurrently (they touch independent
// devices or independent ports). The first error aborts subsequent phases.
//
// When ctx carries a span (trace.ContextWith — the daemon threads its
// reconfig root through here), each phase becomes a child span with
// per-device children, so the flight recorder captures the §5.2 sequence
// drain → switch → amps → retune → fill → undrain with per-device
// durations and deadline outcomes.
func (c *Controller) Reconfigure(ctx context.Context, ch Change) (Report, error) {
	var rep Report
	start := time.Now()
	parent := trace.FromContext(ctx)
	phases := []struct {
		name string
		run  func(sp *trace.Span) error
		ops  int
	}{
		{"drain", func(sp *trace.Span) error { return c.transceiverPhase(ctx, sp, ch.Drain, "disable") }, len(ch.Drain)},
		{"switch", func(sp *trace.Span) error { return c.switchPhase(ctx, sp, ch.Switches) }, len(ch.Switches)},
		{"amps", func(sp *trace.Span) error { return c.ampPhase(ctx, sp, ch.Amps) }, len(ch.Amps)},
		{"retune", func(sp *trace.Span) error { return c.transceiverPhase(ctx, sp, ch.Retunes, "tune") }, len(ch.Retunes)},
		{"fill", func(sp *trace.Span) error { return c.fillPhase(ctx, sp, ch.Fills) }, len(ch.Fills)},
		{"undrain", func(sp *trace.Span) error { return c.transceiverPhase(ctx, sp, ch.Undrain, "enable") }, len(ch.Undrain)},
	}
	for _, ph := range phases {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		sp := parent.Child(ph.name)
		t0 := time.Now()
		if err := ph.run(sp); err != nil {
			sp.Fail(err)
			sp.Finish()
			return rep, fmt.Errorf("control: %s phase: %w", ph.name, err)
		}
		sp.Finish()
		rep.Phases = append(rep.Phases, PhaseTiming{Name: ph.name, Duration: time.Since(t0), Ops: ph.ops})
	}
	rep.Total = time.Since(start)
	return rep, nil
}

// parallel runs fns concurrently and returns the first error.
func parallel(ctx context.Context, fns []func() error) error {
	if len(fns) == 0 {
		return nil
	}
	errs := make(chan error, len(fns))
	for _, fn := range fns {
		go func(f func() error) { errs <- f() }(fn)
	}
	var first error
	for range fns {
		select {
		case err := <-errs:
			if err != nil && first == nil {
				first = err
			}
		case <-ctx.Done():
			if first == nil {
				first = ctx.Err()
			}
		}
	}
	return first
}

// transceiverPhase executes per-transceiver operations grouped by device:
// devices run concurrently, while a device's own ops run in sequence —
// which is how the transport behaves anyway, since one Client serialises
// its calls. The grouping gives each device one span covering all of its
// ops in the phase.
func (c *Controller) transceiverPhase(ctx context.Context, sp *trace.Span, ops []TransceiverOp, op string) error {
	byDev := make(map[string][]TransceiverOp)
	for _, o := range ops {
		byDev[o.Device] = append(byDev[o.Device], o)
	}
	fns := make([]func() error, 0, len(byDev))
	for dev, group := range byDev {
		dev, group := dev, group
		fns = append(fns, func() error {
			dsp := sp.Child(op)
			dsp.SetDevice(dev)
			for _, o := range group {
				args := map[string]any{"idx": o.Idx}
				if op == "tune" {
					args["wavelength"] = o.Wavelength
				}
				if _, err := c.Call(dev, op, args); err != nil {
					dsp.Fail(err)
					if isDeadline(err) {
						dsp.SetAttr("deadline_exceeded")
					}
					dsp.Finish()
					return err
				}
			}
			dsp.Finish()
			return nil
		})
	}
	return parallel(ctx, fns)
}

// switchPhase executes the OSS operations. Disconnects precede connects so
// a circuit can move to a port being vacated in the same change; within
// each direction, operations are batched per device — the physical switch
// settles all of a batch's mirrors in one window — and devices run
// concurrently.
func (c *Controller) switchPhase(ctx context.Context, sp *trace.Span, ops []OSSOp) error {
	discByDev := make(map[string][]int)
	type xc struct{ in, out int }
	connByDev := make(map[string][]xc)
	for _, o := range ops {
		if o.Disconnect {
			discByDev[o.Device] = append(discByDev[o.Device], o.In)
		} else {
			connByDev[o.Device] = append(connByDev[o.Device], xc{o.In, o.Out})
		}
	}

	var disc []func() error
	for dev, ins := range discByDev {
		dev, ins := dev, ins
		disc = append(disc, func() error {
			_, err := c.tracedCall(sp, dev, "disconnect-batch", map[string]any{"ins": ins})
			return err
		})
	}
	if err := parallel(ctx, disc); err != nil {
		return err
	}

	var conn []func() error
	for dev, xcs := range connByDev {
		dev, xcs := dev, xcs
		conn = append(conn, func() error {
			ins := make([]int, len(xcs))
			outs := make([]int, len(xcs))
			for i, x := range xcs {
				ins[i], outs[i] = x.in, x.out
			}
			_, err := c.tracedCall(sp, dev, "connect-batch", map[string]any{"ins": ins, "outs": outs})
			return err
		})
	}
	return parallel(ctx, conn)
}

func (c *Controller) ampPhase(ctx context.Context, sp *trace.Span, ops []AmpOp) error {
	fns := make([]func() error, 0, len(ops))
	for _, o := range ops {
		o := o
		fns = append(fns, func() error {
			op := "disable"
			if o.Enable {
				op = "enable"
			}
			_, err := c.tracedCall(sp, o.Device, op, nil)
			return err
		})
	}
	return parallel(ctx, fns)
}

func (c *Controller) fillPhase(ctx context.Context, sp *trace.Span, ops []FillOp) error {
	fns := make([]func() error, 0, len(ops))
	for _, o := range ops {
		o := o
		fns = append(fns, func() error {
			chans := make([]any, len(o.Channels))
			for i, ch := range o.Channels {
				chans[i] = ch
			}
			_, err := c.tracedCall(sp, o.Device, "fill", map[string]any{"channels": chans})
			return err
		})
	}
	return parallel(ctx, fns)
}

// Expected is the controller's intended device state, used by Audit to
// verify that the network matches intent ("checking that the devices are
// in expected state", §6.2).
type Expected struct {
	// Cross maps OSS device name to its expected input→output map.
	Cross map[string]map[int]int
	// Tuned maps transceiver-bank device name to per-index wavelengths
	// (-1 for untuned).
	Tuned map[string][]int
	// Enabled maps transceiver-bank device name to per-index live state.
	Enabled map[string][]bool
	// Filled maps emulator device name to its ASE channel set (ascending).
	Filled map[string][]int
}

// Audit fetches every device's state and compares it to the expectation,
// returning an error describing the first mismatch.
func (c *Controller) Audit(exp Expected) error {
	return c.AuditCtx(context.Background(), exp)
}

// AuditCtx is Audit with span plumbing: when ctx carries a span, every
// device-state fetch is recorded as a per-device child, so an audit
// appears in the flight recorder alongside the reconfiguration it
// verifies.
func (c *Controller) AuditCtx(ctx context.Context, exp Expected) error {
	sp := trace.FromContext(ctx)
	for dev, want := range exp.Cross {
		st, err := c.tracedCall(sp, dev, "state", nil)
		if err != nil {
			return err
		}
		got := make(map[int]int)
		if cross, ok := st["cross"].(map[string]any); ok {
			for k, v := range cross {
				var in int
				if _, err := fmt.Sscanf(k, "%d", &in); err != nil {
					return fmt.Errorf("control: audit %s: bad port key %q", dev, k)
				}
				got[in] = int(v.(float64))
			}
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("control: audit %s: cross map %v, want %v", dev, got, want)
		}
	}
	for dev, want := range exp.Tuned {
		st, err := c.tracedCall(sp, dev, "state", nil)
		if err != nil {
			return err
		}
		got := toIntSlice(st["tuned"])
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("control: audit %s: tuned %v, want %v", dev, got, want)
		}
	}
	for dev, want := range exp.Enabled {
		st, err := c.tracedCall(sp, dev, "state", nil)
		if err != nil {
			return err
		}
		got := toBoolSlice(st["enabled"])
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("control: audit %s: enabled %v, want %v", dev, got, want)
		}
	}
	for dev, want := range exp.Filled {
		st, err := c.tracedCall(sp, dev, "state", nil)
		if err != nil {
			return err
		}
		got := toIntSlice(st["filled"])
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("control: audit %s: filled %v, want %v", dev, got, want)
		}
	}
	return nil
}

func toIntSlice(v any) []int {
	raw, ok := v.([]any)
	if !ok {
		return nil
	}
	out := make([]int, len(raw))
	for i, e := range raw {
		if f, ok := e.(float64); ok {
			out[i] = int(f)
		}
	}
	return out
}

func toBoolSlice(v any) []bool {
	raw, ok := v.([]any)
	if !ok {
		return nil
	}
	out := make([]bool, len(raw))
	for i, e := range raw {
		if b, ok := e.(bool); ok {
			out[i] = b
		}
	}
	return out
}
