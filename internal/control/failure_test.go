package control

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

// TestMalformedRequestGetsErrorResponse sends raw garbage to an agent and
// expects a structured error rather than a dropped connection.
func TestMalformedRequestGetsErrorResponse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, l, NewOSS(4, 0))
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("no response to malformed request")
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp.OK || resp.Error == "" {
		t.Errorf("expected error response, got %+v", resp)
	}

	// The connection must still work afterwards.
	req, _ := json.Marshal(Request{ID: 7, Op: "ping"})
	conn.Write(append(req, '\n'))
	if !sc.Scan() {
		t.Fatal("connection dead after malformed request")
	}
	json.Unmarshal(sc.Bytes(), &resp)
	if !resp.OK || resp.ID != 7 {
		t.Errorf("ping after garbage = %+v", resp)
	}

	cancel()
	l.Close()
	<-done
}

// TestEmptyOpRejected exercises the protocol-level guard.
func TestEmptyOpRejected(t *testing.T) {
	tb, err := StartTestbed(map[string]Device{"oss": NewOSS(4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, err := tb.Controller.Call("oss", "", nil); err == nil {
		t.Error("empty op should be rejected")
	}
}

// TestDeadDeviceSurfacesError kills an agent's listener mid-session and
// verifies the controller reports the failure instead of hanging.
func TestDeadDeviceSurfacesError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan struct{})
	go func() {
		defer close(served)
		Serve(ctx, l, NewOSS(4, 0))
	}()

	ctl, err := Dial([]DeviceSpec{{Name: "oss", Addr: l.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, err := ctl.Call("oss", "ping", nil); err != nil {
		t.Fatal(err)
	}

	// Kill the agent.
	cancel()
	l.Close()
	<-served

	errCh := make(chan error, 1)
	go func() {
		_, err := ctl.Call("oss", "ping", nil)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("call to dead device succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call to dead device hung")
	}
}

// TestReconfigureFailsCleanlyOnDeadDevice verifies the phase machine
// aborts with a phase-tagged error.
func TestReconfigureFailsCleanlyOnDeadDevice(t *testing.T) {
	tb, err := StartTestbed(map[string]Device{
		"oss":  NewOSS(8, 0),
		"xcvr": NewTransceiverBank(2, 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// Close only the OSS client's transport by closing the whole testbed
	// listeners after connecting a second controller — simpler: dial a
	// controller to one real and one bogus address.
	_, err = Dial([]DeviceSpec{
		{Name: "oss", Addr: "127.0.0.1:1"}, // nothing listens here
	})
	if err == nil {
		t.Fatal("dial to dead address should fail")
	}

	// A reconfiguration naming an unknown device fails in its phase.
	_, err = tb.Controller.Reconfigure(context.Background(), Change{
		Switches: []OSSOp{{Device: "ghost", In: 0, Out: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "switch phase") {
		t.Errorf("err = %v, want switch-phase failure", err)
	}
}

// TestDialRejectsDuplicateNames covers controller construction errors.
func TestDialRejectsDuplicateNames(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Serve(ctx, l, NewOSS(4, 0))

	addr := l.Addr().String()
	_, err = Dial([]DeviceSpec{{Name: "a", Addr: addr}, {Name: "a", Addr: addr}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate-name error", err)
	}
}

// TestOversizedRequestLine ensures a very long (but under-limit) request
// still round-trips: the scanner buffers up to 1 MiB.
func TestOversizedRequestLine(t *testing.T) {
	tb, err := StartTestbed(map[string]Device{"em": NewChannelEmulator(10000)})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	channels := make([]any, 10000)
	for i := range channels {
		channels[i] = i
	}
	if _, err := tb.Controller.Call("em", "fill", map[string]any{"channels": channels}); err != nil {
		t.Fatalf("large fill failed: %v", err)
	}
	em := tb.Devices["em"].(*ChannelEmulator)
	if got := len(em.Filled()); got != 10000 {
		t.Errorf("filled = %d, want 10000", got)
	}
}

// TestParallelReconfigurationsAreSerializable: two concurrent controller
// changes touching disjoint ports both complete and the union state is
// consistent.
func TestParallelReconfigurationsAreSerializable(t *testing.T) {
	tb, err := StartTestbed(map[string]Device{"oss": NewOSS(32, time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	errs := make(chan error, 2)
	go func() {
		_, err := tb.Controller.Reconfigure(context.Background(), Change{
			Switches: []OSSOp{{Device: "oss", In: 0, Out: 16}, {Device: "oss", In: 1, Out: 17}},
		})
		errs <- err
	}()
	go func() {
		_, err := tb.Controller.Reconfigure(context.Background(), Change{
			Switches: []OSSOp{{Device: "oss", In: 8, Out: 24}, {Device: "oss", In: 9, Out: 25}},
		})
		errs <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Controller.Audit(Expected{Cross: map[string]map[int]int{
		"oss": {0: 16, 1: 17, 8: 24, 9: 25},
	}}); err != nil {
		t.Error(err)
	}
}
