// Package control implements the Iris control plane of §5 of the paper: a
// centralized controller that configures optical space switches, tunable
// transceivers, amplifiers and channel emulators across a region, using
// the drain → switch → retune → undrain sequence that lets Iris avoid any
// online optical power management.
//
// The paper's controller drove vendor hardware over serial, HTTPS and
// NetConf; this package substitutes emulated device agents served over
// TCP with a newline-delimited JSON protocol, preserving the control
// logic, command set and sequencing while making the whole plane testable
// in-process.
package control

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Request is one controller-to-device command.
type Request struct {
	ID   int64          `json:"id"`
	Op   string         `json:"op"`
	Args map[string]any `json:"args,omitempty"`
}

// Response is a device's reply to a Request.
type Response struct {
	ID     int64          `json:"id"`
	OK     bool           `json:"ok"`
	Error  string         `json:"error,omitempty"`
	Result map[string]any `json:"result,omitempty"`
}

// Device is the behaviour contract of an emulated optical component.
// Handle must be safe for concurrent use.
type Device interface {
	// Kind identifies the device type ("oss", "amp", "transceivers",
	// "emulator").
	Kind() string
	// Handle executes one operation and returns its result.
	Handle(op string, args map[string]any) (map[string]any, error)
}

// Serve accepts connections on l and serves dev until the listener is
// closed or ctx is cancelled. Cancellation closes active connections too,
// so Serve never blocks shutdown on clients that keep their sockets open.
// It returns the first non-shutdown error.
func Serve(ctx context.Context, l net.Listener, dev Device) error {
	var (
		mu    sync.Mutex
		conns = make(map[net.Conn]bool)
	)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
			mu.Lock()
			for c := range conns {
				c.Close()
			}
			mu.Unlock()
		case <-done:
		}
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("control: accept: %w", err)
		}
		mu.Lock()
		conns[conn] = true
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				conn.Close()
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
			serveConn(conn, dev)
		}()
	}
}

func serveConn(conn net.Conn, dev Device) {
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var req Request
		resp := Response{}
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			resp.Error = fmt.Sprintf("malformed request: %v", err)
		} else {
			resp.ID = req.ID
			result, err := handleCommon(dev, req.Op, req.Args)
			if err != nil {
				resp.Error = err.Error()
			} else {
				resp.OK = true
				resp.Result = result
			}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handleCommon answers protocol-level operations and delegates the rest to
// the device.
func handleCommon(dev Device, op string, args map[string]any) (map[string]any, error) {
	switch op {
	case "ping":
		return map[string]any{"kind": dev.Kind()}, nil
	case "":
		return nil, fmt.Errorf("empty op")
	default:
		return dev.Handle(op, args)
	}
}

// Default transport deadlines. A hardware agent that neither accepts nor
// answers must not wedge the controller (§5.2 budgets a reconfiguration in
// tens of milliseconds; seconds means the device is gone).
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultRPCTimeout  = 30 * time.Second
)

// Client is a connection to one device agent. It serialises calls; one TCP
// connection carries the exchange, and a connection that times out or
// desynchronises is discarded and transparently redialled on the next
// call, so a device that heals becomes reachable again without rebuilding
// the controller.
type Client struct {
	mu          sync.Mutex
	addr        string
	dialTimeout time.Duration
	rpcTimeout  time.Duration
	conn        net.Conn
	enc         *json.Encoder
	sc          *bufio.Scanner
	nextID      int64
	broken      bool
	closed      bool
}

// DialDevice connects to a device agent with the default deadlines.
func DialDevice(addr string) (*Client, error) {
	return DialDeviceTimeout(addr, DefaultDialTimeout, DefaultRPCTimeout)
}

// DialDeviceTimeout connects to a device agent with explicit deadlines.
// dialTimeout bounds connection establishment (and re-establishment);
// rpcTimeout bounds each Call end to end. Zero values select the defaults;
// negative values disable the corresponding deadline.
func DialDeviceTimeout(addr string, dialTimeout, rpcTimeout time.Duration) (*Client, error) {
	if dialTimeout == 0 {
		dialTimeout = DefaultDialTimeout
	}
	if rpcTimeout == 0 {
		rpcTimeout = DefaultRPCTimeout
	}
	c := &Client{addr: addr, dialTimeout: dialTimeout, rpcTimeout: rpcTimeout}
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (re)establishes the transport. Callers hold c.mu, except
// from DialDeviceTimeout where the client is not yet shared.
func (c *Client) redialLocked() error {
	var conn net.Conn
	var err error
	if c.dialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", c.addr, c.dialTimeout)
	} else {
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return fmt.Errorf("control: dial %s: %w", c.addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	c.conn, c.enc, c.sc = conn, json.NewEncoder(conn), sc
	c.broken = false
	return nil
}

// failLocked poisons the transport: a timed-out or desynchronised
// connection may still deliver a stale response later, which would corrupt
// the framing of the next call, so it is closed and replaced lazily.
func (c *Client) failLocked() {
	c.broken = true
	if c.conn != nil {
		c.conn.Close()
	}
}

// Call sends one operation and waits for its response, bounded by the
// client's RPC deadline.
func (c *Client) Call(op string, args map[string]any) (map[string]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("control: client for %s is closed", c.addr)
	}
	if c.broken || c.conn == nil {
		if err := c.redialLocked(); err != nil {
			return nil, err
		}
	}
	c.nextID++
	req := Request{ID: c.nextID, Op: op, Args: args}
	if c.rpcTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.rpcTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		c.failLocked()
		return nil, fmt.Errorf("control: send %s: %w", op, err)
	}
	if !c.sc.Scan() {
		err := c.sc.Err()
		c.failLocked()
		if err != nil {
			return nil, fmt.Errorf("control: recv %s: %w", op, err)
		}
		return nil, fmt.Errorf("control: connection closed during %s", op)
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		c.failLocked()
		return nil, fmt.Errorf("control: decode response to %s: %w", op, err)
	}
	if resp.ID != req.ID {
		c.failLocked()
		return nil, fmt.Errorf("control: response ID %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return nil, fmt.Errorf("control: %s: %s", op, resp.Error)
	}
	return resp.Result, nil
}

// Close tears down the connection permanently; subsequent calls fail
// rather than redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// Argument decoding helpers: JSON numbers arrive as float64.

func argInt(args map[string]any, key string) (int, error) {
	v, ok := args[key]
	if !ok {
		return 0, fmt.Errorf("missing argument %q", key)
	}
	f, ok := v.(float64)
	if !ok || f != float64(int(f)) {
		return 0, fmt.Errorf("argument %q must be an integer, got %v", key, v)
	}
	return int(f), nil
}

func argIntSlice(args map[string]any, key string) ([]int, error) {
	v, ok := args[key]
	if !ok {
		return nil, fmt.Errorf("missing argument %q", key)
	}
	raw, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("argument %q must be an array, got %T", key, v)
	}
	out := make([]int, len(raw))
	for i, e := range raw {
		f, ok := e.(float64)
		if !ok || f != float64(int(f)) {
			return nil, fmt.Errorf("argument %q[%d] must be an integer, got %v", key, i, e)
		}
		out[i] = int(f)
	}
	return out, nil
}
