package control

import (
	"fmt"
	"sync"
	"time"
)

// LogEntry records one operation executed by a device, for audits and for
// verifying controller sequencing in tests.
type LogEntry struct {
	Time time.Time
	Op   string
	Note string
}

// opLog is the shared audit-trail implementation embedded in every device.
type opLog struct {
	mu      sync.Mutex
	entries []LogEntry
}

func (l *opLog) record(op, note string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, LogEntry{Time: time.Now(), Op: op, Note: note})
}

// Log returns a copy of the device's operation log.
func (l *opLog) Log() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LogEntry(nil), l.entries...)
}

// OSS emulates an optical space switch: a port-to-port circuit fabric that
// directs all wavelengths of an input fiber to an output fiber. Switching
// takes the configured delay (the paper measures ≈20 ms, §5.2).
type OSS struct {
	opLog
	mu          sync.Mutex
	ports       int
	switchDelay time.Duration
	cross       map[int]int // in port -> out port
	outInUse    map[int]int // out port -> in port
}

// NewOSS returns an OSS with the given port count and switch delay.
func NewOSS(ports int, switchDelay time.Duration) *OSS {
	return &OSS{
		ports:       ports,
		switchDelay: switchDelay,
		cross:       make(map[int]int),
		outInUse:    make(map[int]int),
	}
}

// Kind implements Device.
func (o *OSS) Kind() string { return "oss" }

// Handle implements Device. Operations:
//
//	connect {in, out}        — create a circuit; fails if either port is in use
//	disconnect {in}          — tear down the circuit from an input port
//	connect-batch {ins, outs} — create several circuits in one settling window
//	disconnect-batch {ins}   — tear down several circuits at once
//	state                    — current cross-connect map
//
// The batch forms mirror real OSS firmware, which executes a set of
// cross-connect moves in a single mirror-settling window; the controller
// uses them so a multi-circuit reconfiguration pays the switching delay
// once per device, not once per circuit.
func (o *OSS) Handle(op string, args map[string]any) (map[string]any, error) {
	switch op {
	case "connect-batch":
		ins, err := argIntSlice(args, "ins")
		if err != nil {
			return nil, err
		}
		outs, err := argIntSlice(args, "outs")
		if err != nil {
			return nil, err
		}
		if len(ins) != len(outs) {
			return nil, fmt.Errorf("oss: batch length mismatch: %d ins, %d outs", len(ins), len(outs))
		}
		if err := o.connectBatch(ins, outs); err != nil {
			return nil, err
		}
		o.record(op, fmt.Sprintf("%v->%v", ins, outs))
		return nil, nil
	case "disconnect-batch":
		ins, err := argIntSlice(args, "ins")
		if err != nil {
			return nil, err
		}
		for _, in := range ins {
			if err := o.disconnect(in); err != nil {
				return nil, err
			}
		}
		o.record(op, fmt.Sprint(ins))
		return nil, nil
	case "connect":
		in, err := argInt(args, "in")
		if err != nil {
			return nil, err
		}
		out, err := argInt(args, "out")
		if err != nil {
			return nil, err
		}
		if err := o.connect(in, out); err != nil {
			return nil, err
		}
		o.record(op, fmt.Sprintf("%d->%d", in, out))
		return nil, nil
	case "disconnect":
		in, err := argInt(args, "in")
		if err != nil {
			return nil, err
		}
		if err := o.disconnect(in); err != nil {
			return nil, err
		}
		o.record(op, fmt.Sprintf("%d", in))
		return nil, nil
	case "state":
		return map[string]any{"cross": o.CrossMap(), "ports": o.ports}, nil
	default:
		return nil, fmt.Errorf("oss: unknown op %q", op)
	}
}

func (o *OSS) connect(in, out int) error {
	return o.connectBatch([]int{in}, []int{out})
}

// connectBatch validates and reserves every cross-connect under the lock,
// then settles once: the physical switch moves all mirrors in a single
// settling window.
func (o *OSS) connectBatch(ins, outs []int) error {
	o.mu.Lock()
	for i := range ins {
		in, out := ins[i], outs[i]
		if in < 0 || in >= o.ports || out < 0 || out >= o.ports {
			o.rollback(ins[:i])
			o.mu.Unlock()
			return fmt.Errorf("oss: port out of range [0,%d): in=%d out=%d", o.ports, in, out)
		}
		if cur, busy := o.cross[in]; busy {
			o.rollback(ins[:i])
			o.mu.Unlock()
			return fmt.Errorf("oss: input %d already connected to %d", in, cur)
		}
		if cur, busy := o.outInUse[out]; busy {
			o.rollback(ins[:i])
			o.mu.Unlock()
			return fmt.Errorf("oss: output %d already fed by %d", out, cur)
		}
		o.cross[in] = out
		o.outInUse[out] = in
	}
	o.mu.Unlock()
	time.Sleep(o.switchDelay)
	return nil
}

// rollback undoes partially applied batch entries; callers hold o.mu.
func (o *OSS) rollback(ins []int) {
	for _, in := range ins {
		if out, ok := o.cross[in]; ok {
			delete(o.cross, in)
			delete(o.outInUse, out)
		}
	}
}

func (o *OSS) disconnect(in int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	out, ok := o.cross[in]
	if !ok {
		return fmt.Errorf("oss: input %d not connected", in)
	}
	delete(o.cross, in)
	delete(o.outInUse, out)
	return nil
}

// CrossMap returns the current cross-connect state keyed by input port
// (stringified for JSON transport).
func (o *OSS) CrossMap() map[string]int {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int, len(o.cross))
	for in, p := range o.cross {
		out[fmt.Sprint(in)] = p
	}
	return out
}

// Amplifier emulates an EDFA run at fixed gain behind an input power
// limiter — Iris's no-online-management amplifier configuration (§5.1).
type Amplifier struct {
	opLog
	mu      sync.Mutex
	gainDB  float64
	limitIn float64 // input power limit, dBm
	enabled bool
}

// NewAmplifier returns an amplifier with the given fixed gain and input
// power limit.
func NewAmplifier(gainDB, limitInDBm float64) *Amplifier {
	return &Amplifier{gainDB: gainDB, limitIn: limitInDBm}
}

// Kind implements Device.
func (a *Amplifier) Kind() string { return "amp" }

// Handle implements Device. Operations: enable, disable, state.
func (a *Amplifier) Handle(op string, args map[string]any) (map[string]any, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "enable":
		a.enabled = true
	case "disable":
		a.enabled = false
	case "state":
		return map[string]any{
			"gain_db":    a.gainDB,
			"limit_dbm":  a.limitIn,
			"enabled":    a.enabled,
			"fixed_gain": true,
		}, nil
	default:
		return nil, fmt.Errorf("amp: unknown op %q", op)
	}
	a.record(op, "")
	return nil, nil
}

// Enabled reports whether the amplifier is active.
func (a *Amplifier) Enabled() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.enabled
}

// TransceiverBank emulates a DC's tunable transceivers (the T2-attached
// Acacia units of the testbed): each can be tuned to a wavelength index
// and enabled or disabled. Disabling is how the controller drains traffic
// from a circuit before switching it.
type TransceiverBank struct {
	opLog
	mu      sync.Mutex
	lambda  int   // wavelengths per fiber
	tuned   []int // per transceiver: wavelength index, -1 if untuned
	enabled []bool
}

// NewTransceiverBank returns a bank of n transceivers supporting lambda
// wavelength slots.
func NewTransceiverBank(n, lambda int) *TransceiverBank {
	tuned := make([]int, n)
	for i := range tuned {
		tuned[i] = -1
	}
	return &TransceiverBank{lambda: lambda, tuned: tuned, enabled: make([]bool, n)}
}

// Kind implements Device.
func (b *TransceiverBank) Kind() string { return "transceivers" }

// Handle implements Device. Operations:
//
//	tune {idx, wavelength} — retune one transceiver (sub-millisecond)
//	enable {idx} / disable {idx}
//	state
func (b *TransceiverBank) Handle(op string, args map[string]any) (map[string]any, error) {
	switch op {
	case "tune":
		idx, err := argInt(args, "idx")
		if err != nil {
			return nil, err
		}
		w, err := argInt(args, "wavelength")
		if err != nil {
			return nil, err
		}
		if err := b.tune(idx, w); err != nil {
			return nil, err
		}
		b.record(op, fmt.Sprintf("%d@%d", idx, w))
		return nil, nil
	case "enable", "disable":
		idx, err := argInt(args, "idx")
		if err != nil {
			return nil, err
		}
		if err := b.setEnabled(idx, op == "enable"); err != nil {
			return nil, err
		}
		b.record(op, fmt.Sprint(idx))
		return nil, nil
	case "state":
		b.mu.Lock()
		defer b.mu.Unlock()
		tuned := make([]any, len(b.tuned))
		enabled := make([]any, len(b.enabled))
		for i := range b.tuned {
			tuned[i] = b.tuned[i]
			enabled[i] = b.enabled[i]
		}
		return map[string]any{"tuned": tuned, "enabled": enabled, "lambda": b.lambda}, nil
	default:
		return nil, fmt.Errorf("transceivers: unknown op %q", op)
	}
}

func (b *TransceiverBank) tune(idx, w int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.tuned) {
		return fmt.Errorf("transceivers: index %d out of range [0,%d)", idx, len(b.tuned))
	}
	if w < -1 || w >= b.lambda {
		return fmt.Errorf("transceivers: wavelength %d out of range [-1,%d)", w, b.lambda)
	}
	if b.enabled[idx] {
		return fmt.Errorf("transceivers: %d must be disabled (drained) before retuning", idx)
	}
	b.tuned[idx] = w
	return nil
}

func (b *TransceiverBank) setEnabled(idx int, on bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.enabled) {
		return fmt.Errorf("transceivers: index %d out of range [0,%d)", idx, len(b.enabled))
	}
	if on && b.tuned[idx] < 0 {
		return fmt.Errorf("transceivers: %d cannot enable while untuned", idx)
	}
	b.enabled[idx] = on
	return nil
}

// Snapshot returns (tuned wavelength, enabled) for each transceiver.
func (b *TransceiverBank) Snapshot() ([]int, []bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.tuned...), append([]bool(nil), b.enabled...)
}

// ChannelEmulator emulates the ASE-noise channel filler of §5.1: it keeps
// the unused portion of the C-band spectrum occupied so amplifier gain
// profiles stay uniform without online power management.
type ChannelEmulator struct {
	opLog
	mu     sync.Mutex
	lambda int
	filled map[int]bool
}

// NewChannelEmulator returns an emulator for lambda wavelength slots.
func NewChannelEmulator(lambda int) *ChannelEmulator {
	return &ChannelEmulator{lambda: lambda, filled: make(map[int]bool)}
}

// Kind implements Device.
func (e *ChannelEmulator) Kind() string { return "emulator" }

// Handle implements Device. Operations:
//
//	fill {channels} — set exactly the given channels to carry ASE noise
//	state
func (e *ChannelEmulator) Handle(op string, args map[string]any) (map[string]any, error) {
	switch op {
	case "fill":
		chans, err := argIntSlice(args, "channels")
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		defer e.mu.Unlock()
		for _, c := range chans {
			if c < 0 || c >= e.lambda {
				return nil, fmt.Errorf("emulator: channel %d out of range [0,%d)", c, e.lambda)
			}
		}
		e.filled = make(map[int]bool, len(chans))
		for _, c := range chans {
			e.filled[c] = true
		}
		e.record(op, fmt.Sprint(chans))
		return nil, nil
	case "state":
		e.mu.Lock()
		defer e.mu.Unlock()
		var chans []any
		for c := 0; c < e.lambda; c++ {
			if e.filled[c] {
				chans = append(chans, c)
			}
		}
		return map[string]any{"filled": chans, "lambda": e.lambda}, nil
	default:
		return nil, fmt.Errorf("emulator: unknown op %q", op)
	}
}

// Filled returns the currently ASE-filled channels in ascending order.
func (e *ChannelEmulator) Filled() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []int
	for c := 0; c < e.lambda; c++ {
		if e.filled[c] {
			out = append(out, c)
		}
	}
	return out
}
