package control

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fig13Testbed builds the paper's testbed layout: two DCs with
// transceiver banks and channel emulators, a DC OSS each, one hut OSS
// with a loopback amplifier.
func fig13Testbed(t *testing.T) *Testbed {
	t.Helper()
	tb, err := StartTestbed(map[string]Device{
		"dc1-oss":      NewOSS(32, 0),
		"dc2-oss":      NewOSS(32, 0),
		"hut-oss":      NewOSS(64, 0),
		"hut-amp":      NewAmplifier(20, -3),
		"dc1-xcvr":     NewTransceiverBank(4, 40),
		"dc2-xcvr":     NewTransceiverBank(4, 40),
		"dc1-emulator": NewChannelEmulator(40),
		"dc2-emulator": NewChannelEmulator(40),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return tb
}

func TestPingAllDevices(t *testing.T) {
	tb := fig13Testbed(t)
	kinds := map[string]string{
		"dc1-oss": "oss", "hut-amp": "amp",
		"dc1-xcvr": "transceivers", "dc1-emulator": "emulator",
	}
	for dev, kind := range kinds {
		res, err := tb.Controller.Call(dev, "ping", nil)
		if err != nil {
			t.Fatalf("ping %s: %v", dev, err)
		}
		if res["kind"] != kind {
			t.Errorf("%s kind = %v, want %s", dev, res["kind"], kind)
		}
	}
	if got := len(tb.Controller.Devices()); got != 8 {
		t.Errorf("device count = %d, want 8", got)
	}
}

func TestUnknownDeviceAndOp(t *testing.T) {
	tb := fig13Testbed(t)
	if _, err := tb.Controller.Call("nope", "ping", nil); err == nil {
		t.Error("expected error for unknown device")
	}
	if _, err := tb.Controller.Call("dc1-oss", "explode", nil); err == nil {
		t.Error("expected error for unknown op")
	}
	if _, err := tb.Controller.Call("dc1-oss", "connect", map[string]any{"in": 1}); err == nil {
		t.Error("expected error for missing argument")
	}
}

func TestOSSSemantics(t *testing.T) {
	tb := fig13Testbed(t)
	c := tb.Controller
	must := func(op string, args map[string]any) {
		t.Helper()
		if _, err := c.Call("hut-oss", op, args); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	must("connect", map[string]any{"in": 0, "out": 10})
	if _, err := c.Call("hut-oss", "connect", map[string]any{"in": 0, "out": 11}); err == nil {
		t.Error("double-connecting an input must fail")
	}
	if _, err := c.Call("hut-oss", "connect", map[string]any{"in": 1, "out": 10}); err == nil {
		t.Error("double-feeding an output must fail")
	}
	if _, err := c.Call("hut-oss", "connect", map[string]any{"in": 99, "out": 1}); err == nil {
		t.Error("out-of-range port must fail")
	}
	must("disconnect", map[string]any{"in": 0})
	if _, err := c.Call("hut-oss", "disconnect", map[string]any{"in": 0}); err == nil {
		t.Error("disconnecting an idle input must fail")
	}
	must("connect", map[string]any{"in": 1, "out": 10}) // port freed
}

func TestTransceiverDrainDiscipline(t *testing.T) {
	tb := fig13Testbed(t)
	c := tb.Controller
	// Cannot enable untuned.
	if _, err := c.Call("dc1-xcvr", "enable", map[string]any{"idx": 0}); err == nil {
		t.Error("enabling an untuned transceiver must fail")
	}
	if _, err := c.Call("dc1-xcvr", "tune", map[string]any{"idx": 0, "wavelength": 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("dc1-xcvr", "enable", map[string]any{"idx": 0}); err != nil {
		t.Fatal(err)
	}
	// Cannot retune while live: the §5.2 drain-first rule is enforced by
	// the device itself.
	if _, err := c.Call("dc1-xcvr", "tune", map[string]any{"idx": 0, "wavelength": 9}); err == nil {
		t.Error("retuning a live transceiver must fail")
	}
	if _, err := c.Call("dc1-xcvr", "disable", map[string]any{"idx": 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("dc1-xcvr", "tune", map[string]any{"idx": 0, "wavelength": 9}); err != nil {
		t.Errorf("retune after drain should succeed: %v", err)
	}
}

func TestEmulatorFill(t *testing.T) {
	tb := fig13Testbed(t)
	if _, err := tb.Controller.Call("dc1-emulator", "fill",
		map[string]any{"channels": []any{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	em := tb.Devices["dc1-emulator"].(*ChannelEmulator)
	got := em.Filled()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("filled = %v", got)
	}
	if _, err := tb.Controller.Call("dc1-emulator", "fill",
		map[string]any{"channels": []any{99}}); err == nil {
		t.Error("out-of-range channel must fail")
	}
}

func TestReconfigureEndToEnd(t *testing.T) {
	tb := fig13Testbed(t)
	c := tb.Controller

	// Initial circuit: DC1 transceiver 0 on wavelength 3, path through
	// hut port 0→1.
	setup := Change{
		Switches: []OSSOp{
			{Device: "dc1-oss", In: 0, Out: 8},
			{Device: "hut-oss", In: 0, Out: 1},
			{Device: "dc2-oss", In: 0, Out: 8},
		},
		Retunes: []TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0, Wavelength: 3},
			{Device: "dc2-xcvr", Idx: 0, Wavelength: 3},
		},
		Fills: []FillOp{
			{Device: "dc1-emulator", Channels: []int{0, 1, 2}},
			{Device: "dc2-emulator", Channels: []int{0, 1, 2}},
		},
		Undrain: []TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0},
			{Device: "dc2-xcvr", Idx: 0},
		},
	}
	if _, err := c.Reconfigure(context.Background(), setup); err != nil {
		t.Fatal(err)
	}

	// Move the circuit to hut ports 0→2 (the B configuration) and
	// wavelength 5, with a proper drain.
	move := Change{
		Drain: []TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0},
			{Device: "dc2-xcvr", Idx: 0},
		},
		Switches: []OSSOp{
			{Device: "hut-oss", In: 0, Disconnect: true},
			{Device: "hut-oss", In: 0, Out: 2},
		},
		Retunes: []TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0, Wavelength: 5},
			{Device: "dc2-xcvr", Idx: 0, Wavelength: 5},
		},
		Undrain: []TransceiverOp{
			{Device: "dc1-xcvr", Idx: 0},
			{Device: "dc2-xcvr", Idx: 0},
		},
	}
	rep, err := c.Reconfigure(context.Background(), move)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 6 {
		t.Errorf("phases = %d, want 6", len(rep.Phases))
	}

	// Audit intent vs. device state.
	err = c.Audit(Expected{
		Cross: map[string]map[int]int{
			"dc1-oss": {0: 8},
			"hut-oss": {0: 2},
			"dc2-oss": {0: 8},
		},
		Tuned:   map[string][]int{"dc1-xcvr": {5, -1, -1, -1}},
		Enabled: map[string][]bool{"dc1-xcvr": {true, false, false, false}},
		Filled:  map[string][]int{"dc1-emulator": {0, 1, 2}},
	})
	if err != nil {
		t.Errorf("audit: %v", err)
	}

	// A wrong expectation must be detected.
	err = c.Audit(Expected{Cross: map[string]map[int]int{"hut-oss": {0: 1}}})
	if err == nil || !strings.Contains(err.Error(), "cross map") {
		t.Errorf("audit should flag a stale cross map, got %v", err)
	}
}

func TestReconfigureDrainOrdering(t *testing.T) {
	// The OSS must never switch while the affected transceivers are live:
	// every OSS op in a change lands after all drain ops, strictly by the
	// device logs' timestamps.
	tb := fig13Testbed(t)
	c := tb.Controller
	setup := Change{
		Switches: []OSSOp{{Device: "hut-oss", In: 4, Out: 5}},
		Retunes:  []TransceiverOp{{Device: "dc1-xcvr", Idx: 1, Wavelength: 1}},
		Undrain:  []TransceiverOp{{Device: "dc1-xcvr", Idx: 1}},
	}
	if _, err := c.Reconfigure(context.Background(), setup); err != nil {
		t.Fatal(err)
	}
	move := Change{
		Drain:    []TransceiverOp{{Device: "dc1-xcvr", Idx: 1}},
		Switches: []OSSOp{{Device: "hut-oss", In: 4, Disconnect: true}, {Device: "hut-oss", In: 4, Out: 6}},
		Undrain:  []TransceiverOp{{Device: "dc1-xcvr", Idx: 1}},
	}
	if _, err := c.Reconfigure(context.Background(), move); err != nil {
		t.Fatal(err)
	}

	xcvr := tb.Devices["dc1-xcvr"].(*TransceiverBank)
	oss := tb.Devices["hut-oss"].(*OSS)
	var drainTime, switchTime time.Time
	for _, e := range xcvr.Log() {
		if e.Op == "disable" {
			drainTime = e.Time
		}
	}
	for _, e := range oss.Log() {
		// The controller batches per device: the move lands as a
		// connect-batch containing port 4.
		if (e.Op == "connect" && e.Note == "4->6") ||
			(e.Op == "connect-batch" && strings.Contains(e.Note, "[4]->[6]")) {
			switchTime = e.Time
		}
	}
	if drainTime.IsZero() || switchTime.IsZero() {
		t.Fatal("expected drain and switch log entries")
	}
	if switchTime.Before(drainTime) {
		t.Error("OSS switched before the transceiver was drained")
	}
}

func TestReconfigureTiming(t *testing.T) {
	// With the measured 20 ms OSS switching delay, a reconfiguration
	// completes well within the paper's 70 ms fiber-switch budget even
	// across several OSS hops (they switch in parallel).
	tb, err := StartTestbed(map[string]Device{
		"oss-a": NewOSS(8, 20*time.Millisecond),
		"oss-b": NewOSS(8, 20*time.Millisecond),
		"oss-c": NewOSS(8, 20*time.Millisecond),
		"xcvr":  NewTransceiverBank(2, 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	ch := Change{
		Switches: []OSSOp{
			{Device: "oss-a", In: 0, Out: 1},
			{Device: "oss-b", In: 0, Out: 1},
			{Device: "oss-c", In: 0, Out: 1},
		},
		Retunes: []TransceiverOp{{Device: "xcvr", Idx: 0, Wavelength: 0}},
		Undrain: []TransceiverOp{{Device: "xcvr", Idx: 0}},
	}
	rep, err := tb.Controller.Reconfigure(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total > 70*time.Millisecond {
		t.Errorf("reconfiguration took %v, want ≤ 70 ms", rep.Total)
	}
	var switchPhase PhaseTiming
	for _, p := range rep.Phases {
		if p.Name == "switch" {
			switchPhase = p
		}
	}
	if switchPhase.Duration < 20*time.Millisecond {
		t.Errorf("switch phase %v shorter than one OSS settling time", switchPhase.Duration)
	}
	if switchPhase.Duration > 60*time.Millisecond {
		t.Errorf("switch phase %v suggests serialized OSS switching", switchPhase.Duration)
	}
}

func TestReconfigureAbortsOnError(t *testing.T) {
	tb := fig13Testbed(t)
	ch := Change{
		Switches: []OSSOp{{Device: "hut-oss", In: 99, Out: 1}}, // invalid port
		Retunes:  []TransceiverOp{{Device: "dc1-xcvr", Idx: 0, Wavelength: 1}},
	}
	_, err := tb.Controller.Reconfigure(context.Background(), ch)
	if err == nil {
		t.Fatal("expected error")
	}
	// The retune phase must not have run.
	tuned, _ := tb.Devices["dc1-xcvr"].(*TransceiverBank).Snapshot()
	if tuned[0] != -1 {
		t.Error("retune ran despite switch-phase failure")
	}
}

func TestReconfigureRespectsContext(t *testing.T) {
	tb := fig13Testbed(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tb.Controller.Reconfigure(ctx, Change{
		Switches: []OSSOp{{Device: "hut-oss", In: 0, Out: 1}},
	})
	if err == nil {
		t.Fatal("expected context error")
	}
}

func TestConcurrentCalls(t *testing.T) {
	tb := fig13Testbed(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := tb.Controller.Call("hut-oss", "connect",
				map[string]any{"in": i, "out": i + 16})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	oss := tb.Devices["hut-oss"].(*OSS)
	if got := len(oss.CrossMap()); got != 16 {
		t.Errorf("cross connects = %d, want 16", got)
	}
}

func TestAmplifierStateAndLog(t *testing.T) {
	tb := fig13Testbed(t)
	if _, err := tb.Controller.Call("hut-amp", "enable", nil); err != nil {
		t.Fatal(err)
	}
	st, err := tb.Controller.Call("hut-amp", "state", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st["enabled"] != true || st["gain_db"].(float64) != 20 || st["fixed_gain"] != true {
		t.Errorf("state = %v", st)
	}
	amp := tb.Devices["hut-amp"].(*Amplifier)
	if !amp.Enabled() {
		t.Error("amplifier should be enabled")
	}
	if len(amp.Log()) == 0 {
		t.Error("expected log entries")
	}
}

func TestOSSBatchSemantics(t *testing.T) {
	tb := fig13Testbed(t)
	c := tb.Controller
	// Batch connect.
	if _, err := c.Call("hut-oss", "connect-batch",
		map[string]any{"ins": []any{0, 1, 2}, "outs": []any{10, 11, 12}}); err != nil {
		t.Fatal(err)
	}
	oss := tb.Devices["hut-oss"].(*OSS)
	if got := len(oss.CrossMap()); got != 3 {
		t.Fatalf("cross connects = %d, want 3", got)
	}
	// A batch with a conflict is rejected atomically: port 1 is busy, so
	// the new ports 3 and 4 must not be connected either.
	if _, err := c.Call("hut-oss", "connect-batch",
		map[string]any{"ins": []any{3, 1, 4}, "outs": []any{13, 14, 15}}); err == nil {
		t.Fatal("conflicting batch should fail")
	}
	if got := len(oss.CrossMap()); got != 3 {
		t.Errorf("failed batch left %d connects, want unchanged 3", got)
	}
	// Length mismatch.
	if _, err := c.Call("hut-oss", "connect-batch",
		map[string]any{"ins": []any{5}, "outs": []any{16, 17}}); err == nil {
		t.Error("length mismatch should fail")
	}
	// Batch disconnect.
	if _, err := c.Call("hut-oss", "disconnect-batch",
		map[string]any{"ins": []any{0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if got := len(oss.CrossMap()); got != 0 {
		t.Errorf("cross connects = %d after batch disconnect, want 0", got)
	}
}

func TestBatchedSwitchPhasePaysDelayOnce(t *testing.T) {
	tb, err := StartTestbed(map[string]Device{
		"oss": NewOSS(32, 20*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	// Eight circuits on one device: batching must keep the switch phase
	// near one settling window, not eight.
	var ops []OSSOp
	for i := 0; i < 8; i++ {
		ops = append(ops, OSSOp{Device: "oss", In: i, Out: 16 + i})
	}
	rep, err := tb.Controller.Reconfigure(context.Background(), Change{Switches: ops})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total > 60*time.Millisecond {
		t.Errorf("8-circuit switch took %v; batching should pay ~20 ms once", rep.Total)
	}
}
