package cost

import "fmt"

// PortModel is the §2.4 group model: N DCs of P DCI ports each, organised
// into G balanced groups. Each group's DCs connect to a group-local hub
// and all groups are directly meshed. G=1 is the fully centralized
// hub-and-spoke design, G=N the fully distributed all-pairs mesh (where
// the degenerate one-DC group hub collapses into the DC itself).
type PortModel struct {
	N int // number of DCs
	P int // DCI ports (transceivers) per DC
	G int // number of groups; must divide into 1..N
}

// Validate reports the first problem with the model parameters.
func (pm PortModel) Validate() error {
	if pm.N <= 0 || pm.P <= 0 {
		return fmt.Errorf("cost: N and P must be positive: %+v", pm)
	}
	if pm.G < 1 || pm.G > pm.N {
		return fmt.Errorf("cost: G must be in [1,N]: %+v", pm)
	}
	return nil
}

// DCPorts returns the capacity-edge ports at the DCs: N·P, independent of
// the grouping.
func (pm PortModel) DCPorts() int { return pm.N * pm.P }

// HubPorts returns the in-network ports. Each group hub terminates its
// group's full downstream capacity plus the upstream mesh to other groups,
// N·P ports per hub regardless of group size (§2.4); the fully distributed
// case folds each degenerate hub into its DC, saving the hub's downstream
// ports.
func (pm PortModel) HubPorts() int {
	if pm.G == pm.N {
		return pm.N * (pm.N - 1) * pm.P
	}
	return pm.G * pm.N * pm.P
}

// TotalPorts returns all DCI ports in the design: (G+1)·N·P in general,
// N²·P when fully distributed.
func (pm PortModel) TotalPorts() int { return pm.DCPorts() + pm.HubPorts() }

// IntraGroupPorts returns the ports on DC-to-group-hub links — the ports
// eligible for short-reach transceivers in the optimistic Fig. 7 variant.
// Fully distributed designs have no intra-group links.
func (pm PortModel) IntraGroupPorts() int {
	if pm.G == pm.N {
		return 0
	}
	return 2 * pm.N * pm.P // DC side + hub downstream side
}

// InterGroupPorts returns ports on hub-to-hub (or DC-to-DC) mesh links,
// which always need DCI-reach transceivers.
func (pm PortModel) InterGroupPorts() int { return pm.TotalPorts() - pm.IntraGroupPorts() }

// ElectricalCost prices the model with electrical packet switching: every
// port has an electrical switch port and a transceiver. With srIntraGroup,
// intra-group ports use short-reach transceivers — optimistic, since
// hub-DC runs under 2 km are rarely achievable (§2.4).
func (pm PortModel) ElectricalCost(c Catalog, srIntraGroup bool) float64 {
	intra, inter := pm.IntraGroupPorts(), pm.InterGroupPorts()
	intraTransceiver := c.DCITransceiver
	if srIntraGroup {
		intraTransceiver = c.SRTransceiver
	}
	return float64(intra)*(intraTransceiver+c.ElectricalPort) +
		float64(inter)*(c.DCITransceiver+c.ElectricalPort)
}

// OpticalCost prices the model with an optical network core: the DC-edge
// ports keep their DCI transceivers and electrical ports, while every
// in-network port becomes a reconfigurable optical (OSS) port — the third
// column of Fig. 7.
func (pm PortModel) OpticalCost(c Catalog) float64 {
	return float64(pm.DCPorts())*(c.DCITransceiver+c.ElectricalPort) +
		float64(pm.HubPorts())*c.OSSPort
}
