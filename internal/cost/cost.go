// Package cost prices regional DCI designs. It encodes the component cost
// structure of §3.3 of the paper (annual amortized prices, in dollars) and
// derives full-network bills of materials for the three switching
// architectures the paper compares: electrical packet switching (EPS),
// Iris fiber switching, and the hybrid fiber+wavelength design of
// Appendix B. It also implements the §2.4 group port-count model behind
// Fig. 7.
package cost

import (
	"iris/internal/fibermap"
	"iris/internal/plan"
)

// Catalog holds annual amortized component prices in dollars. The defaults
// are the paper's published coarse prices; all headline results are ratios
// and therefore depend only on the relative values.
type Catalog struct {
	// DCITransceiver is a DWDM switch-pluggable coherent transceiver
	// covering DCI distances (400ZR class): ≈$10/Gbps over a 3-year
	// amortization (§3.3).
	DCITransceiver float64
	// SRTransceiver is a short-reach (≤2 km) transceiver, an order of
	// magnitude cheaper than a DCI transceiver.
	SRTransceiver float64
	// FiberPair is the per-span annual lease of one fiber pair,
	// independent of distance (§3.3: ≈3× a transceiver).
	FiberPair float64
	// OSSPort is one unidirectional optical space switch port.
	OSSPort float64
	// OXCPort is one optical cross-connect port (OSS port plus its share
	// of mux/demux hardware).
	OXCPort float64
	// Amplifier is one EDFA (≈ a few transceivers; it amplifies a whole
	// fiber, so its share of total cost is small).
	Amplifier float64
	// ElectricalPort is one electrical switch port a transceiver plugs
	// into (≈ transceiver/10).
	ElectricalPort float64
}

// Default returns the paper's §3.3 price points.
func Default() Catalog {
	return Catalog{
		DCITransceiver: 1300,
		SRTransceiver:  130,
		FiberPair:      3600,
		OSSPort:        150,
		OXCPort:        250,
		Amplifier:      3900,
		ElectricalPort: 130,
	}
}

// WithSRPricedDCI returns the catalog with DCI transceivers (unrealistically
// optimistically) priced as short-reach parts — the Fig. 12(b) sensitivity
// analysis.
func (c Catalog) WithSRPricedDCI() Catalog {
	c.DCITransceiver = c.SRTransceiver
	return c
}

// Breakdown is a priced bill of materials for one design on one region.
type Breakdown struct {
	Design string // "eps", "iris", or "hybrid"
	Prices Catalog

	DCTransceivers    int // coherent transceivers at DC sites
	InNetTransceivers int // coherent transceivers at huts (EPS only)
	FiberPairs        int // leased fiber-pairs, summed over spans
	OSSPorts          int // unidirectional OSS ports (Iris/hybrid)
	OXCPorts          int // wavelength-switching ports (hybrid only)
	Amplifiers        int
}

// TransceiverCount returns all coherent transceivers in the design.
func (b Breakdown) TransceiverCount() int { return b.DCTransceivers + b.InNetTransceivers }

// Total returns the design's full annual cost. Every transceiver also
// consumes one electrical switch port.
func (b Breakdown) Total() float64 {
	c := b.Prices
	return float64(b.TransceiverCount())*(c.DCITransceiver+c.ElectricalPort) +
		float64(b.FiberPairs)*c.FiberPair +
		float64(b.OSSPorts)*c.OSSPort +
		float64(b.OXCPorts)*c.OXCPort +
		float64(b.Amplifiers)*c.Amplifier
}

// DCPortCount returns the ports at DC sites — the P = f·λ transceiver
// ports per DC that are fixed across the design space (§6.1).
func (b Breakdown) DCPortCount() int { return b.DCTransceivers }

// InNetworkPortCount returns the ports that live in the network rather
// than at the DC capacity edge: hut transceiver ports for EPS, optical
// switch ports for Iris and the hybrid (Fig. 12c's metric).
func (b Breakdown) InNetworkPortCount() int {
	return b.InNetTransceivers + b.OSSPorts + b.OXCPorts
}

// InNetworkCost returns the design cost excluding the DC transceivers and
// their electrical ports, which are identical across designs — the
// "in-network" series of Fig. 12(a).
func (b Breakdown) InNetworkCost() float64 {
	c := b.Prices
	return b.Total() - float64(b.DCTransceivers)*(c.DCITransceiver+c.ElectricalPort)
}

// EPS prices the electrical packet-switched implementation of a plan's
// topology (§4.2): the Algorithm 1 base fiber, with every fiber terminated
// in λ transceivers at each end and traffic switched electrically at every
// intermediate site. No residual fiber, amplifiers, or cut-throughs are
// needed — every span ends in an O-E-O conversion.
func EPS(pl *plan.Plan, c Catalog) Breakdown {
	b := Breakdown{Design: "eps", Prices: c}
	lambda := pl.Input.Lambda
	m := pl.Input.Map
	for id, du := range pl.Ducts {
		if du.BasePairs == 0 {
			continue
		}
		b.FiberPairs += du.BasePairs
		d := m.Ducts[id]
		for _, end := range []int{d.A, d.B} {
			if m.Nodes[end].Kind == fibermap.DC {
				b.DCTransceivers += du.BasePairs * lambda
			} else {
				b.InNetTransceivers += du.BasePairs * lambda
			}
		}
	}
	return b
}

// Iris prices the all-optical fiber-switched implementation (§4.3):
// transceivers only at DCs (λ per capacity fiber-pair), the full planned
// fiber including residual and cut-through pairs, four OSS ports per
// fiber-pair (two fibers × two ends), and the planned amplifiers.
func Iris(pl *plan.Plan, c Catalog) Breakdown {
	b := Breakdown{Design: "iris", Prices: c}
	lambda := pl.Input.Lambda
	dcs := pl.DCs
	if dcs == nil {
		dcs = pl.Input.Map.DCs()
	}
	for _, dc := range dcs {
		b.DCTransceivers += pl.Input.Capacity[dc] * lambda
	}
	b.FiberPairs = pl.TotalFiberPairs()
	// Each leased pair terminates on OSS ports at both ends of its run:
	// 2 fibers × 2 ends. Cut-through pairs pass interior huts unswitched,
	// so they buy ports only at their endpoints — which is exactly one
	// "run" per cut-through link rather than one per duct.
	portPairs := 0
	for _, du := range pl.Ducts {
		portPairs += du.BasePairs + du.ResidualPairs
	}
	for _, ct := range pl.Cuts {
		portPairs += ct.Pairs
	}
	b.OSSPorts = 4 * portPairs
	b.Amplifiers = pl.TotalAmps()
	return b
}

// Hybrid prices the Appendix B fiber+wavelength design: identical to Iris
// except that residual fibers are bundled by wavelength-switching hardware
// where they share a subpath. Residual capacity to different destinations
// combines at the source DC and rides one fiber to a hut on the shared
// prefix, where wavelengths separate onto dedicated fibers — and
// symmetrically on the destination side (Appendix B's construction).
// Observation 2 bounds the bundle at four residual fibers per merged
// fiber. Each merged-away fiber pays four OXC ports for the added
// wavelength-switching stages.
//
// The bundling structure is derived from the failure-free paths; residual
// fiber provisioned for failure reroutes keeps Iris's one-per-pair layout,
// which keeps the estimate conservative.
func Hybrid(pl *plan.Plan, c Catalog) Breakdown {
	var ca Calc
	return ca.Hybrid(pl, c)
}

// hybridGroup attributes a residual crossing of a duct to one endpoint of
// the pair's path for the Appendix B bundling count.
type hybridGroup struct {
	duct     int
	endpoint int
}

// Calc is a reusable pricing workspace: the package-level EPS, Iris and
// Hybrid functions allocate their scratch per call, while a Calc retains
// it between calls, so repricing plans over the same region allocates
// nothing once warm. A Calc is not safe for concurrent use; its zero
// value is ready.
type Calc struct {
	counts      map[hybridGroup]int
	savedByDuct map[int]int
}

// EPS prices the electrical design; it needs no scratch and exists so a
// Calc exposes all three architectures uniformly.
func (ca *Calc) EPS(pl *plan.Plan, c Catalog) Breakdown { return EPS(pl, c) }

// Iris prices the fiber-switched design; allocation-free given a plan
// that carries its DC list.
func (ca *Calc) Iris(pl *plan.Plan, c Catalog) Breakdown { return Iris(pl, c) }

// Hybrid prices the fiber+wavelength design using the Calc's retained
// scratch maps. See the package-level Hybrid for the model.
func (ca *Calc) Hybrid(pl *plan.Plan, c Catalog) Breakdown {
	b := Iris(pl, c)
	b.Design = "hybrid"

	// Attribute each pair's residual crossing of a duct to the endpoint
	// whose side of the path the duct lies on: crossings in the first
	// half bundle at the source, the rest at the destination.
	if ca.counts == nil {
		ca.counts = make(map[hybridGroup]int)
		ca.savedByDuct = make(map[int]int)
	}
	counts := ca.counts
	clear(counts)
	for pair, info := range pl.Paths {
		half := len(info.Ducts) / 2
		for i, duct := range info.Ducts {
			end := pair.A
			if i >= half {
				end = pair.B
			}
			counts[hybridGroup{duct, end}]++
		}
	}
	savedByDuct := ca.savedByDuct
	clear(savedByDuct)
	for g, k := range counts {
		savedByDuct[g.duct] += k - (k+3)/4 // Observation 2: 4:1 bundling
	}
	saved := 0
	for id, du := range pl.Ducts {
		s := savedByDuct[id]
		// Failure-scenario residual beyond the base-path count stays
		// unbundled; never save more than the duct actually carries.
		if s > du.ResidualPairs {
			s = du.ResidualPairs
		}
		saved += s
	}
	b.FiberPairs -= saved
	b.OSSPorts -= 4 * saved
	b.OXCPorts = 4 * saved
	return b
}
