package cost

import (
	"math"
	"testing"

	"iris/internal/fibermap"
	"iris/internal/plan"
)

func toyPlan(t *testing.T) *plan.Plan {
	t.Helper()
	r := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range r.Map.DCs() {
		caps[dc] = 10
	}
	pl, err := plan.New(plan.Input{Map: r.Map, Capacity: caps, Lambda: 40})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestDefaultCatalogRatios(t *testing.T) {
	c := Default()
	// §3.3's stated relativities.
	if c.FiberPair/c.DCITransceiver < 2.5 || c.FiberPair/c.DCITransceiver > 3.5 {
		t.Errorf("fiber/transceiver = %v, want ≈3", c.FiberPair/c.DCITransceiver)
	}
	if c.DCITransceiver/c.OSSPort < 5 || c.DCITransceiver/c.OSSPort > 15 {
		t.Errorf("transceiver/OSS = %v, want order of magnitude", c.DCITransceiver/c.OSSPort)
	}
	if c.OXCPort <= c.OSSPort {
		t.Error("OXC ports should cost more than OSS ports")
	}
	if c.DCITransceiver/c.ElectricalPort != 10 {
		t.Errorf("transceiver/electrical = %v, want 10", c.DCITransceiver/c.ElectricalPort)
	}
}

func TestWithSRPricedDCI(t *testing.T) {
	c := Default().WithSRPricedDCI()
	if c.DCITransceiver != c.SRTransceiver {
		t.Error("DCI transceiver not repriced")
	}
	if Default().DCITransceiver == c.DCITransceiver {
		t.Error("WithSRPricedDCI should not mutate the receiver copy semantics")
	}
}

func TestToyEPSBreakdown(t *testing.T) {
	b := EPS(toyPlan(t), Default())
	// §3.4: F_E = 60 fiber-pairs, T_E = 2·60·40 = 4800 transceivers.
	if b.FiberPairs != 60 {
		t.Errorf("fiber pairs = %d, want 60", b.FiberPairs)
	}
	if b.TransceiverCount() != 4800 {
		t.Errorf("transceivers = %d, want 4800", b.TransceiverCount())
	}
	// Of those, 1600 sit at DCs (4 DCs × 10 pairs × 40λ).
	if b.DCTransceivers != 1600 {
		t.Errorf("DC transceivers = %d, want 1600", b.DCTransceivers)
	}
	if b.InNetTransceivers != 3200 {
		t.Errorf("in-network transceivers = %d, want 3200", b.InNetTransceivers)
	}
	if b.Amplifiers != 0 || b.OSSPorts != 0 || b.OXCPorts != 0 {
		t.Errorf("EPS should have no optical gear: %+v", b)
	}
}

func TestToyIrisBreakdown(t *testing.T) {
	b := Iris(toyPlan(t), Default())
	// §3.4: T_O = 4·10·40 = 1600 transceivers, all at DCs.
	if b.DCTransceivers != 1600 || b.InNetTransceivers != 0 {
		t.Errorf("transceivers = %d/%d, want 1600/0", b.DCTransceivers, b.InNetTransceivers)
	}
	// 60 base + 16 residual fiber-pairs (paper's worked example counts 78
	// with a +2 discrepancy on the central duct; see DESIGN.md).
	if b.FiberPairs != 76 {
		t.Errorf("fiber pairs = %d, want 76", b.FiberPairs)
	}
	if b.OSSPorts != 4*76 {
		t.Errorf("OSS ports = %d, want %d", b.OSSPorts, 4*76)
	}
}

func TestToyCostRatioMatchesPaper(t *testing.T) {
	pl := toyPlan(t)
	c := Default()
	ratio := EPS(pl, c).Total() / Iris(pl, c).Total()
	// §3.4: "the electrical design costs 2.7× more than the optical one".
	if ratio < 2.5 || ratio > 2.9 {
		t.Errorf("EPS/Iris = %.2f, want ≈2.7", ratio)
	}
}

func TestHybridBreakdown(t *testing.T) {
	pl := toyPlan(t)
	c := Default()
	iris := Iris(pl, c)
	hybrid := Hybrid(pl, c)
	if hybrid.FiberPairs >= iris.FiberPairs {
		t.Errorf("hybrid fiber %d should undercut iris %d", hybrid.FiberPairs, iris.FiberPairs)
	}
	if hybrid.OXCPorts == 0 {
		t.Error("hybrid should deploy OXC ports")
	}
	// Appendix B: savings exist but are small; the two designs stay close.
	ratio := hybrid.Total() / iris.Total()
	if ratio < 0.9 || ratio > 1.0 {
		t.Errorf("hybrid/iris = %.3f, want within [0.9, 1.0]", ratio)
	}
}

func TestInNetworkAccounting(t *testing.T) {
	pl := toyPlan(t)
	c := Default()
	eps := EPS(pl, c)
	iris := Iris(pl, c)

	if got := eps.DCPortCount(); got != 1600 {
		t.Errorf("EPS DC ports = %d, want 1600", got)
	}
	if got := eps.InNetworkPortCount(); got != 3200 {
		t.Errorf("EPS in-network ports = %d, want 3200", got)
	}
	if got := iris.InNetworkPortCount(); got != 4*76 {
		t.Errorf("Iris in-network ports = %d, want %d", got, 4*76)
	}
	// Fig. 12c headline: EPS needs many times more in-network ports.
	epsRatio := float64(eps.InNetworkPortCount()) / float64(eps.DCPortCount())
	irisRatio := float64(iris.InNetworkPortCount()) / float64(iris.DCPortCount())
	if epsRatio <= irisRatio {
		t.Errorf("EPS ratio %.2f should exceed Iris ratio %.2f", epsRatio, irisRatio)
	}
	// In-network cost excludes only the DC transceivers and their ports.
	wantInNet := eps.Total() - 1600*(c.DCITransceiver+c.ElectricalPort)
	if math.Abs(eps.InNetworkCost()-wantInNet) > 1e-6 {
		t.Errorf("InNetworkCost = %v, want %v", eps.InNetworkCost(), wantInNet)
	}
}

func TestPortModelValidate(t *testing.T) {
	for _, bad := range []PortModel{
		{N: 0, P: 1, G: 1},
		{N: 4, P: 0, G: 1},
		{N: 4, P: 1, G: 0},
		{N: 4, P: 1, G: 5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("expected error for %+v", bad)
		}
	}
	if err := (PortModel{N: 16, P: 32, G: 4}).Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPortModelCounts(t *testing.T) {
	// §2.4 with N=16: centralized needs 2·N·P ports, G groups (G+1)·N·P,
	// fully distributed N²·P.
	const n, p = 16, 10
	centralized := PortModel{N: n, P: p, G: 1}
	if got := centralized.TotalPorts(); got != 2*n*p {
		t.Errorf("centralized ports = %d, want %d", got, 2*n*p)
	}
	grouped := PortModel{N: n, P: p, G: 4}
	if got := grouped.TotalPorts(); got != 5*n*p {
		t.Errorf("4-group ports = %d, want %d", got, 5*n*p)
	}
	distributed := PortModel{N: n, P: p, G: n}
	if got := distributed.TotalPorts(); got != n*n*p {
		t.Errorf("distributed ports = %d, want %d", got, n*n*p)
	}
	if got := distributed.IntraGroupPorts(); got != 0 {
		t.Errorf("distributed intra-group ports = %d, want 0", got)
	}
	for _, g := range []int{1, 2, 4, 8} {
		pm := PortModel{N: n, P: p, G: g}
		if pm.IntraGroupPorts() != 2*n*p {
			t.Errorf("G=%d intra ports = %d, want %d", g, pm.IntraGroupPorts(), 2*n*p)
		}
		if pm.IntraGroupPorts()+pm.InterGroupPorts() != pm.TotalPorts() {
			t.Errorf("G=%d port split inconsistent", g)
		}
		if pm.DCPorts()+pm.HubPorts() != pm.TotalPorts() {
			t.Errorf("G=%d DC/hub split inconsistent", g)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	// Fig. 7 headline: a fully meshed distributed electrical topology
	// costs roughly 7× the centralized one; the optical design stays far
	// cheaper as the topology becomes distributed; the SR variant helps
	// but does not close the gap.
	const n, p = 16, 10
	c := Default()
	central := PortModel{N: n, P: p, G: 1}
	mesh := PortModel{N: n, P: p, G: n}

	ratio := mesh.ElectricalCost(c, false) / central.ElectricalCost(c, false)
	if ratio < 6 || ratio > 9 {
		t.Errorf("distributed/centralized electrical = %.1f, want ≈7-8", ratio)
	}

	// Electrical cost grows monotonically with G.
	prev := -1.0
	for _, g := range []int{1, 2, 4, 8, 16} {
		pm := PortModel{N: n, P: p, G: g}
		tot := pm.ElectricalCost(c, false)
		if tot <= prev {
			t.Errorf("electrical cost not increasing at G=%d", g)
		}
		prev = tot

		sr := pm.ElectricalCost(c, true)
		if sr > tot {
			t.Errorf("SR variant costs more at G=%d", g)
		}
		opt := pm.OpticalCost(c)
		if opt >= tot {
			t.Errorf("optical should undercut plain electrical at G=%d: %v vs %v", g, opt, tot)
		}
		// Beyond the degenerate G=1 case (where the SR model prices every
		// port short-reach), optics undercut even the optimistic SR bars.
		if g >= 2 && opt >= sr {
			t.Errorf("optical should undercut SR electrical at G=%d: %v vs %v", g, opt, sr)
		}
	}

	// The optical design keeps distributed topologies near centralized
	// electrical cost (the paper's "lowers the barrier" claim).
	optMesh := mesh.OpticalCost(c)
	if optMesh > 2*central.ElectricalCost(c, false) {
		t.Errorf("optical mesh %.0f should be within ~2× centralized electrical %.0f",
			optMesh, central.ElectricalCost(c, false))
	}
}
