package siting

import (
	"strings"

	"iris/internal/geo"
)

// Render draws a Fig. 5-style ASCII map of the region's service areas:
// cells available to both models print '#', cells only the distributed
// model can use print '+', unusable cells print '.'. Existing DCs print
// 'D', hubs 'H' and other huts 'o'. Width is the number of character
// cells across; the aspect ratio follows the measurement window.
func (a Analysis) Render(hub1, hub2 int, existing []int, width int) string {
	if width < 8 {
		width = 8
	}
	win := a.window()
	cell := win.Width() / float64(width)
	height := int(win.Height()/cell) + 1

	hubDists := [][]float64{a.distancesFrom(hub1), a.distancesFrom(hub2)}
	dcDists := make([][]float64, len(existing))
	for i, dc := range existing {
		dcDists[i] = a.distancesFrom(dc)
	}
	huts := a.Map.Huts()

	centralOK := func(p geo.Point) bool {
		for _, dist := range hubDists {
			if siteDistance(a.Map, huts, dist, p, a.RoadFactor) > a.MaxFiberKM/2 {
				return false
			}
		}
		return true
	}
	distribOK := func(p geo.Point) bool {
		for _, dist := range dcDists {
			if siteDistance(a.Map, huts, dist, p, a.RoadFactor) > a.MaxFiberKM {
				return false
			}
		}
		return true
	}

	grid := make([][]byte, height)
	for row := range grid {
		grid[row] = make([]byte, width)
		for col := range grid[row] {
			p := geo.Point{
				X: win.Min.X + (float64(col)+0.5)*cell,
				Y: win.Max.Y - (float64(row)+0.5)*cell,
			}
			switch {
			case centralOK(p) && distribOK(p):
				grid[row][col] = '#'
			case distribOK(p):
				grid[row][col] = '+'
			default:
				grid[row][col] = '.'
			}
		}
	}

	place := func(p geo.Point, ch byte) {
		col := int((p.X - win.Min.X) / cell)
		row := int((win.Max.Y - p.Y) / cell)
		if row >= 0 && row < height && col >= 0 && col < width {
			grid[row][col] = ch
		}
	}
	for _, h := range huts {
		place(a.Map.Nodes[h].Pos, 'o')
	}
	for _, dc := range existing {
		place(a.Map.Nodes[dc].Pos, 'D')
	}
	place(a.Map.Nodes[hub1].Pos, 'H')
	place(a.Map.Nodes[hub2].Pos, 'H')

	var b strings.Builder
	b.WriteString("legend: '#' both models, '+' distributed only, '.' out of reach, D existing DC, H hub, o hut\n")
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
