package siting

import (
	"strings"
	"testing"

	"iris/internal/fibermap"
)

func TestRender(t *testing.T) {
	m, dcs := region(t, 6, 4)
	a := DefaultAnalysis(m)
	a.GridCellKM = 4
	h1, h2 := fibermap.ChooseHubs(m, 6)

	out := a.Render(h1, h2, dcs, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("render too small:\n%s", out)
	}
	if !strings.Contains(lines[0], "legend") {
		t.Error("missing legend")
	}
	body := strings.Join(lines[1:], "\n")
	for _, ch := range []string{"#", "+", ".", "H", "o", "D"} {
		if !strings.Contains(body, ch) {
			t.Errorf("render missing %q:\n%s", ch, out)
		}
	}
	// Every body line has the same width.
	w := len(lines[1])
	for i, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("line %d width %d != %d", i, len(l), w)
		}
	}
}

func TestRenderMinimumWidth(t *testing.T) {
	m, dcs := region(t, 6, 2)
	a := DefaultAnalysis(m)
	h1, h2 := fibermap.ChooseHubs(m, 6)
	out := a.Render(h1, h2, dcs, 1) // clamped to 8
	lines := strings.Split(out, "\n")
	if len(lines) < 2 || len(lines[1]) != 8 {
		t.Errorf("clamped width = %d, want 8", len(lines[1]))
	}
}
