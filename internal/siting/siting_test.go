package siting

import (
	"testing"

	"iris/internal/fibermap"
	"iris/internal/geo"
)

func region(t *testing.T, seed int64, nDCs int) (*fibermap.Map, []int) {
	t.Helper()
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed+50, nDCs
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return m, dcs
}

func TestCentralizedAreaErrors(t *testing.T) {
	m, _ := region(t, 1, 2)
	a := DefaultAnalysis(m)
	if _, err := a.CentralizedArea(); err == nil {
		t.Error("expected error for no hubs")
	}
}

func TestDistributedAreaErrors(t *testing.T) {
	m, _ := region(t, 1, 2)
	a := DefaultAnalysis(m)
	if _, err := a.DistributedArea(-1); err == nil {
		t.Error("expected error for bad node")
	}
}

func TestAreasPositiveAndOrdered(t *testing.T) {
	m, dcs := region(t, 2, 6)
	a := DefaultAnalysis(m)
	h1, h2 := fibermap.ChooseHubs(m, 6)

	ca, err := a.CentralizedArea(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.DistributedArea(dcs...)
	if err != nil {
		t.Fatal(err)
	}
	if ca <= 0 || da <= 0 {
		t.Fatalf("areas must be positive: centralized %v, distributed %v", ca, da)
	}
	// §2.2: the distributed model always offers at least the centralized
	// area on these regions (DCs were placed within reach of each other).
	if da < ca {
		t.Errorf("distributed area %v below centralized %v", da, ca)
	}
}

func TestCentralizedShrinksWithHubSpread(t *testing.T) {
	// Fig. 4/5: hubs placed farther apart shrink the centralized service
	// area (the intersection of their reach disks).
	m, _ := region(t, 3, 4)
	a := DefaultAnalysis(m)
	near1, near2 := fibermap.ChooseHubs(m, 4)
	far1, far2 := fibermap.ChooseHubs(m, 24)
	nearArea, err := a.CentralizedArea(near1, near2)
	if err != nil {
		t.Fatal(err)
	}
	farArea, err := a.CentralizedArea(far1, far2)
	if err != nil {
		t.Fatal(err)
	}
	if farArea > nearArea {
		t.Errorf("far-hub area %v exceeds near-hub area %v", farArea, nearArea)
	}
}

func TestDistributedShrinksWithMoreDCs(t *testing.T) {
	// Each additional DC constrains future sites (§2.2).
	m, dcs := region(t, 4, 8)
	a := DefaultAnalysis(m)
	few, err := a.DistributedArea(dcs[:2]...)
	if err != nil {
		t.Fatal(err)
	}
	many, err := a.DistributedArea(dcs...)
	if err != nil {
		t.Fatal(err)
	}
	if many > few {
		t.Errorf("8-DC area %v exceeds 2-DC area %v", many, few)
	}
}

func TestMonotoneInSLA(t *testing.T) {
	m, dcs := region(t, 5, 5)
	h1, h2 := fibermap.ChooseHubs(m, 6)
	loose := DefaultAnalysis(m)
	tight := DefaultAnalysis(m)
	tight.MaxFiberKM = 80

	la, err := loose.AreaIncrease(h1, h2, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if la <= 0 {
		t.Fatalf("area increase = %v", la)
	}
	lc, _ := loose.CentralizedArea(h1, h2)
	tc, _ := tight.CentralizedArea(h1, h2)
	if tc > lc {
		t.Errorf("tighter SLA grew the centralized area: %v > %v", tc, lc)
	}
	ld, _ := loose.DistributedArea(dcs...)
	td, _ := tight.DistributedArea(dcs...)
	if td > ld {
		t.Errorf("tighter SLA grew the distributed area: %v > %v", td, ld)
	}
}

// TestFig6Shape reproduces the paper's headline siting claim: across
// regions, the distributed design multiplies the available siting area,
// typically by 2-5×.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-region sweep")
	}
	var ratios []float64
	for seed := int64(0); seed < 8; seed++ {
		m, dcs := region(t, seed, 5+int(seed)%6)
		a := DefaultAnalysis(m)
		h1, h2 := fibermap.ChooseHubs(m, 6)
		r, err := a.AreaIncrease(h1, h2, dcs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ratios = append(ratios, r)
	}
	for i, r := range ratios {
		t.Logf("region %d: area increase %.2f×", i, r)
		if r < 1 {
			t.Errorf("region %d: distributed area smaller than centralized (%.2f×)", i, r)
		}
	}
	// At least half the regions should see a ≥1.5× increase; the paper
	// reports 2-5× on Azure's fiber maps.
	above := 0
	for _, r := range ratios {
		if r >= 1.5 {
			above++
		}
	}
	if above*2 < len(ratios) {
		t.Errorf("only %d/%d regions see ≥1.5× increase", above, len(ratios))
	}
}

func TestSiteDistanceUsesAccessTail(t *testing.T) {
	// A candidate exactly on a hut should see nearly the plain fiber-map
	// distance; a candidate far away pays the road-factored tail.
	m := &fibermap.Map{}
	h0 := m.AddNode(fibermap.Hut, geo.Point{X: 0}, "")
	h1 := m.AddNode(fibermap.Hut, geo.Point{X: 10}, "")
	m.AddDuct(h0, h1, 14)
	dist := m.Graph().Dijkstra(h1).Dist

	atHut := siteDistance(m, []int{h0, h1}, dist, geo.Point{X: 0}, 1.5)
	if atHut != 14 {
		t.Errorf("distance from hut site = %v, want 14", atHut)
	}
	away := siteDistance(m, []int{h0, h1}, dist, geo.Point{X: -10}, 1.5)
	if away != 10*1.5+14 {
		t.Errorf("distance from remote site = %v, want 29", away)
	}
}
