// Package siting implements the DC siting-flexibility analysis of §2.2 of
// the paper (Figs. 4–6): how much area is available for placing the next
// data center under the centralized model (within half the SLA fiber
// distance of both hubs) versus the distributed model (within the full SLA
// fiber distance of every existing DC), measured over real fiber-map
// distances rather than straight lines.
package siting

import (
	"fmt"

	"iris/internal/fibermap"
	"iris/internal/geo"
	"iris/internal/graph"
)

// Analysis configures the service-area computation for one region.
type Analysis struct {
	Map *fibermap.Map
	// MaxFiberKM is the SLA limit on DC-DC fiber distance (120 km).
	MaxFiberKM float64
	// RoadFactor converts a candidate site's straight-line distance to its
	// attachment huts into kilometres of access fiber.
	RoadFactor float64
	// GridCellKM is the measurement resolution.
	GridCellKM float64
	// MarginKM expands the measurement window beyond the hut bounding box.
	MarginKM float64
}

// DefaultAnalysis returns the configuration used in the evaluation,
// matching the placement parameters of fibermap.DefaultPlaceConfig. The
// measurement window extends well beyond the hut bounding box: sites far
// outside the metro core are exactly where the distributed model's longer
// reach pays off (Fig. 5's extended shaded areas).
func DefaultAnalysis(m *fibermap.Map) Analysis {
	return Analysis{Map: m, MaxFiberKM: 120, RoadFactor: 1.35, GridCellKM: 2, MarginKM: 45}
}

// window returns the measurement rectangle.
func (a Analysis) window() geo.Rect {
	var pts []geo.Point
	for _, h := range a.Map.Huts() {
		pts = append(pts, a.Map.Nodes[h].Pos)
	}
	return geo.BoundingRect(pts).Expand(a.MarginKM)
}

// distancesFrom returns shortest fiber distances from the given node to
// every node of the map.
func (a Analysis) distancesFrom(node int) []float64 {
	return a.Map.Graph().Dijkstra(node).Dist
}

// siteDistance returns the fiber distance from a candidate site to a
// target node, attaching the site to its two nearest huts as PlaceDCs
// does: the access tail plus the fiber-map distance from the hut.
func siteDistance(m *fibermap.Map, huts []int, distToTarget []float64, p geo.Point, roadFactor float64) float64 {
	best := graph.Inf
	// Consider the two nearest huts, consistent with DC dual-homing.
	h1, h2 := -1, -1
	d1, d2 := graph.Inf, graph.Inf
	for _, h := range huts {
		d := p.Dist(m.Nodes[h].Pos)
		switch {
		case d < d1:
			h2, d2 = h1, d1
			h1, d1 = h, d
		case d < d2:
			h2, d2 = h, d
		}
	}
	for _, hd := range [][2]float64{{float64(h1), d1}, {float64(h2), d2}} {
		h := int(hd[0])
		if h < 0 {
			continue
		}
		total := hd[1]*roadFactor + distToTarget[h]
		if total < best {
			best = total
		}
	}
	return best
}

// CentralizedArea returns the area (km²) where a new DC could be sited in
// the centralized design with the given hub nodes: its fiber distance to
// each hub must be at most MaxFiberKM/2, so that any DC-hub-DC path meets
// the SLA (§2.2).
func (a Analysis) CentralizedArea(hubs ...int) (float64, error) {
	if len(hubs) == 0 {
		return 0, fmt.Errorf("siting: centralized analysis needs at least one hub")
	}
	dists := make([][]float64, len(hubs))
	for i, h := range hubs {
		dists[i] = a.distancesFrom(h)
	}
	huts := a.Map.Huts()
	limit := a.MaxFiberKM / 2
	area := geo.GridArea(a.window(), a.GridCellKM, func(p geo.Point) bool {
		for _, dist := range dists {
			if siteDistance(a.Map, huts, dist, p, a.RoadFactor) > limit {
				return false
			}
		}
		return true
	})
	return area, nil
}

// DistributedArea returns the area (km²) where a new DC could be sited in
// the distributed design: its fiber distance to every existing DC must be
// at most MaxFiberKM. With no existing DCs the whole serviceable window
// (any site that can attach to the fiber map at all) qualifies.
func (a Analysis) DistributedArea(existing ...int) (float64, error) {
	for _, dc := range existing {
		if dc < 0 || dc >= len(a.Map.Nodes) {
			return 0, fmt.Errorf("siting: DC node %d out of range", dc)
		}
	}
	dists := make([][]float64, len(existing))
	for i, dc := range existing {
		dists[i] = a.distancesFrom(dc)
	}
	huts := a.Map.Huts()
	area := geo.GridArea(a.window(), a.GridCellKM, func(p geo.Point) bool {
		for _, dist := range dists {
			if siteDistance(a.Map, huts, dist, p, a.RoadFactor) > a.MaxFiberKM {
				return false
			}
		}
		return true
	})
	return area, nil
}

// AreaIncrease returns the Fig. 6 metric for one region: the ratio of the
// distributed service area (given the existing DCs) to the centralized
// service area (given the two hubs).
func (a Analysis) AreaIncrease(hub1, hub2 int, existing []int) (float64, error) {
	ca, err := a.CentralizedArea(hub1, hub2)
	if err != nil {
		return 0, err
	}
	if ca == 0 {
		return 0, fmt.Errorf("siting: centralized service area is empty")
	}
	da, err := a.DistributedArea(existing...)
	if err != nil {
		return 0, err
	}
	return da / ca, nil
}
