package plan

import (
	"testing"

	"iris/internal/fibermap"
)

// arenaInput builds a generated-region planning input.
func arenaInput(t *testing.T, seed int64, n, f, maxFailures int) Input {
	t.Helper()
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed, n
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = f
	}
	return Input{Map: m, Capacity: caps, Lambda: 40, MaxFailures: maxFailures}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// plansIdentical asserts two plans agree on every output field, treating
// nil and empty slices as equal (a reused arena returns empty slices
// where a fresh solve returns nil).
func plansIdentical(t *testing.T, label string, want, got *Plan) {
	t.Helper()
	if got.NScena != want.NScena {
		t.Fatalf("%s: NScena %d != %d", label, got.NScena, want.NScena)
	}
	if len(got.Ducts) != len(want.Ducts) {
		t.Fatalf("%s: %d ducts != %d", label, len(got.Ducts), len(want.Ducts))
	}
	for id, w := range want.Ducts {
		g := got.Ducts[id]
		if g == nil || *g != *w {
			t.Fatalf("%s: duct %d = %+v, want %+v", label, id, g, w)
		}
	}
	if len(got.Amps) != len(want.Amps) {
		t.Fatalf("%s: %d amp sites != %d", label, len(got.Amps), len(want.Amps))
	}
	for v, w := range want.Amps {
		if got.Amps[v] != w {
			t.Fatalf("%s: amps[%d] = %d, want %d", label, v, got.Amps[v], w)
		}
	}
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("%s: %d paths != %d", label, len(got.Paths), len(want.Paths))
	}
	for pair, w := range want.Paths {
		g := got.Paths[pair]
		if g == nil {
			t.Fatalf("%s: pair %v missing", label, pair)
		}
		if g.Pair != w.Pair || g.TotalKM != w.TotalKM ||
			!intsEqual(g.Nodes, w.Nodes) || !intsEqual(g.Ducts, w.Ducts) ||
			!intsEqual(g.AmpNodes, w.AmpNodes) || !intsEqual(g.Bypassed, w.Bypassed) ||
			!intsEqual(g.CutDucts, w.CutDucts) {
			t.Fatalf("%s: pair %v path = %+v, want %+v", label, pair, g, w)
		}
	}
	if len(got.Cuts) != len(want.Cuts) {
		t.Fatalf("%s: %d cut-throughs != %d", label, len(got.Cuts), len(want.Cuts))
	}
	for i := range want.Cuts {
		w, g := want.Cuts[i], got.Cuts[i]
		if g.From != w.From || g.To != w.To || g.Pairs != w.Pairs ||
			!intsEqual(g.Ducts, w.Ducts) || !intsEqual(g.Interior, w.Interior) {
			t.Fatalf("%s: cut-through %d = %+v, want %+v", label, i, g, w)
		}
	}
	if len(got.SLA) != len(want.SLA) {
		t.Fatalf("%s: %d SLA records != %d", label, len(got.SLA), len(want.SLA))
	}
	for i := range want.SLA {
		w, g := want.SLA[i], got.SLA[i]
		if g.Pair != w.Pair || g.TotalKM != w.TotalKM || !intsEqual(g.Cuts, w.Cuts) {
			t.Fatalf("%s: SLA %d = %+v, want %+v", label, i, g, w)
		}
	}
	if len(got.Viol) != len(want.Viol) {
		t.Fatalf("%s: %d violations != %d", label, len(got.Viol), len(want.Viol))
	}
	for i := range want.Viol {
		if got.Viol[i] != want.Viol[i] {
			t.Fatalf("%s: viol %d = %q, want %q", label, i, got.Viol[i], want.Viol[i])
		}
	}
}

// A reused Planner must return bit-identical plans to fresh solves, across
// seeds, capacity changes, tolerance changes and interleaved regions —
// both the fingerprint-hit path (same region re-solved) and the miss path
// (workspace rebuilt) are exercised by one shared instance.
func TestPlannerReuseBitIdentical(t *testing.T) {
	shared := NewPlanner()
	solve := func(in Input, label string) {
		t.Helper()
		want, err := New(in)
		if err != nil {
			t.Fatalf("%s: fresh: %v", label, err)
		}
		got, err := shared.Plan(in)
		if err != nil {
			t.Fatalf("%s: reused: %v", label, err)
		}
		plansIdentical(t, label, want, got)
	}
	for seed := int64(0); seed < 4; seed++ {
		a := arenaInput(t, seed, 6, 8, 1)
		b := arenaInput(t, seed+100, 5, 16, 1)
		solve(a, "A first")
		solve(a, "A re-solved (fingerprint hit)")
		solve(b, "B after A (fingerprint miss)")
		solve(a, "A after B (fingerprint miss)")
		af := a
		af.MaxFailures = 0
		solve(af, "A tolerance change")
		ac := arenaInput(t, seed, 6, 16, 1)
		solve(ac, "A capacity change")
	}
	// Centralized designs route differently; cover the hub path too.
	in := arenaInput(t, 2, 5, 8, 1)
	h1, h2 := fibermap.ChooseHubs(in.Map, 5)
	in.ViaHubs = []int{h1, h2}
	solve(in, "centralized")
}

// A warmed Planner re-solving the same region must not allocate: the
// whole pipeline — scenario DFS, routing, amplifier and cut-through
// placement, hose-load lookups, provisioning, output maps — runs on the
// retained arena.
func TestPlannerSteadyStateZeroAlloc(t *testing.T) {
	in := arenaInput(t, 1, 6, 8, 1)
	p := NewPlanner()
	if _, err := p.Plan(in); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(in); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := p.Plan(in); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warmed Planner.Plan allocated %v per run, want 0", avg)
	}
}
