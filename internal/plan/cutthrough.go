package plan

import (
	"fmt"
	"math"
)

// placeCutThroughs resolves reconfiguration-budget violations (TC4: too
// many optical switch traversals on a path) by building cut-through links:
// uninterrupted fiber runs that traverse one or more switching points
// without being switched (Appendix A). Candidates are scored by paths
// resolved per duct of extra fiber; the best is built, affected paths mark
// the bypassed nodes, and the loop repeats until no violations remain.
//
// A candidate's identity — (from, to, duct sequence) — is interned per
// iteration in p.ctIter; the committed cut-throughs of the whole solve
// are interned in p.ctAll with their duct and interior lists in flat
// slabs, so the loop allocates nothing once the planner is warm.
func (p *Planner) placeCutThroughs(recs []pathRec) error {
	for iter := 0; ; iter++ {
		if iter > len(recs)*8 {
			return fmt.Errorf("plan: cut-through placement did not converge")
		}
		pend := p.pend[:0]
		for i := range recs {
			if reconfigViolated(&recs[i]) {
				pend = append(pend, int32(i))
			}
		}
		p.pend = pend
		if len(pend) == 0 {
			return nil
		}

		p.ctIter.reset()
		p.ctIterCands = p.ctIterCands[:0]
		p.ctIterInterior = p.ctIterInterior[:0]
		for _, ri := range pend {
			p.cutCandidates(recs, ri)
		}
		if len(p.ctIterCands) == 0 {
			for _, ri := range pend {
				pr := &recs[ri]
				p.plan.Viol = append(p.plan.Viol, fmt.Sprintf(
					"pair %d-%d: no cut-through can satisfy TC4", pr.pair.A, pr.pair.B))
			}
			return nil
		}

		// Deterministic greedy choice: paths resolved per duct of fiber,
		// ties broken by the packed-key order (packedCmp) so the choice
		// matches a sorted sweep with strict improvement.
		best := -1
		var bestScore float64
		for ci := range p.ctIterCands {
			key := p.ctIter.key(ci)
			score := float64(len(p.ctResolve[ci])) / float64(len(key)-2)
			if best < 0 || score > bestScore ||
				(score == bestScore && packedCmp(key, p.ctIter.key(best)) < 0) {
				best, bestScore = ci, score
			}
		}

		bc := &p.ctIterCands[best]
		key := p.ctIter.key(best)
		ducts := key[2:]
		interior := p.ctIterInterior[bc.intOff : bc.intOff+bc.intLen]
		for _, ri := range p.ctResolve[best] {
			pr := &recs[ri]
			for _, n := range interior {
				if !pr.bypassed(n) {
					pr.bypass = append(pr.bypass, n)
				}
			}
			for _, d := range ducts {
				if !pr.onCutThrough(int(d)) {
					pr.cutDucts = append(pr.cutDucts, int(d))
				}
			}
		}

		// Fiber on the cut-through: worst-case load of the pairs using it,
		// maximised across scenarios (the link is physical infrastructure).
		p.idxBuf = p.idxBuf[:0]
		for _, ri := range p.ctResolve[best] {
			p.idxBuf = append(p.idxBuf, recs[ri].pairIdx)
		}
		need := int(math.Ceil(p.cachedLoad(p.idxBuf) - 1e-9))
		id, added := p.ctAll.intern(key)
		if added {
			ct := ctRec{
				from: int(key[0]), to: int(key[1]),
				ductOff: int32(len(p.ctDuctSlab)), intOff: int32(len(p.ctIntSlab)),
			}
			for _, d := range ducts {
				p.ctDuctSlab = append(p.ctDuctSlab, int(d))
			}
			for _, n := range interior {
				p.ctIntSlab = append(p.ctIntSlab, n)
			}
			ct.ductLen = int32(len(ducts))
			ct.intLen = int32(len(interior))
			p.ctRecs = append(p.ctRecs, ct)
		}
		ct := &p.ctRecs[id]
		if need > ct.pairs {
			delta := need - ct.pairs
			ct.pairs = need
			for _, d := range ducts {
				p.ductUse(int(d)).CutThroughPairs += delta
			}
		}
	}
}

// cutCandidates enumerates the contiguous runs of switched interior nodes
// a cut-through could bypass on path ri, interning each candidate's
// identity in p.ctIter and recording the path against it. The amplified
// node cannot be bypassed (the path needs its amplifier). Candidates need
// not resolve the violation outright — the greedy loop applies
// cut-throughs until the budget is met, and full bypassing always fits it
// (at most two terminal plus two loopback OSS traversals remain). The
// first path to propose a candidate fixes its interior, matching the
// map-based planner's first-writer-wins behaviour.
func (p *Planner) cutCandidates(recs []pathRec, ri int32) {
	pr := &recs[ri]
	n := len(pr.nodes)
	for i := 0; i < n-1; i++ {
		for j := i + 2; j < n; j++ {
			// Bypass interior nodes strictly between nodes[i] and nodes[j].
			p.tmpInterior = p.tmpInterior[:0]
			valid := true
			for _, v := range pr.nodes[i+1 : j] {
				if v == pr.ampNode {
					valid = false
					break
				}
				if pr.bypassed(v) {
					continue // already bypassed; no gain from this run
				}
				p.tmpInterior = append(p.tmpInterior, v)
			}
			if !valid || len(p.tmpInterior) == 0 {
				continue
			}
			p.tmpKey = append(p.tmpKey[:0], int32(pr.nodes[i]), int32(pr.nodes[j]))
			for k := i; k < j; k++ {
				p.tmpKey = append(p.tmpKey, int32(pr.ducts[k].ID))
			}
			id, added := p.ctIter.intern(p.tmpKey)
			if added {
				p.ctIterCands = append(p.ctIterCands, ctIterCand{
					intOff: int32(len(p.ctIterInterior)),
					intLen: int32(len(p.tmpInterior)),
				})
				p.ctIterInterior = append(p.ctIterInterior, p.tmpInterior...)
				if id >= len(p.ctResolve) {
					p.ctResolve = append(p.ctResolve, nil)
				}
				p.ctResolve[id] = p.ctResolve[id][:0]
			}
			p.ctResolve[id] = append(p.ctResolve[id], ri)
		}
	}
}
