package plan

import (
	"fmt"
	"math"
	"sort"

	"iris/internal/hose"
)

// placeCutThroughs resolves reconfiguration-budget violations (TC4: too
// many optical switch traversals on a path) by building cut-through links:
// uninterrupted fiber runs that traverse one or more switching points
// without being switched (Appendix A). Candidates are scored by paths
// resolved per duct of extra fiber; the best is built, affected paths mark
// the bypassed nodes, and the loop repeats until no violations remain.
func (p *planner) placeCutThroughs(paths []*pathRec) error {
	for iter := 0; ; iter++ {
		if iter > len(paths)*8 {
			return fmt.Errorf("plan: cut-through placement did not converge")
		}
		var pending []*pathRec
		for _, pr := range paths {
			if reconfigViolated(pr) {
				pending = append(pending, pr)
			}
		}
		if len(pending) == 0 {
			return nil
		}

		type candidate struct {
			key      string
			from, to int
			interior []int
			ducts    []int
			resolves []*pathRec
		}
		cands := make(map[string]*candidate)
		for _, pr := range pending {
			for _, c := range cutCandidates(pr) {
				key := ctKey(c.from, c.to, c.ducts)
				cc, ok := cands[key]
				if !ok {
					cc = &candidate{key: key, from: c.from, to: c.to, interior: c.interior, ducts: c.ducts}
					cands[key] = cc
				}
				cc.resolves = append(cc.resolves, pr)
			}
		}
		if len(cands) == 0 {
			for _, pr := range pending {
				p.plan.Viol = append(p.plan.Viol, fmt.Sprintf(
					"pair %d-%d: no cut-through can satisfy TC4", pr.pair.A, pr.pair.B))
			}
			return nil
		}

		// Deterministic greedy choice: paths resolved per duct of fiber.
		keys := make([]string, 0, len(cands))
		for k := range cands {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var best *candidate
		var bestScore float64
		for _, k := range keys {
			c := cands[k]
			score := float64(len(c.resolves)) / float64(len(c.ducts))
			if best == nil || score > bestScore {
				best, bestScore = c, score
			}
		}

		for _, pr := range best.resolves {
			for _, n := range best.interior {
				pr.bypass[n] = true
			}
			for _, d := range best.ducts {
				pr.cutDucts[d] = true
			}
		}

		// Fiber on the cut-through: worst-case load of the pairs using it,
		// maximised across scenarios (the link is physical infrastructure).
		var pairs []hose.Pair
		for _, pr := range best.resolves {
			pairs = append(pairs, pr.pair)
		}
		need := int(math.Ceil(hose.WorstCaseLoad(p.caps, pairs) - 1e-9))
		ct, ok := p.cuts[best.key]
		if !ok {
			ct = &CutThrough{From: best.from, To: best.to,
				Ducts: best.ducts, Interior: best.interior}
			p.cuts[best.key] = ct
		}
		if need > ct.Pairs {
			delta := need - ct.Pairs
			ct.Pairs = need
			for _, d := range best.ducts {
				p.ductUse(d).CutThroughPairs += delta
			}
		}
	}
}

type cutCand struct {
	from, to int
	interior []int
	ducts    []int
}

// cutCandidates enumerates the contiguous runs of switched interior nodes
// a cut-through could bypass on this path. The amplified node cannot be
// bypassed (the path needs its amplifier). Candidates need not resolve the
// violation outright — the greedy loop applies cut-throughs until the
// budget is met, and full bypassing always fits it (at most two terminal
// plus two loopback OSS traversals remain).
func cutCandidates(pr *pathRec) []cutCand {
	n := len(pr.nodes)
	var out []cutCand
	for i := 0; i < n-1; i++ {
		for j := i + 2; j < n; j++ {
			// Bypass interior nodes strictly between nodes[i] and nodes[j].
			var interior []int
			valid := true
			for _, v := range pr.nodes[i+1 : j] {
				if v == pr.ampNode {
					valid = false
					break
				}
				if pr.bypass[v] {
					continue // already bypassed; no gain from this run
				}
				interior = append(interior, v)
			}
			if !valid || len(interior) == 0 {
				continue
			}
			var ducts []int
			for k := i; k < j; k++ {
				ducts = append(ducts, pr.ducts[k].ID)
			}
			out = append(out, cutCand{
				from: pr.nodes[i], to: pr.nodes[j],
				interior: interior, ducts: ducts,
			})
		}
	}
	return out
}

// ctKey identifies a cut-through by endpoints and duct sequence. It is on
// the planner's hot path, so it packs the IDs as compact 16-bit values
// rather than formatting text.
func ctKey(from, to int, ducts []int) string {
	b := make([]byte, 0, 4+2*len(ducts))
	b = append(b, byte(from), byte(from>>8), byte(to), byte(to>>8))
	for _, d := range ducts {
		b = append(b, byte(d), byte(d>>8))
	}
	return string(b)
}
