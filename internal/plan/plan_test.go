package plan

import (
	"strings"
	"testing"

	"iris/internal/fibermap"
	"iris/internal/geo"
	"iris/internal/hose"
	"iris/internal/optics"
)

// toyInput returns the §3.4 example: 4 DCs of 10 fiber-pairs each, λ=40.
func toyInput(maxFailures int) (Input, *fibermap.ToyRegion) {
	r := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range r.Map.DCs() {
		caps[dc] = 10
	}
	return Input{Map: r.Map, Capacity: caps, Lambda: 40, MaxFailures: maxFailures}, r
}

func TestValidateInput(t *testing.T) {
	good, _ := toyInput(0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}

	t.Run("nil map", func(t *testing.T) {
		if err := (Input{}).Validate(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("missing capacity", func(t *testing.T) {
		in, r := toyInput(0)
		delete(in.Capacity, r.DC3)
		if err := in.Validate(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("zero capacity", func(t *testing.T) {
		in, r := toyInput(0)
		in.Capacity[r.DC3] = 0
		if err := in.Validate(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("bad lambda", func(t *testing.T) {
		in, _ := toyInput(0)
		in.Lambda = 0
		if err := in.Validate(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("negative failures", func(t *testing.T) {
		in, _ := toyInput(-1)
		if err := in.Validate(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("too few DCs", func(t *testing.T) {
		m := &fibermap.Map{}
		a := m.AddNode(fibermap.DC, geo.Point{}, "")
		b := m.AddNode(fibermap.Hut, geo.Point{X: 1}, "")
		m.AddDuct(a, b, 5)
		in := Input{Map: m, Capacity: map[int]int{a: 1}, Lambda: 40}
		if err := in.Validate(); err == nil {
			t.Error("expected error")
		}
	})
}

func TestToyPlanMatchesPaperSection34(t *testing.T) {
	in, r := toyInput(0)
	pl, err := New(in)
	if err != nil {
		t.Fatal(err)
	}

	// Base (Algorithm 1) capacities: 10 pairs on each access duct, 20 on
	// the central duct — exactly the electrical design's fiber counts.
	wantBase := map[int]int{r.L1: 10, r.L2: 10, r.L3: 10, r.L4: 10, r.L5: 20}
	for duct, want := range wantBase {
		du, ok := pl.Ducts[duct]
		if !ok {
			t.Fatalf("duct %d unprovisioned", duct)
		}
		if du.BasePairs != want {
			t.Errorf("duct %d base pairs = %d, want %d", duct, du.BasePairs, want)
		}
	}
	if got := pl.BaseFiberPairs(); got != 60 {
		t.Errorf("BaseFiberPairs = %d, want 60 (paper's F_E)", got)
	}

	// Residual (§4.3): one pair per DC pair along its shortest path —
	// 3 on each access duct, 4 crossing the central duct. The paper's
	// worked example quotes 6 on L5; see DESIGN.md for the 2-pair delta.
	wantResidual := map[int]int{r.L1: 3, r.L2: 3, r.L3: 3, r.L4: 3, r.L5: 4}
	for duct, want := range wantResidual {
		if got := pl.Ducts[duct].ResidualPairs; got != want {
			t.Errorf("duct %d residual pairs = %d, want %d", duct, got, want)
		}
	}
	if got := pl.TotalFiberPairs(); got != 76 {
		t.Errorf("TotalFiberPairs = %d, want 76", got)
	}

	// Short toy distances need no amplifiers or cut-throughs.
	if pl.TotalAmps() != 0 {
		t.Errorf("TotalAmps = %d, want 0", pl.TotalAmps())
	}
	if len(pl.Cuts) != 0 {
		t.Errorf("Cuts = %v, want none", pl.Cuts)
	}
	if len(pl.Viol) != 0 {
		t.Errorf("violations: %v", pl.Viol)
	}
	if len(pl.SLA) != 0 {
		t.Errorf("SLA violations: %v", pl.SLA)
	}

	// All 6 pairs routed; both huts used.
	if len(pl.Paths) != 6 {
		t.Errorf("paths = %d, want 6", len(pl.Paths))
	}
	if huts := pl.UsedHuts(); len(huts) != 2 {
		t.Errorf("UsedHuts = %v, want both", huts)
	}
	if pl.NScena != 1 {
		t.Errorf("NScena = %d, want 1", pl.NScena)
	}
}

func TestToyPlanPathsAreFeasible(t *testing.T) {
	in, r := toyInput(0)
	pl, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	for pair := range pl.Paths {
		ev, ok := pl.EvaluatePath(pair)
		if !ok {
			t.Fatalf("no evaluation for %v", pair)
		}
		if !ev.Feasible() {
			t.Errorf("pair %v infeasible: %v", pair, ev.Violations)
		}
	}
	// The cross-hub path must traverse both hubs.
	info := pl.Paths[hose.Pair{A: r.DC1, B: r.DC3}]
	if info == nil || len(info.Nodes) != 4 {
		t.Fatalf("DC1-DC3 path = %+v", info)
	}
}

func TestEvaluatePathUnknownPair(t *testing.T) {
	in, _ := toyInput(0)
	pl, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pl.EvaluatePath(hose.Pair{A: 0, B: 0}); ok {
		t.Error("expected ok=false for unknown pair")
	}
}

func TestToyPlanWithFailures(t *testing.T) {
	in, r := toyInput(2)
	pl, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	// 5 ducts, tolerance 2: 1 + 5 + 10 = 16 scenarios.
	if pl.NScena != 16 {
		t.Errorf("NScena = %d, want 16", pl.NScena)
	}
	// Cutting any access duct isolates its DC (single-homed toy), so the
	// base capacities cannot grow beyond the failure-free ones.
	if got := pl.BaseFiberPairs(); got != 60 {
		t.Errorf("BaseFiberPairs = %d, want 60", got)
	}
	_ = r
}

func TestAmplifierPlacement(t *testing.T) {
	// A 115 km line: DC0 -10- h1 -50- h2 -55- DC1. Without amplification
	// the 115 km segment violates TC1; only h2 splits it into ≤80 km
	// segments (60 | 55). Algorithm 2 must place min(cap) amplifiers there.
	m := &fibermap.Map{}
	dc0 := m.AddNode(fibermap.DC, geo.Point{X: 0}, "")
	h1 := m.AddNode(fibermap.Hut, geo.Point{X: 10}, "")
	h2 := m.AddNode(fibermap.Hut, geo.Point{X: 60}, "")
	dc1 := m.AddNode(fibermap.DC, geo.Point{X: 115}, "")
	m.AddDuct(dc0, h1, 10)
	m.AddDuct(h1, h2, 50)
	m.AddDuct(h2, dc1, 55)

	pl, err := New(Input{
		Map:      m,
		Capacity: map[int]int{dc0: 4, dc1: 6},
		Lambda:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Viol) != 0 {
		t.Fatalf("violations: %v", pl.Viol)
	}
	if got := pl.Amps[h2]; got != 4 {
		t.Errorf("amps at h2 = %d, want 4 (min capacity of the pair)", got)
	}
	if got := pl.Amps[h1]; got != 0 {
		t.Errorf("amps at h1 = %d, want 0", got)
	}
	ev, _ := pl.EvaluatePath(hose.Pair{A: dc0, B: dc1})
	if !ev.Feasible() {
		t.Errorf("path infeasible after amplification: %v", ev.Violations)
	}
	if ev.Amps != 3 || ev.InlineAmps != 1 {
		t.Errorf("amps on path = %d (inline %d), want 3 (1)", ev.Amps, ev.InlineAmps)
	}
	info := pl.Paths[hose.Pair{A: dc0, B: dc1}]
	if len(info.AmpNodes) != 1 || info.AmpNodes[0] != h2 {
		t.Errorf("AmpNodes = %v, want [h2=%d]", info.AmpNodes, h2)
	}
}

func TestCutThroughPlacement(t *testing.T) {
	// A chain with 6 interior huts: 2 terminal + 6 interior OSS = 8 > 6
	// traversals, violating TC4. Cut-throughs must bypass at least two
	// interior switches.
	m := &fibermap.Map{}
	dc0 := m.AddNode(fibermap.DC, geo.Point{X: 0}, "")
	prev := dc0
	var interior []int
	for i := 1; i <= 6; i++ {
		h := m.AddNode(fibermap.Hut, geo.Point{X: float64(10 * i)}, "")
		m.AddDuct(prev, h, 10)
		interior = append(interior, h)
		prev = h
	}
	dc1 := m.AddNode(fibermap.DC, geo.Point{X: 70}, "")
	m.AddDuct(prev, dc1, 10)

	pl, err := New(Input{
		Map:      m,
		Capacity: map[int]int{dc0: 8, dc1: 8},
		Lambda:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Viol) != 0 {
		t.Fatalf("violations: %v", pl.Viol)
	}
	if len(pl.Cuts) == 0 {
		t.Fatal("expected at least one cut-through")
	}
	ev, _ := pl.EvaluatePath(hose.Pair{A: dc0, B: dc1})
	if !ev.Feasible() {
		t.Errorf("path infeasible: %v", ev.Violations)
	}
	if ev.OSSCount > optics.MaxOSSPerPath {
		t.Errorf("OSS count = %d, exceeds %d", ev.OSSCount, optics.MaxOSSPerPath)
	}
	// Cut-through fiber is leased in the ducts it traverses.
	total := 0
	for _, ct := range pl.Cuts {
		if ct.Pairs <= 0 {
			t.Errorf("cut-through with no fiber: %+v", ct)
		}
		total += ct.Pairs * len(ct.Ducts)
	}
	sum := 0
	for _, du := range pl.Ducts {
		sum += du.CutThroughPairs
	}
	if sum != total {
		t.Errorf("per-duct cut-through fiber %d != per-link accounting %d", sum, total)
	}
	_ = interior
}

func TestLongDuctsExcluded(t *testing.T) {
	// A duct longer than the 80 km span limit cannot be used even though
	// it is the direct route; the plan must route around it.
	m := &fibermap.Map{}
	dc0 := m.AddNode(fibermap.DC, geo.Point{X: 0}, "")
	dc1 := m.AddNode(fibermap.DC, geo.Point{X: 90}, "")
	h := m.AddNode(fibermap.Hut, geo.Point{X: 45, Y: 10}, "")
	long := m.AddDuct(dc0, dc1, 90) // excluded: > 80 km
	m.AddDuct(dc0, h, 50)
	m.AddDuct(h, dc1, 50)

	pl, err := New(Input{Map: m, Capacity: map[int]int{dc0: 2, dc1: 2}, Lambda: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, used := pl.Ducts[long]; used {
		t.Error("over-length duct must not be provisioned")
	}
	info := pl.Paths[hose.Pair{A: dc0, B: dc1}]
	if info.TotalKM != 100 {
		t.Errorf("path length = %v, want 100 via the hut", info.TotalKM)
	}
}

func TestDisconnectedDCsRejected(t *testing.T) {
	m := &fibermap.Map{}
	dc0 := m.AddNode(fibermap.DC, geo.Point{X: 0}, "")
	dc1 := m.AddNode(fibermap.DC, geo.Point{X: 200}, "")
	h := m.AddNode(fibermap.Hut, geo.Point{X: 100}, "")
	// Connect them only through ducts that exceed the span limit: the
	// map validates as connected, but no usable topology exists.
	m.AddDuct(dc0, h, 85)
	m.AddDuct(h, dc1, 85)
	_, err := New(Input{Map: m, Capacity: map[int]int{dc0: 1, dc1: 1}, Lambda: 40})
	if err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Errorf("err = %v, want not-connected", err)
	}
}

func TestHoseProvisioningAvoidsDoubleCounting(t *testing.T) {
	// Star: three DCs on one hub. The hub-adjacent duct of DC0 carries
	// pairs (0,1) and (0,2); naive provisioning would give
	// min(4,9)+min(4,9)=8 pairs, the hose optimum is 4.
	m := &fibermap.Map{}
	h := m.AddNode(fibermap.Hut, geo.Point{}, "")
	dc0 := m.AddNode(fibermap.DC, geo.Point{X: 10}, "")
	dc1 := m.AddNode(fibermap.DC, geo.Point{Y: 10}, "")
	dc2 := m.AddNode(fibermap.DC, geo.Point{X: -10}, "")
	d0 := m.AddDuct(dc0, h, 10)
	m.AddDuct(dc1, h, 10)
	m.AddDuct(dc2, h, 10)

	pl, err := New(Input{
		Map:      m,
		Capacity: map[int]int{dc0: 4, dc1: 9, dc2: 9},
		Lambda:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Ducts[d0].BasePairs; got != 4 {
		t.Errorf("DC0 access duct base pairs = %d, want 4 (hose bound)", got)
	}
}

func TestFailureScenarioRaisesCapacity(t *testing.T) {
	// Two parallel routes between DC pairs; cutting one must push all the
	// load to the other, raising its provisioned capacity.
	m := &fibermap.Map{}
	dc0 := m.AddNode(fibermap.DC, geo.Point{X: 0}, "")
	dc1 := m.AddNode(fibermap.DC, geo.Point{X: 40}, "")
	hTop := m.AddNode(fibermap.Hut, geo.Point{X: 20, Y: 5}, "")
	hBot := m.AddNode(fibermap.Hut, geo.Point{X: 20, Y: -5}, "")
	top1 := m.AddDuct(dc0, hTop, 20)
	top2 := m.AddDuct(hTop, dc1, 20)
	bot1 := m.AddDuct(dc0, hBot, 21)
	bot2 := m.AddDuct(hBot, dc1, 21)

	noFail, err := New(Input{Map: m, Capacity: map[int]int{dc0: 6, dc1: 6}, Lambda: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Without failures only the shorter top route is provisioned.
	if noFail.Ducts[top1] == nil || noFail.Ducts[top1].BasePairs != 6 {
		t.Fatalf("top route unprovisioned: %+v", noFail.Ducts[top1])
	}
	if noFail.Ducts[bot1] != nil {
		t.Errorf("bottom route provisioned without failures")
	}

	oneFail, err := New(Input{Map: m, Capacity: map[int]int{dc0: 6, dc1: 6}, Lambda: 40, MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, duct := range []int{top1, top2, bot1, bot2} {
		du := oneFail.Ducts[duct]
		if du == nil || du.BasePairs != 6 {
			t.Errorf("duct %d base pairs = %+v, want 6 under 1-failure tolerance", duct, du)
		}
	}
}

func TestPlannedRegionsSatisfyAllConstraints(t *testing.T) {
	// End-to-end property: on generated regions, every failure-free path
	// in the plan satisfies the full optical constraint set and capacity
	// covers every DC pair's minimum.
	for seed := int64(0); seed < 3; seed++ {
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = seed
		m := fibermap.Generate(gcfg)
		pcfg := fibermap.DefaultPlace()
		pcfg.Seed, pcfg.N = seed, 6
		dcs, err := fibermap.PlaceDCs(m, pcfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		caps := make(map[int]int)
		for i, dc := range dcs {
			caps[dc] = 8 + 4*(i%3)
		}
		pl, err := New(Input{Map: m, Capacity: caps, Lambda: 40})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(pl.Viol) != 0 {
			t.Fatalf("seed %d: violations %v", seed, pl.Viol)
		}
		if len(pl.Paths) != len(dcs)*(len(dcs)-1)/2 {
			t.Errorf("seed %d: %d paths, want %d", seed, len(pl.Paths), len(dcs)*(len(dcs)-1)/2)
		}
		for pair, info := range pl.Paths {
			ev, _ := pl.EvaluatePath(pair)
			if !ev.Feasible() {
				t.Errorf("seed %d pair %v: %v", seed, pair, ev.Violations)
			}
			// Every duct on the path is provisioned at least to the
			// pair's own worst-case demand — by switched base capacity,
			// or by a cut-through fiber where the pair bypasses switching.
			need := caps[pair.A]
			if caps[pair.B] < need {
				need = caps[pair.B]
			}
			cut := make(map[int]bool, len(info.CutDucts))
			for _, d := range info.CutDucts {
				cut[d] = true
			}
			for _, duct := range info.Ducts {
				du := pl.Ducts[duct]
				if du == nil {
					t.Errorf("seed %d pair %v duct %d unprovisioned", seed, pair, duct)
					continue
				}
				if cut[duct] {
					if du.CutThroughPairs < need {
						t.Errorf("seed %d pair %v duct %d cut-through under-provisioned: %d < %d",
							seed, pair, duct, du.CutThroughPairs, need)
					}
					continue
				}
				if du.BasePairs < need {
					t.Errorf("seed %d pair %v duct %d under-provisioned", seed, pair, duct)
				}
			}
		}
	}
}
