package plan

import (
	"testing"

	"iris/internal/fibermap"
	"iris/internal/hose"
)

func TestViaHubsValidation(t *testing.T) {
	in, r := toyInput(0)
	in.ViaHubs = []int{99}
	if err := in.Validate(); err == nil {
		t.Error("expected error for out-of-range hub")
	}
	in.ViaHubs = []int{r.DC1}
	if err := in.Validate(); err == nil {
		t.Error("expected error for a DC as hub")
	}
	in.ViaHubs = []int{r.HubA, r.HubB}
	if err := in.Validate(); err != nil {
		t.Errorf("valid hubs rejected: %v", err)
	}
}

func TestCentralizedToyRouting(t *testing.T) {
	in, r := toyInput(0)
	in.ViaHubs = []int{r.HubA}
	pl, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	// DC3-DC4 share hub B directly (18+18=36 km), but the centralized
	// design must route them via hub A: 18+40 out and back = 116 km.
	info := pl.Paths[hose.Pair{A: r.DC3, B: r.DC4}]
	if info == nil {
		t.Fatal("no DC3-DC4 path")
	}
	if info.TotalKM != 116 {
		t.Errorf("DC3-DC4 via hub A = %.0f km, want 116", info.TotalKM)
	}
	// The path must pass through hub A.
	viaHub := false
	for _, n := range info.Nodes {
		if n == r.HubA {
			viaHub = true
		}
	}
	if !viaHub {
		t.Errorf("path %v does not traverse hub A", info.Nodes)
	}
}

func TestCentralizedVsDistributedOnToy(t *testing.T) {
	in, r := toyInput(0)
	dist, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	in.ViaHubs = []int{r.HubA, r.HubB}
	cent, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	// With both hubs usable, each pair picks the nearer hub; same-side
	// pairs (DC1-DC2) route via their hub as in the distributed design,
	// so the toy's centralized fiber count matches. Path lengths can only
	// be ≥ the distributed ones.
	for pair, ci := range cent.Paths {
		di := dist.Paths[pair]
		if di == nil {
			t.Fatalf("pair %v missing from distributed plan", pair)
		}
		if ci.TotalKM+1e-9 < di.TotalKM {
			t.Errorf("pair %v: centralized %.1f km shorter than distributed %.1f km",
				pair, ci.TotalKM, di.TotalKM)
		}
	}
}

func TestCentralizedOnGeneratedRegion(t *testing.T) {
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = 6
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = 6, 6
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 8
	}
	h1, h2 := fibermap.ChooseHubs(m, 6)
	cent, err := New(Input{
		Map: m, Capacity: caps, Lambda: 40, ViaHubs: []int{h1, h2},
	})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := New(Input{Map: m, Capacity: caps, Lambda: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(cent.Paths) != len(dist.Paths) {
		t.Fatalf("path counts differ: %d vs %d", len(cent.Paths), len(dist.Paths))
	}
	longer, total := 0, 0
	for pair, ci := range cent.Paths {
		di := dist.Paths[pair]
		total++
		if ci.TotalKM > di.TotalKM+1e-9 {
			longer++
		}
		if ci.TotalKM+1e-9 < di.TotalKM {
			t.Errorf("pair %v: hub path %.1f shorter than shortest path %.1f",
				pair, ci.TotalKM, di.TotalKM)
		}
	}
	// §2.1: hub routing inflates latency for a substantial share of pairs.
	if longer*2 < total {
		t.Errorf("only %d/%d pairs longer via hubs; expected a majority", longer, total)
	}
	// All centralized paths still pass the optical constraints.
	for pair := range cent.Paths {
		ev, _ := cent.EvaluatePath(pair)
		if !ev.Feasible() {
			t.Errorf("pair %v infeasible in centralized plan: %v", pair, ev.Violations)
		}
	}
	if len(cent.Viol) != 0 {
		t.Errorf("violations: %v", cent.Viol)
	}
}
