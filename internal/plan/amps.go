package plan

import (
	"fmt"
	"math"

	"iris/internal/optics"
)

// elementsFor renders a routed path as the ordered optical element chain
// the physical layer will see (Fig. 11): a terminal amplifier and OSS at
// the sending DC, an OSS at every non-bypassed intermediate node (plus a
// loopback amplifier traversal where the path is amplified), and an OSS
// and terminal amplifier at the receiving DC.
func elementsFor(pr *pathRec) []optics.Element {
	el := []optics.Element{{Kind: optics.Amp}, {Kind: optics.OSS}}
	for i, e := range pr.ducts {
		el = append(el, optics.Element{Kind: optics.Span, LengthKM: e.W})
		if i == len(pr.ducts)-1 {
			break
		}
		interior := pr.nodes[i+1]
		if pr.bypassed(interior) {
			continue
		}
		el = append(el, optics.Element{Kind: optics.OSS})
		if pr.ampNode == interior {
			// Loopback amplification: into the OSS, through the amp, and
			// back out — a second OSS traversal (hut H1 in Fig. 11).
			el = append(el, optics.Element{Kind: optics.Amp}, optics.Element{Kind: optics.OSS})
		}
	}
	el = append(el, optics.Element{Kind: optics.OSS}, optics.Element{Kind: optics.Amp})
	return el
}

// segmentLossViolated reports whether any inter-amplifier segment of the
// path exceeds the unamplified span limit (TC1). It is the allocation-free
// equivalent of checking optics.Evaluate(elementsFor(pr)) for a
// SegmentLoss violation, which the planner does in a hot loop.
func segmentLossViolated(pr *pathRec) bool {
	seg := 0.0
	for i, e := range pr.ducts {
		seg += e.W
		if seg > optics.MaxSpanKM+1e-9 {
			return true
		}
		if i < len(pr.ducts)-1 && pr.nodes[i+1] == pr.ampNode {
			seg = 0
		}
	}
	return false
}

// ossTraversals counts the path's optical-switch traversals: one at each
// terminal, one per switched interior node, plus one more where the
// loopback amplifier adds a second pass (matching elementsFor).
func ossTraversals(pr *pathRec) int {
	n := 2
	for i := 0; i < len(pr.ducts)-1; i++ {
		v := pr.nodes[i+1]
		if pr.bypassed(v) {
			continue
		}
		n++
		if v == pr.ampNode {
			n++
		}
	}
	return n
}

// reconfigViolated reports whether the path exceeds the TC4 switching
// budget — the allocation-free equivalent of a ReconfigLoss check.
func reconfigViolated(pr *pathRec) bool {
	return ossTraversals(pr) > optics.MaxOSSPerPath
}

// placeAmps runs Algorithm 2 for one scenario: while paths violate the
// segment-loss constraint (TC1), score every candidate amplifier location
// by constraint resolutions per newly needed amplifier and place greedily
// at the best one. Amplifier counts accumulate across scenarios in
// p.ampsArr (amplifiers are physical installations shared by all
// scenarios). Candidate sets live in generation-stamped per-node lists,
// so the loop allocates nothing once the planner is warm.
func (p *Planner) placeAmps(recs []pathRec) error {
	pend := p.pend[:0]
	for i := range recs {
		if segmentLossViolated(&recs[i]) {
			pend = append(pend, int32(i))
		}
	}

	for len(pend) > 0 {
		// Candidate locations: interior nodes whose amplifier would clear
		// the path's segment-loss violation.
		p.candSeq++
		if p.candSeq == 0 { // stamp wraparound: invalidate all marks
			clear(p.candGen)
			p.candSeq = 1
		}
		p.candNodes = p.candNodes[:0]
		for _, ri := range pend {
			pr := &recs[ri]
			if pr.ampNode >= 0 {
				// TC2 allows one inline amplifier; a path that still
				// violates TC1 with its amp placed is unfixable.
				p.plan.Viol = append(p.plan.Viol, fmt.Sprintf(
					"pair %d-%d: segment loss unresolved with inline amp at %d",
					pr.pair.A, pr.pair.B, pr.ampNode))
				continue
			}
			found := false
			for _, v := range pr.nodes[1 : len(pr.nodes)-1] {
				if ampResolves(pr, v) {
					if p.candGen[v] != p.candSeq {
						p.candGen[v] = p.candSeq
						p.candOf[v] = p.candOf[v][:0]
						p.candNodes = append(p.candNodes, int32(v))
					}
					p.candOf[v] = append(p.candOf[v], ri)
					found = true
				}
			}
			if !found {
				p.plan.Viol = append(p.plan.Viol, fmt.Sprintf(
					"pair %d-%d: no amplifier location can satisfy TC1 (%.1f km path)",
					pr.pair.A, pr.pair.B, pr.totalKM))
			}
		}
		if len(p.candNodes) == 0 {
			// Everything left is unfixable and has been recorded.
			p.pend = pend
			return nil
		}

		best := p.pickAmpLocation(recs)
		for _, ri := range p.candOf[best] {
			recs[ri].ampNode = best
		}

		// Amplifiers at a site amplify one fiber each; the site needs as
		// many as the worst-case load of the pairs amplified there (§4.1
		// applied to amplifier demand, per Appendix A).
		p.idxBuf = p.idxBuf[:0]
		for i := range recs {
			if recs[i].ampNode == best {
				p.idxBuf = append(p.idxBuf, recs[i].pairIdx)
			}
		}
		need := int(math.Ceil(p.cachedLoad(p.idxBuf) - 1e-9))
		if need > p.ampsArr[best] {
			if p.ampsArr[best] == 0 {
				p.ampsTouched = append(p.ampsTouched, int32(best))
			}
			p.ampsArr[best] = need
		}

		k := 0
		for _, ri := range pend {
			if segmentLossViolated(&recs[ri]) && recs[ri].ampNode < 0 {
				pend[k] = ri
				k++
			}
		}
		pend = pend[:k]
	}
	p.pend = pend
	return nil
}

// ampResolves reports whether placing the path's inline amplifier at node v
// clears its segment-loss violation without creating another.
func ampResolves(pr *pathRec, v int) bool {
	saved := pr.ampNode
	pr.ampNode = v
	ok := !segmentLossViolated(pr)
	pr.ampNode = saved
	return ok
}

// pickAmpLocation scores candidate amplifier sites: resolved paths per
// amplifier that must be newly installed, preferring sites whose existing
// amplifiers (from earlier scenarios) can be reused for free. Ties break
// on more paths resolved, then the smaller node ID, keeping the greedy
// pass deterministic regardless of candidate discovery order.
func (p *Planner) pickAmpLocation(recs []pathRec) int {
	best := -1
	var bestScore float64
	bestResolved := 0
	for _, v32 := range p.candNodes {
		v := int(v32)
		cl := p.candOf[v]
		p.idxBuf = p.idxBuf[:0]
		for _, ri := range cl {
			p.idxBuf = append(p.idxBuf, recs[ri].pairIdx)
		}
		noa := int(math.Ceil(p.cachedLoad(p.idxBuf) - 1e-9))
		ntbp := noa - p.ampsArr[v]
		if ntbp < 0 {
			ntbp = 0
		}
		var score float64
		if ntbp == 0 {
			score = math.Inf(1) // free: existing amplifiers suffice
		} else {
			score = float64(len(cl)) / float64(ntbp)
		}
		if best < 0 || score > bestScore ||
			(score == bestScore && len(cl) > bestResolved) ||
			(score == bestScore && len(cl) == bestResolved && v < best) {
			best, bestScore, bestResolved = v, score, len(cl)
		}
	}
	return best
}
