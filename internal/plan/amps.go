package plan

import (
	"fmt"
	"math"
	"sort"

	"iris/internal/hose"
	"iris/internal/optics"
)

// elementsFor renders a routed path as the ordered optical element chain
// the physical layer will see (Fig. 11): a terminal amplifier and OSS at
// the sending DC, an OSS at every non-bypassed intermediate node (plus a
// loopback amplifier traversal where the path is amplified), and an OSS
// and terminal amplifier at the receiving DC.
func elementsFor(pr *pathRec) []optics.Element {
	el := []optics.Element{{Kind: optics.Amp}, {Kind: optics.OSS}}
	for i, e := range pr.ducts {
		el = append(el, optics.Element{Kind: optics.Span, LengthKM: e.W})
		if i == len(pr.ducts)-1 {
			break
		}
		interior := pr.nodes[i+1]
		if pr.bypass[interior] {
			continue
		}
		el = append(el, optics.Element{Kind: optics.OSS})
		if pr.ampNode == interior {
			// Loopback amplification: into the OSS, through the amp, and
			// back out — a second OSS traversal (hut H1 in Fig. 11).
			el = append(el, optics.Element{Kind: optics.Amp}, optics.Element{Kind: optics.OSS})
		}
	}
	el = append(el, optics.Element{Kind: optics.OSS}, optics.Element{Kind: optics.Amp})
	return el
}

// segmentLossViolated reports whether any inter-amplifier segment of the
// path exceeds the unamplified span limit (TC1). It is the allocation-free
// equivalent of checking optics.Evaluate(elementsFor(pr)) for a
// SegmentLoss violation, which the planner does in a hot loop.
func segmentLossViolated(pr *pathRec) bool {
	seg := 0.0
	for i, e := range pr.ducts {
		seg += e.W
		if seg > optics.MaxSpanKM+1e-9 {
			return true
		}
		if i < len(pr.ducts)-1 && pr.nodes[i+1] == pr.ampNode {
			seg = 0
		}
	}
	return false
}

// ossTraversals counts the path's optical-switch traversals: one at each
// terminal, one per switched interior node, plus one more where the
// loopback amplifier adds a second pass (matching elementsFor).
func ossTraversals(pr *pathRec) int {
	n := 2
	for i := 0; i < len(pr.ducts)-1; i++ {
		v := pr.nodes[i+1]
		if pr.bypass[v] {
			continue
		}
		n++
		if v == pr.ampNode {
			n++
		}
	}
	return n
}

// reconfigViolated reports whether the path exceeds the TC4 switching
// budget — the allocation-free equivalent of a ReconfigLoss check.
func reconfigViolated(pr *pathRec) bool {
	return ossTraversals(pr) > optics.MaxOSSPerPath
}

// placeAmps runs Algorithm 2 for one scenario: while paths violate the
// segment-loss constraint (TC1), score every candidate amplifier location
// by constraint resolutions per newly needed amplifier and place greedily
// at the best one. Amplifier counts accumulate across scenarios in
// p.amps (amplifiers are physical installations shared by all scenarios).
func (p *planner) placeAmps(paths []*pathRec) error {
	pending := make([]*pathRec, 0)
	for _, pr := range paths {
		if segmentLossViolated(pr) {
			pending = append(pending, pr)
		}
	}

	for len(pending) > 0 {
		// Candidate locations: interior nodes whose amplifier would clear
		// the path's segment-loss violation.
		cands := make(map[int][]*pathRec)
		for _, pr := range pending {
			if pr.ampNode >= 0 {
				// TC2 allows one inline amplifier; a path that still
				// violates TC1 with its amp placed is unfixable.
				p.plan.Viol = append(p.plan.Viol, fmt.Sprintf(
					"pair %d-%d: segment loss unresolved with inline amp at %d",
					pr.pair.A, pr.pair.B, pr.ampNode))
				continue
			}
			found := false
			for _, v := range pr.nodes[1 : len(pr.nodes)-1] {
				if ampResolves(pr, v) {
					cands[v] = append(cands[v], pr)
					found = true
				}
			}
			if !found {
				p.plan.Viol = append(p.plan.Viol, fmt.Sprintf(
					"pair %d-%d: no amplifier location can satisfy TC1 (%.1f km path)",
					pr.pair.A, pr.pair.B, pr.totalKM))
			}
		}
		if len(cands) == 0 {
			// Everything left is unfixable and has been recorded.
			return nil
		}

		best := pickAmpLocation(p, cands)
		for _, pr := range cands[best] {
			pr.ampNode = best
		}

		// Amplifiers at a site amplify one fiber each; the site needs as
		// many as the worst-case load of the pairs amplified there (§4.1
		// applied to amplifier demand, per Appendix A).
		var ampedPairs []hose.Pair
		for _, pr := range paths {
			if pr.ampNode == best {
				ampedPairs = append(ampedPairs, pr.pair)
			}
		}
		need := int(math.Ceil(hose.WorstCaseLoad(p.caps, ampedPairs) - 1e-9))
		if need > p.amps[best] {
			p.amps[best] = need
		}

		var still []*pathRec
		for _, pr := range pending {
			if segmentLossViolated(pr) && pr.ampNode < 0 {
				still = append(still, pr)
			}
		}
		pending = still
	}
	return nil
}

// ampResolves reports whether placing the path's inline amplifier at node v
// clears its segment-loss violation without creating another.
func ampResolves(pr *pathRec, v int) bool {
	saved := pr.ampNode
	pr.ampNode = v
	ok := !segmentLossViolated(pr)
	pr.ampNode = saved
	return ok
}

// pickAmpLocation scores candidate amplifier sites: resolved paths per
// amplifier that must be newly installed, preferring sites whose existing
// amplifiers (from earlier scenarios) can be reused for free. Ties break
// on more paths resolved, then the smaller node ID, keeping the greedy
// pass deterministic.
func pickAmpLocation(p *planner, cands map[int][]*pathRec) int {
	nodes := make([]int, 0, len(cands))
	for v := range cands {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)

	best := -1
	var bestScore float64
	bestResolved := 0
	for _, v := range nodes {
		var pairs []hose.Pair
		for _, pr := range cands[v] {
			pairs = append(pairs, pr.pair)
		}
		noa := int(math.Ceil(hose.WorstCaseLoad(p.caps, pairs) - 1e-9))
		ntbp := noa - p.amps[v]
		if ntbp < 0 {
			ntbp = 0
		}
		var score float64
		if ntbp == 0 {
			score = math.Inf(1) // free: existing amplifiers suffice
		} else {
			score = float64(len(cands[v])) / float64(ntbp)
		}
		if best < 0 || score > bestScore ||
			(score == bestScore && len(cands[v]) > bestResolved) {
			best, bestScore, bestResolved = v, score, len(cands[v])
		}
	}
	return best
}
