package plan

import (
	"fmt"
	"math"
	"slices"
	"time"

	"iris/internal/fibermap"
	"iris/internal/graph"
	"iris/internal/hose"
	"iris/internal/optics"
)

// This file is the planner's arena: a Planner owns every slab the
// planning pipeline touches — routing records, Dijkstra trees, per-duct
// crossing tables, the hose-load memo, cut-through identities — and
// reuses them across Plan calls, so a warmed solve performs no heap
// allocation. The generation-stamp idiom (a per-entry stamp compared
// against a run counter, with a touched list for sparse reset) comes
// from core's incremental AllocState and is applied to every per-
// scenario structure; set-valued keys that were formatted strings in
// the map-based planner (scenario cut sets, hose pair signatures,
// cut-through identities) are interned in seqIndex tables instead.

// seqIndex interns []int32 sequences: equal sequences get the same
// dense ID, assigned in first-seen order. Keys live in one flat slab
// and the hash table is open-addressed, so steady-state interning of a
// known sequence allocates nothing.
type seqIndex struct {
	slab  []int32 // concatenated keys, in ID order
	off   []int32 // off[id] = start of key id in slab
	table []int32 // open addressing; value is id+1, 0 means empty
}

func (s *seqIndex) reset() {
	s.slab = s.slab[:0]
	s.off = s.off[:0]
	clear(s.table)
}

func (s *seqIndex) len() int { return len(s.off) }

// key returns the interned sequence for an ID. The slice aliases the
// slab and is invalidated by the next intern that grows it.
func (s *seqIndex) key(id int) []int32 {
	end := int32(len(s.slab))
	if id+1 < len(s.off) {
		end = s.off[id+1]
	}
	return s.slab[s.off[id]:end]
}

func hashSeq(key []int32) uint32 {
	h := uint64(14695981039346656037) // FNV-1a
	for _, v := range key {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return uint32(h ^ h>>32)
}

// intern returns the ID for key, adding it if absent. added reports
// whether this call created the entry.
func (s *seqIndex) intern(key []int32) (id int, added bool) {
	if len(s.table) == 0 {
		s.table = make([]int32, 64)
	}
	if (len(s.off)+1)*4 >= len(s.table)*3 {
		s.grow()
	}
	mask := uint32(len(s.table) - 1)
	i := hashSeq(key) & mask
	for {
		v := s.table[i]
		if v == 0 {
			id = len(s.off)
			s.off = append(s.off, int32(len(s.slab)))
			s.slab = append(s.slab, key...)
			s.table[i] = int32(id + 1)
			return id, true
		}
		if id = int(v - 1); s.keyEqual(id, key) {
			return id, false
		}
		i = (i + 1) & mask
	}
}

func (s *seqIndex) keyEqual(id int, key []int32) bool {
	k := s.key(id)
	if len(k) != len(key) {
		return false
	}
	for i := range k {
		if k[i] != key[i] {
			return false
		}
	}
	return true
}

func (s *seqIndex) grow() {
	old := len(s.table)
	if old == 0 {
		old = 32
	}
	s.table = make([]int32, old*2)
	mask := uint32(len(s.table) - 1)
	for id := range s.off {
		i := hashSeq(s.key(id)) & mask
		for s.table[i] != 0 {
			i = (i + 1) & mask
		}
		s.table[i] = int32(id + 1)
	}
}

// swap16 reorders a value's low two bytes so that comparing swapped
// values reproduces byte-lexicographic order over the little-endian
// 16-bit packing the legacy string keys used. IDs above 65535 truncate
// exactly as the byte packing did.
func swap16(v int32) int32 { return (v&0xff)<<8 | (v>>8)&0xff }

// packedCmp orders two ID sequences the way their packed string keys
// sorted: element-wise on swapped 16-bit values, shorter prefix first.
// Cut-through selection and output ordering depend on it matching the
// historical order bit for bit.
func packedCmp(a, b []int32) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		av, bv := swap16(a[i]), swap16(b[i])
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// Planning-stage indices for the fixed timing accumulators, aligned
// with stageOrder.
const (
	stRoute = iota
	stAmps
	stCutthrough
	stProvision
	stTotal
	nStages
)

// crossEntry is one DC pair's crossing count on a duct within a
// scenario (hub walks may cross a duct more than once).
type crossEntry struct {
	pairIdx int32
	count   int32
}

type slaRec struct {
	pair    hose.Pair
	totalKM float64
	cutOff  int32 // into slaCuts
	cutLen  int32
}

// ctIterCand is one candidate cut-through within a placement iteration;
// its identity (from, to, duct sequence) is the interned key, its
// interior nodes live in ctIterInterior.
type ctIterCand struct {
	intOff, intLen int32
}

// ctRec is a cut-through committed to the plan; duct and interior lists
// live in the planner's flat slabs until finish materialises them.
type ctRec struct {
	from, to         int
	ductOff, ductLen int32
	intOff, intLen   int32
	pairs            int
}

// Planner is a reusable arena-backed planning workspace. One Planner
// re-solving the same region (same Map, Base, capacities, failure
// tolerance and hubs) retains its hose-load memo, pair tables and
// shortest-path state between calls and plans without allocating; when
// any of those inputs change it transparently re-validates and rebuilds.
// Lambda and Span may vary freely between calls — neither affects the
// planning arena.
//
// The Plan returned by Plan aliases the workspace: its maps, slices and
// the structs they point to are overwritten by the next Plan call on
// the same Planner. Callers that need the previous result afterwards
// must use a fresh Planner (or the package-level New). A Planner is not
// safe for concurrent use; the fiber map and base graph must not be
// mutated between calls that expect reuse (mutation of Input.Map is not
// detected; growing the base graph is).
type Planner struct {
	in   Input
	plan Plan

	// Region-shaped state, rebuilt by prepare on fingerprint miss.
	prepared bool
	base     *graph.Graph
	dcs      []int
	nDC      int
	caps     map[int]float64 // DC -> capacity (float for hose calls)
	pairAB   []hose.Pair     // pairIdx -> canonical pair
	hubs     []int

	// Fingerprint of the prepared region.
	fpMap      *fibermap.Map
	fpInBase   *graph.Graph // Input.Base as passed (nil if planner-built)
	fpNumEdges int
	fpMaxFail  int
	fpCaps     []int // per dcs position

	// Scenario enumeration.
	seen      seqIndex
	cutSorted []int32  // current cut, ascending duct IDs
	cutMark   []bool   // per duct ID
	skip      []bool   // per base edge index
	usedMark  []uint32 // per duct ID, stamped by usedSeq
	usedSeq   uint32
	usedBuf   [][]int32 // per DFS depth

	// Routing.
	dijk     graph.Scratch
	ownTrees []graph.ShortestPathTree
	curTrees []*graph.ShortestPathTree
	ownHub   []graph.ShortestPathTree
	curHub   []*graph.ShortestPathTree
	legN     []int
	legE     []graph.Edge
	recs     []pathRec // one slot per DC pair

	// Hose-load memo, keyed by sorted pairIdx sequences. Survives
	// across solves while the fingerprint holds — the dominant
	// cross-solve win.
	hoseIdx   seqIndex
	hoseLoads []float64
	idxBuf    []int32
	pairsBuf  []hose.Pair

	// Provisioning scratch (per duct ID).
	cross     [][]crossEntry
	crossGen  []uint32
	crossSeq  uint32
	residCnt  []int32
	crossList []int32

	// Amplifier placement scratch (per node).
	pend        []int32
	candOf      [][]int32
	candGen     []uint32
	candSeq     uint32
	candNodes   []int32
	ampsArr     []int
	ampsTouched []int32

	// Cut-through placement.
	ctIter         seqIndex
	ctIterCands    []ctIterCand
	ctIterInterior []int
	ctResolve      [][]int32
	ctAll          seqIndex
	ctRecs         []ctRec
	ctDuctSlab     []int
	ctIntSlab      []int
	ctOrder        []int32
	tmpKey         []int32
	tmpInterior    []int

	// Output arenas, handed to the Plan each solve.
	ductSlab   []DuctUse
	ductActive []bool
	ductList   []int32
	ductsOut   map[int]*DuctUse
	pathInfos  []PathInfo
	pathsOut   map[hose.Pair]*PathInfo
	ampsOut    map[int]int
	cutsOut    []CutThrough
	slaRecs    []slaRec
	slaCuts    []int
	slaOut     []SLAViolation
	stagesOut  []StageTiming
	stageDur   [nStages]time.Duration
	stageCalls [nStages]int
}

// NewPlanner returns an empty workspace; the first Plan call sizes it.
func NewPlanner() *Planner { return &Planner{} }

// Plan solves the input. See Planner for the aliasing and reuse
// contract; the semantics and output are identical to New's.
func (p *Planner) Plan(in Input) (*Plan, error) {
	t0 := time.Now()
	if !p.matches(in) {
		if err := in.Validate(); err != nil {
			return nil, err
		}
		if err := p.prepare(in); err != nil {
			return nil, err
		}
	}
	p.resetSolve(in)
	if err := p.visit(0); err != nil {
		return nil, err
	}
	p.finish(t0)
	return &p.plan, nil
}

// matches reports whether the prepared arena fits the input, i.e. every
// input that shapes planning is unchanged since prepare. Lambda is
// excluded (validated but unused by planning); a non-positive Lambda
// still forces the miss path so Validate reports it.
func (p *Planner) matches(in Input) bool {
	if !p.prepared || in.Map != p.fpMap || in.Base != p.fpInBase ||
		in.MaxFailures != p.fpMaxFail || in.Lambda <= 0 {
		return false
	}
	if p.base.NumEdges() != p.fpNumEdges {
		return false
	}
	if len(in.ViaHubs) != len(p.hubs) {
		return false
	}
	for i, h := range in.ViaHubs {
		if h != p.hubs[i] {
			return false
		}
	}
	for i, dc := range p.dcs {
		if c, ok := in.Capacity[dc]; !ok || c != p.fpCaps[i] {
			return false
		}
	}
	return true
}

// prepare sizes every slab for the (already validated) input's region
// and records its fingerprint. It is the only allocating path of a
// steady-state Planner.
func (p *Planner) prepare(in Input) error {
	p.prepared = false
	m := in.Map
	p.dcs = m.DCs()
	p.base = in.Base
	if p.base == nil {
		p.base = BaseGraph(m)
	}

	// Reject regions that are disconnected even before any failure.
	// Connectivity is a property of the base graph, so the check belongs
	// to prepare: a fingerprint hit implies it already passed.
	labels := p.base.Components()
	for _, dc := range p.dcs[1:] {
		if labels[dc] != labels[p.dcs[0]] {
			return fmt.Errorf("plan: DCs %d and %d are not connected by usable ducts", p.dcs[0], dc)
		}
	}

	nNodes := p.base.NumNodes()
	nEdges := p.base.NumEdges()
	nDucts := p.base.MaxEdgeID() + 1
	p.nDC = len(p.dcs)
	nPairs := p.nDC * (p.nDC - 1) / 2

	p.caps = make(map[int]float64, p.nDC)
	p.fpCaps = make([]int, p.nDC)
	for i, dc := range p.dcs {
		c := in.Capacity[dc]
		p.caps[dc] = float64(c)
		p.fpCaps[i] = c
	}
	p.pairAB = p.pairAB[:0]
	for i := 0; i < p.nDC; i++ {
		for j := i + 1; j < p.nDC; j++ {
			p.pairAB = append(p.pairAB, hose.Pair{A: p.dcs[i], B: p.dcs[j]})
		}
	}
	p.hubs = append(p.hubs[:0], in.ViaHubs...)

	p.cutSorted = make([]int32, 0, in.MaxFailures+1)
	p.cutMark = make([]bool, nDucts)
	p.skip = make([]bool, nEdges)
	p.usedMark = make([]uint32, nDucts)
	p.usedSeq = 0

	p.ownTrees = make([]graph.ShortestPathTree, p.nDC)
	p.curTrees = make([]*graph.ShortestPathTree, p.nDC)
	p.ownHub = make([]graph.ShortestPathTree, len(p.hubs))
	p.curHub = make([]*graph.ShortestPathTree, len(p.hubs))
	p.recs = make([]pathRec, nPairs)

	p.hoseIdx.reset()
	p.hoseLoads = p.hoseLoads[:0]

	p.cross = make([][]crossEntry, nDucts)
	p.crossGen = make([]uint32, nDucts)
	p.crossSeq = 0
	p.residCnt = make([]int32, nDucts)

	p.candOf = make([][]int32, nNodes)
	p.candGen = make([]uint32, nNodes)
	p.candSeq = 0
	p.ampsArr = make([]int, nNodes)
	p.ampsTouched = p.ampsTouched[:0]

	p.ductSlab = make([]DuctUse, nDucts)
	p.ductActive = make([]bool, nDucts)
	p.ductList = p.ductList[:0]
	p.ductsOut = make(map[int]*DuctUse)
	p.pathInfos = make([]PathInfo, nPairs)
	p.pathsOut = make(map[hose.Pair]*PathInfo, nPairs)
	p.ampsOut = make(map[int]int)

	p.fpMap = m
	p.fpInBase = in.Base
	p.fpNumEdges = nEdges
	p.fpMaxFail = in.MaxFailures
	p.prepared = true
	return nil
}

// resetSolve clears the per-solve state, touching only what the last
// solve used.
func (p *Planner) resetSolve(in Input) {
	p.in = in
	p.plan = Plan{Input: in, DCs: p.dcs}
	for _, id := range p.ductList {
		p.ductActive[id] = false
		p.ductSlab[id] = DuctUse{}
	}
	p.ductList = p.ductList[:0]
	for _, v := range p.ampsTouched {
		p.ampsArr[v] = 0
	}
	p.ampsTouched = p.ampsTouched[:0]
	clear(p.ductsOut)
	clear(p.pathsOut)
	clear(p.ampsOut)
	p.cutsOut = p.cutsOut[:0]
	p.slaRecs = p.slaRecs[:0]
	p.slaCuts = p.slaCuts[:0]
	p.slaOut = p.slaOut[:0]
	p.stagesOut = p.stagesOut[:0]
	p.ctAll.reset()
	p.ctRecs = p.ctRecs[:0]
	p.ctDuctSlab = p.ctDuctSlab[:0]
	p.ctIntSlab = p.ctIntSlab[:0]
	p.seen.reset()
	p.cutSorted = p.cutSorted[:0]
	// The DFS unwinds these in lockstep, but an errored solve may have
	// bailed mid-descent; clearing is cheap insurance.
	clear(p.cutMark)
	clear(p.skip)
	for i := range p.stageDur {
		p.stageDur[i] = 0
		p.stageCalls[i] = 0
	}
}

func (p *Planner) timeStage(stage int, start time.Time) {
	p.stageDur[stage] += time.Since(start)
	p.stageCalls[stage]++
}

// pairIdx maps DC positions i<j (in dcs order) to the dense pair index;
// the enumeration order makes ascending indices coincide with ascending
// (A, B) pairs, which cachedLoad's key ordering relies on.
func (p *Planner) pairIdx(i, j int) int32 {
	return int32(i*p.nDC - i*(i+1)/2 + j - i - 1)
}

// visit is the pruned scenario DFS: a cut of a duct no chosen path uses
// leaves every path — and hence all provisioning — unchanged, so only
// used ducts seed the next cut. With deterministic tie-breaking,
// removing an unused duct cannot alter which paths Dijkstra selects,
// making the pruning exact.
func (p *Planner) visit(depth int) error {
	if _, added := p.seen.intern(p.cutSorted); !added {
		return nil
	}
	p.plan.NScena++
	for depth >= len(p.usedBuf) {
		p.usedBuf = append(p.usedBuf, nil)
	}
	used, err := p.scenario(p.usedBuf[depth][:0])
	p.usedBuf[depth] = used
	if err != nil {
		return err
	}
	if depth >= p.fpMaxFail {
		return nil
	}
	for _, d := range used {
		if p.cutMark[d] {
			continue
		}
		p.pushCut(int(d))
		err := p.visit(depth + 1)
		p.popCut(int(d))
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *Planner) pushCut(d int) {
	p.cutMark[d] = true
	if idx, ok := p.base.EdgeIndex(d); ok {
		p.skip[idx] = true
	}
	p.cutSorted = append(p.cutSorted, int32(d))
	for i := len(p.cutSorted) - 1; i > 0 && p.cutSorted[i-1] > p.cutSorted[i]; i-- {
		p.cutSorted[i-1], p.cutSorted[i] = p.cutSorted[i], p.cutSorted[i-1]
	}
}

func (p *Planner) popCut(d int) {
	p.cutMark[d] = false
	if idx, ok := p.base.EdgeIndex(d); ok {
		p.skip[idx] = false
	}
	for i, v := range p.cutSorted {
		if v == int32(d) {
			p.cutSorted = append(p.cutSorted[:i], p.cutSorted[i+1:]...)
			break
		}
	}
}

// scenario processes one failure scenario end to end: routing, amps,
// cut-throughs, capacity. It appends the duct IDs used by any chosen
// path to used (sorted), which drives the pruned enumeration.
func (p *Planner) scenario(used []int32) ([]int32, error) {
	var skip []bool
	if len(p.cutSorted) > 0 {
		skip = p.skip
	}

	start := time.Now()
	recs := p.recs[:p.routeAll(skip)]
	p.timeStage(stRoute, start)

	start = time.Now()
	if err := p.placeAmps(recs); err != nil {
		return used, err
	}
	p.timeStage(stAmps, start)

	start = time.Now()
	if err := p.placeCutThroughs(recs); err != nil {
		return used, err
	}
	p.timeStage(stCutthrough, start)

	// Provisioning runs after cut-through placement: traffic on a
	// cut-through fiber does not also consume switched base capacity on
	// the ducts it bypasses.
	start = time.Now()
	p.provision(recs)
	p.timeStage(stProvision, start)
	if len(p.cutSorted) == 0 {
		p.recordBasePaths(recs)
	}

	p.usedSeq++
	if p.usedSeq == 0 { // stamp wraparound: invalidate all marks
		clear(p.usedMark)
		p.usedSeq = 1
	}
	for i := range recs {
		for _, e := range recs[i].ducts {
			if p.usedMark[e.ID] != p.usedSeq {
				p.usedMark[e.ID] = p.usedSeq
				used = append(used, int32(e.ID))
			}
		}
	}
	slices.Sort(used)
	return used, nil
}

// routeAll computes every DC pair's route — shortest path in the
// distributed design, best DC-hub-DC path in the centralized one — into
// the rec slab, skipping pairs disconnected by the cuts and recording
// SLA overruns. It returns the number of routed pairs. The failure-free
// scenario (skip == nil) reads the base graph's memoised trees, which
// are shared across solves and, through Input.Base, across planners.
func (p *Planner) routeAll(skip []bool) int {
	nr := 0
	if len(p.hubs) > 0 {
		for hi, h := range p.hubs {
			if skip == nil {
				p.curHub[hi] = p.base.Dijkstra(h)
			} else {
				p.curHub[hi] = p.base.DijkstraInto(h, skip, &p.ownHub[hi], &p.dijk)
			}
		}
		for i := range p.dcs {
			for j := i + 1; j < p.nDC; j++ {
				a, b := p.dcs[i], p.dcs[j]
				// Best DC-hub-DC walk; legs may share ducts (both DCs
				// behind one trunk) and provisioning accounts for the
				// double crossing.
				best := graph.Inf
				var bt *graph.ShortestPathTree
				for _, t := range p.curHub {
					if d := t.Dist[a] + t.Dist[b]; d < best && d < graph.Inf {
						best, bt = d, t
					}
				}
				if bt == nil {
					continue
				}
				r := p.nextRec(&nr, i, j)
				p.legN, p.legE, _ = bt.AppendPathTo(a, p.legN[:0], p.legE[:0])
				for k := len(p.legN) - 1; k >= 0; k-- {
					r.nodes = append(r.nodes, p.legN[k])
				}
				for k := len(p.legE) - 1; k >= 0; k-- {
					r.ducts = append(r.ducts, p.legE[k])
				}
				p.legN, p.legE, _ = bt.AppendPathTo(b, p.legN[:0], p.legE[:0])
				r.nodes = append(r.nodes, p.legN[1:]...)
				r.ducts = append(r.ducts, p.legE...)
				r.totalKM = best
				if r.totalKM > optics.MaxPathKM+1e-9 {
					p.recordSLA(r.pair, r.totalKM)
				}
			}
		}
		return nr
	}

	for di, dc := range p.dcs {
		if skip == nil {
			p.curTrees[di] = p.base.Dijkstra(dc)
		} else {
			p.curTrees[di] = p.base.DijkstraInto(dc, skip, &p.ownTrees[di], &p.dijk)
		}
	}
	for i := range p.dcs {
		t := p.curTrees[i]
		for j := i + 1; j < p.nDC; j++ {
			b := p.dcs[j]
			if math.IsInf(t.Dist[b], 1) {
				continue // cut disconnected this pair; no guarantee owed
			}
			r := p.nextRec(&nr, i, j)
			r.nodes, r.ducts, _ = t.AppendPathTo(b, r.nodes, r.ducts)
			r.totalKM = t.Dist[b]
			if r.totalKM > optics.MaxPathKM+1e-9 {
				p.recordSLA(r.pair, r.totalKM)
			}
		}
	}
	return nr
}

// nextRec claims the next rec slot for DC positions i<j, resetting its
// reused slices.
func (p *Planner) nextRec(nr *int, i, j int) *pathRec {
	r := &p.recs[*nr]
	*nr++
	r.pair = hose.Pair{A: p.dcs[i], B: p.dcs[j]}
	r.pairIdx = p.pairIdx(i, j)
	r.nodes = r.nodes[:0]
	r.ducts = r.ducts[:0]
	r.totalKM = 0
	r.ampNode = -1
	r.bypass = r.bypass[:0]
	r.cutDucts = r.cutDucts[:0]
	return r
}

func (p *Planner) recordSLA(pair hose.Pair, totalKM float64) {
	off := int32(len(p.slaCuts))
	for _, d := range p.cutSorted {
		p.slaCuts = append(p.slaCuts, int(d))
	}
	p.slaRecs = append(p.slaRecs, slaRec{
		pair: pair, totalKM: totalKM, cutOff: off, cutLen: int32(len(p.cutSorted)),
	})
}

// provision applies the Algorithm 1 capacity rule and the §4.3 residual
// rule for one scenario, taking per-duct maxima against prior scenarios.
// Pairs riding a cut-through contribute no switched base capacity to the
// ducts it covers (the cut-through fiber carries them), but their
// residual fiber still follows the full path.
//
// Centralized (via-hub) walks may cross a duct more than once; each
// extra crossing is provisioned at the pair's full hose demand, a sound
// upper bound on the exact (weighted) worst case.
func (p *Planner) provision(recs []pathRec) {
	p.crossSeq++
	if p.crossSeq == 0 {
		clear(p.crossGen)
		p.crossSeq = 1
	}
	p.crossList = p.crossList[:0]
	for ri := range recs {
		pr := &recs[ri]
		for _, e := range pr.ducts {
			id := e.ID
			if p.crossGen[id] != p.crossSeq {
				p.crossGen[id] = p.crossSeq
				p.cross[id] = p.cross[id][:0]
				p.residCnt[id] = 0
				p.crossList = append(p.crossList, int32(id))
			}
			p.residCnt[id]++
			if !pr.onCutThrough(id) {
				entries := p.cross[id]
				found := false
				for k := range entries {
					if entries[k].pairIdx == pr.pairIdx {
						entries[k].count++
						found = true
						break
					}
				}
				if !found {
					p.cross[id] = append(entries, crossEntry{pairIdx: pr.pairIdx, count: 1})
				}
			}
		}
	}
	for _, id32 := range p.crossList {
		id := int(id32)
		if entries := p.cross[id]; len(entries) > 0 {
			p.idxBuf = p.idxBuf[:0]
			extra := 0.0
			for _, en := range entries {
				p.idxBuf = append(p.idxBuf, en.pairIdx)
				if en.count > 1 {
					pair := p.pairAB[en.pairIdx]
					extra += float64(en.count-1) * math.Min(p.caps[pair.A], p.caps[pair.B])
				}
			}
			load := p.cachedLoad(p.idxBuf) + extra
			basePairs := int(math.Ceil(load - 1e-9))
			du := p.ductUse(id)
			if basePairs > du.BasePairs {
				du.BasePairs = basePairs
			}
		}
		if n := int(p.residCnt[id]); n > 0 {
			du := p.ductUse(id)
			if n > du.ResidualPairs {
				du.ResidualPairs = n
			}
		}
	}
}

// cachedLoad memoises hose.WorstCaseLoad over the planner's fixed DC
// capacities, keyed by the sorted pair-index sequence (duplicates are
// harmless: WorstCaseLoad coalesces them). idx is sorted in place. The
// memo outlives individual solves, so a re-solved region pays for no
// max-flow at all.
func (p *Planner) cachedLoad(idx []int32) float64 {
	slices.Sort(idx)
	id, added := p.hoseIdx.intern(idx)
	if !added {
		return p.hoseLoads[id]
	}
	p.pairsBuf = p.pairsBuf[:0]
	for _, pi := range idx {
		p.pairsBuf = append(p.pairsBuf, p.pairAB[pi])
	}
	load := hose.WorstCaseLoad(p.caps, p.pairsBuf)
	p.hoseLoads = append(p.hoseLoads, load)
	return load
}

func (p *Planner) ductUse(id int) *DuctUse {
	du := &p.ductSlab[id]
	if !p.ductActive[id] {
		p.ductActive[id] = true
		du.DuctID = id
		p.ductList = append(p.ductList, int32(id))
	}
	return du
}

// recordBasePaths captures the failure-free paths for circuit setup,
// copying out of the scenario recs (which later scenarios overwrite)
// into the per-pair PathInfo slab.
func (p *Planner) recordBasePaths(recs []pathRec) {
	for i := range recs {
		pr := &recs[i]
		info := &p.pathInfos[pr.pairIdx]
		info.Pair = pr.pair
		info.Nodes = append(info.Nodes[:0], pr.nodes...)
		info.TotalKM = pr.totalKM
		info.Ducts = info.Ducts[:0]
		for _, e := range pr.ducts {
			info.Ducts = append(info.Ducts, e.ID)
		}
		info.AmpNodes = info.AmpNodes[:0]
		if pr.ampNode >= 0 {
			info.AmpNodes = append(info.AmpNodes, pr.ampNode)
		}
		info.Bypassed = append(info.Bypassed[:0], pr.bypass...)
		slices.Sort(info.Bypassed)
		info.CutDucts = append(info.CutDucts[:0], pr.cutDucts...)
		slices.Sort(info.CutDucts)
		p.pathsOut[pr.pair] = info
	}
}

// finish freezes the solve into p.plan: output maps refilled from the
// touched lists, cut-throughs materialised in packed-key order, SLA
// records resolved against the (now stable) cut slab, and stage timings
// emitted in stageOrder.
func (p *Planner) finish(t0 time.Time) {
	for _, id := range p.ductList {
		p.ductsOut[int(id)] = &p.ductSlab[id]
	}
	p.plan.Ducts = p.ductsOut
	for _, v := range p.ampsTouched {
		p.ampsOut[int(v)] = p.ampsArr[v]
	}
	p.plan.Amps = p.ampsOut
	p.plan.Paths = p.pathsOut

	p.ctOrder = p.ctOrder[:0]
	for i := range p.ctRecs {
		p.ctOrder = append(p.ctOrder, int32(i))
	}
	// Insertion sort by packed key: cut-through counts are small and a
	// comparator closure would allocate.
	for i := 1; i < len(p.ctOrder); i++ {
		for j := i; j > 0 && packedCmp(p.ctAll.key(int(p.ctOrder[j])), p.ctAll.key(int(p.ctOrder[j-1]))) < 0; j-- {
			p.ctOrder[j], p.ctOrder[j-1] = p.ctOrder[j-1], p.ctOrder[j]
		}
	}
	for _, ci := range p.ctOrder {
		ct := &p.ctRecs[ci]
		p.cutsOut = append(p.cutsOut, CutThrough{
			From:     ct.from,
			To:       ct.to,
			Ducts:    p.ctDuctSlab[ct.ductOff : ct.ductOff+ct.ductLen],
			Interior: p.ctIntSlab[ct.intOff : ct.intOff+ct.intLen],
			Pairs:    ct.pairs,
		})
	}
	p.plan.Cuts = p.cutsOut

	for _, r := range p.slaRecs {
		p.slaOut = append(p.slaOut, SLAViolation{
			Pair: r.pair, Cuts: p.slaCuts[r.cutOff : r.cutOff+r.cutLen], TotalKM: r.totalKM,
		})
	}
	p.plan.SLA = p.slaOut

	p.stageDur[stTotal] = time.Since(t0)
	p.stageCalls[stTotal] = 1
	for i := 0; i < nStages; i++ {
		if p.stageCalls[i] > 0 {
			p.stagesOut = append(p.stagesOut, StageTiming{
				Stage: stageOrder[i], Duration: p.stageDur[i], Calls: p.stageCalls[i],
			})
		}
	}
	p.plan.Stages = p.stagesOut
	if p.in.Span != nil {
		for _, st := range p.plan.Stages {
			c := p.in.Span.Child(st.Stage)
			c.SetAttr(fmt.Sprintf("calls=%d", st.Calls))
			c.FinishAs(t0, st.Duration)
		}
	}
}
