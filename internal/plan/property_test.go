package plan

import (
	"testing"

	"iris/internal/fibermap"
)

// planRegion is a helper for the monotonicity properties.
func planRegion(t *testing.T, seed int64, n, f, maxFailures int) *Plan {
	t.Helper()
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed, n
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = f
	}
	pl, err := New(Input{Map: m, Capacity: caps, Lambda: 40, MaxFailures: maxFailures})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return pl
}

// TestMonotoneInCapacity: doubling every DC's capacity can only increase
// per-duct base provisioning, and scales it at most linearly.
func TestMonotoneInCapacity(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		small := planRegion(t, seed, 6, 8, 0)
		big := planRegion(t, seed, 6, 16, 0)
		for id, duSmall := range small.Ducts {
			duBig := big.Ducts[id]
			if duBig == nil {
				t.Fatalf("seed %d: duct %d dropped at higher capacity", seed, id)
			}
			if duBig.BasePairs < duSmall.BasePairs {
				t.Errorf("seed %d duct %d: base shrank %d -> %d with more capacity",
					seed, id, duSmall.BasePairs, duBig.BasePairs)
			}
			if duBig.BasePairs > 2*duSmall.BasePairs {
				t.Errorf("seed %d duct %d: base grew superlinearly %d -> %d",
					seed, id, duSmall.BasePairs, duBig.BasePairs)
			}
			// Residual fiber counts pairs, not capacity: unchanged.
			if duBig.ResidualPairs != duSmall.ResidualPairs {
				t.Errorf("seed %d duct %d: residual changed with capacity %d -> %d",
					seed, id, duSmall.ResidualPairs, duBig.ResidualPairs)
			}
		}
	}
}

// TestMonotoneInFailures: a higher cut tolerance can only add fiber, never
// remove it, and per-duct provisioning is monotone.
func TestMonotoneInFailures(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		frag := planRegion(t, seed, 5, 8, 0)
		tol1 := planRegion(t, seed, 5, 8, 1)
		tol2 := planRegion(t, seed, 5, 8, 2)
		if tol1.TotalFiberPairs() < frag.TotalFiberPairs() {
			t.Errorf("seed %d: 1-failure plan leases less fiber than fragile plan", seed)
		}
		if tol2.TotalFiberPairs() < tol1.TotalFiberPairs() {
			t.Errorf("seed %d: 2-failure plan leases less fiber than 1-failure plan", seed)
		}
		for id, du0 := range frag.Ducts {
			du1 := tol1.Ducts[id]
			if du1 == nil || du1.BasePairs < du0.BasePairs {
				t.Errorf("seed %d duct %d: failure tolerance reduced base capacity", seed, id)
			}
		}
		if tol2.NScena <= tol1.NScena {
			t.Errorf("seed %d: scenario counts not increasing (%d, %d)",
				seed, tol1.NScena, tol2.NScena)
		}
	}
}

// TestPrunedEnumerationMatchesExhaustive: on the toy (small enough to
// enumerate exhaustively by hand-counting), the pruned enumeration visits
// exactly the subsets of used ducts and produces identical provisioning to
// a plan over the same scenarios.
func TestPrunedEnumerationMatchesExhaustive(t *testing.T) {
	// The toy uses all 5 ducts in every scenario where they survive, so
	// pruning must not remove any subset: 1 + 5 + C(5,2) = 16.
	in, _ := toyInput(2)
	pl, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NScena != 16 {
		t.Errorf("NScena = %d, want 16 (no pruning opportunity on the toy)", pl.NScena)
	}
}

// TestPathsDeterministicAcrossRuns guards the planner's determinism, which
// the fabric's port maps and the experiments' reproducibility rely on.
func TestPathsDeterministicAcrossRuns(t *testing.T) {
	a := planRegion(t, 1, 6, 8, 1)
	b := planRegion(t, 1, 6, 8, 1)
	if len(a.Paths) != len(b.Paths) {
		t.Fatal("path counts differ")
	}
	for pair, ia := range a.Paths {
		ib := b.Paths[pair]
		if ib == nil || ia.TotalKM != ib.TotalKM || len(ia.Ducts) != len(ib.Ducts) {
			t.Fatalf("pair %v differs across runs", pair)
		}
		for i := range ia.Ducts {
			if ia.Ducts[i] != ib.Ducts[i] {
				t.Fatalf("pair %v duct order differs", pair)
			}
		}
	}
	if a.TotalFiberPairs() != b.TotalFiberPairs() || a.TotalAmps() != b.TotalAmps() {
		t.Error("provisioning differs across runs")
	}
}
