// Package plan implements Iris network planning (§4 of the paper): given a
// region's fiber map, DC capacities, and a failure tolerance, it decides
// the topology (which ducts and huts are used), the fiber capacity of every
// duct, and the optical equipment — amplifiers and cut-through links —
// needed to satisfy the technology constraints TC1–TC4 on every end-to-end
// path in every failure scenario.
//
// The planning pipeline is:
//
//  1. Algorithm 1 (§4.1): enumerate failure scenarios (all duct-cut subsets
//     up to the tolerance), route every DC pair on its shortest surviving
//     path, and provision each duct for the worst-case hose-model load it
//     sees in any scenario.
//  2. Residual fibers (§4.3): fiber-granularity switching needs one extra
//     fiber-pair per DC pair to absorb fractional wavelength demands; these
//     follow each pair's path in every scenario.
//  3. Algorithm 2 (Appendix A): greedily place amplifiers so every path
//     segment's optical loss fits one amplifier's gain.
//  4. Cut-through links (Appendix A): greedily replace switched hops with
//     uninterrupted fiber where paths still violate the power or
//     reconfiguration budgets.
package plan

import (
	"fmt"
	"sort"
	"time"

	"iris/internal/fibermap"
	"iris/internal/graph"
	"iris/internal/hose"
	"iris/internal/optics"
	"iris/internal/trace"
)

// Input is the planning problem statement.
type Input struct {
	Map *fibermap.Map
	// Capacity maps DC node ID to its hose capacity in fiber-pairs (the
	// paper's f). A DC of capacity f sources at most f·λ wavelengths.
	Capacity map[int]int
	// Lambda is the number of wavelengths per fiber (40 or 64).
	Lambda int
	// MaxFailures is the number of simultaneous duct cuts to survive
	// (OC4; the paper's operational default is 2).
	MaxFailures int
	// ViaHubs, when non-empty, plans the centralized design instead of
	// the distributed one: every DC pair routes through whichever listed
	// hub gives the shorter DC-hub-DC fiber path (§2's hub-and-spoke
	// model, with two hubs in practice). Empty means distributed
	// shortest-path routing (OC3).
	ViaHubs []int
	// Base optionally supplies the usable-duct graph of Map, as built by
	// BaseGraph. Sharing one Base across several plan calls on the same
	// map (e.g. a sweep over capacities and wavelengths, or the paired
	// k-failure/0-failure plans of the cost evaluation) lets the graph's
	// memoised shortest-path trees be computed once instead of per call.
	// Nil means the planner builds its own. The graph must not be mutated
	// while shared.
	Base *graph.Graph
	// Span, when non-nil, receives one child span per planning stage
	// (route, amps, cutthrough, provision, total), with durations
	// aggregated across every failure scenario examined. Nil disables
	// span recording; Plan.Stages is populated either way.
	Span *trace.Span
}

// Validate reports the first problem with the input.
func (in Input) Validate() error {
	if in.Map == nil {
		return fmt.Errorf("plan: nil fiber map")
	}
	if err := in.Map.Validate(); err != nil {
		return err
	}
	dcs := in.Map.DCs()
	if len(dcs) < 2 {
		return fmt.Errorf("plan: need at least 2 DCs, have %d", len(dcs))
	}
	for _, dc := range dcs {
		c, ok := in.Capacity[dc]
		if !ok {
			return fmt.Errorf("plan: no capacity for DC %d", dc)
		}
		if c <= 0 {
			return fmt.Errorf("plan: DC %d has non-positive capacity %d", dc, c)
		}
	}
	if in.Lambda <= 0 {
		return fmt.Errorf("plan: lambda must be positive, got %d", in.Lambda)
	}
	if in.MaxFailures < 0 {
		return fmt.Errorf("plan: negative failure tolerance %d", in.MaxFailures)
	}
	for _, h := range in.ViaHubs {
		if h < 0 || h >= len(in.Map.Nodes) {
			return fmt.Errorf("plan: hub node %d out of range", h)
		}
		if in.Map.Nodes[h].Kind != fibermap.Hut {
			return fmt.Errorf("plan: hub node %d is not a hut", h)
		}
	}
	if in.Base != nil && in.Base.NumNodes() != len(in.Map.Nodes) {
		return fmt.Errorf("plan: base graph has %d nodes, map has %d",
			in.Base.NumNodes(), len(in.Map.Nodes))
	}
	return nil
}

// BaseGraph builds the planner's working graph for a fiber map: every
// duct short enough to be used point-to-point (§4.1 excludes ducts beyond
// the unamplified span limit outright), with duct IDs as edge IDs. Pass
// the result as Input.Base to share it — and its memoised shortest-path
// trees — across plan calls on the same map.
func BaseGraph(m *fibermap.Map) *graph.Graph {
	g := graph.New(len(m.Nodes))
	for _, d := range m.Ducts {
		if d.FiberKM <= optics.MaxSpanKM {
			g.AddEdge(d.ID, d.A, d.B, d.FiberKM)
		}
	}
	return g
}

// DuctUse is the provisioning decision for one fiber duct.
type DuctUse struct {
	DuctID int
	// BasePairs is the hose-model capacity from Algorithm 1, in
	// fiber-pairs: the worst-case integer wavelength demand divided by λ,
	// maximised over failure scenarios.
	BasePairs int
	// ResidualPairs is the §4.3 fiber-switching overhead: one pair per DC
	// pair routed over this duct, maximised over failure scenarios.
	ResidualPairs int
	// CutThroughPairs is fiber leased in this duct by cut-through links.
	CutThroughPairs int
}

// TotalPairs is the number of fiber-pairs leased in the duct.
func (d DuctUse) TotalPairs() int { return d.BasePairs + d.ResidualPairs + d.CutThroughPairs }

// CutThrough is an uninterrupted fiber run bypassing the optical switches
// at the interior nodes of a path segment (Appendix A).
type CutThrough struct {
	From, To int   // endpoint nodes (switched at these, not between)
	Ducts    []int // duct IDs traversed, in order
	Interior []int // interior nodes whose OSS the link bypasses
	Pairs    int   // fiber-pairs provisioned on the link
}

// PathInfo describes the shortest path of one DC pair in the failure-free
// topology, as used for circuit setup.
type PathInfo struct {
	Pair    hose.Pair
	Nodes   []int
	Ducts   []int
	TotalKM float64
	// AmpNodes lists intermediate nodes whose amplifier this path uses.
	AmpNodes []int
	// Bypassed lists intermediate nodes whose OSS the path skips via a
	// cut-through.
	Bypassed []int
	// CutDucts lists ducts where this pair's traffic rides a cut-through
	// fiber instead of switched base capacity.
	CutDucts []int
}

// SLAViolation records a DC pair whose surviving shortest path exceeds the
// SLA distance in some failure scenario. Planning continues — the capacity
// is still provisioned — but operators need to know the SLA is at risk.
type SLAViolation struct {
	Pair    hose.Pair
	Cuts    []int // duct IDs cut in the scenario
	TotalKM float64
}

// StageTiming is the accumulated latency of one Algorithm-1 planning
// stage, summed across every failure scenario the planner examined.
type StageTiming struct {
	Stage    string
	Duration time.Duration
	// Calls is how many scenario invocations the duration aggregates.
	Calls int
}

// stageOrder fixes the reporting order of Plan.Stages (pipeline order,
// then the end-to-end total).
var stageOrder = []string{"route", "amps", "cutthrough", "provision", "total"}

// Plan is the planner output.
//
// A Plan produced by New owns its storage and stays valid indefinitely.
// A Plan produced by a reused Planner aliases the planner's arena: it is
// valid until that planner's next Plan call (see Planner).
type Plan struct {
	Input Input
	// DCs lists the region's DC node IDs in ascending order, as planning
	// saw them. Cost models iterate it instead of re-deriving the list
	// from the map.
	DCs    []int
	Ducts  map[int]*DuctUse // keyed by duct ID; only ducts with any use
	Paths  map[hose.Pair]*PathInfo
	Amps   map[int]int // node ID -> amplifier count
	Cuts   []CutThrough
	SLA    []SLAViolation
	Viol   []string // residual optical violations (empty when planning succeeded)
	NScena int      // failure scenarios examined
	// Stages holds per-stage planner timings in stageOrder, feeding the
	// iris_plan_stage_seconds telemetry histograms.
	Stages []StageTiming
}

// New plans a region. It returns an error for invalid input or if the
// fiber map cannot satisfy the constraints at all (e.g. a DC pair whose
// only paths exceed the amplifier budget).
//
// New is the one-shot form of Planner: it runs a fresh workspace and
// never reuses it, so the returned Plan owns its storage. Callers that
// plan repeatedly should hold a Planner and amortize the arena instead.
func New(in Input) (*Plan, error) {
	return NewPlanner().Plan(in)
}

// pathRec is the per-scenario routing record for one DC pair. Its slices
// live in the planner arena and are truncated, not reallocated, between
// scenarios.
type pathRec struct {
	pair    hose.Pair
	pairIdx int32 // dense index into the planner's pair table
	nodes   []int
	ducts   []graph.Edge
	totalKM float64
	ampNode int   // node carrying this path's inline amplifier, or -1
	bypass  []int // interior nodes bypassed by a cut-through (unordered, unique)
	// cutDucts lists ducts whose switched base capacity this pair does not
	// consume because its traffic rides a cut-through fiber there instead.
	cutDucts []int
}

func (pr *pathRec) bypassed(v int) bool {
	for _, b := range pr.bypass {
		if b == v {
			return true
		}
	}
	return false
}

func (pr *pathRec) onCutThrough(duct int) bool {
	for _, d := range pr.cutDucts {
		if d == duct {
			return true
		}
	}
	return false
}

// EvaluatePath re-evaluates the stored failure-free path of a DC pair
// against the optical constraints, reconstructing its element chain from
// the recorded amplifier and cut-through assignments.
func (pl *Plan) EvaluatePath(pair hose.Pair) (optics.PathEval, bool) {
	info, ok := pl.Paths[pair.Canonical()]
	if !ok {
		return optics.PathEval{}, false
	}
	pr := &pathRec{
		pair:    info.Pair,
		nodes:   info.Nodes,
		totalKM: info.TotalKM,
		ampNode: -1,
		bypass:  info.Bypassed,
	}
	for _, id := range info.Ducts {
		d := pl.Input.Map.Ducts[id]
		pr.ducts = append(pr.ducts, graph.Edge{ID: d.ID, U: d.A, V: d.B, W: d.FiberKM})
	}
	if len(info.AmpNodes) > 0 {
		pr.ampNode = info.AmpNodes[0]
	}
	return optics.Evaluate(elementsFor(pr)), true
}

// TotalFiberPairs returns the region-wide number of leased fiber-pairs.
func (pl *Plan) TotalFiberPairs() int {
	total := 0
	for _, du := range pl.Ducts {
		total += du.TotalPairs()
	}
	return total
}

// BaseFiberPairs returns the fiber-pairs provisioned by Algorithm 1 alone,
// which is exactly the fiber an electrical packet-switched design leases.
func (pl *Plan) BaseFiberPairs() int {
	total := 0
	for _, du := range pl.Ducts {
		total += du.BasePairs
	}
	return total
}

// TotalAmps returns the number of amplifiers placed in the network.
func (pl *Plan) TotalAmps() int {
	total := 0
	for _, n := range pl.Amps {
		total += n
	}
	return total
}

// UsedHuts returns the hut nodes that terminate at least one provisioned
// duct; huts with no capacity are simply not part of the topology (§4.1).
func (pl *Plan) UsedHuts() []int {
	used := make(map[int]bool)
	for id, du := range pl.Ducts {
		if du.TotalPairs() == 0 {
			continue
		}
		d := pl.Input.Map.Ducts[id]
		for _, n := range []int{d.A, d.B} {
			if pl.Input.Map.Nodes[n].Kind == fibermap.Hut {
				used[n] = true
			}
		}
	}
	huts := make([]int, 0, len(used))
	for h := range used {
		huts = append(huts, h)
	}
	sort.Ints(huts)
	return huts
}

// DCFiberEnds returns, per node, the number of fiber-pair ends terminating
// there (base + residual; cut-throughs terminate only at their endpoint
// nodes and are reported separately by CutThroughEnds).
func (pl *Plan) FiberEndsByNode() map[int]int {
	ends := make(map[int]int)
	for id, du := range pl.Ducts {
		d := pl.Input.Map.Ducts[id]
		n := du.BasePairs + du.ResidualPairs
		ends[d.A] += n
		ends[d.B] += n
	}
	for _, ct := range pl.Cuts {
		ends[ct.From] += ct.Pairs
		ends[ct.To] += ct.Pairs
	}
	return ends
}
