// Package plan implements Iris network planning (§4 of the paper): given a
// region's fiber map, DC capacities, and a failure tolerance, it decides
// the topology (which ducts and huts are used), the fiber capacity of every
// duct, and the optical equipment — amplifiers and cut-through links —
// needed to satisfy the technology constraints TC1–TC4 on every end-to-end
// path in every failure scenario.
//
// The planning pipeline is:
//
//  1. Algorithm 1 (§4.1): enumerate failure scenarios (all duct-cut subsets
//     up to the tolerance), route every DC pair on its shortest surviving
//     path, and provision each duct for the worst-case hose-model load it
//     sees in any scenario.
//  2. Residual fibers (§4.3): fiber-granularity switching needs one extra
//     fiber-pair per DC pair to absorb fractional wavelength demands; these
//     follow each pair's path in every scenario.
//  3. Algorithm 2 (Appendix A): greedily place amplifiers so every path
//     segment's optical loss fits one amplifier's gain.
//  4. Cut-through links (Appendix A): greedily replace switched hops with
//     uninterrupted fiber where paths still violate the power or
//     reconfiguration budgets.
package plan

import (
	"fmt"
	"math"
	"sort"
	"time"

	"iris/internal/fibermap"
	"iris/internal/graph"
	"iris/internal/hose"
	"iris/internal/optics"
	"iris/internal/trace"
)

// Input is the planning problem statement.
type Input struct {
	Map *fibermap.Map
	// Capacity maps DC node ID to its hose capacity in fiber-pairs (the
	// paper's f). A DC of capacity f sources at most f·λ wavelengths.
	Capacity map[int]int
	// Lambda is the number of wavelengths per fiber (40 or 64).
	Lambda int
	// MaxFailures is the number of simultaneous duct cuts to survive
	// (OC4; the paper's operational default is 2).
	MaxFailures int
	// ViaHubs, when non-empty, plans the centralized design instead of
	// the distributed one: every DC pair routes through whichever listed
	// hub gives the shorter DC-hub-DC fiber path (§2's hub-and-spoke
	// model, with two hubs in practice). Empty means distributed
	// shortest-path routing (OC3).
	ViaHubs []int
	// Base optionally supplies the usable-duct graph of Map, as built by
	// BaseGraph. Sharing one Base across several plan calls on the same
	// map (e.g. a sweep over capacities and wavelengths, or the paired
	// k-failure/0-failure plans of the cost evaluation) lets the graph's
	// memoised shortest-path trees be computed once instead of per call.
	// Nil means the planner builds its own. The graph must not be mutated
	// while shared.
	Base *graph.Graph
	// Span, when non-nil, receives one child span per planning stage
	// (route, amps, cutthrough, provision, total), with durations
	// aggregated across every failure scenario examined. Nil disables
	// span recording; Plan.Stages is populated either way.
	Span *trace.Span
}

// Validate reports the first problem with the input.
func (in Input) Validate() error {
	if in.Map == nil {
		return fmt.Errorf("plan: nil fiber map")
	}
	if err := in.Map.Validate(); err != nil {
		return err
	}
	dcs := in.Map.DCs()
	if len(dcs) < 2 {
		return fmt.Errorf("plan: need at least 2 DCs, have %d", len(dcs))
	}
	for _, dc := range dcs {
		c, ok := in.Capacity[dc]
		if !ok {
			return fmt.Errorf("plan: no capacity for DC %d", dc)
		}
		if c <= 0 {
			return fmt.Errorf("plan: DC %d has non-positive capacity %d", dc, c)
		}
	}
	if in.Lambda <= 0 {
		return fmt.Errorf("plan: lambda must be positive, got %d", in.Lambda)
	}
	if in.MaxFailures < 0 {
		return fmt.Errorf("plan: negative failure tolerance %d", in.MaxFailures)
	}
	for _, h := range in.ViaHubs {
		if h < 0 || h >= len(in.Map.Nodes) {
			return fmt.Errorf("plan: hub node %d out of range", h)
		}
		if in.Map.Nodes[h].Kind != fibermap.Hut {
			return fmt.Errorf("plan: hub node %d is not a hut", h)
		}
	}
	if in.Base != nil && in.Base.NumNodes() != len(in.Map.Nodes) {
		return fmt.Errorf("plan: base graph has %d nodes, map has %d",
			in.Base.NumNodes(), len(in.Map.Nodes))
	}
	return nil
}

// BaseGraph builds the planner's working graph for a fiber map: every
// duct short enough to be used point-to-point (§4.1 excludes ducts beyond
// the unamplified span limit outright), with duct IDs as edge IDs. Pass
// the result as Input.Base to share it — and its memoised shortest-path
// trees — across plan calls on the same map.
func BaseGraph(m *fibermap.Map) *graph.Graph {
	g := graph.New(len(m.Nodes))
	for _, d := range m.Ducts {
		if d.FiberKM <= optics.MaxSpanKM {
			g.AddEdge(d.ID, d.A, d.B, d.FiberKM)
		}
	}
	return g
}

// DuctUse is the provisioning decision for one fiber duct.
type DuctUse struct {
	DuctID int
	// BasePairs is the hose-model capacity from Algorithm 1, in
	// fiber-pairs: the worst-case integer wavelength demand divided by λ,
	// maximised over failure scenarios.
	BasePairs int
	// ResidualPairs is the §4.3 fiber-switching overhead: one pair per DC
	// pair routed over this duct, maximised over failure scenarios.
	ResidualPairs int
	// CutThroughPairs is fiber leased in this duct by cut-through links.
	CutThroughPairs int
}

// TotalPairs is the number of fiber-pairs leased in the duct.
func (d DuctUse) TotalPairs() int { return d.BasePairs + d.ResidualPairs + d.CutThroughPairs }

// CutThrough is an uninterrupted fiber run bypassing the optical switches
// at the interior nodes of a path segment (Appendix A).
type CutThrough struct {
	From, To int   // endpoint nodes (switched at these, not between)
	Ducts    []int // duct IDs traversed, in order
	Interior []int // interior nodes whose OSS the link bypasses
	Pairs    int   // fiber-pairs provisioned on the link
}

// PathInfo describes the shortest path of one DC pair in the failure-free
// topology, as used for circuit setup.
type PathInfo struct {
	Pair    hose.Pair
	Nodes   []int
	Ducts   []int
	TotalKM float64
	// AmpNodes lists intermediate nodes whose amplifier this path uses.
	AmpNodes []int
	// Bypassed lists intermediate nodes whose OSS the path skips via a
	// cut-through.
	Bypassed []int
	// CutDucts lists ducts where this pair's traffic rides a cut-through
	// fiber instead of switched base capacity.
	CutDucts []int
}

// SLAViolation records a DC pair whose surviving shortest path exceeds the
// SLA distance in some failure scenario. Planning continues — the capacity
// is still provisioned — but operators need to know the SLA is at risk.
type SLAViolation struct {
	Pair    hose.Pair
	Cuts    []int // duct IDs cut in the scenario
	TotalKM float64
}

// StageTiming is the accumulated latency of one Algorithm-1 planning
// stage, summed across every failure scenario the planner examined.
type StageTiming struct {
	Stage    string
	Duration time.Duration
	// Calls is how many scenario invocations the duration aggregates.
	Calls int
}

// stageOrder fixes the reporting order of Plan.Stages (pipeline order,
// then the end-to-end total).
var stageOrder = []string{"route", "amps", "cutthrough", "provision", "total"}

// Plan is the planner output.
type Plan struct {
	Input  Input
	Ducts  map[int]*DuctUse // keyed by duct ID; only ducts with any use
	Paths  map[hose.Pair]*PathInfo
	Amps   map[int]int // node ID -> amplifier count
	Cuts   []CutThrough
	SLA    []SLAViolation
	Viol   []string // residual optical violations (empty when planning succeeded)
	NScena int      // failure scenarios examined
	// Stages holds per-stage planner timings in stageOrder, feeding the
	// iris_plan_stage_seconds telemetry histograms.
	Stages []StageTiming
}

// New plans a region. It returns an error for invalid input or if the
// fiber map cannot satisfy the constraints at all (e.g. a DC pair whose
// only paths exceed the amplifier budget).
func New(in Input) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	p := &planner{
		in:    in,
		ducts: make(map[int]*DuctUse),
		amps:  make(map[int]int),
		cuts:  make(map[string]*CutThrough),
	}
	return p.run()
}

type planner struct {
	in    Input
	base  *graph.Graph
	dcs   []int
	caps  map[int]float64 // DC -> capacity in fiber-pairs (float for hose)
	ducts map[int]*DuctUse
	amps  map[int]int
	cuts  map[string]*CutThrough
	plan  *Plan
	// hoseCache memoises worst-case hose loads by pair-set signature;
	// most failure scenarios reproduce the same per-duct pair sets.
	hoseCache map[string]float64
	// stages accumulates per-stage wall time across scenarios.
	stages map[string]*StageTiming
}

// timeStage adds the elapsed time since start to a stage's accumulator.
func (p *planner) timeStage(name string, start time.Time) {
	st := p.stages[name]
	if st == nil {
		st = &StageTiming{Stage: name}
		p.stages[name] = st
	}
	st.Duration += time.Since(start)
	st.Calls++
}

// finishStages freezes the accumulated stage timings into the plan (in
// stageOrder) and, when the input carries a span, records one child span
// per stage with the aggregated duration.
func (p *planner) finishStages(t0 time.Time) {
	p.stages["total"] = &StageTiming{Stage: "total", Duration: time.Since(t0), Calls: 1}
	for _, name := range stageOrder {
		if st := p.stages[name]; st != nil {
			p.plan.Stages = append(p.plan.Stages, *st)
		}
	}
	if p.in.Span == nil {
		return
	}
	for _, st := range p.plan.Stages {
		c := p.in.Span.Child(st.Stage)
		c.SetAttr(fmt.Sprintf("calls=%d", st.Calls))
		c.FinishAs(t0, st.Duration)
	}
}

// pathRec is the per-scenario routing record for one DC pair.
type pathRec struct {
	pair    hose.Pair
	nodes   []int
	ducts   []graph.Edge
	totalKM float64
	ampNode int          // node carrying this path's inline amplifier, or -1
	bypass  map[int]bool // interior nodes bypassed by a cut-through
	// cutDucts marks ducts whose switched base capacity this pair does not
	// consume because its traffic rides a cut-through fiber there instead.
	cutDucts map[int]bool
}

func (p *planner) run() (*Plan, error) {
	t0 := time.Now()
	p.stages = make(map[string]*StageTiming)
	m := p.in.Map
	p.dcs = m.DCs()
	p.caps = make(map[int]float64, len(p.dcs))
	for _, dc := range p.dcs {
		p.caps[dc] = float64(p.in.Capacity[dc])
	}

	p.base = p.in.Base
	if p.base == nil {
		p.base = BaseGraph(m)
	}

	p.plan = &Plan{
		Input: p.in,
		Ducts: p.ducts,
		Paths: make(map[hose.Pair]*PathInfo),
		Amps:  p.amps,
	}

	// Reject regions that are disconnected even before any failure.
	full := p.base
	labels := full.Components()
	for _, dc := range p.dcs[1:] {
		if labels[dc] != labels[p.dcs[0]] {
			return nil, fmt.Errorf("plan: DCs %d and %d are not connected by usable ducts", p.dcs[0], dc)
		}
	}

	// Pruned scenario enumeration: a cut of a duct that no chosen path
	// uses leaves every path — and hence all provisioning — unchanged, so
	// only used ducts need be considered for the next cut. With
	// deterministic tie-breaking, removing an unused duct cannot alter
	// which paths Dijkstra selects, making the pruning exact.
	seen := make(map[string]bool)
	p.hoseCache = make(map[string]float64)
	cut := make(map[int]bool, p.in.MaxFailures)
	var visit func() error
	visit = func() error {
		key := cutKey(cut)
		if seen[key] {
			return nil
		}
		seen[key] = true
		p.plan.NScena++
		used, err := p.scenario(cut)
		if err != nil {
			return err
		}
		if len(cut) >= p.in.MaxFailures {
			return nil
		}
		sort.Ints(used)
		for _, d := range used {
			if cut[d] {
				continue
			}
			cut[d] = true
			if err := visit(); err != nil {
				return err
			}
			delete(cut, d)
		}
		return nil
	}
	if err := visit(); err != nil {
		return nil, err
	}
	sortCutThroughs(p)
	p.finishStages(t0)
	return p.plan, nil
}

func cutKey(cut map[int]bool) string {
	ids := make([]int, 0, len(cut))
	for id := range cut {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

// scenario processes one failure scenario end to end: routing, capacity,
// amplifiers and cut-throughs. It returns the duct IDs used by any chosen
// path, which drives the pruned scenario enumeration.
func (p *planner) scenario(cut map[int]bool) ([]int, error) {
	g := p.base
	if len(cut) > 0 {
		g = p.base.WithoutEdges(cut)
	}

	start := time.Now()
	paths := p.routeAll(g, cut)
	p.timeStage("route", start)

	start = time.Now()
	if err := p.placeAmps(paths); err != nil {
		return nil, err
	}
	p.timeStage("amps", start)

	start = time.Now()
	if err := p.placeCutThroughs(paths); err != nil {
		return nil, err
	}
	p.timeStage("cutthrough", start)

	// Provisioning runs after cut-through placement: traffic on a
	// cut-through fiber does not also consume switched base capacity on
	// the ducts it bypasses.
	start = time.Now()
	p.provision(paths)
	p.timeStage("provision", start)
	if len(cut) == 0 {
		p.recordBasePaths(paths)
	}

	usedSet := make(map[int]bool)
	for _, pr := range paths {
		for _, e := range pr.ducts {
			usedSet[e.ID] = true
		}
	}
	used := make([]int, 0, len(usedSet))
	for id := range usedSet {
		used = append(used, id)
	}
	return used, nil
}

// routeAll computes every DC pair's route in g — shortest path in the
// distributed design, best DC-hub-DC path in the centralized one —
// skipping pairs disconnected by the cuts and recording SLA overruns.
func (p *planner) routeAll(g *graph.Graph, cut map[int]bool) []*pathRec {
	var paths []*pathRec
	record := func(a, b int, nodes []int, edges []graph.Edge, total float64) {
		if total > optics.MaxPathKM+1e-9 {
			cuts := make([]int, 0, len(cut))
			for id := range cut {
				cuts = append(cuts, id)
			}
			sort.Ints(cuts)
			p.plan.SLA = append(p.plan.SLA, SLAViolation{
				Pair: hose.Pair{A: a, B: b}, Cuts: cuts, TotalKM: total,
			})
		}
		paths = append(paths, &pathRec{
			pair:     hose.Pair{A: a, B: b},
			nodes:    nodes,
			ducts:    edges,
			totalKM:  total,
			ampNode:  -1,
			bypass:   make(map[int]bool),
			cutDucts: make(map[int]bool),
		})
	}

	if len(p.in.ViaHubs) > 0 {
		hubTrees := make(map[int]*graph.ShortestPathTree, len(p.in.ViaHubs))
		for _, h := range p.in.ViaHubs {
			hubTrees[h] = g.Dijkstra(h)
		}
		for i, a := range p.dcs {
			for _, b := range p.dcs[i+1:] {
				nodes, edges, total, ok := bestHubPath(hubTrees, p.in.ViaHubs, a, b)
				if !ok {
					continue
				}
				record(a, b, nodes, edges, total)
			}
		}
		return paths
	}

	trees := make(map[int]*graph.ShortestPathTree, len(p.dcs))
	for _, dc := range p.dcs {
		trees[dc] = g.Dijkstra(dc)
	}
	for i, a := range p.dcs {
		for _, b := range p.dcs[i+1:] {
			nodes, edges, ok := trees[a].PathTo(b)
			if !ok {
				continue // cut disconnected this pair; no guarantee owed
			}
			record(a, b, nodes, edges, trees[a].Dist[b])
		}
	}
	return paths
}

// bestHubPath returns the shortest DC-hub-DC walk over the given hubs.
// The two legs may share ducts (e.g. both DCs behind the same trunk): the
// result is then a walk that crosses those ducts twice, and provisioning
// accounts for the double crossing.
func bestHubPath(trees map[int]*graph.ShortestPathTree, hubs []int, a, b int) (nodes []int, edges []graph.Edge, total float64, ok bool) {
	best := graph.Inf
	for _, h := range hubs {
		t := trees[h]
		d := t.Dist[a] + t.Dist[b]
		if d >= best || d >= graph.Inf {
			continue
		}
		nodesA, edgesA, okA := t.PathTo(a)
		nodesB, edgesB, okB := t.PathTo(b)
		if !okA || !okB {
			continue
		}
		// Leg A reversed (a → hub) followed by leg B (hub → b).
		var ns []int
		for i := len(nodesA) - 1; i >= 0; i-- {
			ns = append(ns, nodesA[i])
		}
		ns = append(ns, nodesB[1:]...)
		var es []graph.Edge
		for i := len(edgesA) - 1; i >= 0; i-- {
			es = append(es, edgesA[i])
		}
		es = append(es, edgesB...)
		nodes, edges, total, ok = ns, es, d, true
		best = d
	}
	return nodes, edges, total, ok
}

// provision applies the Algorithm 1 capacity rule and the §4.3 residual
// rule for one scenario, taking per-duct maxima against prior scenarios.
// Pairs riding a cut-through contribute no switched base capacity to the
// ducts it covers (the cut-through fiber carries them), but their residual
// fiber still follows the full path.
//
// Centralized (via-hub) walks may cross a duct more than once; each extra
// crossing is provisioned at the pair's full hose demand, a sound upper
// bound on the exact (weighted) worst case.
func (p *planner) provision(paths []*pathRec) {
	crossings := make(map[int]map[hose.Pair]int)
	residualByDuct := make(map[int]int)
	for _, pr := range paths {
		for _, e := range pr.ducts {
			residualByDuct[e.ID]++
			if !pr.cutDucts[e.ID] {
				byPair := crossings[e.ID]
				if byPair == nil {
					byPair = make(map[hose.Pair]int)
					crossings[e.ID] = byPair
				}
				byPair[pr.pair]++
			}
		}
	}
	for ductID, byPair := range crossings {
		pairs := make([]hose.Pair, 0, len(byPair))
		extra := 0.0
		for pair, k := range byPair {
			pairs = append(pairs, pair)
			if k > 1 {
				extra += float64(k-1) * math.Min(p.caps[pair.A], p.caps[pair.B])
			}
		}
		load := p.cachedLoad(pairs) + extra
		basePairs := int(math.Ceil(load - 1e-9))
		du := p.ductUse(ductID)
		if basePairs > du.BasePairs {
			du.BasePairs = basePairs
		}
	}
	for ductID, n := range residualByDuct {
		du := p.ductUse(ductID)
		if n > du.ResidualPairs {
			du.ResidualPairs = n
		}
	}
}

// cachedLoad memoises hose.WorstCaseLoad over the planner's fixed DC
// capacities, keyed by the (sorted) pair-set signature.
func (p *planner) cachedLoad(pairs []hose.Pair) float64 {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	key := make([]byte, 0, 4*len(pairs))
	for _, pr := range pairs {
		key = append(key,
			byte(pr.A), byte(pr.A>>8),
			byte(pr.B), byte(pr.B>>8))
	}
	if load, ok := p.hoseCache[string(key)]; ok {
		return load
	}
	load := hose.WorstCaseLoad(p.caps, pairs)
	p.hoseCache[string(key)] = load
	return load
}

func (p *planner) ductUse(id int) *DuctUse {
	du, ok := p.ducts[id]
	if !ok {
		du = &DuctUse{DuctID: id}
		p.ducts[id] = du
	}
	return du
}

// recordBasePaths captures the failure-free paths for circuit setup.
func (p *planner) recordBasePaths(paths []*pathRec) {
	for _, pr := range paths {
		info := &PathInfo{
			Pair:    pr.pair,
			Nodes:   pr.nodes,
			TotalKM: pr.totalKM,
		}
		for _, e := range pr.ducts {
			info.Ducts = append(info.Ducts, e.ID)
		}
		if pr.ampNode >= 0 {
			info.AmpNodes = append(info.AmpNodes, pr.ampNode)
		}
		for n := range pr.bypass {
			info.Bypassed = append(info.Bypassed, n)
		}
		sort.Ints(info.Bypassed)
		for d := range pr.cutDucts {
			info.CutDucts = append(info.CutDucts, d)
		}
		sort.Ints(info.CutDucts)
		p.plan.Paths[pr.pair] = info
	}
}

func sortCutThroughs(p *planner) {
	keys := make([]string, 0, len(p.cuts))
	for k := range p.cuts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.plan.Cuts = append(p.plan.Cuts, *p.cuts[k])
	}
}

// EvaluatePath re-evaluates the stored failure-free path of a DC pair
// against the optical constraints, reconstructing its element chain from
// the recorded amplifier and cut-through assignments.
func (pl *Plan) EvaluatePath(pair hose.Pair) (optics.PathEval, bool) {
	info, ok := pl.Paths[pair.Canonical()]
	if !ok {
		return optics.PathEval{}, false
	}
	pr := &pathRec{
		pair:    info.Pair,
		nodes:   info.Nodes,
		totalKM: info.TotalKM,
		ampNode: -1,
		bypass:  make(map[int]bool),
	}
	for _, id := range info.Ducts {
		d := pl.Input.Map.Ducts[id]
		pr.ducts = append(pr.ducts, graph.Edge{ID: d.ID, U: d.A, V: d.B, W: d.FiberKM})
	}
	if len(info.AmpNodes) > 0 {
		pr.ampNode = info.AmpNodes[0]
	}
	for _, n := range info.Bypassed {
		pr.bypass[n] = true
	}
	return optics.Evaluate(elementsFor(pr)), true
}

// TotalFiberPairs returns the region-wide number of leased fiber-pairs.
func (pl *Plan) TotalFiberPairs() int {
	total := 0
	for _, du := range pl.Ducts {
		total += du.TotalPairs()
	}
	return total
}

// BaseFiberPairs returns the fiber-pairs provisioned by Algorithm 1 alone,
// which is exactly the fiber an electrical packet-switched design leases.
func (pl *Plan) BaseFiberPairs() int {
	total := 0
	for _, du := range pl.Ducts {
		total += du.BasePairs
	}
	return total
}

// TotalAmps returns the number of amplifiers placed in the network.
func (pl *Plan) TotalAmps() int {
	total := 0
	for _, n := range pl.Amps {
		total += n
	}
	return total
}

// UsedHuts returns the hut nodes that terminate at least one provisioned
// duct; huts with no capacity are simply not part of the topology (§4.1).
func (pl *Plan) UsedHuts() []int {
	used := make(map[int]bool)
	for id, du := range pl.Ducts {
		if du.TotalPairs() == 0 {
			continue
		}
		d := pl.Input.Map.Ducts[id]
		for _, n := range []int{d.A, d.B} {
			if pl.Input.Map.Nodes[n].Kind == fibermap.Hut {
				used[n] = true
			}
		}
	}
	huts := make([]int, 0, len(used))
	for h := range used {
		huts = append(huts, h)
	}
	sort.Ints(huts)
	return huts
}

// DCFiberEnds returns, per node, the number of fiber-pair ends terminating
// there (base + residual; cut-throughs terminate only at their endpoint
// nodes and are reported separately by CutThroughEnds).
func (pl *Plan) FiberEndsByNode() map[int]int {
	ends := make(map[int]int)
	for id, du := range pl.Ducts {
		d := pl.Input.Map.Ducts[id]
		n := du.BasePairs + du.ResidualPairs
		ends[d.A] += n
		ends[d.B] += n
	}
	for _, ct := range pl.Cuts {
		ends[ct.From] += ct.Pairs
		ends[ct.To] += ct.Pairs
	}
	return ends
}
