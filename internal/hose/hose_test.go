package hose

import (
	"math"
	"math/rand"
	"testing"
)

func TestSinglePair(t *testing.T) {
	caps := map[int]float64{1: 5, 2: 3}
	if got := WorstCaseLoad(caps, []Pair{{1, 2}}); got != 3 {
		t.Errorf("WorstCaseLoad = %v, want min(5,3)=3", got)
	}
}

func TestSharedEndpointAvoidsDoubleCounting(t *testing.T) {
	// The §4.1 example: DC A appears in pairs A-B and A-C. A naive sum
	// counts A's capacity twice; the exact load is min(C_A, C_B + C_C).
	caps := map[int]float64{0: 4, 1: 10, 2: 10}
	pairs := []Pair{{0, 1}, {0, 2}}
	if got := WorstCaseLoad(caps, pairs); got != 4 {
		t.Errorf("WorstCaseLoad = %v, want 4 (A's hose cap)", got)
	}
	if naive := NaiveLoad(caps, pairs); naive != 8 {
		t.Errorf("NaiveLoad = %v, want 8 (double-counted)", naive)
	}
}

func TestBottleneckOnFarSide(t *testing.T) {
	caps := map[int]float64{0: 100, 1: 2, 2: 3}
	pairs := []Pair{{0, 1}, {0, 2}}
	if got := WorstCaseLoad(caps, pairs); got != 5 {
		t.Errorf("WorstCaseLoad = %v, want 2+3=5", got)
	}
}

func TestTriangleIsFractional(t *testing.T) {
	// Pairs forming a triangle with unit capacities: the optimal fractional
	// b-matching puts 1/2 on each pair for a total of 3/2. An integral
	// matcher would only achieve 1.
	caps := map[int]float64{0: 1, 1: 1, 2: 1}
	pairs := []Pair{{0, 1}, {1, 2}, {0, 2}}
	if got := WorstCaseLoad(caps, pairs); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("WorstCaseLoad = %v, want 1.5", got)
	}
}

func TestDuplicatesCoalesced(t *testing.T) {
	caps := map[int]float64{1: 5, 2: 3}
	pairs := []Pair{{1, 2}, {2, 1}, {1, 2}}
	if got := WorstCaseLoad(caps, pairs); got != 3 {
		t.Errorf("WorstCaseLoad = %v, want 3", got)
	}
	if naive := NaiveLoad(caps, pairs); naive != 3 {
		t.Errorf("NaiveLoad = %v, want 3", naive)
	}
}

func TestEmptyPairs(t *testing.T) {
	if got := WorstCaseLoad(map[int]float64{}, nil); got != 0 {
		t.Errorf("WorstCaseLoad(empty) = %v", got)
	}
}

func TestDegeneratePairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WorstCaseLoad(map[int]float64{1: 1}, []Pair{{1, 1}})
}

func TestMissingCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WorstCaseLoad(map[int]float64{1: 1}, []Pair{{1, 2}})
}

func TestZeroCapacityDC(t *testing.T) {
	caps := map[int]float64{0: 0, 1: 7, 2: 7}
	pairs := []Pair{{0, 1}, {1, 2}}
	if got := WorstCaseLoad(caps, pairs); got != 7 {
		t.Errorf("WorstCaseLoad = %v, want 7", got)
	}
}

// bruteForce maximises Σ d_p by enumerating demands in steps of 0.5, valid
// because the fractional b-matching LP with integer capacities has a
// half-integral optimum.
func bruteForce(caps map[int]float64, pairs []Pair) float64 {
	var best float64
	var rec func(i int, demands []float64)
	feasible := func(demands []float64) bool {
		use := make(map[int]float64)
		for i, p := range pairs {
			use[p.A] += demands[i]
			use[p.B] += demands[i]
		}
		for v, u := range use {
			if u > caps[v]+1e-9 {
				return false
			}
		}
		return true
	}
	rec = func(i int, demands []float64) {
		if i == len(pairs) {
			if feasible(demands) {
				var sum float64
				for _, d := range demands {
					sum += d
				}
				if sum > best {
					best = sum
				}
			}
			return
		}
		maxD := math.Min(caps[pairs[i].A], caps[pairs[i].B])
		for d := 0.0; d <= maxD+1e-9; d += 0.5 {
			demands[i] = d
			rec(i+1, demands)
		}
		demands[i] = 0
	}
	rec(0, make([]float64, len(pairs)))
	return best
}

func TestMatchesBruteForceOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		nDCs := 2 + rng.Intn(4)
		caps := make(map[int]float64)
		for v := 0; v < nDCs; v++ {
			caps[v] = float64(rng.Intn(4)) // 0..3, integer => half-integral LP
		}
		var pairs []Pair
		seen := map[Pair]bool{}
		nPairs := 1 + rng.Intn(4)
		for len(pairs) < nPairs {
			a, b := rng.Intn(nDCs), rng.Intn(nDCs)
			if a == b {
				continue
			}
			p := (Pair{a, b}).Canonical()
			if seen[p] {
				break
			}
			seen[p] = true
			pairs = append(pairs, p)
		}
		got := WorstCaseLoad(caps, pairs)
		want := bruteForce(caps, pairs)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: got %v, brute force %v (caps=%v pairs=%v)",
				trial, got, want, caps, pairs)
		}
	}
}

func TestBoundsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		nDCs := 2 + rng.Intn(8)
		caps := make(map[int]float64)
		var capSum float64
		for v := 0; v < nDCs; v++ {
			caps[v] = rng.Float64() * 20
			capSum += caps[v]
		}
		var pairs []Pair
		for i := 0; i < 1+rng.Intn(10); i++ {
			a, b := rng.Intn(nDCs), rng.Intn(nDCs)
			if a != b {
				pairs = append(pairs, Pair{a, b})
			}
		}
		if len(pairs) == 0 {
			continue
		}
		got := WorstCaseLoad(caps, pairs)
		naive := NaiveLoad(caps, pairs)
		if got > naive+1e-9 {
			t.Fatalf("trial %d: load %v exceeds naive bound %v", trial, got, naive)
		}
		if got > capSum/2+1e-9 {
			t.Fatalf("trial %d: load %v exceeds half total capacity %v", trial, got, capSum/2)
		}
		// Lower bound: any single pair's min-capacity is achievable.
		for _, p := range pairs {
			lower := math.Min(caps[p.A], caps[p.B])
			if got < lower-1e-9 {
				t.Fatalf("trial %d: load %v below single-pair bound %v", trial, got, lower)
			}
		}
	}
}
