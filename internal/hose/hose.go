// Package hose computes worst-case link loads under the hose traffic model
// (Duffield et al.), as required by the planner's capacity-provisioning
// step (§4.1 of the paper, adapting Juttner et al.).
//
// Under the hose model each DC v may send/receive up to its capacity C_v in
// aggregate, and the network must support every traffic matrix consistent
// with those bounds. With single (shortest) path routing, the worst-case
// load on a link is
//
//	max  Σ_p d_p   subject to   Σ_{p incident to v} d_p ≤ C_v  for all v,
//
// taken over the set of DC pairs p whose path crosses the link. This is a
// maximum fractional b-matching, which this package solves exactly as half
// the max-flow on the bipartite double cover of the pair graph.
package hose

import (
	"fmt"
	"math"
	"sort"

	"iris/internal/graph"
)

// Pair is an unordered pair of DCs whose shortest path crosses the link
// under consideration.
type Pair struct {
	A, B int
}

// Canonical returns the pair with A ≤ B.
func (p Pair) Canonical() Pair {
	if p.A > p.B {
		return Pair{A: p.B, B: p.A}
	}
	return p
}

// WorstCaseLoad returns the worst-case hose-model load contributed by the
// given DC pairs, where caps maps DC id to its hose capacity (in the same
// units the result is produced in, e.g. fibers). Duplicate pairs are
// coalesced; a pair whose endpoints coincide panics, since no DC sends
// regional traffic to itself.
//
// The naive bound Σ_p min(C_A, C_B) over-provisions whenever one DC appears
// in several pairs (§4.1); this function computes the exact optimum.
func WorstCaseLoad(caps map[int]float64, pairs []Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	seen := make(map[Pair]bool, len(pairs))
	var uniq []Pair
	for _, p := range pairs {
		if p.A == p.B {
			panic(fmt.Sprintf("hose: degenerate pair (%d,%d)", p.A, p.B))
		}
		c := p.Canonical()
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}

	// Dense-index the DCs that appear in pairs, deterministically.
	idSet := make(map[int]bool)
	for _, p := range uniq {
		idSet[p.A] = true
		idSet[p.B] = true
	}
	ids := make([]int, 0, len(idSet))
	for id := range idSet {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	index := make(map[int]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}

	// Bipartite double cover: nodes are s, t, then left and right copies of
	// each DC. Every pair (a,b) contributes aL→bR and bL→aR; the value of
	// the maximum fractional b-matching is half the s-t max flow.
	n := len(ids)
	f := graph.NewFlowNetwork(2 + 2*n)
	s, t := 0, 1
	left := func(i int) int { return 2 + i }
	right := func(i int) int { return 2 + n + i }
	for i, id := range ids {
		c, ok := caps[id]
		if !ok {
			panic(fmt.Sprintf("hose: no capacity for DC %d", id))
		}
		if c < 0 || math.IsNaN(c) {
			panic(fmt.Sprintf("hose: invalid capacity %v for DC %d", c, id))
		}
		f.AddArc(s, left(i), c)
		f.AddArc(right(i), t, c)
	}
	for _, p := range uniq {
		a, b := index[p.A], index[p.B]
		f.AddArc(left(a), right(b), math.Inf(1))
		f.AddArc(left(b), right(a), math.Inf(1))
	}
	return f.MaxFlow(s, t) / 2
}

// NaiveLoad returns the per-pair sum Σ min(C_A, C_B), the over-provisioned
// bound a naive planner would use (§4.1). It exists for comparison in the
// evaluation and as an upper bound in tests.
func NaiveLoad(caps map[int]float64, pairs []Pair) float64 {
	seen := make(map[Pair]bool, len(pairs))
	var total float64
	for _, p := range pairs {
		c := p.Canonical()
		if seen[c] {
			continue
		}
		seen[c] = true
		total += math.Min(caps[p.A], caps[p.B])
	}
	return total
}
