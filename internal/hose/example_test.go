package hose_test

import (
	"fmt"

	"iris/internal/hose"
)

// ExampleWorstCaseLoad shows the §4.1 double-counting pitfall: DC A
// appears in two pairs crossing the same duct, so a naive per-pair sum
// over-provisions while the hose-model optimum respects A's capacity.
func ExampleWorstCaseLoad() {
	caps := map[int]float64{0: 4, 1: 10, 2: 10}
	pairs := []hose.Pair{{A: 0, B: 1}, {A: 0, B: 2}}
	fmt.Printf("naive: %.0f fibers\n", hose.NaiveLoad(caps, pairs))
	fmt.Printf("hose:  %.0f fibers\n", hose.WorstCaseLoad(caps, pairs))
	// Output:
	// naive: 8 fibers
	// hose:  4 fibers
}
