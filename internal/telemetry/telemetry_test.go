package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %v, want 3", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Errorf("gauge = %v, want 3", g.Value())
	}
}

// TestDuplicateRegistrationPanics is the multi-instance collision
// regression test: before the fix, registering an existing name silently
// returned the first instance's collector, so two daemons sharing one
// registry aliased their gauges and corrupted both regions' numbers. Now
// every duplicate claim — same type included — panics.
func TestDuplicateRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: duplicate registration did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Gauge("iris_circuits_active", "")
	mustPanic("gauge twice", func() { r.Gauge("iris_circuits_active", "") })
	r.Counter("steps_total", "")
	mustPanic("counter twice", func() { r.Counter("steps_total", "") })
	r.Histogram("lat_seconds", "", []float64{1})
	mustPanic("histogram twice", func() { r.Histogram("lat_seconds", "", []float64{1}) })
	r.CounterVec("per_dev_total", "", "device")
	mustPanic("countervec twice", func() { r.CounterVec("per_dev_total", "", "device") })
	mustPanic("cross-type", func() { r.Gauge("steps_total", "") })

	// Instance scoping: the same name on two different registries is two
	// independent collectors.
	r2 := NewRegistry()
	r2.Gauge("iris_circuits_active", "").Set(7)
}

func TestCounterRejectsDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c", "").Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		`latency_seconds_sum 5.555`,
		`latency_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	zeta := r.CounterVec("zeta_total", "z", "device")
	zeta.With("b").Inc()
	zeta.With("a").Inc()
	r.Gauge("alpha", "a").Set(1)
	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("two renders differ")
	}
	out := b1.String()
	if !strings.Contains(out, "# TYPE alpha gauge") || !strings.Contains(out, "# TYPE zeta_total counter") {
		t.Fatalf("missing TYPE lines:\n%s", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	if strings.Index(out, `device="a"`) > strings.Index(out, `device="b"`) {
		t.Errorf("children not sorted by label value:\n%s", out)
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("breaker_state", "state", "device")
	v.With("oss-1").Set(2)
	if got := v.With("oss-1").Value(); got != 2 {
		t.Errorf("child lookup = %v, want 2", got)
	}
}

func TestMismatchedReRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("type-mismatched re-registration did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter("hits_total", "")
	perDev := r.CounterVec("per_dev_total", "", "device")
	h := r.Histogram("h", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				hits.Inc()
				// Vec children stay dynamic after registration: With is the
				// concurrent lookup-or-create path.
				perDev.With("d").Inc()
				h.Observe(float64(j))
				var b strings.Builder
				_ = r.WriteText(&b)
			}
		}()
	}
	wg.Wait()
	if got := hits.Value(); got != 800 {
		t.Errorf("hits = %v, want 800", got)
	}
}

// TestMergeText pins the fleet's /metrics rollup: instance-scoped
// registries merged into one exposition, every sample stamped with the
// instance label, family labels composed, HELP/TYPE emitted once per
// family, and histogram le labels composed after the instance label.
func TestMergeText(t *testing.T) {
	r0, r1 := NewRegistry(), NewRegistry()
	r0.Counter("iris_reconfig_total", "reconfigs").Add(3)
	r1.Counter("iris_reconfig_total", "reconfigs").Add(5)
	r0.GaugeVec("iris_breaker_state", "breakers", "device").With("oss-1").Set(2)
	r1.Histogram("iris_reconfig_seconds", "latency", []float64{0.5}).Observe(0.25)
	r0.Gauge("only_in_r0", "singleton").Set(1)

	var b strings.Builder
	err := MergeText(&b, "region", []LabeledRegistry{
		{Value: "r000", Reg: r0},
		{Value: "r001", Reg: r1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP iris_reconfig_total reconfigs\n# TYPE iris_reconfig_total counter\n",
		`iris_reconfig_total{region="r000"} 3`,
		`iris_reconfig_total{region="r001"} 5`,
		`iris_breaker_state{device="oss-1",region="r000"} 2`,
		`iris_reconfig_seconds_bucket{region="r001",le="0.5"} 1`,
		`iris_reconfig_seconds_bucket{region="r001",le="+Inf"} 1`,
		`iris_reconfig_seconds_count{region="r001"} 1`,
		`only_in_r0{region="r000"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE iris_reconfig_total counter") != 1 {
		t.Errorf("TYPE emitted more than once:\n%s", out)
	}
	// Samples of one family are grouped under its single header, regions
	// in the order the registries were given.
	if strings.Index(out, `{region="r000"} 3`) > strings.Index(out, `{region="r001"} 5`) {
		t.Errorf("merge did not preserve registry order:\n%s", out)
	}

	// A cross-instance type conflict is an error, not silent corruption.
	r2 := NewRegistry()
	r2.Gauge("iris_reconfig_total", "now a gauge")
	err = MergeText(&b, "region", []LabeledRegistry{
		{Value: "r000", Reg: r0},
		{Value: "r002", Reg: r2},
	})
	if err == nil {
		t.Error("merging conflicting family types did not error")
	}
}

// TestHistogramInfBucketCumulativeInvariant asserts the exposition
// invariants Prometheus clients rely on: bucket counts are cumulative and
// non-decreasing in bound order, and the +Inf bucket always equals
// <name>_count — including when every observation overflows the largest
// finite bound, and when a histogram has recorded nothing at all.
func TestHistogramInfBucketCumulativeInvariant(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("overflow_seconds", "all samples past the last bound", []float64{0.001, 0.01})
	for i := 0; i < 7; i++ {
		h.Observe(100) // beyond every finite bucket
	}
	r.Histogram("untouched_seconds", "registered, never observed", []float64{1, 2})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`overflow_seconds_bucket{le="0.001"} 0`,
		`overflow_seconds_bucket{le="0.01"} 0`,
		`overflow_seconds_bucket{le="+Inf"} 7`,
		`overflow_seconds_count 7`,
		`untouched_seconds_bucket{le="+Inf"} 0`,
		`untouched_seconds_sum 0`,
		`untouched_seconds_count 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// The +Inf bucket must track _count exactly for a labeled family too,
	// with the le label composed onto the family label.
	hv := r.HistogramVec("phase_seconds", "per-phase", "phase", []float64{0.5})
	hv.With("drain").Observe(0.25)
	hv.With("drain").Observe(99)
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{
		`phase_seconds_bucket{phase="drain",le="0.5"} 1`,
		`phase_seconds_bucket{phase="drain",le="+Inf"} 2`,
		`phase_seconds_count{phase="drain"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestEmptyRegistryDeterminism pins down the exposition of nothing: an
// empty registry writes zero bytes, and doing so repeatedly — and after
// registering families with no samples — stays byte-identical between
// calls, so scrapes never flap on ordering.
func TestEmptyRegistryDeterminism(t *testing.T) {
	r := NewRegistry()
	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if a.String() != "" {
		t.Errorf("empty registry wrote %q, want empty", a.String())
	}

	// Families with no children still emit HELP/TYPE headers (vecs before
	// any With) or zero-valued samples (plain collectors), in sorted name
	// order, identically on every scrape.
	r.CounterVec("zz_total", "latest name", "device")
	r.Gauge("aa_depth", "first name")
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("consecutive scrapes differ:\n%s\n---\n%s", a.String(), b.String())
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE aa_depth gauge") || !strings.Contains(out, "# TYPE zz_total counter") {
		t.Errorf("headers missing from %q", out)
	}
	if strings.Index(out, "aa_depth") > strings.Index(out, "zz_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}
