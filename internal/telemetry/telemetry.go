// Package telemetry is a small, dependency-free metrics library for the
// iris daemon: counters, gauges and histograms registered in a Registry
// and exposed in the Prometheus text format. It implements just the
// exposition subset the /metrics endpoint needs — no client library, no
// push, deterministic output ordering so tests can assert on it.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metric families. All methods are safe for
// concurrent use. Registration is single-shot: each metric name may be
// claimed exactly once per Registry, and claiming a name twice panics (a
// programming error, not an operational condition). The panic is what
// makes registries instance-scoped — two daemon instances handed the same
// Registry would otherwise silently alias their counters and corrupt both
// regions' numbers, so multi-instance supervisors (the fleet) give every
// instance its own Registry and merge scrapes with MergeText.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

type family struct {
	name, help, typ string
	label           string // label key; "" for unlabeled families
	mu              sync.Mutex
	children        map[string]collector // label value -> collector
	buckets         []float64            // histograms only
}

type collector interface {
	// write emits the family's sample lines for one child.
	write(w io.Writer, name, labels string) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family claims a metric name. A name already present — same type or not —
// panics: collectors are single-instance per Registry, so a duplicate claim
// means two subsystem instances were wired to one Registry and their
// samples would silently alias.
func (r *Registry) family(name, help, typ, label string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		panic(fmt.Sprintf("telemetry: %s already registered (as %s/%q, now claimed as %s/%q) — collectors are single-instance per Registry; give each subsystem instance its own Registry and aggregate with MergeText",
			name, f.typ, f.label, typ, label))
	}
	f := &family{name: name, help: help, typ: typ, label: label,
		children: make(map[string]collector), buckets: buckets}
	r.families[name] = f
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return f
}

func (f *family) child(value string, mk func() collector) collector {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[value]; ok {
		return c
	}
	c := mk()
	f.children[value] = c
	return c
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d; negative deltas panic.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("telemetry: counter decreased")
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func (c *Counter) write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.Value()))
	return err
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adds d (may be negative).
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g *Gauge) write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
	return err
}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // ascending upper bounds, +Inf implicit
	counts  []uint64  // per bucket (non-cumulative internally)
	inf     uint64
	sum     float64
	count   uint64
}

func newHistogram(buckets []float64) *Histogram {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{buckets: bs, counts: make([]uint64, len(bs))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) write(w io.Writer, name, labels string) error {
	h.mu.Lock()
	buckets := append([]float64(nil), h.buckets...)
	counts := append([]uint64(nil), h.counts...)
	inf, sum, count := h.inf, h.sum, h.count
	h.mu.Unlock()

	// Bucket labels compose with the family label.
	le := func(bound string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", bound)
		}
		return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", bound)
	}
	var cum uint64
	for i, ub := range buckets {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le(formatFloat(ub)), cum); err != nil {
			return err
		}
	}
	cum += inf
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	return err
}

// Counter registers and returns the unlabeled counter with the given
// name. Claiming a name twice panics — see Registry.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, "counter", "", nil)
	return f.child("", func() collector { return &Counter{} }).(*Counter)
}

// Gauge registers and returns the unlabeled gauge with the given name.
// Claiming a name twice panics — see Registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, "gauge", "", nil)
	return f.child("", func() collector { return &Gauge{} }).(*Gauge)
}

// Histogram registers and returns the unlabeled histogram with the given
// name and bucket upper bounds. Claiming a name twice panics — see
// Registry.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, "histogram", "", buckets)
	return f.child("", func() collector { return newHistogram(f.buckets) }).(*Histogram)
}

// LookupCounter returns the already-registered unlabeled counter with
// the given name, or nil if no such counter exists. Unlike Counter it
// never registers a family — use it to observe a metric owned by
// another subsystem (e.g. from a test) without claiming the name.
func (r *Registry) LookupCounter(name string) *Counter {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c, _ := f.children[""].(*Counter)
	return c
}

// LookupCounterWith returns the already-registered counter for one label
// value of the named labeled family, or nil if the family or value does
// not exist. Like LookupCounter, it never registers.
func (r *Registry) LookupCounterWith(name, value string) *Counter {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c, _ := f.children[value].(*Counter)
	return c
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers and returns the labeled counter family with the
// given name and label key. Claiming a name twice panics; new label
// values via With remain dynamic.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.family(name, help, "counter", label, nil)}
}

// With returns the counter for one label value.
func (v *CounterVec) With(value string) *Counter {
	return v.f.child(value, func() collector { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers and returns the labeled gauge family with the given
// name and label key. Claiming a name twice panics; new label values via
// With remain dynamic.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{r.family(name, help, "gauge", label, nil)}
}

// With returns the gauge for one label value.
func (v *GaugeVec) With(value string) *Gauge {
	return v.f.child(value, func() collector { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers and returns the labeled histogram family with
// the given name, label key and bucket upper bounds. Claiming a name
// twice panics; new label values via With remain dynamic.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return &HistogramVec{r.family(name, help, "histogram", label, buckets)}
}

// With returns the histogram for one label value.
func (v *HistogramVec) With(value string) *Histogram {
	return v.f.child(value, func() collector { return newHistogram(v.f.buckets) }).(*Histogram)
}

// snapshot returns the registry's families in name order.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, len(r.names))
	for i, n := range r.names {
		fams[i] = r.families[n]
	}
	return fams
}

// writeChildren emits one family's sample lines, composing the family
// label with an optional extra label pair (extraKey == "" omits it). The
// extra label lets a supervisor stamp every sample of an instance-scoped
// registry with the instance's identity.
func (f *family) writeChildren(w io.Writer, extraKey, extraVal string) error {
	f.mu.Lock()
	values := make([]string, 0, len(f.children))
	for v := range f.children {
		values = append(values, v)
	}
	sort.Strings(values)
	children := make([]collector, len(values))
	for i, v := range values {
		children[i] = f.children[v]
	}
	f.mu.Unlock()
	for i, c := range children {
		// %q escapes backslash, quote and newline — exactly the Prometheus
		// label escaping rules.
		var pairs []string
		if f.label != "" {
			pairs = append(pairs, fmt.Sprintf("%s=%q", f.label, values[i]))
		}
		if extraKey != "" {
			pairs = append(pairs, fmt.Sprintf("%s=%q", extraKey, extraVal))
		}
		labels := ""
		if len(pairs) > 0 {
			labels = "{" + strings.Join(pairs, ",") + "}"
		}
		if err := c.write(w, f.name, labels); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders every registered family in the Prometheus text
// exposition format, families sorted by name and children by label value.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		if err := f.writeChildren(w, "", ""); err != nil {
			return err
		}
	}
	return nil
}

// LabeledRegistry pairs an instance-scoped registry with the label value
// that identifies the instance in a merged exposition.
type LabeledRegistry struct {
	Value string
	Reg   *Registry
}

// MergeText renders several instance-scoped registries as one Prometheus
// exposition, stamping every sample with label=value identifying its
// source registry (composed after any family label, so
// iris_probe_failures_total{device="oss-3"} becomes
// iris_probe_failures_total{device="oss-3",region="r007"}). A family that
// appears in several registries is emitted once — HELP/TYPE from its
// first appearance — followed by every instance's samples in the order
// the registries are given. Registering the same family name with a
// different type or label key across instances is an error, because the
// merged exposition would be self-contradictory.
func MergeText(w io.Writer, label string, regs []LabeledRegistry) error {
	type famGroup struct {
		help, typ, labelKey string
		members             []int // indices into regs, in given order
	}
	groups := make(map[string]*famGroup)
	var order []string
	snaps := make([][]*family, len(regs))
	for i, lr := range regs {
		snaps[i] = lr.Reg.snapshot()
		for _, f := range snaps[i] {
			g, ok := groups[f.name]
			if !ok {
				groups[f.name] = &famGroup{help: f.help, typ: f.typ, labelKey: f.label, members: []int{i}}
				order = append(order, f.name)
				continue
			}
			if g.typ != f.typ || g.labelKey != f.label {
				return fmt.Errorf("telemetry: merge: %s is %s/%q in %s but %s/%q earlier",
					f.name, f.typ, f.label, lr.Value, g.typ, g.labelKey)
			}
			g.members = append(g.members, i)
		}
	}
	sort.Strings(order)
	for _, name := range order {
		g := groups[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, g.help, name, g.typ); err != nil {
			return err
		}
		for _, i := range g.members {
			for _, f := range snaps[i] {
				if f.name != name {
					continue
				}
				if err := f.writeChildren(w, label, regs[i].Value); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
