package clos

import (
	"math/rand"
	"testing"
)

func TestSizeValidation(t *testing.T) {
	cases := []struct {
		hosts, radix int
		oversub      float64
	}{
		{0, 32, 1},
		{10, 0, 1},
		{10, 31, 1}, // odd radix
		{10, 32, 0.5},
	}
	for _, c := range cases {
		if _, err := Size(c.hosts, c.radix, c.oversub); err == nil {
			t.Errorf("Size(%d,%d,%v): expected error", c.hosts, c.radix, c.oversub)
		}
	}
}

func TestSingleSwitch(t *testing.T) {
	d, err := Size(30, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tiers != 1 || d.Switches != 1 || d.InternalPorts != 0 {
		t.Errorf("design = %+v, want single switch", d)
	}
}

func TestLeafSpineNonBlocking(t *testing.T) {
	// 128 hosts on radix-32 switches: leaves with 16 down + 16 up.
	d, err := Size(128, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tiers != 2 {
		t.Fatalf("tiers = %d, want 2 (%+v)", d.Tiers, d)
	}
	if d.Leaves < 8 {
		t.Errorf("leaves = %d, want ≥ 8 for 128 hosts at 16/leaf", d.Leaves)
	}
	if d.InternalPorts == 0 {
		t.Error("leaf-spine must have internal ports")
	}
	// Non-blocking: internal ports ≥ 2 × hosts/oversub at the leaf tier.
	if d.InternalPorts < 2*128 {
		t.Errorf("internal ports = %d; non-blocking needs ≥ 256", d.InternalPorts)
	}
}

func TestOversubscriptionReducesFabric(t *testing.T) {
	nb, err := Size(256, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	os, err := Size(256, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if os.InternalPorts >= nb.InternalPorts {
		t.Errorf("4:1 oversub internal ports %d not below non-blocking %d",
			os.InternalPorts, nb.InternalPorts)
	}
}

func TestThreeTier(t *testing.T) {
	// 4000 ports exceed what radix-32 leaf-spine can serve (≤ 16×32=512
	// hosts non-blocking), forcing three tiers.
	d, err := Size(4000, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tiers != 3 {
		t.Fatalf("tiers = %d, want 3 (%+v)", d.Tiers, d)
	}
	if d.Cores == 0 {
		t.Error("three-tier design must have core switches")
	}
	if d.ExternalPorts != 4000 {
		t.Errorf("external ports = %d", d.ExternalPorts)
	}
}

func TestSizeMonotoneInHosts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		radix := 2 * (2 + rng.Intn(31)) // even, 4..64
		a := 1 + rng.Intn(2000)
		b := a + 1 + rng.Intn(500)
		da, errA := Size(a, radix, 1)
		db, errB := Size(b, radix, 1)
		if errA != nil || errB != nil {
			continue // beyond 3-tier capacity for small radix
		}
		if db.TotalPorts() < da.TotalPorts() {
			t.Fatalf("radix %d: %d hosts needs %d ports but %d hosts needs %d",
				radix, a, da.TotalPorts(), b, db.TotalPorts())
		}
	}
}

func TestCapacityCoversHosts(t *testing.T) {
	// Property: the design's leaf down-capacity covers the host count.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		radix := 2 * (4 + rng.Intn(29))
		hosts := 1 + rng.Intn(radix*radix)
		d, err := Size(hosts, radix, 1)
		if err != nil {
			continue
		}
		switch d.Tiers {
		case 1:
			if hosts > radix {
				t.Fatalf("1-tier design for %d hosts on radix %d", hosts, radix)
			}
		case 2:
			// Leaves × (radix/2) down ports must cover hosts at oversub 1.
			if d.Leaves*radix < hosts {
				t.Fatalf("trial %d: %d leaves of radix %d cannot face %d hosts",
					trial, d.Leaves, radix, hosts)
			}
		}
		if d.ExternalPorts != hosts {
			t.Fatalf("external ports %d != hosts %d", d.ExternalPorts, hosts)
		}
	}
}

func TestHubOverheadFrac(t *testing.T) {
	// A DCI hub terminating thousands of transceivers pays a significant
	// internal-port tax; a small hub pays none.
	small, err := HubOverheadFrac(20, 32)
	if err != nil {
		t.Fatal(err)
	}
	if small != 0 {
		t.Errorf("small hub overhead = %v, want 0", small)
	}
	big, err := HubOverheadFrac(3200, 32)
	if err != nil {
		t.Fatal(err)
	}
	if big < 0.3 {
		t.Errorf("big hub overhead = %v, want the Clos internal-port tax ≥ 30%%", big)
	}
	if big >= 1 {
		t.Errorf("overhead fraction %v out of range", big)
	}
}
