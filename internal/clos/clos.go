// Package clos sizes the electrical switching fabrics an EPS DCI needs at
// its DCs and huts (§4.2 of the paper: "deploy enough switching capacity
// at the DCs and huts using standard Clos networking techniques"). The
// centralized design's hubs provide a non-blocking "big switch"
// abstraction (§2.3), which at DCI port counts means multi-tier folded
// Clos fabrics — whose internal ports are an EPS cost the optical design
// simply does not have.
package clos

import "fmt"

// Design is a sized folded-Clos fabric.
type Design struct {
	// Tiers is 1 (a single switch suffices), 2 (leaf-spine) or 3
	// (three-tier folded Clos).
	Tiers int
	// Leaves, Spines and Cores are the per-tier switch counts (zero for
	// absent tiers).
	Leaves, Spines, Cores int
	// Switches is the total switch count.
	Switches int
	// ExternalPorts is the number of host-facing (transceiver) ports the
	// design serves.
	ExternalPorts int
	// InternalPorts is the number of fabric-internal ports (both ends of
	// every inter-tier link).
	InternalPorts int
}

// TotalPorts returns external plus internal ports.
func (d Design) TotalPorts() int { return d.ExternalPorts + d.InternalPorts }

// Size returns the smallest non-blocking folded-Clos design serving the
// given number of external ports with switches of the given radix.
// Oversub ≥ 1 permits oversubscribing the leaf uplinks by that factor
// (1 = non-blocking, the paper's hub requirement).
func Size(externalPorts, radix int, oversub float64) (Design, error) {
	if externalPorts <= 0 {
		return Design{}, fmt.Errorf("clos: external ports must be positive, got %d", externalPorts)
	}
	if radix < 2 || radix%2 != 0 {
		return Design{}, fmt.Errorf("clos: radix must be even and ≥ 2, got %d", radix)
	}
	if oversub < 1 {
		return Design{}, fmt.Errorf("clos: oversubscription must be ≥ 1, got %v", oversub)
	}

	// Tier 1: one switch.
	if externalPorts <= radix {
		return Design{
			Tiers: 1, Leaves: 1, Switches: 1,
			ExternalPorts: externalPorts,
		}, nil
	}

	// Tier 2: leaf-spine. Each leaf dedicates down ports to hosts and
	// up ports to spines with up ≥ down/oversub; spine radix bounds the
	// number of leaves.
	if d, ok := leafSpine(externalPorts, radix, oversub); ok {
		return d, nil
	}

	// Tier 3: three-tier folded Clos (k-ary fat-tree generalisation):
	// supports radix²·radix/4 hosts at oversub 1 — far beyond any DCI hub.
	if d, ok := threeTier(externalPorts, radix, oversub); ok {
		return d, nil
	}
	return Design{}, fmt.Errorf("clos: %d ports exceed a 3-tier fabric of radix %d", externalPorts, radix)
}

func leafSpine(hosts, radix int, oversub float64) (Design, bool) {
	// Choose the down-port count per leaf maximising hosts per leaf while
	// keeping uplinks ≥ down/oversub within the radix.
	best := Design{}
	found := false
	for down := 1; down < radix; down++ {
		up := ceilDiv64(down, oversub)
		if down+up > radix {
			continue
		}
		leaves := ceilDiv(hosts, down)
		// Each leaf needs `up` uplinks, spread across spines; each spine
		// has `radix` ports, one per leaf per parallel link. Total spine
		// ports needed: leaves × up.
		spines := ceilDiv(leaves*up, radix)
		// Feasibility: a spine must reach every leaf; with `spines`
		// spines, each leaf's up uplinks spread across them, requiring
		// spines ≤ up × parallelism; the standard condition is
		// leaves ≤ radix (each spine port pairs with one leaf uplink).
		if leaves > radix {
			continue
		}
		d := Design{
			Tiers: 2, Leaves: leaves, Spines: spines,
			Switches:      leaves + spines,
			ExternalPorts: hosts,
			InternalPorts: 2 * leaves * up,
		}
		if !found || d.Switches < best.Switches ||
			(d.Switches == best.Switches && d.InternalPorts < best.InternalPorts) {
			best = d
			found = true
		}
	}
	return best, found
}

func threeTier(hosts, radix int, oversub float64) (Design, bool) {
	// Treat tier 1+2 as pods: each pod is a maximal leaf-spine built from
	// radix/2-down leaves, serving podHosts hosts, with pod spines
	// uplinking to cores.
	half := radix / 2
	podLeaves := radix           // up to radix leaves per pod (spine radix)
	podHosts := podLeaves * half // hosts per pod at oversub 1 downward
	if podHosts == 0 {
		return Design{}, false
	}
	pods := ceilDiv(hosts, podHosts)
	upPerPod := ceilDiv64(podHosts, oversub)
	cores := ceilDiv(pods*upPerPod, radix)
	if pods > radix {
		return Design{}, false
	}
	leaves := pods * podLeaves
	spines := pods * half * 2 // pod spines sized to carry down + up
	d := Design{
		Tiers: 3, Leaves: leaves, Spines: spines, Cores: cores,
		Switches:      leaves + spines + cores,
		ExternalPorts: hosts,
		InternalPorts: 2*leaves*half + 2*pods*upPerPod,
	}
	return d, true
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a int, f float64) int {
	v := float64(a) / f
	n := int(v)
	if float64(n) < v {
		n++
	}
	return n
}

// HubOverheadFrac returns the fraction of a hub fabric's ports that are
// fabric-internal — pure overhead of the electrical big-switch abstraction
// relative to the transceiver-facing ports it serves.
func HubOverheadFrac(externalPorts, radix int) (float64, error) {
	d, err := Size(externalPorts, radix, 1)
	if err != nil {
		return 0, err
	}
	return float64(d.InternalPorts) / float64(d.TotalPorts()), nil
}
