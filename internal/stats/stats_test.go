package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {90, 46},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestMedianMax(t *testing.T) {
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Errorf("Median = %v", got)
	}
	if got := Max([]float64{5, 1, 9}); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if !math.IsNaN(Max(nil)) {
		t.Error("Max(nil) should be NaN")
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionAbove(xs, 2); got != 0.5 {
		t.Errorf("FractionAbove = %v, want 0.5", got)
	}
	if got := FractionAbove(xs, 0); got != 1 {
		t.Errorf("FractionAbove = %v, want 1", got)
	}
	if !math.IsNaN(FractionAbove(nil, 1)) {
		t.Error("FractionAbove(nil) should be NaN")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 3, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.5}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Errorf("CDFAt = %v", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Errorf("CDFAt = %v", got)
	}
	if !math.IsNaN(CDFAt(nil, 1)) {
		t.Error("CDFAt(nil) should be NaN")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 1+rng.Intn(100))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].P <= pts[i-1].P {
				t.Fatalf("CDF not strictly increasing at %d: %v", i, pts)
			}
		}
		if pts[len(pts)-1].P != 1 {
			t.Fatalf("CDF must end at 1: %v", pts[len(pts)-1])
		}
		// Percentile and CDF are inverse-consistent up to interpolation:
		// the interpolated percentile sits between two order statistics,
		// so the CDF there can undershoot by at most one sample.
		sort.Float64s(xs)
		slack := 1 / float64(len(xs))
		for _, p := range []float64{10, 50, 90} {
			v := Percentile(xs, p)
			if CDFAt(xs, v) < p/100-slack-1e-9 {
				t.Fatalf("CDFAt(Percentile(%v)) = %v, want ≥ %v", p, CDFAt(xs, v), p/100-slack)
			}
		}
	}
}
