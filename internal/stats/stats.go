// Package stats provides the small set of descriptive statistics the
// evaluation harness uses: percentiles, empirical CDFs, and means. All
// functions treat the input as a sample and do not mutate it.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. It returns NaN for an empty
// sample and panics on an out-of-range p, which is a programming error.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Max returns the sample maximum, or NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FractionAbove returns the fraction of the sample strictly above the
// threshold, or NaN for an empty sample.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of the sample ≤ X
}

// CDF returns the empirical CDF of the sample, one point per distinct
// value, in ascending order. It returns nil for an empty sample.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue // emit only the last occurrence of each value
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(i+1) / n})
	}
	return out
}

// CDFAt returns the empirical CDF evaluated at x: the fraction of the
// sample ≤ x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
