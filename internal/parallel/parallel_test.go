package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 50
		hits := make([]atomic.Int64, n)
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	for _, n := range []int{0, -3} {
		if err := ForEach(n, 4, func(int) error { called = true; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if called {
		t.Fatal("fn called for empty index space")
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	if err := ForEach(10, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("boom %d", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(100, workers, func(i int) error {
			if i == 7 || i == 63 {
				return boom(i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 7" {
			t.Fatalf("workers=%d: err = %v, want boom 7", workers, err)
		}
	}
}

func TestForEachCancelsPendingWork(t *testing.T) {
	var calls atomic.Int64
	sentinel := errors.New("stop")
	err := ForEach(1_000_000, 2, func(i int) error {
		calls.Add(1)
		if i >= 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got >= 1_000_000 {
		t.Fatalf("no cancellation: %d calls", got)
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
			}()
			_ = ForEach(20, workers, func(i int) error {
				if i == 3 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}
