// Package parallel provides the bounded-concurrency execution primitive
// the experiment sweeps and bulk planning APIs are built on: a worker
// pool over an index space with deterministic result placement. Callers
// write result i into slot i of a pre-sized slice, so the output order is
// independent of goroutine scheduling and a parallel run produces rows
// identical to a serial one.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach calls fn(i) for i in [0, n) using at most workers goroutines.
//
// workers <= 0 means GOMAXPROCS; workers == 1 runs fn serially on the
// calling goroutine in index order, with no goroutines spawned.
//
// On error the pool stops handing out new indices (errgroup-style
// first-error-wins cancellation: in-flight calls finish, pending ones
// never start) and ForEach returns the error with the lowest index among
// those observed — so for a fully serial run it is exactly the first
// error, and for a parallel run it is deterministic whenever errors are a
// function of the input index alone. A panic in fn is re-raised on the
// calling goroutine after the remaining workers drain.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64 // next index to hand out, minus one
		stopped atomic.Bool
		wg      sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n
		firstErr error
		panicked any
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				err := protect(fn, i, &mu, &panicked, &stopped)
				if err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

// protect runs fn(i), converting a panic into a recorded panic value and
// a pool stop so the caller can re-raise it after the workers drain.
func protect(fn func(int) error, i int, mu *sync.Mutex, panicked *any, stopped *atomic.Bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			mu.Lock()
			if *panicked == nil {
				*panicked = r
			}
			mu.Unlock()
			stopped.Store(true)
		}
	}()
	return fn(i)
}
