package graph

import "math"

// This file is the allocation-free face of Dijkstra. The memoised
// Dijkstra method suits callers that keep one graph alive and ask for
// the same sources repeatedly; the planner's failure-scenario loop is
// the opposite shape — thousands of slightly different graphs, each
// asked once per DC — and cloning a Graph per scenario plus allocating a
// tree per source dominated the full-solve profile. DijkstraInto runs
// the exact same algorithm on the *base* graph with an edge-exclusion
// filter, writing into a caller-owned tree through a reusable Scratch,
// so a warmed solver routes a scenario with zero heap allocations.
//
// Results are bit-identical to Dijkstra on the WithoutEdges-derived
// graph: the deterministic tie-break (better) keys on distances, hop
// counts, node numbers and edge IDs — none of which change when edges
// are filtered instead of removed — and adjacency is scanned in the
// same relative order.

// Scratch holds the reusable per-run state of DijkstraInto: the settled
// marks and the priority queue (a monotone bucket queue, with a plain
// binary heap as fallback for graphs whose weights defeat the bucket
// width heuristic). A Scratch may be reused across runs and graphs but
// not concurrently.
type Scratch struct {
	done    []bool
	heap    []distItem
	buckets [][]distItem
	hi      int // 1 + highest bucket index touched this run
	queued  int
}

// maxBuckets bounds bucket-queue memory; distances past the last bucket
// fall into it as an overflow bucket, which is scanned exactly like any
// other so correctness never depends on the width guess.
const maxBuckets = 1 << 12

func (sc *Scratch) reset(n int) {
	if cap(sc.done) < n {
		sc.done = make([]bool, n)
	} else {
		sc.done = sc.done[:n]
		clear(sc.done)
	}
	for i := 0; i < sc.hi; i++ {
		sc.buckets[i] = sc.buckets[i][:0]
	}
	sc.hi = 0
	sc.heap = sc.heap[:0]
	sc.queued = 0
}

// reset re-initialises a tree's slabs for graph g, reusing capacity.
func (t *ShortestPathTree) reset(g *Graph, source int) {
	n := g.n
	if cap(t.Dist) < n {
		t.Dist = make([]float64, n)
		t.Hops = make([]int, n)
		t.prevEdge = make([]int, n)
	} else {
		t.Dist = t.Dist[:n]
		t.Hops = t.Hops[:n]
		t.prevEdge = t.prevEdge[:n]
	}
	for i := 0; i < n; i++ {
		t.Dist[i] = Inf
		t.Hops[i] = math.MaxInt
		t.prevEdge[i] = -1
	}
	t.g = g
	t.Source = source
	t.Dist[source] = 0
	t.Hops[source] = 0
}

// bucketWidth picks the bucket quantum: the smallest positive edge
// weight (Dial's choice) keeps buckets near-singleton so the min-scan
// per pop stays O(1); widths whose spread would overflow the bucket cap
// into one giant overflow bucket fall back to the heap. Zero disables
// the bucket queue (edgeless or all-zero-weight graphs).
func (g *Graph) bucketWidth() float64 {
	w := g.minW
	if len(g.edges) == 0 || w <= 0 || math.IsInf(w, 1) {
		return 0
	}
	return w
}

// DijkstraInto computes the single-source shortest-path tree of g with
// the skipped edges excluded, writing into t. skip is indexed by edge
// *index* (see EdgeIndex), not ID; nil means no exclusions. The result
// is bit-identical to g.WithoutEdges(set).Dijkstra(source) but performs
// no allocation once t and sc are warm. t is returned for convenience.
func (g *Graph) DijkstraInto(source int, skip []bool, t *ShortestPathTree, sc *Scratch) *ShortestPathTree {
	t.reset(g, source)
	sc.reset(g.n)
	if w := g.bucketWidth(); w > 0 {
		g.settleBuckets(t, sc, skip, w)
	} else {
		g.settleHeapScratch(t, sc, skip)
	}
	return t
}

// dijkstraHeapInto is settleHeapScratch behind the DijkstraInto reset
// protocol: the heap-only variant, kept callable for the equivalence
// tests and the bucket-vs-heap micro-benchmarks.
func (g *Graph) dijkstraHeapInto(source int, skip []bool, t *ShortestPathTree, sc *Scratch) *ShortestPathTree {
	t.reset(g, source)
	sc.reset(g.n)
	g.settleHeapScratch(t, sc, skip)
	return t
}

func itemLess(a, b distItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.node < b.node
}

// settleBuckets is the Dijkstra main loop over a monotone bucket queue.
// Extraction scans the lowest non-empty bucket for its minimum under
// the same total order the heap uses, so the pop sequence — and hence
// the tree, given the deterministic relaxation — matches the heap's
// exactly. Monotonicity holds because a relaxed label is never smaller
// than the label being settled, so pushes never land below the cursor.
func (g *Graph) settleBuckets(t *ShortestPathTree, sc *Scratch, skip []bool, width float64) {
	sc.pushBucket(distItem{node: t.Source, dist: 0, hops: 0}, width)
	bi := 0
	for sc.queued > 0 {
		for bi < sc.hi && len(sc.buckets[bi]) == 0 {
			bi++
		}
		if bi >= sc.hi {
			return
		}
		b := sc.buckets[bi]
		mi := 0
		for k := 1; k < len(b); k++ {
			if itemLess(b[k], b[mi]) {
				mi = k
			}
		}
		it := b[mi]
		b[mi] = b[len(b)-1]
		sc.buckets[bi] = b[:len(b)-1]
		sc.queued--
		u := it.node
		if sc.done[u] {
			continue
		}
		sc.done[u] = true
		for _, idx := range g.adj[u] {
			if skip != nil && skip[idx] {
				continue
			}
			e := g.edges[idx]
			v := e.Other(u)
			if sc.done[v] {
				continue
			}
			nd := t.Dist[u] + e.W
			nh := t.Hops[u] + 1
			if better(nd, nh, u, e.ID, t.Dist[v], t.Hops[v], t.prev(v), t.prevID(v)) {
				t.Dist[v] = nd
				t.Hops[v] = nh
				t.prevEdge[v] = idx
				sc.pushBucket(distItem{node: v, dist: nd, hops: nh}, width)
			}
		}
	}
}

func (sc *Scratch) pushBucket(it distItem, width float64) {
	bi := int(it.dist / width)
	if bi >= maxBuckets {
		bi = maxBuckets - 1
	}
	for bi >= len(sc.buckets) {
		sc.buckets = append(sc.buckets, nil)
	}
	sc.buckets[bi] = append(sc.buckets[bi], it)
	if bi+1 > sc.hi {
		sc.hi = bi + 1
	}
	sc.queued++
}

// settleHeapScratch mirrors settle but on a typed heap owned by the
// Scratch, avoiding container/heap's interface boxing.
func (g *Graph) settleHeapScratch(t *ShortestPathTree, sc *Scratch, skip []bool) {
	sc.heap = heapPushItem(sc.heap, distItem{node: t.Source, dist: 0, hops: 0})
	for len(sc.heap) > 0 {
		var it distItem
		sc.heap, it = heapPopItem(sc.heap)
		u := it.node
		if sc.done[u] {
			continue
		}
		sc.done[u] = true
		for _, idx := range g.adj[u] {
			if skip != nil && skip[idx] {
				continue
			}
			e := g.edges[idx]
			v := e.Other(u)
			if sc.done[v] {
				continue
			}
			nd := t.Dist[u] + e.W
			nh := t.Hops[u] + 1
			if better(nd, nh, u, e.ID, t.Dist[v], t.Hops[v], t.prev(v), t.prevID(v)) {
				t.Dist[v] = nd
				t.Hops[v] = nh
				t.prevEdge[v] = idx
				sc.heap = heapPushItem(sc.heap, distItem{node: v, dist: nd, hops: nh})
			}
		}
	}
}

func heapPushItem(h []distItem, it distItem) []distItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPopItem(h []distItem) ([]distItem, distItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && itemLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && itemLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return h, top
}
