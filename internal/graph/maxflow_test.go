package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxFlowSimple(t *testing.T) {
	// Classic diamond: s=0, t=3.
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 3)
	f.AddArc(0, 2, 2)
	f.AddArc(1, 3, 2)
	f.AddArc(2, 3, 3)
	f.AddArc(1, 2, 1)
	if got := f.MaxFlow(0, 3); got != 5 {
		t.Errorf("MaxFlow = %v, want 5", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 10)
	if got := f.MaxFlow(0, 3); got != 0 {
		t.Errorf("MaxFlow = %v, want 0", got)
	}
}

func TestMaxFlowSourceIsSink(t *testing.T) {
	f := NewFlowNetwork(2)
	f.AddArc(0, 1, 10)
	if got := f.MaxFlow(0, 0); got != 0 {
		t.Errorf("MaxFlow(s,s) = %v, want 0", got)
	}
}

func TestMaxFlowInfiniteArc(t *testing.T) {
	f := NewFlowNetwork(3)
	f.AddArc(0, 1, math.Inf(1))
	f.AddArc(1, 2, 7)
	if got := f.MaxFlow(0, 2); got != 7 {
		t.Errorf("MaxFlow = %v, want 7", got)
	}
}

func TestFlowPerArc(t *testing.T) {
	f := NewFlowNetwork(3)
	a := f.AddArc(0, 1, 4)
	b := f.AddArc(0, 1, 3)
	c := f.AddArc(1, 2, 5)
	total := f.MaxFlow(0, 2)
	if total != 5 {
		t.Fatalf("MaxFlow = %v, want 5", total)
	}
	if got := f.Flow(a) + f.Flow(b); math.Abs(got-5) > 1e-9 {
		t.Errorf("flow into node 1 = %v, want 5", got)
	}
	if got := f.Flow(c); math.Abs(got-5) > 1e-9 {
		t.Errorf("flow on bottleneck = %v, want 5", got)
	}
}

func TestAddArcValidation(t *testing.T) {
	f := NewFlowNetwork(2)
	for name, fn := range map[string]func(){
		"node out of range": func() { f.AddArc(0, 2, 1) },
		"negative capacity": func() { f.AddArc(0, 1, -1) },
		"NaN capacity":      func() { f.AddArc(0, 1, math.NaN()) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// bruteMinCut computes the minimum s-t cut by enumerating all node subsets.
// Usable only for small n; serves as the max-flow = min-cut oracle.
func bruteMinCut(n int, arcs [][3]float64, s, t int) float64 {
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<s) == 0 || mask&(1<<t) != 0 {
			continue
		}
		var cut float64
		for _, a := range arcs {
			u, v, c := int(a[0]), int(a[1]), a[2]
			if mask&(1<<u) != 0 && mask&(1<<v) == 0 {
				cut += c
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

func TestMaxFlowEqualsMinCutRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6)
		m := rng.Intn(2 * n * n)
		arcs := make([][3]float64, 0, m)
		f := NewFlowNetwork(n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := float64(rng.Intn(10))
			arcs = append(arcs, [3]float64{float64(u), float64(v), c})
			f.AddArc(u, v, c)
		}
		s, tt := 0, n-1
		flow := f.MaxFlow(s, tt)
		cut := bruteMinCut(n, arcs, s, tt)
		if math.Abs(flow-cut) > 1e-6 {
			t.Fatalf("trial %d: maxflow %v != mincut %v (n=%d, arcs=%v)", trial, flow, cut, n, arcs)
		}
	}
}

func TestMinCutReachable(t *testing.T) {
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 10)
	f.AddArc(1, 2, 1) // bottleneck
	f.AddArc(2, 3, 10)
	f.MaxFlow(0, 3)
	seen := f.MinCutReachable(0)
	want := []bool{true, true, false, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("reachable[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestMaxFlowConservation(t *testing.T) {
	// On random networks, verify conservation at internal nodes by
	// recomputing per-arc flows.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(8)
		f := NewFlowNetwork(n)
		type arcRec struct {
			idx, u, v int
		}
		var recs []arcRec
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			idx := f.AddArc(u, v, float64(rng.Intn(20)))
			recs = append(recs, arcRec{idx, u, v})
		}
		total := f.MaxFlow(0, n-1)
		net := make([]float64, n)
		for _, r := range recs {
			fl := f.Flow(r.idx)
			if fl < -1e-9 {
				t.Fatalf("negative flow %v", fl)
			}
			net[r.u] -= fl
			net[r.v] += fl
		}
		for v := 1; v < n-1; v++ {
			if math.Abs(net[v]) > 1e-6 {
				t.Fatalf("trial %d: conservation violated at node %d: %v", trial, v, net[v])
			}
		}
		if math.Abs(net[n-1]-total) > 1e-6 || math.Abs(net[0]+total) > 1e-6 {
			t.Fatalf("trial %d: endpoint imbalance: src %v sink %v total %v", trial, net[0], net[n-1], total)
		}
	}
}

// TestFlowNetworkReset covers the footgun MaxFlow documents: a second run
// on a consumed network continues from the residual, while Reset restores
// the as-built capacities so reruns are independent.
func TestFlowNetworkReset(t *testing.T) {
	f := NewFlowNetwork(4)
	a := f.AddArc(0, 1, 10)
	f.AddArc(1, 2, 1) // bottleneck
	f.AddArc(2, 3, 10)
	if got := f.MaxFlow(0, 3); got != 1 {
		t.Fatalf("first MaxFlow = %v, want 1", got)
	}
	// Without Reset the bottleneck is spent.
	if got := f.MaxFlow(0, 3); got != 0 {
		t.Fatalf("MaxFlow on consumed network = %v, want 0", got)
	}
	f.Reset()
	if got := f.Flow(a); got != 0 {
		t.Fatalf("Flow after Reset = %v, want 0", got)
	}
	if got := f.MaxFlow(0, 3); got != 1 {
		t.Fatalf("MaxFlow after Reset = %v, want 1", got)
	}
	// Different terminals on the same network, again after Reset.
	f.Reset()
	if got := f.MaxFlow(1, 3); got != 1 {
		t.Fatalf("MaxFlow(1,3) after Reset = %v, want 1", got)
	}
}

// TestResetMatchesRebuild checks on random networks that Reset+MaxFlow is
// equivalent to rebuilding the network from scratch.
func TestResetMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8)
		type arcSpec struct {
			u, v int
			c    float64
		}
		var specs []arcSpec
		f := NewFlowNetwork(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := float64(rng.Intn(20))
			specs = append(specs, arcSpec{u, v, c})
			f.AddArc(u, v, c)
		}
		f.MaxFlow(0, n-1) // consume
		f.Reset()
		got := f.MaxFlow(n-1, 0)

		fresh := NewFlowNetwork(n)
		for _, s := range specs {
			fresh.AddArc(s.u, s.v, s.c)
		}
		want := fresh.MaxFlow(n-1, 0)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: reset maxflow %v, rebuilt %v", trial, got, want)
		}
	}
}
