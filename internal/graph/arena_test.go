package graph

import (
	"math/rand"
	"testing"
)

// treesEqual asserts two shortest-path trees agree bit-for-bit on every
// label and on every reconstructed path.
func treesEqual(t *testing.T, want, got *ShortestPathTree, n int) {
	t.Helper()
	if want.Source != got.Source {
		t.Fatalf("source %d != %d", got.Source, want.Source)
	}
	for v := 0; v < n; v++ {
		if want.Dist[v] != got.Dist[v] {
			t.Fatalf("node %d: dist %v != %v", v, got.Dist[v], want.Dist[v])
		}
		if want.Hops[v] != got.Hops[v] {
			t.Fatalf("node %d: hops %v != %v", v, got.Hops[v], want.Hops[v])
		}
		wn, we, wok := want.PathTo(v)
		gn, ge, gok := got.PathTo(v)
		if wok != gok || len(wn) != len(gn) || len(we) != len(ge) {
			t.Fatalf("node %d: path shape mismatch", v)
		}
		for i := range wn {
			if wn[i] != gn[i] {
				t.Fatalf("node %d: path node %d: %d != %d", v, i, gn[i], wn[i])
			}
		}
		for i := range we {
			if we[i].ID != ge[i].ID {
				t.Fatalf("node %d: path edge %d: %d != %d", v, i, ge[i].ID, we[i].ID)
			}
		}
	}
}

// The arena Dijkstra must reproduce the memoised one exactly: same
// graph filtered by a skip mask versus a WithoutEdges-derived clone,
// across random multigraphs, sources and removed-edge sets, with the
// tree and scratch reused (dirty) between trials.
func TestDijkstraIntoMatchesWithoutEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tree ShortestPathTree
	var sc Scratch
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(14)
		m := rng.Intn(4 * n)
		g := randomGraph(rng, n, m)

		removed := make(map[int]bool)
		skip := make([]bool, g.NumEdges())
		for _, e := range g.Edges() {
			if rng.Intn(4) == 0 {
				removed[e.ID] = true
				idx, ok := g.EdgeIndex(e.ID)
				if !ok {
					t.Fatalf("edge %d has no index", e.ID)
				}
				skip[idx] = true
			}
		}
		source := rng.Intn(n)
		want := g.WithoutEdges(removed).Dijkstra(source)
		got := g.DijkstraInto(source, skip, &tree, &sc)
		treesEqual(t, want, got, n)
	}
}

// Bucket-queue and binary-heap settling must pop in the same order and
// therefore produce identical trees.
func TestDijkstraBucketsMatchHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var bt, ht ShortestPathTree
	var bs, hs Scratch
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(14)
		m := rng.Intn(4 * n)
		g := randomGraph(rng, n, m)
		source := rng.Intn(n)
		got := g.DijkstraInto(source, nil, &bt, &bs)
		want := g.dijkstraHeapInto(source, nil, &ht, &hs)
		treesEqual(t, want, got, n)
	}
}

// A pathological weight spread forces everything into the clamped
// overflow bucket; results must still be exact.
func TestDijkstraBucketsOverflowExact(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 0, 1, 1e-6)
	g.AddEdge(1, 1, 2, 1e6)
	g.AddEdge(2, 2, 3, 1e-6)
	g.AddEdge(3, 3, 4, 1e6)
	g.AddEdge(4, 0, 5, 2e6)
	g.AddEdge(5, 5, 4, 1e-6)
	var bt, ht ShortestPathTree
	var bs, hs Scratch
	got := g.DijkstraInto(0, nil, &bt, &bs)
	want := g.dijkstraHeapInto(0, nil, &ht, &hs)
	treesEqual(t, want, got, 6)
}

func TestAppendPathToMatchesPathTo(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	var nodes []int
	var edges []Edge
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		g := randomGraph(rng, n, 3*n)
		tr := g.Dijkstra(rng.Intn(n))
		for v := 0; v < n; v++ {
			wn, we, wok := tr.PathTo(v)
			nodes, edges = nodes[:0], edges[:0]
			gn, ge, gok := tr.AppendPathTo(v, nodes, edges)
			if wok != gok {
				t.Fatalf("ok mismatch at %d", v)
			}
			if len(gn) != len(wn) || len(ge) != len(we) {
				t.Fatalf("length mismatch at %d", v)
			}
			for i := range wn {
				if gn[i] != wn[i] {
					t.Fatalf("node mismatch at %d[%d]", v, i)
				}
			}
			for i := range we {
				if ge[i].ID != we[i].ID {
					t.Fatalf("edge mismatch at %d[%d]", v, i)
				}
			}
		}
	}
}

// A warmed DijkstraInto run must not allocate.
func TestDijkstraIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	g := randomGraph(rng, 60, 200)
	skip := make([]bool, g.NumEdges())
	skip[7] = true
	var tree ShortestPathTree
	var sc Scratch
	g.DijkstraInto(0, skip, &tree, &sc)
	avg := testing.AllocsPerRun(20, func() {
		g.DijkstraInto(3, skip, &tree, &sc)
	})
	if avg != 0 {
		t.Fatalf("warmed DijkstraInto allocated %v per run, want 0", avg)
	}
}

func benchGraph() *Graph {
	rng := rand.New(rand.NewSource(9))
	return randomGraph(rng, 400, 1600)
}

// The bucket-vs-heap pair quantifies the queue choice for the
// BENCH_<sha>.json artifact set; DijkstraInto's default is the bucket
// queue whenever the width heuristic holds.
func BenchmarkDijkstraArenaBuckets(b *testing.B) {
	g := benchGraph()
	var tree ShortestPathTree
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DijkstraInto(i%g.NumNodes(), nil, &tree, &sc)
	}
}

func BenchmarkDijkstraArenaHeap(b *testing.B) {
	g := benchGraph()
	var tree ShortestPathTree
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.dijkstraHeapInto(i%g.NumNodes(), nil, &tree, &sc)
	}
}
