package graph

import "sort"

// Path is one loopless route between two nodes: the node sequence, the
// edges walked (parallel edges are distinguished by ID), and the total
// weight.
type Path struct {
	Nodes []int
	Edges []Edge
	Dist  float64
}

// samePath reports whether two paths walk the same edge sequence.
func samePath(a, b Path) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i].ID != b.Edges[i].ID {
			return false
		}
	}
	return true
}

// lessPath orders candidate paths deterministically: by distance (within
// the Dijkstra epsilon), then by hop count, then lexicographically by
// node sequence, then by edge-ID sequence — the same spirit as the
// deterministic tie-breaking inside Dijkstra itself.
func lessPath(a, b Path) bool {
	const eps = 1e-9
	switch {
	case a.Dist < b.Dist-eps:
		return true
	case a.Dist > b.Dist+eps:
		return false
	}
	if len(a.Edges) != len(b.Edges) {
		return len(a.Edges) < len(b.Edges)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return a.Nodes[i] < b.Nodes[i]
		}
	}
	for i := range a.Edges {
		if a.Edges[i].ID != b.Edges[i].ID {
			return a.Edges[i].ID < b.Edges[i].ID
		}
	}
	return false
}

// KShortestPaths returns up to k loopless shortest paths from one node to
// another, best first, using Yen's algorithm over the graph's
// deterministic Dijkstra. Fewer than k paths are returned when the graph
// does not admit them. Results are fully deterministic: ties between
// equal-length paths are broken by hop count, then node sequence, then
// edge IDs.
//
// Each spur step materialises a derived graph via WithoutEdges, so the
// cost is O(k · n · Dijkstra) — fine for region-scale fiber maps, which
// have tens of ducts.
func (g *Graph) KShortestPaths(from, to, k int) []Path {
	if k <= 0 || from < 0 || from >= g.n || to < 0 || to >= g.n {
		return nil
	}
	t := g.Dijkstra(from)
	nodes, edges, ok := t.PathTo(to)
	if !ok {
		return nil
	}
	if from == to {
		return []Path{{Nodes: []int{from}, Dist: 0}}
	}
	paths := []Path{{Nodes: nodes, Edges: edges, Dist: t.Dist[to]}}
	var candidates []Path

	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spur := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootEdges := prev.Edges[:i]

			removed := make(map[int]bool)
			// Any accepted path sharing the root prefix must not be
			// rediscovered: remove the edge each one takes out of the spur.
			for _, p := range paths {
				if len(p.Edges) <= i {
					continue
				}
				match := true
				for j := 0; j <= i; j++ {
					if p.Nodes[j] != rootNodes[j] {
						match = false
						break
					}
				}
				if match {
					removed[p.Edges[i].ID] = true
				}
			}
			// Looplessness: the spur path must not revisit a root node, so
			// every edge incident to the root prefix (spur excluded) goes.
			for _, n := range rootNodes[:len(rootNodes)-1] {
				g.Neighbors(n, func(e Edge) { removed[e.ID] = true })
			}

			st := g.WithoutEdges(removed).Dijkstra(spur)
			sn, se, ok := st.PathTo(to)
			if !ok {
				continue
			}
			cand := Path{
				Nodes: append(append(make([]int, 0, len(rootNodes)+len(sn)-1), rootNodes...), sn[1:]...),
				Edges: append(append(make([]Edge, 0, len(rootEdges)+len(se)), rootEdges...), se...),
			}
			for _, e := range cand.Edges {
				cand.Dist += e.W
			}
			dup := false
			for _, p := range paths {
				if samePath(p, cand) {
					dup = true
					break
				}
			}
			for _, p := range candidates {
				if dup {
					break
				}
				if samePath(p, cand) {
					dup = true
				}
			}
			if !dup {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if lessPath(candidates[i], candidates[best]) {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

// Bridges returns the IDs of the bridge edges — edges whose removal
// disconnects their component — sorted ascending. The graph is a
// multigraph: a parallel edge between the same endpoints means neither
// copy is a bridge, which the one-pass Tarjan lowlink walk below handles
// by skipping only the specific edge instance used to enter a node (not
// every edge back to the parent). Self-loops are never bridges.
func (g *Graph) Bridges() []int {
	disc := make([]int, g.n)
	low := make([]int, g.n)
	for i := range disc {
		disc[i] = -1
	}
	var bridges []int
	timer := 0
	type frame struct {
		node      int
		parentIdx int // index into g.edges of the edge used to enter node
		next      int // next position in g.adj[node] to scan
	}
	for s := 0; s < g.n; s++ {
		if disc[s] != -1 {
			continue
		}
		disc[s], low[s] = timer, timer
		timer++
		stack := []frame{{node: s, parentIdx: -1}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if f.next < len(g.adj[u]) {
				idx := g.adj[u][f.next]
				f.next++
				if idx == f.parentIdx {
					continue
				}
				v := g.edges[idx].Other(u)
				if disc[v] == -1 {
					disc[v], low[v] = timer, timer
					timer++
					stack = append(stack, frame{node: v, parentIdx: idx})
				} else if disc[v] < low[u] {
					low[u] = disc[v]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := stack[len(stack)-1].node
			if low[u] < low[p] {
				low[p] = low[u]
			}
			if low[u] > disc[p] {
				bridges = append(bridges, g.edges[f.parentIdx].ID)
			}
		}
	}
	sort.Ints(bridges)
	return bridges
}
