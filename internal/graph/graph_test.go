package graph

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0, 1, 5)
	for name, fn := range map[string]func(){
		"out of range":     func() { g.AddEdge(1, 0, 3, 1) },
		"negative weight":  func() { g.AddEdge(1, 0, 1, -1) },
		"NaN weight":       func() { g.AddEdge(1, 0, 1, math.NaN()) },
		"duplicate edgeID": func() { g.AddEdge(0, 1, 2, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{ID: 7, U: 2, V: 5}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-endpoint")
		}
	}()
	e.Other(3)
}

func TestEdgeByID(t *testing.T) {
	g := New(3)
	g.AddEdge(10, 0, 1, 2)
	g.AddEdge(20, 1, 2, 3)
	e, ok := g.EdgeByID(20)
	if !ok || e.U != 1 || e.V != 2 || e.W != 3 {
		t.Fatalf("EdgeByID(20) = %+v, %v", e, ok)
	}
	if _, ok := g.EdgeByID(99); ok {
		t.Fatal("EdgeByID(99) should not exist")
	}
}

func TestNeighbors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 0, 1, 1)
	g.AddEdge(1, 0, 2, 1)
	g.AddEdge(2, 1, 2, 1)
	var ids []int
	g.Neighbors(0, func(e Edge) { ids = append(ids, e.ID) })
	if !reflect.DeepEqual(ids, []int{0, 1}) {
		t.Fatalf("Neighbors(0) edge IDs = %v", ids)
	}
}

// lineGraph returns 0-1-2-...-n-1 with unit weights and edge IDs = left node.
func lineGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i, i+1, 1)
	}
	return g
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(5)
	tr := g.Dijkstra(0)
	for v := 0; v < 5; v++ {
		if tr.Dist[v] != float64(v) {
			t.Errorf("Dist[%d] = %v, want %d", v, tr.Dist[v], v)
		}
	}
	nodes, edges, ok := tr.PathTo(4)
	if !ok {
		t.Fatal("PathTo(4) not ok")
	}
	if !reflect.DeepEqual(nodes, []int{0, 1, 2, 3, 4}) {
		t.Errorf("nodes = %v", nodes)
	}
	if len(edges) != 4 {
		t.Errorf("edges = %v", edges)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0, 1, 1)
	tr := g.Dijkstra(0)
	if !math.IsInf(tr.Dist[2], 1) {
		t.Errorf("Dist[2] = %v, want +Inf", tr.Dist[2])
	}
	if _, _, ok := tr.PathTo(2); ok {
		t.Error("PathTo(2) should report unreachable")
	}
}

func TestDijkstraPrefersFewerHopsOnTies(t *testing.T) {
	// Two paths 0→3 of equal length 2: direct edge (1 hop) and via node 1
	// (2 hops). The deterministic tie-break must choose the direct edge.
	g := New(4)
	g.AddEdge(0, 0, 1, 1)
	g.AddEdge(1, 1, 3, 1)
	g.AddEdge(2, 0, 3, 2)
	tr := g.Dijkstra(0)
	nodes, _, _ := tr.PathTo(3)
	if !reflect.DeepEqual(nodes, []int{0, 3}) {
		t.Errorf("path = %v, want direct [0 3]", nodes)
	}
	if tr.Hops[3] != 1 {
		t.Errorf("Hops[3] = %d, want 1", tr.Hops[3])
	}
}

func TestDijkstraDeterministicAcrossInsertionOrders(t *testing.T) {
	// Same graph, edges inserted in different orders, must give identical
	// paths (tie-break is on IDs and node numbers, not insertion order).
	build := func(order []int) *Graph {
		g := New(4)
		type spec struct{ id, u, v int }
		specs := []spec{{0, 0, 1}, {1, 0, 2}, {2, 1, 3}, {3, 2, 3}}
		for _, i := range order {
			s := specs[i]
			g.AddEdge(s.id, s.u, s.v, 1)
		}
		return g
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	pa, _, _ := a.Dijkstra(0).PathTo(3)
	pb, _, _ := b.Dijkstra(0).PathTo(3)
	if !reflect.DeepEqual(pa, pb) {
		t.Errorf("paths differ across insertion orders: %v vs %v", pa, pb)
	}
	// And the canonical choice is via node 1 (smaller predecessor).
	if !reflect.DeepEqual(pa, []int{0, 1, 3}) {
		t.Errorf("canonical path = %v, want [0 1 3]", pa)
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := New(n)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		g.AddEdge(i, u, v, 1+rng.Float64()*99)
	}
	return g
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		m := rng.Intn(3 * n)
		g := randomGraph(rng, n, m)
		src := rng.Intn(n)
		d1 := g.Dijkstra(src).Dist
		d2 := g.BellmanFord(src)
		for v := range d1 {
			a, b := d1[v], d2[v]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("trial %d: reachability mismatch at node %d: %v vs %v", trial, v, a, b)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-6 {
				t.Fatalf("trial %d: distance mismatch at node %d: %v vs %v", trial, v, a, b)
			}
		}
	}
}

func TestPathDistancesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(rng, 10, 20)
		tr := g.Dijkstra(0)
		for v := 0; v < 10; v++ {
			nodes, edges, ok := tr.PathTo(v)
			if !ok {
				continue
			}
			var sum float64
			for _, e := range edges {
				sum += e.W
			}
			if math.Abs(sum-tr.Dist[v]) > 1e-9 {
				t.Fatalf("path weight %v != Dist %v", sum, tr.Dist[v])
			}
			if len(nodes) != len(edges)+1 {
				t.Fatalf("nodes/edges length mismatch: %d vs %d", len(nodes), len(edges))
			}
			if nodes[0] != 0 || nodes[len(nodes)-1] != v {
				t.Fatalf("path endpoints wrong: %v", nodes)
			}
		}
	}
}

func TestWithoutEdges(t *testing.T) {
	g := lineGraph(4)
	h := g.WithoutEdges(map[int]bool{1: true})
	if h.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", h.NumEdges())
	}
	if h.Connected(0, 3) {
		t.Error("0 and 3 should be disconnected after removing edge 1")
	}
	if !h.Connected(0, 1) || !h.Connected(2, 3) {
		t.Error("remaining segments should stay connected")
	}
	// Original graph untouched.
	if g.NumEdges() != 3 || !g.Connected(0, 3) {
		t.Error("WithoutEdges mutated the original graph")
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 0, 1, 1)
	g.AddEdge(1, 2, 3, 1)
	labels := g.Components()
	want := []int{0, 0, 1, 1, 2}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("Components = %v, want %v", labels, want)
	}
}

func TestFailureScenarios(t *testing.T) {
	ids := []int{3, 1, 2}
	var got [][]int
	FailureScenarios(ids, 2, func(cut map[int]bool) {
		var s []int
		for _, id := range []int{1, 2, 3} {
			if cut[id] {
				s = append(s, id)
			}
		}
		got = append(got, s)
	})
	want := [][]int{
		nil,
		{1}, {1, 2}, {1, 3},
		{2}, {2, 3},
		{3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scenarios = %v, want %v", got, want)
	}
	if n := CountFailureScenarios(3, 2); n != len(want) {
		t.Errorf("CountFailureScenarios(3,2) = %d, want %d", n, len(want))
	}
}

func TestCountFailureScenarios(t *testing.T) {
	tests := []struct{ m, k, want int }{
		{0, 0, 1},
		{5, 0, 1},
		{5, 1, 6},
		{5, 2, 16},
		{10, 2, 56},
		{3, 5, 8}, // tolerance larger than edge count: all subsets
	}
	for _, tt := range tests {
		if got := CountFailureScenarios(tt.m, tt.k); got != tt.want {
			t.Errorf("CountFailureScenarios(%d,%d) = %d, want %d", tt.m, tt.k, got, tt.want)
		}
	}
}

func TestFailureScenariosMatchesCount(t *testing.T) {
	ids := []int{10, 20, 30, 40, 50, 60}
	for k := 0; k <= 3; k++ {
		n := 0
		FailureScenarios(ids, k, func(map[int]bool) { n++ })
		if want := CountFailureScenarios(len(ids), k); n != want {
			t.Errorf("k=%d: enumerated %d scenarios, want %d", k, n, want)
		}
	}
}

func TestDijkstraMemoisedAndInvalidated(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 0, 1, 1)
	g.AddEdge(1, 1, 2, 1)
	g.AddEdge(2, 2, 3, 1)

	t1 := g.Dijkstra(0)
	if t2 := g.Dijkstra(0); t2 != t1 {
		t.Error("repeated Dijkstra from one source should return the memoised tree")
	}
	if t1.Dist[3] != 3 {
		t.Fatalf("Dist[3] = %v, want 3", t1.Dist[3])
	}

	// Mutation must invalidate the memo: the shortcut changes the answer.
	g.AddEdge(3, 0, 3, 1)
	t3 := g.Dijkstra(0)
	if t3 == t1 {
		t.Error("AddEdge did not invalidate the shortest-path memo")
	}
	if t3.Dist[3] != 1 {
		t.Errorf("Dist[3] after shortcut = %v, want 1", t3.Dist[3])
	}
}

func TestDijkstraConcurrentSharedGraph(t *testing.T) {
	g := New(50)
	id := 0
	for i := 0; i < 49; i++ {
		g.AddEdge(id, i, i+1, float64(1+i%3))
		id++
	}
	for i := 0; i < 40; i += 5 {
		g.AddEdge(id, i, i+7, 2.5)
		id++
	}

	want := g.dijkstra(0).Dist // uncached oracle
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < 10; s++ {
				tr := g.Dijkstra(s % 3)
				if s%3 == 0 {
					for v, d := range tr.Dist {
						if d != want[v] {
							t.Errorf("concurrent Dijkstra: Dist[%d] = %v, want %v", v, d, want[v])
							return
						}
					}
				}
				if _, _, ok := tr.PathTo(49); !ok {
					t.Error("PathTo(49) unreachable on a connected graph")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDistancesFromSeedsMatchesVirtualSource checks the exact-equivalence
// contract of DistancesFromSeeds: seeding nodes h with weights w must
// reproduce, bit for bit, the distances Dijkstra reports from an extra
// source node attached to each h by an edge of length w.
func TestDistancesFromSeedsMatchesVirtualSource(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(12)
		g := New(n)
		ext := New(n + 1) // same graph plus the virtual source at node n
		id := 0
		for i := 1; i < n; i++ { // random connected multigraph
			j := rng.Intn(i)
			w := 1 + 10*rng.Float64()
			g.AddEdge(id, i, j, w)
			ext.AddEdge(id, i, j, w)
			id++
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := 1 + 10*rng.Float64()
			g.AddEdge(id, u, v, w)
			ext.AddEdge(id, u, v, w)
			id++
		}

		h1 := rng.Intn(n)
		h2 := (h1 + 1 + rng.Intn(n-1)) % n
		w1, w2 := 5*rng.Float64(), 5*rng.Float64()
		ext.AddEdge(id, n, h1, w1)
		ext.AddEdge(id+1, n, h2, w2)

		want := ext.Dijkstra(n).Dist[:n]
		got := g.DistancesFromSeeds([]Seed{{Node: h1, Dist: w1}, {Node: h2, Dist: w2}})
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("trial %d: dist[%d] = %v, virtual-source Dijkstra gives %v", trial, v, got[v], want[v])
			}
		}
	}
}

// TestWithoutEdgesMatchesRebuild pins the direct-construction fast path to
// the semantics of an AddEdge rebuild on random multigraphs: identical
// edges, adjacency-driven traversal, ID lookup, and Dijkstra trees, and the
// derived copy must remain fully usable (memoisation, further mutation).
func TestWithoutEdgesMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		g := New(n)
		m := rng.Intn(25)
		for id := 0; id < m; id++ {
			g.AddEdge(id, rng.Intn(n), rng.Intn(n), float64(rng.Intn(30)))
		}
		removed := make(map[int]bool)
		for id := 0; id < m; id++ {
			if rng.Intn(3) == 0 {
				removed[id] = true
			}
		}

		got := g.WithoutEdges(removed)
		want := New(n)
		for _, e := range g.Edges() {
			if !removed[e.ID] {
				want.AddEdge(e.ID, e.U, e.V, e.W)
			}
		}

		if len(got.Edges()) != len(want.Edges()) {
			t.Fatalf("trial %d: %d edges, want %d", trial, len(got.Edges()), len(want.Edges()))
		}
		for i, e := range want.Edges() {
			if got.Edges()[i] != e {
				t.Fatalf("trial %d: edge[%d] = %v, want %v", trial, i, got.Edges()[i], e)
			}
		}
		for _, e := range want.Edges() {
			ge, ok := got.EdgeByID(e.ID)
			if !ok || ge != e {
				t.Fatalf("trial %d: EdgeByID(%d) = %v,%v, want %v", trial, e.ID, ge, ok, e)
			}
		}
		if _, ok := got.EdgeByID(-1); ok {
			t.Fatalf("trial %d: EdgeByID(-1) found an edge", trial)
		}
		for v := 0; v < n; v++ {
			var gotAdj, wantAdj []Edge
			got.Neighbors(v, func(e Edge) { gotAdj = append(gotAdj, e) })
			want.Neighbors(v, func(e Edge) { wantAdj = append(wantAdj, e) })
			if !reflect.DeepEqual(gotAdj, wantAdj) {
				t.Fatalf("trial %d: Neighbors(%d) = %v, want %v", trial, v, gotAdj, wantAdj)
			}
		}
		for s := 0; s < n; s++ {
			gt, wt := got.Dijkstra(s), want.Dijkstra(s)
			if !reflect.DeepEqual(gt.Dist, wt.Dist) || !reflect.DeepEqual(gt.Hops, wt.Hops) {
				t.Fatalf("trial %d: Dijkstra(%d) differs", trial, s)
			}
			if got.Dijkstra(s) != gt {
				t.Fatalf("trial %d: derived graph does not memoise Dijkstra trees", trial)
			}
		}
		// The copy must accept further mutation like any other graph.
		got.AddEdge(m, 0, n-1, 1)
		if _, ok := got.EdgeByID(m); !ok {
			t.Fatalf("trial %d: AddEdge on derived graph lost the edge", trial)
		}
	}
}

func BenchmarkWithoutEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New(64)
	for id := 0; id < 256; id++ {
		g.AddEdge(id, rng.Intn(64), rng.Intn(64), rng.Float64()*40)
	}
	removed := map[int]bool{3: true, 99: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.WithoutEdges(removed)
	}
}
