package graph

import (
	"reflect"
	"testing"
)

// diamond builds the classic Yen test graph:
//
//	0 --1-- 1 --1-- 3
//	 \       |     /
//	  2      1    2
//	   \     |   /
//	    `--- 2 -'
//
// Edges: 0:(0-1,1) 1:(1-3,1) 2:(0-2,2) 3:(1-2,1) 4:(2-3,2)
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 0, 1, 1)
	g.AddEdge(1, 1, 3, 1)
	g.AddEdge(2, 0, 2, 2)
	g.AddEdge(3, 1, 2, 1)
	g.AddEdge(4, 2, 3, 2)
	return g
}

func edgeIDs(p Path) []int {
	ids := make([]int, len(p.Edges))
	for i, e := range p.Edges {
		ids[i] = e.ID
	}
	return ids
}

func TestKShortestPathsDiamond(t *testing.T) {
	g := diamond()
	paths := g.KShortestPaths(0, 3, 10)
	if len(paths) != 4 {
		t.Fatalf("want 4 loopless paths, got %d: %v", len(paths), paths)
	}
	want := [][]int{
		{0, 1},    // 0-1-3, dist 2
		{2, 4},    // 0-2-3, dist 4, 2 hops
		{0, 3, 4}, // 0-1-2-3, dist 4, 3 hops, node seq beats 0-2-1-3
		{2, 3, 1}, // 0-2-1-3, dist 4, 3 hops
	}
	wantDist := []float64{2, 4, 4, 4}
	for i, p := range paths {
		if got := edgeIDs(p); !reflect.DeepEqual(got, want[i]) {
			t.Errorf("path %d: edges = %v, want %v", i, got, want[i])
		}
		if p.Dist != wantDist[i] {
			t.Errorf("path %d: dist = %v, want %v", i, p.Dist, wantDist[i])
		}
	}
	// Paths must be sorted best-first.
	for i := 1; i < len(paths); i++ {
		if paths[i].Dist < paths[i-1].Dist {
			t.Errorf("paths out of order at %d: %v after %v", i, paths[i].Dist, paths[i-1].Dist)
		}
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	g := diamond()
	for _, p := range g.KShortestPaths(0, 3, 10) {
		seen := map[int]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Errorf("path %v revisits node %d", p.Nodes, n)
			}
			seen[n] = true
		}
	}
}

func TestKShortestPathsTruncatesAtK(t *testing.T) {
	g := diamond()
	if got := len(g.KShortestPaths(0, 3, 2)); got != 2 {
		t.Fatalf("k=2: got %d paths", got)
	}
	if got := g.KShortestPaths(0, 3, 0); got != nil {
		t.Fatalf("k=0: got %v, want nil", got)
	}
}

func TestKShortestPathsParallelEdges(t *testing.T) {
	// Two parallel ducts between the same DCs are distinct paths.
	g := New(2)
	g.AddEdge(7, 0, 1, 5)
	g.AddEdge(9, 0, 1, 3)
	paths := g.KShortestPaths(0, 1, 5)
	if len(paths) != 2 {
		t.Fatalf("want 2 parallel-edge paths, got %d", len(paths))
	}
	if paths[0].Edges[0].ID != 9 || paths[1].Edges[0].ID != 7 {
		t.Errorf("got edge order %d,%d; want 9,7", paths[0].Edges[0].ID, paths[1].Edges[0].ID)
	}
}

func TestKShortestPathsUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0, 1, 1)
	if got := g.KShortestPaths(0, 2, 3); got != nil {
		t.Fatalf("unreachable: got %v, want nil", got)
	}
	if got := g.KShortestPaths(0, 9, 3); got != nil {
		t.Fatalf("out of range: got %v, want nil", got)
	}
}

func TestKShortestPathsSameNode(t *testing.T) {
	g := diamond()
	paths := g.KShortestPaths(2, 2, 3)
	if len(paths) != 1 || paths[0].Dist != 0 || len(paths[0].Edges) != 0 {
		t.Fatalf("self path: got %v", paths)
	}
}

func TestBridgesChain(t *testing.T) {
	// 0-1-2 chain: both edges are bridges.
	g := New(3)
	g.AddEdge(10, 0, 1, 1)
	g.AddEdge(20, 1, 2, 1)
	if got, want := g.Bridges(), []int{10, 20}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bridges = %v, want %v", got, want)
	}
}

func TestBridgesCycleHasNone(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0, 1, 1)
	g.AddEdge(1, 1, 2, 1)
	g.AddEdge(2, 2, 0, 1)
	if got := g.Bridges(); len(got) != 0 {
		t.Fatalf("cycle bridges = %v, want none", got)
	}
}

func TestBridgesParallelEdgesAreNotBridges(t *testing.T) {
	// Parallel ducts back each other up; a pendant edge off the pair is
	// still a bridge.
	g := New(3)
	g.AddEdge(0, 0, 1, 1)
	g.AddEdge(1, 0, 1, 1)
	g.AddEdge(2, 1, 2, 1)
	if got, want := g.Bridges(), []int{2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bridges = %v, want %v", got, want)
	}
}

func TestBridgesDisconnectedComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 0, 1, 1) // component A: bridge
	g.AddEdge(1, 2, 3, 1) // component B: triangle, no bridges
	g.AddEdge(2, 3, 4, 1)
	g.AddEdge(3, 4, 2, 1)
	if got, want := g.Bridges(), []int{0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bridges = %v, want %v", got, want)
	}
}

// TestBridgesAgainstBruteForce cross-checks the lowlink walk against the
// definition: remove each edge and count components.
func TestBridgesAgainstBruteForce(t *testing.T) {
	g := New(7)
	edges := [][3]int{{0, 0, 1}, {1, 1, 2}, {2, 2, 0}, {3, 2, 3}, {4, 3, 4}, {5, 4, 5}, {6, 5, 3}, {7, 5, 6}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1], e[2], 1)
	}
	components := func(h *Graph) int {
		max := -1
		for _, c := range h.Components() {
			if c > max {
				max = c
			}
		}
		return max + 1
	}
	base := components(g)
	var want []int
	for _, e := range edges {
		if components(g.WithoutEdges(map[int]bool{e[0]: true})) > base {
			want = append(want, e[0])
		}
	}
	if got := g.Bridges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("bridges = %v, brute force says %v", got, want)
	}
}
