// Package graph implements the graph algorithms the DCI planner is built
// on: weighted undirected multigraphs with stable edge identities, Dijkstra
// shortest paths with deterministic tie-breaking, connectivity queries,
// Dinic max-flow, and enumeration of edge-failure scenarios.
//
// Nodes are dense integer indices 0..N-1; callers keep their own mapping to
// domain objects (data centers, fiber huts). Edges carry caller-assigned IDs
// so that a "fiber duct" keeps its identity across derived graphs (e.g.
// failure scenarios that remove ducts).
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Edge is an undirected edge with a stable identity.
type Edge struct {
	ID   int     // caller-assigned, unique within a Graph
	U, V int     // endpoints
	W    float64 // weight (kilometres of fiber, for the planner)
}

// Other returns the endpoint of e that is not n. It panics if n is not an
// endpoint, which indicates a programming error.
func (e Edge) Other(n int) int {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d (%d-%d)", n, e.ID, e.U, e.V))
}

// Graph is a weighted undirected multigraph. The zero value is an empty
// graph with no nodes; use New to size it.
//
// Edge IDs index a dense array, so they should be small non-negative
// integers (the planner's duct IDs are); an ID of x costs O(x) index
// memory regardless of edge count.
//
// A Graph is safe for concurrent reads (including Dijkstra, whose
// memoised trees are published under an internal lock) once construction
// is complete; mutating it (AddEdge) concurrently with any other use is
// not.
type Graph struct {
	n     int
	edges []Edge
	byID  []int32 // edge ID -> index in edges, -1 when absent
	adj   [][]int // node -> indices into edges
	minW  float64 // smallest positive edge weight: the bucket quantum

	// sptMu guards spt, the per-source memo of Dijkstra trees. Mutation
	// (AddEdge) invalidates the whole memo.
	sptMu sync.Mutex
	spt   []*ShortestPathTree
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{
		n:   n,
		adj: make([][]int, n),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts an undirected edge. The edge ID must be unique and the
// weight non-negative; violations panic since they are programming errors.
func (g *Graph) AddEdge(id, u, v int, w float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge %d endpoints (%d,%d) out of range [0,%d)", id, u, v, g.n))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: edge %d has invalid weight %v", id, w))
	}
	if id < 0 {
		panic(fmt.Sprintf("graph: negative edge ID %d", id))
	}
	for id >= len(g.byID) {
		g.byID = append(g.byID, -1)
	}
	if g.byID[id] >= 0 {
		panic(fmt.Sprintf("graph: duplicate edge ID %d", id))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, W: w})
	g.byID[id] = int32(idx)
	if w > 0 && (g.minW == 0 || w < g.minW) {
		g.minW = w
	}
	g.adj[u] = append(g.adj[u], idx)
	if v != u {
		g.adj[v] = append(g.adj[v], idx)
	}
	// Mutation invalidates every memoised shortest-path tree.
	g.sptMu.Lock()
	g.spt = nil
	g.sptMu.Unlock()
}

// Edges returns all edges in insertion order. The slice is shared; callers
// must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeByID returns the edge with the given ID.
func (g *Graph) EdgeByID(id int) (Edge, bool) {
	idx, ok := g.EdgeIndex(id)
	if !ok {
		return Edge{}, false
	}
	return g.edges[idx], true
}

// EdgeIndex returns the position of edge id in Edges(). Indices are what
// the arena Dijkstra's skip filter is keyed by: they are dense, so a
// []bool can stand in for a set of removed ducts.
func (g *Graph) EdgeIndex(id int) (int, bool) {
	if id < 0 || id >= len(g.byID) || g.byID[id] < 0 {
		return 0, false
	}
	return int(g.byID[id]), true
}

// MaxEdgeID returns the largest edge ID present, or -1 for an edgeless
// graph. Callers sizing per-duct arenas use it as the slab bound.
func (g *Graph) MaxEdgeID() int { return len(g.byID) - 1 }

// Neighbors calls fn for every edge incident to node n.
func (g *Graph) Neighbors(n int, fn func(Edge)) {
	for _, idx := range g.adj[n] {
		fn(g.edges[idx])
	}
}

// WithoutEdges returns a copy of g with the edges whose IDs appear in the
// set removed. It is how failure scenarios are materialised, so it builds
// the copy directly rather than through AddEdge: the surviving edges are
// already validated and unique, and skipping the per-edge lock and memo
// invalidation keeps scenario fan-out (thousands of derived graphs) cheap.
func (g *Graph) WithoutEdges(removed map[int]bool) *Graph {
	h := &Graph{
		n:     g.n,
		edges: make([]Edge, 0, len(g.edges)),
		byID:  make([]int32, len(g.byID)),
		adj:   make([][]int, g.n),
	}
	for i := range h.byID {
		h.byID[i] = -1
	}
	for _, e := range g.edges {
		if removed[e.ID] {
			continue
		}
		idx := len(h.edges)
		h.edges = append(h.edges, e)
		h.byID[e.ID] = int32(idx)
		if e.W > 0 && (h.minW == 0 || e.W < h.minW) {
			h.minW = e.W
		}
		h.adj[e.U] = append(h.adj[e.U], idx)
		if e.V != e.U {
			h.adj[e.V] = append(h.adj[e.V], idx)
		}
	}
	return h
}

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

// ShortestPathTree is the result of a single-source Dijkstra run.
type ShortestPathTree struct {
	Source int
	Dist   []float64 // Dist[v] = distance from Source, Inf if unreachable
	Hops   []int     // number of edges on the chosen path
	// prevEdge[v] is the index (into g.edges) of the edge used to reach v,
	// or -1 for the source / unreachable nodes.
	prevEdge []int
	g        *Graph
}

// Dijkstra computes single-source shortest paths. Ties on distance are
// broken first by hop count, then by the smaller predecessor node, then by
// the smaller edge ID, so that path selection is fully deterministic and
// independent of heap ordering.
//
// Trees are memoised per source and invalidated when the graph mutates,
// so repeated calls from the same source — e.g. a planner re-routing the
// same DCs across a parameter sweep — pay for one run. The returned tree
// is shared: callers must treat it as read-only (PathTo and the other
// accessors only read). Concurrent Dijkstra calls on one graph are safe.
func (g *Graph) Dijkstra(source int) *ShortestPathTree {
	g.sptMu.Lock()
	if g.spt != nil && g.spt[source] != nil {
		t := g.spt[source]
		g.sptMu.Unlock()
		return t
	}
	g.sptMu.Unlock()

	t := g.dijkstra(source)

	g.sptMu.Lock()
	defer g.sptMu.Unlock()
	// Two goroutines may have raced to compute the same source; keep the
	// published tree so every caller shares one (identical) result.
	if g.spt == nil {
		g.spt = make([]*ShortestPathTree, g.n)
	}
	if prev := g.spt[source]; prev != nil {
		return prev
	}
	g.spt[source] = t
	return t
}

// dijkstra is the uncached single-source computation behind Dijkstra.
func (g *Graph) dijkstra(source int) *ShortestPathTree {
	t := newTree(g)
	t.Source = source
	t.Dist[source] = 0
	t.Hops[source] = 0
	pq := &distHeap{{node: source, dist: 0, hops: 0}}
	g.settle(t, pq)
	return t
}

func newTree(g *Graph) *ShortestPathTree {
	t := &ShortestPathTree{
		Source:   -1,
		Dist:     make([]float64, g.n),
		Hops:     make([]int, g.n),
		prevEdge: make([]int, g.n),
		g:        g,
	}
	for i := range t.Dist {
		t.Dist[i] = Inf
		t.Hops[i] = math.MaxInt
		t.prevEdge[i] = -1
	}
	return t
}

// Seed is a starting point for DistancesFromSeeds: a node together with
// the distance already accrued reaching it.
type Seed struct {
	Node int
	Dist float64
}

// DistancesFromSeeds computes, for every node v, the minimum over seeds
// of seed.Dist plus the shortest-path distance from seed.Node to v. It is
// exactly the distance vector Dijkstra would report from a virtual source
// attached to each seed node by an edge of the seed's length — the
// relaxation arithmetic and tie-breaking match, so results are bitwise
// identical — without materialising the extended graph. Results are not
// memoised: seed weights vary per call.
func (g *Graph) DistancesFromSeeds(seeds []Seed) []float64 {
	t := newTree(g)
	pq := &distHeap{}
	for _, s := range seeds {
		if better(s.Dist, 0, -1, -1, t.Dist[s.Node], t.Hops[s.Node], t.prev(s.Node), t.prevID(s.Node)) {
			t.Dist[s.Node] = s.Dist
			t.Hops[s.Node] = 0
			heap.Push(pq, distItem{node: s.Node, dist: s.Dist, hops: 0})
		}
	}
	g.settle(t, pq)
	return t.Dist
}

// settle runs the Dijkstra main loop over an initialised tree and heap.
func (g *Graph) settle(t *ShortestPathTree, pq *distHeap) {
	done := make([]bool, g.n)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, idx := range g.adj[u] {
			e := g.edges[idx]
			v := e.Other(u)
			if done[v] {
				continue
			}
			nd := t.Dist[u] + e.W
			nh := t.Hops[u] + 1
			if better(nd, nh, u, e.ID, t.Dist[v], t.Hops[v], t.prev(v), t.prevID(v)) {
				t.Dist[v] = nd
				t.Hops[v] = nh
				t.prevEdge[v] = idx
				heap.Push(pq, distItem{node: v, dist: nd, hops: nh})
			}
		}
	}
}

func (t *ShortestPathTree) prev(v int) int {
	if t.prevEdge[v] < 0 {
		return -1
	}
	return t.g.edges[t.prevEdge[v]].Other(v)
}

func (t *ShortestPathTree) prevID(v int) int {
	if t.prevEdge[v] < 0 {
		return -1
	}
	return t.g.edges[t.prevEdge[v]].ID
}

// better reports whether the candidate (dist, hops, prevNode, edgeID) is a
// strictly better label than the incumbent under the deterministic order.
func better(d float64, h, pn, eid int, od float64, oh, opn, oeid int) bool {
	const eps = 1e-9
	switch {
	case d < od-eps:
		return true
	case d > od+eps:
		return false
	case h != oh:
		return h < oh
	case pn != opn:
		return pn < opn
	default:
		return eid < oeid
	}
}

// PathTo returns the node sequence and edge sequence of the shortest path
// from the tree source to v. It returns ok=false if v is unreachable.
func (t *ShortestPathTree) PathTo(v int) (nodes []int, edges []Edge, ok bool) {
	if math.IsInf(t.Dist[v], 1) {
		return nil, nil, false
	}
	for v != t.Source {
		idx := t.prevEdge[v]
		e := t.g.edges[idx]
		edges = append(edges, e)
		nodes = append(nodes, v)
		v = e.Other(v)
	}
	nodes = append(nodes, t.Source)
	reverseInts(nodes)
	reverseEdges(edges)
	return nodes, edges, true
}

// AppendPathTo is PathTo into caller-owned buffers: the path's nodes and
// edges are appended to the given slices (source first) and the extended
// slices returned, so a warmed caller extracts paths without allocating.
// ok is false when v is unreachable, in which case the slices are
// returned unchanged.
func (t *ShortestPathTree) AppendPathTo(v int, nodes []int, edges []Edge) (_ []int, _ []Edge, ok bool) {
	if math.IsInf(t.Dist[v], 1) {
		return nodes, edges, false
	}
	n0, e0 := len(nodes), len(edges)
	for v != t.Source {
		idx := t.prevEdge[v]
		e := t.g.edges[idx]
		edges = append(edges, e)
		nodes = append(nodes, v)
		v = e.Other(v)
	}
	nodes = append(nodes, t.Source)
	reverseInts(nodes[n0:])
	reverseEdges(edges[e0:])
	return nodes, edges, true
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseEdges(s []Edge) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

type distItem struct {
	node int
	dist float64
	hops int
}

type distHeap []distItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	if h[i].hops != h[j].hops {
		return h[i].hops < h[j].hops
	}
	return h[i].node < h[j].node
}
func (h distHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)   { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// BellmanFord computes single-source shortest path distances in O(V·E).
// It exists as a cross-checking oracle for Dijkstra in tests and accepts the
// same non-negative weights.
func (g *Graph) BellmanFord(source int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[source] = 0
	for i := 0; i < g.n-1; i++ {
		changed := false
		for _, e := range g.edges {
			if dist[e.U]+e.W < dist[e.V] {
				dist[e.V] = dist[e.U] + e.W
				changed = true
			}
			if dist[e.V]+e.W < dist[e.U] {
				dist[e.U] = dist[e.V] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// Connected reports whether u and v are in the same component.
func (g *Graph) Connected(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, idx := range g.adj[n] {
			m := g.edges[idx].Other(n)
			if m == v {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// Components returns the component label of every node; labels are dense
// from 0 and assigned in order of the smallest node in each component.
func (g *Graph) Components() []int {
	label := make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	for s := 0; s < g.n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = next
		stack := []int{s}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, idx := range g.adj[n] {
				m := g.edges[idx].Other(n)
				if label[m] < 0 {
					label[m] = next
					stack = append(stack, m)
				}
			}
		}
		next++
	}
	return label
}

// FailureScenarios enumerates all subsets of the given edge IDs of size 0
// through maxCuts inclusive and calls fn with each subset (as a set). The
// subset map is reused across calls; fn must not retain it. Enumeration
// order is deterministic: the empty set first, then depth-first by sorted
// ID, so each subset is visited immediately after its longest prefix.
func FailureScenarios(ids []int, maxCuts int, fn func(cut map[int]bool)) {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	cut := make(map[int]bool, maxCuts)
	fn(cut) // the no-failure scenario

	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			return
		}
		for i := start; i < len(sorted); i++ {
			cut[sorted[i]] = true
			fn(cut)
			rec(i+1, remaining-1)
			delete(cut, sorted[i])
		}
	}
	if maxCuts > 0 {
		rec(0, maxCuts)
	}
}

// CountFailureScenarios returns the number of scenarios FailureScenarios
// will produce for m edges and the given cut tolerance: sum_{k=0..maxCuts}
// C(m,k).
func CountFailureScenarios(m, maxCuts int) int {
	total := 0
	for k := 0; k <= maxCuts && k <= m; k++ {
		total += binomial(m, k)
	}
	return total
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}
