package graph

import (
	"fmt"
	"math"
)

// FlowNetwork is a directed flow network for max-flow computations. It is
// separate from Graph because flow problems in the planner (hose-model
// provisioning) are built on derived directed graphs, not on the fiber map
// itself. The zero value is unusable; use NewFlowNetwork.
type FlowNetwork struct {
	n    int
	arcs []arc // forward/backward arcs interleaved: arc i's reverse is i^1
	head [][]int
	orig []float64 // as-built capacities, restored by Reset
}

type arc struct {
	to  int
	cap float64
}

// NewFlowNetwork returns a flow network with n nodes and no arcs.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{n: n, head: make([][]int, n)}
}

// NumNodes returns the number of nodes in the network.
func (f *FlowNetwork) NumNodes() int { return f.n }

// AddArc adds a directed arc from u to v with the given capacity and
// returns its index, usable with Flow after a MaxFlow run. Capacities must
// be non-negative; math.Inf(1) is allowed for unbounded arcs.
func (f *FlowNetwork) AddArc(u, v int, capacity float64) int {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range [0,%d)", u, v, f.n))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("graph: arc (%d,%d) has invalid capacity %v", u, v, capacity))
	}
	idx := len(f.arcs)
	f.arcs = append(f.arcs, arc{to: v, cap: capacity}, arc{to: u, cap: 0})
	f.orig = append(f.orig, capacity, 0)
	f.head[u] = append(f.head[u], idx)
	f.head[v] = append(f.head[v], idx+1)
	return idx
}

// Reset restores every arc to its as-built capacity, discarding the
// residual state left by MaxFlow. It lets callers run independent max-flow
// computations on one network (e.g. one per traffic pair in a survivability
// audit) without rebuilding it per run.
func (f *FlowNetwork) Reset() {
	for i := range f.arcs {
		f.arcs[i].cap = f.orig[i]
	}
}

// Flow returns the flow routed on the arc with the given index by the most
// recent MaxFlow call: the capacity consumed on the forward arc, i.e. the
// residual on its reverse.
func (f *FlowNetwork) Flow(arcIdx int) float64 {
	return f.arcs[arcIdx^1].cap
}

// MaxFlow computes the maximum s-t flow using Dinic's algorithm and returns
// its value. Capacities are consumed in place: calling MaxFlow twice on the
// same network continues from the previous residual state. Call Reset
// between runs for a fresh computation.
func (f *FlowNetwork) MaxFlow(s, t int) float64 {
	if s == t {
		return 0
	}
	const eps = 1e-12
	var total float64
	level := make([]int, f.n)
	iter := make([]int, f.n)
	queue := make([]int, 0, f.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, s)
		level[s] = 0
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ai := range f.head[u] {
				a := f.arcs[ai]
				if a.cap > eps && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, limit float64) float64
	dfs = func(u int, limit float64) float64 {
		if u == t {
			return limit
		}
		for ; iter[u] < len(f.head[u]); iter[u]++ {
			ai := f.head[u][iter[u]]
			a := &f.arcs[ai]
			if a.cap <= eps || level[a.to] != level[u]+1 {
				continue
			}
			pushed := dfs(a.to, math.Min(limit, a.cap))
			if pushed > eps {
				a.cap -= pushed
				f.arcs[ai^1].cap += pushed
				return pushed
			}
		}
		return 0
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(s, math.Inf(1))
			if pushed <= eps {
				break
			}
			total += pushed
		}
	}
	return total
}

// MinCutReachable returns, after a MaxFlow(s,t) run, the set of nodes
// reachable from s in the residual network. The arcs crossing from the set
// to its complement form a minimum cut.
func (f *FlowNetwork) MinCutReachable(s int) []bool {
	const eps = 1e-12
	seen := make([]bool, f.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range f.head[u] {
			a := f.arcs[ai]
			if a.cap > eps && !seen[a.to] {
				seen[a.to] = true
				stack = append(stack, a.to)
			}
		}
	}
	return seen
}
