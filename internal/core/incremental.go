package core

import (
	"fmt"
	"math"
	"sort"

	"iris/internal/hose"
	"iris/internal/traffic"
)

// DefaultDeltaFallbackFrac is the delta-cascade threshold: when more than
// this fraction of the region's planned DC pairs changed demand,
// AllocateDelta abandons the incremental path and re-solves from scratch —
// past that point a full scan touches barely more state than the
// incremental bookkeeping would.
const DefaultDeltaFallbackFrac = 0.5

// AllocState is an Allocation plus the bookkeeping it was derived from:
// the demand it satisfies, each DC's aggregate hose usage, and the
// per-duct fiber occupancy. Retaining the books is what makes delta
// allocation possible — AllocateDelta re-solves only the pairs a
// traffic.Delta names and re-audits only the ducts their circuits touch,
// instead of recomputing the whole region.
//
// An AllocState is single-owner mutable state: AllocateDelta updates it in
// place. It is not safe for concurrent use; callers that publish the
// contained Allocation elsewhere should hand out Snapshot().
type AllocState struct {
	// FallbackFrac overrides DefaultDeltaFallbackFrac when positive.
	FallbackFrac float64

	dep   *Deployment
	alloc Allocation
	dcs   []int
	// demand holds the nonzero demand per (canonical) pair.
	demand map[hose.Pair]float64
	// perDC is each DC's aggregate demand — the hose usage the feasibility
	// check audits.
	perDC map[int]float64
	// fibersByDuct / residualByDuct mirror the occupancy checks of a full
	// Allocate: full fiber-pairs and residual-fiber users per duct.
	fibersByDuct   map[int]int
	residualByDuct map[int]int
	// pairIdx/ductPairs are the static reverse index of the plan's paths:
	// each planned pair gets a dense index, and ductPairs lists the pair
	// indices riding each duct. The index drives the cascade accounting —
	// when a duct gains or loses headroom, these are the pairs whose
	// admissibility is re-audited.
	pairIdx   map[hose.Pair]int32
	ductPairs [][]int32 // indexed by duct ID

	// Scratch buffers reused across AllocateDelta calls so the hot path
	// allocates O(delta) rather than O(region). Generation stamps avoid
	// clearing between calls; AllocState is single-owner, so sharing them
	// is safe.
	gen      uint32
	ductGen  []uint32 // per duct ID: generation that last touched it
	touched  []int    // touched duct IDs, this generation
	pairGen  []uint32 // per pair index: generation that last marked it
	aggDCs   []int    // affected DCs, this generation
	aggDiffs []float64
}

// nextGen advances the scratch generation, resetting the stamp buffers on
// wraparound.
func (st *AllocState) nextGen() {
	st.gen++
	if st.gen == 0 {
		for i := range st.ductGen {
			st.ductGen[i] = 0
		}
		for i := range st.pairGen {
			st.pairGen[i] = 0
		}
		st.gen = 1
	}
	st.touched = st.touched[:0]
	st.aggDCs = st.aggDCs[:0]
	st.aggDiffs = st.aggDiffs[:0]
}

// markDuct records a duct as touched this generation.
func (st *AllocState) markDuct(duct int) {
	if duct >= len(st.ductGen) {
		grown := make([]uint32, duct+1)
		copy(grown, st.ductGen)
		st.ductGen = grown
	}
	if st.ductGen[duct] != st.gen {
		st.ductGen[duct] = st.gen
		st.touched = append(st.touched, duct)
	}
}

// Allocation returns the state's current circuit assignment. The returned
// maps alias the live books: they change on the next AllocateDelta. Use
// Snapshot for a stable copy.
func (st *AllocState) Allocation() Allocation { return st.alloc }

// Snapshot returns a deep copy of the current circuit assignment, safe to
// retain across further delta applications.
func (st *AllocState) Snapshot() Allocation {
	c := Allocation{
		Fibers:   make(map[hose.Pair]int, len(st.alloc.Fibers)),
		Residual: make(map[hose.Pair]int, len(st.alloc.Residual)),
	}
	for p, v := range st.alloc.Fibers {
		c.Fibers[p] = v
	}
	for p, v := range st.alloc.Residual {
		c.Residual[p] = v
	}
	return c
}

// Demand returns the demand the state currently satisfies for a pair.
func (st *AllocState) Demand(p hose.Pair) float64 { return st.demand[p.Canonical()] }

// DemandMatrix reconstructs the demand matrix the state satisfies.
func (st *AllocState) DemandMatrix() *traffic.Matrix {
	m := traffic.NewMatrix(st.dcs)
	for p, v := range st.demand {
		m.Set(p, v)
	}
	return m
}

// Deployment returns the deployment the state allocates against.
func (st *AllocState) Deployment() *Deployment { return st.dep }

// DeltaStats describes how one AllocateDelta was solved.
type DeltaStats struct {
	// Incremental is true when the delta path ran; false when the engine
	// fell back to a from-scratch solve.
	Incremental bool
	// FallbackReason says why a full solve ran (empty when Incremental).
	FallbackReason string
	// PairsResolved is the number of pairs whose circuits were recomputed.
	PairsResolved int
	// PairsRevalidated counts duct-sharing neighbours whose admissibility
	// was re-audited because a duct they ride gained or lost headroom.
	PairsRevalidated int
	// DuctsTouched is the number of ducts whose occupancy changed.
	DuctsTouched int
}

// Undo lets a caller revert one AllocateDelta after a downstream failure
// (e.g. the devices rejected the reconfiguration the new allocation
// implies). The zero Undo is a no-op.
type Undo struct {
	st *AllocState
	// prev holds the old demands of the changed pairs; rollback re-applies
	// them through the same incremental path.
	prev traffic.Delta
	// books holds the wholesale pre-fallback state when the full solver
	// ran; swap-restore is cheaper than replaying a large delta.
	books *allocBooks
}

type allocBooks struct {
	alloc          Allocation
	demand         map[hose.Pair]float64
	perDC          map[int]float64
	fibersByDuct   map[int]int
	residualByDuct map[int]int
}

// Rollback restores the state to its books before the AllocateDelta that
// produced this undo. It is one-shot: further calls no-op.
func (u *Undo) Rollback() {
	st := u.st
	if st == nil {
		return
	}
	u.st = nil
	if u.books != nil {
		st.alloc = u.books.alloc
		st.demand = u.books.demand
		st.perDC = u.books.perDC
		st.fibersByDuct = u.books.fibersByDuct
		st.residualByDuct = u.books.residualByDuct
		return
	}
	// Re-applying the inverse delta restores a state known feasible, so
	// neither the hose nor the duct audit can fail here.
	st.nextGen()
	for p, old := range u.prev.Changes {
		// The forward pass validated every changed pair's path; the
		// inverse walk cannot miss.
		_ = st.applyPairDelta(p, old)
	}
}

// captureBooks moves the live books out of the state (for a fallback undo)
// without copying.
func (st *AllocState) captureBooks() *allocBooks {
	return &allocBooks{
		alloc:          st.alloc,
		demand:         st.demand,
		perDC:          st.perDC,
		fibersByDuct:   st.fibersByDuct,
		residualByDuct: st.residualByDuct,
	}
}

// AllocateState runs a full allocation like Allocate but retains the
// occupancy books, so subsequent demand shifts can be applied with
// AllocateDelta instead of re-solving the region.
func (d *Deployment) AllocateState(m *traffic.Matrix) (*AllocState, error) {
	st, err := d.allocFull(m)
	if err != nil {
		return nil, err
	}
	st.buildPairIndex()
	return st, nil
}

func (st *AllocState) buildPairIndex() {
	pairs := make([]hose.Pair, 0, len(st.dep.Plan.Paths))
	for p := range st.dep.Plan.Paths {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	maxDuct := 0
	for _, p := range pairs {
		for _, duct := range st.dep.Plan.Paths[p].Ducts {
			if duct > maxDuct {
				maxDuct = duct
			}
		}
	}
	st.pairIdx = make(map[hose.Pair]int32, len(pairs))
	st.ductPairs = make([][]int32, maxDuct+1)
	for i, p := range pairs {
		st.pairIdx[p] = int32(i)
		for _, duct := range st.dep.Plan.Paths[p].Ducts {
			st.ductPairs[duct] = append(st.ductPairs[duct], int32(i))
		}
	}
	st.ductGen = make([]uint32, maxDuct+1)
	st.pairGen = make([]uint32, len(pairs))
}

// AllocateDelta applies a sparse demand update to an AllocState produced
// by AllocateState (or a previous AllocateDelta): the pairs the delta
// names are re-solved, the ducts their circuits ride are re-audited
// against provisioned capacity (together with the hose feasibility of the
// affected DCs), and every other pair's books are left untouched. When
// the delta covers more than FallbackFrac of the region's planned pairs
// the engine falls back to a from-scratch solve, which is cheaper at that
// size.
//
// On success the state is updated in place and the returned Undo can
// revert it (for callers whose downstream commit fails). On error the
// state is unchanged and the allocation it holds remains valid.
func (d *Deployment) AllocateDelta(st *AllocState, delta traffic.Delta) (Undo, DeltaStats, error) {
	if st == nil || st.dep != d || st.pairIdx == nil {
		return Undo{}, DeltaStats{}, fmt.Errorf("core: AllocateDelta needs a state from this deployment's AllocateState")
	}

	// Normalize: drop no-op entries so stats and the fallback decision see
	// the real cascade size.
	changed := make([]hose.Pair, 0, delta.Len())
	for p, v := range delta.Changes {
		if st.demand[p] != v {
			changed = append(changed, p)
		}
	}
	if len(changed) == 0 {
		return Undo{}, DeltaStats{Incremental: true}, nil
	}
	sort.Slice(changed, func(i, j int) bool {
		if changed[i].A != changed[j].A {
			return changed[i].A < changed[j].A
		}
		return changed[i].B < changed[j].B
	})

	frac := st.FallbackFrac
	if frac <= 0 {
		frac = DefaultDeltaFallbackFrac
	}
	if total := len(d.Plan.Paths); float64(len(changed)) > frac*float64(total) {
		return st.fallbackFull(delta, fmt.Sprintf("delta covers %d of %d pairs", len(changed), total))
	}
	st.nextGen()

	// Hose feasibility of the affected DCs, checked before any mutation so
	// an infeasible delta leaves the state untouched.
	lambda := d.Region.Lambda
	for _, p := range changed {
		diff := delta.Changes[p] - st.demand[p]
		st.addAggDiff(p.A, diff)
		st.addAggDiff(p.B, diff)
	}
	for i, dc := range st.aggDCs {
		agg := st.perDC[dc] + st.aggDiffs[i]
		capW := float64(d.Region.Capacity[dc] * lambda)
		if agg > capW+1e-9 {
			return Undo{}, DeltaStats{}, fmt.Errorf(
				"core: DC %d aggregate demand %.1f wavelengths exceeds capacity %.0f",
				dc, agg, capW)
		}
	}

	// Every changed pair must have a planned path (unless it is being
	// drained to zero and never carried circuits).
	for _, p := range changed {
		if _, ok := d.Plan.Paths[p]; !ok && delta.Changes[p] > 0 {
			return Undo{}, DeltaStats{}, fmt.Errorf("core: no planned path for pair %d-%d", p.A, p.B)
		}
	}

	undo := Undo{st: st, prev: traffic.NewDelta()}
	for _, p := range changed {
		undo.prev.Changes[p] = st.demand[p]
	}

	for _, p := range changed {
		if err := st.applyPairDelta(p, delta.Changes[p]); err != nil {
			undo.Rollback()
			return Undo{}, DeltaStats{}, err
		}
	}

	// Re-audit the ducts whose occupancy moved — the incremental
	// equivalent of Allocate's region-wide provisioning check. Untouched
	// ducts kept their (previously validated) occupancy.
	sort.Ints(st.touched)
	gen := st.gen
	for _, p := range changed {
		if idx, ok := st.pairIdx[p]; ok {
			st.pairGen[idx] = gen
		}
	}
	revalidated := 0
	for _, duct := range st.touched {
		du := d.Plan.Ducts[duct]
		if used := st.fibersByDuct[duct]; du == nil || used > du.BasePairs {
			base := 0
			if du != nil {
				base = du.BasePairs
			}
			undo.Rollback()
			return Undo{}, DeltaStats{}, fmt.Errorf(
				"core: duct %d needs %d full fibers, provisioned %d", duct, used, base)
		}
		if used := st.residualByDuct[duct]; used > du.ResidualPairs {
			undo.Rollback()
			return Undo{}, DeltaStats{}, fmt.Errorf(
				"core: duct %d needs %d residual fibers, provisioned %d", duct, used, du.ResidualPairs)
		}
		for _, idx := range st.ductPairs[duct] {
			if st.pairGen[idx] != gen {
				st.pairGen[idx] = gen
				revalidated++
			}
		}
	}

	return undo, DeltaStats{
		Incremental:      true,
		PairsResolved:    len(changed),
		PairsRevalidated: revalidated,
		DuctsTouched:     len(st.touched),
	}, nil
}

// addAggDiff accumulates one DC's demand diff into the per-call scratch.
// Affected-DC counts are tiny (2 per changed pair), so a linear scan beats
// a map.
func (st *AllocState) addAggDiff(dc int, diff float64) {
	for i, d := range st.aggDCs {
		if d == dc {
			st.aggDiffs[i] += diff
			return
		}
	}
	st.aggDCs = append(st.aggDCs, dc)
	st.aggDiffs = append(st.aggDiffs, diff)
}

// fallbackFull re-solves the whole region from the state's demand plus the
// delta, replacing the books in place so the caller's pointer stays valid.
func (st *AllocState) fallbackFull(delta traffic.Delta, reason string) (Undo, DeltaStats, error) {
	m := st.DemandMatrix()
	delta.ApplyTo(m)
	fresh, err := st.dep.allocFull(m)
	if err != nil {
		return Undo{}, DeltaStats{}, err
	}
	undo := Undo{st: st, books: st.captureBooks()}
	st.alloc = fresh.alloc
	st.demand = fresh.demand
	st.perDC = fresh.perDC
	st.fibersByDuct = fresh.fibersByDuct
	st.residualByDuct = fresh.residualByDuct
	return undo, DeltaStats{FallbackReason: reason, PairsResolved: len(st.dep.Plan.Paths)}, nil
}

// pairCircuits converts one pair's demand (in wavelengths) to circuits:
// full dedicated fiber-pairs plus residual wavelengths (§4.3).
func pairCircuits(demand float64, lambda int) (full, rem int) {
	if demand == 0 {
		return 0, 0
	}
	full = int(demand) / lambda
	rem = int(math.Ceil(demand-1e-9)) - full*lambda
	if rem < 0 {
		rem = 0
	}
	return full, rem
}

// inSortedInts reports membership in a small ascending slice. Cut-duct
// lists hold at most a handful of entries, so a linear scan beats both a
// map allocation and binary-search bookkeeping on the hot path.
func inSortedInts(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
		if x > v {
			return false
		}
	}
	return false
}

// applyPairDelta moves one pair from its currently booked demand to
// newDemand: circuit entries, hose aggregates and duct occupancies are all
// updated, and every duct whose occupancy changed is marked touched for
// the current generation. The caller validates hose feasibility beforehand
// and duct capacity afterwards.
func (st *AllocState) applyPairDelta(p hose.Pair, newDemand float64) error {
	oldDemand := st.demand[p]
	if oldDemand == newDemand {
		return nil
	}
	info, ok := st.dep.Plan.Paths[p]
	if !ok {
		if newDemand == 0 && oldDemand == 0 {
			return nil
		}
		return fmt.Errorf("core: no planned path for pair %d-%d", p.A, p.B)
	}
	lambda := st.dep.Region.Lambda
	oldFull, oldRem := pairCircuits(oldDemand, lambda)
	newFull, newRem := pairCircuits(newDemand, lambda)

	if newDemand == 0 {
		delete(st.demand, p)
		delete(st.alloc.Fibers, p)
		delete(st.alloc.Residual, p)
	} else {
		st.demand[p] = newDemand
		st.alloc.Fibers[p] = newFull
		st.alloc.Residual[p] = newRem
	}
	st.perDC[p.A] += newDemand - oldDemand
	st.perDC[p.B] += newDemand - oldDemand

	fullDiff := newFull - oldFull
	resDiff := 0
	if oldRem > 0 {
		resDiff--
	}
	if newRem > 0 {
		resDiff++
	}
	if fullDiff == 0 && resDiff == 0 {
		return nil
	}
	for _, duct := range info.Ducts {
		// Ducts covered by this pair's cut-through carry its traffic on
		// the dedicated cut-through fiber, not base capacity.
		if fullDiff != 0 && !inSortedInts(info.CutDucts, duct) {
			st.fibersByDuct[duct] += fullDiff
			st.markDuct(duct)
		}
		if resDiff != 0 {
			st.residualByDuct[duct] += resDiff
			st.markDuct(duct)
		}
	}
	return nil
}
