package core

import (
	"testing"

	"iris/internal/traffic"
)

// benchSetup plans the 8-DC benchmark region and builds a hose-feasible
// base matrix plus a 2-pair forward/backward delta pair (so successive
// applications oscillate instead of drifting).
func benchSetup(b *testing.B) (*Deployment, *traffic.Matrix, [2]traffic.Delta) {
	dep := genDeployment(b, 1, 8)
	dcs := dep.Region.Map.DCs()
	m := traffic.NewMatrix(dcs)
	pairs := m.Pairs()
	for i, p := range pairs {
		m.Set(p, float64(5+(7*i)%40))
	}
	fwd, back := traffic.NewDelta(), traffic.NewDelta()
	for _, p := range []int{0, len(pairs) / 2} {
		back.Set(pairs[p], m.Get(pairs[p]))
		fwd.Set(pairs[p], m.Get(pairs[p])+55)
	}
	return dep, m, [2]traffic.Delta{fwd, back}
}

// BenchmarkAllocateFull is the baseline the incremental engine is measured
// against: a from-scratch Allocate of the whole 8-DC region.
func BenchmarkAllocateFull(b *testing.B) {
	dep, m, _ := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Allocate(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocateDelta applies a 2-pair delta incrementally, alternating
// between the shifted and original demands so every iteration does real
// work. The acceptance bar for the engine is ≥5× faster than
// BenchmarkAllocateFull.
func BenchmarkAllocateDelta(b *testing.B) {
	dep, m, deltas := benchSetup(b)
	st, err := dep.AllocateState(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dep.AllocateDelta(st, deltas[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocateDeltaRollback measures the apply+revert cycle — the
// cost a failed downstream commit pays.
func BenchmarkAllocateDeltaRollback(b *testing.B) {
	dep, m, deltas := benchSetup(b)
	st, err := dep.AllocateState(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		undo, _, err := dep.AllocateDelta(st, deltas[0])
		if err != nil {
			b.Fatal(err)
		}
		undo.Rollback()
	}
}

// BenchmarkAllocateDeltaFallback measures a region-wide delta, which the
// engine solves by falling back to a full allocation — the upper bound of
// AllocateDelta's cost.
func BenchmarkAllocateDeltaFallback(b *testing.B) {
	dep, m, _ := benchSetup(b)
	st, err := dep.AllocateState(m)
	if err != nil {
		b.Fatal(err)
	}
	shift := [2]traffic.Delta{traffic.NewDelta(), traffic.NewDelta()}
	for _, p := range m.Pairs() {
		shift[0].Set(p, m.Get(p)+3)
		shift[1].Set(p, m.Get(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, stats, err := dep.AllocateDelta(st, shift[i%2]); err != nil {
			b.Fatal(err)
		} else if stats.Incremental {
			b.Fatal("expected fallback")
		}
	}
}

// TestIncrementalSpeedup is the perf-regression tripwire behind the ≥5×
// acceptance bar: measured headroom is well past 5× (see EXPERIMENTS.md),
// so asserting 4× here keeps CI timing noise from flaking the suite while
// still catching any real regression of the delta path.
func TestIncrementalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	full := testing.Benchmark(BenchmarkAllocateFull)
	delta := testing.Benchmark(BenchmarkAllocateDelta)
	fullNs := float64(full.NsPerOp())
	deltaNs := float64(delta.NsPerOp())
	if deltaNs <= 0 || fullNs <= 0 {
		t.Skipf("degenerate timings: full %v, delta %v", full, delta)
	}
	speedup := fullNs / deltaNs
	t.Logf("full %.0f ns/op, delta %.0f ns/op, speedup %.1f×", fullNs, deltaNs, speedup)
	if speedup < 4 {
		t.Errorf("incremental speedup %.1f×, want ≥4× (acceptance bar 5×)", speedup)
	}
}
