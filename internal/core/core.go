// Package core is the public face of the Iris library: it bundles the
// paper's planning pipeline (§4), the cost models (§3.3, §6.1), and the
// fiber-granularity circuit allocation the controller executes (§4.3,
// §5.2) behind a small API.
//
// The typical flow is:
//
//	dep, err := core.Plan(region, core.DefaultOptions())
//	alloc, err := dep.Allocate(trafficMatrix)
//	moves := core.Diff(oldAlloc, newAlloc)   // what a reconfiguration touches
//
// Control loops that apply many successive demand shifts use the
// incremental path instead of re-solving per shift:
//
//	st, err := dep.AllocateState(trafficMatrix)
//	undo, stats, err := dep.AllocateDelta(st, delta)   // re-solves only changed pairs
package core

import (
	"fmt"
	"sort"

	"iris/internal/cost"
	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/parallel"
	"iris/internal/plan"
	"iris/internal/trace"
	"iris/internal/traffic"
)

// Region is the planning input: a fiber map with placed DCs, each DC's
// capacity in fiber-pairs, and the wavelength count per fiber.
type Region struct {
	Map      *fibermap.Map
	Capacity map[int]int
	Lambda   int
}

// Options tune planning.
type Options struct {
	// MaxFailures is the duct-cut tolerance (OC4); the paper's
	// operational default is 2.
	MaxFailures int
	// Prices overrides the component catalog; zero value means the
	// paper's §3.3 prices.
	Prices cost.Catalog
	// Parallelism bounds how many regions PlanMany plans concurrently:
	// 0 means GOMAXPROCS, 1 is fully serial. Plan ignores it.
	Parallelism int
	// Span, when non-nil, receives the planner's per-stage child spans
	// (see plan.Input.Span). PlanMany ignores it: concurrent regions
	// would interleave children under one parent.
	Span *trace.Span
}

// Deployment is a fully planned region: topology, capacity, optical
// equipment, and the cost of implementing it under each switching
// architecture.
type Deployment struct {
	Region Region
	Plan   *plan.Plan
	Iris   cost.Breakdown
	EPS    cost.Breakdown
	Hybrid cost.Breakdown
}

// DefaultOptions returns the paper's operational planning defaults: the
// §4 duct-cut tolerance of 2, the §3.3 price catalog (selected by the zero
// Prices), and fully parallel PlanMany. Mutate the returned struct to
// deviate, matching the Default* construction idiom used module-wide.
func DefaultOptions() Options {
	return Options{MaxFailures: 2}
}

// Plan plans a region end to end. It wraps a throwaway Solver, so the
// returned Deployment is independent of any workspace and stays valid
// forever; loops that re-plan the same region should hold a Solver
// instead and amortize the workspace across calls.
func Plan(region Region, opts Options) (*Deployment, error) {
	return NewSolver(opts).Solve(region)
}

// PlanMany plans several regions, fanning them out across
// Options.Parallelism workers, each with its own Solver. Deployments are
// returned in input order regardless of scheduling; planning each region
// is deterministic, so a parallel run returns exactly what a serial one
// would. On failure the error names the lowest-index failing region and
// no deployments are returned.
func PlanMany(regions []Region, opts Options) ([]*Deployment, error) {
	opts.Span = nil // concurrent regions would interleave children under one parent
	deps := make([]*Deployment, len(regions))
	err := parallel.ForEach(len(regions), opts.Parallelism, func(i int) error {
		dep, err := Plan(regions[i], opts)
		if err != nil {
			return fmt.Errorf("region %d: %w", i, err)
		}
		deps[i] = dep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return deps, nil
}

// Allocation is a fiber-granularity circuit assignment for one traffic
// matrix: per DC pair, the number of dedicated full fibers, and the
// wavelengths riding the pair's residual fiber for the fractional part
// (§4.3: fractional demands never cost extra transceivers, only the
// pre-provisioned residual fiber).
type Allocation struct {
	// Fibers is the number of full fiber-pairs dedicated to each DC pair.
	Fibers map[hose.Pair]int
	// Residual is the wavelength count carried on each pair's residual
	// fiber (0 ≤ Residual < λ).
	Residual map[hose.Pair]int
}

// FibersFor returns the full-fiber count for a pair.
func (a Allocation) FibersFor(p hose.Pair) int { return a.Fibers[p.Canonical()] }

// ResidualFor returns the residual wavelengths for a pair.
func (a Allocation) ResidualFor(p hose.Pair) int { return a.Residual[p.Canonical()] }

// Equal reports whether two allocations assign the same fibers and
// residual wavelengths to every pair, treating absent entries as zero. The
// daemon uses it to skip no-op reconfigurations when a traffic step leaves
// the circuit assignment unchanged.
func (a Allocation) Equal(b Allocation) bool {
	return intMapsEqual(a.Fibers, b.Fibers) && intMapsEqual(a.Residual, b.Residual)
}

func intMapsEqual(x, y map[hose.Pair]int) bool {
	for p, v := range x {
		if y[p] != v {
			return false
		}
	}
	for p, v := range y {
		if x[p] != v {
			return false
		}
	}
	return true
}

// Allocate converts a demand matrix (in wavelengths per DC pair) into a
// circuit assignment, validating that demands respect the hose model and
// that the provisioned duct capacities can carry the assignment. For a
// control loop that applies many successive shifts, AllocateState +
// AllocateDelta solve the same problem incrementally.
func (d *Deployment) Allocate(m *traffic.Matrix) (Allocation, error) {
	st, err := d.allocFull(m)
	if err != nil {
		return Allocation{}, err
	}
	return st.alloc, nil
}

// allocFull is the from-scratch solver shared by Allocate, AllocateState
// and the delta engine's fallback path: it books every pair of the matrix
// into a fresh AllocState and validates the hose model and the provisioned
// duct capacities.
func (d *Deployment) allocFull(m *traffic.Matrix) (*AllocState, error) {
	lambda := d.Region.Lambda
	// Hose feasibility: each DC's aggregate demand within its capacity.
	use := m.PerDC()
	for dc, agg := range use {
		capW := float64(d.Region.Capacity[dc] * lambda)
		if agg > capW+1e-9 {
			return nil, fmt.Errorf(
				"core: DC %d aggregate demand %.1f wavelengths exceeds capacity %.0f",
				dc, agg, capW)
		}
	}

	st := &AllocState{
		dep: d,
		dcs: append([]int(nil), m.DCs...),
		alloc: Allocation{
			Fibers:   make(map[hose.Pair]int),
			Residual: make(map[hose.Pair]int),
		},
		demand:         make(map[hose.Pair]float64),
		perDC:          use,
		fibersByDuct:   make(map[int]int),
		residualByDuct: make(map[int]int),
	}
	for _, p := range m.Pairs() {
		demand := m.Get(p)
		if demand == 0 {
			continue
		}
		p = p.Canonical()
		info, ok := d.Plan.Paths[p]
		if !ok {
			return nil, fmt.Errorf("core: no planned path for pair %d-%d", p.A, p.B)
		}
		full, rem := pairCircuits(demand, lambda)
		st.demand[p] = demand
		st.alloc.Fibers[p] = full
		st.alloc.Residual[p] = rem
		for _, duct := range info.Ducts {
			// Ducts covered by this pair's cut-through carry its traffic
			// on the dedicated cut-through fiber, not base capacity.
			if !inSortedInts(info.CutDucts, duct) {
				st.fibersByDuct[duct] += full
			}
			if rem > 0 {
				st.residualByDuct[duct]++
			}
		}
	}
	for duct, used := range st.fibersByDuct {
		du := d.Plan.Ducts[duct]
		if du == nil || used > du.BasePairs {
			base := 0
			if du != nil {
				base = du.BasePairs
			}
			return nil, fmt.Errorf(
				"core: duct %d needs %d full fibers, provisioned %d", duct, used, base)
		}
	}
	for duct, used := range st.residualByDuct {
		du := d.Plan.Ducts[duct]
		if du == nil || used > du.ResidualPairs {
			res := 0
			if du != nil {
				res = du.ResidualPairs
			}
			return nil, fmt.Errorf(
				"core: duct %d needs %d residual fibers, provisioned %d", duct, used, res)
		}
	}
	return st, nil
}

// Move is one pair whose circuit assignment changes between two
// allocations — the unit of reconfiguration work.
type Move struct {
	Pair hose.Pair
	// FibersDelta is the change in dedicated fibers (signed).
	FibersDelta int
	// FracAffected is the fraction of the pair's old capacity that is
	// unavailable during the fiber switch — what the flow simulator
	// models as a Dip.
	FracAffected float64
}

// Diff returns the moves needed to go from an old allocation to a new
// one, in deterministic pair order. Pairs with unchanged fiber counts do
// not appear: residual-wavelength changes retune transceivers (sub-
// millisecond) without switching fibers (§5.2).
func Diff(oldA, newA Allocation) []Move {
	pairSet := make(map[hose.Pair]bool)
	for p := range oldA.Fibers {
		pairSet[p] = true
	}
	for p := range newA.Fibers {
		pairSet[p] = true
	}
	pairs := make([]hose.Pair, 0, len(pairSet))
	for p := range pairSet {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})

	var moves []Move
	for _, p := range pairs {
		oldF, newF := oldA.Fibers[p], newA.Fibers[p]
		if oldF == newF {
			continue
		}
		delta := newF - oldF
		// Capacity affected during the switch: only circuits being torn
		// down carry traffic that must drain (§5.2); fibers joining a
		// growing circuit were idle, so existing capacity is untouched.
		frac := 0.0
		if delta < 0 {
			denom := oldF
			if denom < 1 {
				denom = 1
			}
			frac = float64(-delta) / float64(denom)
			if frac > 1 {
				frac = 1
			}
		}
		moves = append(moves, Move{Pair: p, FibersDelta: delta, FracAffected: frac})
	}
	return moves
}
