package core

import (
	"reflect"
	"testing"

	"iris/internal/hose"
	"iris/internal/traffic"
)

func allocOf(entries ...[4]int) Allocation {
	a := Allocation{Fibers: map[hose.Pair]int{}, Residual: map[hose.Pair]int{}}
	for _, e := range entries {
		p := hose.Pair{A: e[0], B: e[1]}.Canonical()
		if e[2] != 0 {
			a.Fibers[p] = e[2]
		}
		if e[3] != 0 {
			a.Residual[p] = e[3]
		}
	}
	return a
}

func TestDiffAllocReportsResidualOnlyChanges(t *testing.T) {
	oldA := allocOf([4]int{2, 4, 1, 10})
	newA := allocOf([4]int{2, 4, 1, 25})
	got := DiffAlloc(oldA, newA)
	want := []PairDelta{{A: 2, B: 4, OldFibers: 1, NewFibers: 1, OldResidual: 10, NewResidual: 25}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DiffAlloc = %+v, want %+v", got, want)
	}
}

func TestDiffAllocDeterministicOrderAndOmitsUnchanged(t *testing.T) {
	oldA := allocOf([4]int{2, 3, 1, 0}, [4]int{4, 5, 2, 7}, [4]int{2, 5, 3, 3})
	newA := allocOf([4]int{2, 3, 2, 0}, [4]int{4, 5, 2, 7}, [4]int{2, 5, 0, 1})
	got := DiffAlloc(oldA, newA)
	if len(got) != 2 {
		t.Fatalf("want 2 deltas, got %+v", got)
	}
	if got[0].Pair() != (hose.Pair{A: 2, B: 3}) || got[1].Pair() != (hose.Pair{A: 2, B: 5}) {
		t.Fatalf("order: %+v", got)
	}
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(DiffAlloc(oldA, newA), got) {
			t.Fatal("DiffAlloc is not deterministic")
		}
	}
}

func TestDiffAllocCoversDrainedAndNewPairs(t *testing.T) {
	oldA := allocOf([4]int{2, 3, 1, 5})
	newA := allocOf([4]int{4, 5, 0, 9})
	got := DiffAlloc(oldA, newA)
	want := []PairDelta{
		{A: 2, B: 3, OldFibers: 1, OldResidual: 5},
		{A: 4, B: 5, NewResidual: 9},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DiffAlloc = %+v, want %+v", got, want)
	}
}

// TestApplyDeltasComposes is the property the history lake depends on:
// replaying each step's deltas in order from an empty allocation
// reproduces the final allocation exactly.
func TestApplyDeltasComposes(t *testing.T) {
	steps := []Allocation{
		allocOf([4]int{2, 3, 1, 5}),
		allocOf([4]int{2, 3, 2, 0}, [4]int{2, 4, 0, 9}),
		allocOf([4]int{2, 4, 1, 1}),
		allocOf(), // full drain
		allocOf([4]int{3, 5, 4, 2}),
	}
	replayed := allocOf()
	prev := allocOf()
	for i, cur := range steps {
		replayed = ApplyDeltas(replayed, DiffAlloc(prev, cur))
		if !replayed.Equal(cur) {
			t.Fatalf("step %d: replayed %+v != live %+v", i, replayed, cur)
		}
		prev = cur
	}
}

func TestApplyDeltasDoesNotMutateInput(t *testing.T) {
	base := allocOf([4]int{2, 3, 1, 5})
	_ = ApplyDeltas(base, []PairDelta{{A: 2, B: 3, NewFibers: 7}})
	if base.Fibers[hose.Pair{A: 2, B: 3}] != 1 {
		t.Fatal("ApplyDeltas mutated its input")
	}
}

// TestDuctDeltasMatchesLiveBooks checks the projection against the real
// occupancy accounting: apply a demand shift through AllocateDelta, diff
// the before/after duct books, and require DuctDeltas over the pair
// deltas to say the same thing.
func TestDuctDeltasMatchesLiveBooks(t *testing.T) {
	region, r := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewMatrix(region.Map.DCs())
	m.Set(hose.Pair{A: r.DC1, B: r.DC3}, 100) // 2 fibers + residual, crosses the hub duct
	m.Set(hose.Pair{A: r.DC1, B: r.DC2}, 80)  // 2 fibers, hub-local
	st, err := dep.AllocateState(m)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Snapshot()
	booksBefore := map[int][2]int{}
	for duct, f := range st.fibersByDuct {
		booksBefore[duct] = [2]int{f, st.residualByDuct[duct]}
	}

	delta := traffic.NewDelta()
	delta.Changes[hose.Pair{A: r.DC1, B: r.DC3}.Canonical()] = 40 // 1 fiber, no residual
	delta.Changes[hose.Pair{A: r.DC2, B: r.DC4}.Canonical()] = 10 // new residual-only pair
	if _, _, err := dep.AllocateDelta(st, delta); err != nil {
		t.Fatal(err)
	}
	after := st.Snapshot()

	got := dep.DuctDeltas(DiffAlloc(before, after))
	var want []DuctDelta
	seen := map[int]bool{}
	for duct := range st.fibersByDuct {
		seen[duct] = true
	}
	for duct := range st.residualByDuct {
		seen[duct] = true
	}
	for duct := range booksBefore {
		seen[duct] = true
	}
	for duct := range seen {
		dd := DuctDelta{
			Duct:     duct,
			Fibers:   st.fibersByDuct[duct] - booksBefore[duct][0],
			Residual: st.residualByDuct[duct] - booksBefore[duct][1],
		}
		if dd.Fibers != 0 || dd.Residual != 0 {
			want = append(want, dd)
		}
	}
	if len(want) == 0 {
		t.Fatal("test shift produced no duct changes; pick a bigger delta")
	}
	sortDuctDeltas(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DuctDeltas = %+v, live books say %+v", got, want)
	}
}

func sortDuctDeltas(s []DuctDelta) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Duct < s[j-1].Duct; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestDuctDeltasSkipsUnplannedPairs(t *testing.T) {
	region, _ := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := dep.DuctDeltas([]PairDelta{{A: 97, B: 99, NewFibers: 3}})
	if len(got) != 0 {
		t.Fatalf("unplanned pair produced duct deltas: %+v", got)
	}
}
