package core

import (
	"reflect"
	"testing"

	"iris/internal/hose"
	"iris/internal/traffic"
)

func allocOf(entries ...[4]int) Allocation {
	a := Allocation{Fibers: map[hose.Pair]int{}, Residual: map[hose.Pair]int{}}
	for _, e := range entries {
		p := hose.Pair{A: e[0], B: e[1]}.Canonical()
		if e[2] != 0 {
			a.Fibers[p] = e[2]
		}
		if e[3] != 0 {
			a.Residual[p] = e[3]
		}
	}
	return a
}

func TestDiffAllocReportsResidualOnlyChanges(t *testing.T) {
	oldA := allocOf([4]int{2, 4, 1, 10})
	newA := allocOf([4]int{2, 4, 1, 25})
	got := DiffAlloc(oldA, newA)
	want := []PairDelta{{A: 2, B: 4, OldFibers: 1, NewFibers: 1, OldResidual: 10, NewResidual: 25}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DiffAlloc = %+v, want %+v", got, want)
	}
}

func TestDiffAllocDeterministicOrderAndOmitsUnchanged(t *testing.T) {
	oldA := allocOf([4]int{2, 3, 1, 0}, [4]int{4, 5, 2, 7}, [4]int{2, 5, 3, 3})
	newA := allocOf([4]int{2, 3, 2, 0}, [4]int{4, 5, 2, 7}, [4]int{2, 5, 0, 1})
	got := DiffAlloc(oldA, newA)
	if len(got) != 2 {
		t.Fatalf("want 2 deltas, got %+v", got)
	}
	if got[0].Pair() != (hose.Pair{A: 2, B: 3}) || got[1].Pair() != (hose.Pair{A: 2, B: 5}) {
		t.Fatalf("order: %+v", got)
	}
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(DiffAlloc(oldA, newA), got) {
			t.Fatal("DiffAlloc is not deterministic")
		}
	}
}

func TestDiffAllocCoversDrainedAndNewPairs(t *testing.T) {
	oldA := allocOf([4]int{2, 3, 1, 5})
	newA := allocOf([4]int{4, 5, 0, 9})
	got := DiffAlloc(oldA, newA)
	want := []PairDelta{
		{A: 2, B: 3, OldFibers: 1, OldResidual: 5},
		{A: 4, B: 5, NewResidual: 9},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DiffAlloc = %+v, want %+v", got, want)
	}
}

// TestApplyDeltasComposes is the property the history lake depends on:
// replaying each step's deltas in order from an empty allocation
// reproduces the final allocation exactly.
func TestApplyDeltasComposes(t *testing.T) {
	steps := []Allocation{
		allocOf([4]int{2, 3, 1, 5}),
		allocOf([4]int{2, 3, 2, 0}, [4]int{2, 4, 0, 9}),
		allocOf([4]int{2, 4, 1, 1}),
		allocOf(), // full drain
		allocOf([4]int{3, 5, 4, 2}),
	}
	replayed := allocOf()
	prev := allocOf()
	for i, cur := range steps {
		replayed = ApplyDeltas(replayed, DiffAlloc(prev, cur))
		if !replayed.Equal(cur) {
			t.Fatalf("step %d: replayed %+v != live %+v", i, replayed, cur)
		}
		prev = cur
	}
}

// TestApplyDeltasOverlappingWindows pins the composition semantics the
// history lake depends on when several control-plane paths touch the
// SAME pair in overlapping record windows: a converge grows 2-3, a
// repair shrinks it and spills onto residual, a chaos cycle drains it
// entirely and brings up a different pair. Because PairDelta carries
// absolute after-values, replaying the three windows record by record
// must land exactly on the final books, and so must one concatenated
// replay (last writer wins per pair).
func TestApplyDeltasOverlappingWindows(t *testing.T) {
	start := allocOf([4]int{2, 3, 1, 0}, [4]int{2, 4, 0, 8})
	afterConverge := allocOf([4]int{2, 3, 3, 2}, [4]int{2, 4, 0, 8})
	afterRepair := allocOf([4]int{2, 3, 1, 5}, [4]int{2, 4, 1, 0})
	afterChaos := allocOf([4]int{4, 5, 1, 3}, [4]int{2, 4, 1, 0}) // 2-3 fully drained

	windows := [][]PairDelta{
		DiffAlloc(start, afterConverge),
		DiffAlloc(afterConverge, afterRepair),
		DiffAlloc(afterRepair, afterChaos),
	}
	for i, w := range windows {
		touches := false
		for _, d := range w {
			if d.Pair() == (hose.Pair{A: 2, B: 3}) {
				touches = true
			}
		}
		if !touches {
			t.Fatalf("window %d does not touch pair 2-3; the scenario lost its overlap", i)
		}
	}

	// Record-by-record replay from the live starting books.
	got := start
	for i, w := range windows {
		got = ApplyDeltas(got, w)
		want := []Allocation{afterConverge, afterRepair, afterChaos}[i]
		if !got.Equal(want) {
			t.Fatalf("after window %d: replayed %+v != live %+v", i, got, want)
		}
	}

	// One concatenated replay: the same pair appears in all three
	// windows, and the last delta's absolute values must win.
	var concat []PairDelta
	for _, w := range windows {
		concat = append(concat, w...)
	}
	if got := ApplyDeltas(start, concat); !got.Equal(afterChaos) {
		t.Fatalf("concatenated replay %+v != final books %+v", got, afterChaos)
	}

	// From-scratch replay (empty books + every window) matches too —
	// the lake's reconstruct-from-records-alone property. The drained
	// 2-3 pair must be deleted, not zero-valued.
	scratch := ApplyDeltas(allocOf(), concat)
	if !scratch.Equal(afterChaos) {
		t.Fatalf("from-scratch replay %+v != final books %+v", scratch, afterChaos)
	}
	if _, ok := scratch.Fibers[hose.Pair{A: 2, B: 3}]; ok {
		t.Error("drained pair 2-3 left a zero-valued fibers entry")
	}
	if _, ok := scratch.Residual[hose.Pair{A: 2, B: 3}]; ok {
		t.Error("drained pair 2-3 left a zero-valued residual entry")
	}
}

// TestApplyDeltasConflictingSameWindow pins last-writer-wins inside one
// window: two deltas for the same pair (as a coalesced multi-shift step
// would produce) — the second's absolute values are the outcome.
func TestApplyDeltasConflictingSameWindow(t *testing.T) {
	got := ApplyDeltas(allocOf(), []PairDelta{
		{A: 2, B: 3, NewFibers: 5, NewResidual: 1},
		{A: 3, B: 2, NewFibers: 2, NewResidual: 7}, // same pair, non-canonical order
	})
	want := allocOf([4]int{2, 3, 2, 7})
	if !got.Equal(want) {
		t.Fatalf("conflicting deltas: got %+v, want %+v", got, want)
	}
}

func TestApplyDeltasDoesNotMutateInput(t *testing.T) {
	base := allocOf([4]int{2, 3, 1, 5})
	_ = ApplyDeltas(base, []PairDelta{{A: 2, B: 3, NewFibers: 7}})
	if base.Fibers[hose.Pair{A: 2, B: 3}] != 1 {
		t.Fatal("ApplyDeltas mutated its input")
	}
}

// TestDuctDeltasMatchesLiveBooks checks the projection against the real
// occupancy accounting: apply a demand shift through AllocateDelta, diff
// the before/after duct books, and require DuctDeltas over the pair
// deltas to say the same thing.
func TestDuctDeltasMatchesLiveBooks(t *testing.T) {
	region, r := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewMatrix(region.Map.DCs())
	m.Set(hose.Pair{A: r.DC1, B: r.DC3}, 100) // 2 fibers + residual, crosses the hub duct
	m.Set(hose.Pair{A: r.DC1, B: r.DC2}, 80)  // 2 fibers, hub-local
	st, err := dep.AllocateState(m)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Snapshot()
	booksBefore := map[int][2]int{}
	for duct, f := range st.fibersByDuct {
		booksBefore[duct] = [2]int{f, st.residualByDuct[duct]}
	}

	delta := traffic.NewDelta()
	delta.Changes[hose.Pair{A: r.DC1, B: r.DC3}.Canonical()] = 40 // 1 fiber, no residual
	delta.Changes[hose.Pair{A: r.DC2, B: r.DC4}.Canonical()] = 10 // new residual-only pair
	if _, _, err := dep.AllocateDelta(st, delta); err != nil {
		t.Fatal(err)
	}
	after := st.Snapshot()

	got := dep.DuctDeltas(DiffAlloc(before, after))
	var want []DuctDelta
	seen := map[int]bool{}
	for duct := range st.fibersByDuct {
		seen[duct] = true
	}
	for duct := range st.residualByDuct {
		seen[duct] = true
	}
	for duct := range booksBefore {
		seen[duct] = true
	}
	for duct := range seen {
		dd := DuctDelta{
			Duct:     duct,
			Fibers:   st.fibersByDuct[duct] - booksBefore[duct][0],
			Residual: st.residualByDuct[duct] - booksBefore[duct][1],
		}
		if dd.Fibers != 0 || dd.Residual != 0 {
			want = append(want, dd)
		}
	}
	if len(want) == 0 {
		t.Fatal("test shift produced no duct changes; pick a bigger delta")
	}
	sortDuctDeltas(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DuctDeltas = %+v, live books say %+v", got, want)
	}
}

func sortDuctDeltas(s []DuctDelta) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Duct < s[j-1].Duct; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestDuctDeltasSkipsUnplannedPairs(t *testing.T) {
	region, _ := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := dep.DuctDeltas([]PairDelta{{A: 97, B: 99, NewFibers: 3}})
	if len(got) != 0 {
		t.Fatalf("unplanned pair produced duct deltas: %+v", got)
	}
}
