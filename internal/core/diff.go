package core

import (
	"sort"

	"iris/internal/hose"
)

// PairDelta records how one DC pair's circuit assignment changed between
// two allocations. It carries absolute before/after values rather than
// signed deltas so that a sequence of PairDeltas composes by assignment:
// replaying them in order against any starting allocation reproduces the
// final one exactly (see ApplyDeltas), which is what lets the history
// lake reconstruct the live allocation from records alone.
type PairDelta struct {
	A           int `json:"a"`
	B           int `json:"b"`
	OldFibers   int `json:"old_fibers"`
	NewFibers   int `json:"new_fibers"`
	OldResidual int `json:"old_residual"`
	NewResidual int `json:"new_residual"`
}

// Pair returns the canonical DC pair the delta is about.
func (d PairDelta) Pair() hose.Pair { return hose.Pair{A: d.A, B: d.B}.Canonical() }

// DiffAlloc returns the per-pair changes from oldA to newA, in
// deterministic pair order. Unlike Diff (which reports only fiber moves,
// the unit of reconfiguration work), DiffAlloc also reports residual-
// wavelength changes, because the history lake needs enough to reproduce
// the allocation, not just the work done.
func DiffAlloc(oldA, newA Allocation) []PairDelta {
	pairSet := make(map[hose.Pair]bool)
	for p := range oldA.Fibers {
		pairSet[p] = true
	}
	for p := range newA.Fibers {
		pairSet[p] = true
	}
	for p := range oldA.Residual {
		pairSet[p] = true
	}
	for p := range newA.Residual {
		pairSet[p] = true
	}
	pairs := make([]hose.Pair, 0, len(pairSet))
	for p := range pairSet {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})

	var deltas []PairDelta
	for _, p := range pairs {
		d := PairDelta{
			A: p.A, B: p.B,
			OldFibers:   oldA.Fibers[p],
			NewFibers:   newA.Fibers[p],
			OldResidual: oldA.Residual[p],
			NewResidual: newA.Residual[p],
		}
		if d.OldFibers == d.NewFibers && d.OldResidual == d.NewResidual {
			continue
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// ApplyDeltas applies pair deltas to an allocation, returning a new
// allocation; the input is not modified. Entries that go to zero are
// deleted, matching how the live books drop drained pairs, so composing
// every record's deltas from an empty allocation yields a map-equal copy
// of the live one.
func ApplyDeltas(a Allocation, deltas []PairDelta) Allocation {
	out := Allocation{
		Fibers:   make(map[hose.Pair]int, len(a.Fibers)+len(deltas)),
		Residual: make(map[hose.Pair]int, len(a.Residual)+len(deltas)),
	}
	for p, v := range a.Fibers {
		out.Fibers[p] = v
	}
	for p, v := range a.Residual {
		out.Residual[p] = v
	}
	for _, d := range deltas {
		p := d.Pair()
		if d.NewFibers == 0 && d.NewResidual == 0 {
			delete(out.Fibers, p)
			delete(out.Residual, p)
			continue
		}
		out.Fibers[p] = d.NewFibers
		out.Residual[p] = d.NewResidual
	}
	for p, v := range out.Fibers {
		if v == 0 && out.Residual[p] == 0 {
			delete(out.Fibers, p)
			delete(out.Residual, p)
		}
	}
	return out
}

// DuctDelta is the physical-layer view of a reconfiguration: how one
// duct's occupancy moved — full fiber-pairs in service and residual-fiber
// users. Signed; zero-change ducts are omitted.
type DuctDelta struct {
	Duct     int `json:"duct"`
	Fibers   int `json:"fibers"`
	Residual int `json:"residual"`
}

// DuctDeltas projects pair deltas onto the ducts their planned paths
// ride, using the same occupancy accounting as the live books: full
// fibers skip ducts covered by the pair's cut-through (those ride the
// dedicated cut-through fiber), and residual occupancy counts duct users,
// not wavelengths. Pairs with no planned path (drained unknowns) are
// skipped. Results are sorted by duct ID.
func (d *Deployment) DuctDeltas(deltas []PairDelta) []DuctDelta {
	byDuct := make(map[int]*DuctDelta)
	touch := func(duct int) *DuctDelta {
		dd := byDuct[duct]
		if dd == nil {
			dd = &DuctDelta{Duct: duct}
			byDuct[duct] = dd
		}
		return dd
	}
	for _, pd := range deltas {
		info, ok := d.Plan.Paths[pd.Pair()]
		if !ok {
			continue
		}
		fullDiff := pd.NewFibers - pd.OldFibers
		resDiff := 0
		if pd.OldResidual > 0 {
			resDiff--
		}
		if pd.NewResidual > 0 {
			resDiff++
		}
		if fullDiff == 0 && resDiff == 0 {
			continue
		}
		for _, duct := range info.Ducts {
			if fullDiff != 0 && !inSortedInts(info.CutDucts, duct) {
				touch(duct).Fibers += fullDiff
			}
			if resDiff != 0 {
				touch(duct).Residual += resDiff
			}
		}
	}
	out := make([]DuctDelta, 0, len(byDuct))
	for _, dd := range byDuct {
		if dd.Fibers == 0 && dd.Residual == 0 {
			continue
		}
		out = append(out, *dd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duct < out[j].Duct })
	return out
}
