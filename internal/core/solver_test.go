package core

import (
	"testing"

	"iris/internal/fibermap"
)

func solverRegion(t *testing.T, seed int64, n, f int) Region {
	t.Helper()
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed, n
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = f
	}
	return Region{Map: m, Capacity: caps, Lambda: 40}
}

// A reused Solver must reproduce Plan exactly: same scenario count, same
// provisioning totals, and identical priced breakdowns for all three
// architectures, across seeds and interleaved regions. Plan-level
// bit-identity is covered exhaustively in the plan package; here we pin
// the deployment-level outputs the rest of the system consumes.
func TestSolverMatchesPlan(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxFailures = 1
	s := NewSolver(opts)
	check := func(r Region, label string) {
		t.Helper()
		want, err := Plan(r, opts)
		if err != nil {
			t.Fatalf("%s: Plan: %v", label, err)
		}
		got, err := s.Solve(r)
		if err != nil {
			t.Fatalf("%s: Solve: %v", label, err)
		}
		if got.Plan.NScena != want.Plan.NScena {
			t.Fatalf("%s: NScena %d != %d", label, got.Plan.NScena, want.Plan.NScena)
		}
		if gp, wp := got.Plan.TotalFiberPairs(), want.Plan.TotalFiberPairs(); gp != wp {
			t.Fatalf("%s: fiber pairs %d != %d", label, gp, wp)
		}
		if ga, wa := got.Plan.TotalAmps(), want.Plan.TotalAmps(); ga != wa {
			t.Fatalf("%s: amps %d != %d", label, ga, wa)
		}
		if got.Iris != want.Iris || got.EPS != want.EPS || got.Hybrid != want.Hybrid {
			t.Fatalf("%s: breakdowns differ:\n got %+v %+v %+v\nwant %+v %+v %+v",
				label, got.Iris, got.EPS, got.Hybrid, want.Iris, want.EPS, want.Hybrid)
		}
	}
	for seed := int64(0); seed < 3; seed++ {
		a := solverRegion(t, seed, 6, 8)
		b := solverRegion(t, seed+50, 5, 16)
		check(a, "A first")
		check(a, "A re-solved")
		check(b, "B after A")
		check(a, "A after B")
	}
}

// A warmed Solver re-solving an unchanged region must not allocate:
// planning, pricing (including the Hybrid bundling scratch) and the
// deployment refill all run on retained state. This is the PR's headline
// contract — the daemon's converge loop runs Solve at steady state.
func TestSolverSteadyStateZeroAlloc(t *testing.T) {
	r := solverRegion(t, 1, 6, 8)
	opts := DefaultOptions()
	opts.MaxFailures = 1
	s := NewSolver(opts)
	for i := 0; i < 2; i++ {
		if _, err := s.Solve(r); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := s.Solve(r); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warmed Solver.Solve allocated %v per run, want 0", avg)
	}
}

// The deployment a throwaway Solver returns via Plan must stay intact
// when other solvers keep planning — i.e. Plan's result aliases nothing
// shared.
func TestPlanResultIndependent(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxFailures = 1
	a := solverRegion(t, 2, 6, 8)
	b := solverRegion(t, 3, 5, 8)
	depA, err := Plan(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := depA.Plan.TotalFiberPairs()
	nscena := depA.Plan.NScena
	if _, err := Plan(b, opts); err != nil {
		t.Fatal(err)
	}
	if depA.Plan.TotalFiberPairs() != before || depA.Plan.NScena != nscena {
		t.Fatalf("Plan result mutated by a later Plan call")
	}
}
