package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/traffic"
)

// genDeployment plans a synthetic n-DC region for incremental tests.
func genDeployment(t testing.TB, seed int64, n int) *Deployment {
	t.Helper()
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed, n
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int, len(dcs))
	for _, dc := range dcs {
		caps[dc] = 8
	}
	dep, err := Plan(Region{Map: m, Capacity: caps, Lambda: 40}, Options{MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// booksMatch compares the state's occupancy books against a from-scratch
// solve of the same matrix, treating absent entries as zero (the
// incremental path may retain explicit zeros).
func booksMatch(st, fresh *AllocState) error {
	if !st.alloc.Equal(fresh.alloc) {
		return fmt.Errorf("allocation differs: %+v vs %+v", st.alloc, fresh.alloc)
	}
	if err := intMapZeroEqual(st.fibersByDuct, fresh.fibersByDuct); err != nil {
		return fmt.Errorf("fibersByDuct: %w", err)
	}
	if err := intMapZeroEqual(st.residualByDuct, fresh.residualByDuct); err != nil {
		return fmt.Errorf("residualByDuct: %w", err)
	}
	for dc, v := range fresh.perDC {
		if d := st.perDC[dc] - v; d > 1e-6 || d < -1e-6 {
			return fmt.Errorf("perDC[%d] = %v, want %v", dc, st.perDC[dc], v)
		}
	}
	return nil
}

func intMapZeroEqual(got, want map[int]int) error {
	for k, v := range got {
		if want[k] != v {
			return fmt.Errorf("key %d: got %d, want %d", k, v, want[k])
		}
	}
	for k, v := range want {
		if got[k] != v {
			return fmt.Errorf("key %d: got %d, want %d", k, got[k], v)
		}
	}
	return nil
}

func TestAllocateStateMatchesAllocate(t *testing.T) {
	dep := genDeployment(t, 1, 8)
	dcs := dep.Region.Map.DCs()
	m := traffic.NewMatrix(dcs)
	for i, p := range m.Pairs() {
		m.Set(p, float64(5+(7*i)%40))
	}
	st, err := dep.AllocateState(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Allocation().Equal(want) {
		t.Errorf("AllocateState allocation differs from Allocate")
	}
	snap := st.Snapshot()
	if !snap.Equal(want) {
		t.Errorf("Snapshot differs from Allocate")
	}
}

// TestAllocateDeltaStream is the seeded stream property test: 100 random
// sparse deltas per seed, applied through both AllocateDelta and a
// from-scratch Allocate, asserting identical allocations and occupancy
// books at every step — including steps where the delta is infeasible
// (both paths must reject, and the incremental state must stay intact).
func TestAllocateDeltaStream(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dep := genDeployment(t, seed, 8)
			dcs := dep.Region.Map.DCs()
			rng := rand.New(rand.NewSource(seed * 101))

			m := traffic.NewMatrix(dcs)
			pairs := m.Pairs()
			for _, p := range pairs {
				m.Set(p, float64(rng.Intn(60)))
			}
			caps := make(map[int]float64, len(dcs))
			for _, dc := range dcs {
				caps[dc] = float64(dep.Region.Capacity[dc] * dep.Region.Lambda)
			}
			m.ClampToHose(caps)
			for _, p := range pairs {
				m.Set(p, float64(int(m.Get(p))))
			}

			st, err := dep.AllocateState(m)
			if err != nil {
				t.Fatal(err)
			}

			incremental, fallbacks, rejected := 0, 0, 0
			for step := 0; step < 100; step++ {
				delta := traffic.NewDelta()
				switch {
				case step%10 == 9:
					// Every tenth step shifts most of the region at once to
					// exercise the fallback path.
					for _, p := range pairs {
						if rng.Intn(4) > 0 {
							delta.Set(p, float64(rng.Intn(25)))
						}
					}
				case step%7 == 3:
					// Occasionally aim past the hose so the rejection path
					// runs too.
					for n := 1 + rng.Intn(3); n > 0; n-- {
						delta.Set(pairs[rng.Intn(len(pairs))], float64(rng.Intn(180)))
					}
				default:
					for n := 1 + rng.Intn(4); n > 0; n-- {
						delta.Set(pairs[rng.Intn(len(pairs))], float64(rng.Intn(46)))
					}
				}

				next := m.Clone()
				delta.ApplyTo(next)
				wantAlloc, wantErr := dep.Allocate(next)

				undo, stats, err := dep.AllocateDelta(st, delta)
				if wantErr != nil {
					rejected++
					if err == nil {
						t.Fatalf("step %d: full Allocate rejected (%v) but AllocateDelta accepted", step, wantErr)
					}
					// The state must still book the previous matrix.
					prev, perr := dep.allocFull(m)
					if perr != nil {
						t.Fatal(perr)
					}
					if berr := booksMatch(st, prev); berr != nil {
						t.Fatalf("step %d: state corrupted by rejected delta: %v", step, berr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("step %d: AllocateDelta: %v (full Allocate accepted)", step, err)
				}
				if stats.Incremental {
					incremental++
				} else {
					fallbacks++
					if stats.FallbackReason == "" {
						t.Fatalf("step %d: fallback without a reason", step)
					}
				}
				if !st.Allocation().Equal(wantAlloc) {
					t.Fatalf("step %d: incremental allocation differs from full (stats %+v)", step, stats)
				}
				fresh, ferr := dep.allocFull(next)
				if ferr != nil {
					t.Fatal(ferr)
				}
				if berr := booksMatch(st, fresh); berr != nil {
					t.Fatalf("step %d: occupancy books diverged: %v", step, berr)
				}
				_ = undo // committed: no rollback
				m = next
			}
			t.Logf("seed %d: %d incremental, %d fallback, %d rejected", seed, incremental, fallbacks, rejected)
			if incremental == 0 || fallbacks == 0 {
				t.Errorf("stream did not exercise both paths: %d incremental, %d fallback", incremental, fallbacks)
			}
		})
	}
}

func TestAllocateDeltaRollback(t *testing.T) {
	dep := genDeployment(t, 2, 6)
	dcs := dep.Region.Map.DCs()
	m := traffic.NewMatrix(dcs)
	for i, p := range m.Pairs() {
		m.Set(p, float64(10+(11*i)%40))
	}
	st, err := dep.AllocateState(m)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Snapshot()

	pairs := m.Pairs()
	delta := traffic.NewDelta()
	delta.Set(pairs[0], m.Get(pairs[0])+90)
	delta.Set(pairs[3], 0)
	undo, stats, err := dep.AllocateDelta(st, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Incremental || stats.PairsResolved != 2 {
		t.Errorf("stats = %+v, want incremental with 2 pairs resolved", stats)
	}
	if st.Allocation().Equal(before) {
		t.Fatal("delta did not change the allocation")
	}
	undo.Rollback()
	if !st.Allocation().Equal(before) {
		t.Error("rollback did not restore the allocation")
	}
	fresh, err := dep.allocFull(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := booksMatch(st, fresh); err != nil {
		t.Errorf("rollback left inconsistent books: %v", err)
	}
	undo.Rollback() // second rollback is a no-op
	if !st.Allocation().Equal(before) {
		t.Error("double rollback corrupted the state")
	}

	// Fallback rollback: a region-wide delta swaps books wholesale.
	big := traffic.NewDelta()
	for _, p := range pairs {
		big.Set(p, 15)
	}
	undo, stats, err = dep.AllocateDelta(st, big)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Incremental {
		t.Errorf("region-wide delta stayed incremental: %+v", stats)
	}
	undo.Rollback()
	if !st.Allocation().Equal(before) {
		t.Error("fallback rollback did not restore the allocation")
	}
}

func TestAllocateDeltaRejectsHoseViolation(t *testing.T) {
	dep := genDeployment(t, 3, 5)
	dcs := dep.Region.Map.DCs()
	m := traffic.NewMatrix(dcs)
	st, err := dep.AllocateState(m)
	if err != nil {
		t.Fatal(err)
	}
	// One DC's capacity is 8×40 = 320 wavelengths; two 300-wavelength
	// pairs from the same DC exceed it.
	delta := traffic.NewDelta()
	delta.Set(hose.Pair{A: dcs[0], B: dcs[1]}, 300)
	delta.Set(hose.Pair{A: dcs[0], B: dcs[2]}, 300)
	if _, _, err := dep.AllocateDelta(st, delta); err == nil ||
		!strings.Contains(err.Error(), "exceeds capacity") {
		t.Errorf("err = %v, want hose violation", err)
	}
	if len(st.Allocation().Fibers) != 0 {
		t.Error("rejected delta mutated the state")
	}
}

func TestAllocateDeltaRejectsUnplannedPair(t *testing.T) {
	dep := genDeployment(t, 3, 5)
	dcs := dep.Region.Map.DCs()
	st, err := dep.AllocateState(traffic.NewMatrix(dcs))
	if err != nil {
		t.Fatal(err)
	}
	p := hose.Pair{A: dcs[0], B: dcs[1]}.Canonical()
	delete(dep.Plan.Paths, p)
	delta := traffic.NewDelta()
	delta.Set(p, 10)
	if _, _, err := dep.AllocateDelta(st, delta); err == nil ||
		!strings.Contains(err.Error(), "no planned path") {
		t.Errorf("err = %v, want unplanned-pair rejection", err)
	}
}

func TestAllocateDeltaNoOp(t *testing.T) {
	dep := genDeployment(t, 2, 5)
	dcs := dep.Region.Map.DCs()
	m := traffic.NewMatrix(dcs)
	p := hose.Pair{A: dcs[0], B: dcs[1]}
	m.Set(p, 50)
	st, err := dep.AllocateState(m)
	if err != nil {
		t.Fatal(err)
	}
	delta := traffic.NewDelta()
	delta.Set(p, 50) // same demand: normalizes away
	_, stats, err := dep.AllocateDelta(st, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Incremental || stats.PairsResolved != 0 || stats.DuctsTouched != 0 {
		t.Errorf("stats = %+v, want a recognized no-op", stats)
	}
	if _, stats, err = dep.AllocateDelta(st, traffic.NewDelta()); err != nil || stats.PairsResolved != 0 {
		t.Errorf("empty delta: stats %+v, err %v", stats, err)
	}
}

func TestAllocateDeltaForeignState(t *testing.T) {
	depA := genDeployment(t, 2, 5)
	depB := genDeployment(t, 3, 5)
	st, err := depA.AllocateState(traffic.NewMatrix(depA.Region.Map.DCs()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := depB.AllocateDelta(st, traffic.NewDelta()); err == nil {
		t.Error("state from another deployment was accepted")
	}
	if _, _, err := depB.AllocateDelta(nil, traffic.NewDelta()); err == nil {
		t.Error("nil state was accepted")
	}
}

func TestAllocateDeltaRevalidatesNeighbours(t *testing.T) {
	dep := genDeployment(t, 1, 8)
	dcs := dep.Region.Map.DCs()
	m := traffic.NewMatrix(dcs)
	for _, p := range m.Pairs() {
		m.Set(p, 30) // everyone holds circuits, so paths overlap on trunks
	}
	st, err := dep.AllocateState(m)
	if err != nil {
		t.Fatal(err)
	}
	delta := traffic.NewDelta()
	delta.Set(m.Pairs()[0], 130)
	_, stats, err := dep.AllocateDelta(st, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Incremental || stats.DuctsTouched == 0 {
		t.Fatalf("stats = %+v, want touched ducts", stats)
	}
	if stats.PairsRevalidated == 0 {
		t.Errorf("stats = %+v, want duct-sharing neighbours revalidated", stats)
	}
}
