package core

import (
	"iris/internal/cost"
	"iris/internal/plan"
	"iris/internal/traffic"
)

// Solver is a reusable planning engine: it owns an arena-backed planner
// workspace (plan.Planner), a pricing workspace (cost.Calc) and a
// Deployment it refills on every Solve, so a control loop that re-plans
// the same region — the daemon's converge loop, the robust envelope
// solver, the chaos auditor, the fleet scheduler — pays the allocation
// cost of planning once and then solves allocation-free.
//
// The Deployment returned by Solve aliases the Solver's workspace and is
// overwritten by the next Solve call; callers that need a result to
// outlive the next solve must use the package-level Plan, which wraps a
// throwaway Solver. A Solver is not safe for concurrent use — use one
// per goroutine (PlanMany does).
type Solver struct {
	opts    Options
	planner *plan.Planner
	calc    cost.Calc
	dep     Deployment
}

// NewSolver returns a Solver with the given options. A zero Prices
// catalog selects the paper's §3.3 defaults, matching Plan.
func NewSolver(opts Options) *Solver {
	if opts.Prices == (cost.Catalog{}) {
		opts.Prices = cost.Default()
	}
	return &Solver{opts: opts, planner: plan.NewPlanner()}
}

// Solve plans a region end to end into the Solver's workspace. Repeated
// calls on an unchanged region (same Map, Capacity values, MaxFailures)
// reuse every internal slab and perform no steady-state heap allocation;
// a changed region transparently rebuilds the workspace. See Solver for
// the result's lifetime.
func (s *Solver) Solve(region Region) (*Deployment, error) {
	pl, err := s.planner.Plan(plan.Input{
		Map:         region.Map,
		Capacity:    region.Capacity,
		Lambda:      region.Lambda,
		MaxFailures: s.opts.MaxFailures,
		Span:        s.opts.Span,
	})
	if err != nil {
		return nil, err
	}
	s.dep.Region = region
	s.dep.Plan = pl
	s.dep.Iris = s.calc.Iris(pl, s.opts.Prices)
	s.dep.EPS = s.calc.EPS(pl, s.opts.Prices)
	s.dep.Hybrid = s.calc.Hybrid(pl, s.opts.Prices)
	return &s.dep, nil
}

// SolveDelta applies a traffic delta to an allocation state derived from
// this Solver's current Deployment (via Deployment.AllocateState). It is
// Deployment.AllocateDelta surfaced on the Solver so a converge loop can
// drive planning and incremental allocation through one handle.
func (s *Solver) SolveDelta(st *AllocState, delta traffic.Delta) (Undo, DeltaStats, error) {
	return s.dep.AllocateDelta(st, delta)
}
