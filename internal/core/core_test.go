package core

import (
	"math/rand"
	"strings"
	"testing"

	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/traffic"
)

func toyRegion() (Region, *fibermap.ToyRegion) {
	r := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range r.Map.DCs() {
		caps[dc] = 10
	}
	return Region{Map: r.Map, Capacity: caps, Lambda: 40}, r
}

func TestPlanToyDeployment(t *testing.T) {
	region, _ := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Plan == nil {
		t.Fatal("nil plan")
	}
	ratio := dep.EPS.Total() / dep.Iris.Total()
	if ratio < 2.5 || ratio > 2.9 {
		t.Errorf("EPS/Iris = %.2f, want ≈2.7 (§3.4)", ratio)
	}
	if dep.Hybrid.Total() > dep.Iris.Total() {
		t.Errorf("hybrid %v should not exceed iris %v", dep.Hybrid.Total(), dep.Iris.Total())
	}
}

func TestPlanPropagatesErrors(t *testing.T) {
	if _, err := Plan(Region{}, Options{}); err == nil {
		t.Error("expected error for empty region")
	}
}

func TestAllocateExactFibers(t *testing.T) {
	region, r := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewMatrix(region.Map.DCs())
	// 100 wavelengths = 2 full fibers (λ=40) + 20 residual wavelengths.
	m.Set(hose.Pair{A: r.DC1, B: r.DC3}, 100)
	// Exactly 2 fibers, no residual.
	m.Set(hose.Pair{A: r.DC1, B: r.DC2}, 80)

	alloc, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	p13 := hose.Pair{A: r.DC1, B: r.DC3}
	if alloc.FibersFor(p13) != 2 || alloc.ResidualFor(p13) != 20 {
		t.Errorf("DC1-DC3: %d fibers + %d residual, want 2 + 20",
			alloc.FibersFor(p13), alloc.ResidualFor(p13))
	}
	p12 := hose.Pair{A: r.DC1, B: r.DC2}
	if alloc.FibersFor(p12) != 2 || alloc.ResidualFor(p12) != 0 {
		t.Errorf("DC1-DC2: %d fibers + %d residual, want 2 + 0",
			alloc.FibersFor(p12), alloc.ResidualFor(p12))
	}
}

func TestAllocateRejectsHoseViolation(t *testing.T) {
	region, r := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewMatrix(region.Map.DCs())
	// DC1's capacity is 10×40 = 400 wavelengths; 300+300 = 600 exceeds it.
	m.Set(hose.Pair{A: r.DC1, B: r.DC2}, 300)
	m.Set(hose.Pair{A: r.DC1, B: r.DC3}, 300)
	if _, err := dep.Allocate(m); err == nil || !strings.Contains(err.Error(), "exceeds capacity") {
		t.Errorf("err = %v, want hose violation", err)
	}
}

func TestAllocateWorstCaseMatrixFits(t *testing.T) {
	// Property: any hose-feasible matrix must be allocatable on the
	// provisioned plan — the §4.3 provisioning guarantee.
	region, _ := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	dcs := region.Map.DCs()
	caps := make(map[int]float64)
	for _, dc := range dcs {
		caps[dc] = float64(region.Capacity[dc] * region.Lambda)
	}
	for trial := 0; trial < 200; trial++ {
		m := traffic.NewMatrix(dcs)
		for _, p := range m.Pairs() {
			m.Set(p, float64(rng.Intn(400)))
		}
		m.ClampToHose(caps)
		// Integerize demands (wavelengths).
		for _, p := range m.Pairs() {
			m.Set(p, float64(int(m.Get(p))))
		}
		if _, err := dep.Allocate(m); err != nil {
			t.Fatalf("trial %d: hose-feasible matrix rejected: %v", trial, err)
		}
	}
}

func TestDiff(t *testing.T) {
	p12 := hose.Pair{A: 1, B: 2}
	p13 := hose.Pair{A: 1, B: 3}
	p23 := hose.Pair{A: 2, B: 3}
	oldA := Allocation{
		Fibers:   map[hose.Pair]int{p12: 4, p13: 2, p23: 1},
		Residual: map[hose.Pair]int{p12: 0, p13: 10, p23: 0},
	}
	newA := Allocation{
		Fibers:   map[hose.Pair]int{p12: 4, p13: 3, p23: 0},
		Residual: map[hose.Pair]int{p12: 5, p13: 0, p23: 39},
	}
	moves := Diff(oldA, newA)
	if len(moves) != 2 {
		t.Fatalf("moves = %+v, want 2 (p12 residual-only change is free)", moves)
	}
	// Growth attaches idle fibers: no live capacity is affected.
	if moves[0].Pair != p13 || moves[0].FibersDelta != 1 || moves[0].FracAffected != 0 {
		t.Errorf("move[0] = %+v", moves[0])
	}
	// Shrink drains the torn-down circuit: its share of capacity dims.
	if moves[1].Pair != p23 || moves[1].FibersDelta != -1 || moves[1].FracAffected != 1 {
		t.Errorf("move[1] = %+v", moves[1])
	}
}

func TestDiffFromEmpty(t *testing.T) {
	p := hose.Pair{A: 1, B: 2}
	moves := Diff(Allocation{}, Allocation{Fibers: map[hose.Pair]int{p: 3}})
	if len(moves) != 1 || moves[0].FibersDelta != 3 || moves[0].FracAffected != 0 {
		t.Errorf("moves = %+v (initial establishment drains nothing)", moves)
	}
}

func TestGeneratedRegionEndToEnd(t *testing.T) {
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = 5
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = 5, 6
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 8
	}
	dep, err := Plan(Region{Map: m, Capacity: caps, Lambda: 40}, Options{MaxFailures: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 12 shape on a single region: EPS costs several times Iris.
	ratio := dep.EPS.Total() / dep.Iris.Total()
	if ratio < 1.5 {
		t.Errorf("EPS/Iris = %.2f; expected a clear Iris advantage", ratio)
	}
	// A moderate uniform matrix allocates cleanly.
	tm := traffic.NewMatrix(dcs)
	for _, p := range tm.Pairs() {
		tm.Set(p, 40)
	}
	if _, err := dep.Allocate(tm); err != nil {
		t.Errorf("uniform matrix rejected: %v", err)
	}
}

func TestAllocateRejectsUnderProvisionedDuct(t *testing.T) {
	// White-box: damage the plan to simulate a stale deployment whose
	// ducts no longer cover the demand; Allocate must refuse rather than
	// oversubscribe fibers.
	region, r := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := traffic.NewMatrix(region.Map.DCs())
	m.Set(hose.Pair{A: r.DC1, B: r.DC2}, 80) // 2 full fibers via L1, L2

	var accessDuct int
	info := dep.Plan.Paths[hose.Pair{A: r.DC1, B: r.DC2}]
	accessDuct = info.Ducts[0]

	saved := dep.Plan.Ducts[accessDuct].BasePairs
	dep.Plan.Ducts[accessDuct].BasePairs = 1
	if _, err := dep.Allocate(m); err == nil || !strings.Contains(err.Error(), "full fibers") {
		t.Errorf("err = %v, want under-provisioned duct rejection", err)
	}
	dep.Plan.Ducts[accessDuct].BasePairs = saved

	savedRes := dep.Plan.Ducts[accessDuct].ResidualPairs
	dep.Plan.Ducts[accessDuct].ResidualPairs = 0
	m.Set(hose.Pair{A: r.DC1, B: r.DC2}, 30) // residual-only demand
	if _, err := dep.Allocate(m); err == nil || !strings.Contains(err.Error(), "residual") {
		t.Errorf("err = %v, want residual rejection", err)
	}
	dep.Plan.Ducts[accessDuct].ResidualPairs = savedRes
}

func TestAllocateRejectsUnplannedPair(t *testing.T) {
	region, r := toyRegion()
	dep, err := Plan(region, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Remove a pair's path to simulate an out-of-date plan.
	p := hose.Pair{A: r.DC1, B: r.DC4}
	delete(dep.Plan.Paths, p)
	m := traffic.NewMatrix(region.Map.DCs())
	m.Set(p, 10)
	if _, err := dep.Allocate(m); err == nil || !strings.Contains(err.Error(), "no planned path") {
		t.Errorf("err = %v, want unplanned-pair rejection", err)
	}
}

func TestPlanManyMatchesPlan(t *testing.T) {
	var regions []Region
	for seed := int64(1); seed <= 3; seed++ {
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = seed
		m := fibermap.Generate(gcfg)
		pcfg := fibermap.DefaultPlace()
		pcfg.Seed, pcfg.N = seed+1, 5
		placed, err := fibermap.PlaceDCs(m, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		caps := make(map[int]int, len(placed))
		for _, dc := range placed {
			caps[dc] = 8
		}
		regions = append(regions, Region{Map: m, Capacity: caps, Lambda: 40})
	}

	opts := Options{MaxFailures: 1, Parallelism: 3}
	deps, err := PlanMany(regions, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != len(regions) {
		t.Fatalf("deps = %d, want %d", len(deps), len(regions))
	}
	for i, region := range regions {
		want, err := Plan(region, opts)
		if err != nil {
			t.Fatal(err)
		}
		if deps[i] == nil || deps[i].Iris.Total() != want.Iris.Total() ||
			deps[i].EPS.Total() != want.EPS.Total() ||
			deps[i].Plan.TotalFiberPairs() != want.Plan.TotalFiberPairs() {
			t.Errorf("region %d: parallel deployment differs from serial Plan", i)
		}
	}
}

func TestPlanManyNamesFailingRegion(t *testing.T) {
	good, _ := toyRegion()
	bad := good
	bad.Lambda = -1
	if _, err := PlanMany([]Region{good, bad}, Options{Parallelism: 2}); err == nil ||
		!strings.Contains(err.Error(), "region 1") {
		t.Fatalf("err = %v, want it to name region 1", err)
	}
}

func TestAllocationEqual(t *testing.T) {
	p := hose.Pair{A: 1, B: 2}
	q := hose.Pair{A: 1, B: 3}
	a := Allocation{
		Fibers:   map[hose.Pair]int{p: 2},
		Residual: map[hose.Pair]int{q: 7},
	}
	b := Allocation{
		// An explicit zero entry is the same as an absent one.
		Fibers:   map[hose.Pair]int{p: 2, q: 0},
		Residual: map[hose.Pair]int{q: 7},
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Errorf("allocations with equivalent entries compare unequal")
	}
	b.Fibers[q] = 1
	if a.Equal(b) {
		t.Errorf("allocations with different fibers compare equal")
	}
	delete(b.Fibers, q)
	b.Residual[p] = 3
	if a.Equal(b) {
		t.Errorf("allocations with different residuals compare equal")
	}
}
