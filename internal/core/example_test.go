package core_test

import (
	"fmt"
	"log"

	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/traffic"
)

// Example plans the paper's Fig. 10 toy region, allocates circuits for a
// traffic matrix, and shows what a traffic shift would reconfigure.
func Example() {
	toy := fibermap.Toy()
	capacity := make(map[int]int)
	for _, dc := range toy.Map.DCs() {
		capacity[dc] = 10 // fiber-pairs: 160 Tbps at 400G × 40λ
	}
	dep, err := core.Plan(core.Region{Map: toy.Map, Capacity: capacity, Lambda: 40}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EPS/Iris cost ratio: %.1fx\n", dep.EPS.Total()/dep.Iris.Total())

	m := traffic.NewMatrix(toy.Map.DCs())
	m.Set(hose.Pair{A: toy.DC1, B: toy.DC3}, 100) // wavelengths
	alloc, err := dep.Allocate(m)
	if err != nil {
		log.Fatal(err)
	}
	p := hose.Pair{A: toy.DC1, B: toy.DC3}
	fmt.Printf("DC1-DC3: %d full fibers + %d residual wavelengths\n",
		alloc.FibersFor(p), alloc.ResidualFor(p))

	m.Set(p, 150)
	alloc2, _ := dep.Allocate(m)
	moves := core.Diff(alloc, alloc2)
	fmt.Printf("after the shift: %d circuit move(s)\n", len(moves))
	// Output:
	// EPS/Iris cost ratio: 2.7x
	// DC1-DC3: 2 full fibers + 20 residual wavelengths
	// after the shift: 1 circuit move(s)
}
