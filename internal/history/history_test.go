package history

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"iris/internal/core"
	"iris/internal/telemetry"
	"iris/internal/trace"
)

func mustLake(t *testing.T, cfg Config) *Lake {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func rec(id uint64) Record {
	return Record{
		ReconfigID: id,
		Trigger:    TriggerConverge,
		At:         time.Unix(int64(id), 0).UTC(),
		Duration:   time.Duration(id) * time.Millisecond,
		Pairs:      []core.PairDelta{{A: 2, B: 3, NewFibers: int(id)}},
		Ducts:      []core.DuctDelta{{Duct: 0, Fibers: int(id)}},
		Spans:      []trace.Event{{TraceID: id, SpanID: id, Name: "reconfigure"}},
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	l := mustLake(t, Config{Capacity: 16})
	seq := l.Append(rec(42))
	if seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	got, ok := l.Get(42)
	if !ok {
		t.Fatal("Get(42) missing")
	}
	if got.Seq != 1 || got.ReconfigID != 42 || got.Trigger != TriggerConverge || len(got.Pairs) != 1 {
		t.Fatalf("got %+v", got)
	}
	if _, ok := l.Get(43); ok {
		t.Fatal("Get(43) should miss")
	}
}

func TestNilLakeIsSafeForReads(t *testing.T) {
	var l *Lake
	if _, ok := l.Get(1); ok {
		t.Fatal("nil Get")
	}
	if l.Records() != nil || l.Len() != 0 || l.Evicted() != 0 {
		t.Fatal("nil lake reads should be empty")
	}
}

func TestRecordsSeqOrdered(t *testing.T) {
	l := mustLake(t, Config{Capacity: 64})
	for id := uint64(1); id <= 20; id++ {
		l.Append(rec(id))
	}
	recs := l.Records()
	if len(recs) != 20 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestBoundedEviction(t *testing.T) {
	l := mustLake(t, Config{Capacity: 16})
	for id := uint64(1); id <= 100; id++ {
		l.Append(rec(id))
	}
	if got := l.Len(); got != 16 {
		t.Fatalf("Len = %d, want capacity 16", got)
	}
	if l.Evicted() != 100-16 {
		t.Fatalf("Evicted = %d, want 84", l.Evicted())
	}
	// Oldest per shard are gone, newest retained; ring and index agree.
	if _, ok := l.Get(1); ok {
		t.Fatal("record 1 should be evicted")
	}
	for _, r := range l.Records() {
		got, ok := l.Get(r.ReconfigID)
		if !ok || got.Seq != r.Seq {
			t.Fatalf("index out of sync for id %d", r.ReconfigID)
		}
	}
}

func TestSummaries(t *testing.T) {
	l := mustLake(t, Config{Capacity: 64})
	for id := uint64(1); id <= 10; id++ {
		l.Append(rec(id))
	}
	s := l.Summaries(3)
	if len(s) != 3 || s[0].Seq != 8 || s[2].Seq != 10 {
		t.Fatalf("Summaries(3) = %+v", s)
	}
	if s[0].PairsChanged != 1 || s[0].DuctsTouched != 1 || s[0].Spans != 1 {
		t.Fatalf("summary counts: %+v", s[0])
	}
	if got := l.Summaries(0); len(got) != 10 {
		t.Fatalf("Summaries(0) = %d rows", len(got))
	}
}

func TestPersistenceReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	l1 := mustLake(t, Config{Capacity: 32, Path: path})
	for id := uint64(1); id <= 5; id++ {
		l1.Append(rec(id))
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustLake(t, Config{Capacity: 32, Path: path})
	if l2.Len() != 5 {
		t.Fatalf("replayed %d records, want 5", l2.Len())
	}
	got, ok := l2.Get(3)
	if !ok || got.Seq != 3 || len(got.Spans) != 1 {
		t.Fatalf("replayed record 3 = %+v ok=%v", got, ok)
	}
	// The seq counter resumes past the replayed tail.
	if seq := l2.Append(rec(6)); seq != 6 {
		t.Fatalf("post-replay seq = %d, want 6", seq)
	}
}

func TestPersistenceReplayBoundedByCapacity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	l1 := mustLake(t, Config{Capacity: 128, Path: path})
	for id := uint64(1); id <= 50; id++ {
		l1.Append(rec(id))
	}
	l1.Close()

	l2 := mustLake(t, Config{Capacity: 8, Path: path})
	if l2.Len() != 8 {
		t.Fatalf("replayed %d, want 8 (capacity)", l2.Len())
	}
	if _, ok := l2.Get(50); !ok {
		t.Fatal("newest record should survive bounded replay")
	}
}

func TestPersistenceSurvivesCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	l1 := mustLake(t, Config{Capacity: 32, Path: path})
	l1.Append(rec(1))
	l1.Append(rec(2))
	l1.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq": 3, "reconfig_id":`) // torn write
	f.Close()

	l2 := mustLake(t, Config{Capacity: 32, Path: path})
	if l2.Len() != 2 {
		t.Fatalf("replayed %d, want the 2 intact records", l2.Len())
	}
	// Appending after a torn tail still works.
	l2.Append(rec(7))
	if _, ok := l2.Get(7); !ok {
		t.Fatal("append after corrupt replay failed")
	}
}

func TestMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, err := New(Config{Capacity: 8, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 12; id++ {
		l.Append(rec(id))
	}
	if c := reg.LookupCounter("iris_history_appends_total"); c == nil || c.Value() != 12 {
		t.Fatalf("appends counter: %v", c)
	}
	if c := reg.LookupCounter("iris_history_evictions_total"); c == nil || c.Value() != 4 {
		t.Fatalf("evictions counter: %v", c)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	l := mustLake(t, Config{Capacity: 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Append(rec(uint64(w*1000 + i + 1)))
				if i%10 == 0 {
					l.Records()
					l.Summaries(5)
					l.Get(uint64(w*1000 + i))
				}
			}
		}()
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Fatalf("Len = %d", l.Len())
	}
	recs := l.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatal("Records not strictly seq-ordered")
		}
	}
}

// BenchmarkHistoryAppend pins the acceptance bound: appending to a full
// lake (steady-state, every append evicting) stays O(1) with at most one
// allocation per record.
func BenchmarkHistoryAppend(b *testing.B) {
	l, err := New(Config{Capacity: 256})
	if err != nil {
		b.Fatal(err)
	}
	r := rec(1)
	id := uint64(0)
	work := func() {
		id++
		r.ReconfigID = id
		l.Append(r)
	}
	for i := 0; i < 4096; i++ {
		work() // reach steady state: lake full, map sized
	}
	if allocs := testing.AllocsPerRun(1000, work); allocs > 1 {
		b.Fatalf("history append allocates %.1f times per record, budget 1", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work()
	}
}
