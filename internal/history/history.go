// Package history is the reconfiguration history lake: an append-only,
// bounded store of every committed reconfiguration a region performs.
// Where the trace flight recorder answers "which phase of reconfig #42
// was slow" until the ring forgets, the lake answers the operator's
// time-travel questions — what did the region look like before shift
// #1234, what changed, did health degrade — by capturing each reconfig
// as one self-contained Record: trigger, span tree, allocation diff
// (pair and duct granularity), and pre/post health + hose aggregates.
//
// Appends are O(1) and allocation-free at steady state: records land in
// pre-allocated per-shard rings, the oldest record of a full shard is
// overwritten in place, and the ID index reuses its map storage. Reads
// lock one shard (Get) or snapshot each shard in turn (Records), never
// the whole lake at once. With a Path configured, every record is also
// written as one JSON line, and a new lake replays the tail of that file
// so history survives a daemon restart.
package history

import (
	"bufio"
	"encoding/json"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iris/internal/core"
	"iris/internal/telemetry"
	"iris/internal/trace"
)

// Trigger says which control-plane path committed a reconfiguration.
type Trigger string

const (
	// TriggerConverge is the daemon's steady-state converge loop reacting
	// to a traffic shift.
	TriggerConverge Trigger = "converge"
	// TriggerRepair is a health-driven repair pass.
	TriggerRepair Trigger = "repair"
	// TriggerChaos is a chaos-cycle (inject → heal → replan → settle).
	TriggerChaos Trigger = "chaos-cycle"
	// TriggerEnvelopeEscape is a robust-mode re-plan: the live demand
	// left the committed envelope and a new envelope was solved.
	TriggerEnvelopeEscape Trigger = "envelope-escape"
)

// Health is the control-plane health snapshot bracketing a record.
type Health struct {
	Healthy    bool `json:"healthy"`
	Converged  bool `json:"converged"`
	NeedRepair bool `json:"need_repair"`
}

// HoseAggregate summarizes the demand matrix a reconfiguration served:
// total wavelengths, the largest single pair, and the pair count.
type HoseAggregate struct {
	Total   float64 `json:"total"`
	MaxPair float64 `json:"max_pair"`
	Pairs   int     `json:"pairs"`
}

// Record is one committed reconfiguration. Seq is assigned by the lake
// at append time and totally orders records; ReconfigID is the trace ID
// the control plane threaded through the operation, so the record joins
// against /debug/events and /status.LastReconfigID.
type Record struct {
	Seq        uint64        `json:"seq"`
	ReconfigID uint64        `json:"reconfig_id"`
	Trigger    Trigger       `json:"trigger"`
	At         time.Time     `json:"at"`
	Duration   time.Duration `json:"duration_ns"`
	Err        string        `json:"error,omitempty"`
	PreHealth  Health        `json:"pre_health"`
	PostHealth Health        `json:"post_health"`
	PreHose    HoseAggregate `json:"pre_hose"`
	PostHose   HoseAggregate `json:"post_hose"`
	// Pairs is the allocation diff: absolute before/after circuits per
	// changed DC pair, composable in Seq order (core.ApplyDeltas).
	Pairs []core.PairDelta `json:"pairs,omitempty"`
	// Ducts projects the pair diff onto physical duct occupancy.
	Ducts []core.DuctDelta `json:"ducts,omitempty"`
	// Spans is the record's slice of the flight recorder: every event of
	// the reconfig's trace, captured before the ring forgets them.
	Spans []trace.Event `json:"spans,omitempty"`
}

// Summary is a Record with the heavy payloads reduced to counts — what
// a history listing shows per row.
type Summary struct {
	Seq          uint64        `json:"seq"`
	ReconfigID   uint64        `json:"reconfig_id"`
	Trigger      Trigger       `json:"trigger"`
	At           time.Time     `json:"at"`
	Duration     time.Duration `json:"duration_ns"`
	Err          string        `json:"error,omitempty"`
	PreHealth    Health        `json:"pre_health"`
	PostHealth   Health        `json:"post_health"`
	PreHose      HoseAggregate `json:"pre_hose"`
	PostHose     HoseAggregate `json:"post_hose"`
	PairsChanged int           `json:"pairs_changed"`
	DuctsTouched int           `json:"ducts_touched"`
	Spans        int           `json:"spans"`
}

// Summarize reduces the record to its listing row.
func (r Record) Summarize() Summary {
	return Summary{
		Seq:        r.Seq,
		ReconfigID: r.ReconfigID,
		Trigger:    r.Trigger,
		At:         r.At,
		Duration:   r.Duration,
		Err:        r.Err,
		PreHealth:  r.PreHealth, PostHealth: r.PostHealth,
		PreHose: r.PreHose, PostHose: r.PostHose,
		PairsChanged: len(r.Pairs),
		DuctsTouched: len(r.Ducts),
		Spans:        len(r.Spans),
	}
}

// shardCount must be a power of two; records are spread by ReconfigID so
// concurrent emitters (converge loop, chaos cycle, fleet regions sharing
// a lake in tests) rarely contend on one mutex.
const shardCount = 8

type shard struct {
	mu   sync.Mutex
	buf  []Record
	idx  map[uint64]int // reconfig ID -> slot
	next int
	n    int
}

// Config configures a Lake.
type Config struct {
	// Capacity bounds the number of retained records; non-positive
	// selects 512. The effective capacity is rounded up to a multiple of
	// the internal shard count.
	Capacity int
	// Path, when non-empty, enables JSONL persistence: appends are
	// mirrored to the file and New replays its tail on open.
	Path string
	// Registry receives the lake's iris_history_* metrics; nil disables
	// them.
	Registry *telemetry.Registry
}

// Lake is the history store. All methods are safe for concurrent use.
type Lake struct {
	shards [shardCount]shard
	seq    atomic.Uint64

	fileMu sync.Mutex
	file   *os.File

	appends    *telemetry.Counter
	evictions  *telemetry.Counter
	persistErr *telemetry.Counter
	replayed   *telemetry.Counter
	records    *telemetry.Gauge
}

// New opens a lake. With a Path configured it replays the file's tail
// (up to Capacity records, resuming the Seq counter past the highest
// replayed value) and keeps the file open for appends; replay problems
// are not fatal — a truncated line ends the replay and appending
// continues on the same file.
func New(cfg Config) (*Lake, error) {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 512
	}
	per := (capacity + shardCount - 1) / shardCount
	l := &Lake{}
	for i := range l.shards {
		l.shards[i].buf = make([]Record, per)
		l.shards[i].idx = make(map[uint64]int, per)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	l.appends = reg.Counter("iris_history_appends_total", "Reconfiguration records appended to the history lake.")
	l.evictions = reg.Counter("iris_history_evictions_total", "History records evicted by the bounded ring.")
	l.persistErr = reg.Counter("iris_history_persist_errors_total", "Failed JSONL persistence writes.")
	l.replayed = reg.Counter("iris_history_replayed_total", "Records replayed from the JSONL file at open.")
	l.records = reg.Gauge("iris_history_records", "Records currently retained in the history lake.")

	if cfg.Path != "" {
		l.replay(cfg.Path, capacity)
		f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.file = f
	}
	return l, nil
}

// replay loads the tail of a JSONL file into the rings. Records keep
// their persisted Seq; the lake's counter resumes past the maximum so
// new appends sort after everything replayed.
func (l *Lake) replay(path string, capacity int) {
	f, err := os.Open(path)
	if err != nil {
		return // first run: nothing to replay
	}
	defer f.Close()
	var tail []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // truncated or corrupt tail: keep what parsed
		}
		tail = append(tail, rec)
		if len(tail) > capacity {
			tail = tail[1:]
		}
	}
	var maxSeq uint64
	for _, rec := range tail {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		l.insert(rec)
		l.replayed.Inc()
	}
	if cur := l.seq.Load(); maxSeq > cur {
		l.seq.Store(maxSeq)
	}
	l.records.Set(float64(l.Len()))
}

// Append stores one record, assigning its Seq, and returns it. The hot
// path is a struct copy into a pre-allocated ring slot under one shard
// mutex — O(1), allocation-free at steady state. With persistence
// enabled the record is also written as one JSON line (failures count in
// iris_history_persist_errors_total and do not affect the in-memory
// append).
func (l *Lake) Append(rec Record) uint64 {
	rec.Seq = l.seq.Add(1)
	l.insert(rec)
	l.appends.Inc()
	l.records.Set(float64(l.Len()))
	if l.file != nil {
		l.persist(rec)
	}
	return rec.Seq
}

// insert places a record into its shard's ring, evicting the slot's
// previous occupant from the ID index when the ring is full.
func (l *Lake) insert(rec Record) {
	sh := &l.shards[rec.ReconfigID&(shardCount-1)]
	sh.mu.Lock()
	if sh.n == len(sh.buf) {
		delete(sh.idx, sh.buf[sh.next].ReconfigID)
		l.evictions.Inc()
	}
	sh.buf[sh.next] = rec
	sh.idx[rec.ReconfigID] = sh.next
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next = 0
	}
	if sh.n < len(sh.buf) {
		sh.n++
	}
	sh.mu.Unlock()
}

func (l *Lake) persist(rec Record) {
	b, err := json.Marshal(rec)
	if err != nil {
		l.persistErr.Inc()
		return
	}
	b = append(b, '\n')
	l.fileMu.Lock()
	_, err = l.file.Write(b)
	l.fileMu.Unlock()
	if err != nil {
		l.persistErr.Inc()
	}
}

// Close flushes and closes the persistence file, if any.
func (l *Lake) Close() error {
	if l == nil || l.file == nil {
		return nil
	}
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	err := l.file.Close()
	l.file = nil
	return err
}

// Get returns the record for a reconfig ID, locking only that ID's
// shard.
func (l *Lake) Get(id uint64) (Record, bool) {
	if l == nil {
		return Record{}, false
	}
	sh := &l.shards[id&(shardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.idx[id]
	if !ok {
		return Record{}, false
	}
	return sh.buf[slot], true
}

// Records snapshots every retained record in Seq order. Shards are
// locked one at a time, so a snapshot never blocks appends to other
// shards.
func (l *Lake) Records() []Record {
	if l == nil {
		return nil
	}
	out := make([]Record, 0, l.Len())
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for j := 0; j < sh.n; j++ {
			out = append(out, sh.buf[j])
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Summaries returns the most recent n records (all of them when n <= 0)
// as listing rows, in ascending Seq order.
func (l *Lake) Summaries(n int) []Summary {
	recs := l.Records()
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	out := make([]Summary, len(recs))
	for i, r := range recs {
		out[i] = r.Summarize()
	}
	return out
}

// Len returns the number of retained records.
func (l *Lake) Len() int {
	if l == nil {
		return 0
	}
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += sh.n
		sh.mu.Unlock()
	}
	return n
}

// Evicted returns how many records the bounded ring has dropped.
func (l *Lake) Evicted() int {
	if l == nil {
		return 0
	}
	return int(l.evictions.Value())
}
