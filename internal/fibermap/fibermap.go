// Package fibermap models the physical input to regional DCI planning: the
// metro fiber map (data centers, fiber huts, and the fiber ducts between
// them) described in §2 of the paper. It also provides a synthetic region
// generator standing in for the proprietary Azure fiber maps, and the
// paper's randomized data-center placement procedure (§6.1).
//
// Distances are kilometres of fiber. Ducts are treated as offering
// unbounded leaseable fiber counts, per standard industry practice noted in
// the paper; how many fibers are actually leased on each duct is the
// planner's output, not part of this package.
package fibermap

import (
	"fmt"
	"math"

	"iris/internal/geo"
	"iris/internal/graph"
)

// NodeKind distinguishes the two kinds of fiber-map nodes.
type NodeKind int

const (
	// Hut is an intermediate node housing switching equipment and
	// amplifiers. Huts may be promoted to hubs by a centralized design.
	Hut NodeKind = iota
	// DC is a data center: a traffic source and sink with known capacity.
	DC
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Hut:
		return "hut"
	case DC:
		return "dc"
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// Node is a location on the fiber map.
type Node struct {
	ID   int
	Kind NodeKind
	Pos  geo.Point
	Name string
}

// Duct is a fiber duct between two nodes. FiberKM is the length of fiber a
// lease in this duct traverses, which exceeds the straight-line distance by
// the road factor.
type Duct struct {
	ID      int
	A, B    int
	FiberKM float64
}

// Map is a region's fiber map. Node IDs are dense indices into Nodes and
// duct IDs dense indices into Ducts; both are stable for the lifetime of
// the map.
type Map struct {
	Nodes []Node
	Ducts []Duct
}

// AddNode appends a node and returns its ID.
func (m *Map) AddNode(kind NodeKind, pos geo.Point, name string) int {
	id := len(m.Nodes)
	if name == "" {
		name = fmt.Sprintf("%s%d", kind, id)
	}
	m.Nodes = append(m.Nodes, Node{ID: id, Kind: kind, Pos: pos, Name: name})
	return id
}

// AddDuct appends a duct between nodes a and b with the given fiber length
// and returns its ID. It panics on invalid endpoints or length, which are
// programming errors in map construction.
func (m *Map) AddDuct(a, b int, fiberKM float64) int {
	if a < 0 || a >= len(m.Nodes) || b < 0 || b >= len(m.Nodes) || a == b {
		panic(fmt.Sprintf("fibermap: invalid duct endpoints (%d,%d)", a, b))
	}
	if fiberKM <= 0 || math.IsNaN(fiberKM) {
		panic(fmt.Sprintf("fibermap: invalid duct length %v", fiberKM))
	}
	id := len(m.Ducts)
	m.Ducts = append(m.Ducts, Duct{ID: id, A: a, B: b, FiberKM: fiberKM})
	return id
}

// DCs returns the IDs of all data-center nodes, in ID order.
func (m *Map) DCs() []int {
	var ids []int
	for _, n := range m.Nodes {
		if n.Kind == DC {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Huts returns the IDs of all hut nodes, in ID order.
func (m *Map) Huts() []int {
	var ids []int
	for _, n := range m.Nodes {
		if n.Kind == Hut {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Graph returns the fiber map as a weighted graph whose edge IDs are duct
// IDs and weights are fiber kilometres.
func (m *Map) Graph() *graph.Graph {
	g := graph.New(len(m.Nodes))
	for _, d := range m.Ducts {
		g.AddEdge(d.ID, d.A, d.B, d.FiberKM)
	}
	return g
}

// FiberDist returns the shortest fiber distance in km between two nodes,
// or +Inf if they are disconnected.
func (m *Map) FiberDist(a, b int) float64 {
	return m.Graph().Dijkstra(a).Dist[b]
}

// Clone returns a deep copy of the map, so experiments can extend a base
// map (e.g. attach a candidate DC) without mutating it.
func (m *Map) Clone() *Map {
	c := &Map{
		Nodes: append([]Node(nil), m.Nodes...),
		Ducts: append([]Duct(nil), m.Ducts...),
	}
	return c
}

// Validate checks structural invariants: dense IDs, valid endpoints, a
// connected duct graph. It returns an error describing the first violation.
func (m *Map) Validate() error {
	for i, n := range m.Nodes {
		if n.ID != i {
			return fmt.Errorf("fibermap: node %d has ID %d", i, n.ID)
		}
	}
	for i, d := range m.Ducts {
		if d.ID != i {
			return fmt.Errorf("fibermap: duct %d has ID %d", i, d.ID)
		}
		if d.A < 0 || d.A >= len(m.Nodes) || d.B < 0 || d.B >= len(m.Nodes) {
			return fmt.Errorf("fibermap: duct %d endpoints (%d,%d) out of range", i, d.A, d.B)
		}
		if d.FiberKM <= 0 {
			return fmt.Errorf("fibermap: duct %d has non-positive length %v", i, d.FiberKM)
		}
	}
	if len(m.Nodes) > 1 {
		labels := m.Graph().Components()
		for _, l := range labels {
			if l != 0 {
				return fmt.Errorf("fibermap: duct graph is disconnected")
			}
		}
	}
	return nil
}
