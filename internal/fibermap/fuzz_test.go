package fibermap

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks that the region decoder never panics and that any
// accepted document round-trips: run with `go test -fuzz=FuzzReadJSON
// ./internal/fibermap` to explore beyond the seed corpus.
func FuzzReadJSON(f *testing.F) {
	var toy bytes.Buffer
	if err := Toy().Map.WriteJSON(&toy); err != nil {
		f.Fatal(err)
	}
	f.Add(toy.String())
	f.Add(`{"version":1,"nodes":[],"ducts":[]}`)
	f.Add(`{"version":1,"nodes":[{"kind":"hut","x_km":0,"y_km":0,"name":"a"}],"ducts":[]}`)
	f.Add(`{}`)
	f.Add(``)
	f.Add(`[1,2,3]`)
	f.Add(strings.Repeat(`{"version":1,`, 50))

	f.Fuzz(func(t *testing.T, doc string) {
		m, err := ReadJSON(strings.NewReader(doc))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted documents must validate and round-trip.
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted map fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(m2.Nodes) != len(m.Nodes) || len(m2.Ducts) != len(m.Ducts) {
			t.Fatal("round-trip changed the map")
		}
	})
}
