package fibermap

import (
	"math"
	"testing"

	"iris/internal/geo"
)

func TestAddNodeAndDuct(t *testing.T) {
	m := &Map{}
	a := m.AddNode(Hut, geo.Point{X: 0, Y: 0}, "")
	b := m.AddNode(DC, geo.Point{X: 10, Y: 0}, "east")
	if a != 0 || b != 1 {
		t.Fatalf("IDs = %d, %d", a, b)
	}
	if m.Nodes[a].Name != "hut0" {
		t.Errorf("default name = %q", m.Nodes[a].Name)
	}
	if m.Nodes[b].Name != "east" {
		t.Errorf("explicit name = %q", m.Nodes[b].Name)
	}
	d := m.AddDuct(a, b, 14)
	if d != 0 || m.Ducts[0].FiberKM != 14 {
		t.Fatalf("duct = %+v", m.Ducts[0])
	}
}

func TestAddDuctValidation(t *testing.T) {
	m := &Map{}
	a := m.AddNode(Hut, geo.Point{}, "")
	b := m.AddNode(Hut, geo.Point{X: 1}, "")
	for name, fn := range map[string]func(){
		"self loop":       func() { m.AddDuct(a, a, 1) },
		"bad endpoint":    func() { m.AddDuct(a, 5, 1) },
		"zero length":     func() { m.AddDuct(a, b, 0) },
		"negative length": func() { m.AddDuct(a, b, -2) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestDCsAndHuts(t *testing.T) {
	r := Toy()
	dcs := r.Map.DCs()
	huts := r.Map.Huts()
	if len(dcs) != 4 || len(huts) != 2 {
		t.Fatalf("DCs=%v Huts=%v", dcs, huts)
	}
}

func TestNodeKindString(t *testing.T) {
	if Hut.String() != "hut" || DC.String() != "dc" {
		t.Error("NodeKind strings wrong")
	}
	if NodeKind(9).String() != "NodeKind(9)" {
		t.Errorf("unknown kind = %q", NodeKind(9).String())
	}
}

func TestToyDistances(t *testing.T) {
	r := Toy()
	// DC1-DC2 share hub A: 18+18 = 36 km.
	if d := r.Map.FiberDist(r.DC1, r.DC2); math.Abs(d-36) > 1e-9 {
		t.Errorf("DC1-DC2 = %v, want 36", d)
	}
	// DC1-DC3 cross the central duct: 18+40+18 = 76 km, within the SLA.
	if d := r.Map.FiberDist(r.DC1, r.DC3); math.Abs(d-76) > 1e-9 {
		t.Errorf("DC1-DC3 = %v, want 76", d)
	}
	if err := r.Map.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := Toy()
	c := r.Map.Clone()
	c.AddNode(DC, geo.Point{X: 99, Y: 99}, "extra")
	c.AddDuct(0, 1, 5)
	if len(r.Map.Nodes) != 6 || len(r.Map.Ducts) != 5 {
		t.Error("Clone mutated the original map")
	}
}

func TestValidateDetectsDisconnection(t *testing.T) {
	m := &Map{}
	m.AddNode(Hut, geo.Point{}, "")
	m.AddNode(Hut, geo.Point{X: 1}, "")
	if err := m.Validate(); err == nil {
		t.Error("expected disconnection error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGenConfig(3))
	b := Generate(DefaultGenConfig(3))
	if len(a.Nodes) != len(b.Nodes) || len(a.Ducts) != len(b.Ducts) {
		t.Fatal("same seed produced different maps")
	}
	for i := range a.Ducts {
		if a.Ducts[i] != b.Ducts[i] {
			t.Fatalf("duct %d differs: %+v vs %+v", i, a.Ducts[i], b.Ducts[i])
		}
	}
	c := Generate(DefaultGenConfig(4))
	same := len(a.Nodes) == len(c.Nodes)
	if same {
		same = false
		for i := range a.Nodes {
			if a.Nodes[i].Pos != c.Nodes[i].Pos {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical hut layouts")
	}
}

func TestGenerateStructure(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		m := Generate(DefaultGenConfig(seed))
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(m.Huts()) < 10 {
			t.Fatalf("seed %d: only %d huts", seed, len(m.Huts()))
		}
		if len(m.DCs()) != 0 {
			t.Fatalf("seed %d: generator must not place DCs", seed)
		}
		// Fiber lengths exceed Euclidean distance (road factor ≥ 1.2).
		for _, d := range m.Ducts {
			euclid := m.Nodes[d.A].Pos.Dist(m.Nodes[d.B].Pos)
			if d.FiberKM < euclid {
				t.Fatalf("seed %d: duct %d fiber %.2f shorter than Euclidean %.2f",
					seed, d.ID, d.FiberKM, euclid)
			}
		}
	}
}

func TestPlaceDCs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := Generate(DefaultGenConfig(seed))
		dcs, err := PlaceDCs(m, DefaultPlaceConfig(seed+100, 8))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(dcs) != 8 {
			t.Fatalf("seed %d: placed %d DCs", seed, len(dcs))
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// SLA: every DC pair within 120 km of fiber.
		g := m.Graph()
		for i, a := range dcs {
			dist := g.Dijkstra(a).Dist
			for _, b := range dcs[i+1:] {
				if dist[b] > 120+1e-9 {
					t.Errorf("seed %d: DC pair %d-%d at %.1f km exceeds SLA", seed, a, b, dist[b])
				}
			}
		}
		// Each DC has exactly two access ducts.
		for _, dc := range dcs {
			n := 0
			for _, d := range m.Ducts {
				if d.A == dc || d.B == dc {
					n++
				}
			}
			if n != 2 {
				t.Errorf("seed %d: DC %d has %d access ducts, want 2", seed, dc, n)
			}
		}
	}
}

func TestPlaceDCsDeterministic(t *testing.T) {
	m1 := Generate(DefaultGenConfig(9))
	m2 := Generate(DefaultGenConfig(9))
	d1, err1 := PlaceDCs(m1, DefaultPlaceConfig(5, 6))
	d2, err2 := PlaceDCs(m2, DefaultPlaceConfig(5, 6))
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	for i := range d1 {
		if m1.Nodes[d1[i]].Pos != m2.Nodes[d2[i]].Pos {
			t.Fatalf("DC %d placed differently across identical runs", i)
		}
	}
}

func TestPlaceDCsZero(t *testing.T) {
	m := Generate(DefaultGenConfig(1))
	dcs, err := PlaceDCs(m, DefaultPlaceConfig(1, 0))
	if err != nil || len(dcs) != 0 {
		t.Fatalf("PlaceDCs(0) = %v, %v", dcs, err)
	}
}

func TestChooseHubs(t *testing.T) {
	m := Generate(DefaultGenConfig(2))
	near1, near2 := ChooseHubs(m, 5)
	far1, far2 := ChooseHubs(m, 22)
	if near1 == near2 || far1 == far2 {
		t.Fatal("hubs must be distinct")
	}
	dNear := m.Nodes[near1].Pos.Dist(m.Nodes[near2].Pos)
	dFar := m.Nodes[far1].Pos.Dist(m.Nodes[far2].Pos)
	if dNear >= dFar {
		t.Errorf("near hubs %.1f km apart, far hubs %.1f km: expected near < far", dNear, dFar)
	}
}

func TestFiberDistDisconnected(t *testing.T) {
	m := &Map{}
	m.AddNode(Hut, geo.Point{}, "")
	m.AddNode(Hut, geo.Point{X: 1}, "")
	if d := m.FiberDist(0, 1); !math.IsInf(d, 1) {
		t.Errorf("FiberDist = %v, want +Inf", d)
	}
}
