package fibermap

import (
	"encoding/json"
	"fmt"
	"io"

	"iris/internal/geo"
)

// jsonMap is the on-disk region format: a versioned, self-describing JSON
// document, so planned regions can be exchanged between tools and checked
// into infrastructure repositories.
type jsonMap struct {
	Version int        `json:"version"`
	Nodes   []jsonNode `json:"nodes"`
	Ducts   []jsonDuct `json:"ducts"`
}

type jsonNode struct {
	Kind string  `json:"kind"` // "dc" or "hut"
	X    float64 `json:"x_km"`
	Y    float64 `json:"y_km"`
	Name string  `json:"name"`
}

type jsonDuct struct {
	A       int     `json:"a"`
	B       int     `json:"b"`
	FiberKM float64 `json:"fiber_km"`
}

// formatVersion is the current region-file version.
const formatVersion = 1

// WriteJSON serialises the map.
func (m *Map) WriteJSON(w io.Writer) error {
	doc := jsonMap{Version: formatVersion}
	for _, n := range m.Nodes {
		doc.Nodes = append(doc.Nodes, jsonNode{
			Kind: n.Kind.String(), X: n.Pos.X, Y: n.Pos.Y, Name: n.Name,
		})
	}
	for _, d := range m.Ducts {
		doc.Ducts = append(doc.Ducts, jsonDuct{A: d.A, B: d.B, FiberKM: d.FiberKM})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a region file and validates the result.
func ReadJSON(r io.Reader) (*Map, error) {
	var doc jsonMap
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("fibermap: parse region: %w", err)
	}
	if doc.Version != formatVersion {
		return nil, fmt.Errorf("fibermap: unsupported region version %d (want %d)", doc.Version, formatVersion)
	}
	m := &Map{}
	for i, n := range doc.Nodes {
		var kind NodeKind
		switch n.Kind {
		case "dc":
			kind = DC
		case "hut":
			kind = Hut
		default:
			return nil, fmt.Errorf("fibermap: node %d has unknown kind %q", i, n.Kind)
		}
		m.AddNode(kind, geo.Point{X: n.X, Y: n.Y}, n.Name)
	}
	for i, d := range doc.Ducts {
		if d.A < 0 || d.A >= len(m.Nodes) || d.B < 0 || d.B >= len(m.Nodes) || d.A == d.B {
			return nil, fmt.Errorf("fibermap: duct %d has invalid endpoints (%d,%d)", i, d.A, d.B)
		}
		if d.FiberKM <= 0 {
			return nil, fmt.Errorf("fibermap: duct %d has invalid length %v", i, d.FiberKM)
		}
		m.AddDuct(d.A, d.B, d.FiberKM)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
