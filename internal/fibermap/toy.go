package fibermap

import "iris/internal/geo"

// ToyRegion reconstructs the example region of Fig. 10 in the paper: four
// DCs and two huts in a semi-distributed arrangement where DC1 and DC2
// attach to hub H1, DC3 and DC4 attach to hub H2, and a central duct L5
// joins the two hubs. It is the fixture behind the §3.4 cost comparison
// (electrical ≈2.7× the optical design with f=10 fiber-pairs and λ=40
// wavelengths per fiber).
type ToyRegion struct {
	Map        *Map
	DC1, DC2   int
	DC3, DC4   int
	HubA, HubB int
	// L1..L4 are the DC access ducts and L5 the central hub-hub duct,
	// matching the labels in the paper's figure.
	L1, L2, L3, L4, L5 int
}

// Toy returns the Fig. 10 example region. Distances are chosen to be
// DCI-realistic (all DC-DC paths within the 120 km SLA, all single spans
// within the 80 km unamplified limit).
func Toy() *ToyRegion {
	m := &Map{}
	r := &ToyRegion{Map: m}
	r.HubA = m.AddNode(Hut, geo.Point{X: -15, Y: 0}, "H1")
	r.HubB = m.AddNode(Hut, geo.Point{X: 15, Y: 0}, "H2")
	r.DC1 = m.AddNode(DC, geo.Point{X: -25, Y: 10}, "DC1")
	r.DC2 = m.AddNode(DC, geo.Point{X: -25, Y: -10}, "DC2")
	r.DC3 = m.AddNode(DC, geo.Point{X: 25, Y: 10}, "DC3")
	r.DC4 = m.AddNode(DC, geo.Point{X: 25, Y: -10}, "DC4")
	r.L1 = m.AddDuct(r.DC1, r.HubA, 18)
	r.L2 = m.AddDuct(r.DC2, r.HubA, 18)
	r.L3 = m.AddDuct(r.DC3, r.HubB, 18)
	r.L4 = m.AddDuct(r.DC4, r.HubB, 18)
	r.L5 = m.AddDuct(r.HubA, r.HubB, 40)
	return r
}
