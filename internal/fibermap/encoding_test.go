package fibermap

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	m := Generate(DefaultGenConfig(5))
	if _, err := PlaceDCs(m, DefaultPlaceConfig(5, 4)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(m.Nodes) || len(got.Ducts) != len(m.Ducts) {
		t.Fatalf("sizes differ: %d/%d nodes, %d/%d ducts",
			len(got.Nodes), len(m.Nodes), len(got.Ducts), len(m.Ducts))
	}
	for i := range m.Nodes {
		if got.Nodes[i] != m.Nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, got.Nodes[i], m.Nodes[i])
		}
	}
	for i := range m.Ducts {
		if got.Ducts[i] != m.Ducts[i] {
			t.Fatalf("duct %d differs: %+v vs %+v", i, got.Ducts[i], m.Ducts[i])
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"not json":      `{{{`,
		"bad version":   `{"version":99,"nodes":[],"ducts":[]}`,
		"unknown kind":  `{"version":1,"nodes":[{"kind":"pop","x_km":0,"y_km":0,"name":"x"}],"ducts":[]}`,
		"bad endpoints": `{"version":1,"nodes":[{"kind":"hut","x_km":0,"y_km":0,"name":"a"}],"ducts":[{"a":0,"b":5,"fiber_km":1}]}`,
		"self loop":     `{"version":1,"nodes":[{"kind":"hut","x_km":0,"y_km":0,"name":"a"}],"ducts":[{"a":0,"b":0,"fiber_km":1}]}`,
		"bad length":    `{"version":1,"nodes":[{"kind":"hut","x_km":0,"y_km":0,"name":"a"},{"kind":"hut","x_km":1,"y_km":0,"name":"b"}],"ducts":[{"a":0,"b":1,"fiber_km":-2}]}`,
		"unknown field": `{"version":1,"nodes":[],"ducts":[],"extra":true}`,
		"disconnected":  `{"version":1,"nodes":[{"kind":"hut","x_km":0,"y_km":0,"name":"a"},{"kind":"hut","x_km":1,"y_km":0,"name":"b"}],"ducts":[]}`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestJSONToyStable(t *testing.T) {
	// The toy region's serialisation is a stable fixture other tools can
	// rely on; spot-check a few fields.
	var buf bytes.Buffer
	if err := fixtureToy().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"version": 1`, `"name": "DC1"`, `"fiber_km": 40`} {
		if !strings.Contains(s, want) {
			t.Errorf("serialisation missing %q:\n%s", want, s)
		}
	}
}

func fixtureToy() *Map { return Toy().Map }
