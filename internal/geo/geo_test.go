package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := RandomInRect(rng, NewRect(Point{-50, -50}, Point{50, 50}))
		b := RandomInRect(rng, NewRect(Point{-50, -50}, Point{50, 50}))
		c := RandomInRect(rng, NewRect(Point{-50, -50}, Point{50, 50}))
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestMidpointCentroid(t *testing.T) {
	if got := Midpoint(Point{0, 0}, Point{2, 4}); got != (Point{1, 2}) {
		t.Errorf("Midpoint = %v", got)
	}
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if got := Centroid(pts); got != (Point{1, 1}) {
		t.Errorf("Centroid = %v", got)
	}
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v, want origin", got)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Point{4, 1}, Point{0, 3})
	if r.Min != (Point{0, 1}) || r.Max != (Point{4, 3}) {
		t.Fatalf("NewRect did not normalise corners: %+v", r)
	}
	if r.Width() != 4 || r.Height() != 2 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if r.Area() != 8 {
		t.Errorf("Area = %v", r.Area())
	}
	if !r.Contains(Point{2, 2}) {
		t.Error("Contains should include interior point")
	}
	if !r.Contains(Point{0, 1}) {
		t.Error("Contains should include boundary")
	}
	if r.Contains(Point{5, 2}) {
		t.Error("Contains should exclude exterior point")
	}
	e := r.Expand(1)
	if e.Min != (Point{-1, 0}) || e.Max != (Point{5, 4}) {
		t.Errorf("Expand = %+v", e)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 0}, {4, 3}}
	r := BoundingRect(pts)
	if r.Min != (Point{-2, 0}) || r.Max != (Point{4, 5}) {
		t.Errorf("BoundingRect = %+v", r)
	}
	if got := BoundingRect(nil); got != (Rect{}) {
		t.Errorf("BoundingRect(nil) = %+v", got)
	}
}

func TestRandomInRect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewRect(Point{-3, 2}, Point{7, 9})
	for i := 0; i < 1000; i++ {
		if p := RandomInRect(rng, r); !r.Contains(p) {
			t.Fatalf("RandomInRect produced %v outside %+v", p, r)
		}
	}
}

func TestRandomInDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	centre := Point{5, -3}
	const radius = 10.0
	inner := 0
	for i := 0; i < 4000; i++ {
		p := RandomInDisk(rng, centre, radius)
		if d := p.Dist(centre); d > radius {
			t.Fatalf("point %v at distance %v outside radius %v", p, d, radius)
		}
		if p.Dist(centre) < radius/math.Sqrt2 {
			inner++
		}
	}
	// Uniform density means half the mass lies within radius/sqrt(2).
	frac := float64(inner) / 4000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("inner-disk fraction = %v, want ≈0.5 (uniform density)", frac)
	}
}

func TestPoissonDiskSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rect := NewRect(Point{0, 0}, Point{60, 60})
	const minDist = 5.0
	pts := PoissonDisk(rng, rect, 40, minDist)
	if len(pts) < 20 {
		t.Fatalf("expected at least 20 points, got %d", len(pts))
	}
	for i := range pts {
		if !rect.Contains(pts[i]) {
			t.Fatalf("point %v outside rect", pts[i])
		}
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < minDist {
				t.Fatalf("points %d and %d are %v apart, want ≥ %v", i, j, d, minDist)
			}
		}
	}
}

func TestPoissonDiskSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// A 10×10 box cannot hold 100 points spaced 5 km apart; the sampler
	// must terminate and return fewer.
	rect := NewRect(Point{0, 0}, Point{10, 10})
	pts := PoissonDisk(rng, rect, 100, 5)
	if len(pts) >= 100 {
		t.Fatalf("expected saturation below 100 points, got %d", len(pts))
	}
	if len(pts) == 0 {
		t.Fatal("expected at least one point")
	}
}

func TestGridArea(t *testing.T) {
	rect := NewRect(Point{0, 0}, Point{10, 10})
	all := GridArea(rect, 0.5, func(Point) bool { return true })
	if math.Abs(all-100) > 1e-9 {
		t.Errorf("full-rect area = %v, want 100", all)
	}
	half := GridArea(rect, 0.5, func(p Point) bool { return p.X < 5 })
	if math.Abs(half-50) > 1e-9 {
		t.Errorf("half-rect area = %v, want 50", half)
	}
	// A disk of radius 4 has area 16π ≈ 50.27.
	centre := Point{5, 5}
	disk := GridArea(rect, 0.1, func(p Point) bool { return p.Dist(centre) <= 4 })
	if math.Abs(disk-16*math.Pi) > 1.0 {
		t.Errorf("disk area = %v, want ≈ %v", disk, 16*math.Pi)
	}
}

func TestGridPointsMatchesGridArea(t *testing.T) {
	rect := NewRect(Point{0, 0}, Point{8, 6})
	keep := func(p Point) bool { return p.X+p.Y < 7 }
	const cell = 0.25
	pts := GridPoints(rect, cell, keep)
	area := GridArea(rect, cell, keep)
	if got := float64(len(pts)) * cell * cell; math.Abs(got-area) > 1e-9 {
		t.Errorf("GridPoints-derived area %v != GridArea %v", got, area)
	}
	for _, p := range pts {
		if !keep(p) {
			t.Fatalf("GridPoints returned excluded point %v", p)
		}
	}
}

func TestGridAreaPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive cell size")
		}
	}()
	GridArea(Rect{}, 0, func(Point) bool { return true })
}

func TestDistToSegment(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},  // projects onto the interior
		{Point{-4, 0}, 4}, // beyond a: clamp to endpoint
		{Point{13, 4}, 5}, // beyond b: clamp to endpoint
		{Point{7, 0}, 0},  // on the segment
		{Point{2, -2.5}, 2.5},
	}
	for _, c := range cases {
		if got := DistToSegment(c.p, a, b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DistToSegment(%v, %v, %v) = %v, want %v", c.p, a, b, got, c.want)
		}
	}
	// Degenerate segment falls back to point distance.
	if got := DistToSegment(Point{3, 4}, Point{0, 0}, Point{0, 0}); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate DistToSegment = %v, want 5", got)
	}
}
