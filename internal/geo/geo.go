// Package geo provides the small amount of 2-D computational geometry the
// regional DCI planner needs: points in a kilometre-scaled plane, distances,
// Poisson-disk sampling for synthetic hut placement, and grid-based area
// measurement used by the siting analysis.
//
// All coordinates are in kilometres. The plane approximation is appropriate
// because regions span only tens of kilometres.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the region plane, in kilometres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q in kilometres.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Norm returns the Euclidean norm of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Midpoint returns the midpoint of the segment pq.
func Midpoint(p, q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Centroid returns the arithmetic mean of the given points. It returns the
// origin for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}

// Rect is an axis-aligned rectangle, used as a sampling and measurement
// window. Min is the lower-left corner and Max the upper-right.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points, normalising
// the corner order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r in km².
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies in r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Expand returns r grown by d kilometres on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// BoundingRect returns the smallest rectangle containing all points. It
// returns the zero rectangle for an empty slice.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// RandomInRect returns a point uniformly distributed in r.
func RandomInRect(rng *rand.Rand, r Rect) Point {
	return Point{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}

// RandomInDisk returns a point uniformly distributed in the disk of the
// given radius around the centre.
func RandomInDisk(rng *rand.Rand, centre Point, radius float64) Point {
	// Inverse-CDF sampling: radius ∝ sqrt(u) gives a uniform area density.
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return Point{
		X: centre.X + r*math.Cos(theta),
		Y: centre.Y + r*math.Sin(theta),
	}
}

// DistToSegment returns the shortest distance from p to the segment ab.
// It is how correlated failure events (a backhoe or disaster with a blast
// radius) decide which fiber routes they sever: a duct is hit when its
// segment passes within the radius, not only when an endpoint does.
func DistToSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a)
	}
	t := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / den
	t = math.Max(0, math.Min(1, t))
	return p.Dist(a.Add(ab.Scale(t)))
}

// PoissonDisk samples up to n points inside rect such that no two points are
// closer than minDist. It uses dart throwing with a bounded number of
// attempts per point, which is ample at the densities the fiber-map
// generator requests. The result may contain fewer than n points if the
// rectangle cannot fit that many at the requested spacing.
func PoissonDisk(rng *rand.Rand, rect Rect, n int, minDist float64) []Point {
	const attemptsPerPoint = 64
	pts := make([]Point, 0, n)
	for len(pts) < n {
		placed := false
		for attempt := 0; attempt < attemptsPerPoint; attempt++ {
			cand := RandomInRect(rng, rect)
			ok := true
			for _, p := range pts {
				if cand.Dist(p) < minDist {
					ok = false
					break
				}
			}
			if ok {
				pts = append(pts, cand)
				placed = true
				break
			}
		}
		if !placed {
			break
		}
	}
	return pts
}

// GridArea estimates the area of the region of rect where keep returns true,
// by sampling a uniform grid with the given cell size (km). It returns the
// estimated area in km². A non-positive cell size panics, as it indicates a
// programming error rather than a data condition.
func GridArea(rect Rect, cell float64, keep func(Point) bool) float64 {
	if cell <= 0 {
		panic("geo: GridArea requires a positive cell size")
	}
	count := 0
	for x := rect.Min.X + cell/2; x < rect.Max.X; x += cell {
		for y := rect.Min.Y + cell/2; y < rect.Max.Y; y += cell {
			if keep(Point{x, y}) {
				count++
			}
		}
	}
	return float64(count) * cell * cell
}

// GridPoints returns the centres of all grid cells of the given size within
// rect that satisfy keep. It is the enumeration form of GridArea, used when
// the caller needs the admissible locations themselves (e.g. candidate DC
// sites) rather than just their measure.
func GridPoints(rect Rect, cell float64, keep func(Point) bool) []Point {
	if cell <= 0 {
		panic("geo: GridPoints requires a positive cell size")
	}
	var pts []Point
	for x := rect.Min.X + cell/2; x < rect.Max.X; x += cell {
		for y := rect.Min.Y + cell/2; y < rect.Max.Y; y += cell {
			p := Point{x, y}
			if keep(p) {
				pts = append(pts, p)
			}
		}
	}
	return pts
}
