package traffic

import (
	"testing"

	"iris/internal/hose"
	"iris/internal/trace"
)

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 {
		t.Fatalf("fresh window cap=%d len=%d, want 3, 0", w.Cap(), w.Len())
	}
	for i := 1; i <= 5; i++ {
		m := NewMatrix([]int{1, 2})
		m.Set(hose.Pair{A: 1, B: 2}, float64(i))
		w.Push(m)
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d after 5 pushes into cap 3, want 3", w.Len())
	}
	ms := w.Matrices()
	for i, want := range []float64{3, 4, 5} { // oldest first
		if got := ms[i].Get(hose.Pair{A: 1, B: 2}); got != want {
			t.Errorf("matrices[%d] demand = %v, want %v", i, got, want)
		}
	}
}

func TestWindowClonesOnPush(t *testing.T) {
	w := NewWindow(2)
	m := NewMatrix([]int{1, 2})
	m.Set(hose.Pair{A: 1, B: 2}, 10)
	w.Push(m)
	m.Set(hose.Pair{A: 1, B: 2}, 99) // caller keeps mutating its copy
	if got := w.Matrices()[0].Get(hose.Pair{A: 1, B: 2}); got != 10 {
		t.Errorf("window saw caller mutation: demand = %v, want 10", got)
	}
}

func TestWindowMinimumCapacity(t *testing.T) {
	w := NewWindow(0)
	if w.Cap() != 1 {
		t.Fatalf("NewWindow(0) cap = %d, want 1", w.Cap())
	}
}

func TestForecastDeterministicAndNonMutating(t *testing.T) {
	base := NewMatrix([]int{1, 2, 3})
	base.Set(hose.Pair{A: 1, B: 2}, 30)
	base.Set(hose.Pair{A: 2, B: 3}, 5)
	caps := map[int]float64{1: 100, 2: 100, 3: 100}
	cp := ChangeProcess{Bound: 0.3, Caps: caps, Util: 0.6}

	a := Forecast(11, base, cp, 4)
	b := Forecast(11, base, cp, 4)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("forecast lengths = %d, %d, want 4", len(a), len(b))
	}
	for i := range a {
		if !sameMatrix(a[i], b[i]) {
			t.Errorf("forecast step %d differs across identical seeds", i)
		}
	}
	if base.Get(hose.Pair{A: 1, B: 2}) != 30 || base.Get(hose.Pair{A: 2, B: 3}) != 5 {
		t.Error("Forecast mutated its base matrix")
	}
	if c := Forecast(12, base, cp, 4); sameMatrix(a[3], c[3]) {
		t.Error("different seeds produced an identical forecast tail")
	}
	if got := Forecast(11, base, cp, 0); len(got) != 0 {
		t.Errorf("zero-step forecast yielded %d matrices", len(got))
	}
}

func sameMatrix(a, b *Matrix) bool {
	if len(a.Demand) != len(b.Demand) {
		return false
	}
	for p, d := range a.Demand {
		if b.Demand[p] != d {
			return false
		}
	}
	return true
}

// drain pulls every matrix a source yields (bounded, in case a wrapper
// breaks exhaustion) and returns their demand maps.
func drain(s Source, max int) []*Matrix {
	var out []*Matrix
	for i := 0; i < max; i++ {
		m, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, m)
	}
	return out
}

// TestEvolverCompositionDeterminism pins the contract robust mode (and
// every replayable experiment) leans on: an Evolver under the same seed
// yields an identical sequence no matter how the Limit / Traced / Shaped
// wrappers are nested around it. Each stack gets its own freshly seeded
// Evolver and Shape; only the nesting order differs.
func TestEvolverCompositionDeterminism(t *testing.T) {
	caps := map[int]float64{1: 100, 2: 100, 3: 100}
	cp := ChangeProcess{Bound: 0.3, Caps: caps, Util: 0.6}
	base := NewMatrix([]int{1, 2, 3})
	base.Set(hose.Pair{A: 1, B: 2}, 30)
	base.Set(hose.Pair{A: 2, B: 3}, 12)

	const seed, n, stepS = 21, 6, 60.0
	profile := LoadProfile{DiurnalAmp: 0.3, DiurnalPeriodS: 3600}

	newShape := func() *Shape {
		sh, err := NewShape(seed+1, profile, n*stepS)
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	// Every nesting order of the three wrappers around a same-seed Evolver.
	stacks := map[string]func() Source{
		"limit(traced(shaped))": func() Source {
			return Limit(Traced(Shaped(NewEvolver(seed, base, cp), newShape(), stepS, caps), trace.New(64)), n)
		},
		"limit(shaped(traced))": func() Source {
			return Limit(Shaped(Traced(NewEvolver(seed, base, cp), trace.New(64)), newShape(), stepS, caps), n)
		},
		"traced(limit(shaped))": func() Source {
			return Traced(Limit(Shaped(NewEvolver(seed, base, cp), newShape(), stepS, caps), n), trace.New(64))
		},
		"traced(shaped(limit))": func() Source {
			return Traced(Shaped(Limit(NewEvolver(seed, base, cp), n), newShape(), stepS, caps), trace.New(64))
		},
		"shaped(limit(traced))": func() Source {
			return Shaped(Limit(Traced(NewEvolver(seed, base, cp), trace.New(64)), n), newShape(), stepS, caps)
		},
		"shaped(traced(limit))": func() Source {
			return Shaped(Traced(Limit(NewEvolver(seed, base, cp), n), trace.New(64)), newShape(), stepS, caps)
		},
	}

	ref := drain(stacks["limit(traced(shaped)"+")"](), n+1)
	if len(ref) != n {
		t.Fatalf("reference stack yielded %d matrices, want %d", len(ref), n)
	}
	for name, build := range stacks {
		got := drain(build(), n+1)
		if len(got) != n {
			t.Fatalf("%s yielded %d matrices, want %d", name, len(got), n)
		}
		for i := range got {
			if !sameMatrix(got[i], ref[i]) {
				t.Errorf("%s step %d diverges from reference under identical seeds", name, i)
			}
		}
		// And the same stack re-built from the same seed replays itself.
		again := drain(build(), n+1)
		for i := range again {
			if !sameMatrix(again[i], got[i]) {
				t.Errorf("%s step %d not reproducible across rebuilds", name, i)
			}
		}
	}
}
