package traffic

import "math/rand"

// Window is a bounded ring of the most recent demand matrices — the
// capture buffer robust planning solves its envelope over. Push stores a
// clone, so callers may keep mutating the matrices they feed in (the
// evolver steps its matrix in place).
type Window struct {
	cap int
	ms  []*Matrix
}

// NewWindow returns a window holding the last n matrices (n ≥ 1).
func NewWindow(n int) *Window {
	if n < 1 {
		n = 1
	}
	return &Window{cap: n}
}

// Push records a matrix, evicting the oldest once the window is full.
// A nil matrix is ignored.
func (w *Window) Push(m *Matrix) {
	if m == nil {
		return
	}
	w.ms = append(w.ms, m.Clone())
	if len(w.ms) > w.cap {
		copy(w.ms, w.ms[1:])
		w.ms[len(w.ms)-1] = nil
		w.ms = w.ms[:len(w.ms)-1]
	}
}

// Len is the number of matrices currently held.
func (w *Window) Len() int { return len(w.ms) }

// Cap is the window's bound.
func (w *Window) Cap() int { return w.cap }

// Matrices returns the window's contents oldest-first. The slice is
// fresh but the matrices are the window's own clones; callers must not
// mutate them.
func (w *Window) Matrices() []*Matrix {
	out := make([]*Matrix, len(w.ms))
	copy(out, w.ms)
	return out
}

// Forecast rolls a private change-process branch k steps forward from
// base and returns the k successive matrices — the "where might demand
// go next" half of a robust envelope's matrix set. base is not modified;
// the branch's randomness is isolated under seed so forecasting never
// perturbs the live feed's stream.
func Forecast(seed int64, base *Matrix, cp ChangeProcess, k int) []*Matrix {
	if base == nil || k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	m := base.Clone()
	out := make([]*Matrix, 0, k)
	for i := 0; i < k; i++ {
		cp.Step(rng, m)
		out = append(out, m.Clone())
	}
	return out
}
