package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// LoadProfile describes user-scale arrival modulation layered on a base
// load: a diurnal swing (the time-of-day cycle every user-facing region
// sees) and flash crowds (short windows where demand spikes, the §6.3
// "low-traffic pair becomes high-traffic" event at flow granularity).
// The zero value is a flat profile. Instantiate with NewShape, which
// draws the flash-crowd windows for a run horizon.
type LoadProfile struct {
	// DiurnalAmp in [0,1) swings the rate by ±Amp around 1 with period
	// DiurnalPeriodS and phase offset DiurnalPhaseS. Zero amp disables
	// the swing.
	DiurnalAmp     float64
	DiurnalPeriodS float64
	DiurnalPhaseS  float64
	// FlashEveryS is the mean interval between flash-crowd onsets (a
	// Poisson process; 0 disables flashes). Each flash lasts
	// FlashDurationS and multiplies the rate by FlashMult (≥ 1).
	FlashEveryS    float64
	FlashDurationS float64
	FlashMult      float64
}

// DefaultLoadProfile returns a pronounced but stable profile for
// simulations: a ±30% diurnal swing over five minutes (a compressed day)
// and 3× flash crowds of five seconds roughly once a minute.
func DefaultLoadProfile() LoadProfile {
	return LoadProfile{
		DiurnalAmp: 0.3, DiurnalPeriodS: 300,
		FlashEveryS: 60, FlashDurationS: 5, FlashMult: 3,
	}
}

// Flat reports whether the profile modulates nothing.
func (p LoadProfile) Flat() bool {
	diurnal := p.DiurnalAmp > 0 && p.DiurnalPeriodS > 0
	flash := p.FlashEveryS > 0 && p.FlashDurationS > 0 && p.FlashMult > 1
	return !diurnal && !flash
}

// Shape is a LoadProfile instantiated for one run: the flash-crowd
// windows are drawn up front from the seed, so Mult is a pure function
// of time — deterministic, and safe for concurrent use from the load
// engine's per-pipe workers.
type Shape struct {
	p       LoadProfile
	flashes []flashWindow // sorted by start, non-overlapping
}

type flashWindow struct{ start, end float64 }

// NewShape validates the profile and draws its flash windows over
// [0, horizonS]. Overlapping draws are merged so FlashMult never
// compounds.
func NewShape(seed int64, p LoadProfile, horizonS float64) (*Shape, error) {
	if p.DiurnalAmp < 0 || p.DiurnalAmp >= 1 {
		return nil, fmt.Errorf("traffic: diurnal amplitude %v outside [0,1)", p.DiurnalAmp)
	}
	if p.DiurnalAmp > 0 && p.DiurnalPeriodS <= 0 {
		return nil, fmt.Errorf("traffic: diurnal amplitude without a period")
	}
	if p.FlashEveryS < 0 || p.FlashDurationS < 0 {
		return nil, fmt.Errorf("traffic: negative flash parameters")
	}
	if p.FlashEveryS > 0 && p.FlashMult < 1 {
		return nil, fmt.Errorf("traffic: flash multiplier %v below 1", p.FlashMult)
	}
	s := &Shape{p: p}
	if p.FlashEveryS > 0 && p.FlashDurationS > 0 && p.FlashMult > 1 {
		rng := rand.New(rand.NewSource(seed))
		t := rng.ExpFloat64() * p.FlashEveryS
		for t < horizonS {
			s.flashes = append(s.flashes, flashWindow{start: t, end: t + p.FlashDurationS})
			t += rng.ExpFloat64() * p.FlashEveryS
		}
		// Merge overlaps so a flash window never stacks on itself.
		merged := s.flashes[:0]
		for _, w := range s.flashes {
			if n := len(merged); n > 0 && w.start <= merged[n-1].end {
				if w.end > merged[n-1].end {
					merged[n-1].end = w.end
				}
				continue
			}
			merged = append(merged, w)
		}
		s.flashes = merged
	}
	return s, nil
}

// Mult returns the rate multiplier at time t.
func (s *Shape) Mult(t float64) float64 {
	m := 1.0
	if s.p.DiurnalAmp > 0 && s.p.DiurnalPeriodS > 0 {
		m += s.p.DiurnalAmp * math.Sin(2*math.Pi*(t+s.p.DiurnalPhaseS)/s.p.DiurnalPeriodS)
	}
	if len(s.flashes) > 0 {
		// First window ending after t; t is inside it iff it also started.
		i := sort.Search(len(s.flashes), func(i int) bool { return s.flashes[i].end > t })
		if i < len(s.flashes) && s.flashes[i].start <= t {
			m *= s.p.FlashMult
		}
	}
	return m
}

// MaxMult bounds Mult over all times — the thinning envelope for
// non-homogeneous Poisson arrivals.
func (s *Shape) MaxMult() float64 {
	m := 1 + s.p.DiurnalAmp
	if len(s.flashes) > 0 {
		m *= s.p.FlashMult
	}
	return m
}

// Flashes returns the number of distinct flash-crowd windows drawn.
func (s *Shape) Flashes() int { return len(s.flashes) }

// Shaped layers a load shape onto a matrix feed: the i-th yielded matrix
// is scaled by sh.Mult(i*stepS), modelling diurnal and flash-crowd swings
// of the whole region's demand on top of the underlying change process
// (typically an Evolver). When caps is non-nil the scaled matrix is
// clamped to those hose capacities, so a flash crowd saturates the region
// instead of yielding an unallocatable demand. Exhaustion passes through
// and stays idempotent per the Source contract.
func Shaped(s Source, sh *Shape, stepS float64, caps map[int]float64) Source {
	if sh == nil {
		return s
	}
	return &shaped{s: s, sh: sh, stepS: stepS, caps: caps}
}

type shaped struct {
	s     Source
	sh    *Shape
	stepS float64
	caps  map[int]float64
	step  int
}

func (x *shaped) Next() (*Matrix, bool) {
	m, ok := x.s.Next()
	if !ok {
		return nil, false
	}
	mult := x.sh.Mult(float64(x.step) * x.stepS)
	x.step++
	for _, p := range m.Pairs() {
		m.Set(p, m.Get(p)*mult)
	}
	if x.caps != nil {
		m.ClampToHose(x.caps)
	}
	return m, ok
}
