package traffic

import (
	"testing"

	"iris/internal/hose"
	"iris/internal/trace"
)

func TestReplayYieldsClonesInOrder(t *testing.T) {
	m1 := NewMatrix([]int{1, 2})
	m1.Set(hose.Pair{A: 1, B: 2}, 10)
	m2 := NewMatrix([]int{1, 2})
	m2.Set(hose.Pair{A: 1, B: 2}, 20)

	f := NewReplay(m1, m2)
	got1, ok := f.Next()
	if !ok || got1.Get(hose.Pair{A: 1, B: 2}) != 10 {
		t.Fatalf("first Next = %v, %v", got1, ok)
	}
	// Mutating the yielded matrix must not affect the source.
	got1.Set(hose.Pair{A: 1, B: 2}, 99)
	got2, ok := f.Next()
	if !ok || got2.Get(hose.Pair{A: 1, B: 2}) != 20 {
		t.Fatalf("second Next = %v, %v", got2, ok)
	}
	if _, ok := f.Next(); ok {
		t.Error("replay did not exhaust after two matrices")
	}
}

func TestEvolverIsDeterministicPerSeed(t *testing.T) {
	base := NewMatrix([]int{1, 2, 3})
	base.Set(hose.Pair{A: 1, B: 2}, 30)
	base.Set(hose.Pair{A: 2, B: 3}, 5)
	caps := map[int]float64{1: 100, 2: 100, 3: 100}
	cp := ChangeProcess{Bound: 0.4, Caps: caps, Util: 0.9}

	run := func() []float64 {
		e := NewEvolver(7, base, cp)
		var vals []float64
		for i := 0; i < 5; i++ {
			m, ok := e.Next()
			if !ok {
				t.Fatal("evolver exhausted")
			}
			vals = append(vals, m.Get(hose.Pair{A: 1, B: 2}))
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs across identically seeded evolvers: %v vs %v", i, a, b)
		}
	}
	// The first yield is the unmodified base.
	if a[0] != 30 {
		t.Errorf("first yield = %v, want base demand 30", a[0])
	}
}

func TestLimitCapsFeed(t *testing.T) {
	base := NewMatrix([]int{1, 2})
	base.Set(hose.Pair{A: 1, B: 2}, 1)
	cp := ChangeProcess{Bound: 0.1, Caps: map[int]float64{1: 10, 2: 10}, Util: 0.5}
	f := Limit(NewEvolver(1, base, cp), 3)
	for i := 0; i < 3; i++ {
		if _, ok := f.Next(); !ok {
			t.Fatalf("Next %d exhausted early", i)
		}
	}
	if _, ok := f.Next(); ok {
		t.Error("limited feed yielded a 4th matrix")
	}
}

// TestExhaustedSourcesAreIdempotent pins the Source contract: once Next
// has returned ok=false, every later call must keep returning ok=false.
func TestExhaustedSourcesAreIdempotent(t *testing.T) {
	base := NewMatrix([]int{1, 2})
	base.Set(hose.Pair{A: 1, B: 2}, 1)
	cp := ChangeProcess{Bound: 0.1, Caps: map[int]float64{1: 10, 2: 10}, Util: 0.5}
	tr := trace.New(64)
	sources := map[string]Source{
		"replay": NewReplay(base),
		"limit":  Limit(NewEvolver(1, base, cp), 1),
		"traced": Traced(NewReplay(base), tr),
	}
	for name, s := range sources {
		if _, ok := s.Next(); !ok {
			t.Fatalf("%s: exhausted before its one matrix", name)
		}
		for i := 0; i < 5; i++ {
			if m, ok := s.Next(); ok || m != nil {
				t.Fatalf("%s: Next after exhaustion returned %v, %v on call %d", name, m, ok, i)
			}
		}
	}
}

// TestTracedEmitsExhaustionOnce: a polling loop hammering an exhausted
// traced feed must journal the exhaustion once, not flood the
// flight-recorder ring with one event per probe.
func TestTracedEmitsExhaustionOnce(t *testing.T) {
	base := NewMatrix([]int{1, 2})
	base.Set(hose.Pair{A: 1, B: 2}, 1)
	tr := trace.New(256)
	f := Traced(NewReplay(base, base), tr)
	for {
		if _, ok := f.Next(); !ok {
			break
		}
	}
	for i := 0; i < 100; i++ {
		if _, ok := f.Next(); ok {
			t.Fatal("feed revived after exhaustion")
		}
	}
	var shifts, exhausted int
	for _, ev := range tr.Events(trace.Filter{}) {
		switch ev.Name {
		case "shift":
			shifts++
		case "feed-exhausted":
			exhausted++
		}
	}
	if shifts != 2 {
		t.Errorf("journaled %d shift events, want 2", shifts)
	}
	if exhausted != 1 {
		t.Errorf("journaled %d feed-exhausted events, want exactly 1", exhausted)
	}
}
