// Package traffic models regional DC-to-DC traffic for the reconfiguration
// study of §6.3: heavy-tailed pair-level demand matrices with a bounded or
// unbounded change process, and the empirical flow-size distributions the
// paper simulates (the pFabric web-search workload and Facebook's web,
// hadoop and cache workloads).
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SizeDist is an empirical flow-size distribution given as CDF breakpoints
// with log-linear interpolation between them — the standard representation
// of the published workload CDFs.
type SizeDist struct {
	name string
	// bytes[i] has cumulative probability cdf[i]; bytes ascending,
	// cdf ascending and ending at 1.
	bytes []float64
	cdf   []float64
}

// Name returns the workload name ("web1", "web2", "hadoop", "cache").
func (d SizeDist) Name() string { return d.name }

// NewSizeDist builds a distribution from breakpoints. It panics on
// malformed tables, which are programming errors in workload definitions.
func NewSizeDist(name string, bytes, cdf []float64) SizeDist {
	if len(bytes) != len(cdf) || len(bytes) < 2 {
		panic(fmt.Sprintf("traffic: malformed size table %q", name))
	}
	for i := 1; i < len(bytes); i++ {
		if bytes[i] <= bytes[i-1] || cdf[i] < cdf[i-1] {
			panic(fmt.Sprintf("traffic: non-monotone size table %q at %d", name, i))
		}
	}
	if cdf[0] != 0 || cdf[len(cdf)-1] != 1 {
		panic(fmt.Sprintf("traffic: size table %q must span CDF [0,1]", name))
	}
	return SizeDist{name: name, bytes: bytes, cdf: cdf}
}

// Sample draws one flow size in bytes by inverse-CDF sampling with
// log-linear interpolation.
func (d SizeDist) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i == 0 {
		return d.bytes[0]
	}
	if i >= len(d.cdf) {
		return d.bytes[len(d.bytes)-1]
	}
	lo, hi := d.cdf[i-1], d.cdf[i]
	frac := 0.0
	if hi > lo {
		frac = (u - lo) / (hi - lo)
	}
	// Interpolate in log-size space: flow sizes span decades.
	logSize := math.Log(d.bytes[i-1]) + frac*(math.Log(d.bytes[i])-math.Log(d.bytes[i-1]))
	return math.Exp(logSize)
}

// Max returns the largest flow size the distribution can produce — the
// last breakpoint of the table. Callers sizing bounded structures (the
// flowsim load engine's credit calendar) rely on samples never
// exceeding it.
func (d SizeDist) Max() float64 { return d.bytes[len(d.bytes)-1] }

// Mean returns the distribution mean in bytes, computed by numerical
// integration of the interpolated CDF (adequate for arrival-rate sizing).
func (d SizeDist) Mean() float64 {
	const steps = 20000
	var sum float64
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		sum += d.quantile(u)
	}
	return sum / steps
}

func (d SizeDist) quantile(u float64) float64 {
	i := sort.SearchFloat64s(d.cdf, u)
	if i == 0 {
		return d.bytes[0]
	}
	if i >= len(d.cdf) {
		return d.bytes[len(d.bytes)-1]
	}
	lo, hi := d.cdf[i-1], d.cdf[i]
	frac := 0.0
	if hi > lo {
		frac = (u - lo) / (hi - lo)
	}
	return math.Exp(math.Log(d.bytes[i-1]) + frac*(math.Log(d.bytes[i])-math.Log(d.bytes[i-1])))
}

// The four workloads of Figs. 17–18. The breakpoint tables approximate the
// published CDFs: the web-search workload of pFabric (Alizadeh et al.,
// reference [4] in the paper) and the web / hadoop / cache workloads of
// the Facebook datacenter study (Roy et al., reference [41]). All are
// dominated by short flows, which the paper deliberately chooses as the
// stress case for circuit reconfiguration.

// WebSearch returns the pFabric web-search workload (the paper's "web1").
func WebSearch() SizeDist {
	return NewSizeDist("web1",
		[]float64{1e2, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7},
		[]float64{0, 0.15, 0.30, 0.45, 0.60, 0.70, 0.80, 0.90, 1},
	)
}

// FBWeb returns the Facebook web-server workload (the paper's "web2").
func FBWeb() SizeDist {
	return NewSizeDist("web2",
		[]float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7},
		[]float64{0, 0.30, 0.70, 0.90, 0.97, 1},
	)
}

// FBHadoop returns the Facebook hadoop workload.
func FBHadoop() SizeDist {
	return NewSizeDist("hadoop",
		[]float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e8},
		[]float64{0, 0.20, 0.50, 0.75, 0.90, 1},
	)
}

// FBCache returns the Facebook cache-follower workload.
func FBCache() SizeDist {
	return NewSizeDist("cache",
		[]float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7},
		[]float64{0, 0.10, 0.40, 0.70, 0.90, 1},
	)
}

// Workloads returns the four evaluation workloads in Fig. 18 order.
func Workloads() []SizeDist {
	return []SizeDist{WebSearch(), FBWeb(), FBHadoop(), FBCache()}
}

// WorkloadByName resolves a workload by its Name (command-line flags).
func WorkloadByName(name string) (SizeDist, bool) {
	for _, d := range Workloads() {
		if d.Name() == name {
			return d, true
		}
	}
	return SizeDist{}, false
}

// ShortFlowBytes is the threshold below which the paper calls a flow
// "short" when reporting FCT slowdowns (§6.3).
const ShortFlowBytes = 50e3
