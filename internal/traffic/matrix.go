package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"iris/internal/hose"
)

// Matrix is a symmetric DC-pair demand matrix in abstract demand units
// (the flow simulator scales it to link rates; the planner's circuit
// allocator scales it to wavelengths).
type Matrix struct {
	DCs    []int
	Demand map[hose.Pair]float64
}

// NewMatrix returns a zero matrix over the given DCs.
func NewMatrix(dcs []int) *Matrix {
	sorted := append([]int(nil), dcs...)
	sort.Ints(sorted)
	return &Matrix{DCs: sorted, Demand: make(map[hose.Pair]float64)}
}

// Pairs returns all DC pairs in deterministic order.
func (m *Matrix) Pairs() []hose.Pair {
	var out []hose.Pair
	for i, a := range m.DCs {
		for _, b := range m.DCs[i+1:] {
			out = append(out, hose.Pair{A: a, B: b})
		}
	}
	return out
}

// Get returns the demand of a pair (orientation-insensitive).
func (m *Matrix) Get(p hose.Pair) float64 { return m.Demand[p.Canonical()] }

// Set assigns the demand of a pair. Negative demands panic.
func (m *Matrix) Set(p hose.Pair, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("traffic: negative demand %v for %v", d, p))
	}
	m.Demand[p.Canonical()] = d
}

// Total returns the sum of all pair demands.
func (m *Matrix) Total() float64 {
	var sum float64
	for _, d := range m.Demand {
		sum += d
	}
	return sum
}

// PerDC returns each DC's aggregate demand (the hose usage).
func (m *Matrix) PerDC() map[int]float64 {
	out := make(map[int]float64, len(m.DCs))
	for p, d := range m.Demand {
		out[p.A] += d
		out[p.B] += d
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.DCs)
	for p, d := range m.Demand {
		c.Demand[p] = d
	}
	return c
}

// ClampToHose scales down each DC's demands proportionally until no DC
// exceeds its hose capacity. The fixed point is reached in at most
// len(DCs) rounds; demands only ever shrink, so hose feasibility (OC2) is
// guaranteed on return.
func (m *Matrix) ClampToHose(caps map[int]float64) {
	for round := 0; round < len(m.DCs); round++ {
		use := m.PerDC()
		worst := 1.0
		var worstDC int
		for _, dc := range m.DCs {
			if c := caps[dc]; c > 0 && use[dc] > c {
				if r := use[dc] / c; r > worst {
					worst, worstDC = r, dc
				}
			} else if caps[dc] <= 0 && use[dc] > 0 {
				worst, worstDC = 0, dc // no capacity: zero its pairs
			}
		}
		if worst == 1.0 {
			return
		}
		for _, p := range m.Pairs() {
			if p.A == worstDC || p.B == worstDC {
				if worst == 0 {
					m.Set(p, 0)
				} else {
					m.Set(p, m.Get(p)/worst)
				}
			}
		}
	}
}

// HeavyTailed builds the paper's base traffic pattern: a few DC pairs
// exchange most of the traffic. Pair weights follow a Zipf-like power law
// over a random pair order; each DC's aggregate is then clamped to
// util × its hose capacity.
func HeavyTailed(rng *rand.Rand, dcs []int, caps map[int]float64, util float64) *Matrix {
	m := NewMatrix(dcs)
	pairs := m.Pairs()
	perm := rng.Perm(len(pairs))
	for rank, idx := range perm {
		// Zipf weight with exponent 1.2: heavy head, long tail.
		w := 1 / math.Pow(float64(rank+1), 1.2)
		m.Set(pairs[idx], w)
	}
	// Scale so the busiest DC sits exactly at util × capacity and no DC
	// exceeds it; the min-scale keeps the heavy-tailed shape intact
	// (clamping per-DC afterwards would flatten the hot pairs).
	use := m.PerDC()
	scale := math.Inf(1)
	for _, dc := range dcs {
		if use[dc] > 0 && caps[dc] > 0 {
			if s := util * caps[dc] / use[dc]; s < scale {
				scale = s
			}
		}
	}
	if math.IsInf(scale, 1) {
		scale = 0
	}
	for _, p := range pairs {
		m.Set(p, m.Get(p)*scale)
	}
	scaled := make(map[int]float64, len(caps))
	for dc, c := range caps {
		scaled[dc] = util * c
	}
	m.ClampToHose(scaled)
	return m
}

// ChangeProcess evolves a matrix the way §6.3 describes: every interval,
// pair demands drift by at most Bound (fractional change); with unbounded
// changes (Bound ≤ 0), a low-traffic pair and a high-traffic pair swap
// volumes — the "low-traffic DC-DC pair becomes a high-traffic one" event.
type ChangeProcess struct {
	// Bound is the maximum fractional per-pair change per step; ≤ 0 means
	// unbounded (pair swaps).
	Bound float64
	// Caps are hose capacities; demands stay clamped to Util × Caps.
	Caps map[int]float64
	Util float64
}

// Step evolves the matrix in place.
func (cp ChangeProcess) Step(rng *rand.Rand, m *Matrix) {
	pairs := m.Pairs()
	if len(pairs) == 0 {
		return
	}
	if cp.Bound > 0 {
		for _, p := range pairs {
			factor := 1 + cp.Bound*(2*rng.Float64()-1)
			m.Set(p, m.Get(p)*factor)
		}
	} else {
		// Unbounded: swap the volumes of a random hot pair and a random
		// cold pair.
		byDemand := append([]hose.Pair(nil), pairs...)
		sort.Slice(byDemand, func(i, j int) bool {
			di, dj := m.Get(byDemand[i]), m.Get(byDemand[j])
			if di != dj {
				return di > dj
			}
			return lessPair(byDemand[i], byDemand[j])
		})
		topK := len(byDemand) / 4
		if topK == 0 {
			topK = 1
		}
		hot := byDemand[rng.Intn(topK)]
		cold := byDemand[len(byDemand)-1-rng.Intn(topK)]
		dh, dc := m.Get(hot), m.Get(cold)
		m.Set(hot, dc)
		m.Set(cold, dh)
	}
	scaled := make(map[int]float64, len(cp.Caps))
	for dc, c := range cp.Caps {
		scaled[dc] = cp.Util * c
	}
	m.ClampToHose(scaled)
}

func lessPair(a, b hose.Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}
