package traffic

import (
	"math"
	"testing"

	"iris/internal/hose"
)

func TestShapeValidation(t *testing.T) {
	bad := []LoadProfile{
		{DiurnalAmp: 1.0, DiurnalPeriodS: 60},
		{DiurnalAmp: -0.1, DiurnalPeriodS: 60},
		{DiurnalAmp: 0.5}, // amp without period
		{FlashEveryS: -1},
		{FlashEveryS: 10, FlashDurationS: -1},
		{FlashEveryS: 10, FlashDurationS: 1, FlashMult: 0.5},
	}
	for i, p := range bad {
		if _, err := NewShape(1, p, 100); err == nil {
			t.Errorf("profile %d (%+v): expected validation error", i, p)
		}
	}
	if _, err := NewShape(1, LoadProfile{}, 100); err != nil {
		t.Errorf("flat profile rejected: %v", err)
	}
}

func TestShapeFlatProfileIsIdentity(t *testing.T) {
	s, err := NewShape(3, LoadProfile{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 1, 17.5, 999} {
		if got := s.Mult(tt); got != 1 {
			t.Errorf("Mult(%v) = %v, want 1", tt, got)
		}
	}
	if s.MaxMult() != 1 {
		t.Errorf("MaxMult = %v, want 1", s.MaxMult())
	}
}

func TestShapeDiurnalSwing(t *testing.T) {
	p := LoadProfile{DiurnalAmp: 0.4, DiurnalPeriodS: 100}
	s, err := NewShape(3, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Peak at quarter period, trough at three quarters.
	if got := s.Mult(25); math.Abs(got-1.4) > 1e-9 {
		t.Errorf("peak Mult = %v, want 1.4", got)
	}
	if got := s.Mult(75); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("trough Mult = %v, want 0.6", got)
	}
	if got := s.Mult(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("zero-crossing Mult = %v, want 1", got)
	}
	// Phase shifts the whole curve.
	ps, _ := NewShape(3, LoadProfile{DiurnalAmp: 0.4, DiurnalPeriodS: 100, DiurnalPhaseS: 25}, 1000)
	if got := ps.Mult(0); math.Abs(got-1.4) > 1e-9 {
		t.Errorf("phase-shifted Mult(0) = %v, want 1.4", got)
	}
	for _, tt := range []float64{0, 10, 42, 317} {
		if s.Mult(tt) > s.MaxMult()+1e-12 {
			t.Errorf("Mult(%v)=%v exceeds MaxMult %v", tt, s.Mult(tt), s.MaxMult())
		}
	}
}

func TestShapeFlashCrowdsDeterministicAndBounded(t *testing.T) {
	p := LoadProfile{FlashEveryS: 30, FlashDurationS: 5, FlashMult: 3}
	a, err := NewShape(11, p, 600)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewShape(11, p, 600)
	if a.Flashes() == 0 {
		t.Fatal("no flash windows drawn over 20 mean intervals")
	}
	if a.Flashes() != b.Flashes() {
		t.Fatalf("same seed drew %d vs %d windows", a.Flashes(), b.Flashes())
	}
	// Mult is either the base 1 or exactly FlashMult, never compounded.
	inFlash := 0
	for tt := 0.0; tt < 600; tt += 0.25 {
		m := a.Mult(tt)
		if m != a.Mult(tt) {
			t.Fatal("Mult is not deterministic")
		}
		switch {
		case m == 1:
		case m == 3:
			inFlash++
		default:
			t.Fatalf("Mult(%v) = %v, want 1 or 3 (windows must not stack)", tt, m)
		}
		if m > a.MaxMult() {
			t.Fatalf("Mult(%v)=%v exceeds MaxMult %v", tt, m, a.MaxMult())
		}
	}
	if inFlash == 0 {
		t.Error("sampling never landed inside a flash window")
	}
	if got, want := a.MaxMult(), 3.0; got != want {
		t.Errorf("MaxMult = %v, want %v", got, want)
	}
}

func TestShapedFeedScalesAndClamps(t *testing.T) {
	dcs := []int{1, 2}
	pair := hose.Pair{A: 1, B: 2}
	mk := func(v float64) *Matrix {
		m := NewMatrix(dcs)
		m.Set(pair, v)
		return m
	}
	sh, err := NewShape(5, LoadProfile{DiurnalAmp: 0.5, DiurnalPeriodS: 40}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Step 10s = quarter period: Mult(0)=1, Mult(10)=1.5, Mult(20)=1.
	f := Shaped(NewReplay(mk(8), mk(8), mk(8)), sh, 10, nil)
	want := []float64{8, 12, 8}
	for i, w := range want {
		m, ok := f.Next()
		if !ok {
			t.Fatalf("step %d exhausted early", i)
		}
		if got := m.Get(pair); math.Abs(got-w) > 1e-9 {
			t.Errorf("step %d demand = %v, want %v", i, got, w)
		}
	}
	if _, ok := f.Next(); ok {
		t.Error("shaped feed outlived its replay")
	}
	if _, ok := f.Next(); ok {
		t.Error("shaped feed exhaustion is not idempotent")
	}

	// With hose caps, the flash peak clamps instead of overflowing.
	caps := map[int]float64{1: 10, 2: 10}
	f = Shaped(NewReplay(mk(8), mk(8)), sh, 10, caps)
	m, _ := f.Next()
	if got := m.Get(pair); math.Abs(got-8) > 1e-9 {
		t.Errorf("unshaped step clamped: %v", got)
	}
	m, _ = f.Next()
	if got := m.Get(pair); got > 10+1e-9 {
		t.Errorf("clamped step exceeds hose: %v", got)
	}
	if got := m.Get(pair); got <= 8 {
		t.Errorf("clamp erased the swing entirely: %v", got)
	}

	// A nil shape is a pass-through.
	r := NewReplay(mk(4))
	if Shaped(r, nil, 1, nil) != r {
		t.Error("nil shape should return the source unchanged")
	}
}
