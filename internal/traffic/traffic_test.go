package traffic

import (
	"math"
	"math/rand"
	"testing"

	"iris/internal/hose"
)

func TestSizeDistValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { NewSizeDist("x", []float64{1, 2}, []float64{0}) },
		"too short":       func() { NewSizeDist("x", []float64{1}, []float64{1}) },
		"non-monotone":    func() { NewSizeDist("x", []float64{2, 1}, []float64{0, 1}) },
		"cdf not to 1":    func() { NewSizeDist("x", []float64{1, 2}, []float64{0, 0.9}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestWorkloadsWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, d := range Workloads() {
		if d.Name() == "" {
			t.Error("workload without a name")
		}
		names[d.Name()] = true
		m := d.Mean()
		if m <= 0 || math.IsNaN(m) {
			t.Errorf("%s mean = %v", d.Name(), m)
		}
	}
	for _, want := range []string{"web1", "web2", "hadoop", "cache"} {
		if !names[want] {
			t.Errorf("missing workload %q", want)
		}
	}
}

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range Workloads() {
		lo, hi := d.bytes[0], d.bytes[len(d.bytes)-1]
		for i := 0; i < 5000; i++ {
			s := d.Sample(rng)
			if s < lo-1e-9 || s > hi+1e-9 {
				t.Fatalf("%s: sample %v outside [%v,%v]", d.Name(), s, lo, hi)
			}
		}
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	// Empirical CDF at the breakpoints must approach the table.
	rng := rand.New(rand.NewSource(6))
	d := WebSearch()
	const n = 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(rng)
	}
	for i, b := range d.bytes {
		want := d.cdf[i]
		got := 0
		for _, s := range samples {
			if s <= b+1e-9 {
				got++
			}
		}
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.01 {
			t.Errorf("CDF at %.0fB = %.3f, want %.3f", b, frac, want)
		}
	}
}

func TestShortFlowsDominate(t *testing.T) {
	// The paper picks these workloads because they are dominated by short
	// flows; the simulator's stress-test premise depends on it.
	rng := rand.New(rand.NewSource(7))
	for _, d := range Workloads() {
		short := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if d.Sample(rng) < ShortFlowBytes {
				short++
			}
		}
		if frac := float64(short) / n; frac < 0.35 {
			t.Errorf("%s: only %.0f%% short flows", d.Name(), frac*100)
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix([]int{3, 1, 2})
	if len(m.Pairs()) != 3 {
		t.Fatalf("pairs = %v", m.Pairs())
	}
	m.Set(hose.Pair{A: 2, B: 1}, 5)
	if got := m.Get(hose.Pair{A: 1, B: 2}); got != 5 {
		t.Errorf("Get = %v, want orientation-insensitive 5", got)
	}
	if m.Total() != 5 {
		t.Errorf("Total = %v", m.Total())
	}
	use := m.PerDC()
	if use[1] != 5 || use[2] != 5 || use[3] != 0 {
		t.Errorf("PerDC = %v", use)
	}
	c := m.Clone()
	c.Set(hose.Pair{A: 1, B: 3}, 1)
	if m.Get(hose.Pair{A: 1, B: 3}) != 0 {
		t.Error("Clone not deep")
	}
}

func TestMatrixRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix([]int{1, 2}).Set(hose.Pair{A: 1, B: 2}, -1)
}

func TestClampToHose(t *testing.T) {
	m := NewMatrix([]int{1, 2, 3})
	m.Set(hose.Pair{A: 1, B: 2}, 8)
	m.Set(hose.Pair{A: 1, B: 3}, 8)
	caps := map[int]float64{1: 10, 2: 10, 3: 10}
	m.ClampToHose(caps)
	use := m.PerDC()
	for dc, u := range use {
		if u > caps[dc]+1e-9 {
			t.Errorf("DC %d usage %v exceeds cap", dc, u)
		}
	}
	// DC1 was the violator at 16; its pairs shrink proportionally.
	if got := m.Get(hose.Pair{A: 1, B: 2}); math.Abs(got-5) > 1e-9 {
		t.Errorf("pair demand = %v, want 5", got)
	}
}

func TestClampZeroCapacity(t *testing.T) {
	m := NewMatrix([]int{1, 2})
	m.Set(hose.Pair{A: 1, B: 2}, 4)
	m.ClampToHose(map[int]float64{1: 0, 2: 10})
	if m.Total() != 0 {
		t.Errorf("Total = %v, want 0 with a zero-capacity DC", m.Total())
	}
}

func TestHeavyTailed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dcs := []int{10, 11, 12, 13, 14, 15}
	caps := map[int]float64{}
	for _, dc := range dcs {
		caps[dc] = 100
	}
	m := HeavyTailed(rng, dcs, caps, 0.7)

	use := m.PerDC()
	peak := 0.0
	for _, dc := range dcs {
		if use[dc] > 0.7*caps[dc]+1e-6 {
			t.Errorf("DC %d at %.1f exceeds util target 70", dc, use[dc])
		}
		if use[dc] > peak {
			peak = use[dc]
		}
	}
	if peak < 0.5*70 {
		t.Errorf("busiest DC at %.1f; expected near the 70 target", peak)
	}

	// Heavy tail: the top quarter of pairs carries most of the volume.
	var demands []float64
	for _, p := range m.Pairs() {
		demands = append(demands, m.Get(p))
	}
	total := m.Total()
	topSum := 0.0
	for i := 0; i < len(demands); i++ {
		for j := i + 1; j < len(demands); j++ {
			if demands[j] > demands[i] {
				demands[i], demands[j] = demands[j], demands[i]
			}
		}
	}
	for i := 0; i < len(demands)/4; i++ {
		topSum += demands[i]
	}
	if topSum < 0.5*total {
		t.Errorf("top quarter of pairs carries %.0f%%, want most of the traffic", topSum/total*100)
	}
}

func TestChangeProcessBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dcs := []int{1, 2, 3, 4}
	caps := map[int]float64{1: 50, 2: 50, 3: 50, 4: 50}
	m := HeavyTailed(rng, dcs, caps, 0.4)
	before := m.Clone()
	cp := ChangeProcess{Bound: 0.1, Caps: caps, Util: 0.4}
	cp.Step(rng, m)
	for _, p := range m.Pairs() {
		b, a := before.Get(p), m.Get(p)
		if b == 0 {
			continue
		}
		// Clamping can shrink further, but growth is bounded by 10%.
		if a > b*1.1+1e-9 {
			t.Errorf("pair %v grew %v -> %v, beyond the 10%% bound", p, b, a)
		}
	}
	use := m.PerDC()
	for dc, u := range use {
		if u > 0.4*caps[dc]+1e-6 {
			t.Errorf("DC %d usage %v exceeds target after step", dc, u)
		}
	}
}

func TestChangeProcessUnboundedSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dcs := []int{1, 2, 3, 4, 5}
	caps := map[int]float64{1: 50, 2: 50, 3: 50, 4: 50, 5: 50}
	m := HeavyTailed(rng, dcs, caps, 0.5)
	cp := ChangeProcess{Bound: 0, Caps: caps, Util: 0.5}
	changedALot := false
	for step := 0; step < 20 && !changedALot; step++ {
		before := m.Clone()
		cp.Step(rng, m)
		for _, p := range m.Pairs() {
			b, a := before.Get(p), m.Get(p)
			if b > 0 && a > 3*b {
				changedALot = true // a cold pair became hot
			}
		}
	}
	if !changedALot {
		t.Error("unbounded process never promoted a cold pair")
	}
}

func TestChangeProcessEmptyMatrix(t *testing.T) {
	m := NewMatrix(nil)
	cp := ChangeProcess{Bound: 0.5}
	cp.Step(rand.New(rand.NewSource(1)), m) // must not panic
}
