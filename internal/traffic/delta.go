package traffic

import (
	"fmt"
	"sort"
	"strings"

	"iris/internal/hose"
)

// Delta is a sparse demand update: for each changed DC pair, the new
// absolute demand in wavelengths. It is the unit of work of the
// incremental allocator — a control loop that knows which pairs moved
// hands the allocator a Delta instead of a full matrix, and only those
// pairs (plus any duct-sharing neighbours) are re-solved.
//
// Pairs are keyed canonically; use Set/Get rather than touching Changes
// directly when orientation is not guaranteed.
type Delta struct {
	Changes map[hose.Pair]float64
}

// NewDelta returns an empty delta.
func NewDelta() Delta {
	return Delta{Changes: make(map[hose.Pair]float64)}
}

// Set records a pair's new absolute demand. Negative demands panic, like
// Matrix.Set.
func (d Delta) Set(p hose.Pair, demand float64) {
	if demand < 0 {
		panic(fmt.Sprintf("traffic: negative demand %v for %v", demand, p))
	}
	d.Changes[p.Canonical()] = demand
}

// Get returns the new demand recorded for a pair and whether the pair is
// part of the delta.
func (d Delta) Get(p hose.Pair) (float64, bool) {
	v, ok := d.Changes[p.Canonical()]
	return v, ok
}

// Len returns the number of changed pairs.
func (d Delta) Len() int { return len(d.Changes) }

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Changes) == 0 }

// Pairs returns the changed pairs in deterministic (A, then B) order.
func (d Delta) Pairs() []hose.Pair {
	out := make([]hose.Pair, 0, len(d.Changes))
	for p := range d.Changes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Clone returns a deep copy.
func (d Delta) Clone() Delta {
	c := NewDelta()
	for p, v := range d.Changes {
		c.Changes[p] = v
	}
	return c
}

// Merge folds a later delta into this one: for pairs present in both, the
// later value wins. This is how a burst of feed ticks coalesces into one
// incremental solve.
func (d Delta) Merge(later Delta) {
	for p, v := range later.Changes {
		d.Changes[p] = v
	}
}

// ApplyTo writes the delta's demands into a matrix.
func (d Delta) ApplyTo(m *Matrix) {
	for p, v := range d.Changes {
		m.Set(p, v)
	}
}

// String renders the delta compactly for logs and trace attributes.
func (d Delta) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "delta{%d pairs", len(d.Changes))
	if n := len(d.Changes); n > 0 && n <= 4 {
		for _, p := range d.Pairs() {
			fmt.Fprintf(&b, " %d-%d=%.1f", p.A, p.B, d.Changes[p])
		}
	}
	b.WriteString("}")
	return b.String()
}

// DiffMatrices returns the delta that turns old into new: every pair
// whose demand differs between the two matrices, mapped to its demand in
// new. Pairs absent from a matrix count as zero demand, so DCs may be
// added or drained through a diff.
func DiffMatrices(old, new *Matrix) Delta {
	d := NewDelta()
	for p, v := range new.Demand {
		if old.Demand[p] != v {
			d.Changes[p] = v
		}
	}
	for p := range old.Demand {
		if _, ok := new.Demand[p]; !ok && old.Demand[p] != 0 {
			d.Changes[p] = 0
		}
	}
	return d
}
