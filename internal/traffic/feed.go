package traffic

import (
	"fmt"
	"math/rand"

	"iris/internal/trace"
)

// Source yields successive demand matrices — the traffic feed a control
// loop converges to. Implementations must hand ownership of each returned
// matrix to the caller.
type Source interface {
	// Next returns the next demand matrix, or ok=false when the feed is
	// exhausted (a finite replay reached its end). Exhaustion is a stable
	// state: once Next has returned ok=false it must keep returning
	// ok=false on every later call, with no side effects — callers such
	// as the daemon's coalescing Step loop probe an exhausted source
	// repeatedly and rely on the repeat calls being idempotent.
	Next() (m *Matrix, ok bool)
}

// Replay replays a fixed sequence of matrices: scripted traffic shifts for
// demos and deterministic tests.
type Replay struct {
	ms []*Matrix
}

// NewReplay returns a feed that yields clones of the given matrices in
// order, then reports exhaustion.
func NewReplay(ms ...*Matrix) *Replay {
	return &Replay{ms: append([]*Matrix(nil), ms...)}
}

// Next implements Source.
func (r *Replay) Next() (*Matrix, bool) {
	if len(r.ms) == 0 {
		return nil, false
	}
	m := r.ms[0]
	r.ms = r.ms[1:]
	return m.Clone(), true
}

// Evolver is an endless feed that yields a base matrix and then evolves it
// with the §6.3 change process: each Next is one interval of the paper's
// bounded-drift or pair-swap demand dynamics.
type Evolver struct {
	rng     *rand.Rand
	cp      ChangeProcess
	m       *Matrix
	started bool
}

// NewEvolver returns an evolving feed seeded for reproducibility. The base
// matrix is yielded as the first step and then stepped in place.
func NewEvolver(seed int64, base *Matrix, cp ChangeProcess) *Evolver {
	return &Evolver{rng: rand.New(rand.NewSource(seed)), cp: cp, m: base.Clone()}
}

// Next implements Source; it never exhausts.
func (e *Evolver) Next() (*Matrix, bool) {
	if !e.started {
		e.started = true
		return e.m.Clone(), true
	}
	e.cp.Step(e.rng, e.m)
	return e.m.Clone(), true
}

// Limit caps a feed at n matrices; it exhausts when either the underlying
// source does or n matrices have been yielded. Non-positive n yields an
// immediately exhausted feed.
func Limit(s Source, n int) Source {
	return &limited{s: s, left: n}
}

type limited struct {
	s    Source
	left int
}

func (l *limited) Next() (*Matrix, bool) {
	if l.left <= 0 {
		return nil, false
	}
	l.left--
	return l.s.Next()
}

// Traced wraps a feed so every shift it yields is journaled as an
// instant "shift" event in the flight recorder, carrying the step index
// and the matrix's total demand — the breadcrumb that lets an operator
// line a reconfiguration trace up with the traffic step that caused it.
// A nil tracer returns s unchanged.
func Traced(s Source, t *trace.Tracer) Source {
	if t == nil {
		return s
	}
	return &traced{s: s, t: t}
}

type traced struct {
	s         Source
	t         *trace.Tracer
	step      int
	exhausted bool
}

func (tr *traced) Next() (*Matrix, bool) {
	m, ok := tr.s.Next()
	if !ok {
		// A polling loop keeps calling Next after exhaustion (the Source
		// contract makes that idempotent); journal the transition once
		// instead of flooding the flight-recorder ring with repeats.
		if !tr.exhausted {
			tr.exhausted = true
			tr.t.Emit(0, "feed-exhausted", "", fmt.Sprintf("step=%d", tr.step))
		}
		return nil, false
	}
	tr.step++
	tr.t.Emit(0, "shift", "", fmt.Sprintf("step=%d total=%.1f", tr.step, m.Total()))
	return m, ok
}
