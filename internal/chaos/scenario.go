// Package chaos closes the loop between the planner's k-failure guarantee
// (Algorithm 1, §4.1) and the behaviour of a provisioned region. It has
// three layers:
//
//   - Scenario generators produce typed failure scenarios over a fiber map:
//     duct cuts (the paper's failure model), fiber-hut loss (every incident
//     duct), amplifier-site failure, DC-site loss, and correlated
//     geo-radius events (a backhoe or disaster severing every duct whose
//     route passes through a disk).
//   - The Auditor (audit.go) replays each scenario against a finished plan
//     and verifies the provisioned capacities still admit the hose traffic
//     of every surviving DC pair, aggregating survivability curves.
//   - The Injector (inject.go) turns scenarios into live device faults on
//     an emulated fabric and drives the irisd control plane through
//     inject → detect → restore → heal → replan cycles, measuring
//     detection-to-repair latency from trace spans.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"iris/internal/fibermap"
	"iris/internal/geo"
	"iris/internal/graph"
	"iris/internal/optics"
	"iris/internal/plan"
)

// Kind classifies a failure scenario.
type Kind int

const (
	// DuctCut severs a set of fiber ducts — the planner's own failure
	// model (OC4 plans against up to MaxFailures simultaneous cuts).
	DuctCut Kind = iota
	// HutLoss takes a fiber hut offline: every duct terminating there is
	// severed at once (power loss, fire, flooding).
	HutLoss
	// AmpFailure fails an amplifier site. Losing the amplifier darkens
	// the hut's optical line system, so it is modelled conservatively as
	// the loss of every duct incident to the site.
	AmpFailure
	// DCLoss takes a data-center site offline, severing its access ducts.
	DCLoss
	// GeoEvent is a correlated failure: every duct whose route passes
	// within a radius of an epicentre is severed together, modelling
	// backhoe cuts and localized disasters that the independent-failure
	// model misses.
	GeoEvent
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DuctCut:
		return "cut"
	case HutLoss:
		return "hut"
	case AmpFailure:
		return "amp"
	case DCLoss:
		return "dc"
	case GeoEvent:
		return "geo"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalText lets JSON surfaces report kinds by name.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the names MarshalText produces, so faults and
// audit results round-trip through their JSON surfaces.
func (k *Kind) UnmarshalText(text []byte) error {
	parsed, err := KindFromString(string(text))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// KindFromString parses the names String produces.
func KindFromString(s string) (Kind, error) {
	for _, k := range []Kind{DuctCut, HutLoss, AmpFailure, DCLoss, GeoEvent} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown scenario kind %q", s)
}

// Scenario is one failure event: a set of simultaneously severed ducts,
// tagged with what caused it. Every scenario reduces to its duct set for
// auditing; the kind and site drive reporting and live injection.
type Scenario struct {
	Kind Kind   `json:"kind"`
	Name string `json:"name"`
	// Ducts are the severed duct IDs, sorted ascending.
	Ducts []int `json:"ducts"`
	// Node is the failed site for HutLoss, AmpFailure and DCLoss; -1
	// otherwise.
	Node int `json:"node,omitempty"`
	// Center and RadiusKM locate a GeoEvent.
	Center   geo.Point `json:"center"`
	RadiusKM float64   `json:"radius_km,omitempty"`
}

// CutCount returns the number of ducts the scenario severs.
func (s Scenario) CutCount() int { return len(s.Ducts) }

// CutSet returns the severed ducts as a set.
func (s Scenario) CutSet() map[int]bool {
	set := make(map[int]bool, len(s.Ducts))
	for _, id := range s.Ducts {
		set[id] = true
	}
	return set
}

// Cut builds a plain duct-cut scenario from the given duct IDs.
func Cut(ducts ...int) Scenario {
	sorted := append([]int(nil), ducts...)
	sort.Ints(sorted)
	return Scenario{
		Kind:  DuctCut,
		Name:  fmt.Sprintf("cut%v", sorted),
		Ducts: sorted,
		Node:  -1,
	}
}

// usableDucts returns the IDs of m's ducts short enough to carry traffic
// point-to-point (§4.1 excludes ducts beyond the unamplified span limit,
// matching plan.BaseGraph). Cutting an excluded duct is a no-op, so
// generators enumerate only these.
func usableDucts(m *fibermap.Map) []int {
	var ids []int
	for _, d := range m.Ducts {
		if d.FiberKM <= optics.MaxSpanKM {
			ids = append(ids, d.ID)
		}
	}
	return ids
}

// incidentDucts returns the usable ducts terminating at the given node.
func incidentDucts(m *fibermap.Map, node int) []int {
	var ids []int
	for _, d := range m.Ducts {
		if (d.A == node || d.B == node) && d.FiberKM <= optics.MaxSpanKM {
			ids = append(ids, d.ID)
		}
	}
	return ids
}

// EnumerateCuts exhaustively generates every duct-cut scenario of size 0
// through maxCuts over m's usable ducts, in deterministic order (the
// failure-free baseline first, then depth-first by duct ID). The size-0
// scenario anchors a survivability curve.
func EnumerateCuts(m *fibermap.Map, maxCuts int) []Scenario {
	ids := usableDucts(m)
	out := make([]Scenario, 0, graph.CountFailureScenarios(len(ids), maxCuts))
	graph.FailureScenarios(ids, maxCuts, func(cut map[int]bool) {
		ducts := make([]int, 0, len(cut))
		for id := range cut {
			ducts = append(ducts, id)
		}
		out = append(out, Cut(ducts...))
	})
	return out
}

// SampleCuts draws n distinct duct-cut scenarios of exactly k cuts,
// uniformly without replacement from the usable ducts, for failure spaces
// too large to enumerate. The same seed always yields the same scenarios.
// Fewer than n scenarios are returned when the space is smaller than n.
func SampleCuts(seed int64, m *fibermap.Map, k, n int) []Scenario {
	ids := usableDucts(m)
	if k <= 0 || k > len(ids) {
		return nil
	}
	if total := graph.CountFailureScenarios(len(ids), k) - graph.CountFailureScenarios(len(ids), k-1); n > total {
		n = total
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]Scenario, 0, n)
	for len(out) < n {
		perm := rng.Perm(len(ids))
		ducts := make([]int, k)
		for i := 0; i < k; i++ {
			ducts[i] = ids[perm[i]]
		}
		sc := Cut(ducts...)
		if seen[sc.Name] {
			continue
		}
		seen[sc.Name] = true
		out = append(out, sc)
	}
	return out
}

// HutLossScenarios generates one scenario per fiber hut, each severing
// every usable duct incident to the hut.
func HutLossScenarios(m *fibermap.Map) []Scenario {
	var out []Scenario
	for _, n := range m.Nodes {
		if n.Kind != fibermap.Hut {
			continue
		}
		ducts := incidentDucts(m, n.ID)
		if len(ducts) == 0 {
			continue
		}
		sc := Cut(ducts...)
		sc.Kind = HutLoss
		sc.Name = fmt.Sprintf("hut %s", n.Name)
		sc.Node = n.ID
		out = append(out, sc)
	}
	return out
}

// DCLossScenarios generates one scenario per data center, each severing
// the DC's access ducts. A DC loss always disconnects that DC; the audit
// reports whether the surviving DCs' traffic still fits.
func DCLossScenarios(m *fibermap.Map) []Scenario {
	var out []Scenario
	for _, n := range m.Nodes {
		if n.Kind != fibermap.DC {
			continue
		}
		ducts := incidentDucts(m, n.ID)
		if len(ducts) == 0 {
			continue
		}
		sc := Cut(ducts...)
		sc.Kind = DCLoss
		sc.Name = fmt.Sprintf("dc %s", n.Name)
		sc.Node = n.ID
		out = append(out, sc)
	}
	return out
}

// AmpFailureScenarios generates one scenario per amplifier site of the
// plan. An amplifier failure darkens every lit fiber through its hut, so
// the site's incident ducts are severed (a conservative model: paths not
// using the amplifier but switched at the hut are counted as lost too).
func AmpFailureScenarios(pl *plan.Plan) []Scenario {
	sites := make([]int, 0, len(pl.Amps))
	for node, count := range pl.Amps {
		if count > 0 {
			sites = append(sites, node)
		}
	}
	sort.Ints(sites)
	var out []Scenario
	for _, node := range sites {
		ducts := incidentDucts(pl.Input.Map, node)
		if len(ducts) == 0 {
			continue
		}
		sc := Cut(ducts...)
		sc.Kind = AmpFailure
		sc.Name = fmt.Sprintf("amp %s", pl.Input.Map.Nodes[node].Name)
		sc.Node = node
		out = append(out, sc)
	}
	return out
}

// GeoEvents generates n correlated failure scenarios: epicentres drawn
// uniformly from the map's footprint, each severing every usable duct
// whose straight-line route passes within radiusKM of the epicentre.
// Events that hit no duct are redrawn (bounded), so every returned
// scenario severs at least one duct. The same seed yields the same events.
func GeoEvents(seed int64, m *fibermap.Map, radiusKM float64, n int) []Scenario {
	pts := make([]geo.Point, len(m.Nodes))
	for i, node := range m.Nodes {
		pts[i] = node.Pos
	}
	rect := geo.BoundingRect(pts)
	rng := rand.New(rand.NewSource(seed))
	out := make([]Scenario, 0, n)
	for attempts := 0; len(out) < n && attempts < 64*n; attempts++ {
		c := geo.RandomInRect(rng, rect)
		var ducts []int
		for _, d := range m.Ducts {
			if d.FiberKM > optics.MaxSpanKM {
				continue
			}
			if geo.DistToSegment(c, m.Nodes[d.A].Pos, m.Nodes[d.B].Pos) <= radiusKM {
				ducts = append(ducts, d.ID)
			}
		}
		if len(ducts) == 0 {
			continue
		}
		sc := Cut(ducts...)
		sc.Kind = GeoEvent
		sc.Name = fmt.Sprintf("geo %s r=%.1f", c, radiusKM)
		sc.Node = -1
		sc.Center = c
		sc.RadiusKM = radiusKM
		out = append(out, sc)
	}
	return out
}
