package chaos

import (
	"testing"

	"iris/internal/core"
	"iris/internal/fibermap"
)

// planSynthetic generates a seeded synthetic region, places DCs on it and
// plans with the given duct-cut tolerance.
func planSynthetic(t *testing.T, seed int64, dcs, failures int) *core.Deployment {
	t.Helper()
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = seed
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = seed, dcs
	sites, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatalf("seed %d: place DCs: %v", seed, err)
	}
	caps := make(map[int]int)
	for _, dc := range sites {
		caps[dc] = 8
	}
	dep, err := core.Plan(
		core.Region{Map: m, Capacity: caps, Lambda: 40},
		core.Options{MaxFailures: failures},
	)
	if err != nil {
		t.Fatalf("seed %d: plan: %v", seed, err)
	}
	return dep
}

// TestPlanGuaranteeHolds is the subsystem's property test: a plan built
// with MaxFailures=k must audit 100% admissible against every cut set of
// at most k ducts — the planner's Algorithm-1 guarantee, checked by
// independent replay on seeded synthetic regions.
func TestPlanGuaranteeHolds(t *testing.T) {
	cases := []struct {
		seed     int64
		failures int
	}{
		{seed: 1, failures: 1},
		{seed: 2, failures: 1},
		{seed: 3, failures: 2},
	}
	for _, tc := range cases {
		dep := planSynthetic(t, tc.seed, 4, tc.failures)
		a := NewAuditor(dep.Plan)
		scs := EnumerateCuts(dep.Region.Map, tc.failures)
		bad := 0
		for _, r := range a.Run(scs, 0) {
			if !r.Admissible {
				bad++
				if bad <= 3 {
					t.Errorf("seed %d k=%d: scenario %q not admissible: overloads %v, residual %v",
						tc.seed, tc.failures, r.Scenario.Name, r.Overloads, r.ResidualOverloads)
				}
			}
		}
		if bad > 0 {
			t.Errorf("seed %d k=%d: %d/%d scenarios inadmissible", tc.seed, tc.failures, bad, len(scs))
		}
	}
}

// TestZeroTolerancePlanFails is the property test's converse: a plan built
// with no failure tolerance must be non-surviving under at least one
// single duct cut — otherwise the audit would be vacuous.
func TestZeroTolerancePlanFails(t *testing.T) {
	dep := planSynthetic(t, 1, 4, 0)
	a := NewAuditor(dep.Plan)
	failed := 0
	for _, r := range a.Run(EnumerateCuts(dep.Region.Map, 1), 0) {
		if r.Cuts == 1 && !r.Survives {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("MaxFailures=0 plan survived every single duct cut; the audit cannot distinguish plans")
	}
}
