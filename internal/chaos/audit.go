package chaos

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"iris/internal/graph"
	"iris/internal/hose"
	"iris/internal/optics"
	"iris/internal/parallel"
	"iris/internal/plan"
)

// Auditor replays failure scenarios against a finished plan and checks
// whether the provisioned capacities still admit the hose traffic.
//
// For each scenario it materialises the degraded graph, re-routes every DC
// pair exactly as the planner would (same deterministic Dijkstra
// tie-breaking, same hub walks for centralized plans), and per duct
// verifies the worst-case hose-model load of the crossing pairs — computed
// by the same bipartite-double-cover max-flow the planner uses — fits the
// base plus cut-through fiber leased there. A pair a cut disconnects is
// skipped, matching the planner's own guarantee: Algorithm 1 owes no
// capacity to pairs with no surviving path, so admissibility means "every
// pair that still has a path gets its full hose demand", and Survives
// additionally demands that no pair lost its path.
//
// An Auditor is safe for concurrent Audit calls; Run fans scenarios out
// over a worker pool.
type Auditor struct {
	pl     *plan.Plan
	base   *graph.Graph
	dcs    []int
	caps   map[int]float64
	baseKM map[hose.Pair]float64 // failure-free path length per pair

	havePairs map[int]int // duct -> base + cut-through fiber-pairs
	residual  map[int]int // duct -> residual fiber-pairs

	// mu guards the worst-case-load memo; most scenarios reproduce the
	// same per-duct pair sets, so loads are shared across Audit calls.
	mu    sync.Mutex
	loads map[string]float64
}

// NewAuditor prepares an auditor for the given plan. The plan's base graph
// is rebuilt unless the plan's input carried one.
func NewAuditor(pl *plan.Plan) *Auditor {
	base := pl.Input.Base
	if base == nil {
		base = plan.BaseGraph(pl.Input.Map)
	}
	a := &Auditor{
		pl:        pl,
		base:      base,
		dcs:       pl.Input.Map.DCs(),
		caps:      make(map[int]float64),
		baseKM:    make(map[hose.Pair]float64),
		havePairs: make(map[int]int),
		residual:  make(map[int]int),
		loads:     make(map[string]float64),
	}
	for _, dc := range a.dcs {
		a.caps[dc] = float64(pl.Input.Capacity[dc])
	}
	for id, du := range pl.Ducts {
		a.havePairs[id] = du.BasePairs + du.CutThroughPairs
		a.residual[id] = du.ResidualPairs
	}
	for pair, info := range pl.Paths {
		a.baseKM[pair] = info.TotalKM
	}
	return a
}

// Overload records one duct whose provisioned fiber cannot carry the
// worst-case hose load (or pair count, for residual fibers) a scenario
// routes across it.
type Overload struct {
	DuctID int `json:"duct"`
	// NeedPairs is the fiber the scenario requires on the duct.
	NeedPairs int `json:"need"`
	// HavePairs is the fiber the plan provisioned there.
	HavePairs int `json:"have"`
}

// Result is the audit outcome for one scenario.
type Result struct {
	Scenario Scenario `json:"scenario"`
	// Cuts is the number of ducts the scenario severed.
	Cuts int `json:"cuts"`
	// Admissible: every DC pair with a surviving path gets its full hose
	// demand within the provisioned fiber.
	Admissible bool `json:"admissible"`
	// Survives: admissible and no DC pair lost its path.
	Survives bool `json:"survives"`
	// DisconnectedPairs counts DC pairs with no surviving path;
	// DisconnectedDCs lists the DCs cut off from the largest surviving
	// DC cluster (ties broken toward the cluster holding the lowest ID).
	DisconnectedPairs int   `json:"disconnected_pairs"`
	DisconnectedDCs   []int `json:"disconnected_dcs,omitempty"`
	// Overloads are ducts whose hose load exceeds base plus cut-through
	// fiber; ResidualOverloads are ducts crossed by more pairs than
	// residual fibers provisioned (§4.3).
	Overloads         []Overload `json:"overloads,omitempty"`
	ResidualOverloads []Overload `json:"residual_overloads,omitempty"`
	// WorstPairFibers is the residual worst-pair throughput: the minimum
	// over surviving DC pairs of the max-flow between them across the
	// provisioned ducts (in fiber-pairs). 0 when no pair survives.
	WorstPairFibers float64 `json:"worst_pair_fibers"`
	// MaxStretch is the worst ratio of a pair's degraded path length to
	// its failure-free length (1 when routing is unchanged).
	MaxStretch float64 `json:"max_stretch"`
	// SLAViolations counts surviving pairs whose degraded path exceeds
	// the SLA fiber distance.
	SLAViolations int `json:"sla_violations"`
}

// Audit replays one scenario against the plan.
func (a *Auditor) Audit(sc Scenario) Result {
	res := Result{Scenario: sc, Cuts: sc.CutCount(), MaxStretch: 1}
	g := a.base
	if len(sc.Ducts) > 0 {
		g = a.base.WithoutEdges(sc.CutSet())
	}

	// Route every pair the way the planner does and collect per-duct
	// crossings (with multiplicity: centralized hub walks can cross a
	// duct twice).
	crossings := make(map[int]map[hose.Pair]int)
	residByDuct := make(map[int]int)
	connected := make([]hose.Pair, 0, len(a.dcs)*(len(a.dcs)-1)/2)

	record := func(pair hose.Pair, edges []graph.Edge, totalKM float64) {
		connected = append(connected, pair)
		for _, e := range edges {
			residByDuct[e.ID]++
			byPair := crossings[e.ID]
			if byPair == nil {
				byPair = make(map[hose.Pair]int)
				crossings[e.ID] = byPair
			}
			byPair[pair]++
		}
		if totalKM > optics.MaxPathKM+1e-9 {
			res.SLAViolations++
		}
		if base, ok := a.baseKM[pair]; ok && base > 0 {
			if s := totalKM / base; s > res.MaxStretch {
				res.MaxStretch = s
			}
		}
	}

	if hubs := a.pl.Input.ViaHubs; len(hubs) > 0 {
		hubTrees := make(map[int]*graph.ShortestPathTree, len(hubs))
		for _, h := range hubs {
			hubTrees[h] = g.Dijkstra(h)
		}
		for i, x := range a.dcs {
			for _, y := range a.dcs[i+1:] {
				pair := hose.Pair{A: x, B: y}
				edges, total, ok := bestHubWalk(hubTrees, hubs, x, y)
				if !ok {
					res.DisconnectedPairs++
					continue
				}
				record(pair, edges, total)
			}
		}
	} else {
		trees := make(map[int]*graph.ShortestPathTree, len(a.dcs))
		for _, dc := range a.dcs {
			trees[dc] = g.Dijkstra(dc)
		}
		for i, x := range a.dcs {
			for _, y := range a.dcs[i+1:] {
				pair := hose.Pair{A: x, B: y}
				_, edges, ok := trees[x].PathTo(y)
				if !ok {
					res.DisconnectedPairs++
					continue
				}
				record(pair, edges, trees[x].Dist[y])
			}
		}
	}

	res.DisconnectedDCs = strandedDCs(a.dcs, connected)

	// Capacity check per crossed duct, mirroring the planner's
	// provisioning rule: worst-case hose load of the crossing pairs plus
	// the multi-crossing surcharge, against base + cut-through fiber.
	// Cut-through fiber counts because its riders are among the crossing
	// pairs and their load never exceeds the cut-through's provisioned
	// size (the b-matching LP is subadditive over pair-set unions).
	ductIDs := make([]int, 0, len(crossings))
	for id := range crossings {
		ductIDs = append(ductIDs, id)
	}
	sort.Ints(ductIDs)
	for _, id := range ductIDs {
		byPair := crossings[id]
		pairs := make([]hose.Pair, 0, len(byPair))
		extra := 0.0
		for pair, k := range byPair {
			pairs = append(pairs, pair)
			if k > 1 {
				extra += float64(k-1) * math.Min(a.caps[pair.A], a.caps[pair.B])
			}
		}
		need := int(math.Ceil(a.cachedLoad(pairs) + extra - 1e-9))
		if have := a.havePairs[id]; need > have {
			res.Overloads = append(res.Overloads, Overload{DuctID: id, NeedPairs: need, HavePairs: have})
		}
		if n, have := residByDuct[id], a.residual[id]; n > have {
			res.ResidualOverloads = append(res.ResidualOverloads, Overload{DuctID: id, NeedPairs: n, HavePairs: have})
		}
	}

	res.Admissible = len(res.Overloads) == 0 && len(res.ResidualOverloads) == 0
	res.Survives = res.Admissible && res.DisconnectedPairs == 0
	res.WorstPairFibers = a.worstPairThroughput(sc.CutSet(), connected)
	return res
}

// strandedDCs returns the DCs outside the largest cluster the surviving
// pairs connect, sorted ascending. Ties go to the cluster holding the
// lowest DC ID, so the result is deterministic even for an even split.
func strandedDCs(dcs []int, pairs []hose.Pair) []int {
	parent := make(map[int]int, len(dcs))
	for _, dc := range dcs {
		parent[dc] = dc
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range pairs {
		ra, rb := find(p.A), find(p.B)
		if ra != rb {
			// Root at the smaller ID so the tie-break below is stable.
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	size := make(map[int]int)
	for _, dc := range dcs {
		size[find(dc)]++
	}
	best := -1
	for _, dc := range dcs { // ascending IDs: first max wins ties
		if r := find(dc); size[r] > 0 && (best == -1 || size[r] > size[best]) {
			best = r
		}
	}
	var out []int
	for _, dc := range dcs {
		if find(dc) != best {
			out = append(out, dc)
		}
	}
	sort.Ints(out)
	return out
}

// bestHubWalk mirrors the planner's centralized routing: the shortest
// DC-hub-DC walk over the given hubs, whose legs may share ducts.
func bestHubWalk(trees map[int]*graph.ShortestPathTree, hubs []int, a, b int) (edges []graph.Edge, total float64, ok bool) {
	best := graph.Inf
	for _, h := range hubs {
		t := trees[h]
		d := t.Dist[a] + t.Dist[b]
		if d >= best || d >= graph.Inf {
			continue
		}
		_, edgesA, okA := t.PathTo(a)
		_, edgesB, okB := t.PathTo(b)
		if !okA || !okB {
			continue
		}
		es := make([]graph.Edge, 0, len(edgesA)+len(edgesB))
		for i := len(edgesA) - 1; i >= 0; i-- {
			es = append(es, edgesA[i])
		}
		es = append(es, edgesB...)
		edges, total, ok = es, d, true
		best = d
	}
	return edges, total, ok
}

// worstPairThroughput builds one flow network over the surviving
// provisioned ducts (arc capacity = total leased fiber-pairs, both
// directions) and returns the minimum max-flow over the surviving pairs —
// the residual worst-pair throughput of the degraded region. The network
// is built once per scenario and Reset between per-pair runs.
func (a *Auditor) worstPairThroughput(cut map[int]bool, pairs []hose.Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	f := graph.NewFlowNetwork(len(a.pl.Input.Map.Nodes))
	for id, have := range a.havePairs {
		total := have + a.residual[id]
		if total == 0 || cut[id] {
			continue
		}
		d := a.pl.Input.Map.Ducts[id]
		f.AddArc(d.A, d.B, float64(total))
		f.AddArc(d.B, d.A, float64(total))
	}
	worst := math.Inf(1)
	for i, pair := range pairs {
		if i > 0 {
			f.Reset()
		}
		if flow := f.MaxFlow(pair.A, pair.B); flow < worst {
			worst = flow
		}
	}
	return worst
}

// cachedLoad memoises hose.WorstCaseLoad over the plan's DC capacities,
// keyed by the sorted pair-set signature (as the planner does), shared
// across concurrent Audit calls.
func (a *Auditor) cachedLoad(pairs []hose.Pair) float64 {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	key := make([]byte, 0, 4*len(pairs))
	for _, pr := range pairs {
		key = append(key,
			byte(pr.A), byte(pr.A>>8),
			byte(pr.B), byte(pr.B>>8))
	}
	a.mu.Lock()
	load, ok := a.loads[string(key)]
	a.mu.Unlock()
	if ok {
		return load
	}
	load = hose.WorstCaseLoad(a.caps, pairs)
	a.mu.Lock()
	a.loads[string(key)] = load
	a.mu.Unlock()
	return load
}

// Run audits every scenario across the given number of workers (0 =
// GOMAXPROCS, 1 = serial). Results are in scenario order regardless of
// scheduling, and identical at every parallelism setting.
func (a *Auditor) Run(scenarios []Scenario, parallelism int) []Result {
	results := make([]Result, len(scenarios))
	_ = parallel.ForEach(len(scenarios), parallelism, func(i int) error {
		results[i] = a.Audit(scenarios[i])
		return nil
	})
	return results
}

// CurvePoint aggregates the audits of all scenarios severing the same
// number of ducts — one point of a survivability curve.
type CurvePoint struct {
	Cuts       int `json:"cuts"`
	Scenarios  int `json:"scenarios"`
	Admissible int `json:"admissible"`
	Surviving  int `json:"surviving"`
}

// FracAdmissible is the fraction of scenarios at this cut count whose
// surviving pairs all fit the provisioned fiber.
func (p CurvePoint) FracAdmissible() float64 {
	if p.Scenarios == 0 {
		return 0
	}
	return float64(p.Admissible) / float64(p.Scenarios)
}

// FracSurviving is the fraction of scenarios at this cut count the region
// fully survives (admissible and no pair disconnected).
func (p CurvePoint) FracSurviving() float64 {
	if p.Scenarios == 0 {
		return 0
	}
	return float64(p.Surviving) / float64(p.Scenarios)
}

// Curve aggregates audit results into a survivability curve: one point
// per distinct cut count, ascending.
func Curve(results []Result) []CurvePoint {
	byCuts := make(map[int]*CurvePoint)
	for _, r := range results {
		p := byCuts[r.Cuts]
		if p == nil {
			p = &CurvePoint{Cuts: r.Cuts}
			byCuts[r.Cuts] = p
		}
		p.Scenarios++
		if r.Admissible {
			p.Admissible++
		}
		if r.Survives {
			p.Surviving++
		}
	}
	cuts := make([]int, 0, len(byCuts))
	for c := range byCuts {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	out := make([]CurvePoint, 0, len(cuts))
	for _, c := range cuts {
		out = append(out, *byCuts[c])
	}
	return out
}

// Summary is a one-line digest of a result set, for logs and CLIs.
func Summary(results []Result) string {
	adm, surv := 0, 0
	for _, r := range results {
		if r.Admissible {
			adm++
		}
		if r.Survives {
			surv++
		}
	}
	return fmt.Sprintf("%d scenarios: %d admissible (%.1f%%), %d surviving (%.1f%%)",
		len(results), adm, 100*float64(adm)/float64(max(len(results), 1)),
		surv, 100*float64(surv)/float64(max(len(results), 1)))
}
