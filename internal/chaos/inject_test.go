package chaos

import (
	"errors"
	"reflect"
	"testing"
)

type echoDev struct{}

func (echoDev) Kind() string { return "echo" }

func (echoDev) Handle(op string, args map[string]any) (map[string]any, error) {
	return map[string]any{"op": op}, nil
}

func TestDeviceSetFaulting(t *testing.T) {
	s := NewDeviceSet()
	dev := s.Wrap("h1-oss", echoDev{})
	s.Wrap("dc1-xcvr", echoDev{})
	if got := s.Names(); !reflect.DeepEqual(got, []string{"dc1-xcvr", "h1-oss"}) {
		t.Fatalf("Names() = %v", got)
	}

	if _, err := dev.Handle("state", nil); err != nil {
		t.Fatalf("healthy device failed: %v", err)
	}

	// Overlapping faults are reference-counted: the device heals only when
	// the last fault is removed.
	s.addFault("h1-oss")
	s.addFault("h1-oss")
	if _, err := dev.Handle("state", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted device returned %v, want ErrInjected", err)
	}
	s.removeFault("h1-oss")
	if _, err := dev.Handle("state", nil); !errors.Is(err, ErrInjected) {
		t.Fatal("device healed while a second fault was still active")
	}
	s.removeFault("h1-oss")
	if _, err := dev.Handle("state", nil); err != nil {
		t.Fatalf("device still failing after all faults removed: %v", err)
	}

	if !s.has("h1-oss") || s.has("h9-oss") {
		t.Fatal("membership check wrong")
	}
}
