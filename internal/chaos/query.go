package chaos

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"iris/internal/fibermap"
	"iris/internal/geo"
)

// ScenarioFromQuery builds a scenario from HTTP query parameters against
// a fiber map — the wire format of /debug/chaos POSTs and the topology
// API's what-if endpoint:
//
//	kind=cut&duct=3&duct=7
//	kind=hut|dc|amp&node=4
//	kind=geo&x=1.5&y=-3&radius=2
func ScenarioFromQuery(m *fibermap.Map, q url.Values) (Scenario, error) {
	kind, err := KindFromString(q.Get("kind"))
	if err != nil {
		return Scenario{}, err
	}
	parseNode := func() (int, error) {
		n, err := strconv.Atoi(q.Get("node"))
		if err != nil || n < 0 || n >= len(m.Nodes) {
			return 0, fmt.Errorf("chaos: bad node %q", q.Get("node"))
		}
		return n, nil
	}
	switch kind {
	case DuctCut:
		var ducts []int
		for _, v := range q["duct"] {
			id, err := strconv.Atoi(v)
			if err != nil || id < 0 || id >= len(m.Ducts) {
				return Scenario{}, fmt.Errorf("chaos: bad duct %q", v)
			}
			ducts = append(ducts, id)
		}
		if len(ducts) == 0 {
			return Scenario{}, fmt.Errorf("chaos: cut needs at least one duct")
		}
		return Cut(ducts...), nil
	case HutLoss, DCLoss, AmpFailure:
		node, err := parseNode()
		if err != nil {
			return Scenario{}, err
		}
		sc := Cut(incidentDucts(m, node)...)
		sc.Kind = kind
		sc.Name = fmt.Sprintf("%s %s", kind, m.Nodes[node].Name)
		sc.Node = node
		return sc, nil
	case GeoEvent:
		x, errX := strconv.ParseFloat(q.Get("x"), 64)
		y, errY := strconv.ParseFloat(q.Get("y"), 64)
		radius, errR := strconv.ParseFloat(q.Get("radius"), 64)
		if errX != nil || errY != nil || errR != nil || radius <= 0 {
			return Scenario{}, fmt.Errorf("chaos: geo needs x, y and a positive radius")
		}
		c := geo.Point{X: x, Y: y}
		var ducts []int
		for _, d := range m.Ducts {
			if geo.DistToSegment(c, m.Nodes[d.A].Pos, m.Nodes[d.B].Pos) <= radius {
				ducts = append(ducts, d.ID)
			}
		}
		sc := Cut(ducts...)
		sc.Kind = GeoEvent
		sc.Name = fmt.Sprintf("geo %s r=%.1f", c, radius)
		sc.Node = -1
		sc.Center = c
		sc.RadiusKM = radius
		return sc, nil
	}
	return Scenario{}, fmt.Errorf("chaos: unsupported kind %q", kind)
}

// ParseScenario builds a scenario from its compact text form, the
// human-typable spelling of the same scenarios ScenarioFromQuery accepts:
//
//	cut:3,7     cut ducts 3 and 7
//	hut:2       lose hut node 2
//	dc:1        lose DC node 1
//	amp:0       fail the amplifier at node 0
//	geo:x,y,r   everything within r km of (x, y)
func ParseScenario(m *fibermap.Map, s string) (Scenario, error) {
	kindStr, rest, ok := strings.Cut(strings.TrimSpace(s), ":")
	if !ok || rest == "" {
		return Scenario{}, fmt.Errorf("chaos: scenario %q: want kind:args (e.g. cut:3,7 or geo:1.5,-3,2)", s)
	}
	q := url.Values{"kind": {kindStr}}
	args := strings.Split(rest, ",")
	switch kindStr {
	case "cut":
		q["duct"] = args
	case "hut", "dc", "amp":
		if len(args) != 1 {
			return Scenario{}, fmt.Errorf("chaos: scenario %q: %s takes one node", s, kindStr)
		}
		q.Set("node", args[0])
	case "geo":
		if len(args) != 3 {
			return Scenario{}, fmt.Errorf("chaos: scenario %q: geo takes x,y,radius", s)
		}
		q.Set("x", args[0])
		q.Set("y", args[1])
		q.Set("radius", args[2])
	default:
		return Scenario{}, fmt.Errorf("chaos: scenario %q: unknown kind %q", s, kindStr)
	}
	return ScenarioFromQuery(m, q)
}
