// The end-to-end tests live in an external test package so they can drive
// the real irisd control loop: the daemon package imports chaos (for the
// /debug/chaos surface), so chaos's own package cannot import it back.
package chaos_test

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"iris/internal/chaos"
	"iris/internal/daemon"
	"iris/internal/fabric"
	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/telemetry"
	"iris/internal/trace"
	"iris/internal/traffic"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// chaosRig brings up the toy region with every device wrapped in a chaos
// fault shim and an irisd daemon supervising it on a fake clock.
type chaosRig struct {
	rig   *fabric.Rig
	devs  *chaos.DeviceSet
	inj   *chaos.Injector
	d     *daemon.Daemon
	clock *fakeClock
	reg   *telemetry.Registry
}

func newChaosRig(t *testing.T, feedShifts [][2]float64) *chaosRig {
	t.Helper()
	devs := chaos.NewDeviceSet()
	rig, err := fabric.BringUp(fabric.BringUpConfig{Toy: true, WrapDevice: devs.Wrap})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)

	dcs := rig.Dep.Region.Map.DCs()
	mats := make([]*traffic.Matrix, len(feedShifts))
	for i, s := range feedShifts {
		tm := traffic.NewMatrix(dcs)
		tm.Set(hose.Pair{A: dcs[0], B: dcs[1]}, s[0])
		tm.Set(hose.Pair{A: dcs[0], B: dcs[2]}, s[1])
		mats[i] = tm
	}

	clock := newFakeClock()
	tracer := trace.New(8192)
	reg := telemetry.NewRegistry()
	inj, err := chaos.NewInjector(chaos.InjectorConfig{
		Devices:  devs,
		Fab:      rig.Fab,
		Tracer:   tracer,
		Registry: reg,
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Fab:              rig.Fab,
		Controller:       rig.Testbed.Controller,
		Feed:             traffic.NewReplay(mats...),
		FailureThreshold: 2,
		BackoffBase:      100 * time.Millisecond,
		BackoffMax:       400 * time.Millisecond,
		Seed:             1,
		Registry:         reg,
		Now:              clock.Now,
		Logger:           slog.New(slog.NewTextHandler(testWriter{t}, nil)),
		Tracer:           tracer,
		Chaos:            inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &chaosRig{rig: rig, devs: devs, inj: inj, d: d, clock: clock, reg: reg}
}

// hubDuct returns the toy region's central hub-hub duct (L5).
func hubDuct(t *testing.T, m *fibermap.Map) int {
	t.Helper()
	for _, d := range m.Ducts {
		if m.Nodes[d.A].Kind == fibermap.Hut && m.Nodes[d.B].Kind == fibermap.Hut {
			return d.ID
		}
	}
	t.Fatal("no hub-hub duct in toy map")
	return -1
}

func spanNames(nodes []*trace.Node, into map[string]int) {
	for _, n := range nodes {
		into[n.Name]++
		spanNames(n.Children, into)
	}
}

// TestChaosCycleEndToEnd is the issue's live-injection acceptance test: a
// chaos cycle cuts the toy region's central duct mid-shift, the daemon's
// supervision detects the faulted switches, and after restore the cycle
// drives a repair whose reconfiguration leaves a complete
// detect → replan → … → undrain span tree on the flight recorder.
func TestChaosCycleEndToEnd(t *testing.T) {
	cr := newChaosRig(t, [][2]float64{{60, 45}, {20, 95}})
	d, clock := cr.d, cr.clock

	// Shift 1 converges cleanly.
	d.ProbeOnce()
	d.Step()
	if !d.ConvergedNow() {
		t.Fatalf("not converged after clean shift: %+v", d.Status())
	}

	sc := chaos.Cut(hubDuct(t, cr.rig.Dep.Region.Map))
	if targets := cr.inj.TargetsFor(sc); len(targets) != 2 {
		t.Fatalf("hub cut targets %v, want the two hub OSS", targets)
	}

	// The pump stands in for irisd's real-time loop: advance the clock,
	// probe, and only take control-loop steps while healthy and repaired
	// (so the cycle's own replan pass is the one that reconciles).
	pump := func() {
		clock.advance(120 * time.Millisecond)
		d.ProbeOnce()
		st := d.Status()
		if st.Healthy && !st.NeedRepair {
			d.Step()
		}
	}
	res, err := cr.inj.RunCycle(chaos.CycleConfig{
		Scenario: sc,
		CP:       d,
		Pump:     pump,
		Timeout:  20 * time.Second,
	})
	if err != nil {
		t.Fatalf("chaos cycle: %v", err)
	}
	if res.Detect <= 0 || res.Repair <= 0 {
		t.Fatalf("cycle latencies not measured: %+v", res)
	}
	if !d.ConvergedNow() {
		t.Fatalf("daemon not reconverged after cycle: %+v", d.Status())
	}
	if cr.inj.ActiveCount() != 0 {
		t.Fatal("fault left active after cycle")
	}

	// The cycle's span tree is complete: the chaos phases at the root, and
	// the replan subtree carrying the repair's fetch-state, the full
	// drained reconfiguration (through undrain), and the closing audit.
	dump := d.DebugEvents(res.TraceID)
	if len(dump.Tree) != 1 || dump.Tree[0].Name != "chaos-cycle" {
		t.Fatalf("trace %d roots = %+v, want one chaos-cycle", res.TraceID, dump.Tree)
	}
	names := make(map[string]int)
	spanNames(dump.Tree, names)
	for _, want := range []string{
		"inject", "detect", "restore", "heal", "replan", "settle",
		"fetch-state", "drain", "switch", "amps", "retune", "fill", "undrain", "audit",
	} {
		if names[want] == 0 {
			t.Errorf("span %q missing from cycle trace: %v", want, names)
		}
	}

	// Metrics reflect the cycle.
	var b strings.Builder
	if err := cr.reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`iris_chaos_injections_total{kind="cut"} 1`,
		"iris_chaos_restores_total 1",
		"iris_chaos_cycles_total 1",
		"iris_chaos_active_faults 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The injector surfaces on /status and /debug/chaos.
	st := d.Status()
	if st.Chaos == nil || st.Chaos.Restores != 1 || st.Chaos.ActiveFaults != 0 {
		t.Fatalf("status chaos snapshot = %+v", st.Chaos)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/chaos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap chaos.Status
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Restores != 1 || len(snap.History) != 1 || snap.History[0].Scenario.Name != sc.Name {
		t.Fatalf("/debug/chaos snapshot = %+v", snap)
	}
}

// TestChaosHTTPInjection drives the /debug/chaos POST surface: inject a
// hub cut over HTTP, watch the region degrade, restore, and watch it heal.
func TestChaosHTTPInjection(t *testing.T) {
	cr := newChaosRig(t, [][2]float64{{60, 45}})
	d, clock := cr.d, cr.clock
	d.ProbeOnce()
	d.Step()

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	duct := hubDuct(t, cr.rig.Dep.Region.Map)

	resp, err := srv.Client().Post(
		srv.URL+"/debug/chaos?action=inject&kind=cut&duct="+strconv.Itoa(duct), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var f chaos.Fault
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(f.Devices) != 2 {
		t.Fatalf("injected fault devices = %v, want both hub OSS", f.Devices)
	}

	// Two probe rounds trip a breaker on the faulted switches.
	d.ProbeOnce()
	d.ProbeOnce()
	if d.Healthy() {
		t.Fatal("daemon healthy with both hub OSS faulted")
	}

	resp, err = srv.Client().Post(srv.URL+"/debug/chaos?action=restore_all", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cr.inj.ActiveCount() != 0 {
		t.Fatal("faults still active after restore_all")
	}

	// After the breaker cooldown the region recovers.
	clock.advance(500 * time.Millisecond)
	d.ProbeOnce()
	if !d.Healthy() {
		t.Fatalf("daemon not healthy after restore: %+v", d.Status())
	}

	// Bad requests are rejected.
	for _, q := range []string{
		"action=inject&kind=cut",          // no ducts
		"action=inject&kind=meteor",       // unknown kind
		"action=restore&id=notanumber",    // bad id
		"action=launch",                   // unknown action
		"action=inject&kind=dc&node=9999", // out of range
	} {
		resp, err := srv.Client().Post(srv.URL+"/debug/chaos?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Errorf("POST %q = %d, want an error status", q, resp.StatusCode)
		}
	}
}
