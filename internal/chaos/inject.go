package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"iris/internal/control"
	"iris/internal/core"
	"iris/internal/fabric"
	"iris/internal/history"
	"iris/internal/telemetry"
	"iris/internal/trace"
)

// ErrInjected is the error a faulted device returns for every operation,
// probes included, so injected failures are fully visible to the daemon's
// supervision and attributable in its traces.
var ErrInjected = errors.New("chaos: injected fault")

// DeviceSet wraps a fabric's emulated devices with fault shims. Install
// Wrap as fabric.BringUpConfig.WrapDevice before bring-up; the set then
// knows every served device and can fail or restore any of them at will.
// Overlapping faults on one device are reference-counted.
type DeviceSet struct {
	mu   sync.Mutex
	devs map[string]*faultDevice
}

// NewDeviceSet returns an empty device set.
func NewDeviceSet() *DeviceSet {
	return &DeviceSet{devs: make(map[string]*faultDevice)}
}

// Wrap shims one device, recording it under its name. It is the
// fabric.BringUpConfig.WrapDevice hook.
func (s *DeviceSet) Wrap(name string, dev control.Device) control.Device {
	f := &faultDevice{Device: dev}
	s.mu.Lock()
	s.devs[name] = f
	s.mu.Unlock()
	return f
}

// Names returns the wrapped device names, sorted.
func (s *DeviceSet) Names() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.devs))
	for n := range s.devs {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// has reports whether a device was wrapped under the given name.
func (s *DeviceSet) has(name string) bool {
	s.mu.Lock()
	_, ok := s.devs[name]
	s.mu.Unlock()
	return ok
}

// addFault starts failing the named device (reference-counted).
func (s *DeviceSet) addFault(name string) {
	s.mu.Lock()
	d := s.devs[name]
	s.mu.Unlock()
	d.faults.Add(1)
}

// removeFault undoes one addFault on the named device.
func (s *DeviceSet) removeFault(name string) {
	s.mu.Lock()
	d := s.devs[name]
	s.mu.Unlock()
	d.faults.Add(-1)
}

// faultDevice fails every operation while at least one fault is active on
// it, and otherwise delegates to the wrapped device.
type faultDevice struct {
	control.Device
	faults atomic.Int64
}

func (f *faultDevice) Handle(op string, args map[string]any) (map[string]any, error) {
	if f.faults.Load() > 0 {
		return nil, ErrInjected
	}
	return f.Device.Handle(op, args)
}

// Fault is one live injection: a scenario materialised as device failures.
type Fault struct {
	ID         uint64     `json:"id"`
	Scenario   Scenario   `json:"scenario"`
	Devices    []string   `json:"devices"`
	InjectedAt time.Time  `json:"injected_at"`
	RestoredAt *time.Time `json:"restored_at,omitempty"`
}

// InjectorConfig parameterises an Injector. Devices and Fab are required.
type InjectorConfig struct {
	// Devices is the fault-shimmed device set the fabric was brought up
	// with.
	Devices *DeviceSet
	// Fab resolves scenarios to device names.
	Fab *fabric.Fabric
	// Tracer journals chaos cycles (nil disables tracing).
	Tracer *trace.Tracer
	// Registry receives the iris_chaos_* metrics (a fresh one if nil).
	Registry *telemetry.Registry
	// Now is the clock (time.Now if nil; tests inject a fake).
	Now func() time.Time
}

// Injector turns failure scenarios into live device faults and drives
// recovery cycles against a control plane. It is safe for concurrent use.
type Injector struct {
	devs   *DeviceSet
	fab    *fabric.Fabric
	tracer *trace.Tracer
	now    func() time.Time

	fallbackID atomic.Uint64

	mu      sync.Mutex
	active  map[uint64]*Fault
	history []Fault // restored faults, oldest first, bounded
	order   []uint64

	injections  *telemetry.CounterVec
	restores    *telemetry.Counter
	activeGauge *telemetry.Gauge
	cycles      *telemetry.Counter
	cycleFails  *telemetry.Counter
	detectSecs  *telemetry.Histogram
	repairSecs  *telemetry.Histogram
}

// historyCap bounds the restored-fault journal kept for /debug/chaos.
const historyCap = 64

// cycleBuckets cover driven test cycles (fake clocks, milliseconds) up to
// live cycles paced by probe intervals and breaker cooldowns.
var cycleBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

// NewInjector validates the configuration and prepares an injector.
func NewInjector(cfg InjectorConfig) (*Injector, error) {
	if cfg.Devices == nil || cfg.Fab == nil {
		return nil, fmt.Errorf("chaos: Devices and Fab are required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	in := &Injector{
		devs:   cfg.Devices,
		fab:    cfg.Fab,
		tracer: cfg.Tracer,
		now:    now,
		active: make(map[uint64]*Fault),
	}
	in.injections = reg.CounterVec("iris_chaos_injections_total", "Chaos faults injected, by scenario kind.", "kind")
	in.restores = reg.Counter("iris_chaos_restores_total", "Chaos faults restored.")
	in.activeGauge = reg.Gauge("iris_chaos_active_faults", "Currently injected chaos faults.")
	in.cycles = reg.Counter("iris_chaos_cycles_total", "Completed inject-detect-restore-heal-replan cycles.")
	in.cycleFails = reg.Counter("iris_chaos_cycle_failures_total", "Chaos cycles that failed or timed out.")
	in.detectSecs = reg.Histogram("iris_chaos_detect_seconds", "Injection-to-detection latency (fault injected until the control plane reports unhealthy).", cycleBuckets)
	in.repairSecs = reg.Histogram("iris_chaos_repair_seconds", "Restore-to-repair latency (fault restored until the control plane reconverges).", cycleBuckets)
	return in, nil
}

// nextID allocates a fault/cycle ID from the tracer's ID space when one is
// configured, so chaos traces never collide with reconfiguration traces.
func (in *Injector) nextID() uint64 {
	if id := in.tracer.NextID(); id != 0 {
		return id
	}
	return in.fallbackID.Add(1)
}

// TargetsFor maps a scenario to the device names its injection fails:
//
//   - DuctCut: the OSS at each cut duct's endpoints (the line cards facing
//     the duct) — deduplicated across ducts.
//   - HutLoss: the hut's OSS, plus its amplifier if one is deployed.
//   - AmpFailure: the site's amplifier group.
//   - DCLoss: the DC's OSS and its transceiver bank.
//   - GeoEvent: the OSS of every node inside the radius, plus the OSS at
//     the endpoints of every severed duct.
//
// Only devices that exist on the fabric (and were wrapped) are returned;
// an empty result means the scenario has no live footprint.
func (in *Injector) TargetsFor(sc Scenario) []string {
	m := in.fab.Deployment().Region.Map
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		if name != "" && !seen[name] && in.devs.has(name) {
			seen[name] = true
			out = append(out, name)
		}
	}
	endpoints := func() {
		for _, id := range sc.Ducts {
			d := m.Ducts[id]
			add(in.fab.OSSName(d.A))
			add(in.fab.OSSName(d.B))
		}
	}
	switch sc.Kind {
	case DuctCut:
		endpoints()
	case HutLoss:
		add(in.fab.OSSName(sc.Node))
		add(in.fab.AmpName(sc.Node))
	case AmpFailure:
		add(in.fab.AmpName(sc.Node))
	case DCLoss:
		add(in.fab.OSSName(sc.Node))
		add(in.fab.XcvrName(sc.Node))
	case GeoEvent:
		for _, n := range m.Nodes {
			if n.Pos.Dist(sc.Center) <= sc.RadiusKM {
				add(in.fab.OSSName(n.ID))
			}
		}
		endpoints()
	}
	sort.Strings(out)
	return out
}

// Inject materialises a scenario as live device faults and returns the
// fault handle. It fails if the scenario maps to no live devices.
func (in *Injector) Inject(sc Scenario) (Fault, error) {
	targets := in.TargetsFor(sc)
	if len(targets) == 0 {
		return Fault{}, fmt.Errorf("chaos: scenario %q maps to no live devices", sc.Name)
	}
	f := &Fault{
		ID:         in.nextID(),
		Scenario:   sc,
		Devices:    targets,
		InjectedAt: in.now(),
	}
	for _, name := range targets {
		in.devs.addFault(name)
	}
	in.mu.Lock()
	in.active[f.ID] = f
	in.order = append(in.order, f.ID)
	n := len(in.active)
	in.mu.Unlock()
	in.injections.With(sc.Kind.String()).Inc()
	in.activeGauge.Set(float64(n))
	in.tracer.Emit(f.ID, "chaos-inject", "", sc.Name)
	return *f, nil
}

// Restore heals the devices of one active fault.
func (in *Injector) Restore(id uint64) error {
	in.mu.Lock()
	f, ok := in.active[id]
	if !ok {
		in.mu.Unlock()
		return fmt.Errorf("chaos: no active fault %d", id)
	}
	delete(in.active, id)
	for i, v := range in.order {
		if v == id {
			in.order = append(in.order[:i], in.order[i+1:]...)
			break
		}
	}
	at := in.now()
	f.RestoredAt = &at
	in.history = append(in.history, *f)
	if len(in.history) > historyCap {
		in.history = in.history[len(in.history)-historyCap:]
	}
	n := len(in.active)
	in.mu.Unlock()
	for _, name := range f.Devices {
		in.devs.removeFault(name)
	}
	in.restores.Inc()
	in.activeGauge.Set(float64(n))
	in.tracer.Emit(f.ID, "chaos-restore", "", f.Scenario.Name)
	return nil
}

// RestoreAll heals every active fault, oldest first.
func (in *Injector) RestoreAll() {
	in.mu.Lock()
	ids := append([]uint64(nil), in.order...)
	in.mu.Unlock()
	for _, id := range ids {
		_ = in.Restore(id)
	}
}

// ActiveCount returns the number of live faults.
func (in *Injector) ActiveCount() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.active)
}

// Status is the injector's introspection snapshot, embedded in irisd's
// /status and served on /debug/chaos.
type Status struct {
	ActiveFaults int     `json:"active_faults"`
	Active       []Fault `json:"active,omitempty"`
	// History lists restored faults, oldest first (bounded).
	History    []Fault `json:"history,omitempty"`
	Injections int     `json:"injections"`
	Restores   int     `json:"restores"`
}

// Snapshot returns the injector's current state.
func (in *Injector) Snapshot() Status {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := Status{
		ActiveFaults: len(in.active),
		Injections:   len(in.active) + len(in.history),
		Restores:     len(in.history),
	}
	for _, id := range in.order {
		st.Active = append(st.Active, *in.active[id])
	}
	st.History = append(st.History, in.history...)
	return st
}

// ControlPlane is the slice of the irisd daemon a chaos cycle drives. The
// daemon satisfies it; chaos deliberately does not import the daemon
// package (the daemon imports chaos to expose /debug/chaos).
type ControlPlane interface {
	// Healthy reports whether every device breaker is closed.
	Healthy() bool
	// ConvergedNow reports whether the region is healthy, repaired and
	// serving the latest allocation.
	ConvergedNow() bool
	// RepairNow runs one anti-entropy repair pass, journaling its spans
	// under the span carried by ctx.
	RepairNow(ctx context.Context) error
}

// CycleConfig parameterises one RunCycle.
type CycleConfig struct {
	Scenario Scenario
	CP       ControlPlane
	// Pump advances the control plane one step between condition checks:
	// tests call ProbeOnce/Step and advance a fake clock; nil sleeps
	// PollInterval (live daemons progress on their own loop).
	Pump func()
	// PollInterval paces the default pump (default 50ms).
	PollInterval time.Duration
	// Timeout bounds each wait phase (default 30s).
	Timeout time.Duration
	// History, when non-nil, receives one record per cycle — success or
	// failure — under the cycle's trace ID.
	History *history.Lake
	// Books supplies the control plane's committed allocation and hose
	// aggregate; RunCycle calls it before injecting and after settling to
	// compute the cycle's allocation diff. Required for records to carry
	// pair/duct deltas (nil leaves them empty).
	Books func() (core.Allocation, history.HoseAggregate)
	// SettleExtra, when non-nil, is ANDed with CP.ConvergedNow during the
	// settle wait. The daemon's cycle endpoint uses it to hold the cycle
	// open until a post-recovery reconfiguration has actually committed,
	// so the emitted record's diff is never an accident of timing.
	SettleExtra func() bool
}

// CycleResult reports one completed chaos cycle.
type CycleResult struct {
	// TraceID identifies the cycle's span tree: chaos-cycle → inject,
	// detect, restore, heal, replan (fetch-state, reconfigure phases,
	// audit), settle.
	TraceID uint64        `json:"trace_id"`
	Fault   Fault         `json:"fault"`
	Detect  time.Duration `json:"detect"`
	Repair  time.Duration `json:"repair"`
	Total   time.Duration `json:"total"`
}

// RunCycle drives the control plane through one full failure-recovery
// cycle: inject the scenario's faults, wait for the supervision to detect
// them (a breaker opens), restore the devices, wait for the breaker to
// close, run a repair pass, and wait for reconvergence. Detection and
// repair latencies are measured and recorded in the iris_chaos_* metrics;
// the whole cycle is journaled as one trace.
func (in *Injector) RunCycle(cfg CycleConfig) (*CycleResult, error) {
	if cfg.CP == nil {
		return nil, fmt.Errorf("chaos: CycleConfig.CP is required")
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	pump := cfg.Pump
	if pump == nil {
		pump = func() { time.Sleep(poll) }
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	id := in.nextID()
	root := in.tracer.Start(id, "chaos-cycle")
	root.SetAttr(cfg.Scenario.Name)
	t0 := in.now()

	// Bracket the cycle for the history lake: pre-state now, post-state
	// and the record after the root span lands in the flight recorder.
	var preAlloc core.Allocation
	var preHose history.HoseAggregate
	if cfg.History != nil && cfg.Books != nil {
		preAlloc, preHose = cfg.Books()
	}
	preHealth := history.Health{Healthy: cfg.CP.Healthy(), Converged: cfg.CP.ConvergedNow()}
	emit := func(opErr error) {
		if cfg.History == nil {
			return
		}
		rec := history.Record{
			ReconfigID: id,
			Trigger:    history.TriggerChaos,
			At:         t0,
			Duration:   in.now().Sub(t0),
			PreHealth:  preHealth,
			PostHealth: history.Health{Healthy: cfg.CP.Healthy(), Converged: cfg.CP.ConvergedNow()},
			PreHose:    preHose,
		}
		if opErr != nil {
			rec.Err = opErr.Error()
		}
		if cfg.Books != nil {
			postAlloc, postHose := cfg.Books()
			rec.PostHose = postHose
			rec.Pairs = core.DiffAlloc(preAlloc, postAlloc)
			rec.Ducts = in.fab.Deployment().DuctDeltas(rec.Pairs)
		}
		rec.Spans = in.tracer.Events(trace.Filter{TraceID: id})
		cfg.History.Append(rec)
	}

	fail := func(err error) (*CycleResult, error) {
		in.cycleFails.Inc()
		root.Fail(err)
		root.Finish()
		emit(err)
		return nil, err
	}
	wait := func(name string, cond func() bool) (time.Duration, error) {
		sp := root.Child(name)
		start := in.now()
		for !cond() {
			if in.now().Sub(start) > timeout {
				err := fmt.Errorf("chaos: %s timed out after %v", name, timeout)
				sp.Fail(err)
				sp.Finish()
				return 0, err
			}
			pump()
		}
		sp.Finish()
		return in.now().Sub(start), nil
	}

	isp := root.Child("inject")
	f, err := in.Inject(cfg.Scenario)
	if err != nil {
		isp.Fail(err)
		isp.Finish()
		return fail(err)
	}
	isp.SetAttr(fmt.Sprintf("devices=%d", len(f.Devices)))
	isp.Finish()

	detect, err := wait("detect", func() bool { return !cfg.CP.Healthy() })
	if err != nil {
		_ = in.Restore(f.ID)
		return fail(err)
	}
	in.detectSecs.Observe(detect.Seconds())

	rsp := root.Child("restore")
	if err := in.Restore(f.ID); err != nil {
		rsp.Fail(err)
		rsp.Finish()
		return fail(err)
	}
	rsp.Finish()
	repairStart := in.now()

	if _, err := wait("heal", cfg.CP.Healthy); err != nil {
		return fail(err)
	}

	psp := root.Child("replan")
	err = cfg.CP.RepairNow(trace.ContextWith(context.Background(), psp))
	psp.Fail(err)
	psp.Finish()
	if err != nil {
		return fail(fmt.Errorf("chaos: replan: %w", err))
	}

	settled := func() bool {
		return cfg.CP.ConvergedNow() && (cfg.SettleExtra == nil || cfg.SettleExtra())
	}
	if _, err := wait("settle", settled); err != nil {
		return fail(err)
	}
	repair := in.now().Sub(repairStart)
	in.repairSecs.Observe(repair.Seconds())
	in.cycles.Inc()
	root.Finish()
	emit(nil)
	return &CycleResult{
		TraceID: id,
		Fault:   f,
		Detect:  detect,
		Repair:  repair,
		Total:   in.now().Sub(t0),
	}, nil
}

// Handler serves the injector's HTTP surface, mounted by irisd at
// /debug/chaos:
//
//	GET  — Snapshot as JSON
//	POST — ?action=inject&kind=cut&duct=3&duct=7 [&auto_restore=2s]
//	       ?action=inject&kind=hut|dc|amp&node=4
//	       ?action=inject&kind=geo&x=1.5&y=-3&radius=2
//	       ?action=restore&id=N
//	       ?action=restore_all
//
// Inject responds with the created Fault; auto_restore schedules the
// restore after the given duration.
func (in *Injector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON := func(v any) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(v)
		}
		if r.Method != http.MethodPost {
			writeJSON(in.Snapshot())
			return
		}
		q := r.URL.Query()
		switch q.Get("action") {
		case "inject":
			sc, err := ScenarioFromQuery(in.fab.Deployment().Region.Map, q)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			f, err := in.Inject(sc)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			if v := q.Get("auto_restore"); v != "" {
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					http.Error(w, "bad auto_restore duration", http.StatusBadRequest)
					return
				}
				id := f.ID
				time.AfterFunc(d, func() { _ = in.Restore(id) })
			}
			writeJSON(f)
		case "restore":
			id, err := strconv.ParseUint(q.Get("id"), 10, 64)
			if err != nil {
				http.Error(w, "bad fault id", http.StatusBadRequest)
				return
			}
			if err := in.Restore(id); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			writeJSON(in.Snapshot())
		case "restore_all":
			in.RestoreAll()
			writeJSON(in.Snapshot())
		default:
			http.Error(w, "unknown action (want inject, restore or restore_all)", http.StatusBadRequest)
		}
	})
}
