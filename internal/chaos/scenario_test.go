package chaos

import (
	"reflect"
	"testing"

	"iris/internal/core"
	"iris/internal/fibermap"
)

func toyRegion(t *testing.T, failures int) (*fibermap.ToyRegion, *core.Deployment) {
	t.Helper()
	toy := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range toy.Map.DCs() {
		caps[dc] = 10
	}
	dep, err := core.Plan(
		core.Region{Map: toy.Map, Capacity: caps, Lambda: 40},
		core.Options{MaxFailures: failures},
	)
	if err != nil {
		t.Fatal(err)
	}
	return toy, dep
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{DuctCut, HutLoss, AmpFailure, DCLoss, GeoEvent} {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v", k, got, err, k)
		}
	}
	if _, err := KindFromString("meteor"); err == nil {
		t.Error("KindFromString accepted an unknown kind")
	}
}

func TestEnumerateCuts(t *testing.T) {
	toy, _ := toyRegion(t, 0)
	scs := EnumerateCuts(toy.Map, 2)
	// C(5,0) + C(5,1) + C(5,2) over the toy's five ducts.
	if len(scs) != 1+5+10 {
		t.Fatalf("enumerated %d scenarios, want 16", len(scs))
	}
	if scs[0].CutCount() != 0 {
		t.Fatalf("first scenario severs %v, want the empty baseline", scs[0].Ducts)
	}
	seen := make(map[string]bool)
	sizes := make(map[int]int)
	for _, sc := range scs {
		if sc.Kind != DuctCut {
			t.Fatalf("scenario %q has kind %v, want DuctCut", sc.Name, sc.Kind)
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
		sizes[sc.CutCount()]++
	}
	if sizes[0] != 1 || sizes[1] != 5 || sizes[2] != 10 {
		t.Fatalf("size distribution %v, want 1/5/10", sizes)
	}
	// Enumeration is deterministic.
	if again := EnumerateCuts(toy.Map, 2); !reflect.DeepEqual(scs, again) {
		t.Fatal("EnumerateCuts is not deterministic")
	}
}

func TestSampleCuts(t *testing.T) {
	toy, _ := toyRegion(t, 0)
	scs := SampleCuts(42, toy.Map, 2, 6)
	if len(scs) != 6 {
		t.Fatalf("sampled %d scenarios, want 6", len(scs))
	}
	seen := make(map[string]bool)
	for _, sc := range scs {
		if sc.CutCount() != 2 {
			t.Fatalf("sampled scenario %q severs %d ducts, want 2", sc.Name, sc.CutCount())
		}
		if seen[sc.Name] {
			t.Fatalf("sampled duplicate %q", sc.Name)
		}
		seen[sc.Name] = true
	}
	if again := SampleCuts(42, toy.Map, 2, 6); !reflect.DeepEqual(scs, again) {
		t.Fatal("SampleCuts is not deterministic for a fixed seed")
	}
	// Requesting more than the space holds clamps to the space: C(5,2)=10.
	if all := SampleCuts(7, toy.Map, 2, 100); len(all) != 10 {
		t.Fatalf("oversampling returned %d scenarios, want the full space of 10", len(all))
	}
}

func TestSiteScenarios(t *testing.T) {
	toy, _ := toyRegion(t, 0)

	huts := HutLossScenarios(toy.Map)
	if len(huts) != 2 {
		t.Fatalf("hut scenarios = %d, want 2", len(huts))
	}
	// Each hub terminates two access ducts and the central duct.
	for _, sc := range huts {
		if sc.Kind != HutLoss || sc.CutCount() != 3 {
			t.Fatalf("hut scenario %q: kind %v, cuts %d; want HutLoss severing 3", sc.Name, sc.Kind, sc.CutCount())
		}
	}

	dcs := DCLossScenarios(toy.Map)
	if len(dcs) != 4 {
		t.Fatalf("dc scenarios = %d, want 4", len(dcs))
	}
	for _, sc := range dcs {
		if sc.Kind != DCLoss || sc.CutCount() != 1 {
			t.Fatalf("dc scenario %q: kind %v, cuts %d; want DCLoss severing 1", sc.Name, sc.Kind, sc.CutCount())
		}
		if sc.Node < 0 {
			t.Fatalf("dc scenario %q has no site", sc.Name)
		}
	}
}

func TestAmpFailureScenarios(t *testing.T) {
	// The toy region needs no amplifiers, so use a generated region large
	// enough to have amplified paths.
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = 3
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = 3, 4
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 8
	}
	dep, err := core.Plan(core.Region{Map: m, Capacity: caps, Lambda: 40}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scs := AmpFailureScenarios(dep.Plan)
	sites := 0
	for _, n := range dep.Plan.Amps {
		if n > 0 {
			sites++
		}
	}
	if len(scs) != sites {
		t.Fatalf("amp scenarios = %d, want one per amplified site (%d)", len(scs), sites)
	}
	for _, sc := range scs {
		if sc.Kind != AmpFailure || sc.CutCount() == 0 || sc.Node < 0 {
			t.Fatalf("malformed amp scenario %+v", sc)
		}
	}
}

func TestGeoEvents(t *testing.T) {
	toy, _ := toyRegion(t, 0)
	scs := GeoEvents(11, toy.Map, 8, 5)
	if len(scs) != 5 {
		t.Fatalf("geo events = %d, want 5", len(scs))
	}
	for _, sc := range scs {
		if sc.Kind != GeoEvent || sc.CutCount() == 0 {
			t.Fatalf("geo event %q severs nothing", sc.Name)
		}
		if sc.RadiusKM != 8 {
			t.Fatalf("geo event %q radius = %v, want 8", sc.Name, sc.RadiusKM)
		}
	}
	if again := GeoEvents(11, toy.Map, 8, 5); !reflect.DeepEqual(scs, again) {
		t.Fatal("GeoEvents is not deterministic for a fixed seed")
	}
}
