package chaos

import (
	"reflect"
	"testing"
)

func TestAuditBaseline(t *testing.T) {
	_, dep := toyRegion(t, 0)
	a := NewAuditor(dep.Plan)
	res := a.Audit(Cut())
	if !res.Admissible || !res.Survives {
		t.Fatalf("failure-free baseline not surviving: %+v", res)
	}
	if res.DisconnectedPairs != 0 || len(res.Overloads) != 0 {
		t.Fatalf("baseline reports damage: %+v", res)
	}
	if res.MaxStretch != 1 {
		t.Fatalf("baseline MaxStretch = %v, want 1", res.MaxStretch)
	}
	if res.WorstPairFibers <= 0 {
		t.Fatalf("baseline WorstPairFibers = %v, want > 0", res.WorstPairFibers)
	}
	if res.SLAViolations != 0 {
		t.Fatalf("baseline SLA violations = %d, want 0", res.SLAViolations)
	}
}

// TestToyMaxFailuresTwoExhaustive is the issue's acceptance criterion: an
// exhaustive audit of the MaxFailures=2 plan on the paper's example region
// must report 100% hose admissibility for every scenario of at most two
// duct cuts.
func TestToyMaxFailuresTwoExhaustive(t *testing.T) {
	toy, dep := toyRegion(t, 2)
	a := NewAuditor(dep.Plan)
	scs := EnumerateCuts(toy.Map, 2)
	results := a.Run(scs, 0)
	for _, r := range results {
		if !r.Admissible {
			t.Errorf("scenario %q not admissible: overloads %v, residual %v",
				r.Scenario.Name, r.Overloads, r.ResidualOverloads)
		}
	}
	curve := Curve(results)
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3 (0, 1, 2 cuts)", len(curve))
	}
	wantScenarios := []int{1, 5, 10}
	for i, p := range curve {
		if p.Cuts != i || p.Scenarios != wantScenarios[i] {
			t.Fatalf("curve point %d = %+v, want cuts=%d scenarios=%d", i, p, i, wantScenarios[i])
		}
		if p.FracAdmissible() != 1 {
			t.Fatalf("admissibility at %d cuts = %v, want 1", p.Cuts, p.FracAdmissible())
		}
	}
	// The toy is a tree, so only the baseline fully survives: every cut
	// disconnects some DC.
	if curve[0].Surviving != 1 || curve[1].Surviving != 0 || curve[2].Surviving != 0 {
		t.Fatalf("tree-region survival counts wrong: %+v", curve)
	}
}

func TestAuditDisconnection(t *testing.T) {
	toy, dep := toyRegion(t, 1)
	a := NewAuditor(dep.Plan)

	// Cutting DC1's access duct strands exactly that DC: three pairs die,
	// the rest must still be admissible.
	res := a.Audit(Cut(toy.L1))
	if res.Survives {
		t.Fatal("cut of an access duct reported as fully survived on a tree region")
	}
	if !res.Admissible {
		t.Fatalf("surviving pairs not admissible after access cut: %+v", res)
	}
	if res.DisconnectedPairs != 3 {
		t.Fatalf("disconnected pairs = %d, want 3", res.DisconnectedPairs)
	}
	if !reflect.DeepEqual(res.DisconnectedDCs, []int{toy.DC1}) {
		t.Fatalf("disconnected DCs = %v, want [%d]", res.DisconnectedDCs, toy.DC1)
	}

	// Cutting the hub-hub duct splits the region in half: the four
	// cross-hub pairs die; the tie between the halves breaks toward the
	// cluster holding DC1, so DC3 and DC4 are reported stranded.
	res = a.Audit(Cut(toy.L5))
	if res.DisconnectedPairs != 4 {
		t.Fatalf("hub-cut disconnected pairs = %d, want 4", res.DisconnectedPairs)
	}
	if !reflect.DeepEqual(res.DisconnectedDCs, []int{toy.DC3, toy.DC4}) {
		t.Fatalf("hub-cut disconnected DCs = %v, want [%d %d]", res.DisconnectedDCs, toy.DC3, toy.DC4)
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	toy, dep := toyRegion(t, 2)
	a := NewAuditor(dep.Plan)
	scs := EnumerateCuts(toy.Map, 2)
	serial := a.Run(scs, 1)
	par := a.Run(scs, 4)
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel audit differs from serial")
	}
}

func TestSummaryAndCurveShapes(t *testing.T) {
	toy, dep := toyRegion(t, 1)
	a := NewAuditor(dep.Plan)
	results := a.Run(EnumerateCuts(toy.Map, 1), 0)
	s := Summary(results)
	if s == "" {
		t.Fatal("empty summary")
	}
	if got := Summary(nil); got == "" {
		t.Fatal("Summary(nil) empty")
	}
	if pts := Curve(nil); len(pts) != 0 {
		t.Fatalf("Curve(nil) = %v, want empty", pts)
	}
}
