package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAssembly(t *testing.T) {
	tr := New(256)
	id := tr.NextID()
	root := tr.Start(id, "reconfig")
	for _, phase := range []string{"drain", "switch", "retune", "undrain"} {
		ph := root.Child(phase)
		for _, dev := range []string{"xcvr-0", "xcvr-1"} {
			dsp := ph.Child("rpc")
			dsp.SetDevice(dev)
			dsp.Finish()
		}
		ph.Finish()
	}
	audit := root.Child("audit")
	audit.Finish()
	root.Finish()

	events := tr.Events(Filter{TraceID: id})
	if len(events) != 14 {
		t.Fatalf("got %d events, want 14", len(events))
	}
	roots := Tree(events)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	r := roots[0]
	if r.Name != "reconfig" || r.TraceID != id {
		t.Fatalf("root = %q trace %d, want reconfig trace %d", r.Name, r.TraceID, id)
	}
	var names []string
	for _, c := range r.Children {
		names = append(names, c.Name)
	}
	want := []string{"drain", "switch", "retune", "undrain", "audit"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("phase order %v, want %v", names, want)
	}
	for _, c := range r.Children[:4] {
		if len(c.Children) != 2 {
			t.Fatalf("phase %s has %d device children, want 2", c.Name, len(c.Children))
		}
		for _, d := range c.Children {
			if d.Device == "" {
				t.Fatalf("device child of %s has no device attribution", c.Name)
			}
		}
	}
}

func TestEventsFilterByTrace(t *testing.T) {
	tr := New(128)
	a, b := tr.NextID(), tr.NextID()
	sa := tr.Start(a, "plan")
	sa.Finish()
	sb := tr.Start(b, "sweep")
	sb.Child("row").Finish()
	sb.Finish()

	if got := len(tr.Events(Filter{})); got != 3 {
		t.Fatalf("unfiltered events = %d, want 3", got)
	}
	evs := tr.Events(Filter{TraceID: b})
	if len(evs) != 2 {
		t.Fatalf("trace-%d events = %d, want 2", b, len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of Seq order: %v", evs)
		}
	}
	if evs[0].Name != "row" || evs[1].Name != "sweep" {
		t.Fatalf("finish order should put child before parent: %v, %v", evs[0].Name, evs[1].Name)
	}
}

// TestRingWraparoundConcurrent hammers a tiny ring from several writers;
// run with -race in CI. The recorder must retain exactly its capacity and
// never tear an event.
func TestRingWraparoundConcurrent(t *testing.T) {
	tr := New(64)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp := tr.Start(uint64(w+1), "span")
				sp.Child("child").Finish()
				sp.Finish()
			}
		}(w)
	}
	// Concurrent readers must see consistent snapshots mid-wraparound.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				for _, ev := range tr.Events(Filter{}) {
					if ev.Name != "span" && ev.Name != "child" {
						panic(fmt.Sprintf("torn event %+v", ev))
					}
				}
			}
		}
	}()
	wg.Wait()
	close(done)

	evs := tr.Events(Filter{})
	if len(evs) != tr.Cap() {
		t.Fatalf("recorder holds %d events, want full capacity %d", len(evs), tr.Cap())
	}
	seen := make(map[uint64]bool)
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate Seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
		if ev.TraceID == 0 || ev.TraceID > writers {
			t.Fatalf("event with impossible trace ID %d", ev.TraceID)
		}
	}
	// The ring keeps recent history: the very last recorded events survive.
	maxSeq := evs[len(evs)-1].Seq
	if maxSeq < uint64(writers*perWriter*2) {
		t.Fatalf("max Seq %d, want ≥ %d", maxSeq, writers*perWriter*2)
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Cap() != 0 || tr.NextID() != 0 {
		t.Fatal("nil tracer leaked capacity or IDs")
	}
	sp := tr.Start(1, "x")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// The whole lifecycle must be callable on nils.
	c := sp.Child("y")
	c.SetDevice("d")
	c.SetAttr("a")
	c.Fail(errors.New("boom"))
	c.Finish()
	sp.FinishAs(time.Now(), time.Second)
	tr.Emit(1, "e", "", "")
	if evs := tr.Events(Filter{}); len(evs) != 0 {
		t.Fatalf("nil tracer produced events: %v", evs)
	}
	if trees := tr.Traces(5); trees != nil {
		t.Fatalf("nil tracer produced traces: %v", trees)
	}
	if sp.TraceID() != 0 {
		t.Fatal("nil span has a trace ID")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(16)
	sp := tr.Start(9, "root")
	ctx := ContextWith(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %v, want %v", got, sp)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context yielded span %v", got)
	}
	// A nil span leaves the context untouched.
	if ctx2 := ContextWith(ctx, nil); FromContext(ctx2) != sp {
		t.Fatal("ContextWith(nil) clobbered the parent span")
	}
}

func TestFinishAsAndFail(t *testing.T) {
	tr := New(16)
	start := time.Now().Add(-3 * time.Second)
	sp := tr.Start(4, "plan")
	st := sp.Child("route")
	st.SetAttr("calls=7")
	st.Fail(errors.New("no path"))
	st.FinishAs(start, 2*time.Second)
	sp.Finish()

	evs := tr.Events(Filter{TraceID: 4})
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	got := evs[0]
	if got.Name != "route" || got.Duration != 2*time.Second || !got.Start.Equal(start) {
		t.Fatalf("FinishAs recorded %+v", got)
	}
	if got.Err != "no path" || got.Attr != "calls=7" {
		t.Fatalf("attrs lost: %+v", got)
	}
}

func TestTracesLastN(t *testing.T) {
	tr := New(256)
	var ids []uint64
	for i := 0; i < 4; i++ {
		id := tr.NextID()
		ids = append(ids, id)
		sp := tr.Start(id, "reconfig")
		sp.Child("drain").Finish()
		sp.Finish()
	}
	trees := tr.Traces(2)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	if trees[0].TraceID != ids[2] || trees[1].TraceID != ids[3] {
		t.Fatalf("kept traces %d,%d; want the most recent %d,%d",
			trees[0].TraceID, trees[1].TraceID, ids[2], ids[3])
	}
	if len(trees[0].Children) != 1 || trees[0].Children[0].Name != "drain" {
		t.Fatalf("tree lost its children: %+v", trees[0])
	}
}

func TestEmitInstantEvent(t *testing.T) {
	tr := New(16)
	tr.Emit(7, "breaker", "oss-hut-1", "open")
	evs := tr.Events(Filter{TraceID: 7})
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "breaker" || ev.Device != "oss-hut-1" || ev.Attr != "open" || ev.Duration != 0 {
		t.Fatalf("instant event = %+v", ev)
	}
}

func TestEventJSONShape(t *testing.T) {
	tr := New(16)
	sp := tr.Start(42, "reconfig")
	sp.Finish()
	raw, err := json.Marshal(tr.Events(Filter{}))
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"trace_id":42`, `"name":"reconfig"`, `"duration_ns"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON %s missing %s", s, want)
		}
	}
	// Empty snapshots must encode as [], not null: the debug endpoint's
	// contract.
	raw, err = json.Marshal(New(16).Events(Filter{}))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "[]" {
		t.Fatalf("empty events = %s, want []", raw)
	}
}
