package trace

import "testing"

// BenchmarkTraceSpanEnabled is CI's allocation guard for the tracer hot
// path: one root + one device child span per iteration must cost at most
// one heap allocation per span (the Span struct itself); recording into
// the ring is allocation-free.
func BenchmarkTraceSpanEnabled(b *testing.B) {
	tr := New(1024)
	work := func() {
		sp := tr.Start(7, "reconfig")
		c := sp.Child("drain")
		c.SetDevice("xcvr-dc-0")
		c.Finish()
		sp.Finish()
	}
	if allocs := testing.AllocsPerRun(1000, work); allocs > 2 {
		b.Fatalf("enabled hot path allocates %.1f per 2 spans, want ≤ 2 (1 per span)", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work()
	}
}

// BenchmarkTraceSpanDisabled asserts the nil (disabled) tracer's span
// lifecycle is completely allocation-free, so instrumentation can stay
// wired unconditionally.
func BenchmarkTraceSpanDisabled(b *testing.B) {
	var tr *Tracer
	work := func() {
		sp := tr.Start(7, "reconfig")
		c := sp.Child("drain")
		c.SetDevice("xcvr-dc-0")
		c.Finish()
		sp.Finish()
	}
	if allocs := testing.AllocsPerRun(1000, work); allocs != 0 {
		b.Fatalf("disabled tracer allocates %.1f per span pair, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work()
	}
}

// BenchmarkTraceEmit measures the instant-event path used for breaker
// transitions.
func BenchmarkTraceEmit(b *testing.B) {
	tr := New(1024)
	if allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(7, "breaker", "oss-hut-1", "open")
	}); allocs != 0 {
		b.Fatalf("Emit allocates %.1f, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(7, "breaker", "oss-hut-1", "open")
	}
}
