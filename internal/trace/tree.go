package trace

import (
	"sort"
	"time"
)

// Node is one span in an assembled trace tree, shaped for JSON dumps on
// the irisd debug surface.
type Node struct {
	TraceID    uint64    `json:"trace_id,omitempty"`
	SpanID     uint64    `json:"span_id"`
	Name       string    `json:"name"`
	Device     string    `json:"device,omitempty"`
	Attr       string    `json:"attr,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Err        string    `json:"error,omitempty"`
	Children   []*Node   `json:"children,omitempty"`
}

// Tree assembles events into span trees. An event whose parent is absent
// from the set (never recorded, or already evicted from the ring) becomes
// a root. Siblings are ordered by start time, ties broken by record
// order, so a reconfiguration's phases read drain → … → undrain → audit.
func Tree(events []Event) []*Node {
	nodes := make(map[uint64]*Node, len(events))
	order := make([]*Node, 0, len(events))
	for _, ev := range events {
		n := &Node{
			TraceID:    ev.TraceID,
			SpanID:     ev.SpanID,
			Name:       ev.Name,
			Device:     ev.Device,
			Attr:       ev.Attr,
			Start:      ev.Start,
			DurationMS: float64(ev.Duration) / float64(time.Millisecond),
			Err:        ev.Err,
		}
		nodes[ev.SpanID] = n
		order = append(order, n)
	}
	seq := make(map[*Node]uint64, len(events))
	var roots []*Node
	for i, ev := range events {
		n := order[i]
		seq[n] = ev.Seq
		if p, ok := nodes[ev.ParentID]; ok && ev.ParentID != 0 {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return seq[ns[i]] < seq[ns[j]]
		})
	}
	byStart(roots)
	for _, n := range order {
		byStart(n.Children)
	}
	return roots
}

// Traces assembles the recorder's contents into per-trace span trees and
// returns the last n traces (by most recent activity), oldest first. Any
// root recorded with trace ID 0 (instant events outside a trace) is
// included only when it is among the n most recent roots' traces.
func (t *Tracer) Traces(n int) []*Node {
	if t == nil || n <= 0 {
		return nil
	}
	events := t.Events(Filter{})
	if len(events) == 0 {
		return nil
	}
	// Latest activity per trace, in Seq terms.
	last := make(map[uint64]uint64)
	for _, ev := range events {
		if ev.Seq > last[ev.TraceID] {
			last[ev.TraceID] = ev.Seq
		}
	}
	type tr struct {
		id   uint64
		last uint64
	}
	all := make([]tr, 0, len(last))
	for id, seq := range last {
		all = append(all, tr{id, seq})
	}
	// Oldest first; keep the n most recent.
	sort.Slice(all, func(i, j int) bool { return all[i].last < all[j].last })
	if len(all) > n {
		all = all[len(all)-n:]
	}
	keep := make(map[uint64]bool, len(all))
	for _, e := range all {
		keep[e.id] = true
	}
	kept := events[:0]
	for _, ev := range events {
		if keep[ev.TraceID] {
			kept = append(kept, ev)
		}
	}
	return Tree(kept)
}
