package trace

import "testing"

// flood records enough events on an unrelated trace to overwrite every
// slot of the bounded ring.
func flood(t *Tracer, traceID uint64) {
	for i := 0; i < t.Cap()+shardCount; i++ {
		t.Start(traceID, "filler").Finish()
	}
}

// TestTreeOrphanAfterWraparound pins how Tree handles ring wraparound:
// when a child span outlives its parent's slot in the flight recorder
// (the parent finished early and was evicted), the orphan is promoted to
// a root instead of being dropped. This is what keeps
// /debug/events?reconfig= and history-lake span trees usable for long
// reconfigurations on a small ring.
func TestTreeOrphanAfterWraparound(t *testing.T) {
	tr := New(8)
	const theTrace, otherTrace = 1, 2

	root := tr.Start(theTrace, "reconfig")
	child := root.Child("audit")
	root.Finish() // parent lands in the ring first...
	flood(tr, otherTrace)
	child.Finish() // ...and is long gone when the child records

	events := tr.Events(Filter{TraceID: theTrace})
	if len(events) != 1 {
		t.Fatalf("got %d events for the trace, want only the wrapped child", len(events))
	}
	if events[0].ParentID == 0 {
		t.Fatal("child event lost its parent reference")
	}

	tree := Tree(events)
	if len(tree) != 1 {
		t.Fatalf("Tree produced %d roots, want the orphan promoted to 1", len(tree))
	}
	if tree[0].Name != "audit" || len(tree[0].Children) != 0 {
		t.Fatalf("orphan root wrong: %+v", tree[0])
	}
}

// TestTreeSiblingOrphansKeepOrder: several children surviving their
// evicted parent all become roots, ordered by start time like ordinary
// siblings.
func TestTreeSiblingOrphansKeepOrder(t *testing.T) {
	tr := New(8)
	const theTrace, otherTrace = 3, 4

	root := tr.Start(theTrace, "reconfig")
	first := root.Child("drain")
	second := root.Child("switch")
	root.Finish()
	flood(tr, otherTrace)
	first.Finish()
	second.Finish()

	tree := Tree(tr.Events(Filter{TraceID: theTrace}))
	if len(tree) != 2 {
		t.Fatalf("got %d roots, want both orphaned siblings", len(tree))
	}
	if tree[0].Name != "drain" || tree[1].Name != "switch" {
		t.Fatalf("orphan roots out of start order: %q, %q", tree[0].Name, tree[1].Name)
	}
}

// TestTreeWrappedSubtreeSurvives: when only the top of a deep trace is
// evicted, the surviving subtree keeps its internal structure — the
// orphaned middle span becomes a root with its own child still nested.
func TestTreeWrappedSubtreeSurvives(t *testing.T) {
	tr := New(8)
	const theTrace, otherTrace = 5, 6

	root := tr.Start(theTrace, "reconfig")
	mid := root.Child("replan")
	leaf := mid.Child("audit")
	root.Finish()
	flood(tr, otherTrace)
	// Leaf first so both land post-flood; record order must not matter
	// for nesting.
	leaf.Finish()
	mid.Finish()

	tree := Tree(tr.Events(Filter{TraceID: theTrace}))
	if len(tree) != 1 {
		t.Fatalf("got %d roots, want the orphaned middle span", len(tree))
	}
	if tree[0].Name != "replan" {
		t.Fatalf("root = %q, want the surviving middle span", tree[0].Name)
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0].Name != "audit" {
		t.Fatalf("surviving subtree lost its nesting: %+v", tree[0])
	}
}
