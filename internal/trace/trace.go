// Package trace is a dependency-free span tracer with a flight-recorder
// event journal for the Iris control plane. It answers the operational
// question the paper's §5 evaluation hinges on — "which phase of
// reconfiguration #42 was slow, and on which device?" — without dragging
// in an external tracing stack.
//
// Spans are hierarchical: a reconfiguration root span has one child per
// drained phase (drain → switch → amps → retune → fill → undrain → audit,
// the §5.2 sequence), each phase has per-device children, and the planner
// and sweep produce their own trees (plan → Algorithm-1 stages, sweep →
// per-seed rows). Every finished span becomes one fixed-size Event in a
// lock-sharded ring buffer — the flight recorder — which the irisd HTTP
// surface dumps on /debug/events and /debug/trace.
//
// The hot path is allocation-light by construction: starting a span heap-
// allocates exactly one Span; finishing it copies an Event value into a
// pre-allocated ring slot under a shard mutex. A nil *Tracer is the
// disabled tracer — every method is a no-op and the whole span lifecycle
// allocates nothing, so instrumentation can stay unconditionally wired.
package trace

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span (or instant event) in the flight recorder.
// All fields are plain values so recording is a struct copy, never an
// allocation.
type Event struct {
	// Seq is the global record order; later events have larger Seq.
	Seq uint64 `json:"seq"`
	// TraceID groups the events of one trace — for reconfigurations it is
	// the reconfig ID the daemon threads through the control plane.
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id"`
	// ParentID is 0 for root spans.
	ParentID uint64 `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// Device attributes the span to one device agent, when applicable.
	Device string `json:"device,omitempty"`
	// Attr carries one free-form detail ("deadline_exceeded", scenario
	// coordinates, breaker state...).
	Attr     string        `json:"attr,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"error,omitempty"`
}

// shardCount must be a power of two; records are spread round-robin by
// sequence number so concurrent writers rarely contend on one mutex.
const shardCount = 8

type shard struct {
	mu   sync.Mutex
	buf  []Event
	next int // next write index
	n    int // valid entries (≤ len(buf))
}

// Tracer records events into a fixed-capacity flight-recorder ring. The
// zero Tracer is not usable; construct with New. A nil *Tracer is the
// disabled tracer: all methods no-op.
type Tracer struct {
	seq    atomic.Uint64 // global event ordering
	ids    atomic.Uint64 // span / trace ID source
	shards [shardCount]shard
}

// New returns a tracer whose flight recorder retains the most recent
// events, with total capacity at least the given value (rounded up to a
// multiple of the shard count; non-positive selects 4096).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	per := (capacity + shardCount - 1) / shardCount
	t := &Tracer{}
	for i := range t.shards {
		t.shards[i].buf = make([]Event, per)
	}
	return t
}

// Cap returns the recorder's total event capacity (0 for a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		n += len(t.shards[i].buf)
	}
	return n
}

// NextID hands out a fresh non-zero ID, usable as a trace ID for a new
// trace. A nil tracer returns 0.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Add(1)
}

// record copies one event into the ring. The only mutation shared with
// readers is under the shard mutex; no allocation happens here.
func (t *Tracer) record(ev Event) {
	ev.Seq = t.seq.Add(1)
	sh := &t.shards[ev.Seq&(shardCount-1)]
	sh.mu.Lock()
	sh.buf[sh.next] = ev
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next = 0
	}
	if sh.n < len(sh.buf) {
		sh.n++
	}
	sh.mu.Unlock()
}

// Emit records an instant (zero-duration) event, e.g. a breaker state
// transition. traceID 0 means the event belongs to no particular trace.
func (t *Tracer) Emit(traceID uint64, name, device, attr string) {
	if t == nil {
		return
	}
	t.record(Event{
		TraceID: traceID,
		SpanID:  t.ids.Add(1),
		Name:    name,
		Device:  device,
		Attr:    attr,
		Start:   time.Now(),
	})
}

// Span is one in-flight operation. Spans are created by Start/Child and
// recorded by Finish; a nil *Span (from a nil tracer) no-ops throughout.
type Span struct {
	t      *Tracer
	trace  uint64
	id     uint64
	parent uint64
	name   string
	device string
	attr   string
	err    string
	start  time.Time
}

// Start opens a root span in the given trace. This is the tracer's hot
// path: exactly one allocation (the Span itself).
func (t *Tracer) Start(traceID uint64, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, trace: traceID, id: t.ids.Add(1), name: name, start: time.Now()}
}

// Child opens a sub-span. Like Start, it costs one allocation.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, trace: s.trace, id: s.t.ids.Add(1), parent: s.id, name: name, start: time.Now()}
}

// TraceID returns the span's trace ID (0 for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// SetDevice attributes the span to a device agent.
func (s *Span) SetDevice(device string) {
	if s == nil {
		return
	}
	s.device = device
}

// SetAttr attaches one free-form detail to the span.
func (s *Span) SetAttr(attr string) {
	if s == nil {
		return
	}
	s.attr = attr
}

// Fail marks the span as failed. Formatting the error may allocate, but
// only the failure path pays for it.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// Finish records the span into the flight recorder with its measured
// duration. Allocation-free.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.t.record(Event{
		TraceID:  s.trace,
		SpanID:   s.id,
		ParentID: s.parent,
		Name:     s.name,
		Device:   s.device,
		Attr:     s.attr,
		Start:    s.start,
		Duration: time.Since(s.start),
		Err:      s.err,
	})
}

// FinishAs records the span with an explicit start and duration — for
// aggregated timings reconstructed after the fact, like the planner's
// per-stage totals accumulated across failure scenarios.
func (s *Span) FinishAs(start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	s.start = start
	s.t.record(Event{
		TraceID:  s.trace,
		SpanID:   s.id,
		ParentID: s.parent,
		Name:     s.name,
		Device:   s.device,
		Attr:     s.attr,
		Start:    start,
		Duration: d,
		Err:      s.err,
	})
}

// Filter selects events from the recorder. The zero Filter matches all.
type Filter struct {
	// TraceID, when non-zero, keeps only that trace's events.
	TraceID uint64
}

// Events snapshots the flight recorder's matching events in record order
// (ascending Seq). The result is always non-nil so it JSON-encodes as []
// rather than null.
func (t *Tracer) Events(f Filter) []Event {
	out := make([]Event, 0, 64)
	if t == nil {
		return out
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for j := 0; j < sh.n; j++ {
			ev := sh.buf[j]
			if f.TraceID != 0 && ev.TraceID != f.TraceID {
				continue
			}
			out = append(out, ev)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ctxKey is the context key for the current span.
type ctxKey struct{}

// ContextWith returns a context carrying the span, so callees (the
// controller's phases, audits) can hang their children under it.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
