package fleet

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"iris/internal/history"
	"iris/internal/telemetry"
)

// Handler returns the fleet's aggregated HTTP plane:
//
//	GET  /metrics        — fleet-level iris_fleet_* metrics followed by
//	                       every region's iris_* metrics, each sample
//	                       stamped with a region label
//	GET  /status         — fleet Status as JSON (per-region rows + skew)
//	GET  /healthz        — 200 while every region is healthy, 503 with
//	                       the unhealthy region ids otherwise
//	GET  /demand         — latest bus samples plus the skew report
//	GET  /api/history    — per-region reconfiguration history summaries
//	                       (?n= bounds rows per region, default 10)
//	POST /chaos          — run a correlated storm: ?k=2&seed=7&cuts=1
//	                       [&region=r003&region=r007] [&timeout=30s];
//	                       blocks until every cycle completes and
//	                       returns the outcomes as JSON
//	*    /regions/{id}/… — reverse-proxy to region id's own debug
//	                       surface (its /metrics, /status, /debug/chaos,
//	                       flight recorder, …)
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := f.reg.WriteText(w); err != nil {
			return
		}
		regs := make([]telemetry.LabeledRegistry, len(f.members))
		for i, m := range f.members {
			regs[i] = telemetry.LabeledRegistry{Value: m.id, Reg: m.r.Registry()}
		}
		_ = telemetry.MergeText(w, "region", regs)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, f.Status())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var degraded []string
		for _, m := range f.members {
			if !m.r.Healthy() {
				degraded = append(degraded, m.id)
			}
		}
		if len(degraded) == 0 {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("degraded: " + strings.Join(degraded, " ") + "\n"))
	})
	mux.HandleFunc("/demand", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Skew    SkewReport     `json:"skew"`
			Samples []DemandSample `json:"samples"`
		}{f.bus.Skew(), f.bus.Snapshot()})
	})
	mux.HandleFunc("/api/history", func(w http.ResponseWriter, r *http.Request) {
		n, err := intParam(r, "n", 10)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := make([]RegionHistory, 0, len(f.members))
		for _, m := range f.members {
			row := RegionHistory{Region: m.id}
			if lake := m.r.History(); lake != nil {
				row.Enabled = true
				row.Total = lake.Len()
				row.Evicted = lake.Evicted()
				row.Records = lake.Summaries(n)
			}
			out = append(out, row)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/chaos", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		cfg := StormConfig{Regions: r.URL.Query()["region"]}
		var err error
		if cfg.K, err = intParam(r, "k", 1); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if cfg.Cuts, err = intParam(r, "cuts", 1); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if v := r.URL.Query().Get("seed"); v != "" {
			if cfg.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad seed: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if v := r.URL.Query().Get("timeout"); v != "" {
			if cfg.Cycle.Timeout, err = time.ParseDuration(v); err != nil {
				http.Error(w, "bad timeout: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		writeJSON(w, f.Storm(cfg))
	})
	mux.HandleFunc("/regions/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/regions/")
		id, _, _ := strings.Cut(rest, "/")
		m := f.member(id)
		if m == nil {
			http.Error(w, "unknown region "+strconv.Quote(id), http.StatusNotFound)
			return
		}
		http.StripPrefix("/regions/"+id, m.r.Handler()).ServeHTTP(w, r)
	})
	return mux
}

// RegionHistory is one region's row in the fleet /api/history listing.
// The full per-record detail (span trees, alloc diffs) lives on the
// region's own surface: /regions/{id}/api/history/{reconfig_id}.
type RegionHistory struct {
	Region  string            `json:"region"`
	Enabled bool              `json:"enabled"`
	Total   int               `json:"total"`
	Evicted int               `json:"evicted"`
	Records []history.Summary `json:"records,omitempty"`
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, &paramErr{name, v}
	}
	return n, nil
}

type paramErr struct{ name, val string }

func (e *paramErr) Error() string { return "bad " + e.name + ": " + strconv.Quote(e.val) }
