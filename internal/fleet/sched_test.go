package fleet

import (
	"context"
	"math"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"iris/internal/daemon"
	"iris/internal/history"
	"iris/internal/telemetry"
)

// fakeRegion is a daemon.Region whose Step can be made to block, so the
// scheduler's isolation contract is testable without real fabrics or
// wall-clock-dependent convergence.
type fakeRegion struct {
	steps atomic.Int64
	// gate, when non-nil, blocks Step until the channel is closed.
	gate      chan struct{}
	healthy   atomic.Bool
	converged atomic.Bool
	reg       *telemetry.Registry
}

func newFakeRegion() *fakeRegion {
	f := &fakeRegion{reg: telemetry.NewRegistry()}
	f.healthy.Store(true)
	f.converged.Store(true)
	return f
}

func (f *fakeRegion) Step() bool {
	if f.gate != nil {
		<-f.gate
	}
	f.steps.Add(1)
	return false
}
func (f *fakeRegion) ProbeOnce()                      {}
func (f *fakeRegion) Healthy() bool                   { return f.healthy.Load() }
func (f *fakeRegion) ConvergedNow() bool              { return f.converged.Load() }
func (f *fakeRegion) RepairNow(context.Context) error { return nil }
func (f *fakeRegion) Status() daemon.Status           { return daemon.Status{Healthy: f.healthy.Load()} }
func (f *fakeRegion) Registry() *telemetry.Registry   { return f.reg }
func (f *fakeRegion) Handler() http.Handler           { return http.NotFoundHandler() }
func (f *fakeRegion) History() *history.Lake          { return nil }
func (f *fakeRegion) Demand() (daemon.DemandSummary, bool) {
	return daemon.DemandSummary{Total: 10}, true
}

// fakeFleet builds a memberless supervisor and attaches fake regions.
// Workers is pinned above the region count so a gated region's task
// occupies a pool slot without starving the pool even on 1-CPU hosts.
func fakeFleet(t *testing.T, regions ...daemon.Region) *Fleet {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Regions = len(regions)
	cfg.Workers = len(regions) + 1
	f, err := newSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range regions {
		f.members = append(f.members, &member{id: RegionID(i), r: r})
	}
	return f
}

// TestRoundSkipsBusyRegions is the isolation contract in miniature: a
// region whose step blocks indefinitely is skipped by every subsequent
// round while its siblings keep getting stepped — no round barrier, no
// head-of-line blocking.
func TestRoundSkipsBusyRegions(t *testing.T) {
	slow := newFakeRegion()
	slow.gate = make(chan struct{})
	fast0, fast1 := newFakeRegion(), newFakeRegion()
	f := fakeFleet(t, fast0, slow, fast1)

	waitSteps := func(r *fakeRegion, want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for r.steps.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("region stuck at %d steps, want %d", r.steps.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Round 1 dispatches all three; the slow one parks on its gate.
	if dispatched, _ := f.Round(); dispatched != 3 {
		t.Fatalf("round 1 dispatched %d, want 3", dispatched)
	}
	waitSteps(fast0, 1)
	waitSteps(fast1, 1)

	// Rounds 2..4: the slow region is still busy and must be skipped;
	// the fast ones keep converging at full cadence.
	for round := 2; round <= 4; round++ {
		waitSteps(fast0, int64(round-1))
		waitSteps(fast1, int64(round-1))
		if dispatched, _ := f.Round(); dispatched != 2 {
			t.Fatalf("round %d dispatched %d, want 2 (slow region skipped)", round, dispatched)
		}
	}
	waitSteps(fast0, 4)
	waitSteps(fast1, 4)
	if got := f.skippedBusy.Value(); got != 3 {
		t.Errorf("skipped-busy = %v, want 3", got)
	}
	if got := slow.steps.Load(); got != 0 {
		t.Errorf("slow region stepped %d times while gated", got)
	}

	// Release the gate: the parked task completes and the region rejoins
	// the rotation.
	close(slow.gate)
	f.Quiesce()
	if got := slow.steps.Load(); got != 1 {
		t.Errorf("slow region steps = %d after release, want 1", got)
	}
	if dispatched, _ := f.Round(); dispatched != 3 {
		t.Error("released region not rejoined")
	}
	f.Quiesce()
}

// TestRunStopsWhenAllFeedsExhaust drives Run over fakes whose feeds
// exhaust after two steps.
func TestRunStopsWhenAllFeedsExhaust(t *testing.T) {
	var n atomic.Int64
	f := fakeFleet(t, &exhaustAfter{fakeRegion: newFakeRegion(), limit: 2, n: &n})
	f.cfg.Interval = time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Run(ctx); err != nil {
		t.Fatalf("Run = %v, want clean exhaustion", err)
	}
	if got := n.Load(); got != 2 {
		t.Errorf("steps before exhaustion = %d, want 2", got)
	}
}

type exhaustAfter struct {
	*fakeRegion
	limit int64
	n     *atomic.Int64
}

func (e *exhaustAfter) Step() bool { return e.n.Add(1) >= e.limit }

// TestBusSkew pins the skew math: three regions at 10/10/40 give
// total 60, mean 20, skew 2, cv = sqrt(200)/20.
func TestBusSkew(t *testing.T) {
	b := NewBus(nil)
	if sk := b.Skew(); sk.Regions != 0 || sk.Skew != 0 {
		t.Fatalf("empty bus skew = %+v", sk)
	}
	b.Publish("r000", daemon.DemandSummary{Total: 10})
	b.Publish("r001", daemon.DemandSummary{Total: 10})
	b.Publish("r002", daemon.DemandSummary{Total: 40})
	// Re-publishing replaces, not appends.
	b.Publish("r002", daemon.DemandSummary{Total: 40})

	sk := b.Skew()
	if sk.Regions != 3 || sk.Total != 60 || sk.Mean != 20 {
		t.Fatalf("skew report = %+v", sk)
	}
	if sk.Max != 40 || sk.MaxRegion != "r002" || sk.Min != 10 {
		t.Errorf("extremes wrong: %+v", sk)
	}
	if sk.Skew != 2 {
		t.Errorf("skew = %v, want 2", sk.Skew)
	}
	if want := math.Sqrt(200) / 20; math.Abs(sk.CV-want) > 1e-12 {
		t.Errorf("cv = %v, want %v", sk.CV, want)
	}
	if got := b.Publishes(); got != 4 {
		t.Errorf("publishes = %d, want 4", got)
	}
	snap := b.Snapshot()
	if len(snap) != 3 || snap[0].Region != "r000" || snap[2].Region != "r002" {
		t.Errorf("snapshot not ordered by region: %+v", snap)
	}
}
