// Package fleet is the planet-scale layer above irisd: one supervisor
// owning N regional control planes — each a full daemon.BuildRegion
// region with its own traffic feed, allocation state, flow monitor and
// chaos injector — plus a sharded convergence scheduler that steps them
// concurrently under a bounded worker pool.
//
// The scheduler's isolation contract is skip-if-busy: every round
// dispatches exactly the regions that are idle at that instant, so one
// region pinned by a chaos cycle (or simply slow to converge) never
// stalls its siblings. Regions whose traffic feed is exhausted keep
// getting health probes — late faults are still detected — but consume no
// more feed steps.
//
// Regions exchange demand through a gossip-style bus: after each
// convergence a region publishes its hose aggregate (daemon.DemandSummary)
// and the fleet distils cross-region demand skew into first-class signals
// (iris_fleet_demand_skew, iris_fleet_demand_cv, /status skew report).
//
// The fleet's HTTP plane aggregates the regions': /metrics merges every
// region's registry region-labelled into one scrape, /status summarises
// all regions, and /regions/{id}/ reverse-proxies to each region's own
// debug surface.
package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iris/internal/daemon"
	"iris/internal/logging"
	"iris/internal/parallel"
	"iris/internal/telemetry"
	"iris/internal/trace"
)

// SeedStride separates consecutive regions' seed spaces. BuildRegion
// derives streams from Seed..Seed+3, so any stride ≥ 4 keeps regions
// statistically independent; a wide stride also keeps the spaces disjoint
// under future derived streams.
const SeedStride = 1000

// Config describes a fleet. Construct with DefaultConfig and mutate.
type Config struct {
	// Regions is the number of regions to build and supervise.
	Regions int
	// Seed pins the whole fleet: region i is built with
	// Seed + i*SeedStride, so one value reproduces every region's map,
	// traffic and jitter.
	Seed int64
	// Workers bounds the scheduler's worker pool (≤0 = GOMAXPROCS). All
	// region bring-up and stepping happens on at most this many
	// goroutines regardless of fleet size.
	Workers int
	// Interval is Run's round cadence.
	Interval time.Duration
	// Region is the per-region template. Its Seed, Registry and Logger
	// are overridden per region: seeds derived from Config.Seed, a fresh
	// instance-scoped registry per region (shared registries panic — see
	// telemetry), and the fleet logger with a region attribute.
	Region daemon.RegionConfig
	// Registry receives the fleet-level iris_fleet_* metrics (a fresh one
	// if nil). Region metrics stay on per-region registries and are
	// merged region-labelled into the /metrics scrape.
	Registry *telemetry.Registry
	// Tracer records fleet-level spans: fleet-round roots with per-region
	// region-step children, and fleet-chaos spans parenting storm cycles.
	// Nil disables fleet tracing (regions keep their own recorders).
	Tracer *trace.Tracer
	// Logger receives structured logs (silent if nil).
	Logger *slog.Logger
	// Now is the clock (time.Now if nil; tests inject a fake).
	Now func() time.Time
}

// DefaultConfig returns a small deterministic fleet: 4 toy regions,
// seed 1, 2 s rounds, worker pool sized to the host.
func DefaultConfig() Config {
	return Config{
		Regions:  4,
		Seed:     1,
		Interval: 2 * time.Second,
		Region:   daemon.DefaultRegionConfig(),
	}
}

// member is one supervised region plus its scheduling state.
type member struct {
	id    string
	r     daemon.Region
	built *daemon.BuiltRegion
	// busy marks the region as owned by an in-flight task — a scheduler
	// step or a pinned chaos cycle. Rounds skip busy members instead of
	// waiting, which is the fleet's whole isolation mechanism.
	busy atomic.Bool
	// done marks the region's traffic feed exhausted. Done members still
	// get probed every round (fault detection never stops) but consume no
	// more feed steps.
	done atomic.Bool
}

// Fleet supervises N regions: builds them, steps them concurrently,
// relays their demand aggregates over the bus, and serves the aggregated
// HTTP plane.
type Fleet struct {
	cfg     Config
	members []*member
	bus     *Bus
	reg     *telemetry.Registry
	tracer  *trace.Tracer
	log     *slog.Logger
	now     func() time.Time

	// sem bounds the worker pool all region step tasks run under;
	// inflight tracks dispatched-but-unfinished tasks for Quiesce.
	sem      chan struct{}
	inflight sync.WaitGroup

	rounds        *telemetry.Counter
	regionSteps   *telemetry.Counter
	skippedBusy   *telemetry.Counter
	chaosCycles   *telemetry.Counter
	chaosFailures *telemetry.Counter
	regionsGauge  *telemetry.Gauge
	convergedG    *telemetry.Gauge
	doneG         *telemetry.Gauge
	skewG         *telemetry.Gauge
	cvG           *telemetry.Gauge
	stepSecs      *telemetry.Histogram
}

// New builds the fleet: N regions assembled in parallel through
// daemon.BuildRegion (bounded by Workers), each with a derived seed and
// its own registry. On any bring-up failure every already-built region is
// torn down before the error is returned.
func New(cfg Config) (*Fleet, error) {
	f, err := newSupervisor(cfg)
	if err != nil {
		return nil, err
	}
	cfg = f.cfg
	log := f.log

	f.members = make([]*member, cfg.Regions)
	err = parallel.ForEach(cfg.Regions, cfg.Workers, func(i int) error {
		rc := cfg.Region
		rc.Seed = cfg.Seed + int64(i)*SeedStride
		rc.Registry = nil // always instance-scoped; sharing panics
		rc.Now = cfg.Now
		id := RegionID(i)
		rc.Logger = log.With("region", id)
		b, err := daemon.BuildRegion(rc)
		if err != nil {
			return fmt.Errorf("region %s: %w", id, err)
		}
		f.members[i] = &member{id: id, r: b.Daemon, built: b}
		return nil
	})
	if err != nil {
		for _, m := range f.members {
			if m != nil {
				m.built.Close()
			}
		}
		return nil, fmt.Errorf("fleet: %w", err)
	}
	f.regionsGauge.Set(float64(cfg.Regions))
	log.Info("fleet up", "regions", cfg.Regions, "seed", cfg.Seed, "workers", cfg.Workers)
	return f, nil
}

// newSupervisor validates the config and builds the memberless fleet
// core — scheduler state, bus, metrics. Tests use it to run the
// scheduler over fake regions; New attaches real built regions.
func newSupervisor(cfg Config) (*Fleet, error) {
	if cfg.Regions <= 0 {
		return nil, fmt.Errorf("fleet: Regions must be ≥ 1, got %d", cfg.Regions)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	log := cfg.Logger
	if log == nil {
		log = logging.Silent()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	f := &Fleet{
		cfg:    cfg,
		bus:    NewBus(now),
		reg:    reg,
		tracer: cfg.Tracer,
		log:    log,
		now:    now,
		sem:    make(chan struct{}, workers),

		rounds:        reg.Counter("iris_fleet_rounds_total", "Scheduler rounds completed."),
		regionSteps:   reg.Counter("iris_fleet_region_steps_total", "Region control-loop steps dispatched by the scheduler."),
		skippedBusy:   reg.Counter("iris_fleet_steps_skipped_busy_total", "Round dispatches skipped because the region was busy (pinned by chaos or still converging)."),
		chaosCycles:   reg.Counter("iris_fleet_chaos_cycles_total", "Fleet-coordinated chaos cycles completed."),
		chaosFailures: reg.Counter("iris_fleet_chaos_failures_total", "Fleet-coordinated chaos cycles that failed."),
		regionsGauge:  reg.Gauge("iris_fleet_regions", "Regions supervised."),
		convergedG:    reg.Gauge("iris_fleet_regions_converged", "Regions converged at the end of the last round."),
		doneG:         reg.Gauge("iris_fleet_regions_done", "Regions whose traffic feed is exhausted."),
		skewG:         reg.Gauge("iris_fleet_demand_skew", "Cross-region demand skew: max region demand over mean."),
		cvG:           reg.Gauge("iris_fleet_demand_cv", "Cross-region demand coefficient of variation."),
		stepSecs:      reg.Histogram("iris_fleet_region_step_seconds", "Wall time per region step task (probe + control-loop step).", []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
	}
	return f, nil
}

// RegionID formats the canonical region identifier for index i: r000,
// r001, … — the id used in /regions/{id}/ paths and the region metric
// label.
func RegionID(i int) string { return fmt.Sprintf("r%03d", i) }

// Regions returns the fleet's region count.
func (f *Fleet) Regions() int { return len(f.members) }

// Region returns region id's lifecycle handle, or false if unknown.
func (f *Fleet) Region(id string) (daemon.Region, bool) {
	if m := f.member(id); m != nil {
		return m.r, true
	}
	return nil, false
}

func (f *Fleet) member(id string) *member {
	for _, m := range f.members {
		if m.id == id {
			return m
		}
	}
	return nil
}

// Round runs one scheduler round: every idle region gets a probe+step
// task dispatched onto the fleet's bounded worker pool, then Round
// returns — it does not wait for the tasks. Each task probes device
// health, advances the region's control loop unless its feed is
// exhausted, and publishes the region's demand aggregate on the bus.
//
// Busy regions — pinned by a chaos cycle, or still running a task from
// an earlier round — are skipped, not awaited. There is no round
// barrier at all: one region's slow convergence or pinned chaos cycle
// can never delay when its siblings are next stepped. That skip is the
// fleet's whole isolation mechanism.
//
// It returns the number of tasks dispatched and whether every region's
// feed was exhausted as of the start of the round.
func (f *Fleet) Round() (dispatched int, allDone bool) {
	root := f.tracer.Start(f.tracer.NextID(), "fleet-round")

	skipped, done := 0, 0
	for _, m := range f.members {
		if m.done.Load() {
			done++
		}
		if !m.busy.CompareAndSwap(false, true) {
			f.skippedBusy.Inc()
			skipped++
			continue
		}
		dispatched++
		f.inflight.Add(1)
		go f.stepMember(m, root)
	}

	converged := 0
	for _, m := range f.members {
		if m.r.ConvergedNow() {
			converged++
		}
	}
	f.convergedG.Set(float64(converged))
	f.doneG.Set(float64(done))
	if sk := f.bus.Skew(); sk.Regions > 0 {
		f.skewG.Set(sk.Skew)
		f.cvG.Set(sk.CV)
	}
	f.rounds.Inc()
	root.SetAttr(fmt.Sprintf("dispatched=%d skipped=%d converged=%d",
		dispatched, skipped, converged))
	root.Finish()
	return dispatched, done == len(f.members)
}

// stepMember is one region's task for one round: acquire a pool slot,
// probe, step (unless the feed is exhausted), publish demand, release
// the region. The busy flag is held from dispatch to completion, so a
// region never runs two tasks at once and later rounds skip it while
// this one is still going.
func (f *Fleet) stepMember(m *member, round *trace.Span) {
	defer f.inflight.Done()
	defer m.busy.Store(false)
	f.sem <- struct{}{}
	defer func() { <-f.sem }()

	start := f.now()
	sp := round.Child("region-step")
	sp.SetDevice(m.id)
	m.r.ProbeOnce()
	if !m.done.Load() {
		if m.r.Step() {
			m.done.Store(true)
			sp.SetAttr("feed exhausted")
		}
		f.regionSteps.Inc()
	}
	if dm, ok := m.r.Demand(); ok {
		f.bus.Publish(m.id, dm)
	}
	if !m.r.ConvergedNow() {
		sp.Fail(fmt.Errorf("not converged"))
	}
	sp.Finish()
	f.stepSecs.Observe(f.now().Sub(start).Seconds())
}

// Quiesce blocks until every task dispatched so far has finished. Chaos
// cycles pin regions outside the task pool; Quiesce does not wait for
// them.
func (f *Fleet) Quiesce() { f.inflight.Wait() }

// Run drives rounds on the configured cadence until ctx is cancelled or
// every region's traffic feed is exhausted (never, for unbounded feeds).
func (f *Fleet) Run(ctx context.Context) error {
	ticker := time.NewTicker(f.cfg.Interval)
	defer ticker.Stop()
	for {
		if _, allDone := f.Round(); allDone {
			f.Quiesce()
			f.log.Info("all feeds exhausted", "rounds", f.rounds.Value())
			return nil
		}
		select {
		case <-ctx.Done():
			f.Quiesce()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Close waits for in-flight tasks and tears every region's emulated
// testbed down.
func (f *Fleet) Close() {
	f.Quiesce()
	_ = parallel.ForEach(len(f.members), f.cfg.Workers, func(i int) error {
		f.members[i].built.Close()
		return nil
	})
}

// RegionStatus is one region's row in the fleet status report.
type RegionStatus struct {
	ID        string  `json:"id"`
	Healthy   bool    `json:"healthy"`
	Converged bool    `json:"converged"`
	Done      bool    `json:"done"`
	Busy      bool    `json:"busy"`
	Steps     int     `json:"steps"`
	LastError string  `json:"last_error,omitempty"`
	Demand    float64 `json:"demand"`
}

// Status is the fleet-wide summary served on /status.
type Status struct {
	Regions   int            `json:"regions"`
	Converged int            `json:"converged"`
	Healthy   int            `json:"healthy"`
	Done      int            `json:"done"`
	Rounds    float64        `json:"rounds"`
	Skew      SkewReport     `json:"demand_skew"`
	PerRegion []RegionStatus `json:"per_region"`
}

// Status snapshots every region. Rows are ordered by region id.
func (f *Fleet) Status() Status {
	st := Status{
		Regions:   len(f.members),
		Rounds:    f.rounds.Value(),
		Skew:      f.bus.Skew(),
		PerRegion: make([]RegionStatus, 0, len(f.members)),
	}
	for _, m := range f.members {
		ds := m.r.Status()
		row := RegionStatus{
			ID:        m.id,
			Healthy:   ds.Healthy,
			Converged: m.r.ConvergedNow(),
			Done:      m.done.Load(),
			Busy:      m.busy.Load(),
			Steps:     ds.Steps,
			LastError: ds.LastError,
		}
		if dm, ok := m.r.Demand(); ok {
			row.Demand = dm.Total
		}
		if row.Healthy {
			st.Healthy++
		}
		if row.Converged {
			st.Converged++
		}
		if row.Done {
			st.Done++
		}
		st.PerRegion = append(st.PerRegion, row)
	}
	sort.Slice(st.PerRegion, func(i, j int) bool { return st.PerRegion[i].ID < st.PerRegion[j].ID })
	return st
}

// Registry returns the fleet-level metrics registry (iris_fleet_*).
func (f *Fleet) Registry() *telemetry.Registry { return f.reg }

// Bus returns the inter-region demand bus.
func (f *Fleet) Bus() *Bus { return f.bus }
