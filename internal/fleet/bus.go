package fleet

import (
	"math"
	"sort"
	"sync"
	"time"

	"iris/internal/daemon"
)

// DemandSample is one region's hose aggregate as published on the bus:
// the region's DemandSummary stamped with who published it and when.
type DemandSample struct {
	Region string    `json:"region"`
	At     time.Time `json:"at"`
	daemon.DemandSummary
}

// Bus is the fleet's gossip-style demand exchange: regions publish their
// hose aggregates after each convergence, consumers read the latest
// sample per region. It is last-writer-wins per region — there is no
// history, matching the gossip model where only the freshest view
// matters.
type Bus struct {
	now func() time.Time

	mu     sync.RWMutex
	latest map[string]DemandSample
	pubs   uint64
}

// NewBus returns an empty bus stamping samples with now (time.Now if
// nil).
func NewBus(now func() time.Time) *Bus {
	if now == nil {
		now = time.Now
	}
	return &Bus{now: now, latest: make(map[string]DemandSample)}
}

// Publish replaces region's sample on the bus.
func (b *Bus) Publish(region string, dm daemon.DemandSummary) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.latest[region] = DemandSample{Region: region, At: b.now(), DemandSummary: dm}
	b.pubs++
}

// Publishes returns the total number of samples ever published.
func (b *Bus) Publishes() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.pubs
}

// Snapshot returns the latest sample from every region, ordered by
// region id.
func (b *Bus) Snapshot() []DemandSample {
	b.mu.RLock()
	out := make([]DemandSample, 0, len(b.latest))
	for _, s := range b.latest {
		out = append(out, s)
	}
	b.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// SkewReport distils the bus into the fleet's cross-region demand-skew
// signal: how unevenly total demand is spread over regions right now.
// Skew is max/mean (1 = perfectly even); CV is the coefficient of
// variation (stddev/mean, 0 = perfectly even).
type SkewReport struct {
	// Regions is the number of regions with a published sample.
	Regions int `json:"regions"`
	// Total sums every region's total demand, in wavelength units.
	Total float64 `json:"total"`
	Mean  float64 `json:"mean"`
	// Min/Max identify the least- and most-loaded regions.
	Min       float64 `json:"min"`
	MinRegion string  `json:"min_region,omitempty"`
	Max       float64 `json:"max"`
	MaxRegion string  `json:"max_region,omitempty"`
	// Skew is Max/Mean; 1 means perfectly even. 0 when no samples.
	Skew float64 `json:"skew"`
	// CV is stddev/mean; 0 means perfectly even.
	CV float64 `json:"cv"`
}

// Skew computes the current cross-region demand skew from the bus.
func (b *Bus) Skew() SkewReport {
	samples := b.Snapshot()
	r := SkewReport{Regions: len(samples)}
	if len(samples) == 0 {
		return r
	}
	r.Min = math.Inf(1)
	for _, s := range samples {
		r.Total += s.Total
		if s.Total < r.Min {
			r.Min, r.MinRegion = s.Total, s.Region
		}
		if s.Total > r.Max {
			r.Max, r.MaxRegion = s.Total, s.Region
		}
	}
	r.Mean = r.Total / float64(len(samples))
	if r.Mean > 0 {
		r.Skew = r.Max / r.Mean
		var ss float64
		for _, s := range samples {
			d := s.Total - r.Mean
			ss += d * d
		}
		r.CV = math.Sqrt(ss/float64(len(samples))) / r.Mean
	}
	return r
}
