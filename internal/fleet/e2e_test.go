// End-to-end fleet tests live in an external package and drive real
// regions — full fabrics, evolving feeds, chaos injectors — through the
// fleet scheduler on a fake clock, so every run is deterministic for a
// given -regions/-seed.
package fleet_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iris/internal/daemon"
	"iris/internal/fleet"
)

var (
	nRegions = flag.Int("regions", 8, "fleet size for the e2e test")
	e2eSeed  = flag.Int64("seed", 1, "fleet seed for the e2e test")
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testFleet builds an n-region chaos-armed fleet on a fake clock, sized
// for fast deterministic convergence: zero OSS settling delay, two
// traffic steps per region, tight breaker backoff.
func testFleet(t *testing.T, n int, seed int64, clock *fakeClock) *fleet.Fleet {
	t.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Regions = n
	cfg.Seed = seed
	cfg.Workers = 8
	cfg.Now = clock.Now
	rc := daemon.DefaultRegionConfig()
	rc.OSSDelay = 0
	rc.Steps = 2
	rc.Chaos = true
	rc.TraceEvents = 256
	rc.FailureThreshold = 2
	rc.BackoffBase = 100 * time.Millisecond
	rc.BackoffMax = 400 * time.Millisecond
	cfg.Region = rc
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// round runs one synchronous scheduler round: dispatch, drain, advance
// the shared clock past the probe interval.
func round(f *fleet.Fleet, clock *fakeClock) int {
	dispatched, _ := f.Round()
	f.Quiesce()
	clock.advance(time.Second)
	return dispatched
}

// runFleetE2E is the shared e2e scenario: converge every region once,
// pin one region with a chaos cycle parked mid-flight, prove the other
// n-1 regions run to feed exhaustion while it is pinned, then let the
// cycle finish and verify the whole fleet heals and exhausts. Returns
// the fleet for extra assertions.
func runFleetE2E(t *testing.T, n int, seed int64) (*fleet.Fleet, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	f := testFleet(t, n, seed, clock)
	if f.Regions() != n {
		t.Fatalf("fleet has %d regions, want %d", f.Regions(), n)
	}

	// Round 1: every region converges its first shift.
	if d := round(f, clock); d != n {
		t.Fatalf("round 1 dispatched %d, want %d", d, n)
	}
	st := f.Status()
	if st.Converged != n || st.Healthy != n {
		t.Fatalf("after round 1: converged=%d healthy=%d, want %d", st.Converged, st.Healthy, n)
	}
	if sk := f.Bus().Skew(); sk.Regions != n || sk.Total <= 0 || sk.Skew < 1 {
		t.Fatalf("demand skew not aggregated: %+v", sk)
	}

	// Pin the victim with a chaos cycle whose pump is parked on a gate:
	// the fault is injected but the cycle makes no progress, holding the
	// region busy — exactly the pinned-cycle case the scheduler must
	// isolate.
	victim := fleet.RegionID(0)
	vr, ok := f.Region(victim)
	if !ok {
		t.Fatalf("region %s missing", victim)
	}
	gate := make(chan struct{})
	pump := func() {
		<-gate // parked until released; a closed gate never blocks again
		clock.advance(150 * time.Millisecond)
		vr.ProbeOnce()
		if vs := vr.Status(); vs.Healthy && !vs.NeedRepair {
			vr.Step()
		}
	}
	outcomes := make(chan []fleet.StormOutcome, 1)
	go func() {
		outcomes <- f.Storm(fleet.StormConfig{
			Regions: []string{victim},
			Seed:    seed,
			Cycle:   fleet.CycleOptions{Pump: pump, Timeout: time.Minute},
		})
	}()
	waitBusy := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			busy := false
			for _, row := range f.Status().PerRegion {
				if row.ID == victim {
					busy = row.Busy
				}
			}
			if busy == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("region %s busy != %v", victim, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitBusy(true)

	// Rounds 2..: the pinned region is skipped every time; its n-1
	// siblings keep stepping and run their feeds to exhaustion.
	for i := 0; i < 3; i++ {
		if d := round(f, clock); d != n-1 {
			t.Fatalf("pinned round dispatched %d, want %d", d, n-1)
		}
	}
	st = f.Status()
	if st.Done != n-1 {
		t.Fatalf("done=%d while one region pinned, want %d", st.Done, n-1)
	}
	if st.Converged < n-1 {
		t.Fatalf("converged=%d while one region pinned, want ≥ %d", st.Converged, n-1)
	}
	for _, row := range st.PerRegion {
		if row.ID == victim {
			if row.Done {
				t.Fatal("pinned region advanced while parked")
			}
			if !row.Busy {
				t.Fatal("victim not busy mid-cycle")
			}
		} else if !row.Converged {
			t.Errorf("region %s not converged while sibling pinned", row.ID)
		}
	}

	// Release the cycle: detect → restore → heal → replan → settle runs
	// off the pump, then the region rejoins the rotation and exhausts.
	close(gate)
	out := <-outcomes
	if len(out) != 1 || out[0].Error != "" || out[0].Result == nil {
		t.Fatalf("storm outcome = %+v", out)
	}
	if out[0].Result.Detect <= 0 || out[0].Result.Repair <= 0 {
		t.Fatalf("cycle latencies not measured: %+v", out[0].Result)
	}
	waitBusy(false)
	for i := 0; i < 4 && !allDone(f); i++ {
		round(f, clock)
	}
	st = f.Status()
	if st.Done != n || st.Converged != n || st.Healthy != n {
		t.Fatalf("fleet did not heal: %+v", st)
	}
	return f, clock
}

func allDone(f *fleet.Fleet) bool { return f.Status().Done == f.Regions() }

// TestFleetE2E is the deterministic fleet acceptance run, parameterised
// by -regions and -seed: all N regions converge, one injected region
// fault (a pinned chaos cycle) leaves the other N-1 converged, and the
// fleet heals. The aggregated HTTP plane is asserted on the same fleet.
func TestFleetE2E(t *testing.T) {
	if *nRegions < 2 {
		t.Fatal("-regions must be ≥ 2")
	}
	f, _ := runFleetE2E(t, *nRegions, *e2eSeed)

	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var st fleet.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if st.Regions != *nRegions || st.Converged != *nRegions {
		t.Fatalf("/status = %+v", st)
	}
	if st.Skew.Regions != *nRegions {
		t.Fatalf("/status skew = %+v", st.Skew)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"iris_fleet_rounds_total",
		"iris_fleet_demand_skew",
		"iris_fleet_chaos_cycles_total 1",
		fmt.Sprintf(`iris_daemon_steps_total{region="%s"}`, fleet.RegionID(0)),
		fmt.Sprintf(`iris_daemon_steps_total{region="%s"}`, fleet.RegionID(*nRegions-1)),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if code, body = get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get("/regions/" + fleet.RegionID(1) + "/status")
	if code != http.StatusOK {
		t.Fatalf("region proxy = %d", code)
	}
	var ds daemon.Status
	if err := json.Unmarshal([]byte(body), &ds); err != nil {
		t.Fatalf("proxied region status not JSON: %v", err)
	}
	if !ds.Healthy || ds.Steps == 0 {
		t.Errorf("proxied region status = %+v", ds)
	}

	if code, _ = get("/regions/nope/status"); code != http.StatusNotFound {
		t.Errorf("unknown region = %d, want 404", code)
	}

	code, body = get("/demand")
	if code != http.StatusOK || !strings.Contains(body, `"skew"`) {
		t.Errorf("/demand = %d %q", code, body)
	}
}

// TestFleet100Regions is the scale acceptance run: 100 regions converge
// concurrently (race-clean), with one region pinned by a chaos cycle the
// whole time the other 99 run to exhaustion.
func TestFleet100Regions(t *testing.T) {
	if testing.Short() {
		t.Skip("100-region fleet run skipped in -short mode")
	}
	runFleetE2E(t, 100, 1)
}
