package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"iris/internal/chaos"
)

// CycleOptions tunes one fleet-coordinated chaos cycle.
type CycleOptions struct {
	// Pump advances the pinned region between condition checks. Nil uses
	// the live pump: probe the region (the scheduler won't — the region
	// is busy for the cycle's whole duration) and sleep PollInterval.
	// Tests pass a pump that also advances a fake clock.
	Pump func()
	// PollInterval paces the default pump (default 50ms).
	PollInterval time.Duration
	// Timeout bounds each cycle phase (default 30s).
	Timeout time.Duration
}

// RunChaosCycle pins region id busy and drives it through one full
// inject→detect→restore→heal→replan→settle cycle. While pinned, the
// scheduler skips the region — its siblings keep converging untouched —
// and the cycle's own pump advances the region instead. The cycle is
// journaled as a fleet-chaos span on the fleet tracer; the detailed
// chaos-cycle span tree lands on the region's own recorder.
//
// It fails fast if the region is unknown, has no chaos injector armed,
// or is already busy (a cycle or dispatch owns it).
func (f *Fleet) RunChaosCycle(id string, sc chaos.Scenario, opt CycleOptions) (*chaos.CycleResult, error) {
	m := f.member(id)
	if m == nil {
		return nil, fmt.Errorf("fleet: unknown region %q", id)
	}
	if m.built.Injector == nil {
		return nil, fmt.Errorf("fleet: region %s has no chaos injector (build with Chaos: true)", id)
	}
	if !m.busy.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("fleet: region %s is busy", id)
	}
	defer m.busy.Store(false)

	poll := opt.PollInterval
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	pump := opt.Pump
	if pump == nil {
		pump = func() {
			m.r.ProbeOnce()
			time.Sleep(poll)
		}
	}

	sp := f.tracer.Start(f.tracer.NextID(), "fleet-chaos")
	sp.SetDevice(id)
	sp.SetAttr(sc.Name)
	f.log.Info("chaos cycle start", "region", id, "scenario", sc.Name)
	cc := chaos.CycleConfig{
		Scenario:     sc,
		CP:           m.r,
		Pump:         pump,
		PollInterval: poll,
		Timeout:      opt.Timeout,
		History:      m.r.History(),
	}
	if m.built.Daemon != nil {
		cc.Books = m.built.Daemon.HistoryBooks
	}
	res, err := m.built.Injector.RunCycle(cc)
	if err != nil {
		f.chaosFailures.Inc()
		sp.Fail(err)
		sp.Finish()
		f.log.Warn("chaos cycle failed", "region", id, "err", err)
		return nil, fmt.Errorf("fleet: region %s: %w", id, err)
	}
	f.chaosCycles.Inc()
	sp.SetAttr(fmt.Sprintf("%s detect=%v repair=%v", sc.Name, res.Detect, res.Repair))
	sp.Finish()
	f.log.Info("chaos cycle done", "region", id,
		"detect", res.Detect, "repair", res.Repair, "total", res.Total)
	return res, nil
}

// StormConfig describes a correlated multi-region failure event: the
// same storm hits K regions at once, each with its own sampled duct-cut
// scenario, all cycles running concurrently while the rest of the fleet
// keeps converging.
type StormConfig struct {
	// Regions names the regions to hit. Empty samples K regions from
	// Seed instead.
	Regions []string
	// K is the number of regions to sample when Regions is empty
	// (default 1, capped at the fleet size).
	K int
	// Seed pins region sampling and per-region scenario sampling.
	Seed int64
	// Cuts is the number of ducts severed per region (default 1).
	Cuts int
	// Cycle tunes every cycle in the storm.
	Cycle CycleOptions
}

// StormOutcome is one region's result in a storm.
type StormOutcome struct {
	Region string             `json:"region"`
	Result *chaos.CycleResult `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// Storm runs a correlated multi-region chaos event: every targeted
// region is pinned and driven through a full failure-recovery cycle
// concurrently. Outcomes are ordered by region id order of the targets;
// a region that is busy or chaos-less reports an error outcome rather
// than failing the storm.
func (f *Fleet) Storm(cfg StormConfig) []StormOutcome {
	targets := cfg.Regions
	if len(targets) == 0 {
		k := cfg.K
		if k <= 0 {
			k = 1
		}
		if k > len(f.members) {
			k = len(f.members)
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		for _, i := range rng.Perm(len(f.members))[:k] {
			targets = append(targets, f.members[i].id)
		}
	}
	cuts := cfg.Cuts
	if cuts <= 0 {
		cuts = 1
	}

	f.log.Info("storm start", "regions", targets, "cuts", cuts)
	out := make([]StormOutcome, len(targets))
	var wg sync.WaitGroup
	for i, id := range targets {
		out[i].Region = id
		m := f.member(id)
		if m == nil {
			out[i].Error = fmt.Sprintf("unknown region %q", id)
			continue
		}
		// Sample each region's scenario from its own map: correlated in
		// time, independent in exactly which ducts fail.
		scs := chaos.SampleCuts(cfg.Seed+int64(i), m.built.Rig.Dep.Region.Map, cuts, 1)
		if len(scs) == 0 {
			out[i].Error = "no usable duct-cut scenario"
			continue
		}
		wg.Add(1)
		go func(i int, id string, sc chaos.Scenario) {
			defer wg.Done()
			res, err := f.RunChaosCycle(id, sc, cfg.Cycle)
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			out[i].Result = res
		}(i, id, scs[0])
	}
	wg.Wait()
	return out
}
