package fleet_test

import (
	"net/http"
	"testing"
	"time"

	"iris/internal/daemon"
	"iris/internal/fleet"
)

// benchFleet builds an n-region fleet with an endless feed for steady-
// state benchmarking.
func benchFleet(b *testing.B, n int) *fleet.Fleet {
	b.Helper()
	cfg := fleet.DefaultConfig()
	cfg.Regions = n
	cfg.Workers = 8
	rc := daemon.DefaultRegionConfig()
	rc.OSSDelay = 0
	rc.TraceEvents = 256
	rc.ProbeInterval = time.Nanosecond // probe every round
	cfg.Region = rc
	f, err := fleet.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Close)
	return f
}

// BenchmarkFleetRound16 measures one full scheduler round over 16
// regions: dispatch, 16 concurrent probe+step convergences under the
// worker pool, demand publication, drain.
func BenchmarkFleetRound16(b *testing.B) {
	f := benchFleet(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Round()
		f.Quiesce()
	}
}

// BenchmarkFleetMetricsMerge16 measures the aggregated /metrics render:
// the fleet registry plus 16 region registries merged region-labelled
// into one exposition.
func BenchmarkFleetMetricsMerge16(b *testing.B) {
	f := benchFleet(b, 16)
	f.Round()
	f.Quiesce()
	h := f.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := http.NewRequest(http.MethodGet, "/metrics", nil)
		if err != nil {
			b.Fatal(err)
		}
		rec := &countingWriter{}
		h.ServeHTTP(rec, req)
		if rec.n == 0 {
			b.Fatal("empty merged exposition")
		}
	}
}

// countingWriter is a byte-counting http.ResponseWriter, so the merge
// benchmark measures rendering without recorder buffering.
type countingWriter struct {
	n int
	h http.Header
}

func (w *countingWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *countingWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *countingWriter) WriteHeader(int)             {}

// BenchmarkFleetStatus100 measures the /status snapshot over a 100-
// region fleet — the fleet-wide aggregation hot path.
func BenchmarkFleetStatus100(b *testing.B) {
	if testing.Short() {
		b.Skip("100-region bench skipped in -short mode")
	}
	f := benchFleet(b, 100)
	f.Round()
	f.Quiesce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := f.Status()
		if st.Regions != 100 {
			b.Fatal("bad status")
		}
	}
}
