package fabric

import (
	"fmt"
	"time"

	"iris/internal/control"
	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/trace"
)

// BringUpConfig describes a region to plan and materialise into a live
// emulated testbed. It is the single bring-up path shared by irisctl and
// irisd, so the two binaries cannot drift.
type BringUpConfig struct {
	// Toy selects the paper's Fig. 10 toy region; otherwise a map is
	// generated and DCs are placed from Seed / DCs.
	Toy  bool
	Seed int64
	DCs  int
	// DCCapacity is each DC's hose capacity in fiber-pairs (default 10).
	DCCapacity int
	// Lambda is the wavelength count per fiber (default 40).
	Lambda int
	// OSSDelay is the emulated switch settling time (0 = instant).
	OSSDelay time.Duration
	// Dial configures the controller's transport deadlines.
	Dial control.DialOptions
	// WrapDevice, when non-nil, may replace each emulated device before it
	// is served — the hook for fault injection and instrumentation.
	WrapDevice func(name string, dev control.Device) control.Device
	// Tracer, when non-nil, journals the bring-up plan as a "plan" trace
	// with one child per Algorithm-1 stage.
	Tracer *trace.Tracer
}

// Rig is a materialised region: the planned deployment, its fabric, and a
// live testbed with a connected controller.
type Rig struct {
	Dep     *core.Deployment
	Fab     *Fabric
	Testbed *control.Testbed
}

// BringUp plans the region, builds its fabric, and serves the emulated
// device set with a controller dialled to all of it.
func BringUp(cfg BringUpConfig) (*Rig, error) {
	if cfg.DCCapacity == 0 {
		cfg.DCCapacity = 10
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 40
	}
	var m *fibermap.Map
	if cfg.Toy {
		m = fibermap.Toy().Map
	} else {
		gcfg := fibermap.DefaultGen()
		gcfg.Seed = cfg.Seed
		m = fibermap.Generate(gcfg)
		pcfg := fibermap.DefaultPlace()
		pcfg.Seed, pcfg.N = cfg.Seed, cfg.DCs
		if _, err := fibermap.PlaceDCs(m, pcfg); err != nil {
			return nil, fmt.Errorf("fabric: bringup: %w", err)
		}
	}
	caps := make(map[int]int)
	for _, dc := range m.DCs() {
		caps[dc] = cfg.DCCapacity
	}
	sp := cfg.Tracer.Start(cfg.Tracer.NextID(), "plan")
	dep, err := core.Plan(core.Region{Map: m, Capacity: caps, Lambda: cfg.Lambda}, core.Options{Span: sp})
	sp.Fail(err)
	sp.Finish()
	if err != nil {
		return nil, fmt.Errorf("fabric: bringup: %w", err)
	}
	fab, err := Build(dep)
	if err != nil {
		return nil, fmt.Errorf("fabric: bringup: %w", err)
	}
	devs := fab.Devices(cfg.OSSDelay)
	if cfg.WrapDevice != nil {
		for name, dev := range devs {
			devs[name] = cfg.WrapDevice(name, dev)
		}
	}
	tb, err := control.StartTestbedWithOptions(devs, cfg.Dial)
	if err != nil {
		return nil, fmt.Errorf("fabric: bringup: %w", err)
	}
	return &Rig{Dep: dep, Fab: fab, Testbed: tb}, nil
}

// Close shuts the rig's testbed down.
func (r *Rig) Close() { r.Testbed.Close() }
