package fabric

import (
	"fmt"
	"sort"

	"iris/internal/control"
	"iris/internal/hose"
)

// This file holds the runtime support a long-running controller needs on
// top of the one-shot compiler: transactional clones (compile a change
// against a copy, commit only if the devices accepted it) and
// reconciliation (compute the repair change that moves partially
// reconfigured devices back to the fabric's intent).

// Clone returns a deep copy of the fabric's allocator and circuit state.
// The deployment and the port layout are shared: both are immutable after
// Build. A caller can CompileTarget against the clone and, if the change
// executes cleanly, adopt the clone as the new fabric state — or discard
// it after a failure, keeping the last-known-good intent.
func (f *Fabric) Clone() *Fabric {
	g := *f
	g.ductFibers = clonePools(f.ductFibers)
	g.localPorts = clonePools(f.localPorts)
	g.xcvrs = clonePools(f.xcvrs)
	g.full = make(map[hose.Pair][]*circuit, len(f.full))
	for p, cs := range f.full {
		dup := make([]*circuit, len(cs))
		for i, c := range cs {
			dup[i] = c.clone()
		}
		g.full[p] = dup
	}
	g.residual = make(map[hose.Pair]*circuit, len(f.residual))
	for p, c := range f.residual {
		g.residual[p] = c.clone()
	}
	g.ampRefs = make(map[int]int, len(f.ampRefs))
	for n, refs := range f.ampRefs {
		g.ampRefs[n] = refs
	}
	return &g
}

func clonePools(ps map[int]*pool) map[int]*pool {
	out := make(map[int]*pool, len(ps))
	for k, p := range ps {
		out[k] = &pool{n: p.n, free: append([]int(nil), p.free...)}
	}
	return out
}

// clone copies a circuit. The path is shared: it is read-only after
// construction.
func (c *circuit) clone() *circuit {
	d := *c
	d.fiberIdx = append([]int(nil), c.fiberIdx...)
	d.xcvrA = append([]int(nil), c.xcvrA...)
	d.xcvrB = append([]int(nil), c.xcvrB...)
	return &d
}

// Reconcile compares device-reported state against the fabric's intent and
// returns the change that repairs every drifted device — the anti-entropy
// pass the daemon runs after a reconfiguration fails partway (§5.2's audit
// turned into repair). states maps device name to that device's "state"
// result; devices absent from the map are left untouched. The returned
// change follows the usual discipline: drains and disconnects first, then
// connects, retunes, undrains, so it is safe to hand to
// Controller.Reconfigure directly.
func (f *Fabric) Reconcile(states map[string]map[string]any) (control.Change, error) {
	var ch control.Change
	exp := f.Expected()

	// Intended wavelength per live transceiver index.
	wl := make(map[string]map[int]int)
	intendWl := func(dev string, idx, slot int) {
		if wl[dev] == nil {
			wl[dev] = make(map[int]int)
		}
		wl[dev][idx] = slot
	}
	forEachCircuit(f, func(c *circuit) {
		for slot := 0; slot < c.live; slot++ {
			intendWl(f.XcvrName(c.pair.A), c.xcvrA[slot], slot)
			intendWl(f.XcvrName(c.pair.B), c.xcvrB[slot], slot)
		}
	})

	// OSS cross-connect repair.
	for _, node := range sortedKeys(f.ossSize) {
		if f.ossSize[node] == 0 {
			continue
		}
		name := f.OSSName(node)
		st, ok := states[name]
		if !ok {
			continue
		}
		actual, err := parseCross(st["cross"])
		if err != nil {
			return control.Change{}, fmt.Errorf("fabric: reconcile %s: %w", name, err)
		}
		want := exp.Cross[name]
		for _, in := range sortedKeys(actual) {
			if out, ok := want[in]; !ok || out != actual[in] {
				ch.Switches = append(ch.Switches, control.OSSOp{Device: name, In: in, Disconnect: true})
			}
		}
		for _, in := range sortedKeys(want) {
			if out, ok := actual[in]; !ok || out != want[in] {
				ch.Switches = append(ch.Switches, control.OSSOp{Device: name, In: in, Out: want[in]})
			}
		}
	}

	// Transceiver repair: drain strays, retune+undrain missing live slots.
	for _, dc := range f.dep.Region.Map.DCs() {
		name := f.XcvrName(dc)
		st, ok := states[name]
		if !ok {
			continue
		}
		tuned := parseIntVec(st["tuned"])
		actEn := parseBoolVec(st["enabled"])
		wantEn := exp.Enabled[name]
		for idx := range actEn {
			want := idx < len(wantEn) && wantEn[idx]
			switch {
			case actEn[idx] && !want:
				ch.Drain = append(ch.Drain, control.TransceiverOp{Device: name, Idx: idx})
			case want:
				slot := wl[name][idx]
				if actEn[idx] && idx < len(tuned) && tuned[idx] == slot {
					continue // already live on the right wavelength
				}
				if actEn[idx] {
					ch.Drain = append(ch.Drain, control.TransceiverOp{Device: name, Idx: idx})
				}
				ch.Retunes = append(ch.Retunes, control.TransceiverOp{Device: name, Idx: idx, Wavelength: slot})
				ch.Undrain = append(ch.Undrain, control.TransceiverOp{Device: name, Idx: idx})
			}
		}
	}

	// Amplifier repair: an amp is on iff a live circuit crosses its site.
	for _, node := range sortedKeys(f.dep.Plan.Amps) {
		if f.dep.Plan.Amps[node] == 0 {
			continue
		}
		name := f.AmpName(node)
		st, ok := states[name]
		if !ok {
			continue
		}
		actual, _ := st["enabled"].(bool)
		want := f.ampRefs[node] > 0
		if actual != want {
			ch.Amps = append(ch.Amps, control.AmpOp{Device: name, Enable: want})
		}
	}
	return ch, nil
}

// EmptyChange reports whether a change contains no operations; a Reconcile
// result that is empty means the devices already match intent.
func EmptyChange(ch control.Change) bool {
	return len(ch.Drain) == 0 && len(ch.Switches) == 0 && len(ch.Amps) == 0 &&
		len(ch.Retunes) == 0 && len(ch.Fills) == 0 && len(ch.Undrain) == 0
}

func forEachCircuit(f *Fabric, fn func(*circuit)) {
	for _, cs := range f.full {
		for _, c := range cs {
			fn(c)
		}
	}
	for _, c := range f.residual {
		fn(c)
	}
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// State parsing: values arrive either straight from a device's Handle
// (map[string]int, []int, []bool) or through the JSON transport
// (map[string]any with float64, []any).

func parseCross(v any) (map[int]int, error) {
	out := make(map[int]int)
	switch cross := v.(type) {
	case nil:
		return out, nil
	case map[string]int:
		for k, p := range cross {
			in, err := parsePort(k)
			if err != nil {
				return nil, err
			}
			out[in] = p
		}
	case map[string]any:
		for k, p := range cross {
			in, err := parsePort(k)
			if err != nil {
				return nil, err
			}
			f, ok := p.(float64)
			if !ok {
				return nil, fmt.Errorf("bad cross value %v", p)
			}
			out[in] = int(f)
		}
	default:
		return nil, fmt.Errorf("bad cross map %T", v)
	}
	return out, nil
}

func parsePort(k string) (int, error) {
	var in int
	if _, err := fmt.Sscanf(k, "%d", &in); err != nil {
		return 0, fmt.Errorf("bad port key %q", k)
	}
	return in, nil
}

func parseIntVec(v any) []int {
	switch vec := v.(type) {
	case []int:
		return vec
	case []any:
		out := make([]int, len(vec))
		for i, e := range vec {
			if f, ok := e.(float64); ok {
				out[i] = int(f)
			}
		}
		return out
	}
	return nil
}

func parseBoolVec(v any) []bool {
	switch vec := v.(type) {
	case []bool:
		return vec
	case []any:
		out := make([]bool, len(vec))
		for i, e := range vec {
			if b, ok := e.(bool); ok {
				out[i] = b
			}
		}
		return out
	}
	return nil
}
