package fabric

import (
	"context"
	"testing"

	"iris/internal/hose"
	"iris/internal/traffic"
)

// toyRig brings up the toy region with an instant-switching testbed.
func toyRig(t *testing.T) *Rig {
	t.Helper()
	rig, err := BringUp(BringUpConfig{Toy: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)
	return rig
}

func toyMatrix(rig *Rig, d01, d02 float64) *traffic.Matrix {
	dcs := rig.Dep.Region.Map.DCs()
	tm := traffic.NewMatrix(dcs)
	tm.Set(hose.Pair{A: dcs[0], B: dcs[1]}, d01)
	if len(dcs) > 2 {
		tm.Set(hose.Pair{A: dcs[0], B: dcs[2]}, d02)
	}
	return tm
}

func TestCloneIsIndependent(t *testing.T) {
	rig := toyRig(t)
	alloc, err := rig.Dep.Allocate(toyMatrix(rig, 60, 45))
	if err != nil {
		t.Fatal(err)
	}

	clone := rig.Fab.Clone()
	if _, err := clone.CompileTarget(alloc); err != nil {
		t.Fatal(err)
	}
	if got := rig.Fab.CircuitCount(); got != 0 {
		t.Fatalf("compiling on the clone leaked %d circuits into the original", got)
	}
	if got := clone.CircuitCount(); got == 0 {
		t.Fatal("clone compiled no circuits")
	}
	// The untouched original still compiles the identical change, i.e. its
	// pools were not consumed by the clone.
	ch, err := rig.Fab.CompileTarget(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Switches) == 0 {
		t.Fatal("original fabric compiled an empty change")
	}
}

func deviceStates(t *testing.T, rig *Rig) map[string]map[string]any {
	t.Helper()
	states := make(map[string]map[string]any)
	for _, name := range rig.Testbed.Controller.Devices() {
		st, err := rig.Testbed.Controller.Call(name, "state", nil)
		if err != nil {
			t.Fatalf("state of %s: %v", name, err)
		}
		states[name] = st
	}
	return states
}

func TestReconcileRepairsDriftedDevices(t *testing.T) {
	rig := toyRig(t)
	ctl := rig.Testbed.Controller
	alloc, err := rig.Dep.Allocate(toyMatrix(rig, 60, 45))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := rig.Fab.CompileTarget(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Reconfigure(context.Background(), ch); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Audit(rig.Fab.Expected()); err != nil {
		t.Fatalf("audit after clean reconfigure: %v", err)
	}

	// A converged fabric reconciles to an empty change.
	rc, err := rig.Fab.Reconcile(deviceStates(t, rig))
	if err != nil {
		t.Fatal(err)
	}
	if !EmptyChange(rc) {
		t.Fatalf("reconcile of converged devices is not empty: %+v", rc)
	}

	// Drift the devices behind the controller's back: rip out one OSS
	// cross-connect and drain one live transceiver.
	exp := rig.Fab.Expected()
	var ossName string
	var ossIn int
	for name, cross := range exp.Cross {
		for in := range cross {
			ossName, ossIn = name, in
		}
		if ossName != "" {
			break
		}
	}
	if _, err := ctl.Call(ossName, "disconnect", map[string]any{"in": ossIn}); err != nil {
		t.Fatal(err)
	}
	var xcvrName string
	var xcvrIdx int
	for name, en := range exp.Enabled {
		for idx, on := range en {
			if on {
				xcvrName, xcvrIdx = name, idx
			}
		}
		if xcvrName != "" {
			break
		}
	}
	if _, err := ctl.Call(xcvrName, "disable", map[string]any{"idx": xcvrIdx}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Audit(exp); err == nil {
		t.Fatal("audit passed on drifted devices")
	}

	// Reconcile must produce exactly the repair and bring the audit back.
	rc, err = rig.Fab.Reconcile(deviceStates(t, rig))
	if err != nil {
		t.Fatal(err)
	}
	if EmptyChange(rc) {
		t.Fatal("reconcile of drifted devices is empty")
	}
	if _, err := ctl.Reconfigure(context.Background(), rc); err != nil {
		t.Fatalf("repair reconfigure: %v", err)
	}
	if err := ctl.Audit(rig.Fab.Expected()); err != nil {
		t.Fatalf("audit after repair: %v", err)
	}
}

func TestBringUpGeneratedRegion(t *testing.T) {
	rig, err := BringUp(BringUpConfig{Seed: 3, DCs: 4, DCCapacity: 6, Lambda: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	if len(rig.Dep.Region.Map.DCs()) != 4 {
		t.Fatalf("DCs = %d, want 4", len(rig.Dep.Region.Map.DCs()))
	}
	if len(rig.Testbed.Controller.Devices()) == 0 {
		t.Fatal("no devices served")
	}
	// Every served device answers a ping.
	for _, name := range rig.Testbed.Controller.Devices() {
		if _, err := rig.Testbed.Controller.Call(name, "ping", nil); err != nil {
			t.Fatalf("ping %s: %v", name, err)
		}
	}
}
