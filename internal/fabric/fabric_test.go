package fabric

import (
	"context"
	"testing"

	"iris/internal/geo"

	"iris/internal/control"
	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/hose"
	"iris/internal/traffic"
)

func toyDeployment(t *testing.T) (*core.Deployment, *fibermap.ToyRegion) {
	t.Helper()
	r := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range r.Map.DCs() {
		caps[dc] = 10
	}
	dep, err := core.Plan(core.Region{Map: r.Map, Capacity: caps, Lambda: 40}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, r
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("expected error for nil deployment")
	}
}

func TestBuildLayout(t *testing.T) {
	dep, r := toyDeployment(t)
	f, err := Build(dep)
	if err != nil {
		t.Fatal(err)
	}
	// Hub A terminates L1, L2 (13 pairs each) and L5 (24 pairs).
	wantHubA := dep.Plan.Ducts[r.L1].TotalPairs() +
		dep.Plan.Ducts[r.L2].TotalPairs() +
		dep.Plan.Ducts[r.L5].TotalPairs()
	if got := f.OSSPortCount(r.HubA); got != wantHubA {
		t.Errorf("hub A OSS ports = %d, want %d", got, wantHubA)
	}
	// DC1: its access duct pairs + local ports (10 capacity + 3 peers).
	wantDC1 := dep.Plan.Ducts[r.L1].TotalPairs() + 10 + 3
	if got := f.OSSPortCount(r.DC1); got != wantDC1 {
		t.Errorf("DC1 OSS ports = %d, want %d", got, wantDC1)
	}
	// Port lookups are consistent and disjoint between ducts.
	p1, err := f.Port(r.HubA, r.L1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.Port(r.HubA, r.L2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("distinct ducts share a port")
	}
	if _, err := f.Port(r.HubA, 99, 0); err == nil {
		t.Error("expected error for foreign duct")
	}
	if _, err := f.LocalPort(r.HubA, 0); err == nil {
		t.Error("expected error for local port on a hut")
	}
	if _, err := f.LocalPort(r.DC1, 13); err == nil {
		t.Error("expected error for out-of-range local index")
	}
}

func TestBuildDeterministic(t *testing.T) {
	dep, r := toyDeployment(t)
	f1, _ := Build(dep)
	f2, _ := Build(dep)
	for _, node := range []int{r.DC1, r.DC2, r.HubA, r.HubB} {
		if f1.OSSPortCount(node) != f2.OSSPortCount(node) {
			t.Fatalf("layout differs at node %d", node)
		}
	}
	a, _ := f1.Port(r.HubB, r.L5, 3)
	b, _ := f2.Port(r.HubB, r.L5, 3)
	if a != b {
		t.Fatal("port map differs across identical builds")
	}
}

func TestDevicesSizedFromPlan(t *testing.T) {
	dep, r := toyDeployment(t)
	f, _ := Build(dep)
	devs := f.Devices(0)
	// 6 OSSes (4 DCs + 2 hubs) + 4 transceiver banks; no amps in the toy.
	if len(devs) != 10 {
		t.Fatalf("devices = %d, want 10", len(devs))
	}
	if _, ok := devs[f.XcvrName(r.DC1)]; !ok {
		t.Error("missing DC1 transceiver bank")
	}
	if _, ok := devs[f.AmpName(r.HubA)]; ok {
		t.Error("unexpected amplifier device in the amp-free toy")
	}
}

func TestCompileTargetSimpleCircuit(t *testing.T) {
	dep, r := toyDeployment(t)
	f, _ := Build(dep)

	m := traffic.NewMatrix(dep.Region.Map.DCs())
	m.Set(hose.Pair{A: r.DC1, B: r.DC3}, 60) // 1 full fiber + 20 residual
	alloc, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := f.CompileTarget(alloc)
	if err != nil {
		t.Fatal(err)
	}
	// Two circuits (full + residual), each switched at 4 nodes.
	if got := len(ch.Switches); got != 8 {
		t.Errorf("switch ops = %d, want 8", got)
	}
	// 40 + 20 live wavelengths, tuned and enabled at both ends.
	if got := len(ch.Retunes); got != 2*(40+20) {
		t.Errorf("retunes = %d, want 120", got)
	}
	if got := len(ch.Undrain); got != 2*(40+20) {
		t.Errorf("undrains = %d, want 120", got)
	}
	if len(ch.Drain) != 0 {
		t.Errorf("unexpected drains on first establishment: %d", len(ch.Drain))
	}
	if f.CircuitCount() != 2 {
		t.Errorf("circuits = %d, want 2", f.CircuitCount())
	}
}

func TestCompileTargetIdempotent(t *testing.T) {
	dep, r := toyDeployment(t)
	f, _ := Build(dep)
	m := traffic.NewMatrix(dep.Region.Map.DCs())
	m.Set(hose.Pair{A: r.DC1, B: r.DC2}, 80)
	alloc, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CompileTarget(alloc); err != nil {
		t.Fatal(err)
	}
	again, err := f.CompileTarget(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Switches)+len(again.Retunes)+len(again.Drain)+len(again.Undrain) != 0 {
		t.Errorf("repeated target compiled ops: %+v", again)
	}
}

func TestCompileTargetShrinkDrainsFirst(t *testing.T) {
	dep, r := toyDeployment(t)
	f, _ := Build(dep)
	m := traffic.NewMatrix(dep.Region.Map.DCs())
	p := hose.Pair{A: r.DC1, B: r.DC2}
	m.Set(p, 120) // 3 full fibers
	alloc, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CompileTarget(alloc); err != nil {
		t.Fatal(err)
	}

	m.Set(p, 40) // shrink to 1 fiber
	alloc2, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := f.CompileTarget(alloc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Drain) != 2*2*40 {
		t.Errorf("drains = %d, want 160 (two circuits × both ends × 40λ)", len(ch.Drain))
	}
	for _, op := range ch.Switches {
		if !op.Disconnect {
			t.Errorf("shrink compiled a connect: %+v", op)
		}
	}
	if f.CircuitCount() != 1 {
		t.Errorf("circuits = %d, want 1", f.CircuitCount())
	}
}

func TestCompileTargetReallocatesFreedFibers(t *testing.T) {
	// Fill a duct completely, then move the demand to another pair that
	// shares the duct: the compiler must tear down first so the fibers
	// can be reused in the same change.
	dep, r := toyDeployment(t)
	f, _ := Build(dep)
	m := traffic.NewMatrix(dep.Region.Map.DCs())
	p13 := hose.Pair{A: r.DC1, B: r.DC3}
	p14 := hose.Pair{A: r.DC1, B: r.DC4}
	m.Set(p13, 400) // all 10 of DC1's fibers over the central duct
	alloc, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CompileTarget(alloc); err != nil {
		t.Fatal(err)
	}

	m.Set(p13, 0)
	m.Set(p14, 400)
	alloc2, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := f.CompileTarget(alloc2)
	if err != nil {
		t.Fatal(err)
	}
	disc, conn := 0, 0
	for _, op := range ch.Switches {
		if op.Disconnect {
			disc++
		} else {
			conn++
		}
	}
	if disc == 0 || conn == 0 {
		t.Fatalf("expected both disconnects (%d) and connects (%d)", disc, conn)
	}
	if f.CircuitCount() != 10 {
		t.Errorf("circuits = %d, want 10", f.CircuitCount())
	}
}

func TestEndToEndWithController(t *testing.T) {
	// The full loop: plan → fabric → emulated devices over TCP →
	// controller executes compiled changes → audit confirms intent.
	dep, r := toyDeployment(t)
	f, err := Build(dep)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := control.StartTestbed(f.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	m := traffic.NewMatrix(dep.Region.Map.DCs())
	m.Set(hose.Pair{A: r.DC1, B: r.DC3}, 60)
	m.Set(hose.Pair{A: r.DC2, B: r.DC4}, 45)
	alloc, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := f.CompileTarget(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Controller.Reconfigure(context.Background(), ch); err != nil {
		t.Fatal(err)
	}
	if err := tb.Controller.Audit(f.Expected()); err != nil {
		t.Fatalf("audit after setup: %v", err)
	}

	// Traffic shift: move DC2-DC4 down, DC1-DC3 up.
	m.Set(hose.Pair{A: r.DC1, B: r.DC3}, 130)
	m.Set(hose.Pair{A: r.DC2, B: r.DC4}, 10)
	alloc2, err := dep.Allocate(m)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := f.CompileTarget(alloc2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Controller.Reconfigure(context.Background(), ch2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Controller.Audit(f.Expected()); err != nil {
		t.Fatalf("audit after shift: %v", err)
	}
}

func TestGeneratedRegionFabric(t *testing.T) {
	// Fabric compilation works on planned synthetic regions, including
	// paths with amplifiers and cut-throughs.
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = 4
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = 4, 6
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 8
	}
	dep, err := core.Plan(core.Region{Map: m, Capacity: caps, Lambda: 40}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Build(dep)
	if err != nil {
		t.Fatal(err)
	}
	tm := traffic.NewMatrix(dcs)
	for _, p := range tm.Pairs() {
		tm.Set(p, 50)
	}
	alloc, err := dep.Allocate(tm)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := f.CompileTarget(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Switches) == 0 {
		t.Fatal("no switch ops compiled")
	}
	// Every compiled port must be within its device's sized port count.
	sizes := make(map[string]int)
	for node, size := range f.ossSize {
		sizes[f.OSSName(node)] = size
	}
	for _, op := range ch.Switches {
		size := sizes[op.Device]
		if op.In >= size || op.Out >= size {
			t.Fatalf("op %+v outside device size %d", op, size)
		}
	}
}

func TestAmplifierLifecycle(t *testing.T) {
	// A region whose planned paths use an amplifier: the first circuit
	// through the amp site enables it, the last tears it down.
	m := &fibermap.Map{}
	dc0 := m.AddNode(fibermap.DC, geoPoint(0, 0), "")
	h1 := m.AddNode(fibermap.Hut, geoPoint(10, 0), "")
	h2 := m.AddNode(fibermap.Hut, geoPoint(60, 0), "")
	dc1 := m.AddNode(fibermap.DC, geoPoint(115, 0), "")
	m.AddDuct(dc0, h1, 10)
	m.AddDuct(h1, h2, 50)
	m.AddDuct(h2, dc1, 55)
	dep, err := core.Plan(core.Region{
		Map: m, Capacity: map[int]int{dc0: 4, dc1: 4}, Lambda: 40,
	}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Plan.TotalAmps() == 0 {
		t.Fatal("expected amplifiers on a 115 km path")
	}
	f, err := Build(dep)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Devices(0)[f.AmpName(h2)]; !ok {
		t.Fatal("amp device missing from fabric")
	}

	mtx := traffic.NewMatrix(m.DCs())
	p := hose.Pair{A: dc0, B: dc1}
	mtx.Set(p, 80) // two circuits
	alloc, err := dep.Allocate(mtx)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := f.CompileTarget(alloc)
	if err != nil {
		t.Fatal(err)
	}
	enables := 0
	for _, op := range ch.Amps {
		if op.Enable {
			enables++
		}
	}
	if enables != 1 {
		t.Errorf("amp enables = %d, want exactly 1 for the shared site", enables)
	}

	// Shrinking to one circuit keeps the amp on; removing the last turns
	// it off.
	mtx.Set(p, 40)
	alloc2, _ := dep.Allocate(mtx)
	ch2, err := f.CompileTarget(alloc2)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ch2.Amps {
		if !op.Enable {
			t.Errorf("amp disabled while a circuit still uses it: %+v", op)
		}
	}
	mtx.Set(p, 0)
	alloc3, _ := dep.Allocate(mtx)
	ch3, err := f.CompileTarget(alloc3)
	if err != nil {
		t.Fatal(err)
	}
	disables := 0
	for _, op := range ch3.Amps {
		if !op.Enable {
			disables++
		}
	}
	if disables != 1 {
		t.Errorf("amp disables = %d, want 1 when the last circuit leaves", disables)
	}

	// The full loop against live devices.
	f2, _ := Build(dep)
	tb, err := control.StartTestbed(f2.Devices(0))
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	chLive, err := f2.CompileTarget(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Controller.Reconfigure(context.Background(), chLive); err != nil {
		t.Fatal(err)
	}
	amp := tb.Devices[f2.AmpName(h2)].(*control.Amplifier)
	if !amp.Enabled() {
		t.Error("amplifier not enabled after reconfiguration")
	}
}

func geoPoint(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }

func TestCompileTargetResourceExhaustion(t *testing.T) {
	// A hand-crafted allocation beyond the DC's transceiver pool must be
	// rejected with resources rolled back, not panic or leak.
	dep, r := toyDeployment(t)
	f, _ := Build(dep)
	p := hose.Pair{A: r.DC1, B: r.DC2}
	over := core.Allocation{
		// 11 full fibers exceed DC1's 10-fiber transceiver pool.
		Fibers:   map[hose.Pair]int{p: 11},
		Residual: map[hose.Pair]int{},
	}
	if _, err := f.CompileTarget(over); err == nil {
		t.Fatal("expected resource exhaustion error")
	}
	// The fabric remains usable for a sane allocation afterwards.
	f2, _ := Build(dep)
	ok := core.Allocation{
		Fibers:   map[hose.Pair]int{p: 10},
		Residual: map[hose.Pair]int{},
	}
	if _, err := f2.CompileTarget(ok); err != nil {
		t.Fatalf("full-capacity allocation rejected: %v", err)
	}
	if f2.CircuitCount() != 10 {
		t.Errorf("circuits = %d, want 10", f2.CircuitCount())
	}
}
