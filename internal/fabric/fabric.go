// Package fabric materialises a planned deployment (internal/core) into a
// concrete optical fabric: named devices with sized port counts, a
// deterministic port map for every fiber of every duct, and a compiler
// that turns circuit-allocation changes into the device operations the
// controller (internal/control) executes.
//
// It is the glue the paper describes between planning and operation
// (§5.1–§5.2): the planner decides fibers and equipment; the fabric
// assigns fibers to OSS ports and transceivers to wavelengths; the
// controller drains, switches, retunes and undrains.
//
// Modelling notes: OSS ports here are fiber-pair-granularity (one logical
// port per bidirectional pair — the physical device has two unidirectional
// ports per pair, which the cost model counts); amplifier loopback ports
// and cut-through bypasses affect which nodes a circuit is switched at,
// not the number of ops compiled per switched node.
package fabric

import (
	"fmt"
	"sort"
	"time"

	"iris/internal/control"
	"iris/internal/core"
	"iris/internal/hose"
	"iris/internal/optics"
)

// Fabric is the materialised deployment plus its current circuit state.
type Fabric struct {
	dep    *core.Deployment
	lambda int

	// Port layout.
	ossSize   map[int]int         // node -> OSS port count
	ductBase  map[int]map[int]int // node -> duct -> first port index
	localBase map[int]int         // DC -> first local (transceiver-side) port
	localSize map[int]int         // DC -> local port count

	// Allocators.
	ductFibers map[int]*pool // duct -> fiber-pair indices
	localPorts map[int]*pool // DC -> local port indices
	xcvrs      map[int]*pool // DC -> transceiver indices

	// Circuit state.
	full     map[hose.Pair][]*circuit
	residual map[hose.Pair]*circuit
	// ampRefs counts live circuits using each amplifier site, so the
	// compiler enables an amp with its first user and parks it with the
	// last.
	ampRefs map[int]int
}

// circuit is one end-to-end fiber circuit for a DC pair.
type circuit struct {
	pair     hose.Pair
	path     *coreFilePath
	localA   int   // local port index at pair.A
	localB   int   // local port index at pair.B
	fiberIdx []int // per duct along the path: fiber-pair index in the duct
	// live wavelength slots and the transceivers carrying them, per DC.
	live  int
	xcvrA []int
	xcvrB []int
}

// coreFilePath caches the plan path plus lookup sets.
type coreFilePath struct {
	nodes    []int
	ducts    []int
	bypassed map[int]bool
	ampNodes []int
}

// pool is a free-list allocator over [0, n).
type pool struct {
	n    int
	free []int
}

func newPool(n int) *pool {
	p := &pool{n: n, free: make([]int, n)}
	for i := range p.free {
		p.free[i] = n - 1 - i // pop from the back yields ascending order
	}
	return p
}

func (p *pool) get() (int, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	v := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return v, true
}

func (p *pool) getN(k int) ([]int, bool) {
	if len(p.free) < k {
		return nil, false
	}
	out := make([]int, k)
	for i := range out {
		out[i], _ = p.get()
	}
	return out, true
}

func (p *pool) put(vs ...int) {
	p.free = append(p.free, vs...)
}

// Build materialises a deployment. The port layout is fully determined by
// the plan, so two Builds of the same deployment are identical.
func Build(dep *core.Deployment) (*Fabric, error) {
	if dep == nil || dep.Plan == nil {
		return nil, fmt.Errorf("fabric: nil deployment")
	}
	f := &Fabric{
		dep:        dep,
		lambda:     dep.Region.Lambda,
		ossSize:    make(map[int]int),
		ductBase:   make(map[int]map[int]int),
		localBase:  make(map[int]int),
		localSize:  make(map[int]int),
		ductFibers: make(map[int]*pool),
		localPorts: make(map[int]*pool),
		xcvrs:      make(map[int]*pool),
		full:       make(map[hose.Pair][]*circuit),
		residual:   make(map[hose.Pair]*circuit),
		ampRefs:    make(map[int]int),
	}
	m := dep.Region.Map
	pl := dep.Plan

	// Duct-side ports, in duct-ID order for determinism.
	ductIDs := make([]int, 0, len(pl.Ducts))
	for id := range pl.Ducts {
		ductIDs = append(ductIDs, id)
	}
	sort.Ints(ductIDs)
	for _, id := range ductIDs {
		du := pl.Ducts[id]
		pairs := du.TotalPairs()
		if pairs == 0 {
			continue
		}
		f.ductFibers[id] = newPool(pairs)
		d := m.Ducts[id]
		for _, end := range []int{d.A, d.B} {
			if f.ductBase[end] == nil {
				f.ductBase[end] = make(map[int]int)
			}
			f.ductBase[end][id] = f.ossSize[end]
			f.ossSize[end] += pairs
		}
	}

	// Local (transceiver-side) ports and transceiver banks at DCs.
	dcs := m.DCs()
	for _, dc := range dcs {
		capacity := dep.Region.Capacity[dc]
		local := capacity + len(dcs) - 1 // full fibers + one residual per peer
		f.localBase[dc] = f.ossSize[dc]
		f.localSize[dc] = local
		f.ossSize[dc] += local
		f.localPorts[dc] = newPool(local)
		f.xcvrs[dc] = newPool(capacity * f.lambda)
	}
	return f, nil
}

// Deployment returns the deployment the fabric was built from.
func (f *Fabric) Deployment() *core.Deployment { return f.dep }

// Device naming.

// OSSName returns the device name of a node's optical space switch.
func (f *Fabric) OSSName(node int) string {
	return f.dep.Region.Map.Nodes[node].Name + "-oss"
}

// XcvrName returns the device name of a DC's transceiver bank.
func (f *Fabric) XcvrName(dc int) string {
	return f.dep.Region.Map.Nodes[dc].Name + "-xcvr"
}

// AmpName returns the device name of a node's amplifier group.
func (f *Fabric) AmpName(node int) string {
	return f.dep.Region.Map.Nodes[node].Name + "-amp"
}

// Devices builds the emulated device set for the whole fabric, sized from
// the plan, suitable for control.StartTestbed.
func (f *Fabric) Devices(ossDelay time.Duration) map[string]control.Device {
	devs := make(map[string]control.Device)
	m := f.dep.Region.Map
	for node, size := range f.ossSize {
		if size == 0 {
			continue
		}
		devs[f.OSSName(node)] = control.NewOSS(size, ossDelay)
	}
	for _, dc := range m.DCs() {
		devs[f.XcvrName(dc)] = control.NewTransceiverBank(
			f.dep.Region.Capacity[dc]*f.lambda, f.lambda)
	}
	for node, count := range f.dep.Plan.Amps {
		if count > 0 {
			devs[f.AmpName(node)] = control.NewAmplifier(optics.AmpGainDB, -3)
		}
	}
	return devs
}

// Port returns the OSS port of fiber-pair fiberIdx of the given duct at
// the given node.
func (f *Fabric) Port(node, duct, fiberIdx int) (int, error) {
	bases, ok := f.ductBase[node]
	if !ok {
		return 0, fmt.Errorf("fabric: node %d has no duct ports", node)
	}
	base, ok := bases[duct]
	if !ok {
		return 0, fmt.Errorf("fabric: duct %d does not terminate at node %d", duct, node)
	}
	return base + fiberIdx, nil
}

// LocalPort returns the transceiver-side OSS port of a DC's local fiber.
func (f *Fabric) LocalPort(dc, localIdx int) (int, error) {
	base, ok := f.localBase[dc]
	if !ok {
		return 0, fmt.Errorf("fabric: node %d is not a DC", dc)
	}
	if localIdx < 0 || localIdx >= f.localSize[dc] {
		return 0, fmt.Errorf("fabric: local index %d out of range [0,%d)", localIdx, f.localSize[dc])
	}
	return base + localIdx, nil
}

// OSSPortCount returns the sized port count of a node's OSS (0 if the node
// needs none).
func (f *Fabric) OSSPortCount(node int) int { return f.ossSize[node] }

func (f *Fabric) pathFor(p hose.Pair) (*coreFilePath, error) {
	info, ok := f.dep.Plan.Paths[p.Canonical()]
	if !ok {
		return nil, fmt.Errorf("fabric: no planned path for %d-%d", p.A, p.B)
	}
	cp := &coreFilePath{
		nodes: info.Nodes, ducts: info.Ducts,
		bypassed: make(map[int]bool),
		ampNodes: info.AmpNodes,
	}
	for _, n := range info.Bypassed {
		cp.bypassed[n] = true
	}
	return cp, nil
}

// fiberKindOf tells the compiler which per-duct accounting bucket a
// circuit's fiber comes from; the pools do not distinguish, matching the
// paper's observation that residual fibers are ordinary leased fibers.

// establish allocates resources for one circuit and appends its device
// operations to the change.
func (f *Fabric) establish(ch *control.Change, p hose.Pair, live int) (*circuit, error) {
	path, err := f.pathFor(p)
	if err != nil {
		return nil, err
	}
	c := &circuit{pair: p.Canonical(), path: path, live: live}

	la, ok := f.localPorts[c.pair.A].get()
	if !ok {
		return nil, fmt.Errorf("fabric: DC %d out of local ports", c.pair.A)
	}
	lb, ok := f.localPorts[c.pair.B].get()
	if !ok {
		f.localPorts[c.pair.A].put(la)
		return nil, fmt.Errorf("fabric: DC %d out of local ports", c.pair.B)
	}
	c.localA, c.localB = la, lb

	for _, duct := range path.ducts {
		idx, ok := f.ductFibers[duct].get()
		if !ok {
			f.release(c)
			return nil, fmt.Errorf("fabric: duct %d out of fibers for %d-%d", duct, p.A, p.B)
		}
		c.fiberIdx = append(c.fiberIdx, idx)
	}

	xa, ok := f.xcvrs[c.pair.A].getN(live)
	if !ok {
		f.release(c)
		return nil, fmt.Errorf("fabric: DC %d out of transceivers", c.pair.A)
	}
	xb, ok := f.xcvrs[c.pair.B].getN(live)
	if !ok {
		f.xcvrs[c.pair.A].put(xa...)
		f.release(c)
		return nil, fmt.Errorf("fabric: DC %d out of transceivers", c.pair.B)
	}
	c.xcvrA, c.xcvrB = xa, xb

	ops, err := f.circuitOps(c, false)
	if err != nil {
		f.xcvrs[c.pair.A].put(xa...)
		f.xcvrs[c.pair.B].put(xb...)
		f.release(c)
		return nil, err
	}
	ch.Switches = append(ch.Switches, ops...)
	// First circuit through an amplifier site turns its amps on.
	for _, n := range path.ampNodes {
		if f.ampRefs[n] == 0 {
			ch.Amps = append(ch.Amps, control.AmpOp{Device: f.AmpName(n), Enable: true})
		}
		f.ampRefs[n]++
	}
	for slot := 0; slot < live; slot++ {
		ch.Retunes = append(ch.Retunes,
			control.TransceiverOp{Device: f.XcvrName(c.pair.A), Idx: xa[slot], Wavelength: slot},
			control.TransceiverOp{Device: f.XcvrName(c.pair.B), Idx: xb[slot], Wavelength: slot},
		)
		ch.Undrain = append(ch.Undrain,
			control.TransceiverOp{Device: f.XcvrName(c.pair.A), Idx: xa[slot]},
			control.TransceiverOp{Device: f.XcvrName(c.pair.B), Idx: xb[slot]},
		)
	}
	return c, nil
}

// teardown appends the operations that remove a circuit and frees its
// resources.
func (f *Fabric) teardown(ch *control.Change, c *circuit) error {
	for slot := 0; slot < c.live; slot++ {
		ch.Drain = append(ch.Drain,
			control.TransceiverOp{Device: f.XcvrName(c.pair.A), Idx: c.xcvrA[slot]},
			control.TransceiverOp{Device: f.XcvrName(c.pair.B), Idx: c.xcvrB[slot]},
		)
	}
	ops, err := f.circuitOps(c, true)
	if err != nil {
		return err
	}
	ch.Switches = append(ch.Switches, ops...)
	// Last circuit through an amplifier site parks its amps.
	for _, n := range c.path.ampNodes {
		f.ampRefs[n]--
		if f.ampRefs[n] == 0 {
			ch.Amps = append(ch.Amps, control.AmpOp{Device: f.AmpName(n), Enable: false})
		}
	}
	f.xcvrs[c.pair.A].put(c.xcvrA...)
	f.xcvrs[c.pair.B].put(c.xcvrB...)
	f.release(c)
	return nil
}

// release returns the circuit's ports and fibers to their pools.
func (f *Fabric) release(c *circuit) {
	f.localPorts[c.pair.A].put(c.localA)
	f.localPorts[c.pair.B].put(c.localB)
	for i, duct := range c.path.ducts[:len(c.fiberIdx)] {
		f.ductFibers[duct].put(c.fiberIdx[i])
	}
	c.fiberIdx = nil
}

// circuitOps emits the OSS operations along the circuit's path. For a
// disconnect only the input port of each cross-connect is named.
func (f *Fabric) circuitOps(c *circuit, disconnect bool) ([]control.OSSOp, error) {
	var ops []control.OSSOp
	add := func(node, in, out int) {
		ops = append(ops, control.OSSOp{
			Device: f.OSSName(node), In: in, Out: out, Disconnect: disconnect,
		})
	}
	// Source DC: local port -> first duct.
	aLocal, err := f.LocalPort(c.pair.A, c.localA)
	if err != nil {
		return nil, err
	}
	first, err := f.Port(pathEndpointA(c), c.path.ducts[0], c.fiberIdx[0])
	if err != nil {
		return nil, err
	}
	add(pathEndpointA(c), aLocal, first)

	// Interior switched nodes.
	for i := 0; i < len(c.path.ducts)-1; i++ {
		node := c.path.nodes[i+1]
		if c.path.bypassed[node] {
			continue // cut-through: the fiber passes the hut unswitched
		}
		in, err := f.Port(node, c.path.ducts[i], c.fiberIdx[i])
		if err != nil {
			return nil, err
		}
		out, err := f.Port(node, c.path.ducts[i+1], c.fiberIdx[i+1])
		if err != nil {
			return nil, err
		}
		add(node, in, out)
	}

	// Destination DC: last duct -> local port.
	last := len(c.path.ducts) - 1
	in, err := f.Port(pathEndpointB(c), c.path.ducts[last], c.fiberIdx[last])
	if err != nil {
		return nil, err
	}
	bLocal, err := f.LocalPort(c.pair.B, c.localB)
	if err != nil {
		return nil, err
	}
	add(pathEndpointB(c), in, bLocal)
	return ops, nil
}

func pathEndpointA(c *circuit) int { return c.path.nodes[0] }
func pathEndpointB(c *circuit) int { return c.path.nodes[len(c.path.nodes)-1] }

// CompileTarget computes the change that moves the fabric from its current
// circuit state to the given allocation, updating the fabric state. The
// returned change follows the §5.2 discipline: drains of torn-down or
// resized circuits come first, then all OSS operations (disconnects before
// connects), then retunes, then undrains.
func (f *Fabric) CompileTarget(alloc core.Allocation) (control.Change, error) {
	var ch control.Change

	pairs := make(map[hose.Pair]bool)
	for p := range alloc.Fibers {
		pairs[p.Canonical()] = true
	}
	for p := range f.full {
		pairs[p] = true
	}
	for p := range f.residual {
		pairs[p] = true
	}
	ordered := make([]hose.Pair, 0, len(pairs))
	for p := range pairs {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].A != ordered[j].A {
			return ordered[i].A < ordered[j].A
		}
		return ordered[i].B < ordered[j].B
	})

	// Teardowns first so their fibers and transceivers free up for the
	// establishes compiled after them (the controller runs disconnects
	// before connects within the switch phase).
	for _, p := range ordered {
		wantFull := alloc.Fibers[p]
		cur := f.full[p]
		for len(cur) > wantFull {
			c := cur[len(cur)-1]
			cur = cur[:len(cur)-1]
			if err := f.teardown(&ch, c); err != nil {
				return control.Change{}, err
			}
		}
		f.full[p] = cur

		wantRes := alloc.Residual[p]
		if rc := f.residual[p]; rc != nil && rc.live != wantRes {
			if err := f.teardown(&ch, rc); err != nil {
				return control.Change{}, err
			}
			delete(f.residual, p)
		}
	}
	for _, p := range ordered {
		wantFull := alloc.Fibers[p]
		for len(f.full[p]) < wantFull {
			c, err := f.establish(&ch, p, f.lambda)
			if err != nil {
				return control.Change{}, err
			}
			f.full[p] = append(f.full[p], c)
		}
		if wantRes := alloc.Residual[p]; wantRes > 0 && f.residual[p] == nil {
			c, err := f.establish(&ch, p, wantRes)
			if err != nil {
				return control.Change{}, err
			}
			f.residual[p] = c
		}
	}
	return ch, nil
}

// Expected returns the controller-intent view of the fabric for auditing:
// every OSS cross-connect and every transceiver's live/drained state.
// (Expected wavelengths are not asserted as full vectors because freed
// transceivers keep their stale device-local tuning; the per-index intent
// is available to Reconcile instead.)
func (f *Fabric) Expected() control.Expected {
	cross := make(map[string]map[int]int)
	record := func(node, in, out int) {
		name := f.OSSName(node)
		if cross[name] == nil {
			cross[name] = make(map[int]int)
		}
		cross[name][in] = out
	}
	nodeByName := make(map[string]int, len(f.ossSize))
	for n := range f.ossSize {
		nodeByName[f.OSSName(n)] = n
	}
	enabled := make(map[string][]bool)
	for _, dc := range f.dep.Region.Map.DCs() {
		enabled[f.XcvrName(dc)] = make([]bool, f.dep.Region.Capacity[dc]*f.lambda)
	}
	every := func(c *circuit) {
		ops, err := f.circuitOps(c, false)
		if err != nil {
			return
		}
		for _, op := range ops {
			record(nodeByName[op.Device], op.In, op.Out)
		}
		for slot := 0; slot < c.live; slot++ {
			enabled[f.XcvrName(c.pair.A)][c.xcvrA[slot]] = true
			enabled[f.XcvrName(c.pair.B)][c.xcvrB[slot]] = true
		}
	}
	for _, cs := range f.full {
		for _, c := range cs {
			every(c)
		}
	}
	for _, c := range f.residual {
		every(c)
	}
	return control.Expected{Cross: cross, Enabled: enabled}
}

// CircuitCount returns the number of active circuits (full + residual).
func (f *Fabric) CircuitCount() int {
	n := len(f.residual)
	for _, cs := range f.full {
		n += len(cs)
	}
	return n
}
