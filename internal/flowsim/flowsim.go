// Package flowsim is the flow-level fluid simulator behind §6.3 of the
// paper: it measures how Iris's circuit reconfigurations — brief capacity
// reductions while fibers are switched — affect flow completion times,
// compared to an electrical packet-switched fabric that never reconfigures.
//
// Each DC pair is a pipe (a provisioned circuit). Flows arrive on a pipe
// as a Poisson process with sizes drawn from an empirical workload
// distribution, and share the pipe capacity by processor sharing (the
// fluid equivalent of fair queueing). A reconfiguration removes a fraction
// of a pipe's capacity for its duration; the paper measures 70 ms per
// fiber switch. Because Iris circuits are dedicated fibers, pipes are
// independent and are simulated exactly with a per-pipe event loop.
package flowsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"iris/internal/traffic"
)

// Pipe is one DC-pair circuit.
type Pipe struct {
	// CapacityGbps is the provisioned circuit rate.
	CapacityGbps float64
	// UtilFrac is the offered load as a fraction of capacity.
	UtilFrac float64
}

// Dip is one reconfiguration-induced capacity reduction on a pipe.
type Dip struct {
	TimeS     float64 // start time
	DurationS float64 // the fiber-switch time (70 ms in the testbed)
	FracLost  float64 // fraction of the pipe capacity drained, in (0,1]
}

// Config drives one simulation run.
type Config struct {
	Seed      int64
	DurationS float64
	// WarmupS excludes flows arriving before this time from the results,
	// letting queues reach steady state first.
	WarmupS float64
	Dist    traffic.SizeDist
	Pipes   []Pipe
	// Dips maps pipe index to its reconfiguration events. Leave empty for
	// the EPS baseline.
	Dips map[int][]Dip
}

// Flow is one completed flow.
type Flow struct {
	Pipe      int
	SizeBytes float64
	ArriveS   float64
	FCTSec    float64
}

// Result collects a run's completed flows.
type Result struct {
	Flows      []Flow
	Incomplete int // flows still active at the end of the simulation
}

// FCTs returns the completion times of all flows, or of only the short
// flows (< traffic.ShortFlowBytes) when shortOnly is set.
func (r Result) FCTs(shortOnly bool) []float64 {
	var out []float64
	for _, f := range r.Flows {
		if shortOnly && f.SizeBytes >= traffic.ShortFlowBytes {
			continue
		}
		out = append(out, f.FCTSec)
	}
	return out
}

// Run simulates all pipes and returns the pooled completed flows sorted by
// arrival time.
func Run(cfg Config) (Result, error) {
	if cfg.DurationS <= 0 {
		return Result{}, fmt.Errorf("flowsim: duration must be positive")
	}
	if len(cfg.Pipes) == 0 {
		return Result{}, fmt.Errorf("flowsim: no pipes")
	}
	mean := cfg.Dist.Mean()
	if mean <= 0 || math.IsNaN(mean) {
		return Result{}, fmt.Errorf("flowsim: workload has invalid mean %v", mean)
	}
	var res Result
	for i, p := range cfg.Pipes {
		if p.CapacityGbps <= 0 {
			return Result{}, fmt.Errorf("flowsim: pipe %d has capacity %v", i, p.CapacityGbps)
		}
		if p.UtilFrac < 0 || p.UtilFrac >= 1 {
			return Result{}, fmt.Errorf("flowsim: pipe %d utilization %v outside [0,1)", i, p.UtilFrac)
		}
		// Independent but deterministic stream per pipe.
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
		flows, inc := simulatePipe(rng, i, p, cfg.Dips[i], cfg.Dist, mean, cfg.DurationS, cfg.WarmupS)
		res.Flows = append(res.Flows, flows...)
		res.Incomplete += inc
	}
	sort.Slice(res.Flows, func(i, j int) bool {
		if res.Flows[i].ArriveS != res.Flows[j].ArriveS {
			return res.Flows[i].ArriveS < res.Flows[j].ArriveS
		}
		return res.Flows[i].Pipe < res.Flows[j].Pipe
	})
	return res, nil
}

// activeFlow is a flow in service, keyed by the per-flow credit value at
// which it completes.
type activeFlow struct {
	doneAtCredit float64
	sizeBytes    float64
	arriveS      float64
}

type flowHeap []activeFlow

func (h flowHeap) Len() int           { return len(h) }
func (h flowHeap) Less(i, j int) bool { return h[i].doneAtCredit < h[j].doneAtCredit }
func (h flowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *flowHeap) Push(x any)        { *h = append(*h, x.(activeFlow)) }
func (h *flowHeap) Pop() any          { o := *h; n := len(o); x := o[n-1]; *h = o[:n-1]; return x }

// capChange is a point where the pipe's capacity multiplier changes. A
// dip contributes two events: its start applies the dip's multiplier
// (1-frac) and its end removes that same multiplier from the active set.
// Carrying the multiplier on both events keeps restores correct for
// overlapping non-nested dips, where a LIFO stack would pop the wrong
// dip's multiplier.
type capChange struct {
	timeS   float64
	mult    float64 // this dip's multiplier, 1-frac (0 for a full outage)
	restore bool
}

// capTimeline replays a pipe's piecewise-constant capacity multiplier:
// the product of the multipliers of all dips covering the current time.
// Both the exact per-pipe simulator and the bucketed load engine drive
// their event loops with it.
type capTimeline struct {
	changes []capChange
	idx     int
	active  []float64 // multipliers of the dips covering the current time
	mult    float64
}

// newCapTimeline builds the sorted event schedule for a dip set. Dips
// with non-positive duration or loss are ignored; FracLost is clamped
// to 1.
func newCapTimeline(dips []Dip) *capTimeline {
	ct := &capTimeline{mult: 1}
	for _, d := range dips {
		if d.FracLost <= 0 || d.DurationS <= 0 {
			continue
		}
		frac := math.Min(d.FracLost, 1)
		ct.changes = append(ct.changes, capChange{timeS: d.TimeS, mult: 1 - frac})
		ct.changes = append(ct.changes, capChange{timeS: d.TimeS + d.DurationS, mult: 1 - frac, restore: true})
	}
	sort.SliceStable(ct.changes, func(i, j int) bool { return ct.changes[i].timeS < ct.changes[j].timeS })
	return ct
}

// next returns the time of the next multiplier change, or +Inf when the
// schedule is exhausted.
func (ct *capTimeline) next() float64 {
	if ct.idx >= len(ct.changes) {
		return math.Inf(1)
	}
	return ct.changes[ct.idx].timeS
}

// apply consumes the pending change and recomputes the multiplier from
// the active set. Recomputing (rather than dividing the old multiplier
// out) keeps full outages (mult 0) exact and accumulates no float drift,
// so no >1 clamp is needed.
func (ct *capTimeline) apply() {
	c := ct.changes[ct.idx]
	ct.idx++
	if c.restore {
		for i, m := range ct.active {
			if m == c.mult {
				ct.active[i] = ct.active[len(ct.active)-1]
				ct.active = ct.active[:len(ct.active)-1]
				break
			}
		}
	} else {
		ct.active = append(ct.active, c.mult)
	}
	ct.mult = recomputeMult(ct.active)
}

// simulatePipe runs exact processor sharing with a piecewise-constant
// capacity using the credit method: credit(t) integrates the per-flow
// service rate C(t)/N(t); a flow arriving at credit c0 with size s
// finishes when credit reaches c0+s.
func simulatePipe(rng *rand.Rand, pipeIdx int, p Pipe, dips []Dip, dist traffic.SizeDist,
	meanBytes, durationS, warmupS float64) ([]Flow, int) {

	capBytesPerS := p.CapacityGbps * 1e9 / 8
	lambda := p.UtilFrac * capBytesPerS / meanBytes // flows per second

	timeline := newCapTimeline(dips)

	var flows []Flow
	active := &flowHeap{}
	credit := 0.0

	t := 0.0
	nextArrival := t
	if lambda > 0 {
		nextArrival = rng.ExpFloat64() / lambda
	} else {
		nextArrival = math.Inf(1)
	}

	currentCap := func() float64 { return capBytesPerS * timeline.mult }

	for t < durationS {
		// Next departure under the current rate.
		nextDeparture := math.Inf(1)
		if active.Len() > 0 && currentCap() > 0 {
			perFlow := currentCap() / float64(active.Len())
			nextDeparture = t + ((*active)[0].doneAtCredit-credit)/perFlow
		}
		nextChange := timeline.next()
		next := math.Min(math.Min(nextArrival, nextChange), math.Min(nextDeparture, durationS))

		// Advance credit over [t, next].
		if active.Len() > 0 && currentCap() > 0 {
			credit += currentCap() / float64(active.Len()) * (next - t)
		}
		t = next
		switch {
		case t == nextDeparture && active.Len() > 0:
			f := heap.Pop(active).(activeFlow)
			if f.arriveS >= warmupS {
				flows = append(flows, Flow{
					Pipe:      pipeIdx,
					SizeBytes: f.sizeBytes,
					ArriveS:   f.arriveS,
					FCTSec:    t - f.arriveS,
				})
			}
		case t == nextArrival:
			size := dist.Sample(rng)
			heap.Push(active, activeFlow{
				doneAtCredit: credit + size,
				sizeBytes:    size,
				arriveS:      t,
			})
			nextArrival = t + rng.ExpFloat64()/lambda
		case t == nextChange:
			timeline.apply()
		}
	}
	return flows, active.Len()
}

func recomputeMult(stack []float64) float64 {
	m := 1.0
	for _, v := range stack {
		m *= v
	}
	return m
}
