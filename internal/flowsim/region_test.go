package flowsim

import (
	"math"
	"testing"

	"iris/internal/core"
	"iris/internal/fibermap"
	"iris/internal/traffic"
)

func planToy(t *testing.T) *core.Deployment {
	t.Helper()
	r := fibermap.Toy()
	caps := make(map[int]int)
	for _, dc := range r.Map.DCs() {
		caps[dc] = 10
	}
	dep, err := core.Plan(core.Region{Map: r.Map, Capacity: caps, Lambda: 40}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestRegionExperimentValidation(t *testing.T) {
	if _, err := (RegionExperiment{}).Run(); err == nil {
		t.Error("expected error for nil deployment")
	}
	dep := planToy(t)
	e := DefaultRegionExperiment(dep, 1, 0.4, 0, 0.5, traffic.FBWeb())
	if _, err := e.Run(); err == nil {
		t.Error("expected error for zero interval")
	}
}

func TestRegionExperimentOnToy(t *testing.T) {
	dep := planToy(t)
	e := DefaultRegionExperiment(dep, 7, 0.4, 5, 0.5, traffic.FBWeb())
	e.DurationS = 30
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IrisFlows < 500 {
		t.Fatalf("only %d flows", rep.IrisFlows)
	}
	// The toy has only 6 pipes — smaller than any paper region — so the
	// pooled p99 is sensitive to individual circuit teardowns; the bound
	// here is a smoke check, while the paper-scale ≤2% claim is exercised
	// by the Fig. 17/18 experiments at region scale.
	if math.IsNaN(rep.All) || rep.All < 0.95 || rep.All > 1.35 {
		t.Errorf("slowdown = %v, outside sane band", rep.All)
	}
}

// TestIntegerizeRoundsNoise: integerize must round, not truncate. With
// truncation, float noise like 3.9999997 became 3 — a whole wavelength of
// phantom demand change per pair per step that could fabricate
// reconfigurations. Two noisy copies of the same integer matrix must
// integerize to zero diffs.
func TestIntegerizeRoundsNoise(t *testing.T) {
	dcs := []int{1, 2, 3}
	base := traffic.NewMatrix(dcs)
	noisy := traffic.NewMatrix(dcs)
	offsets := []float64{-3e-7, 2e-7, -1e-7}
	for i, p := range base.Pairs() {
		exact := float64(3 + i)
		base.Set(p, exact)
		noisy.Set(p, exact+offsets[i%len(offsets)])
	}
	integerize(base)
	integerize(noisy)
	for _, p := range base.Pairs() {
		if got, want := noisy.Get(p), base.Get(p); got != want {
			t.Errorf("pair %v: noisy integerized to %v, exact to %v", p, got, want)
		}
	}
	if d := traffic.DiffMatrices(base, noisy); !d.Empty() {
		t.Errorf("noisy-but-constant matrix produced %d diffs: %v", d.Len(), d.Changes)
	}
}

func TestRegionExperimentOnPlannedRegion(t *testing.T) {
	gcfg := fibermap.DefaultGen()
	gcfg.Seed = 8
	m := fibermap.Generate(gcfg)
	pcfg := fibermap.DefaultPlace()
	pcfg.Seed, pcfg.N = 8, 6
	dcs, err := fibermap.PlaceDCs(m, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int)
	for _, dc := range dcs {
		caps[dc] = 16 // large circuits so demand swaps move whole fibers
	}
	dep, err := core.Plan(core.Region{Map: m, Capacity: caps, Lambda: 40}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := DefaultRegionExperiment(dep, 3, 0.7, 5, 0, traffic.WebSearch())
	e.DurationS = 30
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reconfigs == 0 {
		t.Error("unbounded change process produced no reconfigurations")
	}
	if math.IsNaN(rep.All) {
		t.Error("NaN slowdown")
	}
	if rep.All < 0.95 {
		t.Errorf("dips made flows faster: %v", rep.All)
	}
}
