package flowsim

import (
	"strings"
	"testing"

	"iris/internal/core"
	"iris/internal/hose"
	"iris/internal/telemetry"
)

func monitorAlloc() core.Allocation {
	return core.Allocation{
		Fibers:   map[hose.Pair]int{{A: 1, B: 2}: 2, {A: 1, B: 3}: 1},
		Residual: map[hose.Pair]int{{A: 2, B: 3}: 3},
	}
}

func TestMonitorObserveReconfig(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, err := NewMonitor(MonitorConfig{
		Seed: 5, GbpsPerWavelength: 0.02, WindowS: 3, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	moves := []core.Move{
		{Pair: hose.Pair{A: 1, B: 2}, FibersDelta: -1, FracAffected: 0.5},
		{Pair: hose.Pair{A: 2, B: 3}, FibersDelta: 1, FracAffected: 0.3},
	}
	imp, err := m.ObserveReconfig(42, monitorAlloc(), 4, moves, 0.070)
	if err != nil {
		t.Fatal(err)
	}
	if imp.ReconfigID != 42 || imp.Kind != "reconfig" {
		t.Errorf("impact identity = %+v", imp)
	}
	if imp.Pipes != 2 {
		t.Errorf("dimmed pipes = %d, want 2", imp.Pipes)
	}
	if imp.Flows == 0 {
		t.Error("no flows simulated")
	}
	if imp.P99 < 1 {
		t.Errorf("p99 slowdown %v < 1: dips made flows faster", imp.P99)
	}
	if imp.BytesStranded <= 0 {
		t.Error("drain stranded no bytes")
	}
	if last := m.Last(); last == nil || last.ReconfigID != 42 {
		t.Errorf("Last() = %+v", last)
	}
	// The same observation must be deterministic.
	again, err := m.ObserveReconfig(42, monitorAlloc(), 4, moves, 0.070)
	if err != nil {
		t.Fatal(err)
	}
	if again.P99 != imp.P99 || again.Flows != imp.Flows {
		t.Errorf("repeat observation differs: %+v vs %+v", again, imp)
	}

	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"iris_flowsim_runs_total 2",
		`iris_flowsim_slowdown{quantile="p99"}`,
		"iris_flowsim_p99_slowdown_bucket",
		"iris_flowsim_bytes_stranded_total",
		"iris_flowsim_peak_flows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestMonitorObserveRepair(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{Seed: 5, GbpsPerWavelength: 0.02, WindowS: 3})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := m.ObserveRepair(7, monitorAlloc(), 4, 0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Kind != "repair" {
		t.Errorf("kind = %q, want repair", imp.Kind)
	}
	if imp.Pipes != 3 {
		t.Errorf("a uniform repair dip must dim all 3 pipes, got %d", imp.Pipes)
	}
	if imp.P99 < 1 {
		t.Errorf("p99 slowdown %v < 1", imp.P99)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(MonitorConfig{Util: 1.2}); err == nil {
		t.Error("expected error for utilization >= 1")
	}
	m, err := NewMonitor(MonitorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ObserveReconfig(1, monitorAlloc(), 0, nil, 0.070); err == nil {
		t.Error("expected error for lambda 0")
	}
	if _, err := m.ObserveReconfig(1, core.Allocation{}, 4, nil, 0.070); err == nil {
		t.Error("expected error for empty allocation")
	}
	// No moves touching pipes: a no-op impact, not an error.
	imp, err := m.ObserveReconfig(1, monitorAlloc(), 4, nil, 0.070)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Pipes != 0 || imp.P99 != 1 {
		t.Errorf("no-op impact = %+v, want 0 pipes and unit slowdown", imp)
	}
}
