package flowsim

import (
	"math"
	"testing"

	"iris/internal/stats"
	"iris/internal/traffic"
)

func TestRunValidation(t *testing.T) {
	dist := traffic.WebSearch()
	good := Config{Seed: 1, DurationS: 1, Dist: dist, Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.5}}}
	if _, err := Run(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, cfg := range map[string]Config{
		"no duration": {Seed: 1, Dist: dist, Pipes: good.Pipes},
		"no pipes":    {Seed: 1, DurationS: 1, Dist: dist},
		"bad cap":     {Seed: 1, DurationS: 1, Dist: dist, Pipes: []Pipe{{CapacityGbps: 0, UtilFrac: 0.5}}},
		"util >= 1":   {Seed: 1, DurationS: 1, Dist: dist, Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 1}}},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 7, DurationS: 5, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.4}, {CapacityGbps: 1, UtilFrac: 0.2}},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestFCTNeverBelowTransmissionTime(t *testing.T) {
	cfg := Config{
		Seed: 3, DurationS: 10, Dist: traffic.WebSearch(),
		Pipes: []Pipe{{CapacityGbps: 2, UtilFrac: 0.6}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) == 0 {
		t.Fatal("no flows completed")
	}
	capBytes := 2e9 / 8
	for _, f := range res.Flows {
		minFCT := f.SizeBytes / capBytes
		if f.FCTSec < minFCT-1e-12 {
			t.Fatalf("flow of %v bytes finished in %v s, below line rate %v s",
				f.SizeBytes, f.FCTSec, minFCT)
		}
	}
}

func TestSoloFlowRunsAtLineRate(t *testing.T) {
	// At very low utilization flows rarely overlap, so FCT ≈ size/capacity.
	cfg := Config{
		Seed: 4, DurationS: 30, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 10, UtilFrac: 0.001}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capBytes := 10e9 / 8
	atLine := 0
	for _, f := range res.Flows {
		if math.Abs(f.FCTSec-f.SizeBytes/capBytes) < 1e-9 {
			atLine++
		}
	}
	if len(res.Flows) == 0 || atLine < len(res.Flows)*9/10 {
		t.Errorf("%d/%d flows at line rate; expected nearly all", atLine, len(res.Flows))
	}
}

func TestUtilizationAffectsFCT(t *testing.T) {
	run := func(util float64) float64 {
		cfg := Config{
			Seed: 5, DurationS: 20, Dist: traffic.WebSearch(),
			Pipes: []Pipe{{CapacityGbps: 5, UtilFrac: util}},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Percentile(res.FCTs(false), 99)
	}
	low, high := run(0.1), run(0.7)
	if high <= low {
		t.Errorf("p99 FCT at 70%% util (%v) should exceed 10%% util (%v)", high, low)
	}
}

func TestFullOutageDelaysFlows(t *testing.T) {
	// A total 1-second outage must delay flows in flight across it.
	base := Config{
		Seed: 6, DurationS: 10, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.3}},
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	dipped := base
	dipped.Dips = map[int][]Dip{0: {{TimeS: 5, DurationS: 1, FracLost: 1}}}
	hit, err := Run(dipped)
	if err != nil {
		t.Fatal(err)
	}
	// Same arrivals, so flow counts can differ only via end-of-run
	// truncation; FCTs of flows spanning the outage grow by up to 1 s.
	p99Clean := stats.Percentile(clean.FCTs(false), 99)
	p99Hit := stats.Percentile(hit.FCTs(false), 99)
	if p99Hit <= p99Clean {
		t.Errorf("outage p99 %v should exceed clean p99 %v", p99Hit, p99Clean)
	}
	// The worst flow is delayed by the outage plus the time to drain the
	// backlog that accumulated during it (arrivals continue while the pipe
	// is dark). At 30% utilization the drain adds well under a second, so
	// a small multiple of the outage bounds the damage.
	maxClean := stats.Max(clean.FCTs(false))
	maxHit := stats.Max(hit.FCTs(false))
	if maxHit > maxClean+3 {
		t.Errorf("outage added %v s to worst FCT; expected ≤ outage + drain", maxHit-maxClean)
	}
}

func TestPartialDipOnlySlows(t *testing.T) {
	base := Config{
		Seed: 8, DurationS: 10, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.5}},
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	dipped := base
	dipped.Dips = map[int][]Dip{0: {
		{TimeS: 2, DurationS: 0.07, FracLost: 0.5},
		{TimeS: 4, DurationS: 0.07, FracLost: 0.5},
	}}
	hit, err := Run(dipped)
	if err != nil {
		t.Fatal(err)
	}
	// 140 ms of half capacity in 10 s barely moves the needle.
	ratio := stats.Percentile(hit.FCTs(false), 99) / stats.Percentile(clean.FCTs(false), 99)
	if ratio < 1-1e-9 {
		t.Errorf("dips made flows faster: ratio %v", ratio)
	}
	if ratio > 1.5 {
		t.Errorf("brief dips inflated p99 by %vx; expected a small effect", ratio)
	}
}

func TestWarmupExcludesEarlyFlows(t *testing.T) {
	cfg := Config{
		Seed: 9, DurationS: 10, WarmupS: 5, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.3}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		if f.ArriveS < 5 {
			t.Fatalf("flow arriving at %v not excluded by warmup", f.ArriveS)
		}
	}
}

func TestShortFlowFilter(t *testing.T) {
	res := Result{Flows: []Flow{
		{SizeBytes: 1e3, FCTSec: 1},
		{SizeBytes: 1e6, FCTSec: 2},
	}}
	if got := res.FCTs(true); len(got) != 1 || got[0] != 1 {
		t.Errorf("short FCTs = %v", got)
	}
	if got := res.FCTs(false); len(got) != 2 {
		t.Errorf("all FCTs = %v", got)
	}
}

func TestExperimentValidation(t *testing.T) {
	e := DefaultExperiment(1, 0.4, 5, 0.5, traffic.FBWeb())
	e.NDCs = 1
	if _, err := e.Run(); err == nil {
		t.Error("expected error for 1 DC")
	}
	e = DefaultExperiment(1, 0.4, 0, 0.5, traffic.FBWeb())
	if _, err := e.Run(); err == nil {
		t.Error("expected error for zero interval")
	}
	e = DefaultExperiment(1, 0.4, 5, 0.5, traffic.FBWeb())
	e.FibersPerPipe = 0
	if _, err := e.Run(); err == nil {
		t.Error("expected error for zero fibers")
	}
}

func TestExperimentFig17Point(t *testing.T) {
	// One Fig. 17 operating point: 40% utilization, 50% bounded changes,
	// 10 s interval. The paper reports ≤2% p99 slowdown at intervals of
	// 10 s or more.
	e := DefaultExperiment(11, 0.4, 10, 0.5, traffic.WebSearch())
	e.DurationS = 40
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IrisFlows < 1000 {
		t.Fatalf("only %d flows; too few for percentile statistics", rep.IrisFlows)
	}
	if math.IsNaN(rep.All) || math.IsNaN(rep.Short) {
		t.Fatalf("NaN slowdowns: %+v", rep)
	}
	if rep.All < 0.98 {
		t.Errorf("slowdown %v below 1; dips cannot speed flows up", rep.All)
	}
	if rep.All > 1.10 {
		t.Errorf("slowdown %v; paper reports ≈1.02 at this point", rep.All)
	}
}

func TestExperimentUnboundedWorseThanBounded(t *testing.T) {
	bounded := DefaultExperiment(12, 0.7, 1, 0.5, traffic.WebSearch())
	bounded.DurationS = 30
	unbounded := DefaultExperiment(12, 0.7, 1, 0, traffic.WebSearch())
	unbounded.DurationS = 30
	rb, err := bounded.Run()
	if err != nil {
		t.Fatal(err)
	}
	ru, err := unbounded.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded changes at 1 s intervals are the paper's worst case; they
	// must hurt at least as much as bounded changes.
	if ru.All+0.02 < rb.All {
		t.Errorf("unbounded slowdown %v below bounded %v", ru.All, rb.All)
	}
	if ru.Reconfigs == 0 {
		t.Error("unbounded process produced no reconfigurations")
	}
}
