package flowsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"iris/internal/traffic"
)

// flattenDips converts an arbitrary (possibly overlapping) dip set into
// the equivalent sequence of non-overlapping dips by sweeping the dip
// boundaries: on each interval between boundaries the true capacity
// multiplier is the product of the multipliers of every dip covering it.
// Non-overlapping dips are handled trivially by any restore logic, so the
// flattened set is a brute-force piecewise-constant reference.
func flattenDips(dips []Dip) []Dip {
	var bounds []float64
	for _, d := range dips {
		if d.FracLost <= 0 || d.DurationS <= 0 {
			continue
		}
		bounds = append(bounds, d.TimeS, d.TimeS+d.DurationS)
	}
	if len(bounds) == 0 {
		return nil
	}
	sort.Float64s(bounds)
	var out []Dip
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo {
			continue
		}
		mult := 1.0
		for _, d := range dips {
			if d.FracLost <= 0 || d.DurationS <= 0 {
				continue
			}
			if d.TimeS <= lo && lo < d.TimeS+d.DurationS {
				mult *= 1 - math.Min(d.FracLost, 1)
			}
		}
		if mult < 1 {
			out = append(out, Dip{TimeS: lo, DurationS: hi - lo, FracLost: 1 - mult})
		}
	}
	return out
}

// requireSameFlows asserts two runs over identical arrivals produced the
// same flows with FCTs equal within a relative tolerance (the two dip
// encodings differ in float rounding, not in semantics).
func requireSameFlows(t *testing.T, got, want Result) {
	t.Helper()
	if len(got.Flows) != len(want.Flows) {
		t.Fatalf("flow counts differ: %d vs reference %d", len(got.Flows), len(want.Flows))
	}
	if got.Incomplete != want.Incomplete {
		t.Fatalf("incomplete counts differ: %d vs reference %d", got.Incomplete, want.Incomplete)
	}
	for i := range got.Flows {
		g, w := got.Flows[i], want.Flows[i]
		if g.ArriveS != w.ArriveS || g.SizeBytes != w.SizeBytes {
			t.Fatalf("flow %d identity differs: %+v vs %+v", i, g, w)
		}
		tol := 1e-6 * math.Max(1, w.FCTSec)
		if math.Abs(g.FCTSec-w.FCTSec) > tol {
			t.Fatalf("flow %d (arrive %.4f, %v bytes): FCT %v vs reference %v",
				i, g.ArriveS, g.SizeBytes, g.FCTSec, w.FCTSec)
		}
	}
}

// TestOverlappingDipsRestoreCorrectCapacity is the regression test for the
// LIFO restore bug: dip A [0,5s] frac 0.5 and dip B [1,6s] frac 0.9
// overlap without nesting, so A's restore at t=5 fires first even though
// B's multiplier was pushed last. The old stack popped B's multiplier,
// leaving the pipe at half capacity during [5,6s] instead of the true 0.1.
// The piecewise-constant reference exposes the difference through the
// FCTs of the backlog draining across t=5.
func TestOverlappingDipsRestoreCorrectCapacity(t *testing.T) {
	dips := []Dip{
		{TimeS: 0, DurationS: 5, FracLost: 0.5},
		{TimeS: 1, DurationS: 5, FracLost: 0.9},
	}
	cfg := Config{
		Seed: 17, DurationS: 12, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 0.5, UtilFrac: 0.8}},
	}
	over := cfg
	over.Dips = map[int][]Dip{0: dips}
	got, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.Dips = map[int][]Dip{0: flattenDips(dips)}
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Flows) == 0 {
		t.Fatal("no flows completed; test exercises nothing")
	}
	requireSameFlows(t, got, want)
}

// TestRandomDipSetsMatchPiecewiseReference fuzzes the restore logic:
// random overlapping, nested, duplicated and touching dips must all be
// equivalent to their brute-force piecewise-constant flattening.
func TestRandomDipSetsMatchPiecewiseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		var dips []Dip
		for i := 0; i < n; i++ {
			dips = append(dips, Dip{
				TimeS:     rng.Float64() * 8,
				DurationS: 0.2 + rng.Float64()*4,
				FracLost:  0.1 + rng.Float64()*0.9,
			})
		}
		cfg := Config{
			Seed: int64(trial), DurationS: 15, Dist: traffic.FBWeb(),
			Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.6}},
		}
		over := cfg
		over.Dips = map[int][]Dip{0: dips}
		got, err := Run(over)
		if err != nil {
			t.Fatal(err)
		}
		ref := cfg
		ref.Dips = map[int][]Dip{0: flattenDips(dips)}
		want, err := Run(ref)
		if err != nil {
			t.Fatal(err)
		}
		requireSameFlows(t, got, want)
	}
}

// TestFullOutageStallsWithoutDividingByZero: FracLost = 1 zeroes the
// pipe. Credit must stall (no completions strictly inside the outage),
// nothing may divide by zero, and flows must resume on restore — every
// arrival is accounted for as completed or incomplete, matching the
// clean run's arrival count.
func TestFullOutageStallsWithoutDividingByZero(t *testing.T) {
	const start, dur = 4.0, 2.0
	cfg := Config{
		Seed: 23, DurationS: 15, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.4}},
	}
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dark := cfg
	dark.Dips = map[int][]Dip{0: {{TimeS: start, DurationS: dur, FracLost: 1}}}
	hit, err := Run(dark)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range hit.Flows {
		finish := f.ArriveS + f.FCTSec
		if finish > start+1e-9 && finish < start+dur-1e-9 {
			t.Fatalf("flow completed at %v inside the [%v,%v] full outage", finish, start, start+dur)
		}
		if math.IsNaN(f.FCTSec) || math.IsInf(f.FCTSec, 0) {
			t.Fatalf("non-finite FCT %v", f.FCTSec)
		}
	}
	// Same seed, same arrival process: no flow may be lost or invented.
	if got, want := len(hit.Flows)+hit.Incomplete, len(clean.Flows)+clean.Incomplete; got != want {
		t.Fatalf("outage run accounts for %d flows, clean run %d", got, want)
	}
	// Flows must resume: something completes after the restore.
	resumed := 0
	for _, f := range hit.Flows {
		if f.ArriveS+f.FCTSec >= start+dur {
			resumed++
		}
	}
	if resumed == 0 {
		t.Fatal("no flows completed after the outage ended")
	}
}

// TestDipSpanningSimulationEnd: a dip whose restore lies beyond DurationS
// must not panic or strand the loop; flows in flight stay incomplete.
func TestDipSpanningSimulationEnd(t *testing.T) {
	cfg := Config{
		Seed: 31, DurationS: 8, Dist: traffic.FBWeb(),
		Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.5}},
	}
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spill := cfg
	spill.Dips = map[int][]Dip{0: {{TimeS: 6, DurationS: 100, FracLost: 1}}}
	hit, err := Run(spill)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range hit.Flows {
		if f.ArriveS+f.FCTSec > 6+1e-9 {
			t.Fatalf("flow completed at %v during a full outage spanning the run's end", f.ArriveS+f.FCTSec)
		}
	}
	if got, want := len(hit.Flows)+hit.Incomplete, len(clean.Flows)+clean.Incomplete; got != want {
		t.Fatalf("spanning-dip run accounts for %d flows, clean run %d", got, want)
	}
	if hit.Incomplete == 0 {
		t.Fatal("expected flows stranded by the outage at the end of the run")
	}
}

// TestSimultaneousDipEventTies: coincident change events — two dips
// starting and ending at the same instants, and a dip starting exactly
// when another ends — must compose like their flattened equivalents, and
// ties in the simulatePipe select must not lose or invent flows.
func TestSimultaneousDipEventTies(t *testing.T) {
	cases := map[string][]Dip{
		"identical pair": {
			{TimeS: 2, DurationS: 1, FracLost: 0.5},
			{TimeS: 2, DurationS: 1, FracLost: 0.5},
		},
		"end meets start": {
			{TimeS: 2, DurationS: 1, FracLost: 0.6},
			{TimeS: 3, DurationS: 1, FracLost: 0.3},
		},
		"shared end": {
			{TimeS: 2, DurationS: 2, FracLost: 0.4},
			{TimeS: 3, DurationS: 1, FracLost: 0.7},
		},
	}
	for name, dips := range cases {
		cfg := Config{
			Seed: 41, DurationS: 10, Dist: traffic.FBWeb(),
			Pipes: []Pipe{{CapacityGbps: 1, UtilFrac: 0.6}},
		}
		over := cfg
		over.Dips = map[int][]Dip{0: dips}
		got, err := Run(over)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref := cfg
		ref.Dips = map[int][]Dip{0: flattenDips(dips)}
		want, err := Run(ref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireSameFlows(t, got, want)
	}
}
