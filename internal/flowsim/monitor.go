package flowsim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"iris/internal/core"
	"iris/internal/hose"
	"iris/internal/telemetry"
	"iris/internal/traffic"
)

// Monitor attaches the load engine to a live control plane: after every
// drained reconfiguration (and every chaos-cycle repair) it replays the
// change as capacity dips over the current allocation, runs the dipped
// and clean simulations on identical arrivals, and publishes the flow
// slowdown quantiles and stranded bytes as iris_flowsim_* metrics. It is
// the §6.3 experiment running continuously against whatever the daemon
// actually did, instead of a scripted scenario.
type Monitor struct {
	cfg MonitorConfig

	mu   sync.Mutex
	last *Impact

	runs      *telemetry.Counter
	flows     *telemetry.Counter
	stranded  *telemetry.Counter
	slowdown  *telemetry.GaugeVec
	p99Hist   *telemetry.Histogram
	peakFlows *telemetry.Gauge
}

// MonitorConfig parameterises the monitor. Zero values select defaults.
type MonitorConfig struct {
	// Seed makes the per-reconfiguration simulations deterministic; each
	// observation folds the reconfig ID into it.
	Seed int64
	// Dist is the flow-size workload (default FBWeb).
	Dist traffic.SizeDist
	// Util is the offered load per pipe as a fraction of its allocated
	// capacity (default 0.6).
	Util float64
	// GbpsPerWavelength scales circuit capacity into simulated rate; the
	// slowdown ratio is scale-free, so the default 0.25 keeps each
	// observation cheap (see RegionExperiment).
	GbpsPerWavelength float64
	// WindowS is the simulated window around each reconfiguration
	// (default 4s; the dip lands at its midpoint).
	WindowS float64
	// Shape optionally modulates arrivals (diurnal swing, flash crowds).
	Shape *traffic.Shape
	// Registry receives the monitor's metrics (a fresh one if nil).
	Registry *telemetry.Registry
}

// Impact is the flow-level cost of one reconfiguration, served on
// /status as flow_impact.
type Impact struct {
	ReconfigID uint64 `json:"reconfig_id"`
	// Kind is "reconfig" for a traffic-driven convergence, "repair" for
	// a chaos/repair cycle.
	Kind string `json:"kind"`
	// Pipes is how many DC-pair pipes the change dimmed; Flows is how
	// many completed flows the dipped simulation measured.
	Pipes int    `json:"pipes"`
	Flows uint64 `json:"flows"`
	// P50/P99/P999 are FCT slowdowns: the dipped run's quantile over the
	// clean run's, on identical arrivals.
	P50  float64 `json:"p50_slowdown"`
	P99  float64 `json:"p99_slowdown"`
	P999 float64 `json:"p999_slowdown"`
	// BytesStranded is demand displaced by the drain (see LoadStats).
	BytesStranded float64 `json:"bytes_stranded"`
	// PeakConcurrent is the dipped run's peak active-flow count.
	PeakConcurrent uint64  `json:"peak_concurrent"`
	DurationS      float64 `json:"drain_seconds"`
}

var slowdownBuckets = []float64{1, 1.01, 1.02, 1.05, 1.1, 1.2, 1.5, 2, 3, 5, 10}

// NewMonitor validates the configuration and registers the metrics.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Dist.Name() == "" {
		cfg.Dist = traffic.FBWeb()
	}
	if cfg.Util == 0 {
		cfg.Util = 0.6
	}
	if cfg.Util < 0 || cfg.Util >= 1 {
		return nil, fmt.Errorf("flowsim: monitor utilization %v outside [0,1)", cfg.Util)
	}
	if cfg.GbpsPerWavelength <= 0 {
		cfg.GbpsPerWavelength = 0.25
	}
	if cfg.WindowS <= 0 {
		cfg.WindowS = 4
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	r := cfg.Registry
	m := &Monitor{
		cfg:       cfg,
		runs:      r.Counter("iris_flowsim_runs_total", "Reconfigurations whose flow impact was simulated."),
		flows:     r.Counter("iris_flowsim_flows_simulated_total", "Flows completed across all impact simulations."),
		stranded:  r.Counter("iris_flowsim_bytes_stranded_total", "Bytes of demand displaced by drains across all simulated reconfigurations."),
		slowdown:  r.GaugeVec("iris_flowsim_slowdown", "FCT slowdown of the last simulated reconfiguration, dipped over clean.", "quantile"),
		p99Hist:   r.Histogram("iris_flowsim_p99_slowdown", "Per-reconfiguration p99 FCT slowdown.", slowdownBuckets),
		peakFlows: r.Gauge("iris_flowsim_peak_flows", "Peak concurrent flows in the last impact simulation."),
	}
	return m, nil
}

// ObserveReconfig simulates one traffic-driven convergence: each moved
// pair's pipe dips by the move's affected fraction for the drain
// duration.
func (m *Monitor) ObserveReconfig(id uint64, alloc core.Allocation, lambda int, moves []core.Move, drainS float64) (Impact, error) {
	return m.observe(id, "reconfig", alloc, lambda, moves, 0, drainS)
}

// ObserveRepair simulates a repair/chaos cycle, where per-pair
// attribution is not available: every pipe dips uniformly by frac for
// the repair duration — the conservative whole-region view of a
// reconcile pass.
func (m *Monitor) ObserveRepair(id uint64, alloc core.Allocation, lambda int, frac, drainS float64) (Impact, error) {
	return m.observe(id, "repair", alloc, lambda, nil, frac, drainS)
}

func (m *Monitor) observe(id uint64, kind string, alloc core.Allocation, lambda int, moves []core.Move, uniformFrac, drainS float64) (Impact, error) {
	if lambda <= 0 {
		return Impact{}, fmt.Errorf("flowsim: monitor needs lambda > 0")
	}
	// Pipes from the committed allocation, one per pair with circuits.
	pairs := make(map[hose.Pair]bool)
	for p := range alloc.Fibers {
		pairs[p.Canonical()] = true
	}
	for p := range alloc.Residual {
		pairs[p.Canonical()] = true
	}
	// Deterministic pipe order: map iteration would shuffle the per-pipe
	// RNG streams between observations of the same reconfiguration.
	sorted := make([]hose.Pair, 0, len(pairs))
	for p := range pairs {
		sorted = append(sorted, p)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	pipeIdx := make(map[hose.Pair]int)
	var pipes []Pipe
	for _, p := range sorted {
		wl := float64(alloc.Fibers[p]*lambda + alloc.Residual[p])
		if wl <= 0 {
			continue
		}
		pipeIdx[p] = len(pipes)
		pipes = append(pipes, Pipe{CapacityGbps: wl * m.cfg.GbpsPerWavelength, UtilFrac: m.cfg.Util})
	}
	if len(pipes) == 0 {
		return Impact{}, fmt.Errorf("flowsim: allocation has no circuits to monitor")
	}

	window := m.cfg.WindowS
	if drainS <= 0 || drainS > window/2 {
		drainS = math.Min(math.Max(drainS, 0.070), window/2)
	}
	dipAt := window / 2
	dips := make(map[int][]Dip)
	if moves != nil {
		for _, mv := range moves {
			idx, ok := pipeIdx[mv.Pair.Canonical()]
			if !ok || mv.FracAffected <= 0 {
				continue
			}
			dips[idx] = append(dips[idx], Dip{TimeS: dipAt, DurationS: drainS, FracLost: mv.FracAffected})
		}
	} else if uniformFrac > 0 {
		for i := range pipes {
			dips[i] = append(dips[i], Dip{TimeS: dipAt, DurationS: drainS, FracLost: math.Min(uniformFrac, 1)})
		}
	}

	imp := Impact{ReconfigID: id, Kind: kind, Pipes: len(dips), DurationS: drainS, P50: 1, P99: 1, P999: 1}
	if len(dips) > 0 {
		base := LoadConfig{
			Seed: m.cfg.Seed ^ int64(id)*0x9e3779b9, DurationS: window, WarmupS: window / 4,
			Dist: m.cfg.Dist, Pipes: pipes, Shape: m.cfg.Shape,
		}
		dipped := base
		dipped.Dips = dips
		dst, err := RunLoad(dipped)
		if err != nil {
			return Impact{}, err
		}
		cst, err := RunLoad(base)
		if err != nil {
			return Impact{}, err
		}
		imp.Flows = dst.Flows
		imp.BytesStranded = dst.BytesStranded
		imp.PeakConcurrent = dst.PeakConcurrent
		imp.P50 = quantileRatio(dst.FCT, cst.FCT, 0.50)
		imp.P99 = quantileRatio(dst.FCT, cst.FCT, 0.99)
		imp.P999 = quantileRatio(dst.FCT, cst.FCT, 0.999)
	}

	m.runs.Inc()
	m.flows.Add(float64(imp.Flows))
	m.stranded.Add(imp.BytesStranded)
	m.slowdown.With("p50").Set(imp.P50)
	m.slowdown.With("p99").Set(imp.P99)
	m.slowdown.With("p999").Set(imp.P999)
	m.p99Hist.Observe(imp.P99)
	m.peakFlows.Set(float64(imp.PeakConcurrent))
	m.mu.Lock()
	m.last = &imp
	m.mu.Unlock()
	return imp, nil
}

// Last returns the most recent impact, or nil before any observation.
func (m *Monitor) Last() *Impact {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last == nil {
		return nil
	}
	cp := *m.last
	return &cp
}

func quantileRatio(dipped, clean *Sketch, q float64) float64 {
	c := clean.Quantile(q)
	if c <= 0 {
		return 1
	}
	return dipped.Quantile(q) / c
}
