package flowsim

import (
	"fmt"
	"math"
	"math/rand"

	"iris/internal/stats"
	"iris/internal/traffic"
)

// Experiment reproduces the §6.3 simulation campaign for one operating
// point: a region of DC pairs with heavy-tailed traffic, a traffic-change
// process stepping every ChangeIntervalS, and the resulting circuit
// reconfigurations dimming pipes for ReconfigS. It runs the same arrivals
// with and without the dips (Iris vs. the EPS baseline) and reports FCT
// slowdowns.
type Experiment struct {
	Seed int64
	// NDCs is the region size; pipes are all DC pairs.
	NDCs int
	// PipeGbps is the provisioned capacity per DC-pair circuit.
	PipeGbps float64
	// Util is the network utilization target: the hottest pipe runs at
	// this fraction of its capacity, others lower per the heavy tail.
	Util float64
	// Dist is the flow-size workload.
	Dist traffic.SizeDist
	// ChangeIntervalS is the time between traffic-matrix changes (and
	// hence reconfigurations); the paper sweeps 1–30 s.
	ChangeIntervalS float64
	// ChangeBound is the per-step bound on pair demand change (0.5 = 50%);
	// ≤ 0 means unbounded changes (cold pairs becoming hot).
	ChangeBound float64
	// ReconfigS is the fiber-switch outage; the measured value is 70 ms.
	ReconfigS float64
	// FibersPerPipe is the circuit granularity: demand changes that do not
	// move a whole fiber cause no reconfiguration.
	FibersPerPipe int
	// DurationS is the simulated time.
	DurationS float64
}

// DefaultExperiment returns the paper's operating point for the given
// sweep parameters.
func DefaultExperiment(seed int64, util float64, intervalS, bound float64, dist traffic.SizeDist) Experiment {
	return Experiment{
		Seed:            seed,
		NDCs:            8,
		PipeGbps:        10,
		Util:            util,
		Dist:            dist,
		ChangeIntervalS: intervalS,
		ChangeBound:     bound,
		ReconfigS:       0.070,
		FibersPerPipe:   8,
		DurationS:       60,
	}
}

// SlowdownReport compares Iris to the EPS baseline at one operating point.
type SlowdownReport struct {
	// All is the ratio of 99th-percentile FCT, Iris over EPS, across all
	// flows; Short restricts to flows under traffic.ShortFlowBytes.
	All, Short float64
	// IrisFlows and EPSFlows count completed flows in each run.
	IrisFlows, EPSFlows int
	// Reconfigs is the number of pipe-level reconfiguration dips applied.
	Reconfigs int
}

// Run executes the experiment.
func (e Experiment) Run() (SlowdownReport, error) {
	if e.NDCs < 2 {
		return SlowdownReport{}, fmt.Errorf("flowsim: need at least 2 DCs, have %d", e.NDCs)
	}
	if e.ChangeIntervalS <= 0 {
		return SlowdownReport{}, fmt.Errorf("flowsim: change interval must be positive")
	}
	if e.FibersPerPipe <= 0 {
		return SlowdownReport{}, fmt.Errorf("flowsim: fibers per pipe must be positive")
	}

	// Heavy-tailed pair demands over a synthetic region.
	dcs := make([]int, e.NDCs)
	caps := make(map[int]float64, e.NDCs)
	for i := range dcs {
		dcs[i] = i
		caps[i] = 100
	}
	rng := rand.New(rand.NewSource(e.Seed))
	m := traffic.HeavyTailed(rng, dcs, caps, e.Util)
	pairs := m.Pairs()

	// Pipe utilizations proportional to pair demand, hottest at e.Util.
	maxDemand := 0.0
	for _, p := range pairs {
		if d := m.Get(p); d > maxDemand {
			maxDemand = d
		}
	}
	if maxDemand == 0 {
		return SlowdownReport{}, fmt.Errorf("flowsim: degenerate traffic matrix")
	}
	pipes := make([]Pipe, len(pairs))
	for i, p := range pairs {
		pipes[i] = Pipe{
			CapacityGbps: e.PipeGbps,
			UtilFrac:     e.Util * m.Get(p) / maxDemand,
		}
	}

	// Evolve the matrix and derive reconfiguration dips: a pipe dips when
	// its integer fiber allocation changes, losing the moved fraction of
	// its circuit for the switch time.
	dips := make(map[int][]Dip)
	nDips := 0
	cp := traffic.ChangeProcess{Bound: e.ChangeBound, Caps: caps, Util: e.Util}
	alloc := make([]int, len(pairs))
	fibersOf := func(mm *traffic.Matrix, i int) int {
		f := int(math.Ceil(mm.Get(pairs[i]) / maxDemand * float64(e.FibersPerPipe)))
		if f < 1 {
			f = 1
		}
		if f > e.FibersPerPipe {
			f = e.FibersPerPipe
		}
		return f
	}
	for i := range pairs {
		alloc[i] = fibersOf(m, i)
	}
	for t := e.ChangeIntervalS; t < e.DurationS; t += e.ChangeIntervalS {
		cp.Step(rng, m)
		for i := range pairs {
			nf := fibersOf(m, i)
			if nf == alloc[i] {
				continue
			}
			// Only shrinking circuits drain live traffic; fibers joining a
			// growing circuit were idle (§5.2's drain discipline).
			if nf < alloc[i] {
				frac := float64(alloc[i]-nf) / float64(alloc[i])
				if frac > 1 {
					frac = 1
				}
				dips[i] = append(dips[i], Dip{TimeS: t, DurationS: e.ReconfigS, FracLost: frac})
				nDips++
			}
			alloc[i] = nf
		}
	}

	warmup := e.DurationS / 10
	iris, err := Run(Config{
		Seed: e.Seed, DurationS: e.DurationS, WarmupS: warmup,
		Dist: e.Dist, Pipes: pipes, Dips: dips,
	})
	if err != nil {
		return SlowdownReport{}, err
	}
	eps, err := Run(Config{
		Seed: e.Seed, DurationS: e.DurationS, WarmupS: warmup,
		Dist: e.Dist, Pipes: pipes,
	})
	if err != nil {
		return SlowdownReport{}, err
	}

	rep := SlowdownReport{
		IrisFlows: len(iris.Flows),
		EPSFlows:  len(eps.Flows),
		Reconfigs: nDips,
	}
	rep.All = ratio99(iris.FCTs(false), eps.FCTs(false))
	rep.Short = ratio99(iris.FCTs(true), eps.FCTs(true))
	return rep, nil
}

func ratio99(iris, eps []float64) float64 {
	den := stats.Percentile(eps, 99)
	if den == 0 || math.IsNaN(den) {
		return math.NaN()
	}
	return stats.Percentile(iris, 99) / den
}
